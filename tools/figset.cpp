// figset — the paper-figure driver. Runs the whole fig03–fig11 suite of
// conf_ipps_PageN05 (or a --only/--tag subset) as one sequence of
// sweeps with a shared progress line, one CSV + JSONL file per figure in
// a single output directory, and a manifest.json recording provenance
// (git sha, config hash, thread count, per-figure cell counts).
//
//   figset                          # whole suite, quick scale, ./figset_out
//   figset run --only 'fig0[5-9]'   # glob subset
//   figset run --tag makespan --full --out paper/
//   figset run --shard 0/4 --out s0 # machine 0 of 4 (disjoint rows)
//   figset merge --out merged s0 s1 s2 s3
//   figset run --resume --out paper/  # continue a killed run
//   figset list                     # figure ↔ grid table
//
// Resume and sharding rely on the sweep engine's deterministic job
// lists: a resumed or sharded-and-merged CSV is byte-identical to a
// fresh single-machine run (see docs/sweeps.md).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "exp/figset.hpp"
#include "metrics/sink.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace fs = std::filesystem;
using namespace gasched;

namespace {

// --- small helpers ----------------------------------------------------------

bool stderr_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stderr)) != 0;
#else
  return false;
#endif
}

/// FNV-1a over `text` — the run's config hash. Stable across machines
/// and shard assignments so `figset merge` can verify that shard
/// outputs describe the same configuration.
std::string fnv1a_hex(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::string first_line(const fs::path& path) {
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  return line;
}

/// Best-effort HEAD commit: walks up from the working directory to find
/// .git, follows symbolic refs (loose or packed). "unknown" on failure —
/// figset must run fine from an exported tarball too.
std::string git_sha() {
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 16; ++depth) {
    fs::path git = dir / ".git";
    if (fs::exists(git)) {
      if (fs::is_regular_file(git)) {  // worktree: "gitdir: <path>"
        const std::string line = first_line(git);
        const std::string prefix = "gitdir: ";
        if (line.rfind(prefix, 0) != 0) return "unknown";
        git = dir / line.substr(prefix.size());
      }
      const std::string head = first_line(git / "HEAD");
      const std::string ref_prefix = "ref: ";
      if (head.rfind(ref_prefix, 0) != 0) {
        return head.empty() ? "unknown" : head;  // detached HEAD
      }
      const std::string ref = head.substr(ref_prefix.size());
      const std::string loose = first_line(git / ref);
      if (!loose.empty()) return loose;
      std::ifstream packed(git / "packed-refs");
      std::string line;
      while (std::getline(packed, line)) {
        if (line.size() > ref.size() + 41 &&
            line.compare(line.size() - ref.size(), ref.size(), ref) == 0 &&
            line[40] == ' ') {
          return line.substr(0, 40);
        }
      }
      return "unknown";
    }
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return "unknown";
}

int usage(std::ostream& os, int code) {
  os << "usage: figset [run] [options]     run figures (default command)\n"
        "       figset list [--markdown]   print the figure table\n"
        "       figset plot [--out DIR] [--only PAT] [--tag TAG]\n"
        "                                  emit <fig>.gp/<fig>.py plot\n"
        "                                  scripts next to the CSVs\n"
        "       figset merge --out DIR SHARD_DIR...   stitch shard outputs\n"
        "\n"
        "run options:\n"
        "  --out DIR        output directory (default figset_out)\n"
        "  --only PATTERN   glob over figure ids, e.g. 'fig0[5-9]', 'fig1*'\n"
        "  --tag TAG        keep figures carrying TAG (makespan, efficiency,\n"
        "                   ga, convergence, overhead, normal, uniform,\n"
        "                   poisson, bounds, gap, extension)\n"
        "  --full           paper-scale parameters (10000 tasks, 50 reps,\n"
        "                   1000 generations; also GASCHED_BENCH_SCALE=full)\n"
        "  --tasks/--reps/--generations/--procs/--seed/--population/--batch\n"
        "                   override the scale for every selected figure\n"
        "  --shard I/N      run only cells with job index ≡ I (mod N);\n"
        "                   N machines produce disjoint rows for figset merge\n"
        "  --resume         continue into an existing --out: cells already\n"
        "                   in a figure's CSV+JSONL are skipped, files are\n"
        "                   appended, final CSVs byte-identical to a fresh\n"
        "                   run\n"
        "  --serial         disable sweep parallelism\n"
        "  --no-report      skip the per-figure shape-check reports\n"
        "\n"
        "Figure ids, grids and expected columns: docs/figures.md.\n"
        "Resume/shard semantics and sink formats: docs/sweeps.md.\n";
  return code;
}

// --- shared progress line ---------------------------------------------------

/// One progress line for the whole suite, updated from each sweep's row
/// stream (rows arrive as completed prefixes, so the count is live).
struct SuiteProgress {
  bool enabled = stderr_is_tty();
  std::string fig;
  std::size_t fig_index = 0, fig_count = 0;
  std::size_t cells_done = 0, cells_total = 0, cells_skipped = 0;

  void print() const {
    if (!enabled) return;
    std::fprintf(stderr, "\r[figset] %s (%zu/%zu) · %zu/%zu cells",
                 fig.c_str(), fig_index, fig_count, cells_done, cells_total);
    if (cells_skipped > 0) {
      std::fprintf(stderr, " (%zu resumed/off-shard)", cells_skipped);
    }
    std::fflush(stderr);
  }
  void finish() const {
    if (enabled) std::fprintf(stderr, "\n");
  }
};

class ProgressSink final : public metrics::ResultSink {
 public:
  explicit ProgressSink(SuiteProgress& progress) : progress_(progress) {}
  void row(const metrics::SweepRow&) override {
    ++progress_.cells_done;
    progress_.print();
  }

 private:
  SuiteProgress& progress_;
};

// --- run --------------------------------------------------------------------

struct RunOptions {
  fs::path out = "figset_out";
  std::string only;
  std::string tag;
  bool full = false;
  bool serial = false;
  bool resume = false;
  bool report = true;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  // Scale overrides (unset = keep the figure's quick/full default).
  std::optional<std::size_t> tasks, reps, generations, procs, population,
      batch;
  std::optional<std::uint64_t> seed;
};

/// Applies the CLI overrides to a figure's resolved scale.
exp::FigScale resolve_scale(const exp::FigureDef& fig, const RunOptions& o) {
  exp::FigScale s = fig.scale(o.full);
  if (o.tasks) s.tasks = *o.tasks;
  if (o.reps) s.reps = *o.reps;
  if (o.generations) s.generations = *o.generations;
  if (o.procs) s.procs = *o.procs;
  if (o.population) s.population = *o.population;
  if (o.batch) s.batch = *o.batch;
  if (o.seed) s.seed = *o.seed;
  return s;
}

/// The canonical configuration string hashed into the manifest: every
/// selected figure's identity, scale, axes, and cell count. Excludes
/// shard/thread/host details so shard manifests agree.
std::string config_string(
    const std::vector<std::pair<const exp::FigureDef*, exp::FigScale>>& figs) {
  std::string text;
  for (const auto& [fig, scale] : figs) {
    exp::Sweep sweep = fig->build(scale);
    text += fig->id + "{tasks=" + std::to_string(scale.tasks) +
            ",procs=" + std::to_string(scale.procs) +
            ",reps=" + std::to_string(scale.reps) +
            ",generations=" + std::to_string(scale.generations) +
            ",population=" + std::to_string(scale.population) +
            ",batch=" + std::to_string(scale.batch) +
            ",seed=" + std::to_string(scale.seed) + ",axes=";
    for (const auto& axis : sweep.axis_names()) text += axis + "|";
    text += ",cells=" + std::to_string(sweep.cell_count()) + "}";
  }
  return text;
}

struct FigOutcome {
  const exp::FigureDef* fig = nullptr;
  std::size_t cells = 0, executed = 0, skipped = 0, failed = 0;
  std::string report;  ///< rendered shape-check report (may be empty)
};

/// Pulls "key":"value" out of a manifest written by write_manifest (the
/// tool never needs a general JSON parser for its own files).
std::string manifest_string_field(const fs::path& manifest,
                                  const std::string& key) {
  std::ifstream in(manifest);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = text.find('"', start);
  return end == std::string::npos ? "" : text.substr(start, end - start);
}

/// `status` is "running" (written before the first sweep, so even a
/// killed run leaves provenance for --resume to verify) or "complete".
void write_manifest(const fs::path& path, const RunOptions& o,
                    const std::string& config_hash,
                    const std::vector<FigOutcome>& outcomes,
                    const std::string& status) {
  util::JsonWriter w;
  w.begin_object();
  w.key("tool").string("figset");
  w.key("status").string(status);
  w.key("git_sha").string(git_sha());
  w.key("config_hash").string(config_hash);
  w.key("threads").number(util::global_pool().size());
  w.key("scale").string(o.full ? "full" : "quick");
  if (o.shard_count > 1) {
    w.key("shard").begin_object();
    w.key("index").number(o.shard_index);
    w.key("count").number(o.shard_count);
    w.end_object();
  }
  std::size_t total = 0, executed = 0, failed = 0;
  w.key("figures").begin_array();
  for (const auto& r : outcomes) {
    total += r.cells;
    executed += r.executed;
    failed += r.failed;
    w.begin_object();
    w.key("id").string(r.fig->id);
    w.key("cells").number(r.cells);
    w.key("executed").number(r.executed);
    w.key("skipped").number(r.skipped);
    w.key("failed").number(r.failed);
    w.key("csv").string(r.fig->id + ".csv");
    w.key("jsonl").string(r.fig->id + ".jsonl");
    w.end_object();
  }
  w.end_array();
  w.key("total_cells").number(total);
  w.key("total_executed").number(executed);
  w.key("total_failed").number(failed);
  w.end_object();

  std::ofstream out(path, std::ios::trunc);
  out << w.str() << "\n";
}

int cmd_run(const util::Cli& cli) {
  RunOptions o;
  o.out = cli.get("out", "figset_out");
  o.only = cli.get("only", "");
  o.tag = cli.get("tag", "");
  o.full = util::bench_full_scale() || cli.get_bool("full", false);
  o.serial = cli.get_bool("serial", false);
  o.resume = cli.get_bool("resume", false);
  o.report = !cli.get_bool("no-report", false);
  const std::string shard = cli.get("shard", "");
  if (!shard.empty()) {
    try {
      std::tie(o.shard_index, o.shard_count) = exp::parse_shard_spec(shard);
    } catch (const std::exception& e) {
      std::cerr << "figset: " << e.what() << "\n";
      return 2;
    }
  }
  for (const auto& [name, slot] :
       {std::pair<const char*, std::optional<std::size_t>*>{"tasks",
                                                            &o.tasks},
        {"reps", &o.reps},
        {"generations", &o.generations},
        {"procs", &o.procs},
        {"population", &o.population},
        {"batch", &o.batch}}) {
    if (cli.has(name)) {
      *slot = static_cast<std::size_t>(cli.get_int(name, 0));
    }
  }
  if (cli.has("seed")) {
    o.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0));
  }

  const auto selected = exp::FigSet::instance().select(o.only, o.tag);
  if (selected.empty()) {
    std::cerr << "figset: no figures match --only '" << o.only << "' --tag '"
              << o.tag << "' (try: figset list)\n";
    return 2;
  }

  std::vector<std::pair<const exp::FigureDef*, exp::FigScale>> figs;
  for (const auto* fig : selected) {
    figs.emplace_back(fig, resolve_scale(*fig, o));
  }
  const std::string config_hash = fnv1a_hex(config_string(figs));

  // Resuming into an output directory produced by a *different*
  // configuration would silently keep stale rows (the CSV schema cannot
  // encode scale/seed); the manifest's config hash can, so check it.
  const fs::path manifest_path = o.out / "manifest.json";
  if (o.resume && fs::exists(manifest_path)) {
    const std::string previous =
        manifest_string_field(manifest_path, "config_hash");
    if (!previous.empty() && previous != config_hash) {
      std::cerr << "figset: cannot resume into " << o.out.string()
                << ": its manifest records config " << previous
                << " but this invocation is config " << config_hash
                << " (different figures, scale, or seed).\n"
                << "Re-run with the original options, or use a fresh "
                   "--out.\n";
      return 1;
    }
  }

  fs::create_directories(o.out);

  SuiteProgress progress;
  progress.fig_count = figs.size();
  std::vector<FigOutcome> planned;
  for (const auto& [fig, scale] : figs) {
    FigOutcome p;
    p.fig = fig;
    p.cells = fig->build(scale).cell_count();
    planned.push_back(p);
    progress.cells_total += p.cells;
  }
  // Written up front so a killed run still records what it was doing —
  // the hash above is what a later --resume validates against.
  write_manifest(manifest_path, o, config_hash, planned, "running");

  std::cout << "figset: " << figs.size() << " figures, "
            << progress.cells_total << " cells ("
            << (o.full ? "full" : "quick") << " scale";
  if (o.shard_count > 1) {
    std::cout << ", shard " << o.shard_index << "/" << o.shard_count;
  }
  if (o.resume) std::cout << ", resuming";
  std::cout << ") -> " << o.out.string() << "\n";

  const metrics::SinkMode mode =
      o.resume ? metrics::SinkMode::kResume : metrics::SinkMode::kTruncate;
  std::vector<FigOutcome> outcomes;
  int exit_code = 0;
  for (std::size_t fi = 0; fi < figs.size(); ++fi) {
    const auto& [fig, scale] = figs[fi];
    progress.fig = fig->id;
    progress.fig_index = fi + 1;
    progress.print();

    exp::Sweep sweep = fig->build(scale);
    sweep.parallel(!o.serial).progress(false);
    if (o.shard_count > 1) sweep.shard(o.shard_index, o.shard_count);

    metrics::CsvSink csv(o.out / (fig->id + ".csv"), mode);
    metrics::JsonlSink jsonl(o.out / (fig->id + ".jsonl"), mode);
    ProgressSink prog(progress);
    sweep.add_sink(csv).add_sink(jsonl).add_sink(prog);

    exp::SweepResult result;
    try {
      result = sweep.run();
    } catch (const std::exception& e) {
      progress.finish();
      std::cerr << "figset: " << fig->id << ": " << e.what() << "\n";
      return 1;
    }
    progress.cells_skipped += result.skipped;
    progress.print();

    FigOutcome outcome;
    outcome.fig = fig;
    outcome.cells = result.rows.size();
    outcome.skipped = result.skipped;
    outcome.executed = result.rows.size() - result.skipped;
    outcome.failed = result.failed;
    if (o.report && fig->report && result.skipped == 0 &&
        result.failed == 0) {
      std::ostringstream report;
      fig->report(result, scale, report);
      outcome.report = report.str();
    }
    outcomes.push_back(std::move(outcome));
    if (result.failed > 0) exit_code = 1;
  }
  progress.finish();

  write_manifest(manifest_path, o, config_hash, outcomes, "complete");

  for (const auto& r : outcomes) {
    std::cout << r.fig->id << " (" << r.fig->number << ", "
              << r.fig->paper_section << "): " << r.executed << "/"
              << r.cells << " cells";
    if (r.skipped > 0) std::cout << ", " << r.skipped << " skipped";
    if (r.failed > 0) std::cout << ", " << r.failed << " FAILED";
    std::cout << " -> " << r.fig->id << ".csv\n";
  }
  for (const auto& r : outcomes) {
    if (r.report.empty()) {
      if (o.report && r.fig->report && r.failed == 0 && r.skipped > 0) {
        std::cout << r.fig->id
                  << ": shape-check report omitted (cells were resumed or "
                     "off-shard; re-derive it from the merged/complete CSV "
                     "or re-run unsharded)\n";
      }
      continue;
    }
    std::cout << "\n=== " << r.fig->number << ": " << r.fig->title
              << " ===\n"
              << r.report;
  }
  std::cout << "\nmanifest: " << (o.out / "manifest.json").string()
            << " (config " << config_hash << ")\n";
  if (exit_code != 0) {
    std::cerr << "figset: some cells failed — see the error column in the "
                 "CSVs\n";
  }
  return exit_code;
}

// --- list -------------------------------------------------------------------

/// Markdown cell escape: keep the table well-formed whatever the
/// registry strings contain.
std::string md_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '|') out += "\\|";
    else if (c == '\n') out += ' ';
    else out += c;
  }
  return out;
}

/// The figure ↔ bench ↔ grid table as GitHub markdown — the generated
/// region of docs/figures.md (scripts/check_figures_doc.sh regenerates
/// and diffs it in CI, so the doc cannot drift from the registry).
/// The bench column is the bench/<id>_*.cpp wrapper stem, discovered
/// from --bench-dir when the source tree is visible; suite-only
/// registrations with no wrapper fall back to an em dash.
int cmd_list_markdown(const util::Cli& cli) {
  const fs::path bench_dir = cli.get("bench-dir", "bench");
  std::cout << "| FigSet id | Bench binary | Paper § | Tags | Axes "
               "| Cells (quick / full) | Shape check |\n"
               "|-----------|--------------|---------|------|------"
               "|----------------------|-------------|\n";
  for (const auto& fig : exp::FigSet::instance().figures()) {
    std::string bench;
    if (fs::is_directory(bench_dir)) {
      std::vector<std::string> stems;
      for (const auto& entry : fs::directory_iterator(bench_dir)) {
        const std::string stem = entry.path().stem().string();
        if (entry.path().extension() == ".cpp" &&
            stem.rfind(fig.id + "_", 0) == 0) {
          stems.push_back(stem);
        }
      }
      std::sort(stems.begin(), stems.end());  // directory order is unspecified
      if (!stems.empty()) bench = stems.front();
    }
    std::string tags;
    for (const auto& tag : fig.tags) {
      if (!tags.empty()) tags += ", ";
      tags += tag;
    }
    const exp::Sweep quick = fig.build(fig.scale(false));
    const exp::Sweep full = fig.build(fig.scale(true));
    std::string axes;
    for (const auto& axis : quick.axis_names()) {
      if (!axes.empty()) axes += " × ";
      axes += "`" + axis + "`";
    }
    std::cout << "| `" << fig.id << "` | "
              << (bench.empty() ? std::string("—") : "`" + bench + "`")
              << " | " << md_escape(fig.paper_section) << " | "
              << md_escape(tags) << " | " << axes << " | "
              << quick.cell_count() << " / " << full.cell_count() << " | "
              << md_escape(fig.paper_expectation) << " |\n";
  }
  return 0;
}

int cmd_list(const util::Cli& cli) {
  if (cli.get_bool("markdown", false)) return cmd_list_markdown(cli);
  util::Table table({"id", "paper", "section", "tags", "cells(quick)",
                     "title"});
  for (const auto& fig : exp::FigSet::instance().figures()) {
    std::string tags;
    for (const auto& tag : fig.tags) {
      if (!tags.empty()) tags += ",";
      tags += tag;
    }
    const exp::Sweep sweep = fig.build(fig.scale(false));
    table.add_row({fig.id, fig.number, fig.paper_section, tags,
                   std::to_string(sweep.cell_count()), fig.title});
  }
  table.print(std::cout);
  std::cout << "\nRun a subset: figset run --only 'fig0[5-9]' or --tag "
               "makespan. Details: docs/figures.md\n";
  return 0;
}

// --- plot -------------------------------------------------------------------

/// Emits the gnuplot + matplotlib scripts for every selected figure into
/// --out, next to the CSVs a `figset run` left there. Pure emission from
/// the registry (no sweep runs): scripts reference the CSV by relative
/// name, so `cd OUT && gnuplot figNN.gp` (or python3 figNN.py) renders
/// figNN.png. Warns when a figure's CSV is not present yet.
int cmd_plot(const util::Cli& cli) {
  const fs::path out = cli.get("out", "figset_out");
  const auto selected = exp::FigSet::instance().select(cli.get("only", ""),
                                                       cli.get("tag", ""));
  if (selected.empty()) {
    std::cerr << "figset plot: no figures match --only '"
              << cli.get("only", "") << "' --tag '" << cli.get("tag", "")
              << "' (try: figset list)\n";
    return 2;
  }
  const bool full = util::bench_full_scale() || cli.get_bool("full", false);
  for (const auto* fig : selected) {
    const auto paths = exp::write_plot_scripts(*fig, fig->scale(full), out);
    std::cout << fig->id << ": ";
    for (std::size_t i = 0; i < paths.size(); ++i) {
      std::cout << paths[i].filename().string()
                << (i + 1 < paths.size() ? " + " : "");
    }
    if (!fs::exists(out / (fig->id + ".csv"))) {
      std::cout << "  (no " << fig->id << ".csv here yet — run `figset run "
                << "--out " << out.string() << "` first)";
    }
    std::cout << "\n";
  }
  std::cout << "plot scripts -> " << out.string()
            << " (gnuplot *.gp / python3 *.py from inside that directory)\n";
  return 0;
}

// --- merge ------------------------------------------------------------------

int cmd_merge(const util::Cli& cli,
              const std::vector<std::string>& shard_dirs) {
  if (!cli.has("out") || shard_dirs.size() < 2) {
    std::cerr << "usage: figset merge --out DIR SHARD_DIR SHARD_DIR...\n";
    return 2;
  }
  const fs::path out = cli.get("out", "");

  // Shards must describe the same configuration.
  std::string config_hash;
  for (const auto& dir : shard_dirs) {
    const std::string hash =
        manifest_string_field(fs::path(dir) / "manifest.json", "config_hash");
    if (hash.empty()) continue;  // tolerate missing manifests
    if (config_hash.empty()) {
      config_hash = hash;
    } else if (hash != config_hash) {
      std::cerr << "figset merge: " << dir << " has config hash " << hash
                << " but earlier shards have " << config_hash
                << " — these outputs are from different configurations\n";
      return 1;
    }
  }

  // Merge the union of figure files across all shard dirs: every shard
  // runs every selected figure, so a figure missing from any one shard
  // means incomplete inputs — fail rather than emit a partial file.
  std::set<std::string> stems;
  for (const auto& dir : shard_dirs) {
    if (!fs::is_directory(dir)) {
      std::cerr << "figset merge: " << dir << " is not a directory\n";
      return 1;
    }
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.path().extension() == ".csv") {
        stems.insert(entry.path().stem().string());
      }
    }
  }
  if (stems.empty()) {
    std::cerr << "figset merge: no CSV files in any shard directory\n";
    return 1;
  }

  fs::create_directories(out);
  try {
    for (const auto& stem : stems) {
      std::vector<fs::path> csvs, jsonls;
      for (const auto& dir : shard_dirs) {
        const fs::path csv = fs::path(dir) / (stem + ".csv");
        if (!fs::exists(csv)) {
          throw std::runtime_error("shard " + dir + " is missing " + stem +
                                   ".csv");
        }
        csvs.push_back(csv);
        const fs::path jsonl = fs::path(dir) / (stem + ".jsonl");
        if (fs::exists(jsonl)) jsonls.push_back(jsonl);
      }
      exp::merge_csv_shards(csvs, out / (stem + ".csv"));
      if (!jsonls.empty() && jsonls.size() != shard_dirs.size()) {
        throw std::runtime_error(
            stem + ".jsonl exists in only " + std::to_string(jsonls.size()) +
            " of " + std::to_string(shard_dirs.size()) +
            " shards — merged wall-clock data would be incomplete");
      }
      if (!jsonls.empty()) {
        exp::merge_jsonl_shards(jsonls, out / (stem + ".jsonl"));
      }
      std::cout << "merged " << stem << " from " << csvs.size()
                << " shards\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "figset merge: " << e.what() << "\n";
    return 1;
  }

  util::JsonWriter w;
  w.begin_object();
  w.key("tool").string("figset merge");
  w.key("git_sha").string(git_sha());
  if (!config_hash.empty()) w.key("config_hash").string(config_hash);
  w.key("merged_from").begin_array();
  for (const auto& dir : shard_dirs) w.string(dir);
  w.end_array();
  w.key("figures").begin_array();
  for (const auto& stem : stems) w.string(stem);
  w.end_array();
  w.end_object();
  std::ofstream manifest(out / "manifest.json", std::ios::trunc);
  manifest << w.str() << "\n";
  std::cout << "merged output -> " << out.string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("help", false) || cli.get_bool("h", false)) {
    return usage(std::cout, 0);
  }
  std::vector<std::string> positional = cli.positional();
  std::string command = "run";
  if (!positional.empty()) {
    command = positional.front();
    positional.erase(positional.begin());
  }
  try {
    if (command == "run") return cmd_run(cli);
    if (command == "list") return cmd_list(cli);
    if (command == "plot") return cmd_plot(cli);
    if (command == "merge") return cmd_merge(cli, positional);
  } catch (const std::exception& e) {
    std::cerr << "figset: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "figset: unknown command '" << command << "'\n\n";
  return usage(std::cerr, 2);
}
