// Run an experiment grid defined in an INI-style config file — no
// recompilation needed. The scenario sections define the base cell; the
// optional [sweep] section turns it into a full grid (scalar axes +
// scheduler selector) executed in parallel by exp::Sweep, with results
// streaming to the table and optional crash-safe CSV/JSONL files.
//
//   ./run_scenario examples/scenario_example.ini
//   ./run_scenario my.ini --schedulers PN,EF,SUF --gantt
//   ./run_scenario my.ini --schedulers metaheuristic --csv out.csv
//   ./run_scenario grid.ini --serial --json out.jsonl
//   ./run_scenario --list-schedulers
//   ./run_scenario --list-distributions

#include <iostream>
#include <optional>

#include "exp/config_scenario.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/sink.hpp"
#include "metrics/timeline.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

namespace {

std::string tag_names(unsigned tags) {
  std::string out;
  auto add = [&](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (tags & exp::kSchedulerTagPaper) add("paper");
  if (tags & exp::kSchedulerTagBaseline) add("baseline");
  if (tags & exp::kSchedulerTagMetaheuristic) add("metaheuristic");
  return out;
}

void pad_print(std::ostream& os, const std::string& name, std::size_t width,
               const std::string& summary) {
  os << "  " << name
     << std::string(name.size() < width ? width - name.size() : 1, ' ')
     << summary << "\n";
}

void list_schedulers(std::ostream& os) {
  const auto& registry = exp::SchedulerRegistry::instance();
  os << "Registered schedulers (tags select sets for --schedulers "
        "<tag|all|name,...>):\n";
  for (const auto& name : registry.names()) {
    const auto& entry = registry.find(name);
    const std::string tags = "[" + tag_names(entry.tags) + "]";
    pad_print(os, name + "  " + tags, 28, entry.summary);
  }
}

void list_distributions(std::ostream& os) {
  const auto& registry = exp::DistributionRegistry::instance();
  os << "Registered task-size distributions:\n";
  for (const auto& name : registry.names()) {
    pad_print(os, name, 10, registry.find(name).summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("list-schedulers", false)) {
    list_schedulers(std::cout);
    return 0;
  }
  if (cli.get_bool("list-distributions", false)) {
    list_distributions(std::cout);
    return 0;
  }
  if (cli.positional().empty()) {
    std::cerr << "usage: " << cli.program()
              << " <scenario.ini> [--schedulers <tag|all|name,...>]"
                 " [--csv out.csv] [--json out.jsonl] [--serial] [--gantt]\n"
              << "       " << cli.program() << " --list-schedulers\n"
              << "       " << cli.program() << " --list-distributions\n";
    return 2;
  }

  int exit_code = 0;
  try {
    const util::Config cfg = util::Config::load(cli.positional()[0]);
    exp::Sweep sweep =
        exp::sweep_from_config(cfg, cli.get("schedulers", ""));
    sweep.parallel(!cli.get_bool("serial", false));

    const exp::Scenario scenario = exp::scenario_from_config(cfg);
    std::cout << "Scenario '" << scenario.name << "': "
              << scenario.workload.count << " " << scenario.workload.dist
              << " tasks on " << scenario.cluster.num_processors
              << " processors, " << scenario.replications << " replications"
              << (scenario.failures ? ", with failures" : "") << " — "
              << sweep.cell_count() << " grid cells\n\n";

    metrics::TableSink table(std::cout);
    sweep.add_sink(table);
    std::optional<metrics::CsvSink> csv;
    if (cli.has("csv")) {
      csv.emplace(cli.get("csv", ""));
      sweep.add_sink(*csv);
    }
    std::optional<metrics::JsonlSink> jsonl;
    if (cli.has("json")) {
      jsonl.emplace(cli.get("json", ""));
      sweep.add_sink(*jsonl);
    }

    const exp::SweepResult result = sweep.run();
    if (csv) std::cout << "CSV written to " << csv->path().string() << "\n";
    if (jsonl) {
      std::cout << "JSONL written to " << jsonl->path().string() << "\n";
    }
    if (result.failed > 0) {
      std::cerr << "error: " << result.failed << "/" << result.rows.size()
                << " cells failed (see table)\n";
      exit_code = 1;
    }

    if (cli.get_bool("gantt", false) && exit_code == 0) {
      // Re-run replication 0 of the first grid cell with tracing on —
      // through run_one, so the chart shows exactly the run the table
      // aggregated (same arrivals, smoothing, and failure trace).
      const auto cells = sweep.flatten();
      const auto& first = cells.front();
      const auto r = exp::run_one(first.scenario, first.scheduler,
                                  first.params, 0,
                                  /*record_task_trace=*/true);
      std::cout << "\n";
      sim::render_gantt(r, std::cout);
      const auto timeline = metrics::utilization_timeline(r, 20);
      std::cout << "\nUtilization timeline (busy fraction per 5% of run):\n";
      for (const auto& p : timeline) {
        const auto stars = static_cast<std::size_t>(p.busy_fraction * 40.0);
        std::cout << util::fmt(p.time, 5) << "s |" << std::string(stars, '*')
                  << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return exit_code;
}
