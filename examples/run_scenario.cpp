// Run an experiment scenario defined in an INI-style config file and
// compare any set of schedulers on it — no recompilation needed.
//
//   ./run_scenario examples/scenario_example.ini
//   ./run_scenario my.ini --schedulers PN,EF,SUF --gantt

#include <iostream>
#include <sstream>

#include "exp/config_scenario.hpp"
#include "exp/runner.hpp"
#include "metrics/timeline.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

namespace {

std::vector<exp::SchedulerKind> parse_schedulers(const std::string& list) {
  if (list.empty()) return exp::all_schedulers();
  std::vector<exp::SchedulerKind> kinds;
  std::istringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    kinds.push_back(exp::scheduler_kind_from_name(token));
  }
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: " << cli.program()
              << " <scenario.ini> [--schedulers PN,EF,...] [--gantt]\n";
    return 2;
  }
  exp::Scenario scenario;
  exp::SchedulerOptions opts;
  std::vector<exp::SchedulerKind> kinds;
  try {
    const util::Config cfg = util::Config::load(cli.positional()[0]);
    scenario = exp::scenario_from_config(cfg);
    opts = exp::scheduler_options_from_config(cfg);
    kinds = parse_schedulers(cli.get("schedulers", ""));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "Scenario '" << scenario.name << "': "
            << scenario.workload.count << " tasks on "
            << scenario.cluster.num_processors << " processors, "
            << scenario.replications << " replications"
            << (scenario.failures ? ", with failures" : "") << "\n\n";

  util::Table table({"scheduler", "makespan", "ci95", "efficiency",
                     "response", "requeued"});
  for (const auto kind : kinds) {
    const auto runs = exp::run_replications(scenario, kind, opts);
    const auto cell = metrics::aggregate(exp::scheduler_name(kind), runs);
    double requeued = 0.0;
    for (const auto& r : runs) {
      requeued += static_cast<double>(r.tasks_requeued);
    }
    table.add_row(cell.scheduler,
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.response.mean,
                   requeued / static_cast<double>(runs.size())});
  }
  table.print(std::cout);

  if (cli.get_bool("gantt", false)) {
    // Re-run replication 0 of the first scheduler with tracing on —
    // through run_one, so the chart shows exactly the run the table
    // aggregated (same arrivals, smoothing, and failure trace).
    const auto r =
        exp::run_one(scenario, kinds.front(), opts, 0,
                     /*record_task_trace=*/true);
    std::cout << "\n";
    sim::render_gantt(r, std::cout);
    const auto timeline = metrics::utilization_timeline(r, 20);
    std::cout << "\nUtilization timeline (busy fraction per 5% of run):\n";
    for (const auto& p : timeline) {
      const auto stars = static_cast<std::size_t>(p.busy_fraction * 40.0);
      std::cout << util::fmt(p.time, 5) << "s |" << std::string(stars, '*')
                << "\n";
    }
  }
  return 0;
}
