// Run an experiment grid defined in an INI-style config file — no
// recompilation needed. The scenario sections define the base cell; the
// optional [sweep] section turns it into a full grid (scalar axes +
// scheduler selector) executed in parallel by exp::Sweep, with results
// streaming to the table and optional crash-safe CSV/JSONL files.
//
//   ./run_scenario examples/scenario_example.ini
//   ./run_scenario my.ini --schedulers PN,EF,SUF --gantt
//   ./run_scenario my.ini --schedulers metaheuristic --csv out.csv
//   ./run_scenario grid.ini --serial --json out.jsonl
//   ./run_scenario grid.ini --csv out.csv --resume     # continue a kill
//   ./run_scenario grid.ini --csv s0.csv --shard 0/2   # machine 0 of 2
//   ./run_scenario serve.ini --serve    # live serving benchmark ([runtime])
//   ./run_scenario --list-schedulers
//   ./run_scenario --list-distributions

#include <cmath>
#include <iomanip>
#include <iostream>
#include <limits>
#include <optional>

#include "exp/config_scenario.hpp"
#include "exp/figset.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/sink.hpp"
#include "metrics/timeline.hpp"
#include "rt/serve_config.hpp"
#include "sched/heuristics.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

namespace {

std::string tag_names(unsigned tags) {
  std::string out;
  auto add = [&](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (tags & exp::kSchedulerTagPaper) add("paper");
  if (tags & exp::kSchedulerTagBaseline) add("baseline");
  if (tags & exp::kSchedulerTagMetaheuristic) add("metaheuristic");
  return out;
}

void pad_print(std::ostream& os, const std::string& name, std::size_t width,
               const std::string& summary) {
  os << "  " << name
     << std::string(name.size() < width ? width - name.size() : 1, ' ')
     << summary << "\n";
}

void list_schedulers(std::ostream& os) {
  const auto& registry = exp::SchedulerRegistry::instance();
  os << "Registered schedulers (tags select sets for --schedulers "
        "<tag|all|name,...>):\n";
  for (const auto& name : registry.names()) {
    const auto& entry = registry.find(name);
    const std::string tags = "[" + tag_names(entry.tags) + "]";
    pad_print(os, name + "  " + tags, 28, entry.summary);
  }
}

void list_distributions(std::ostream& os) {
  const auto& registry = exp::DistributionRegistry::instance();
  os << "Registered task-size distributions:\n";
  for (const auto& name : registry.names()) {
    pad_print(os, name, 10, registry.find(name).summary);
  }
}

void print_latency_row(std::ostream& os, const char* label,
                       const rt::LatencySummary& s) {
  auto us = [](double seconds) { return seconds * 1e6; };
  os << "  " << std::left << std::setw(12) << label << std::right
     << std::fixed << std::setprecision(1) << "p50 " << std::setw(10)
     << us(s.p50) << "   p99 " << std::setw(10) << us(s.p99) << "   p999 "
     << std::setw(10) << us(s.p999) << "   max " << std::setw(10)
     << us(s.max) << "   (us)\n";
}

// --serve: a live serving benchmark on this host instead of a simulation
// sweep. The [runtime] section configures the worker pool and the
// open-loop arrival stream; [workload] supplies the task-size
// distribution as usual.
int run_serve(const util::Config& cfg, std::ostream& os) {
  const rt::ServeSetup setup = rt::serve_setup_from_config(cfg);
  const exp::Scenario scenario = exp::scenario_from_config(cfg);
  const auto sizes = exp::make_distribution(scenario.workload);

  os << "Serving benchmark: " << setup.runtime.worker_speeds.size()
     << " workers, policy " << setup.serve.policy << ", arrival "
     << setup.serve.arrival << " @ " << setup.serve.rate << "/s for "
     << setup.serve.duration_s << " s ("
     << (setup.serve.shed ? "shed" : "block") << " on overload)\n";

  // The batch-mode policy is unused in serve mode but must be non-null.
  rt::Runtime runtime(setup.runtime, sched::make_rr());
  const rt::ServeResult r = runtime.serve(setup.serve, *sizes);

  os << "\n  offered " << r.offered << "   admitted " << r.admitted
     << "   shed " << r.shed << "   completed " << r.completed << "\n"
     << "  throughput " << std::fixed << std::setprecision(1)
     << r.throughput_per_sec << " tasks/s over " << std::setprecision(2)
     << r.duration_s << " s\n\n";
  print_latency_row(os, "scheduling", r.sched_latency);
  print_latency_row(os, "queueing", r.queue_latency);
  print_latency_row(os, "sojourn", r.sojourn);
  os << "\n  worker   tasks        mflops   busy_s\n";
  for (std::size_t j = 0; j < r.per_worker.size(); ++j) {
    const auto& w = r.per_worker[j];
    os << "  " << std::setw(6) << j << std::setw(8) << w.tasks
       << std::setw(14) << std::setprecision(1) << w.work_mflops
       << std::setw(9) << std::setprecision(3) << w.busy_seconds << "\n";
  }
  return 0;
}

// [bounds] report: certified makespan lower bounds per scenario grid
// point, alongside the best measured makespan across schedulers at that
// point. The scheduler axis is innermost in the flattened job list, so
// cells sharing every non-scheduler coordinate are consecutive and share
// one scenario; bounds are computed once per group. Both columns are
// certified (docs/bounds.md): any schedule's makespan is >= lb_qp >=
// lb_comb up to the rounding margin, whatever the solver did.
void print_certified_bounds(const exp::Sweep& sweep,
                            const exp::SweepResult& result,
                            const metrics::RelaxationBoundOptions& opts,
                            bool parallel, std::ostream& os) {
  const auto cells = sweep.flatten();
  if (cells.empty()) return;
  auto group_key = [](const exp::SweepCell& c) {
    std::string k;
    for (const auto& [axis, label] : c.coords) {
      if (axis == "scheduler") continue;
      if (!k.empty()) k += ' ';
      k += axis + "=" + label;
    }
    return k.empty() ? std::string("(base)") : k;
  };
  os << "\nCertified lower bounds ([bounds] enabled, tol "
     << opts.tolerance << ", max_iter " << opts.max_iterations << "):\n"
     << "  " << std::left << std::setw(28) << "point" << std::right
     << std::setw(12) << "lb_comb" << std::setw(12) << "lb_qp"
     << std::setw(12) << "best_ms" << std::setw(10) << "gap_pct" << "\n";
  std::size_t i = 0;
  while (i < cells.size()) {
    const std::string group = group_key(cells[i]);
    double best = std::numeric_limits<double>::infinity();
    std::size_t j = i;
    for (; j < cells.size() && group_key(cells[j]) == group; ++j) {
      for (const auto& row : result.rows) {
        if (row.index == cells[j].index && row.ok() && !row.skipped &&
            row.cell.replications > 0) {
          best = std::min(best, row.cell.makespan.mean);
        }
      }
    }
    const exp::CertifiedBounds b =
        exp::certified_bounds(cells[i].scenario, opts, parallel);
    os << "  " << std::left << std::setw(28) << group << std::right
       << std::fixed << std::setprecision(3) << std::setw(12) << b.lb_comb
       << std::setw(12) << b.lb_qp;
    if (std::isfinite(best) && b.lb_qp > 0.0) {
      os << std::setw(12) << best << std::setw(9)
         << 100.0 * (best / b.lb_qp - 1.0) << "%";
    } else {
      os << std::setw(12) << "-" << std::setw(10) << "-";
    }
    os << "\n" << std::defaultfloat;
    i = j;
  }
}

}  // namespace

int usage(std::ostream& os, const std::string& program, int code) {
  os << "usage: " << program
     << " <scenario.ini> [options]\n"
        "       " << program << " --list-schedulers\n"
        "       " << program << " --list-distributions\n"
        "\n"
        "Runs the scenario's experiment grid: the INI's scenario sections\n"
        "([scenario]/[cluster]/[comm]/[workload]/[scheduler]/[failures])\n"
        "define the base cell, and the optional [sweep] section adds axes —\n"
        "`schedulers = <selector>` plus any number of `key = v1, v2, ...`\n"
        "scalar axes (scenario keys such as procs, tasks, mean_comm_cost\n"
        "sweep the scenario; any other key sweeps a [scheduler] parameter).\n"
        "See examples/scenario_example.ini and docs/sweeps.md.\n"
        "\n"
        "options:\n"
        "  --schedulers <tag|all|name,...>  replace the config's scheduler\n"
        "                   selector; tags are paper, baseline,\n"
        "                   metaheuristic (see --list-schedulers)\n"
        "  --csv out.csv    stream results to a crash-safe CSV (flushed\n"
        "                   per row; byte-identical across thread counts)\n"
        "  --json out.jsonl stream results as JSON Lines\n"
        "  --resume         with --csv/--json: skip cells already present\n"
        "                   in the file(s) and append only missing rows.\n"
        "                   Assumes the INI and flags are unchanged since\n"
        "                   the original run — only axis names are encoded\n"
        "                   in the files, so edits to base scenario values\n"
        "                   (seed, cluster, ...) cannot be detected (the\n"
        "                   figset tool verifies this via its manifest)\n"
        "  --shard I/N      run only cells with job index ≡ I (mod N)\n"
        "  --serial         disable sweep parallelism\n"
        "  --gantt          render a Gantt chart of the first cell's run\n"
        "  --serve          run a live serving benchmark on this host\n"
        "                   instead of a simulation sweep: the [runtime]\n"
        "                   section sets workers/policy/arrival rate (see\n"
        "                   docs/runtime.md), [workload] the task sizes\n"
        "\n"
        "With `[bounds] enabled = true` in the INI, a certified\n"
        "lower-bound table (lb_comb, lb_qp, best-scheduler gap) prints\n"
        "after the sweep — keys tolerance and max_iterations tune the\n"
        "interior-point solver; see docs/bounds.md.\n"
        "\n"
        "The optional [eval] section selects the evaluator numeric mode\n"
        "(`numeric_mode = exact|fast`) and the fast-mode tolerance audit\n"
        "(`tolerance`, `audit_sample_period`); see docs/evaluation.md.\n";
  return code;
}

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("list-schedulers", false)) {
    list_schedulers(std::cout);
    return 0;
  }
  if (cli.get_bool("list-distributions", false)) {
    list_distributions(std::cout);
    return 0;
  }
  if (cli.get_bool("help", false)) return usage(std::cout, cli.program(), 0);
  if (cli.positional().empty()) return usage(std::cerr, cli.program(), 2);

  int exit_code = 0;
  try {
    const util::Config cfg = util::Config::load(cli.positional()[0]);
    // Apply [eval] before any evaluator exists: numeric mode (exact|fast)
    // and the fast-mode tolerance audit. See docs/evaluation.md.
    const exp::EvalConfig eval_cfg = exp::eval_config_from_config(cfg);
    exp::apply_eval_config(eval_cfg);
    if (cli.get_bool("serve", false)) return run_serve(cfg, std::cout);
    exp::Sweep sweep =
        exp::sweep_from_config(cfg, cli.get("schedulers", ""));
    sweep.parallel(!cli.get_bool("serial", false));

    const std::string shard = cli.get("shard", "");
    if (!shard.empty()) {
      const auto [index, count] = exp::parse_shard_spec(shard);
      sweep.shard(index, count);
    }
    const bool resume = cli.get_bool("resume", false);
    if (resume && !cli.has("csv") && !cli.has("json")) {
      std::cerr << "error: --resume needs --csv and/or --json (the files "
                   "to continue into)\n";
      return 2;
    }
    const metrics::SinkMode mode = resume ? metrics::SinkMode::kResume
                                          : metrics::SinkMode::kTruncate;

    const exp::Scenario scenario = exp::scenario_from_config(cfg);
    std::cout << "Scenario '" << scenario.name << "': "
              << scenario.workload.count << " " << scenario.workload.dist
              << " tasks on " << scenario.cluster.num_processors
              << " processors, " << scenario.replications << " replications"
              << (scenario.failures ? ", with failures" : "") << " — "
              << sweep.cell_count() << " grid cells\n\n";

    metrics::TableSink table(std::cout);
    sweep.add_sink(table);
    std::optional<metrics::CsvSink> csv;
    if (cli.has("csv")) {
      csv.emplace(cli.get("csv", ""), mode);
      sweep.add_sink(*csv);
    }
    std::optional<metrics::JsonlSink> jsonl;
    if (cli.has("json")) {
      jsonl.emplace(cli.get("json", ""), mode);
      sweep.add_sink(*jsonl);
    }

    const exp::SweepResult result = sweep.run();
    if (core::default_numeric_mode() == core::NumericMode::kFast) {
      const auto& audit = core::ToleranceAudit::global();
      std::cout << "Fast numeric mode: tolerance audit sampled "
                << audit.samples() << " evaluations, max relative deviation "
                << audit.max_deviation() << " (tolerance "
                << audit.config().tolerance << ")\n";
    }
    if (csv) std::cout << "CSV written to " << csv->path().string() << "\n";
    if (jsonl) {
      std::cout << "JSONL written to " << jsonl->path().string() << "\n";
    }
    if (result.failed > 0) {
      std::cerr << "error: " << result.failed << "/" << result.rows.size()
                << " cells failed (see table)\n";
      exit_code = 1;
    }

    const metrics::RelaxationBoundOptions bound_opts =
        exp::bounds_from_config(cfg);
    if (bound_opts.enabled && exit_code == 0) {
      print_certified_bounds(sweep, result, bound_opts,
                             !cli.get_bool("serial", false), std::cout);
    }

    if (cli.get_bool("gantt", false) && exit_code == 0) {
      // Re-run replication 0 of the first grid cell with tracing on —
      // through run_one, so the chart shows exactly the run the table
      // aggregated (same arrivals, smoothing, and failure trace).
      const auto cells = sweep.flatten();
      const auto& first = cells.front();
      const auto r = exp::run_one(first.scenario, first.scheduler,
                                  first.params, 0,
                                  /*record_task_trace=*/true);
      std::cout << "\n";
      sim::render_gantt(r, std::cout);
      const auto timeline = metrics::utilization_timeline(r, 20);
      std::cout << "\nUtilization timeline (busy fraction per 5% of run):\n";
      for (const auto& p : timeline) {
        const auto stars = static_cast<std::size_t>(p.busy_fraction * 40.0);
        std::cout << util::fmt(p.time, 5) << "s |" << std::string(stars, '*')
                  << "\n";
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return exit_code;
}
