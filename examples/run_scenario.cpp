// Run an experiment scenario defined in an INI-style config file and
// compare any set of registered schedulers on it — no recompilation
// needed.
//
//   ./run_scenario examples/scenario_example.ini
//   ./run_scenario my.ini --schedulers PN,EF,SUF --gantt
//   ./run_scenario --list-schedulers
//   ./run_scenario --list-distributions

#include <iostream>
#include <sstream>

#include "exp/config_scenario.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "metrics/timeline.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

namespace {

std::vector<std::string> parse_schedulers(const std::string& list) {
  if (list.empty()) return exp::all_schedulers();
  std::vector<std::string> names;
  std::istringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) {
    // Resolve eagerly: a typo fails up front with the full name list.
    names.push_back(exp::SchedulerRegistry::instance().canonical_name(token));
  }
  return names;
}

void pad_print(std::ostream& os, const std::string& name, std::size_t width,
               const std::string& summary) {
  os << "  " << name
     << std::string(name.size() < width ? width - name.size() : 1, ' ')
     << summary << "\n";
}

void list_schedulers(std::ostream& os) {
  const auto& registry = exp::SchedulerRegistry::instance();
  os << "Registered schedulers:\n";
  for (const auto& name : registry.names()) {
    pad_print(os, name, 5, registry.find(name).summary);
  }
}

void list_distributions(std::ostream& os) {
  const auto& registry = exp::DistributionRegistry::instance();
  os << "Registered task-size distributions:\n";
  for (const auto& name : registry.names()) {
    pad_print(os, name, 10, registry.find(name).summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.get_bool("list-schedulers", false)) {
    list_schedulers(std::cout);
    return 0;
  }
  if (cli.get_bool("list-distributions", false)) {
    list_distributions(std::cout);
    return 0;
  }
  if (cli.positional().empty()) {
    std::cerr << "usage: " << cli.program()
              << " <scenario.ini> [--schedulers PN,EF,...] [--gantt]\n"
              << "       " << cli.program() << " --list-schedulers\n"
              << "       " << cli.program() << " --list-distributions\n";
    return 2;
  }
  exp::Scenario scenario;
  exp::SchedulerParams params;
  std::vector<std::string> names;
  try {
    const util::Config cfg = util::Config::load(cli.positional()[0]);
    scenario = exp::scenario_from_config(cfg);
    params = exp::scheduler_params_from_config(cfg);
    names = parse_schedulers(cli.get("schedulers", ""));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  std::cout << "Scenario '" << scenario.name << "': "
            << scenario.workload.count << " " << scenario.workload.dist
            << " tasks on " << scenario.cluster.num_processors
            << " processors, " << scenario.replications << " replications"
            << (scenario.failures ? ", with failures" : "") << "\n\n";

  util::Table table({"scheduler", "makespan", "ci95", "efficiency",
                     "response", "requeued"});
  try {
    // Scheduler/distribution factories parse their [scheduler]/[workload]
    // keys lazily, so malformed values surface here, not at config load.
    for (const auto& name : names) {
      const auto runs = exp::run_replications(scenario, name, params);
      const auto cell = metrics::aggregate(name, runs);
      double requeued = 0.0;
      for (const auto& r : runs) {
        requeued += static_cast<double>(r.tasks_requeued);
      }
      table.add_row(cell.scheduler,
                    {cell.makespan.mean, cell.makespan.ci95,
                     cell.efficiency.mean, cell.response.mean,
                     requeued / static_cast<double>(runs.size())});
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  table.print(std::cout);

  if (cli.get_bool("gantt", false)) {
    // Re-run replication 0 of the first scheduler with tracing on —
    // through run_one, so the chart shows exactly the run the table
    // aggregated (same arrivals, smoothing, and failure trace).
    const auto r =
        exp::run_one(scenario, names.front(), params, 0,
                     /*record_task_trace=*/true);
    std::cout << "\n";
    sim::render_gantt(r, std::cout);
    const auto timeline = metrics::utilization_timeline(r, 20);
    std::cout << "\nUtilization timeline (busy fraction per 5% of run):\n";
    for (const auto& p : timeline) {
      const auto stars = static_cast<std::size_t>(p.busy_fraction * 40.0);
      std::cout << util::fmt(p.time, 5) << "s |" << std::string(stars, '*')
                << "\n";
    }
  }
  return 0;
}
