// Quickstart: build a heterogeneous cluster, generate a workload, schedule
// it with the paper's PN genetic scheduler, and print the outcome.
//
//   ./quickstart [--tasks N] [--procs M] [--comm C] [--seed S]

#include <iostream>

#include "core/genetic_scheduler.hpp"
#include "exp/scenario.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 500));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 16));
  const double comm = cli.get_double("comm", 10.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::cout << "gasched quickstart: " << tasks << " tasks on " << procs
            << " heterogeneous processors (mean comm cost " << comm
            << " s)\n\n";

  // 1. Describe and build the cluster. Rates are drawn uniformly from
  //    [10, 100] Mflop/s; links have normally distributed costs.
  const util::Rng base(seed);
  util::Rng cluster_rng = base.split(0);
  const sim::Cluster cluster =
      sim::build_cluster(exp::paper_cluster(comm, procs), cluster_rng);

  // 2. Generate a workload: normal task sizes, all arriving at t = 0.
  util::Rng workload_rng = base.split(1);
  workload::NormalSizes sizes(1000.0, 9e5);
  const workload::Workload wl =
      workload::generate(sizes, tasks, workload_rng);
  std::cout << "Workload: " << wl.size() << " tasks, "
            << util::fmt(wl.total_mflops(), 6) << " MFLOPs total\n";

  // 3. Create the PN scheduler (comm-aware GA, dynamic batch size) and
  //    run the simulation.
  auto pn = core::make_pn_scheduler();
  const sim::SimulationResult r =
      sim::simulate(cluster, wl, *pn, base.split(2));

  // 4. Report.
  std::cout << "\nResults (PN scheduler):\n"
            << "  makespan            " << util::fmt(r.makespan, 6) << " s\n"
            << "  efficiency          " << util::fmt(r.efficiency(), 4)
            << "\n"
            << "  mean response time  " << util::fmt(r.mean_response_time, 6)
            << " s\n"
            << "  scheduler calls     " << r.scheduler_invocations << "\n"
            << "  scheduler CPU time  "
            << util::fmt(r.scheduler_wall_seconds, 4) << " s\n\n";

  util::Table table({"proc", "rate Mflop/s", "tasks", "busy s", "comm s"});
  for (std::size_t j = 0; j < std::min<std::size_t>(cluster.size(), 8); ++j) {
    table.add_row("P" + std::to_string(j),
                  {cluster.processors[j].base_rate,
                   static_cast<double>(r.per_proc[j].tasks),
                   r.per_proc[j].busy_time, r.per_proc[j].comm_time});
  }
  table.print(std::cout);
  if (cluster.size() > 8) {
    std::cout << "(first 8 of " << cluster.size() << " processors shown)\n";
  }
  return 0;
}
