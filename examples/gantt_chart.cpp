// Visual walk-through of one schedule: run a small simulation with task
// tracing enabled, validate the trace, render an ASCII Gantt chart, and
// optionally export the per-task trace as CSV.
//
//   ./gantt_chart [--tasks N] [--procs M] [--comm C] [--seed S]
//                 [--scheduler PN|ZO|EF|...] [--csv trace.csv]

#include <iostream>

#include "exp/config_scenario.hpp"
#include "exp/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 60));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 8));
  const double comm = cli.get_double("comm", 5.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const std::string name = cli.get("scheduler", "PN");
  const std::string csv = cli.get("csv", "");

  exp::SchedulerParams opts;
  opts.set("batch_size", 20);
  opts.set("max_generations", 120);
  const auto policy = exp::make_scheduler(name, opts);

  const util::Rng base(seed);
  util::Rng cluster_rng = base.split(0);
  const sim::Cluster cluster =
      sim::build_cluster(exp::paper_cluster(comm, procs), cluster_rng);
  util::Rng workload_rng = base.split(1);
  workload::UniformSizes sizes(100.0, 2000.0);
  const workload::Workload wl = workload::generate(sizes, tasks, workload_rng);

  sim::EngineConfig cfg;
  cfg.record_task_trace = true;
  const sim::SimulationResult r =
      sim::simulate(cluster, wl, *policy, base.split(2), cfg);

  const std::string issue = sim::validate_task_trace(r);
  if (!issue.empty()) {
    std::cerr << "trace inconsistency: " << issue << "\n";
    return 1;
  }

  std::cout << name << " schedule of " << tasks << " tasks on " << procs
            << " processors — makespan " << r.makespan << " s, efficiency "
            << r.efficiency() << "\n\n# = executing, - = receiving, . = idle\n\n";
  sim::GanttOptions gopts;
  gopts.width = 96;
  gopts.max_procs = procs;
  sim::render_gantt(r, std::cout, gopts);

  if (!csv.empty()) {
    sim::save_task_trace(r, csv);
    std::cout << "\ntask trace written to " << csv << "\n";
  }
  return 0;
}
