// Live demonstration (the paper's §6 future work): the PN scheduler and
// two baselines drive *real worker threads* executing calibrated
// floating-point work, with heterogeneous worker speeds and emulated
// per-worker dispatch latencies. The exact same SchedulingPolicy objects
// used in simulation run here unmodified.
//
//   ./live_runtime [--tasks N] [--workers W] [--scale S]

#include <iostream>

#include "exp/scenario.hpp"
#include "rt/runtime.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace gasched;

namespace {

rt::RuntimeConfig make_config(std::size_t workers, double scale) {
  rt::RuntimeConfig cfg;
  // Heterogeneous speeds: fastest worker 1.0 down to ~0.25.
  cfg.worker_speeds.resize(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    cfg.worker_speeds[i] =
        1.0 - 0.75 * static_cast<double>(i) / std::max<std::size_t>(1, workers - 1);
  }
  // Heterogeneous dispatch latencies (ms-scale), the thing PN predicts.
  cfg.dispatch_latency.resize(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    cfg.dispatch_latency[i] = 0.001 + 0.004 * static_cast<double>(i % 3);
  }
  cfg.work_scale = scale;
  cfg.min_batch_trigger = 32;
  cfg.seed = 99;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 200));
  const auto workers = static_cast<std::size_t>(cli.get_int("workers", 6));
  const double scale = cli.get_double("scale", 0.2);

  workload::UniformSizes sizes(1.0, 8.0);  // nominal MFLOPs, kept small
  util::Rng wrng(5);
  const workload::Workload wl = workload::generate(sizes, tasks, wrng);

  std::cout << "Live runtime: " << tasks << " tasks on " << workers
            << " worker threads (speeds 1.0 → 0.25, latencies 1–5 ms)\n\n";

  exp::SchedulerParams opts;
  opts.set("max_generations", 60);
  opts.set("population", 16);
  opts.set("batch_size", 64);

  util::Table table({"scheduler", "makespan s", "busy s", "comm s",
                     "invocations"});
  for (const auto kind :
       {"PN", "EF",
        "RR"}) {
    rt::Runtime runtime(make_config(workers, scale),
                        exp::make_scheduler(kind, opts));
    for (const auto& t : wl.tasks) runtime.submit(t);
    const rt::RuntimeResult r = runtime.drain();
    double busy = 0.0, comm = 0.0;
    for (const auto& w : r.per_worker) {
      busy += w.busy_seconds;
      comm += w.comm_seconds;
    }
    table.add_row(kind,
                  {r.makespan_seconds, busy, comm,
                   static_cast<double>(r.scheduler_invocations)});
  }
  table.print(std::cout);
  std::cout << "\nSame SchedulingPolicy objects as the simulator — the §3 "
               "protocol, measured rates, and Γ-smoothed latency estimates "
               "all transfer to real threads.\n";
  return 0;
}
