// Extending gasched without touching the library: implement a
// sim::SchedulingPolicy, register it in exp::SchedulerRegistry under a
// name of your choice, and the whole experiment harness — INI scenarios,
// run_replications, aggregation, --schedulers lists — can drive it next
// to the 17 built-ins. Also demonstrates seeding simulated processor
// rates from a *real* Linpack measurement of the host machine, the same
// calibration the paper uses for real workers.
//
//   ./custom_scheduler [--tasks N] [--seed S]

#include <iostream>
#include <memory>

#include "exp/config_scenario.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "sim/linpack.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

namespace {

/// A deliberately naive policy: every task goes to a uniformly random
/// processor. Implementing sim::SchedulingPolicy is all it takes to run
/// inside the engine and the experiment harness.
class RandomPolicy final : public sim::SchedulingPolicy {
 public:
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override {
    auto a = sim::BatchAssignment::empty(view.size());
    while (!queue.empty()) {
      a.per_proc[rng.index(view.size())].push_back(queue.front().id);
      queue.pop_front();
    }
    return a;
  }
  std::string name() const override { return "RAND"; }
};

/// The scenario as it would live in a .ini file — once registered, the
/// [scheduler] section can select and tune RAND exactly like a built-in.
constexpr const char* kScenarioIni = R"(
[scenario]
name = custom
replications = 3

[cluster]
processors = 12

[comm]
mean_cost = 10

[workload]
dist = uniform
lo = 10
hi = 1000

[scheduler]
name = RAND
max_generations = 150
)";

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  // --- Register the custom policy through the public registry API ------
  exp::SchedulerRegistry::instance().add(
      {.name = "RAND",
       .summary = "uniformly random placement (example custom scheduler)",
       .factory = [](const exp::SchedulerParams&) {
         return std::make_unique<RandomPolicy>();
       }});

  std::cout << "Registered schedulers (17 built-ins + RAND):\n ";
  for (const auto& name : exp::SchedulerRegistry::instance().names()) {
    std::cout << " " << name;
  }
  std::cout << "\n\n";

  // --- Calibrate: measure this host with the Linpack-style benchmark ----
  util::Rng lin_rng(seed);
  const sim::LinpackResult lin = sim::linpack_benchmark(256, lin_rng);
  std::cout << "Host Linpack (n=" << lin.n << "): "
            << util::fmt(lin.mflops, 5) << " Mflop/s in "
            << util::fmt(lin.seconds * 1e3, 4) << " ms (residual "
            << lin.residual << ")\n\n";

  // --- Build the scenario from the INI text above ----------------------
  const util::Config cfg = util::Config::parse(kScenarioIni);
  exp::Scenario s = exp::scenario_from_config(cfg);
  const exp::SchedulerParams params = exp::scheduler_params_from_config(cfg);
  s.workload.count = tasks;
  s.seed = seed;
  // Scale the simulated rates so the fastest machine matches this host.
  s.cluster.rate_hi = std::max(lin.mflops, 20.0);
  s.cluster.rate_lo = s.cluster.rate_hi / 10.0;

  // --- Run the INI-selected custom policy and two built-ins ------------
  // Every scheduler sees identical tasks and machines per replication
  // (the runner's same-workload guarantee), so the rows are comparable.
  const std::string custom = cfg.get("scheduler.name", "RAND");
  util::Table table({"scheduler", "makespan", "ci95", "efficiency"});
  for (const std::string& name :
       {custom, std::string("EF"), std::string("PN")}) {
    const auto cell = exp::run_cell(s, name, params);
    table.add_row(cell.scheduler,
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean});
  }
  table.print(std::cout);
  std::cout << "\nWrite your own sim::SchedulingPolicy subclass, add it to "
               "exp::SchedulerRegistry, and every INI scenario, bench and "
               "example can select it by name — no library edits.\n";
  return 0;
}
