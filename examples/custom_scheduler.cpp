// Extending gasched: plug your own scheduling policy into the simulator
// and benchmark it against the built-ins. Also demonstrates seeding
// simulated processor rates from a *real* Linpack measurement of the host
// machine, the same calibration the paper uses for real workers.
//
//   ./custom_scheduler [--tasks N] [--seed S]

#include <iostream>
#include <memory>

#include "exp/runner.hpp"
#include "sim/engine.hpp"
#include "sim/linpack.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace gasched;

namespace {

/// A deliberately naive policy: every task goes to a uniformly random
/// processor. Implementing sim::SchedulingPolicy is all it takes to run
/// inside the engine and the experiment harness.
class RandomPolicy final : public sim::SchedulingPolicy {
 public:
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) override {
    auto a = sim::BatchAssignment::empty(view.size());
    while (!queue.empty()) {
      a.per_proc[rng.index(view.size())].push_back(queue.front().id);
      queue.pop_front();
    }
    return a;
  }
  std::string name() const override { return "RAND"; }
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  // --- Calibrate: measure this host with the Linpack-style benchmark ----
  util::Rng lin_rng(seed);
  const sim::LinpackResult lin = sim::linpack_benchmark(256, lin_rng);
  std::cout << "Host Linpack (n=" << lin.n << "): "
            << util::fmt(lin.mflops, 5) << " Mflop/s in "
            << util::fmt(lin.seconds * 1e3, 4) << " ms (residual "
            << lin.residual << ")\n\n";

  // --- Build a cluster whose fastest machine matches this host ---------
  sim::ClusterConfig cfg = exp::paper_cluster(10.0, 12);
  cfg.rate_hi = std::max(lin.mflops, 20.0);
  cfg.rate_lo = cfg.rate_hi / 10.0;
  const util::Rng base(seed);
  util::Rng cluster_rng = base.split(0);
  const sim::Cluster cluster = sim::build_cluster(cfg, cluster_rng);

  util::Rng workload_rng = base.split(1);
  workload::UniformSizes sizes(10.0, 1000.0);
  const workload::Workload wl =
      workload::generate(sizes, tasks, workload_rng);

  // --- Run the custom policy and two built-ins on identical inputs ------
  util::Table table({"scheduler", "makespan", "efficiency"});
  {
    RandomPolicy random_policy;
    const auto r = sim::simulate(cluster, wl, random_policy, base.split(2));
    table.add_row("RAND (custom)", {r.makespan, r.efficiency()});
  }
  {
    auto ef = exp::make_scheduler(exp::SchedulerKind::kEF);
    const auto r = sim::simulate(cluster, wl, *ef, base.split(2));
    table.add_row("EF", {r.makespan, r.efficiency()});
  }
  {
    exp::SchedulerOptions opts;
    opts.max_generations = 150;
    auto pn = exp::make_scheduler(exp::SchedulerKind::kPN, opts);
    const auto r = sim::simulate(cluster, wl, *pn, base.split(2));
    table.add_row("PN", {r.makespan, r.efficiency()});
  }
  table.print(std::cout);
  std::cout << "\nWrite your own sim::SchedulingPolicy subclass and pass it "
               "to sim::simulate — the engine handles arrivals, dispatch, "
               "communication costs, and accounting.\n";
  return 0;
}
