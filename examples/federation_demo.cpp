// Run a federated multi-cluster scenario from an INI file — the fed::
// counterpart of run_scenario. The [federation]/[cluster.*]/[link.*]
// sections describe N clusters, their link topology, the arrival router
// and the migration policy (docs/federation.md documents every key);
// this binary runs the configured replications and prints per-cluster
// routing/migration accounting plus the federation-level summary.
//
//   ./federation_demo configs/federation.ini
//   ./federation_demo configs/federation.ini --serial

#include <iostream>

#include "fed/federation.hpp"
#include "util/cli.hpp"
#include "util/config.hpp"
#include "util/table.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: " << cli.program()
              << " <federation.ini> [--serial]\n"
                 "example config: configs/federation.ini\n";
    return 2;
  }

  try {
    const util::Config cfg = util::Config::load(cli.positional()[0]);
    const fed::FederationConfig fc = fed::federation_from_config(cfg);

    std::cout << "Federation '" << fc.name << "': " << fc.clusters.size()
              << " clusters, " << fc.topology.link_count() << " links, "
              << fc.workload.count << " " << fc.workload.dist << " tasks, "
              << fc.replications << " replications\n\n";

    const auto runs = fed::run_federation_replications(
        fc, /*parallel=*/!cli.get_bool("serial", false));

    // Per-cluster accounting, averaged over replications. Conservation
    // (completed == routed + migrated_in − migrated_out) holds per rep.
    util::Table per_cluster({"cluster", "routed", "migr in", "migr out",
                             "completed", "makespan"});
    for (std::size_t k = 0; k < fc.clusters.size(); ++k) {
      double routed = 0, in = 0, out = 0, completed = 0, makespan = 0;
      for (const fed::FederationResult& r : runs) {
        const fed::ClusterResult& c = r.clusters[k];
        routed += static_cast<double>(c.tasks_routed);
        in += static_cast<double>(c.migrated_in);
        out += static_cast<double>(c.migrated_out);
        completed += static_cast<double>(c.sim.tasks_completed);
        makespan += c.sim.makespan;
      }
      const double n = static_cast<double>(runs.size());
      per_cluster.add_row(fc.clusters[k].name,
                          {routed / n, in / n, out / n, completed / n,
                           makespan / n});
    }
    per_cluster.print(std::cout);

    double makespan = 0, response = 0, migrations = 0, mflops = 0,
           link_busy = 0;
    for (const fed::FederationResult& r : runs) {
      makespan += r.makespan;
      response += r.mean_response_time;
      migrations += static_cast<double>(r.migrations);
      mflops += r.migrated_mflops;
      link_busy += r.link_busy_seconds;
    }
    const double n = static_cast<double>(runs.size());
    std::cout << "\nfederation means over " << runs.size()
              << " replications:\n"
              << "  makespan            " << util::fmt(makespan / n) << "\n"
              << "  mean response time  " << util::fmt(response / n) << "\n"
              << "  migrations          " << util::fmt(migrations / n) << "\n"
              << "  migrated MFLOPs     " << util::fmt(mflops / n) << "\n"
              << "  link busy seconds   " << util::fmt(link_busy / n) << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
