// Tour of the meta-heuristic scheduler family: run the same workload
// through every batch searcher the library ships — the paper's PN and ZO
// genetic schedulers, the island-model PNI, simulated annealing, tabu
// search, ant colony optimisation, and restart hill climbing — and
// compare makespan, efficiency, and scheduling cost.
//
//   ./metaheuristic_tour [--tasks N] [--procs M] [--comm C] [--seed S]

#include <iostream>
#include <memory>
#include <vector>

#include "core/genetic_scheduler.hpp"
#include "exp/scenario.hpp"
#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"
#include "sim/engine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks", 600));
  const auto procs = static_cast<std::size_t>(cli.get_int("procs", 16));
  const double comm = cli.get_double("comm", 8.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  std::cout << "Meta-heuristic tour: " << tasks << " tasks on " << procs
            << " processors, mean comm cost " << comm << " s\n\n";

  const util::Rng base(seed);
  util::Rng cluster_rng = base.split(0);
  const sim::Cluster cluster =
      sim::build_cluster(exp::paper_cluster(comm, procs), cluster_rng);
  util::Rng workload_rng = base.split(1);
  workload::UniformSizes sizes(10.0, 1000.0);
  const workload::Workload wl = workload::generate(sizes, tasks, workload_rng);

  // One factory per search strategy. All batch searchers use the same
  // batch size so results isolate the search itself.
  const std::size_t batch = 100;
  std::vector<std::unique_ptr<sim::SchedulingPolicy>> policies;
  {
    core::GeneticSchedulerConfig pn_cfg;
    pn_cfg.ga.max_generations = 150;
    pn_cfg.dynamic_batch = false;
    pn_cfg.fixed_batch = batch;
    policies.push_back(core::make_pn_scheduler(pn_cfg));
    policies.push_back(core::make_zo_scheduler(batch));
    policies.push_back(core::make_pn_island_scheduler(4, pn_cfg));

    meta::SaConfig sa;
    sa.batch.batch_size = batch;
    policies.push_back(meta::make_sa_scheduler(sa));
    meta::TabuConfig ts;
    ts.batch.batch_size = batch;
    policies.push_back(meta::make_tabu_scheduler(ts));
    meta::AcoConfig aco;
    aco.batch.batch_size = batch;
    policies.push_back(meta::make_aco_scheduler(aco));
    meta::HillClimbConfig hc;
    hc.batch.batch_size = batch;
    policies.push_back(meta::make_hill_climb_scheduler(hc));
  }

  util::Table table(
      {"scheduler", "makespan s", "efficiency", "sched CPU s", "invocations"});
  for (const auto& policy : policies) {
    // Fresh RNG per run: every scheduler sees identical tasks & cluster.
    const sim::SimulationResult r =
        sim::simulate(cluster, wl, *policy, base.split(2));
    table.add_row(policy->name(),
                  {r.makespan, r.efficiency(), r.scheduler_wall_seconds,
                   static_cast<double>(r.scheduler_invocations)});
  }
  table.print(std::cout);

  std::cout << "\nAll searchers see the same information (smoothed rates, "
               "pending load,\nsmoothed per-link comm estimates); only the "
               "search strategy differs.\n";
  return 0;
}
