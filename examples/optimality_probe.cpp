// How close to optimal is a schedule? This example demonstrates the
// bounds API (metrics/bounds.hpp): it builds one small batch-scheduling
// instance, computes the exact optimal makespan by branch-and-bound,
// prices the greedy list schedule and every meta-heuristic searcher
// against it, and prints the gaps.
//
//   ./optimality_probe [--tasks N<=12] [--procs M<=4] [--seed S]

#include <iostream>

#include "core/genetic_scheduler.hpp"
#include "exp/scenario.hpp"
#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"
#include "metrics/bounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

namespace {

double schedule_makespan(sim::SchedulingPolicy& policy,
                         const metrics::BoundInstance& inst,
                         const sim::SystemView& view, std::uint64_t seed) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < inst.task_sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), inst.task_sizes[i], 0.0});
  }
  util::Rng rng(seed);
  const auto a = policy.invoke(view, q, rng);
  double ms = 0.0;
  for (std::size_t j = 0; j < view.size(); ++j) {
    double c = 0.0;
    for (const auto id : a.per_proc[j]) {
      c += inst.task_sizes[static_cast<std::size_t>(id)] /
               view.procs[j].rate +
           view.procs[j].comm_estimate;
    }
    ms = std::max(ms, c);
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tasks =
      std::min<std::size_t>(static_cast<std::size_t>(cli.get_int("tasks", 10)),
                            12);
  const auto procs =
      std::min<std::size_t>(static_cast<std::size_t>(cli.get_int("procs", 3)),
                            4);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // Build one random instance.
  util::Rng rng(seed);
  metrics::BoundInstance inst;
  sim::SystemView view;
  view.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    inst.rates.push_back(rng.uniform(10.0, 80.0));
    inst.comm_costs.push_back(rng.uniform(0.1, 2.0));
    view.procs[j].id = static_cast<sim::ProcId>(j);
    view.procs[j].rate = inst.rates[j];
    view.procs[j].comm_estimate = inst.comm_costs[j];
    view.procs[j].comm_observations = 1;
  }
  for (std::size_t i = 0; i < tasks; ++i) {
    inst.task_sizes.push_back(rng.uniform(20.0, 500.0));
  }

  std::cout << "Instance: " << tasks << " tasks on " << procs
            << " heterogeneous processors (exhaustive search space "
            << procs << "^" << tasks << ")\n\n";
  const double lb = metrics::makespan_lower_bound(inst);
  const double opt = metrics::optimal_makespan_exact(inst);
  std::cout << "lower bound      " << util::fmt(lb) << " s\n"
            << "exact optimum    " << util::fmt(opt) << " s  (bound gap "
            << util::fmt(100.0 * (opt - lb) / opt, 3) << "%)\n\n";

  util::Table table({"searcher", "makespan s", "vs optimum"});
  core::GeneticSchedulerConfig pn_cfg;
  pn_cfg.dynamic_batch = false;
  pn_cfg.fixed_batch = tasks;
  pn_cfg.ga.max_generations = 200;
  meta::SaConfig sa_cfg;
  sa_cfg.batch.batch_size = tasks;
  meta::TabuConfig ts_cfg;
  ts_cfg.batch.batch_size = tasks;
  meta::AcoConfig aco_cfg;
  aco_cfg.batch.batch_size = tasks;
  meta::HillClimbConfig hc_cfg;
  hc_cfg.batch.batch_size = tasks;

  std::vector<std::unique_ptr<sim::SchedulingPolicy>> policies;
  policies.push_back(core::make_pn_scheduler(pn_cfg));
  policies.push_back(meta::make_sa_scheduler(sa_cfg));
  policies.push_back(meta::make_tabu_scheduler(ts_cfg));
  policies.push_back(meta::make_aco_scheduler(aco_cfg));
  policies.push_back(meta::make_hill_climb_scheduler(hc_cfg));
  for (const auto& policy : policies) {
    const double ms = schedule_makespan(*policy, inst, view, seed + 1);
    table.add_row(policy->name(),
                  {ms, ms / opt});
  }
  table.print(std::cout);
  std::cout << "\nvs optimum = makespan / exact optimum (1.0 = optimal).\n";
  return 0;
}
