// Compare all seven schedulers from the paper (EF, LL, RR, ZO, PN, MM,
// MX) on one scenario, reproducing the structure of the paper's makespan
// bar charts on a workload of your choice.
//
//   ./compare_schedulers [--dist normal|uniform|poisson|pareto|...]
//                        [--tasks N]
//                        [--procs M] [--comm C] [--reps R] [--seed S]

#include <iostream>
#include <string>

#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  exp::Scenario s;
  s.name = "compare";
  s.cluster = exp::paper_cluster(cli.get_double("comm", 10.0),
                                 static_cast<std::size_t>(
                                     cli.get_int("procs", 20)));
  s.workload.count = static_cast<std::size_t>(cli.get_int("tasks", 600));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  s.replications = static_cast<std::size_t>(cli.get_int("reps", 3));

  // Any registered family works. Flags cover the common knobs; families
  // without a branch here (e.g. bimodal) run with their documented
  // registry defaults — use run_scenario with a [workload] section to
  // tune those.
  std::string dist;
  try {
    dist = exp::DistributionRegistry::instance().canonical_name(
        cli.get("dist", "normal"));
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  s.workload.dist = dist;
  if (dist == "uniform") {
    s.workload.param_a = cli.get_double("lo", 10.0);
    s.workload.param_b = cli.get_double("hi", 1000.0);
  } else if (dist == "poisson") {
    s.workload.param_a = cli.get_double("mean", 100.0);
  } else if (dist == "pareto") {
    s.workload.params.set("alpha", cli.get_double("alpha", 1.1));
    s.workload.param_a = cli.get_double("lo", 10.0);
    s.workload.param_b = cli.get_double("hi", 10000.0);
  } else if (dist == "constant") {
    s.workload.param_a = cli.get_double("size", cli.get_double("mean", 1000.0));
  } else if (dist == "normal") {
    s.workload.param_a = cli.get_double("mean", 1000.0);
    s.workload.param_b = cli.get_double("variance", 9e5);
  }

  exp::SchedulerParams opts;
  opts.set("max_generations",
           static_cast<std::size_t>(cli.get_int("generations", 150)));

  std::cout << "Comparing 7 schedulers: " << s.workload.count << " " << dist
            << " tasks, " << s.cluster.num_processors
            << " processors, mean comm cost " << s.cluster.comm.mean_cost
            << " s, " << s.replications << " replications\n\n";

  util::Table table({"scheduler", "makespan", "ci95", "efficiency",
                     "mean response", "sched CPU s"});
  double best = 1e300;
  std::string best_name;
  for (const auto kind : exp::all_schedulers()) {
    const auto cell = exp::run_cell(s, kind, opts);
    table.add_row(cell.scheduler,
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.response.mean,
                   cell.sched_wall.mean});
    if (cell.makespan.mean < best) {
      best = cell.makespan.mean;
      best_name = cell.scheduler;
    }
  }
  table.print(std::cout);
  std::cout << "\nBest makespan: " << best_name << " (" << util::fmt(best, 6)
            << " s)\n";
  return 0;
}
