// Dynamic-resource scenario: processors whose availability drifts over
// time (non-dedicated machines) and links whose costs drift. This is the
// environment the PN scheduler is designed for — it tracks both through
// the Γ smoothing function — while the simple heuristics only see loads.
//
//   ./dynamic_cluster [--tasks N] [--procs M] [--reps R] [--seed S]

#include <iostream>

#include "exp/runner.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  exp::Scenario s;
  s.name = "dynamic";
  s.cluster = exp::paper_cluster(cli.get_double("comm", 15.0),
                                 static_cast<std::size_t>(
                                     cli.get_int("procs", 16)));
  // Non-dedicated processors: availability random-walks in [0.3, 1.0].
  s.cluster.availability = sim::AvailabilityKind::kRandomWalk;
  s.cluster.avail_lo = 0.3;
  s.cluster.avail_hi = 1.0;
  s.cluster.avail_period = 100.0;
  // Link costs drift too.
  s.cluster.drifting_comm = true;
  s.cluster.comm_drift_step = 0.2;

  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 1000.0;
  s.workload.count = static_cast<std::size_t>(cli.get_int("tasks", 600));
  s.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  s.replications = static_cast<std::size_t>(cli.get_int("reps", 3));

  exp::SchedulerParams opts;
  opts.set("max_generations",
           static_cast<std::size_t>(cli.get_int("generations", 150)));

  std::cout << "Dynamic cluster: availability random-walks in [0.3, 1.0], "
               "link costs drift.\n"
            << s.workload.count << " tasks on " << s.cluster.num_processors
            << " processors, " << s.replications << " replications.\n\n";

  util::Table table({"scheduler", "makespan", "efficiency", "response"});
  for (const auto kind : exp::all_schedulers()) {
    const auto cell = exp::run_cell(s, kind, opts);
    table.add_row(cell.scheduler, {cell.makespan.mean, cell.efficiency.mean,
                                   cell.response.mean});
  }
  table.print(std::cout);
  std::cout << "\nThe comm-aware batch scheduler (PN) keeps its advantage "
               "even though neither the availability nor the link costs "
               "are known a priori — it estimates both from history via "
               "the smoothing function Γ.\n";
  return 0;
}
