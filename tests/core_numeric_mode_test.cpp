// Numeric-mode contract tests (docs/evaluation.md, "Numeric modes"):
// the SIMD kernels against long-double references per supported ISA, a
// ~500-instance fast-vs-exact fuzz across batch/cluster/comm regimes,
// the bitwise identities each mode promises (exact: canonical goldens
// unchanged; fast: delta pricing == full pricing), and the
// ToleranceAudit machinery — including the deliberate-violation hook
// proving a tolerance breach is a hard error, not a warning.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "core/kernels.hpp"
#include "core/numeric.hpp"
#include "ga/engine.hpp"
#include "ga/crossover.hpp"
#include "ga/mutation.hpp"
#include "ga/selection.hpp"
#include "util/rng.hpp"

namespace gasched::core {
namespace {

// This file constructs every evaluator with an explicit mode, so it is
// immune to the GASCHED_NUMERIC_MODE override the fast-mode CI job sets;
// nothing here pins the process default.

sim::SystemView random_view(std::size_t procs, double comm_hi,
                            util::Rng& rng) {
  sim::SystemView v;
  v.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rng.uniform(5.0, 120.0);
    v.procs[j].pending_mflops =
        rng.bernoulli(0.5) ? rng.uniform(0.0, 500.0) : 0.0;
    v.procs[j].comm_estimate = rng.uniform(0.0, comm_hi);
    v.procs[j].comm_observations = 1;
  }
  return v;
}

std::vector<double> random_sizes(std::size_t tasks, util::Rng& rng) {
  std::vector<double> s(tasks);
  for (auto& v : s) v = rng.uniform(5.0, 1500.0);
  return s;
}

ga::Chromosome random_chromosome(const ScheduleCodec& codec, util::Rng& rng) {
  ga::Chromosome c;
  c.reserve(codec.chromosome_length());
  for (std::size_t s = 0; s < codec.num_tasks(); ++s) {
    c.push_back(ScheduleCodec::task_gene(s));
  }
  for (std::size_t k = 0; k + 1 < codec.num_procs(); ++k) {
    c.push_back(ScheduleCodec::delimiter_gene(k));
  }
  rng.shuffle(c);
  return c;
}

std::vector<kernels::Isa> supported_isas() {
  std::vector<kernels::Isa> isas{kernels::Isa::kScalar};
  if (kernels::supported(kernels::Isa::kAvx2)) {
    isas.push_back(kernels::Isa::kAvx2);
  }
  if (kernels::supported(kernels::Isa::kNeon)) {
    isas.push_back(kernels::Isa::kNeon);
  }
  return isas;
}

// --- kernels ----------------------------------------------------------------

TEST(Kernels, SumGatherMatchesLongDoubleReferenceAcrossIsas) {
  util::Rng rng(11);
  for (const kernels::Isa isa : supported_isas()) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
          std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{31},
          std::size_t{257}}) {
      std::vector<double> values(1024);
      for (auto& v : values) v = rng.uniform(-100.0, 100.0);
      std::vector<std::size_t> idx(n);
      for (auto& i : idx) i = rng.index(values.size());

      long double ref = 0.0L;
      for (const std::size_t i : idx) ref += values[i];
      const double got = kernels::sum_gather_isa(isa, values.data(),
                                                 idx.data(), n);
      const double dev = metric_deviation(got, static_cast<double>(ref), 1.0);
      EXPECT_LE(dev, 1e-13) << kernels::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(Kernels, SumRangeMatchesLongDoubleReferenceAcrossIsas) {
  util::Rng rng(12);
  for (const kernels::Isa isa : supported_isas()) {
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{8},
          std::size_t{13}, std::size_t{64}, std::size_t{501}}) {
      std::vector<double> values(n);
      for (auto& v : values) v = rng.uniform(0.0, 1000.0);
      long double ref = 0.0L;
      for (const double v : values) ref += v;
      const double got = kernels::sum_range_isa(isa, values.data(), n);
      const double dev = metric_deviation(got, static_cast<double>(ref), 1.0);
      EXPECT_LE(dev, 1e-13) << kernels::isa_name(isa) << " n=" << n;
    }
  }
}

TEST(Kernels, ReduceDeviationMatchesScalarSemanticsAcrossIsas) {
  util::Rng rng(13);
  for (const kernels::Isa isa : supported_isas()) {
    for (const std::size_t m :
         {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{4},
          std::size_t{5}, std::size_t{9}, std::size_t{33}}) {
      std::vector<double> completion(m);
      for (auto& c : completion) c = rng.uniform(0.0, 500.0);
      if (m >= 2) completion[m / 2] = completion[0];  // duplicate-max case
      const double psi = rng.uniform(0.0, 500.0);

      long double sum_sq = 0.0L;
      double mx = 0.0;
      for (const double c : completion) {
        const long double d = static_cast<long double>(psi) - c;
        sum_sq += d * d;
        mx = std::max(mx, c);
      }
      std::size_t argmax = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if (completion[j] == mx) {
          argmax = j;
          break;
        }
      }

      const kernels::Reduction r =
          kernels::reduce_deviation_isa(isa, completion.data(), m, psi);
      EXPECT_LE(metric_deviation(r.sum_sq, static_cast<double>(sum_sq), 1.0),
                1e-13)
          << kernels::isa_name(isa) << " m=" << m;
      EXPECT_EQ(r.max, mx) << kernels::isa_name(isa) << " m=" << m;
      EXPECT_EQ(r.argmax, argmax) << kernels::isa_name(isa) << " m=" << m;
    }
  }
}

TEST(Kernels, ActiveIsaIsSupportedAndDispatchedKernelsMatchIt) {
  const kernels::Isa isa = kernels::active_isa();
  EXPECT_TRUE(kernels::supported(isa));
  util::Rng rng(14);
  std::vector<double> values(129);
  for (auto& v : values) v = rng.uniform(0.0, 10.0);
  std::vector<std::size_t> idx(77);
  for (auto& i : idx) i = rng.index(values.size());
  EXPECT_EQ(kernels::sum_gather(values.data(), idx.data(), idx.size()),
            kernels::sum_gather_isa(isa, values.data(), idx.data(),
                                    idx.size()));
  EXPECT_EQ(kernels::sum_range(values.data(), values.size()),
            kernels::sum_range_isa(isa, values.data(), values.size()));
  const kernels::Reduction a =
      kernels::reduce_deviation(values.data(), values.size(), 5.0);
  const kernels::Reduction b =
      kernels::reduce_deviation_isa(isa, values.data(), values.size(), 5.0);
  EXPECT_EQ(a.sum_sq, b.sum_sq);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.argmax, b.argmax);
}

// --- mode parsing -----------------------------------------------------------

TEST(NumericMode, ParseAndNameRoundTrip) {
  EXPECT_EQ(parse_numeric_mode("exact"), NumericMode::kExact);
  EXPECT_EQ(parse_numeric_mode("fast"), NumericMode::kFast);
  EXPECT_STREQ(numeric_mode_name(NumericMode::kExact), "exact");
  EXPECT_STREQ(numeric_mode_name(NumericMode::kFast), "fast");
  EXPECT_THROW(parse_numeric_mode("fastest"), std::runtime_error);
  EXPECT_THROW(parse_numeric_mode(""), std::runtime_error);
}

// --- fast vs exact property -------------------------------------------------

// ~500 random instances spanning the regimes the evaluator meets in
// practice: tiny/medium/large batches (H), narrow/wide clusters (M), and
// comm-free vs comm-heavy objectives (Γ). Every fast metric must stay
// within 1e-12 relative deviation of its exact shadow — the exact bound
// the default ToleranceAudit enforces in production. The audit itself
// runs with sample_period = 1 here, so each fast pricing is *also*
// shadow-checked internally; a violation would throw and fail the test
// twice over.
TEST(NumericModeProperty, FastMatchesExactWithinToleranceFuzzed) {
  util::Rng rng(31);
  ToleranceAudit audit(AuditConfig{1e-12, 1});
  const ToleranceAudit::Scope scope(audit);

  FlatSchedule flat;
  QueueLoads loads;
  const std::size_t kRounds = 500;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t regime = round % 3;
    const std::size_t tasks =
        regime == 0 ? 1 + rng.index(8)
                    : (regime == 1 ? 20 + rng.index(100) : 200 + rng.index(400));
    const std::size_t procs = regime == 0 ? 1 + rng.index(3)
                                          : (regime == 1 ? 4 + rng.index(13)
                                                         : 16 + rng.index(49));
    const bool use_comm = rng.bernoulli(0.5);
    const double comm_hi = rng.bernoulli(0.5) ? 2.0 : 60.0;

    const ScheduleCodec codec(tasks, procs);
    const auto sizes = random_sizes(tasks, rng);
    const auto view = random_view(procs, comm_hi, rng);
    const ScheduleEvaluator exact(sizes, view, use_comm, NumericMode::kExact);
    const ScheduleEvaluator fast(sizes, view, use_comm, NumericMode::kFast);
    const ga::Chromosome c = random_chromosome(codec, rng);

    const BatchEvaluation fe = fast.load_decoded(codec, c, flat, loads);
    const BatchEvaluation ee = exact.evaluate(flat);

    EXPECT_LE(metric_deviation(fe.fitness, ee.fitness, 1.0), 1e-12);
    EXPECT_LE(metric_deviation(fe.makespan, ee.makespan, exact.psi()), 1e-12);
    EXPECT_LE(
        metric_deviation(fe.relative_error, ee.relative_error, exact.psi()),
        1e-12);
  }
  EXPECT_EQ(audit.violations(), 0u);
  EXPECT_GE(audit.samples(), kRounds);  // period 1: every pricing sampled
  EXPECT_LE(audit.max_deviation(), 1e-12);
}

// Fast-mode internal consistency: delta re-pricing must be bit-identical
// to fast full pricing — the contract that lets the improvement
// heuristic hand its delta-priced evaluation to the engine without a
// re-evaluation (docs/evaluation.md).
TEST(NumericModeProperty, FastDeltaPricingBitIdenticalToFastFullPricing) {
  util::Rng rng(32);
  // Sampling off: this test asserts bitwise identities, not tolerances.
  ToleranceAudit audit(AuditConfig{1e-12, 0});
  const ToleranceAudit::Scope scope(audit);

  FlatSchedule flat;
  QueueLoads delta_loads, full_loads;
  for (int round = 0; round < 60; ++round) {
    const std::size_t tasks = 2 + rng.index(60);
    const std::size_t procs = 2 + rng.index(12);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator fast(random_sizes(tasks, rng),
                                 random_view(procs, 30.0, rng),
                                 rng.bernoulli(0.5), NumericMode::kFast);
    ProcQueues queues = codec.decode(random_chromosome(codec, rng));
    flat.assign(queues);
    fast.load(flat, delta_loads);

    for (int edit = 0; edit < 10; ++edit) {
      // Move a random task to a random other queue, then delta-reprice.
      const std::size_t from = rng.index(procs);
      std::size_t to = rng.index(procs - 1);
      if (to >= from) ++to;
      if (queues[from].empty()) continue;
      const std::size_t pos = rng.index(queues[from].size());
      queues[to].push_back(queues[from][pos]);
      queues[from].erase(queues[from].begin() +
                         static_cast<std::ptrdiff_t>(pos));
      flat.assign(queues);
      const BatchEvaluation de = fast.evaluate_move(flat, delta_loads, from, to);
      const BatchEvaluation fe = fast.load(flat, full_loads);
      ASSERT_EQ(de.fitness, fe.fitness);
      ASSERT_EQ(de.makespan, fe.makespan);
      ASSERT_EQ(de.relative_error, fe.relative_error);
      ASSERT_EQ(delta_loads.sum_sq, full_loads.sum_sq);
      ASSERT_EQ(delta_loads.max_completion, full_loads.max_completion);
      ASSERT_EQ(delta_loads.heaviest, full_loads.heaviest);
      for (std::size_t j = 0; j < procs; ++j) {
        ASSERT_EQ(delta_loads.completion[j], full_loads.completion[j]);
      }
    }
  }
}

// Exact-mode regression: constructing an evaluator with kExact (or with
// the kFast machinery compiled in but unused) must leave every canonical
// path bit-identical to the stateless single-pass evaluation — the
// identity all goldens and figure CSVs rest on.
TEST(NumericModeProperty, ExactModePathsStayBitIdentical) {
  util::Rng rng(33);
  FlatSchedule flat;
  QueueLoads loads;
  for (int round = 0; round < 80; ++round) {
    const std::size_t tasks = 1 + rng.index(50);
    const std::size_t procs = 1 + rng.index(10);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator exact(random_sizes(tasks, rng),
                                  random_view(procs, 30.0, rng),
                                  rng.bernoulli(0.5), NumericMode::kExact);
    const ga::Chromosome c = random_chromosome(codec, rng);

    const BatchEvaluation fused = exact.load_decoded(codec, c, flat, loads);
    const BatchEvaluation stateless = exact.evaluate(flat);
    ASSERT_EQ(fused.fitness, stateless.fitness);
    ASSERT_EQ(fused.makespan, stateless.makespan);
    ASSERT_EQ(fused.relative_error, stateless.relative_error);

    QueueLoads reloaded;
    const BatchEvaluation loaded = exact.load(flat, reloaded);
    ASSERT_EQ(loaded.fitness, stateless.fitness);
    ASSERT_EQ(loaded.makespan, stateless.makespan);
    ASSERT_EQ(loaded.relative_error, stateless.relative_error);
  }
}

// --- batched engine path ----------------------------------------------------

TEST(NumericModeBatch, EvaluateBatchFastMatchesExactPerChromosome) {
  util::Rng rng(41);
  ToleranceAudit audit(AuditConfig{1e-12, 1});
  const ToleranceAudit::Scope scope(audit);

  const std::size_t tasks = 40, procs = 8;
  const ScheduleCodec codec(tasks, procs);
  const auto sizes = random_sizes(tasks, rng);
  const auto view = random_view(procs, 20.0, rng);
  const ScheduleEvaluator exact(sizes, view, true, NumericMode::kExact);
  const ScheduleEvaluator fast(sizes, view, true, NumericMode::kFast);
  const ScheduleProblem exact_problem(codec, exact);
  const ScheduleProblem fast_problem(codec, fast);

  std::vector<ga::Chromosome> pop;
  for (int k = 0; k < 24; ++k) pop.push_back(random_chromosome(codec, rng));
  std::vector<std::size_t> indices;
  for (std::size_t k = 0; k < pop.size(); k += 2) indices.push_back(k);

  const auto ws = fast_problem.make_workspace();
  std::vector<ga::GaProblem::Evaluation> got(indices.size());
  fast_problem.evaluate_batch(pop, indices, ws.get(), got.data());

  const auto exact_ws = exact_problem.make_workspace();
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const auto want =
        exact_problem.evaluate(pop[indices[k]], exact_ws.get());
    EXPECT_LE(metric_deviation(got[k].fitness, want.fitness, 1.0), 1e-12);
    EXPECT_LE(metric_deviation(got[k].objective, want.objective, exact.psi()),
              1e-12);
  }
  EXPECT_GT(audit.samples(), 0u);  // period 1: the batched path sampled
  EXPECT_EQ(audit.violations(), 0u);
}

TEST(NumericModeBatch, GaRunsEndToEndInFastModeUnderAudit) {
  util::Rng rng(42);
  ToleranceAudit audit(AuditConfig{1e-12, 4});
  const ToleranceAudit::Scope scope(audit);

  const std::size_t tasks = 30, procs = 6;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator fast(random_sizes(tasks, rng),
                               random_view(procs, 20.0, rng), true,
                               NumericMode::kFast);
  const ScheduleProblem problem(codec, fast);

  ga::GaConfig cfg;
  cfg.population = 10;
  cfg.max_generations = 8;
  cfg.numeric_mode = NumericMode::kFast;
  const ga::RouletteSelection sel;
  const ga::CycleCrossover cx;
  const ga::SwapMutation mut;
  const ga::GaEngine engine(cfg, sel, cx, mut);

  std::vector<ga::Chromosome> initial;
  for (std::size_t k = 0; k < cfg.population; ++k) {
    initial.push_back(random_chromosome(codec, rng));
  }
  util::Rng ga_rng(43);
  const ga::GaResult result = engine.run(problem, std::move(initial), ga_rng);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GT(result.best_fitness, 0.0);
  EXPECT_GT(audit.samples(), 0u);
  EXPECT_EQ(audit.violations(), 0u);
}

// --- tolerance audit --------------------------------------------------------

TEST(ToleranceAuditTest, RecordsMaxAndCounts) {
  ToleranceAudit audit(AuditConfig{1e-6, 1});
  audit.record(1e-9);
  audit.record(5e-8);
  audit.record(2e-9);
  EXPECT_EQ(audit.samples(), 3u);
  EXPECT_EQ(audit.violations(), 0u);
  EXPECT_EQ(audit.max_deviation(), 5e-8);
  audit.reset();
  EXPECT_EQ(audit.samples(), 0u);
  EXPECT_EQ(audit.max_deviation(), 0.0);
}

TEST(ToleranceAuditTest, ViolationIsAHardError) {
  ToleranceAudit audit(AuditConfig{1e-12, 1});
  EXPECT_THROW(audit.record(1e-3), std::runtime_error);
  EXPECT_EQ(audit.violations(), 1u);
  EXPECT_EQ(audit.max_deviation(), 1e-3);  // recorded before the throw
}

TEST(ToleranceAuditTest, FoldAccumulatesAcrossAudits) {
  ToleranceAudit a(AuditConfig{1.0, 1});
  ToleranceAudit b(AuditConfig{1.0, 1});
  a.record(1e-4);
  b.record(3e-4);
  b.record(2e-4);
  a.fold(b);
  EXPECT_EQ(a.samples(), 3u);
  EXPECT_EQ(a.max_deviation(), 3e-4);
}

TEST(ToleranceAuditTest, ScopeInstallsAndRestoresCurrent) {
  ToleranceAudit* before = ToleranceAudit::current();
  {
    ToleranceAudit outer;
    const ToleranceAudit::Scope outer_scope(outer);
    EXPECT_EQ(ToleranceAudit::current(), &outer);
    {
      ToleranceAudit inner;
      const ToleranceAudit::Scope inner_scope(inner);
      EXPECT_EQ(ToleranceAudit::current(), &inner);
    }
    EXPECT_EQ(ToleranceAudit::current(), &outer);
  }
  EXPECT_EQ(ToleranceAudit::current(), before);
  EXPECT_EQ(before, &ToleranceAudit::global());
}

// The deliberate-violation hook: a negative tolerance makes every sampled
// deviation a violation, proving the audit actually fires inside the
// fast pricing paths — a silent audit would pass the property tests
// without ever checking anything.
TEST(ToleranceAuditTest, DeliberateViolationFiresInsideFastPricing) {
  util::Rng rng(51);
  ToleranceAudit audit(AuditConfig{-1.0, 1});
  const ToleranceAudit::Scope scope(audit);

  const std::size_t tasks = 20, procs = 5;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator fast(random_sizes(tasks, rng),
                               random_view(procs, 20.0, rng), true,
                               NumericMode::kFast);
  FlatSchedule flat;
  QueueLoads loads;
  const ga::Chromosome c = random_chromosome(codec, rng);
  EXPECT_THROW(fast.load_decoded(codec, c, flat, loads), std::runtime_error);
  EXPECT_GE(audit.violations(), 1u);
}

TEST(ToleranceAuditTest, SamplePeriodZeroDisablesSampling) {
  util::Rng rng(52);
  ToleranceAudit audit(AuditConfig{-1.0, 0});  // would throw if sampled
  const ToleranceAudit::Scope scope(audit);

  const std::size_t tasks = 20, procs = 5;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator fast(random_sizes(tasks, rng),
                               random_view(procs, 20.0, rng), true,
                               NumericMode::kFast);
  FlatSchedule flat;
  QueueLoads loads;
  for (int round = 0; round < 200; ++round) {
    const ga::Chromosome c = random_chromosome(codec, rng);
    EXPECT_NO_THROW(fast.load_decoded(codec, c, flat, loads));
  }
  EXPECT_EQ(audit.samples(), 0u);
}

}  // namespace
}  // namespace gasched::core
