// End-to-end metamorphic tests: full simulations through the public
// experiment API, asserting directional properties the paper's results
// imply (rather than absolute numbers).

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "util/stats.hpp"

namespace gasched::exp {
namespace {

SchedulerParams quick_opts() {
  SchedulerParams o;
  o.set("batch_size", 50);
  o.set("max_generations", 60);
  o.set("population", 12);
  return o;
}

Scenario base_scenario(double mean_comm, std::size_t tasks = 300,
                       std::size_t procs = 10, std::uint64_t seed = 11) {
  Scenario s;
  s.name = "integration";
  s.cluster = paper_cluster(mean_comm, procs);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 1000.0;
  s.workload.count = tasks;
  s.seed = seed;
  s.replications = 4;
  return s;
}

double mean_makespan(const std::vector<sim::SimulationResult>& runs) {
  double s = 0.0;
  for (const auto& r : runs) s += r.makespan;
  return s / static_cast<double>(runs.size());
}

double mean_efficiency(const std::vector<sim::SimulationResult>& runs) {
  double s = 0.0;
  for (const auto& r : runs) s += r.efficiency();
  return s / static_cast<double>(runs.size());
}

TEST(Integration, HigherCommCostLowersEfficiencyForEveryScheduler) {
  const Scenario cheap = base_scenario(2.0);
  const Scenario dear = base_scenario(50.0);
  for (const auto kind :
       {"PN", "EF", "MM"}) {
    const double e_cheap =
        mean_efficiency(run_replications(cheap, kind, quick_opts()));
    const double e_dear =
        mean_efficiency(run_replications(dear, kind, quick_opts()));
    EXPECT_GT(e_cheap, e_dear) << kind;
  }
}

TEST(Integration, ZeroCommYieldsHighEfficiencyForGreedy) {
  Scenario s = base_scenario(1.0);
  s.cluster.zero_comm = true;
  const double eff =
      mean_efficiency(run_replications(s, "EF", quick_opts()));
  EXPECT_GT(eff, 0.85);
}

TEST(Integration, PnBeatsRoundRobinOnMakespan) {
  const Scenario s = base_scenario(10.0, 400);
  const double pn =
      mean_makespan(run_replications(s, "PN", quick_opts()));
  const double rr =
      mean_makespan(run_replications(s, "RR", quick_opts()));
  EXPECT_LT(pn, rr);
}

TEST(Integration, PnBeatsLightestLoadedOnHeterogeneousRates) {
  // LL ignores processor speed, so heterogeneity hurts it badly.
  const Scenario s = base_scenario(5.0, 400);
  const double pn =
      mean_makespan(run_replications(s, "PN", quick_opts()));
  const double ll =
      mean_makespan(run_replications(s, "LL", quick_opts()));
  EXPECT_LT(pn, ll);
}

TEST(Integration, MoreProcessorsShortenMakespan) {
  const Scenario few = base_scenario(5.0, 300, 4);
  const Scenario many = base_scenario(5.0, 300, 16);
  const double m_few =
      mean_makespan(run_replications(few, "MM", quick_opts()));
  const double m_many =
      mean_makespan(run_replications(many, "MM", quick_opts()));
  EXPECT_LT(m_many, m_few);
}

TEST(Integration, EfficiencyAlwaysInUnitInterval) {
  const Scenario s = base_scenario(20.0, 200);
  for (const auto kind : all_schedulers()) {
    for (const auto& r : run_replications(s, kind, quick_opts())) {
      EXPECT_GE(r.efficiency(), 0.0) << kind;
      EXPECT_LE(r.efficiency(), 1.0) << kind;
    }
  }
}

TEST(Integration, WorkConservation) {
  // Total completed MFLOPs equals the workload's total for every scheduler.
  const Scenario s = base_scenario(5.0, 150, 6);
  const auto dist = make_distribution(s.workload);
  util::Rng wrng = util::Rng(s.seed).split(0);
  const auto wl = workload::generate(*dist, s.workload.count, wrng);
  const double total = wl.total_mflops();
  for (const auto kind : all_schedulers()) {
    const auto r = run_one(s, kind, quick_opts(), 0);
    double done = 0.0;
    for (const auto& p : r.per_proc) done += p.work_mflops;
    EXPECT_NEAR(done, total, 1e-6 * total) << kind;
  }
}

TEST(Integration, DynamicAvailabilityStillCompletesEverything) {
  Scenario s = base_scenario(5.0, 200, 8);
  s.cluster.availability = sim::AvailabilityKind::kRandomWalk;
  s.cluster.avail_lo = 0.4;
  s.cluster.avail_hi = 1.0;
  s.cluster.avail_period = 50.0;
  for (const auto kind : {"PN", "EF"}) {
    for (const auto& r : run_replications(s, kind, quick_opts())) {
      EXPECT_EQ(r.tasks_completed, s.workload.count) << kind;
    }
  }
}

TEST(Integration, DriftingCommStillCompletesEverything) {
  Scenario s = base_scenario(10.0, 200, 8);
  s.cluster.drifting_comm = true;
  for (const auto& r :
       run_replications(s, "PN", quick_opts())) {
    EXPECT_EQ(r.tasks_completed, s.workload.count);
  }
}

TEST(Integration, PoissonWorkloadsRunAcrossAllSchedulers) {
  Scenario s = base_scenario(5.0, 200, 8);
  s.workload.dist = "poisson";
  s.workload.param_a = 100.0;
  for (const auto kind : all_schedulers()) {
    const auto r = run_one(s, kind, quick_opts(), 0);
    EXPECT_EQ(r.tasks_completed, s.workload.count) << kind;
  }
}

TEST(Integration, NormalWorkloadsRunAcrossAllSchedulers) {
  Scenario s = base_scenario(5.0, 150, 8);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  for (const auto kind : all_schedulers()) {
    const auto r = run_one(s, kind, quick_opts(), 0);
    EXPECT_EQ(r.tasks_completed, s.workload.count) << kind;
  }
}

}  // namespace
}  // namespace gasched::exp
