// Tests for mutation operators: gene-set preservation and genuine
// perturbation.

#include "ga/mutation.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gasched::ga {
namespace {

Chromosome make_chromosome(std::size_t n, util::Rng& rng) {
  Chromosome c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = static_cast<Gene>(i) - 3;
  rng.shuffle(c);
  return c;
}

class MutationContract
    : public ::testing::TestWithParam<std::shared_ptr<MutationOp>> {};

TEST_P(MutationContract, PreservesGeneSet) {
  auto op = GetParam();
  util::Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    Chromosome c = make_chromosome(25, rng);
    const Chromosome before = c;
    op->apply(c, rng);
    ASSERT_TRUE(same_gene_set(before, c)) << op->name();
    ASSERT_TRUE(is_permutation_of_distinct(c)) << op->name();
  }
}

TEST_P(MutationContract, DegenerateSizesAreSafe) {
  auto op = GetParam();
  util::Rng rng(43);
  Chromosome empty;
  op->apply(empty, rng);
  EXPECT_TRUE(empty.empty());
  Chromosome one{5};
  op->apply(one, rng);
  EXPECT_EQ(one, Chromosome{5});
}

TEST_P(MutationContract, EventuallyPerturbs) {
  auto op = GetParam();
  util::Rng rng(44);
  int changed = 0;
  for (int trial = 0; trial < 100; ++trial) {
    Chromosome c = make_chromosome(20, rng);
    const Chromosome before = c;
    op->apply(c, rng);
    if (c != before) ++changed;
  }
  EXPECT_GT(changed, 50) << op->name();
}

INSTANTIATE_TEST_SUITE_P(AllOperators, MutationContract,
                         ::testing::Values(
                             std::make_shared<SwapMutation>(1),
                             std::make_shared<SwapMutation>(3),
                             std::make_shared<InsertionMutation>(),
                             std::make_shared<InversionMutation>(),
                             std::make_shared<ScrambleMutation>()));

TEST(SwapMutation, SingleSwapChangesAtMostTwoPositions) {
  SwapMutation op(1);
  util::Rng rng(45);
  for (int trial = 0; trial < 200; ++trial) {
    Chromosome c = make_chromosome(15, rng);
    const Chromosome before = c;
    op.apply(c, rng);
    int diffs = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c[i] != before[i]) ++diffs;
    }
    EXPECT_TRUE(diffs == 0 || diffs == 2);
  }
}

TEST(SwapMutation, RejectsZeroSwaps) {
  EXPECT_THROW(SwapMutation(0), std::invalid_argument);
}

TEST(InversionMutation, ReversesContiguousSegment) {
  InversionMutation op;
  util::Rng rng(46);
  Chromosome c{0, 1, 2, 3, 4, 5, 6, 7};
  const Chromosome before = c;
  op.apply(c, rng);
  // Find the changed window and verify it is the reverse of the original.
  std::size_t lo = 0, hi = c.size();
  while (lo < c.size() && c[lo] == before[lo]) ++lo;
  while (hi > lo && c[hi - 1] == before[hi - 1]) --hi;
  for (std::size_t i = lo; i < hi; ++i) {
    EXPECT_EQ(c[i], before[lo + hi - 1 - i]);
  }
}

}  // namespace
}  // namespace gasched::ga
