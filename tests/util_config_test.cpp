// Tests for the INI-style configuration parser.

#include "util/config.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace gasched::util {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto cfg = Config::parse(
      "top = 1\n"
      "[cluster]\n"
      "processors = 50\n"
      "rate_lo = 10.5\n"
      "[workload]\n"
      "dist = normal\n");
  EXPECT_EQ(cfg.get_int("top", 0), 1);
  EXPECT_EQ(cfg.get_int("cluster.processors", 0), 50);
  EXPECT_DOUBLE_EQ(cfg.get_double("cluster.rate_lo", 0.0), 10.5);
  EXPECT_EQ(cfg.get("workload.dist", ""), "normal");
  EXPECT_EQ(cfg.size(), 4u);
}

TEST(Config, IgnoresCommentsAndBlankLines) {
  const auto cfg = Config::parse(
      "# comment\n"
      "\n"
      "; also comment\n"
      "key = value\n");
  EXPECT_EQ(cfg.size(), 1u);
  EXPECT_EQ(cfg.get("key", ""), "value");
}

TEST(Config, TrimsWhitespace) {
  const auto cfg = Config::parse("  key   =    spaced value  \n");
  EXPECT_EQ(cfg.get("key", ""), "spaced value");
}

TEST(Config, MissingKeysFallBack) {
  const auto cfg = Config::parse("a = 1\n");
  EXPECT_FALSE(cfg.has("b"));
  EXPECT_EQ(cfg.get("b", "dft"), "dft");
  EXPECT_EQ(cfg.get_int("b", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("b", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("b", true));
}

TEST(Config, BooleanSpellings) {
  const auto cfg = Config::parse(
      "a = true\nb = 0\nc = yes\nd = off\n");
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, ScientificNotation) {
  const auto cfg = Config::parse("v = 9e5\n");
  EXPECT_DOUBLE_EQ(cfg.get_double("v", 0.0), 9e5);
}

TEST(Config, MalformedLinesThrow) {
  EXPECT_THROW(Config::parse("not a key value\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("[unclosed\n"), std::runtime_error);
  EXPECT_THROW(Config::parse("= novalue\n"), std::runtime_error);
}

TEST(Config, BadTypedValuesThrow) {
  const auto cfg = Config::parse("a = abc\nb = maybe\n");
  EXPECT_THROW(cfg.get_double("a", 0.0), std::runtime_error);
  EXPECT_THROW(cfg.get_int("a", 0), std::runtime_error);
  EXPECT_THROW(cfg.get_bool("b", false), std::runtime_error);
}

TEST(Config, LastDuplicateWins) {
  const auto cfg = Config::parse("a = 1\na = 2\n");
  EXPECT_EQ(cfg.get_int("a", 0), 2);
}

TEST(Config, LoadFromFileAndMissingFileThrows) {
  const auto path =
      std::filesystem::temp_directory_path() / "gasched_config_test.ini";
  {
    std::ofstream out(path);
    out << "[s]\nk = 42\n";
  }
  const auto cfg = Config::load(path);
  EXPECT_EQ(cfg.get_int("s.k", 0), 42);
  std::filesystem::remove(path);
  EXPECT_THROW(Config::load(path), std::runtime_error);
}

}  // namespace
}  // namespace gasched::util
