// Tests for the deterministic RNG layer: reproducibility, stream
// independence, and distributional sanity of every sampler.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace gasched::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256StarStar a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256StarStar a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Xoshiro, LongJumpChangesState) {
  Xoshiro256StarStar a(7), b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-5.0, 17.0);
    ASSERT_GE(v, -5.0);
    ASSERT_LT(v, 17.0);
  }
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(4);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -3);
    ASSERT_GE(v, -10);
    ASSERT_LE(v, -3);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, NormalTruncatedRespectsFloor) {
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_GE(rng.normal_truncated(5.0, 10.0, 0.5), 0.5);
  }
}

TEST(Rng, NormalTruncatedPathologicalFloorStillTerminates) {
  Rng rng(9);
  // Floor far above the mean: rejection would essentially never succeed.
  const double v = rng.normal_truncated(0.0, 1.0, 100.0);
  EXPECT_GE(v, 100.0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(10);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) ASSERT_GT(rng.exponential(1.0), 0.0);
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 1);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>(rng.poisson(mean));
    sum += v;
    sum_sq += v * v;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  EXPECT_NEAR(m, mean, std::max(0.05, 0.03 * mean));
  // Poisson: variance == mean.
  EXPECT_NEAR(var, mean, std::max(0.2, 0.08 * mean));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.5, 2.0, 10.0, 29.0, 31.0, 100.0,
                                           400.0));

TEST(Rng, PoissonZeroMeanGivesZero) {
  Rng rng(12);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-3.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  const Rng base(99);
  Rng a = base.split(0);
  Rng b = base.split(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng base(99);
  Rng a = base.split(17);
  Rng b = base.split(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, IndexStaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.index(17), 17u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequencyMatches) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Rng, ShuffleHandlesDegenerateSizes) {
  Rng rng(18);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

}  // namespace
}  // namespace gasched::util
