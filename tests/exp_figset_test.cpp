// Tests for the paper-figure registry (exp::FigSet): the nine fig03–
// fig11 definitions, glob/tag selection, scale resolution, shard-merge
// helpers, and an end-to-end proof that a sharded-then-merged figure CSV
// is byte-identical to an unsharded run.

#include "exp/figset.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "metrics/sink.hpp"

namespace gasched::exp {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("gasched_figset_" + name)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
};

void write_file(const std::filesystem::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out << text;
}

/// A fast scale for grid-declaration tests (nothing is executed).
FigScale tiny_scale() {
  FigScale s;
  s.tasks = 40;
  s.procs = 6;
  s.reps = 1;
  s.generations = 6;
  s.population = 8;
  s.batch = 20;
  return s;
}

TEST(FigSetRegistry, NinePaperFiguresRegistered) {
  const auto& figures = FigSet::instance().figures();
  ASSERT_GE(figures.size(), 9u);
  const std::vector<std::string> expected{
      "fig03", "fig04", "fig05", "fig06", "fig07",
      "fig08", "fig09", "fig10", "fig11"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(figures[i].id, expected[i]);
    EXPECT_TRUE(figures[i].build) << figures[i].id;
    EXPECT_TRUE(figures[i].report) << figures[i].id;
    EXPECT_FALSE(figures[i].tags.empty()) << figures[i].id;
    EXPECT_FALSE(figures[i].paper_expectation.empty()) << figures[i].id;
  }
}

TEST(FigSetRegistry, FindExactAndUnknownListsIds) {
  EXPECT_EQ(FigSet::instance().find("fig06").number, "Figure 6");
  try {
    FigSet::instance().find("fig99");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fig06"), std::string::npos)
        << "error must list registered ids";
  }
}

TEST(FigSetRegistry, SelectByGlobAndTag) {
  const auto& set = FigSet::instance();
  EXPECT_EQ(set.select("", "").size(), set.figures().size());
  const auto range = set.select("fig0[5-9]", "");
  ASSERT_EQ(range.size(), 5u);
  EXPECT_EQ(range.front()->id, "fig05");
  EXPECT_EQ(range.back()->id, "fig09");
  const auto makespan = set.select("", "makespan");
  ASSERT_EQ(makespan.size(), 5u);  // figs 6, 8, 9, 10, 11
  EXPECT_EQ(makespan.front()->id, "fig06");
  const auto both = set.select("fig1*", "poisson");
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0]->id, "fig10");
  EXPECT_EQ(both[1]->id, "fig11");
  EXPECT_TRUE(set.select("fig99", "").empty());
}

TEST(FigSetRegistry, ScaleResolvesQuickFullAndPins) {
  const auto& fig06 = FigSet::instance().find("fig06");
  const FigScale quick = fig06.scale(false);
  EXPECT_EQ(quick.tasks, 1000u);
  EXPECT_EQ(quick.reps, 3u);
  EXPECT_FALSE(quick.full);
  const FigScale full = fig06.scale(true);
  EXPECT_EQ(full.tasks, 10000u);
  EXPECT_EQ(full.reps, 50u);
  EXPECT_EQ(full.generations, 1000u);
  // Figures 3, 5, 7 pin their paper task counts at full scale.
  EXPECT_EQ(FigSet::instance().find("fig03").scale(true).tasks, 200u);
  EXPECT_EQ(FigSet::instance().find("fig05").scale(true).tasks, 1000u);
  EXPECT_EQ(FigSet::instance().find("fig07").scale(true).tasks, 1000u);
}

TEST(FigSetRegistry, EveryFigureBuildsItsGrid) {
  const FigScale s = tiny_scale();
  const std::vector<std::pair<std::string, std::size_t>> expected_cells{
      {"fig03", 3},  {"fig04", 11}, {"fig05", 35}, {"fig06", 7},
      {"fig07", 35}, {"fig08", 7},  {"fig09", 7},  {"fig10", 7},
      {"fig11", 7}};
  for (const auto& [id, cells] : expected_cells) {
    Sweep sweep = FigSet::instance().find(id).build(s);
    EXPECT_EQ(sweep.cell_count(), cells) << id;
    EXPECT_FALSE(sweep.flatten().empty()) << id;
  }
}

TEST(FigSetRegistry, AddRejectsDuplicatesAndEmpty) {
  FigureDef dup;
  dup.id = "fig06";
  dup.build = [](const FigScale&) { return Sweep("x"); };
  EXPECT_THROW(FigSet::instance().add(dup), std::invalid_argument);
  FigureDef empty;
  EXPECT_THROW(FigSet::instance().add(empty), std::invalid_argument);
}

TEST(GlobMatch, StarsQuestionsAndClasses) {
  EXPECT_TRUE(glob_match("fig06", "fig06"));
  EXPECT_FALSE(glob_match("fig06", "fig07"));
  EXPECT_TRUE(glob_match("fig*", "fig11"));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("fig0?", "fig05"));
  EXPECT_FALSE(glob_match("fig0?", "fig0"));
  EXPECT_TRUE(glob_match("fig0[5-9]", "fig07"));
  EXPECT_FALSE(glob_match("fig0[5-9]", "fig04"));
  EXPECT_FALSE(glob_match("fig0[5-9]", "fig10"));
  EXPECT_TRUE(glob_match("fig[!0]?", "fig10"));
  EXPECT_FALSE(glob_match("fig[!0]?", "fig05"));
  EXPECT_TRUE(glob_match("fig[01]*", "fig10"));
  EXPECT_TRUE(glob_match("*[0-9]", "fig10"));
  EXPECT_FALSE(glob_match("", "fig10"));
  EXPECT_TRUE(glob_match("", ""));
  EXPECT_TRUE(glob_match("a[b", "a[b"));  // unclosed class: literal
}

TEST(MergeShards, CsvStitchesInIndexOrder) {
  TempFile a("merge_a.csv"), b("merge_b.csv"), out("merge_out.csv");
  write_file(a.path, "index,x,error\n0,1,\n2,3,\n");
  write_file(b.path, "index,x,error\n1,2,\n3,4,\n");
  merge_csv_shards({a.path, b.path}, out.path);
  EXPECT_EQ(read_file(out.path), "index,x,error\n0,1,\n1,2,\n2,3,\n3,4,\n");
}

TEST(MergeShards, CsvRejectsHeaderMismatchDuplicatesAndGarbage) {
  TempFile a("bad_a.csv"), b("bad_b.csv"), out("bad_out.csv");
  write_file(a.path, "index,x\n0,1\n");
  write_file(b.path, "index,y\n1,2\n");
  EXPECT_THROW(merge_csv_shards({a.path, b.path}, out.path),
               std::runtime_error);
  write_file(b.path, "index,x\n0,9\n");
  EXPECT_THROW(merge_csv_shards({a.path, b.path}, out.path),
               std::runtime_error);  // duplicate index 0
  write_file(b.path, "index,x\nnot_a_number,2\n");
  EXPECT_THROW(merge_csv_shards({a.path, b.path}, out.path),
               std::runtime_error);
  write_file(b.path, "index,x\n1,2,3\n");
  EXPECT_THROW(merge_csv_shards({a.path, b.path}, out.path),
               std::runtime_error);  // wrong column count
  EXPECT_THROW(merge_csv_shards({}, out.path), std::runtime_error);
}

TEST(MergeShards, JsonlOrdersByIndexField) {
  TempFile a("merge_a.jsonl"), b("merge_b.jsonl"), out("merge_out.jsonl");
  write_file(a.path,
             "{\"sweep\":\"s\",\"index\":2,\"v\":1}\n"
             "{\"sweep\":\"s\",\"index\":0,\"v\":2}\n");
  write_file(b.path, "{\"sweep\":\"s\",\"index\":1,\"v\":3}\n");
  merge_jsonl_shards({a.path, b.path}, out.path);
  EXPECT_EQ(read_file(out.path),
            "{\"sweep\":\"s\",\"index\":0,\"v\":2}\n"
            "{\"sweep\":\"s\",\"index\":1,\"v\":3}\n"
            "{\"sweep\":\"s\",\"index\":2,\"v\":1}\n");
  write_file(b.path, "{\"sweep\":\"s\",\"index\":0,\"v\":9}\n");
  EXPECT_THROW(merge_jsonl_shards({a.path, b.path}, out.path),
               std::runtime_error);  // duplicate index
  write_file(b.path, "{\"sweep\":\"s\",\"no_index\":1}\n");
  EXPECT_THROW(merge_jsonl_shards({a.path, b.path}, out.path),
               std::runtime_error);
}

// The ISSUE's acceptance criterion, at test scale: shard a real figure
// grid across two "machines", merge, and compare bytes against the
// unsharded run.
TEST(MergeShards, ShardedFigureMergesByteIdentical) {
  const FigureDef& fig06 = FigSet::instance().find("fig06");
  const FigScale s = tiny_scale();

  TempFile full("e2e_full.csv"), s0("e2e_s0.csv"), s1("e2e_s1.csv"),
      merged("e2e_merged.csv");

  auto run = [&](const std::filesystem::path& path, int shard) {
    Sweep sweep = fig06.build(s);
    sweep.progress(false);
    if (shard >= 0) sweep.shard(static_cast<std::size_t>(shard), 2);
    metrics::CsvSink sink(path);
    sweep.add_sink(sink);
    const SweepResult result = sweep.run();
    EXPECT_EQ(result.failed, 0u);
    return result;
  };
  run(full.path, -1);
  const auto r0 = run(s0.path, 0);
  const auto r1 = run(s1.path, 1);
  EXPECT_EQ(r0.skipped + r1.skipped, r0.rows.size());

  merge_csv_shards({s0.path, s1.path}, merged.path);
  const std::string expected = read_file(full.path);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(read_file(merged.path), expected)
      << "sharded-then-merged CSV must be byte-identical to an unsharded "
         "run";
}

}  // namespace
}  // namespace gasched::exp
