// Tests for the re-balancing heuristic (paper §3.5).

#include "core/rebalance.hpp"

#include <gtest/gtest.h>

namespace gasched::core {
namespace {

sim::SystemView make_view(std::vector<double> rates) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
  }
  return v;
}

TEST(Rebalance, NeverInvalidatesChromosome) {
  util::Rng rng(1);
  const std::size_t H = 30, M = 4;
  std::vector<double> sizes;
  for (std::size_t i = 0; i < H; ++i) {
    sizes.push_back(rng.uniform(10.0, 500.0));
  }
  const ScheduleCodec codec(H, M);
  const ScheduleEvaluator eval(sizes, make_view({10, 20, 30, 40}), false);
  for (int trial = 0; trial < 200; ++trial) {
    ga::Chromosome c;
    for (std::size_t i = 0; i < H; ++i) c.push_back(static_cast<ga::Gene>(i));
    for (std::size_t k = 0; k + 1 < M; ++k) {
      c.push_back(ScheduleCodec::delimiter_gene(k));
    }
    rng.shuffle(c);
    rebalance_once(c, codec, eval, rng);
    ASSERT_TRUE(codec.valid(c));
  }
}

TEST(Rebalance, NeverDecreasesFitness) {
  util::Rng rng(2);
  const std::size_t H = 24, M = 3;
  std::vector<double> sizes;
  for (std::size_t i = 0; i < H; ++i) {
    sizes.push_back(rng.uniform(10.0, 500.0));
  }
  const ScheduleCodec codec(H, M);
  const ScheduleEvaluator eval(sizes, make_view({10, 25, 60}), false);
  for (int trial = 0; trial < 200; ++trial) {
    ga::Chromosome c;
    for (std::size_t i = 0; i < H; ++i) c.push_back(static_cast<ga::Gene>(i));
    for (std::size_t k = 0; k + 1 < M; ++k) {
      c.push_back(ScheduleCodec::delimiter_gene(k));
    }
    rng.shuffle(c);
    const double before = eval.fitness(codec.decode(c));
    const bool improved = rebalance_once(c, codec, eval, rng);
    const double after = eval.fitness(codec.decode(c));
    if (improved) {
      ASSERT_GT(after, before);
    } else {
      ASSERT_DOUBLE_EQ(after, before);
    }
  }
}

TEST(Rebalance, ImprovesBlatantImbalance) {
  // All big tasks on proc 0, all small on proc 1; repeated rebalances
  // should find improving swaps with high probability.
  const std::size_t H = 10;
  std::vector<double> sizes;
  for (std::size_t i = 0; i < 5; ++i) sizes.push_back(1000.0);
  for (std::size_t i = 0; i < 5; ++i) sizes.push_back(10.0);
  const ScheduleCodec codec(H, 2);
  const ScheduleEvaluator eval(sizes, make_view({10.0, 10.0}), false);
  const ProcQueues skewed{{0, 1, 2, 3, 4}, {5, 6, 7, 8, 9}};
  ga::Chromosome c = codec.encode(skewed);
  util::Rng rng(3);
  const double before = eval.fitness(codec.decode(c));
  int improvements = 0;
  for (int pass = 0; pass < 50; ++pass) {
    if (rebalance_once(c, codec, eval, rng)) ++improvements;
  }
  EXPECT_GT(improvements, 0);
  EXPECT_GT(eval.fitness(codec.decode(c)), before);
}

TEST(Rebalance, SingleProcessorIsNoop) {
  const ScheduleCodec codec(5, 1);
  const ScheduleEvaluator eval({10, 20, 30, 40, 50}, make_view({10.0}),
                               false);
  ga::Chromosome c = codec.encode(ProcQueues{{0, 1, 2, 3, 4}});
  const ga::Chromosome before = c;
  util::Rng rng(4);
  EXPECT_FALSE(rebalance_once(c, codec, eval, rng));
  EXPECT_EQ(c, before);
}

TEST(Rebalance, EmptyHeavyQueueImpossible) {
  // If every task sits on one processor, that processor is heaviest; an
  // empty-queue heavy processor can only occur with an empty batch.
  const ScheduleCodec codec(0, 3);
  const ScheduleEvaluator eval({}, make_view({10, 10, 10}), false);
  ga::Chromosome c = codec.encode(ProcQueues(3));
  util::Rng rng(5);
  EXPECT_FALSE(rebalance_once(c, codec, eval, rng));
}

TEST(Rebalance, RespectsProbeBudget) {
  // With probes = 0 the heuristic must never change anything.
  const ScheduleCodec codec(6, 2);
  const ScheduleEvaluator eval({100, 200, 300, 10, 20, 30},
                               make_view({10, 10}), false);
  ga::Chromosome c =
      codec.encode(ProcQueues{{0, 1, 2}, {3, 4, 5}});
  const ga::Chromosome before = c;
  util::Rng rng(6);
  EXPECT_FALSE(rebalance_once(c, codec, eval, rng, 0));
  EXPECT_EQ(c, before);
}

}  // namespace
}  // namespace gasched::core
