// Tests for the GA population-statistics instrumentation (ga/stats.hpp)
// and its engine integration (GaConfig::record_stats).

#include "ga/stats.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "ga/engine.hpp"

namespace gasched::ga {
namespace {

Chromosome iota_chromosome(std::size_t n) {
  Chromosome c(n);
  std::iota(c.begin(), c.end(), Gene{0});
  return c;
}

TEST(HammingDistance, IdenticalIsZeroReversedIsOne) {
  const Chromosome a = iota_chromosome(8);
  Chromosome b = a;
  EXPECT_DOUBLE_EQ(hamming_distance(a, b), 0.0);
  std::reverse(b.begin(), b.end());
  EXPECT_DOUBLE_EQ(hamming_distance(a, b), 1.0);
}

TEST(HammingDistance, CountsFractionOfDifferingPositions) {
  const Chromosome a{0, 1, 2, 3};
  const Chromosome b{0, 1, 3, 2};
  EXPECT_DOUBLE_EQ(hamming_distance(a, b), 0.5);
}

TEST(HammingDistance, LengthMismatchThrows) {
  EXPECT_THROW(hamming_distance({0, 1}, {0, 1, 2}), std::invalid_argument);
}

TEST(PopulationDiversity, ClonePopulationIsZero) {
  const std::vector<Chromosome> pop(10, iota_chromosome(12));
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(population_diversity(pop, 64, rng), 0.0);
}

TEST(PopulationDiversity, ShuffledPopulationIsPositiveAndBounded) {
  util::Rng rng(2);
  std::vector<Chromosome> pop;
  for (int i = 0; i < 12; ++i) {
    Chromosome c = iota_chromosome(16);
    rng.shuffle(c);
    pop.push_back(std::move(c));
  }
  const double d = population_diversity(pop, 64, rng);
  EXPECT_GT(d, 0.3);
  EXPECT_LE(d, 1.0);
}

TEST(PopulationDiversity, ExhaustiveAndSampledAgreeForSmallPopulations) {
  util::Rng rng(3);
  std::vector<Chromosome> pop;
  for (int i = 0; i < 6; ++i) {
    Chromosome c = iota_chromosome(10);
    rng.shuffle(c);
    pop.push_back(std::move(c));
  }
  // 15 pairs total: max_pairs >= 15 takes the exhaustive path either way.
  util::Rng r1(4), r2(5);
  EXPECT_DOUBLE_EQ(population_diversity(pop, 15, r1),
                   population_diversity(pop, 1000, r2));
}

TEST(PopulationDiversity, DegenerateInputsReturnZero) {
  util::Rng rng(6);
  EXPECT_DOUBLE_EQ(population_diversity({}, 64, rng), 0.0);
  EXPECT_DOUBLE_EQ(population_diversity({iota_chromosome(4)}, 64, rng), 0.0);
  const std::vector<Chromosome> pop(3, iota_chromosome(4));
  EXPECT_DOUBLE_EQ(population_diversity(pop, 0, rng), 0.0);
}

// ------------------------------------------------- engine integration ----

/// Objective: misplaced genes vs identity (as in ga_island_test).
class SortProblem final : public GaProblem {
 public:
  double fitness(const Chromosome& c) const override {
    return 1.0 / (1.0 + objective(c));
  }
  double objective(const Chromosome& c) const override {
    double misplaced = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c[i] != static_cast<Gene>(i)) misplaced += 1.0;
    }
    return misplaced;
  }
};

std::vector<Chromosome> scrambled_population(std::size_t count,
                                             std::size_t length,
                                             util::Rng& rng) {
  std::vector<Chromosome> pop;
  for (std::size_t i = 0; i < count; ++i) {
    Chromosome c = iota_chromosome(length);
    rng.shuffle(c);
    pop.push_back(std::move(c));
  }
  return pop;
}

GaResult run_engine(bool record_stats, std::uint64_t seed,
                    std::size_t generations = 60) {
  const SortProblem problem;
  GaConfig cfg;
  cfg.population = 10;
  cfg.max_generations = generations;
  cfg.record_stats = record_stats;
  static const RouletteSelection sel;
  static const CycleCrossover cx;
  static const SwapMutation mut;
  const GaEngine engine(cfg, sel, cx, mut);
  util::Rng rng(seed);
  auto init = scrambled_population(cfg.population, 10, rng);
  return engine.run(problem, std::move(init), rng);
}

TEST(EngineStats, HistoryCoversInitialPlusEveryGeneration) {
  const auto r = run_engine(true, 11);
  ASSERT_EQ(r.stats_history.size(), r.generations + 1);
  EXPECT_EQ(r.stats_history.front().generation, 0u);
  EXPECT_EQ(r.stats_history.back().generation, r.generations);
}

TEST(EngineStats, DisabledByDefault) {
  const auto r = run_engine(false, 11);
  EXPECT_TRUE(r.stats_history.empty());
}

TEST(EngineStats, RecordingDoesNotPerturbEvolution) {
  const auto with = run_engine(true, 17);
  const auto without = run_engine(false, 17);
  EXPECT_EQ(with.best, without.best);
  EXPECT_EQ(with.best_objective, without.best_objective);
  EXPECT_EQ(with.generations, without.generations);
}

TEST(EngineStats, MomentsAreInternallyConsistent) {
  const auto r = run_engine(true, 23);
  for (const auto& g : r.stats_history) {
    EXPECT_GE(g.best_fitness, g.mean_fitness - 1e-12);
    EXPECT_LE(g.best_objective, g.mean_objective + 1e-12);
    EXPECT_GE(g.diversity, 0.0);
    EXPECT_LE(g.diversity, 1.0);
  }
}

TEST(EngineStats, SelectionPressureErodesDiversity) {
  // A micro population converging on an easy problem should end with
  // clearly less genotype diversity than it started with.
  const auto r = run_engine(true, 29, 150);
  ASSERT_GE(r.stats_history.size(), 2u);
  EXPECT_LT(r.stats_history.back().diversity,
            r.stats_history.front().diversity);
}

}  // namespace
}  // namespace gasched::ga
