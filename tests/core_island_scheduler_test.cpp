// Unit tests for the island-model branch of GeneticBatchScheduler (PNI):
// the scheduler-level behaviour on top of ga/island.hpp, which
// ga_island_test covers at the GA level.

#include <gtest/gtest.h>

#include <set>

#include "core/genetic_scheduler.hpp"

namespace gasched::core {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
    v.procs[j].comm_observations = j < comm.size() ? 1 : 0;
  }
  return v;
}

std::deque<workload::Task> tasks_of_sizes(const std::vector<double>& sizes) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), sizes[i], 0.0});
  }
  return q;
}

GeneticSchedulerConfig quick_cfg(std::size_t islands) {
  GeneticSchedulerConfig cfg;
  cfg.ga.max_generations = 50;
  cfg.ga.population = 8;
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 12;
  cfg.islands = islands;
  cfg.migration_interval = 10;
  return cfg;
}

TEST(IslandScheduler, FactorySetsNameAndConfig) {
  const auto pni = make_pn_island_scheduler(4);
  EXPECT_EQ(pni->name(), "PNI");
  EXPECT_EQ(pni->config().islands, 4u);
  EXPECT_TRUE(pni->config().use_comm_estimates);
  EXPECT_TRUE(pni->config().rebalance);
}

TEST(IslandScheduler, AssignsEveryConsumedTaskExactlyOnce) {
  const auto view = make_view({10.0, 25.0, 60.0}, {0.5, 1.0, 0.2});
  const std::vector<double> sizes{120, 40, 900, 77, 310, 15,
                                  222, 68, 433, 12, 600, 50};
  auto q = tasks_of_sizes(sizes);
  auto pni = make_pn_island_scheduler(3, quick_cfg(3));
  util::Rng rng(5);
  const auto a = pni->invoke(view, q, rng);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(a.total(), sizes.size());
  std::set<workload::TaskId> seen;
  for (const auto& queue : a.per_proc) {
    for (const auto id : queue) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), sizes.size());
}

TEST(IslandScheduler, DeterministicRegardlessOfIslandParallelism) {
  const auto view = make_view({10.0, 25.0, 60.0, 90.0}, {0.5, 1.0, 0.2, 2.0});
  const std::vector<double> sizes{120, 40, 900, 77, 310, 15,
                                  222, 68, 433, 12, 600, 50};
  auto run = [&](bool parallel) {
    auto cfg = quick_cfg(4);
    cfg.island_parallel = parallel;
    auto q = tasks_of_sizes(sizes);
    auto pni = make_pn_island_scheduler(4, cfg);
    util::Rng rng(9);
    return pni->invoke(view, q, rng);
  };
  const auto a = run(true);
  const auto b = run(false);
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t j = 0; j < a.per_proc.size(); ++j) {
    EXPECT_EQ(a.per_proc[j], b.per_proc[j]) << "proc " << j;
  }
}

TEST(IslandScheduler, IslandSearchNotWorseThanSingleMicroGa) {
  // 4 islands spend 4x the generations of one micro GA; on a rugged
  // instance the estimated makespan of the chosen schedule should not be
  // worse (same seed, same batch).
  const auto view = make_view({7.0, 13.0, 29.0, 61.0}, {2.0, 0.3, 1.1, 4.0});
  const std::vector<double> sizes{512, 37, 1024, 240, 777, 64,
                                  350, 128, 905, 18,  443, 610};
  const ScheduleEvaluator eval(sizes, view, true);

  auto estimated = [&](const sim::BatchAssignment& a) {
    ProcQueues queues(view.size());
    for (std::size_t j = 0; j < a.per_proc.size(); ++j) {
      for (const auto id : a.per_proc[j]) {
        queues[j].push_back(static_cast<std::size_t>(id));
      }
    }
    return eval.makespan(queues);
  };

  auto qp = tasks_of_sizes(sizes);
  auto pn = std::make_unique<GeneticBatchScheduler>(quick_cfg(1), "PN");
  util::Rng rng_pn(21);
  const double pn_ms = estimated(pn->invoke(view, qp, rng_pn));

  auto qi = tasks_of_sizes(sizes);
  auto pni = make_pn_island_scheduler(4, quick_cfg(4));
  util::Rng rng_pni(21);
  const double pni_ms = estimated(pni->invoke(view, qi, rng_pni));

  EXPECT_LE(pni_ms, 1.05 * pn_ms);
}

}  // namespace
}  // namespace gasched::core
