// Tests for the command-line flag parser.

#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace gasched::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedFlags) {
  const Cli cli = make({"prog", "--tasks", "500", "--name", "pn"});
  EXPECT_EQ(cli.get_int("tasks", 0), 500);
  EXPECT_EQ(cli.get("name", ""), "pn");
}

TEST(Cli, ParsesEqualsSeparatedFlags) {
  const Cli cli = make({"prog", "--tasks=250", "--ratio=0.5"});
  EXPECT_EQ(cli.get_int("tasks", 0), 250);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio", 0.0), 0.5);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const Cli cli = make({"prog", "--verbose"});
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, BooleanFlagExplicitValues) {
  EXPECT_TRUE(make({"p", "--x=yes"}).get_bool("x", false));
  EXPECT_TRUE(make({"p", "--x=on"}).get_bool("x", false));
  EXPECT_TRUE(make({"p", "--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"p", "--x=0"}).get_bool("x", true));
  EXPECT_FALSE(make({"p", "--x=no"}).get_bool("x", true));
}

TEST(Cli, DefaultsWhenMissing) {
  const Cli cli = make({"prog"});
  EXPECT_EQ(cli.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get("missing", "dft"), "dft");
  EXPECT_FALSE(cli.get_bool("missing", false));
}

TEST(Cli, MalformedIntFallsBack) {
  const Cli cli = make({"prog", "--n", "abc"});
  EXPECT_EQ(cli.get_int("n", 9), 9);
}

TEST(Cli, PositionalArgumentsPreserved) {
  const Cli cli = make({"prog", "input.csv", "--n", "3", "other"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
  EXPECT_EQ(cli.positional()[1], "other");
}

TEST(Cli, ProgramNameCaptured) {
  const Cli cli = make({"myprog"});
  EXPECT_EQ(cli.program(), "myprog");
}

TEST(Cli, NegativeNumbersAsValues) {
  const Cli cli = make({"prog", "--offset=-5"});
  EXPECT_EQ(cli.get_int("offset", 0), -5);
}

TEST(Cli, LastOccurrenceWins) {
  const Cli cli = make({"prog", "--n", "1", "--n", "2"});
  EXPECT_EQ(cli.get_int("n", 0), 2);
}

TEST(EnvString, MissingVariableIsNullopt) {
  EXPECT_FALSE(env_string("GASCHED_DEFINITELY_NOT_SET_12345").has_value());
}

}  // namespace
}  // namespace gasched::util
