// Tests for the [runtime] INI section → ServeSetup mapping, including
// the eager validation of policy / arrival / overload names.

#include "rt/serve_config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/config.hpp"

namespace gasched::rt {
namespace {

util::Config parse(const std::string& body) {
  return util::Config::parse("[runtime]\n" + body);
}

TEST(ServeConfigIni, DefaultsWhenSectionIsEmpty) {
  const ServeSetup s = serve_setup_from_config(util::Config::parse(""));
  EXPECT_EQ(s.runtime.worker_speeds.size(), 4u);
  EXPECT_DOUBLE_EQ(s.runtime.work_scale, 0.01);
  EXPECT_TRUE(s.runtime.dispatch_latency.empty());
  EXPECT_EQ(s.runtime.ring_capacity, 1024u);
  EXPECT_EQ(s.serve.policy, "rr");
  EXPECT_EQ(s.serve.arrival, "constant");
  EXPECT_DOUBLE_EQ(s.serve.rate, 1000.0);
  EXPECT_DOUBLE_EQ(s.serve.duration_s, 5.0);
  EXPECT_EQ(s.serve.admission_batch, 32u);
  EXPECT_EQ(s.serve.queue_capacity, 4096u);
  EXPECT_TRUE(s.serve.shed);
}

TEST(ServeConfigIni, ParsesEveryKey) {
  const ServeSetup s = serve_setup_from_config(parse(
      "workers = 6\n"
      "work_scale = 0.5\n"
      "dispatch_latency = 0.001\n"
      "ring_capacity = 64\n"
      "spin_polls = 128\n"
      "seed = 99\n"
      "policy = fastest\n"
      "rate = 2500\n"
      "arrival = diurnal\n"
      "arrival_amplitude = 0.3\n"
      "duration = 2.5\n"
      "admission_batch = 16\n"
      "queue_capacity = 512\n"
      "overload = block\n"));
  EXPECT_EQ(s.runtime.worker_speeds.size(), 6u);
  EXPECT_DOUBLE_EQ(s.runtime.work_scale, 0.5);
  ASSERT_EQ(s.runtime.dispatch_latency.size(), 6u);
  EXPECT_DOUBLE_EQ(s.runtime.dispatch_latency[0], 0.001);
  EXPECT_EQ(s.runtime.ring_capacity, 64u);
  EXPECT_EQ(s.runtime.spin_polls, 128u);
  EXPECT_EQ(s.runtime.seed, 99u);
  EXPECT_EQ(s.serve.policy, "fastest");
  EXPECT_DOUBLE_EQ(s.serve.rate, 2500.0);
  EXPECT_EQ(s.serve.arrival, "diurnal");
  EXPECT_DOUBLE_EQ(
      s.serve.arrival_params.get_double("arrival_amplitude", 0.0), 0.3);
  EXPECT_DOUBLE_EQ(s.serve.duration_s, 2.5);
  EXPECT_EQ(s.serve.admission_batch, 16u);
  EXPECT_EQ(s.serve.queue_capacity, 512u);
  EXPECT_FALSE(s.serve.shed);
}

TEST(ServeConfigIni, ExplicitSpeedsOverrideWorkerCount) {
  const ServeSetup s =
      serve_setup_from_config(parse("speeds = 1.0, 0.5, 0.25\n"));
  ASSERT_EQ(s.runtime.worker_speeds.size(), 3u);
  EXPECT_DOUBLE_EQ(s.runtime.worker_speeds[1], 0.5);
  EXPECT_THROW(serve_setup_from_config(parse("speeds = 1.0, zebra\n")),
               std::runtime_error);
}

TEST(ServeConfigIni, UnknownNamesThrowListingValidChoices) {
  try {
    serve_setup_from_config(parse("policy = cheapest\n"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("least_loaded"), std::string::npos);
  }
  try {
    serve_setup_from_config(parse("arrival = sawtooth\n"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("diurnal"), std::string::npos);
    EXPECT_NE(msg.find("ramp"), std::string::npos);
  }
  try {
    serve_setup_from_config(parse("overload = panic\n"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shed"), std::string::npos);
    EXPECT_NE(msg.find("block"), std::string::npos);
  }
}

TEST(ServeConfigIni, RejectsOutOfRangeValues) {
  EXPECT_THROW(serve_setup_from_config(parse("workers = 0\n")),
               std::runtime_error);
  EXPECT_THROW(serve_setup_from_config(parse("ring_capacity = 1\n")),
               std::runtime_error);
  EXPECT_THROW(serve_setup_from_config(parse("admission_batch = 0\n")),
               std::runtime_error);
  EXPECT_THROW(serve_setup_from_config(parse("queue_capacity = 0\n")),
               std::runtime_error);
  EXPECT_THROW(serve_setup_from_config(parse("dispatch_latency = -1\n")),
               std::runtime_error);
}

}  // namespace
}  // namespace gasched::rt
