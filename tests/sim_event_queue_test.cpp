// CalendarQueue vs a std::priority_queue reference: randomized
// insert/pop/cancel sequences must dequeue in the exact (time, seq)
// order — including FIFO order among equal timestamps, the tie-break the
// engine's determinism contract (and every golden CSV) depends on.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <queue>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace gasched::sim {
namespace {

struct RefEvent {
  SimTime time = 0.0;
  std::uint64_t seq = 0;  // global push counter (mirrors the queue's)
  int tag = 0;
  bool operator>(const RefEvent& o) const {
    if (time != o.time) return time > o.time;
    return seq > o.seq;
  }
};

using RefQueue =
    std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<>>;

TEST(CalendarQueueTest, OrdersByTimeThenPushOrder) {
  CalendarQueue<int> q;
  q.push(5.0, 1);
  q.push(1.0, 2);
  q.push(5.0, 3);  // same time as tag 1: must dequeue after it
  q.push(0.5, 4);
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.top(), 4);
  q.pop();
  EXPECT_EQ(q.top(), 2);
  q.pop();
  EXPECT_EQ(q.top(), 1);
  EXPECT_DOUBLE_EQ(q.top_time(), 5.0);
  q.pop();
  EXPECT_EQ(q.top(), 3);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, EqualTimestampFloodStaysFifo) {
  // A million-at-t=0 style burst (scaled down): all equal keys must come
  // back in exact push order via the tail-append fast path.
  CalendarQueue<int> q;
  for (int i = 0; i < 5000; ++i) q.push(0.0, i);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(q.top(), i);
    q.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, CancelRemovesExactlyThatEvent) {
  CalendarQueue<int> q;
  auto h1 = q.push(1.0, 1);
  auto h2 = q.push(2.0, 2);
  auto h3 = q.push(3.0, 3);
  EXPECT_TRUE(q.pending(h2));
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_FALSE(q.pending(h2));
  EXPECT_FALSE(q.cancel(h2));  // second cancel is refused
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.top(), 1);
  q.pop();
  EXPECT_EQ(q.top(), 3);
  q.pop();
  EXPECT_TRUE(q.empty());
  // Handles to popped events are refused too.
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_FALSE(q.cancel(h3));
}

TEST(CalendarQueueTest, StaleHandleAfterSlotReuseIsRefused) {
  CalendarQueue<int> q;
  auto h1 = q.push(1.0, 1);
  q.pop();  // frees the slot
  auto h2 = q.push(2.0, 2);  // recycles it with a bumped generation
  EXPECT_FALSE(q.cancel(h1));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_TRUE(q.cancel(h2));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, RejectsNonFiniteAndNegativeTimes) {
  CalendarQueue<int> q;
  EXPECT_THROW(q.push(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::quiet_NaN(), 0),
               std::invalid_argument);
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), 0),
               std::invalid_argument);
}

// One randomized scenario: interleaved pushes (several time regimes to
// exercise bucket resizing), pops, and cancels, mirrored against the
// reference heap. Cancelled seqs are filtered from the reference lazily.
void run_mixed_scenario(std::uint64_t seed, std::size_t ops,
                        double time_scale, double equal_time_prob) {
  util::Rng rng(seed);
  CalendarQueue<int> q;
  RefQueue ref;
  std::map<std::uint64_t, CalendarQueue<int>::Handle> live;  // seq -> handle
  std::uint64_t next_seq = 0;
  double clock = 0.0;  // pops only move forward, like a simulation
  int tag = 0;

  for (std::size_t op = 0; op < ops; ++op) {
    const double r = rng.uniform01();
    if (r < 0.5 || q.empty()) {
      // Push at or after the current clock (simulation discipline).
      double t = clock;
      if (rng.uniform01() >= equal_time_prob) {
        t += rng.uniform(0.0, time_scale);
      }
      const auto h = q.push(t, tag);
      ref.push(RefEvent{t, next_seq, tag});
      live.emplace(next_seq, h);
      ++next_seq;
      ++tag;
    } else if (r < 0.85) {
      // Pop and compare against the reference (skipping cancelled refs).
      while (!ref.empty() && live.find(ref.top().seq) == live.end()) {
        ref.pop();
      }
      ASSERT_FALSE(ref.empty());
      const RefEvent expect = ref.top();
      ref.pop();
      ASSERT_DOUBLE_EQ(q.top_time(), expect.time);
      ASSERT_EQ(q.top(), expect.tag) << "tie-break order diverged";
      q.pop();
      live.erase(expect.seq);
      clock = expect.time;
    } else {
      // Cancel a pseudo-random live event.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.index(live.size())));
      ASSERT_TRUE(q.cancel(it->second));
      live.erase(it);
    }
  }
  // Drain: remaining events must come out in exact reference order.
  while (!q.empty()) {
    while (!ref.empty() && live.find(ref.top().seq) == live.end()) ref.pop();
    ASSERT_FALSE(ref.empty());
    ASSERT_EQ(q.top(), ref.top().tag);
    ASSERT_DOUBLE_EQ(q.top_time(), ref.top().time);
    live.erase(ref.top().seq);
    q.pop();
    ref.pop();
  }
  while (!ref.empty() && live.find(ref.top().seq) == live.end()) ref.pop();
  EXPECT_TRUE(ref.empty());
}

TEST(CalendarQueuePropertyTest, MatchesHeapOnSpreadTimes) {
  run_mixed_scenario(/*seed=*/1, /*ops=*/20000, /*time_scale=*/100.0,
                     /*equal_time_prob=*/0.1);
}

TEST(CalendarQueuePropertyTest, MatchesHeapOnDenseEqualTimes) {
  // Half the pushes reuse the exact current clock value: heavy tie-break
  // traffic through the append fast path and the sorted-insert slow path.
  run_mixed_scenario(/*seed=*/2, /*ops=*/20000, /*time_scale=*/1.0,
                     /*equal_time_prob=*/0.5);
}

TEST(CalendarQueuePropertyTest, MatchesHeapOnTinyGaps) {
  run_mixed_scenario(/*seed=*/3, /*ops=*/20000, /*time_scale=*/1e-6,
                     /*equal_time_prob=*/0.25);
}

TEST(CalendarQueuePropertyTest, MatchesHeapAcrossManySeeds) {
  for (std::uint64_t seed = 10; seed < 30; ++seed) {
    run_mixed_scenario(seed, /*ops=*/2000,
                       /*time_scale=*/(seed % 2 ? 1e3 : 1e-2),
                       /*equal_time_prob=*/0.2);
  }
}

TEST(CalendarQueuePropertyTest, GrowShrinkCycleKeepsOrder) {
  // Force several grow/shrink rebuilds: fill far past the resize
  // threshold, drain most, refill, and verify order throughout.
  util::Rng rng(99);
  CalendarQueue<int> q;
  RefQueue ref;
  std::uint64_t seq = 0;
  auto push_burst = [&](std::size_t n, double lo, double hi) {
    for (std::size_t i = 0; i < n; ++i) {
      const double t = rng.uniform(lo, hi);
      q.push(t, static_cast<int>(seq));
      ref.push(RefEvent{t, seq, static_cast<int>(seq)});
      ++seq;
    }
  };
  auto drain = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(q.top(), ref.top().tag);
      q.pop();
      ref.pop();
    }
  };
  push_burst(10000, 0.0, 1e4);
  drain(9800);
  push_burst(5000, 1e4, 2e4);
  drain(5150);
  push_burst(200, 2e4, 2e4);  // equal-time tail
  drain(q.size());
  EXPECT_TRUE(ref.empty());
}

}  // namespace
}  // namespace gasched::sim
