// Tests for workload trace persistence (save/load round trips).

#include "workload/trace_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "workload/generator.hpp"

namespace gasched::workload {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("gasched_trace_" + name);
}

TEST(TraceIo, RoundTripPreservesTasks) {
  UniformSizes dist(10.0, 100.0);
  util::Rng rng(1);
  ArrivalConfig arr;
  arr.all_at_start = false;
  const Workload original = generate(dist, 100, rng, arr);
  const auto path = temp_path("roundtrip.csv");
  save_trace(original, path);
  const Workload loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.tasks[i].id, original.tasks[i].id);
    EXPECT_NEAR(loaded.tasks[i].size_mflops, original.tasks[i].size_mflops,
                1e-6 * original.tasks[i].size_mflops);
    EXPECT_NEAR(loaded.tasks[i].arrival_time, original.tasks[i].arrival_time,
                1e-6 * (original.tasks[i].arrival_time + 1.0));
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, EmptyWorkloadRoundTrips) {
  const auto path = temp_path("empty.csv");
  save_trace(Workload{}, path);
  const Workload loaded = load_trace(path);
  EXPECT_TRUE(loaded.empty());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/gasched/trace.csv"),
               std::runtime_error);
}

TEST(TraceIo, MissingHeaderThrows) {
  const auto path = temp_path("noheader.csv");
  {
    std::ofstream out(path);
    out << "1,10.0,0.0\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIo, MalformedNumberThrows) {
  const auto path = temp_path("badnum.csv");
  {
    std::ofstream out(path);
    out << "id,size_mflops,arrival_time\n";
    out << "1,notanumber,0.0\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIo, NonPositiveSizeRejected) {
  const auto path = temp_path("badsize.csv");
  {
    std::ofstream out(path);
    out << "id,size_mflops,arrival_time\n";
    out << "1,-5.0,0.0\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(TraceIo, ShortRowRejected) {
  const auto path = temp_path("short.csv");
  {
    std::ofstream out(path);
    out << "id,size_mflops,arrival_time\n";
    out << "1,5.0\n";
  }
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gasched::workload
