// Tests for the lock-free SPSC descriptor ring (the serving runtime's
// data plane). The randomized stress tests run one real producer thread
// against one real consumer thread — under TSan (the CI thread-sanitize
// job) they double as a memory-ordering proof for the acquire/release
// protocol.

#include "rt/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace gasched::rt {
namespace {

struct Desc {
  std::uint64_t seq = 0;
  std::uint64_t payload = 0;
};
static_assert(std::is_trivially_copyable_v<Desc>);

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<Desc>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<Desc>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<Desc>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<Desc>(1024).capacity(), 1024u);
  EXPECT_EQ(SpscRing<Desc>(1025).capacity(), 2048u);
}

TEST(SpscRing, FifoOrderSingleThreaded) {
  SpscRing<Desc> ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push({i, i * 3}));
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    Desc d;
    ASSERT_TRUE(ring.try_pop(d));
    EXPECT_EQ(d.seq, i);
    EXPECT_EQ(d.payload, i * 3);
  }
}

TEST(SpscRing, FullAndEmptyEdges) {
  SpscRing<Desc> ring(4);  // capacity 4 exactly
  Desc d;
  EXPECT_FALSE(ring.try_pop(d));  // empty from the start
  EXPECT_TRUE(ring.consumer_empty());
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push({i, 0}));
  EXPECT_FALSE(ring.try_push({99, 0}));  // full
  EXPECT_EQ(ring.size_approx(), 4u);
  ASSERT_TRUE(ring.try_pop(d));
  EXPECT_EQ(d.seq, 0u);
  EXPECT_TRUE(ring.try_push({4, 0}));   // slot freed
  EXPECT_FALSE(ring.try_push({5, 0}));  // full again
  for (std::uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(ring.try_pop(d));
    EXPECT_EQ(d.seq, i);
  }
  EXPECT_FALSE(ring.try_pop(d));
  EXPECT_TRUE(ring.consumer_empty());
}

TEST(SpscRing, WrapAroundManyTimes) {
  // Cursors keep running past the capacity; the mask must keep indexing
  // valid across hundreds of wraps.
  SpscRing<Desc> ring(4);
  std::uint64_t next_pop = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push({i, i ^ 0xABCD}));
    if (i % 3 == 0) {  // drain partially, keeping the ring nonempty
      Desc d;
      ASSERT_TRUE(ring.try_pop(d));
      EXPECT_EQ(d.seq, next_pop);
      EXPECT_EQ(d.payload, next_pop ^ 0xABCD);
      ++next_pop;
    }
    if (ring.size_approx() >= ring.capacity()) {
      Desc d;
      ASSERT_TRUE(ring.try_pop(d));
      EXPECT_EQ(d.seq, next_pop++);
    }
  }
  Desc d;
  while (ring.try_pop(d)) EXPECT_EQ(d.seq, next_pop++);
  EXPECT_EQ(next_pop, 1000u);
}

// Randomized two-thread stress: the producer pushes `total` sequenced
// descriptors in random bursts, the consumer pops in random bursts.
// Every descriptor must come out exactly once, in order — no losses, no
// duplicates, no torn payloads.
void spsc_stress(std::size_t ring_capacity, std::uint64_t total,
                 std::uint64_t seed) {
  SpscRing<Desc> ring(ring_capacity);

  std::thread producer([&] {
    util::Rng rng(seed);
    std::uint64_t pushed = 0;
    while (pushed < total) {
      const std::uint64_t burst =
          1 + static_cast<std::uint64_t>(rng.uniform(0.0, 16.0));
      for (std::uint64_t k = 0; k < burst && pushed < total; ++k) {
        const Desc d{pushed, pushed * 2654435761ull};
        // Yield while full so the test makes progress on few cores.
        while (!ring.try_push(d)) std::this_thread::yield();
        ++pushed;
      }
    }
  });

  util::Rng rng(seed + 1);
  std::uint64_t popped = 0;
  while (popped < total) {
    const std::uint64_t burst =
        1 + static_cast<std::uint64_t>(rng.uniform(0.0, 16.0));
    for (std::uint64_t k = 0; k < burst && popped < total; ++k) {
      Desc d;
      while (!ring.try_pop(d)) std::this_thread::yield();
      ASSERT_EQ(d.seq, popped);  // FIFO, no loss, no duplication
      ASSERT_EQ(d.payload, popped * 2654435761ull);  // not torn
      ++popped;
    }
  }
  producer.join();
  Desc d;
  EXPECT_FALSE(ring.try_pop(d));  // nothing left behind
}

TEST(SpscRing, StressTinyRing) {
  // Capacity 2: maximal contention on the full/empty edges.
  spsc_stress(2, 50'000, 11);
}

TEST(SpscRing, StressSmallRing) { spsc_stress(8, 200'000, 12); }

TEST(SpscRing, StressLargeRing) { spsc_stress(1024, 200'000, 13); }

}  // namespace
}  // namespace gasched::rt
