// Equivalence tests for the flat evaluation core: decode into a
// FlatSchedule and the span-based evaluator overloads must be
// bit-identical to the legacy ProcQueues path across randomized batches —
// the contract that keeps every golden value and figure CSV byte-stable
// across the zero-allocation refactor.

#include <gtest/gtest.h>

#include <vector>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "core/rebalance.hpp"
#include "meta/assignment.hpp"
#include "util/rng.hpp"

namespace gasched::core {
namespace {

// Every identity here asserts the canonical (exact-mode) bitwise
// contract; pin the process default so a GASCHED_NUMERIC_MODE=fast CI
// run cannot switch the default-constructed evaluators to the SIMD path
// (whose results are tolerance-bounded, not bit-pinned).
const struct PinExactMode {
  PinExactMode() { set_default_numeric_mode(NumericMode::kExact); }
} pin_exact_mode;

sim::SystemView random_view(std::size_t procs, util::Rng& rng) {
  sim::SystemView v;
  v.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rng.uniform(5.0, 120.0);
    v.procs[j].pending_mflops = rng.bernoulli(0.5) ? rng.uniform(0.0, 500.0) : 0.0;
    v.procs[j].comm_estimate = rng.uniform(0.1, 30.0);
    v.procs[j].comm_observations = 1;
  }
  return v;
}

std::vector<double> random_sizes(std::size_t tasks, util::Rng& rng) {
  std::vector<double> s(tasks);
  for (auto& v : s) v = rng.uniform(5.0, 1500.0);
  return s;
}

/// A random valid chromosome: shuffled permutation of the symbol set.
ga::Chromosome random_chromosome(const ScheduleCodec& codec, util::Rng& rng) {
  ga::Chromosome c;
  c.reserve(codec.chromosome_length());
  for (std::size_t s = 0; s < codec.num_tasks(); ++s) {
    c.push_back(ScheduleCodec::task_gene(s));
  }
  for (std::size_t k = 0; k + 1 < codec.num_procs(); ++k) {
    c.push_back(ScheduleCodec::delimiter_gene(k));
  }
  rng.shuffle(c);
  return c;
}

TEST(FlatEval, DecodeIntoMatchesLegacyDecodeRandomized) {
  util::Rng rng(101);
  FlatSchedule flat;
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + rng.index(60);
    const std::size_t procs = 1 + rng.index(12);
    const ScheduleCodec codec(tasks, procs);
    const ga::Chromosome c = random_chromosome(codec, rng);

    const ProcQueues legacy = codec.decode(c);
    codec.decode_into(c, flat);  // reused across rounds on purpose
    ASSERT_EQ(flat.num_procs(), procs);
    ASSERT_EQ(flat.num_slots(), tasks);
    EXPECT_EQ(flat.to_queues(), legacy);
  }
}

TEST(FlatEval, EvaluatorOverloadsBitIdenticalToProcQueuesPath) {
  util::Rng rng(202);
  FlatSchedule flat;
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + rng.index(40);
    const std::size_t procs = 1 + rng.index(10);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng),
                                 /*use_comm=*/rng.bernoulli(0.5));
    const ga::Chromosome c = random_chromosome(codec, rng);
    const ProcQueues legacy = codec.decode(c);
    codec.decode_into(c, flat);

    for (std::size_t j = 0; j < procs; ++j) {
      EXPECT_EQ(eval.completion_time(j, flat.queue(j)),
                eval.completion_time(j, legacy[j]));
    }
    EXPECT_EQ(eval.makespan(flat), eval.makespan(legacy));
    EXPECT_EQ(eval.relative_error(flat), eval.relative_error(legacy));
    EXPECT_EQ(eval.fitness(flat), eval.fitness(legacy));

    const BatchEvaluation combined = eval.evaluate(flat);
    EXPECT_EQ(combined.fitness, eval.fitness(legacy));
    EXPECT_EQ(combined.makespan, eval.makespan(legacy));
    EXPECT_EQ(combined.relative_error, eval.relative_error(legacy));
  }
}

TEST(FlatEval, ScheduleProblemEvaluateMatchesLegacyAdapters) {
  util::Rng rng(303);
  const std::size_t tasks = 30, procs = 6;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  const ScheduleProblem problem(codec, eval);
  const auto ws = problem.make_workspace();
  ASSERT_NE(ws, nullptr);
  for (int round = 0; round < 20; ++round) {
    const ga::Chromosome c = random_chromosome(codec, rng);
    const auto e = problem.evaluate(c, ws.get());
    EXPECT_EQ(e.fitness, problem.fitness(c));
    EXPECT_EQ(e.objective, problem.objective(c));
    // Null workspace falls back to a throwaway one — same values.
    const auto e0 = problem.evaluate(c, nullptr);
    EXPECT_EQ(e0.fitness, e.fitness);
    EXPECT_EQ(e0.objective, e.objective);
  }
}

TEST(FlatEval, EncodeFlatMatchesEncodeQueues) {
  util::Rng rng(404);
  FlatSchedule flat;
  for (int round = 0; round < 20; ++round) {
    const std::size_t tasks = 1 + rng.index(30);
    const std::size_t procs = 1 + rng.index(8);
    const ScheduleCodec codec(tasks, procs);
    const ga::Chromosome c = random_chromosome(codec, rng);
    const ProcQueues q = codec.decode(c);
    codec.decode_into(c, flat);
    EXPECT_EQ(codec.encode(flat), codec.encode(q));
  }
}

TEST(FlatEval, AssignRoundTripsAndGroupedMatchesLoadTracker) {
  util::Rng rng(505);
  const std::size_t tasks = 25, procs = 5;
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  FlatSchedule flat;
  list_schedule_flat(eval, 0.5, rng, flat);

  // assign()/to_queues() round trip.
  FlatSchedule copy;
  copy.assign(flat.to_queues());
  EXPECT_EQ(copy, flat);

  // assign_grouped reproduces LoadTracker::to_queues (ascending slots).
  const meta::LoadTracker tracker(eval, flat);
  FlatSchedule grouped;
  grouped.assign_grouped(tracker.assignment(), procs);
  EXPECT_EQ(grouped.to_queues(), tracker.to_queues());

  // export_schedule is the same thing without the adapter.
  FlatSchedule exported;
  tracker.export_schedule(exported);
  EXPECT_EQ(exported, grouped);
}

TEST(FlatEval, ListScheduleFlatMatchesLegacyListSchedule) {
  util::Rng rng(606);
  const std::size_t tasks = 40, procs = 7;
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  for (const double frac : {0.0, 0.5, 1.0}) {
    util::Rng ra(77), rb(77);
    FlatSchedule flat;
    list_schedule_flat(eval, frac, ra, flat);
    const ProcQueues legacy = list_schedule(eval, frac, rb);
    EXPECT_EQ(flat.to_queues(), legacy);
    // Identical RNG consumption: the streams agree afterwards.
    EXPECT_EQ(ra.next_u64(), rb.next_u64());
  }
}

TEST(FlatEval, RebalanceWithWorkspaceMatchesConvenienceOverload) {
  util::Rng rng(707);
  const std::size_t tasks = 20, procs = 4;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  EvalWorkspace ws;
  for (int round = 0; round < 20; ++round) {
    ga::Chromosome a = random_chromosome(codec, rng);
    ga::Chromosome b = a;
    util::Rng ra(900 + round), rb(900 + round);
    const bool ka = rebalance_once(a, codec, eval, ra, 5, ws);
    const bool kb = rebalance_once(b, codec, eval, rb, 5);
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(a, b);
  }
}

TEST(FlatEval, LoadTrackerFlatConstructorMatchesQueueConstructor) {
  util::Rng rng(808);
  const std::size_t tasks = 18, procs = 4;
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  FlatSchedule flat;
  list_schedule_flat(eval, 0.3, rng, flat);
  const meta::LoadTracker from_flat(eval, flat);
  const meta::LoadTracker from_queues(eval, flat.to_queues());
  for (std::size_t j = 0; j < procs; ++j) {
    EXPECT_EQ(from_flat.completion(j), from_queues.completion(j));
  }
  for (std::size_t s = 0; s < tasks; ++s) {
    EXPECT_EQ(from_flat.proc_of(s), from_queues.proc_of(s));
  }
}

TEST(FlatEval, LoadMatchesEvaluateAndCachesQueueState) {
  util::Rng rng(909);
  FlatSchedule flat;
  QueueLoads loads;  // reused across rounds on purpose (resize contract)
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + rng.index(40);
    const std::size_t procs = 1 + rng.index(10);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng), rng.bernoulli(0.5));
    codec.decode_into(random_chromosome(codec, rng), flat);

    const BatchEvaluation full = eval.evaluate(flat);
    const BatchEvaluation cached = eval.load(flat, loads);
    EXPECT_EQ(cached.fitness, full.fitness);
    EXPECT_EQ(cached.makespan, full.makespan);
    EXPECT_EQ(cached.relative_error, full.relative_error);
    EXPECT_EQ(loads.eval.fitness, full.fitness);
    EXPECT_EQ(loads.max_completion, full.makespan);

    // Per-queue cache entries are the canonical completion times, and the
    // cached argmax is the first argmax (ties to the smallest index).
    ASSERT_EQ(loads.completion.size(), procs);
    std::size_t first_argmax = 0;
    double heavy_time = -1.0;
    for (std::size_t j = 0; j < procs; ++j) {
      const double cj = eval.completion_time(j, flat.queue(j));
      EXPECT_EQ(loads.completion[j], cj);
      const double dev = eval.psi() - cj;
      EXPECT_EQ(loads.dev_sq[j], dev * dev);
      if (cj > heavy_time) {
        heavy_time = cj;
        first_argmax = j;
      }
    }
    EXPECT_EQ(loads.heaviest, first_argmax);
  }
}

TEST(FlatEval, LoadDecodedMatchesDecodeIntoPlusLoad) {
  util::Rng rng(1010);
  FlatSchedule fused, staged;
  QueueLoads fused_loads, staged_loads;
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + rng.index(40);
    const std::size_t procs = 1 + rng.index(10);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng), rng.bernoulli(0.5));
    const ga::Chromosome c = random_chromosome(codec, rng);

    const BatchEvaluation a = eval.load_decoded(codec, c, fused, fused_loads);
    codec.decode_into(c, staged);
    const BatchEvaluation b = eval.load(staged, staged_loads);

    EXPECT_EQ(fused, staged);
    EXPECT_EQ(a.fitness, b.fitness);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.relative_error, b.relative_error);
    EXPECT_EQ(fused_loads.completion, staged_loads.completion);
    EXPECT_EQ(fused_loads.dev_sq, staged_loads.dev_sq);
    EXPECT_EQ(fused_loads.sum_sq, staged_loads.sum_sq);
    EXPECT_EQ(fused_loads.heaviest, staged_loads.heaviest);
  }
}

TEST(FlatEval, EvaluateSwapBitIdenticalToFullRepriceOverMoveSequences) {
  util::Rng rng(1111);
  FlatSchedule flat;
  QueueLoads delta_loads, fresh_loads;
  for (int round = 0; round < 30; ++round) {
    const std::size_t tasks = 2 + rng.index(40);
    const std::size_t procs = 2 + rng.index(9);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng), rng.bernoulli(0.5));
    codec.decode_into(random_chromosome(codec, rng), flat);
    eval.load(flat, delta_loads);

    // A chain of random cross-queue swaps, each delta-priced against the
    // cache carried through every previous step: the cache must match a
    // from-scratch pricing bit for bit after every single edit.
    for (int step = 0; step < 25; ++step) {
      const std::size_t qa = rng.index(procs);
      std::size_t qb = rng.index(procs - 1);
      if (qb >= qa) ++qb;
      const auto queue_a = flat.queue(qa);
      const auto queue_b = flat.queue(qb);
      if (queue_a.empty() || queue_b.empty()) continue;
      std::swap(queue_a[rng.index(queue_a.size())],
                queue_b[rng.index(queue_b.size())]);

      const BatchEvaluation delta = eval.evaluate_swap(flat, delta_loads, qa, qb);
      const BatchEvaluation full = eval.load(flat, fresh_loads);
      ASSERT_EQ(delta.fitness, full.fitness);
      ASSERT_EQ(delta.makespan, full.makespan);
      ASSERT_EQ(delta.relative_error, full.relative_error);
      ASSERT_EQ(delta_loads.completion, fresh_loads.completion);
      ASSERT_EQ(delta_loads.dev_sq, fresh_loads.dev_sq);
      ASSERT_EQ(delta_loads.sum_sq, fresh_loads.sum_sq);
      ASSERT_EQ(delta_loads.max_completion, fresh_loads.max_completion);
      ASSERT_EQ(delta_loads.heaviest, fresh_loads.heaviest);
    }
  }
}

TEST(FlatEval, EvaluateMoveBitIdenticalToFullReprice) {
  util::Rng rng(1212);
  FlatSchedule flat;
  QueueLoads delta_loads, fresh_loads;
  for (int round = 0; round < 30; ++round) {
    const std::size_t tasks = 1 + rng.index(30);
    const std::size_t procs = 2 + rng.index(8);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng), rng.bernoulli(0.5));
    ProcQueues queues = codec.decode(random_chromosome(codec, rng));
    flat.assign(queues);
    eval.load(flat, delta_loads);

    for (int step = 0; step < 15; ++step) {
      const std::size_t from = rng.index(procs);
      std::size_t to = rng.index(procs - 1);
      if (to >= from) ++to;
      if (queues[from].empty()) continue;
      // Moves resize queues, so the schedule is rebuilt; the load cache is
      // NOT — evaluate_move must bring it current from the two queue ids.
      const std::size_t pos = rng.index(queues[from].size());
      queues[to].push_back(queues[from][pos]);
      queues[from].erase(queues[from].begin() +
                         static_cast<std::ptrdiff_t>(pos));
      flat.assign(queues);

      const BatchEvaluation delta = eval.evaluate_move(flat, delta_loads, from, to);
      const BatchEvaluation full = eval.load(flat, fresh_loads);
      ASSERT_EQ(delta.fitness, full.fitness);
      ASSERT_EQ(delta.makespan, full.makespan);
      ASSERT_EQ(delta.relative_error, full.relative_error);
      ASSERT_EQ(delta_loads.completion, fresh_loads.completion);
      ASSERT_EQ(delta_loads.sum_sq, fresh_loads.sum_sq);
      ASSERT_EQ(delta_loads.heaviest, fresh_loads.heaviest);
    }
  }
}

TEST(FlatEval, CostTableServesDefiningExpression) {
  util::Rng rng(1313);
  const std::size_t tasks = 20, procs = 6;
  const std::vector<double> sizes = random_sizes(tasks, rng);
  const sim::SystemView view = random_view(procs, rng);
  for (const bool use_comm : {false, true}) {
    const ScheduleEvaluator eval(sizes, view, use_comm);
    for (std::size_t j = 0; j < procs; ++j) {
      for (std::size_t s = 0; s < tasks; ++s) {
        // Exactly the double the defining expression produces — the table
        // removes the division, not a single bit.
        const double expected =
            sizes[s] / view.procs[j].rate + (use_comm ? eval.comm(j) : 0.0);
        EXPECT_EQ(eval.task_cost_on(s, j), expected);
      }
    }
  }
}

TEST(FlatEval, BulkKernelMatchesCanonicalWithinUlps) {
  util::Rng rng(1414);
  FlatSchedule flat;
  for (int round = 0; round < 20; ++round) {
    const std::size_t tasks = 1 + rng.index(60);
    const std::size_t procs = 1 + rng.index(10);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng), rng.bernoulli(0.5));
    codec.decode_into(random_chromosome(codec, rng), flat);
    for (std::size_t j = 0; j < procs; ++j) {
      // Sum-then-divide re-associates the FP reduction: mathematically
      // equal, near-equal in doubles, deliberately NOT bit-identical.
      EXPECT_NEAR(eval.completion_time_bulk(j, flat.queue(j)),
                  eval.completion_time(j, flat.queue(j)),
                  1e-9 * (1.0 + eval.completion_time(j, flat.queue(j))));
    }
  }
}

TEST(FlatEval, DecodeIntoRejectsTooManyDelimiters) {
  const ScheduleCodec codec(2, 2);
  FlatSchedule flat;
  // 2 tasks, 2 procs -> exactly one delimiter allowed.
  const ga::Chromosome bad{ScheduleCodec::task_gene(0),
                           ScheduleCodec::delimiter_gene(0),
                           ScheduleCodec::delimiter_gene(0),
                           ScheduleCodec::task_gene(1)};
  EXPECT_THROW(codec.decode_into(bad, flat), std::invalid_argument);
}

}  // namespace
}  // namespace gasched::core
