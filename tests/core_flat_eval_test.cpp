// Equivalence tests for the flat evaluation core: decode into a
// FlatSchedule and the span-based evaluator overloads must be
// bit-identical to the legacy ProcQueues path across randomized batches —
// the contract that keeps every golden value and figure CSV byte-stable
// across the zero-allocation refactor.

#include <gtest/gtest.h>

#include <vector>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "core/rebalance.hpp"
#include "meta/assignment.hpp"
#include "util/rng.hpp"

namespace gasched::core {
namespace {

sim::SystemView random_view(std::size_t procs, util::Rng& rng) {
  sim::SystemView v;
  v.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rng.uniform(5.0, 120.0);
    v.procs[j].pending_mflops = rng.bernoulli(0.5) ? rng.uniform(0.0, 500.0) : 0.0;
    v.procs[j].comm_estimate = rng.uniform(0.1, 30.0);
    v.procs[j].comm_observations = 1;
  }
  return v;
}

std::vector<double> random_sizes(std::size_t tasks, util::Rng& rng) {
  std::vector<double> s(tasks);
  for (auto& v : s) v = rng.uniform(5.0, 1500.0);
  return s;
}

/// A random valid chromosome: shuffled permutation of the symbol set.
ga::Chromosome random_chromosome(const ScheduleCodec& codec, util::Rng& rng) {
  ga::Chromosome c;
  c.reserve(codec.chromosome_length());
  for (std::size_t s = 0; s < codec.num_tasks(); ++s) {
    c.push_back(ScheduleCodec::task_gene(s));
  }
  for (std::size_t k = 0; k + 1 < codec.num_procs(); ++k) {
    c.push_back(ScheduleCodec::delimiter_gene(k));
  }
  rng.shuffle(c);
  return c;
}

TEST(FlatEval, DecodeIntoMatchesLegacyDecodeRandomized) {
  util::Rng rng(101);
  FlatSchedule flat;
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + rng.index(60);
    const std::size_t procs = 1 + rng.index(12);
    const ScheduleCodec codec(tasks, procs);
    const ga::Chromosome c = random_chromosome(codec, rng);

    const ProcQueues legacy = codec.decode(c);
    codec.decode_into(c, flat);  // reused across rounds on purpose
    ASSERT_EQ(flat.num_procs(), procs);
    ASSERT_EQ(flat.num_slots(), tasks);
    EXPECT_EQ(flat.to_queues(), legacy);
  }
}

TEST(FlatEval, EvaluatorOverloadsBitIdenticalToProcQueuesPath) {
  util::Rng rng(202);
  FlatSchedule flat;
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + rng.index(40);
    const std::size_t procs = 1 + rng.index(10);
    const ScheduleCodec codec(tasks, procs);
    const ScheduleEvaluator eval(random_sizes(tasks, rng),
                                 random_view(procs, rng),
                                 /*use_comm=*/rng.bernoulli(0.5));
    const ga::Chromosome c = random_chromosome(codec, rng);
    const ProcQueues legacy = codec.decode(c);
    codec.decode_into(c, flat);

    for (std::size_t j = 0; j < procs; ++j) {
      EXPECT_EQ(eval.completion_time(j, flat.queue(j)),
                eval.completion_time(j, legacy[j]));
    }
    EXPECT_EQ(eval.makespan(flat), eval.makespan(legacy));
    EXPECT_EQ(eval.relative_error(flat), eval.relative_error(legacy));
    EXPECT_EQ(eval.fitness(flat), eval.fitness(legacy));

    const BatchEvaluation combined = eval.evaluate(flat);
    EXPECT_EQ(combined.fitness, eval.fitness(legacy));
    EXPECT_EQ(combined.makespan, eval.makespan(legacy));
    EXPECT_EQ(combined.relative_error, eval.relative_error(legacy));
  }
}

TEST(FlatEval, ScheduleProblemEvaluateMatchesLegacyAdapters) {
  util::Rng rng(303);
  const std::size_t tasks = 30, procs = 6;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  const ScheduleProblem problem(codec, eval);
  const auto ws = problem.make_workspace();
  ASSERT_NE(ws, nullptr);
  for (int round = 0; round < 20; ++round) {
    const ga::Chromosome c = random_chromosome(codec, rng);
    const auto e = problem.evaluate(c, ws.get());
    EXPECT_EQ(e.fitness, problem.fitness(c));
    EXPECT_EQ(e.objective, problem.objective(c));
    // Null workspace falls back to a throwaway one — same values.
    const auto e0 = problem.evaluate(c, nullptr);
    EXPECT_EQ(e0.fitness, e.fitness);
    EXPECT_EQ(e0.objective, e.objective);
  }
}

TEST(FlatEval, EncodeFlatMatchesEncodeQueues) {
  util::Rng rng(404);
  FlatSchedule flat;
  for (int round = 0; round < 20; ++round) {
    const std::size_t tasks = 1 + rng.index(30);
    const std::size_t procs = 1 + rng.index(8);
    const ScheduleCodec codec(tasks, procs);
    const ga::Chromosome c = random_chromosome(codec, rng);
    const ProcQueues q = codec.decode(c);
    codec.decode_into(c, flat);
    EXPECT_EQ(codec.encode(flat), codec.encode(q));
  }
}

TEST(FlatEval, AssignRoundTripsAndGroupedMatchesLoadTracker) {
  util::Rng rng(505);
  const std::size_t tasks = 25, procs = 5;
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  FlatSchedule flat;
  list_schedule_flat(eval, 0.5, rng, flat);

  // assign()/to_queues() round trip.
  FlatSchedule copy;
  copy.assign(flat.to_queues());
  EXPECT_EQ(copy, flat);

  // assign_grouped reproduces LoadTracker::to_queues (ascending slots).
  const meta::LoadTracker tracker(eval, flat);
  FlatSchedule grouped;
  grouped.assign_grouped(tracker.assignment(), procs);
  EXPECT_EQ(grouped.to_queues(), tracker.to_queues());

  // export_schedule is the same thing without the adapter.
  FlatSchedule exported;
  tracker.export_schedule(exported);
  EXPECT_EQ(exported, grouped);
}

TEST(FlatEval, ListScheduleFlatMatchesLegacyListSchedule) {
  util::Rng rng(606);
  const std::size_t tasks = 40, procs = 7;
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  for (const double frac : {0.0, 0.5, 1.0}) {
    util::Rng ra(77), rb(77);
    FlatSchedule flat;
    list_schedule_flat(eval, frac, ra, flat);
    const ProcQueues legacy = list_schedule(eval, frac, rb);
    EXPECT_EQ(flat.to_queues(), legacy);
    // Identical RNG consumption: the streams agree afterwards.
    EXPECT_EQ(ra.next_u64(), rb.next_u64());
  }
}

TEST(FlatEval, RebalanceWithWorkspaceMatchesConvenienceOverload) {
  util::Rng rng(707);
  const std::size_t tasks = 20, procs = 4;
  const ScheduleCodec codec(tasks, procs);
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  EvalWorkspace ws;
  for (int round = 0; round < 20; ++round) {
    ga::Chromosome a = random_chromosome(codec, rng);
    ga::Chromosome b = a;
    util::Rng ra(900 + round), rb(900 + round);
    const bool ka = rebalance_once(a, codec, eval, ra, 5, ws);
    const bool kb = rebalance_once(b, codec, eval, rb, 5);
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(a, b);
  }
}

TEST(FlatEval, LoadTrackerFlatConstructorMatchesQueueConstructor) {
  util::Rng rng(808);
  const std::size_t tasks = 18, procs = 4;
  const ScheduleEvaluator eval(random_sizes(tasks, rng),
                               random_view(procs, rng), true);
  FlatSchedule flat;
  list_schedule_flat(eval, 0.3, rng, flat);
  const meta::LoadTracker from_flat(eval, flat);
  const meta::LoadTracker from_queues(eval, flat.to_queues());
  for (std::size_t j = 0; j < procs; ++j) {
    EXPECT_EQ(from_flat.completion(j), from_queues.completion(j));
  }
  for (std::size_t s = 0; s < tasks; ++s) {
    EXPECT_EQ(from_flat.proc_of(s), from_queues.proc_of(s));
  }
}

TEST(FlatEval, DecodeIntoRejectsTooManyDelimiters) {
  const ScheduleCodec codec(2, 2);
  FlatSchedule flat;
  // 2 tasks, 2 procs -> exactly one delimiter allowed.
  const ga::Chromosome bad{ScheduleCodec::task_gene(0),
                           ScheduleCodec::delimiter_gene(0),
                           ScheduleCodec::delimiter_gene(0),
                           ScheduleCodec::task_gene(1)};
  EXPECT_THROW(codec.decode_into(bad, flat), std::invalid_argument);
}

}  // namespace
}  // namespace gasched::core
