// Property sweep: engine invariants that must hold for EVERY combination
// of scheduler, cluster size, communication regime, and task-size
// distribution. Parameterised gtest grid; each cell runs a full (small)
// simulation with a recorded task trace and checks structural invariants.

#include <gtest/gtest.h>

#include <tuple>

#include "exp/runner.hpp"
#include "sim/gantt.hpp"

namespace gasched::exp {
namespace {

using Grid = std::tuple<std::string, std::size_t /*procs*/,
                        double /*mean comm*/, std::string>;

class EngineInvariants : public ::testing::TestWithParam<Grid> {};

TEST_P(EngineInvariants, HoldAcrossTheGrid) {
  const auto& [kind, procs, comm, dist] = GetParam();
  Scenario s;
  s.name = "prop";
  s.cluster = paper_cluster(comm, procs);
  s.workload.dist = dist;
  if (dist == "normal") {
    s.workload.param_a = 1000.0;
    s.workload.param_b = 9e5;
  } else if (dist == "uniform") {
    s.workload.param_a = 10.0;
    s.workload.param_b = 1000.0;
  } else if (dist == "poisson") {
    s.workload.param_a = 50.0;
  } else {  // constant
    s.workload.param_a = 100.0;
  }
  s.workload.count = 120;
  s.seed = 77;
  s.replications = 1;

  SchedulerParams opts;
  opts.set("batch_size", 40);
  opts.set("max_generations", 30);
  opts.set("population", 8);

  // Rebuild the exact run with a trace for structural checks.
  const util::Rng base(s.seed);
  util::Rng wrng = base.split(0), crng = base.split(1), srng = base.split(2);
  const auto d = make_distribution(s.workload);
  const auto wl = workload::generate(*d, s.workload.count, wrng);
  const auto cluster = sim::build_cluster(s.cluster, crng);
  auto policy = make_scheduler(kind, opts);
  sim::EngineConfig ecfg;
  ecfg.record_task_trace = true;
  const auto r = sim::simulate(cluster, wl, *policy, srng, ecfg);

  // Invariant 1: every task completes exactly once.
  EXPECT_EQ(r.tasks_completed, wl.size());
  std::size_t task_sum = 0;
  double work_sum = 0.0;
  for (const auto& p : r.per_proc) {
    task_sum += p.tasks;
    work_sum += p.work_mflops;
  }
  EXPECT_EQ(task_sum, wl.size());
  EXPECT_NEAR(work_sum, wl.total_mflops(), 1e-6 * wl.total_mflops());

  // Invariant 2: efficiency is a valid fraction; busy time never exceeds
  // M * makespan.
  EXPECT_GE(r.efficiency(), 0.0);
  EXPECT_LE(r.efficiency(), 1.0 + 1e-12);

  // Invariant 3: makespan is reached by some completion and no per-proc
  // busy time exceeds it.
  for (const auto& p : r.per_proc) {
    EXPECT_LE(p.busy_time, r.makespan + 1e-6);
  }

  // Invariant 4: the task trace is structurally consistent.
  EXPECT_EQ(sim::validate_task_trace(r), "");

  // Invariant 5: no communication time unless links cost something.
  if (comm <= 0.0) {
    EXPECT_DOUBLE_EQ(r.total_comm_time(), 0.0);
  } else {
    EXPECT_GT(r.total_comm_time(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineInvariants,
    ::testing::Combine(
        ::testing::Values("PN", "ZO",
                          "EF", "RR",
                          "MM", "SUF",
                          "SA", "TS",
                          "ACO", "HC",
                          "PNI", "OLB",
                          "DUP"),
        ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{16}),
        ::testing::Values(1.0, 25.0),
        ::testing::Values("normal", "uniform",
                          "poisson")));

}  // namespace
}  // namespace gasched::exp
