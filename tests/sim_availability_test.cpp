// Tests for availability models and execution-time integration.

#include "sim/availability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace gasched::sim {
namespace {

TEST(FixedAvailability, ConstantMultiplier) {
  FixedAvailability a(0.75);
  EXPECT_DOUBLE_EQ(a.multiplier(0.0), 0.75);
  EXPECT_DOUBLE_EQ(a.multiplier(1e9), 0.75);
  EXPECT_TRUE(a.constant());
}

TEST(FixedAvailability, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(FixedAvailability(2.0).multiplier(0.0), 1.0);
  EXPECT_GT(FixedAvailability(-1.0).multiplier(0.0), 0.0);
}

TEST(SinusoidalAvailability, StaysWithinBand) {
  SinusoidalAvailability a(0.4, 0.9, 100.0);
  for (double t = 0.0; t < 500.0; t += 3.7) {
    const double m = a.multiplier(t);
    ASSERT_GE(m, 0.4 - 1e-12);
    ASSERT_LE(m, 0.9 + 1e-12);
  }
}

TEST(SinusoidalAvailability, PeriodicityHolds) {
  SinusoidalAvailability a(0.2, 1.0, 50.0);
  for (double t : {0.0, 13.0, 26.5}) {
    EXPECT_NEAR(a.multiplier(t), a.multiplier(t + 50.0), 1e-9);
  }
}

TEST(SinusoidalAvailability, RejectsBadParameters) {
  EXPECT_THROW(SinusoidalAvailability(0.0, 0.9, 10.0), std::invalid_argument);
  EXPECT_THROW(SinusoidalAvailability(0.5, 1.5, 10.0), std::invalid_argument);
  EXPECT_THROW(SinusoidalAvailability(0.9, 0.5, 10.0), std::invalid_argument);
  EXPECT_THROW(SinusoidalAvailability(0.2, 0.9, 0.0), std::invalid_argument);
}

TEST(RandomWalkAvailability, StaysWithinBandAndDeterministic) {
  RandomWalkAvailability a(0.3, 1.0, 10.0, 0.2, 1000.0, 42);
  RandomWalkAvailability b(0.3, 1.0, 10.0, 0.2, 1000.0, 42);
  for (double t = 0.0; t < 1500.0; t += 7.3) {
    const double m = a.multiplier(t);
    ASSERT_GE(m, 0.3);
    ASSERT_LE(m, 1.0);
    ASSERT_DOUBLE_EQ(m, b.multiplier(t));
  }
}

TEST(RandomWalkAvailability, DifferentSeedsDiffer) {
  RandomWalkAvailability a(0.3, 1.0, 10.0, 0.2, 1000.0, 1);
  RandomWalkAvailability b(0.3, 1.0, 10.0, 0.2, 1000.0, 2);
  int same = 0, total = 0;
  for (double t = 15.0; t < 1000.0; t += 10.0) {
    ++total;
    if (a.multiplier(t) == b.multiplier(t)) ++same;
  }
  EXPECT_LT(same, total / 2);
}

TEST(RandomWalkAvailability, HoldsLastValueBeyondHorizon) {
  RandomWalkAvailability a(0.3, 1.0, 10.0, 0.2, 100.0, 3);
  EXPECT_DOUBLE_EQ(a.multiplier(1e6), a.multiplier(1e7));
}

TEST(TwoStateAvailability, OnlyTwoLevels) {
  TwoStateAvailability a(0.4, 50.0, 30.0, 5000.0, 7);
  for (double t = 0.0; t < 6000.0; t += 11.0) {
    const double m = a.multiplier(t);
    ASSERT_TRUE(m == 0.4 || m == 1.0) << "level " << m << " at t=" << t;
  }
}

TEST(TwoStateAvailability, RejectsBadParameters) {
  EXPECT_THROW(TwoStateAvailability(0.0, 1.0, 1.0, 10.0, 1),
               std::invalid_argument);
  EXPECT_THROW(TwoStateAvailability(0.5, 0.0, 1.0, 10.0, 1),
               std::invalid_argument);
}

TEST(IntegrateExecTime, ConstantModelClosedForm) {
  FixedAvailability full(1.0);
  // 100 MFLOPs at 10 Mflop/s = 10 s.
  EXPECT_DOUBLE_EQ(integrate_exec_time(full, 10.0, 100.0, 0.0), 10.0);
  FixedAvailability half(0.5);
  EXPECT_DOUBLE_EQ(integrate_exec_time(half, 10.0, 100.0, 5.0), 20.0);
}

TEST(IntegrateExecTime, ZeroWorkIsInstant) {
  FixedAvailability full(1.0);
  EXPECT_DOUBLE_EQ(integrate_exec_time(full, 10.0, 0.0, 3.0), 0.0);
}

TEST(IntegrateExecTime, RejectsNonPositiveRate) {
  FixedAvailability full(1.0);
  EXPECT_THROW(integrate_exec_time(full, 0.0, 10.0, 0.0),
               std::invalid_argument);
}

TEST(IntegrateExecTime, SteppedIntegrationMatchesAnalyticForSine) {
  // Average availability of the sinusoid over a full period is its
  // midpoint, so long tasks should take ~ work / (rate * mid).
  SinusoidalAvailability a(0.5, 1.0, 100.0);
  const double rate = 10.0;
  const double work = 10000.0;  // many periods long
  const double t = integrate_exec_time(a, rate, work, 0.0, 0.25);
  const double expected = work / (rate * 0.75);
  EXPECT_NEAR(t, expected, 0.05 * expected);
}

TEST(IntegrateExecTime, TimeVaryingStartTimeMatters) {
  // Starting at the trough vs the crest of the sinusoid changes duration
  // for a short task.
  SinusoidalAvailability a(0.2, 1.0, 400.0);
  const double at_crest = integrate_exec_time(a, 10.0, 50.0, 100.0, 0.1);
  const double at_trough = integrate_exec_time(a, 10.0, 50.0, 300.0, 0.1);
  EXPECT_LT(at_crest, at_trough);
}

TEST(IntegrateExecTime, MonotoneInWork) {
  RandomWalkAvailability a(0.3, 1.0, 10.0, 0.2, 10000.0, 11);
  double prev = 0.0;
  for (double work : {10.0, 50.0, 200.0, 1000.0}) {
    const double t = integrate_exec_time(a, 20.0, work, 0.0, 0.5);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace gasched::sim
