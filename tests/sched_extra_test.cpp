// Tests for the additional Maheswaran et al. baselines: MET, KPB, and
// Sufferage.

#include "sched/extra_heuristics.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gasched::sched {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
  }
  return v;
}

std::deque<workload::Task> tasks_of_sizes(std::vector<double> sizes) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), sizes[i], 0.0});
  }
  return q;
}

TEST(Met, AlwaysPicksFastestProcessorEvenWhenLoaded) {
  auto met = make_met();
  util::Rng rng(1);
  auto q = tasks_of_sizes({100.0, 100.0, 100.0});
  // Proc 1 fastest but hugely loaded — MET ignores load by design.
  const auto a = met->invoke(make_view({10.0, 90.0}, {0.0, 1e9}), q, rng);
  EXPECT_EQ(a.per_proc[1].size(), 3u);
  EXPECT_TRUE(a.per_proc[0].empty());
}

TEST(Kpb, HundredPercentEqualsEarliestFinish) {
  auto kpb = make_kpb(100.0);
  auto ef = make_ef();
  util::Rng r1(2), r2(2);
  auto q1 = tasks_of_sizes({100, 50, 300, 20, 80});
  auto q2 = q1;
  const auto view = make_view({10.0, 40.0, 25.0});
  const auto a = kpb->invoke(view, q1, r1);
  const auto b = ef->invoke(view, q2, r2);
  EXPECT_EQ(a.per_proc, b.per_proc);
}

TEST(Kpb, TinyPercentDegeneratesToMet) {
  auto kpb = make_kpb(1.0);  // subset of 1 processor = fastest
  util::Rng rng(3);
  auto q = tasks_of_sizes({100.0, 100.0});
  const auto a = kpb->invoke(make_view({10.0, 90.0}, {0.0, 1e9}), q, rng);
  EXPECT_EQ(a.per_proc[1].size(), 2u);
}

TEST(Kpb, MidPercentBalancesWithinFastSubset) {
  auto kpb = make_kpb(50.0);  // 2 fastest of 4
  util::Rng rng(4);
  auto q = tasks_of_sizes(std::vector<double>(10, 100.0));
  const auto a = kpb->invoke(make_view({10.0, 20.0, 80.0, 90.0}), q, rng);
  // All tasks within {proc 2, proc 3}; both used.
  EXPECT_TRUE(a.per_proc[0].empty());
  EXPECT_TRUE(a.per_proc[1].empty());
  EXPECT_FALSE(a.per_proc[2].empty());
  EXPECT_FALSE(a.per_proc[3].empty());
}

TEST(Kpb, RejectsInvalidPercent) {
  EXPECT_THROW(KPercentBestRule(0.0), std::invalid_argument);
  EXPECT_THROW(KPercentBestRule(150.0), std::invalid_argument);
}

TEST(Sufferage, AssignsEveryTaskExactlyOnce) {
  auto suf = make_sufferage(100);
  util::Rng rng(5);
  auto q = tasks_of_sizes({10, 200, 40, 500, 90, 120, 77});
  const auto a = suf->invoke(make_view({10.0, 30.0, 55.0}), q, rng);
  std::set<workload::TaskId> seen;
  for (const auto& per : a.per_proc) {
    for (const auto id : per) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Sufferage, RespectsBatchSize) {
  auto suf = make_sufferage(3);
  util::Rng rng(6);
  auto q = tasks_of_sizes(std::vector<double>(10, 50.0));
  const auto a = suf->invoke(make_view({10.0, 20.0}), q, rng);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(q.size(), 7u);
}

TEST(Sufferage, PrioritisesTaskWithMostToLose) {
  // Two processors with very different speeds: the task that suffers most
  // from missing the fast processor is the large one, so it should get
  // the fast processor.
  auto suf = make_sufferage(10);
  util::Rng rng(7);
  auto q = tasks_of_sizes({1000.0, 10.0});
  const auto a = suf->invoke(make_view({10.0, 100.0}), q, rng);
  // Task 0 (large) must be on the fast processor 1.
  ASSERT_FALSE(a.per_proc[1].empty());
  EXPECT_EQ(a.per_proc[1][0], 0);
}

TEST(Sufferage, BalancesEqualTasks) {
  auto suf = make_sufferage(100);
  util::Rng rng(8);
  auto q = tasks_of_sizes(std::vector<double>(12, 100.0));
  const auto a = suf->invoke(make_view({10.0, 10.0, 10.0}), q, rng);
  for (const auto& per : a.per_proc) EXPECT_EQ(per.size(), 4u);
}

TEST(Sufferage, RejectsZeroBatch) {
  EXPECT_THROW(SufferagePolicy(0), std::invalid_argument);
}

TEST(ExtraFactories, Names) {
  EXPECT_EQ(make_met()->name(), "MET");
  EXPECT_EQ(make_kpb(20.0)->name(), "KPB20");
  EXPECT_EQ(make_sufferage()->name(), "SUF");
}

}  // namespace
}  // namespace gasched::sched
