// Tests for the PN and ZO genetic batch schedulers as scheduling policies.

#include "core/genetic_scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

namespace gasched::core {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {},
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
  }
  return v;
}

std::deque<workload::Task> make_queue(std::size_t n, util::Rng& rng,
                                      double lo = 10.0, double hi = 500.0) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < n; ++i) {
    q.push_back({static_cast<workload::TaskId>(i), rng.uniform(lo, hi), 0.0});
  }
  return q;
}

GeneticSchedulerConfig quick_config() {
  GeneticSchedulerConfig cfg;
  cfg.ga.max_generations = 60;
  cfg.ga.population = 12;
  return cfg;
}

TEST(GeneticScheduler, AssignsEveryConsumedTaskExactlyOnce) {
  auto pn = make_pn_scheduler(quick_config());
  util::Rng rng(1);
  auto queue = make_queue(80, rng);
  const auto view = make_view({10, 20, 30, 40});
  const auto a = pn->invoke(view, queue, rng);
  const std::size_t consumed = 80 - queue.size();
  EXPECT_EQ(a.total(), consumed);
  std::set<workload::TaskId> seen;
  for (const auto& per : a.per_proc) {
    for (const auto id : per) EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(GeneticScheduler, ConsumesFromFrontFCFS) {
  auto pn = make_pn_scheduler(quick_config());
  util::Rng rng(2);
  auto queue = make_queue(50, rng);
  const auto view = make_view({10, 20});
  const auto a = pn->invoke(view, queue, rng);
  // Remaining tasks must be the tail of the original queue.
  std::set<workload::TaskId> assigned;
  for (const auto& per : a.per_proc) {
    for (const auto id : per) assigned.insert(id);
  }
  for (const auto& t : queue) EXPECT_FALSE(assigned.contains(t.id));
  // Assigned ids must be a prefix of 0..49.
  const auto consumed = assigned.size();
  for (workload::TaskId id = 0; id < static_cast<workload::TaskId>(consumed);
       ++id) {
    EXPECT_TRUE(assigned.contains(id));
  }
}

TEST(GeneticScheduler, EmptyQueueYieldsEmptyAssignment) {
  auto pn = make_pn_scheduler(quick_config());
  util::Rng rng(3);
  std::deque<workload::Task> queue;
  const auto a = pn->invoke(make_view({10, 20}), queue, rng);
  EXPECT_EQ(a.total(), 0u);
}

TEST(GeneticScheduler, FixedBatchConsumesExactlyBatchSize) {
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 25;
  GeneticBatchScheduler sched(cfg, "T");
  util::Rng rng(4);
  auto queue = make_queue(100, rng);
  sched.invoke(make_view({10, 20, 30}), queue, rng);
  EXPECT_EQ(queue.size(), 75u);
}

TEST(GeneticScheduler, DynamicBatchGrowsWithDrainTime) {
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = true;
  cfg.min_batch = 1;
  GeneticBatchScheduler sched(cfg, "T");
  // Idle cluster: s = 0 ⇒ H = floor(sqrt(1)) = 1.
  EXPECT_EQ(sched.next_batch_size(make_view({10, 10})), 1u);
  // Heavily loaded cluster: s = min(δ) large ⇒ larger batch. The smoother
  // has now seen {0, s}, so use a fresh scheduler for the exact value.
  GeneticBatchScheduler fresh(cfg, "T");
  // pending 4000 MFLOPs at 10 Mflop/s on both procs ⇒ s = 400 s.
  // Γ = 400 (first observation) ⇒ H = floor(sqrt(401)) = 20.
  EXPECT_EQ(fresh.next_batch_size(make_view({10, 10}, {4000, 4000})), 20u);
}

TEST(GeneticScheduler, DynamicBatchRespectsBounds) {
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = true;
  cfg.min_batch = 5;
  cfg.max_batch = 12;
  GeneticBatchScheduler sched(cfg, "T");
  EXPECT_EQ(sched.next_batch_size(make_view({10})), 5u);  // clamped up
  GeneticBatchScheduler sched2(cfg, "T");
  EXPECT_EQ(sched2.next_batch_size(make_view({10}, {1e9})), 12u);  // down
}

TEST(GeneticScheduler, DefaultMinBatchIsProcessorCount) {
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = true;
  cfg.min_batch = 0;
  GeneticBatchScheduler sched(cfg, "T");
  EXPECT_EQ(sched.next_batch_size(make_view({10, 10, 10, 10})), 4u);
}

TEST(GeneticScheduler, ProducesBalancedLoadAcrossHeterogeneousProcs) {
  // Schedule many equal tasks on procs with rates 10/20/30/40: the GA
  // should give faster processors proportionally more work.
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 100;
  cfg.ga.max_generations = 150;
  GeneticBatchScheduler sched(cfg, "T");
  util::Rng rng(5);
  auto queue = make_queue(100, rng, 100.0, 100.0);  // constant 100 MFLOPs
  const auto view = make_view({10, 20, 30, 40});
  const auto a = sched.invoke(view, queue, rng);
  // Completion time per proc = count * 100 / rate; max/min ratio should be
  // far below the single-processor extreme.
  double worst = 0.0, best = 1e18;
  for (std::size_t j = 0; j < 4; ++j) {
    const double t =
        static_cast<double>(a.per_proc[j].size()) * 100.0 / view.procs[j].rate;
    worst = std::max(worst, t);
    best = std::min(best, t);
  }
  EXPECT_LT(worst / std::max(best, 1e-9), 2.5);
}

TEST(GeneticScheduler, PnAvoidsExpensiveLinksWhenCommDominates) {
  // Two equal-rate procs; link 1 is 100x more expensive. PN should place
  // the bulk of tasks on proc 0; ZO (comm-blind) should split evenly.
  util::Rng rng(6);
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 40;
  cfg.ga.max_generations = 200;
  auto pn = make_pn_scheduler(cfg);
  auto queue_pn = make_queue(40, rng, 50.0, 50.0);
  const auto view = make_view({10, 10}, {}, {0.5, 50.0});
  const auto a_pn = pn->invoke(view, queue_pn, rng);
  EXPECT_GT(a_pn.per_proc[0].size(), a_pn.per_proc[1].size());

  auto zo = make_zo_scheduler(40);
  util::Rng rng2(6);
  auto queue_zo = make_queue(40, rng2, 50.0, 50.0);
  const auto a_zo = zo->invoke(view, queue_zo, rng2);
  const auto diff =
      std::abs(static_cast<long>(a_zo.per_proc[0].size()) -
               static_cast<long>(a_zo.per_proc[1].size()));
  EXPECT_LE(diff, 8);  // near-even split
}

TEST(GeneticScheduler, FactoriesSetDocumentedFlags) {
  auto pn = make_pn_scheduler();
  EXPECT_EQ(pn->name(), "PN");
  EXPECT_TRUE(pn->config().use_comm_estimates);
  EXPECT_TRUE(pn->config().rebalance);
  EXPECT_TRUE(pn->config().dynamic_batch);
  auto zo = make_zo_scheduler(123);
  EXPECT_EQ(zo->name(), "ZO");
  EXPECT_FALSE(zo->config().use_comm_estimates);
  EXPECT_FALSE(zo->config().rebalance);
  EXPECT_FALSE(zo->config().dynamic_batch);
  EXPECT_EQ(zo->config().fixed_batch, 123u);
}

TEST(GeneticScheduler, DeterministicGivenSeed) {
  GeneticSchedulerConfig cfg = quick_config();
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 30;
  GeneticBatchScheduler s1(cfg, "T"), s2(cfg, "T");
  util::Rng r1(7), r2(7);
  auto q1 = make_queue(30, r1);
  util::Rng wr(7);
  auto q2 = make_queue(30, r2);
  const auto view = make_view({10, 20, 30});
  util::Rng g1(8), g2(8);
  const auto a = s1.invoke(view, q1, g1);
  const auto b = s2.invoke(view, q2, g2);
  EXPECT_EQ(a.per_proc, b.per_proc);
}

}  // namespace
}  // namespace gasched::core
