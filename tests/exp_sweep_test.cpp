// Tests for the declarative sweep engine: deterministic flattening,
// thread-count-independent results (byte-identical CSV), per-cell error
// capture, streaming sink order, the [sweep] INI surface, shard
// partitioning, and resume (a killed-and-truncated CSV continues to a
// byte-identical file; a JSONL-only run continues to the same row set).

#include "exp/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "exp/config_scenario.hpp"
#include "exp/registry.hpp"
#include "metrics/sink.hpp"
#include "util/config.hpp"

namespace gasched::exp {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.name = "sweep-test";
  s.cluster = paper_cluster(10.0, 6);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 500.0;
  s.workload.count = 60;
  s.seed = 20250401;
  s.replications = 3;
  return s;
}

SchedulerParams fast_params() {
  SchedulerParams o;
  o.set("batch_size", 30);
  o.set("max_generations", 10);
  o.set("population", 8);
  return o;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Erases every "sched_wall_seconds":{...} summary (the only
/// non-deterministic content of a JSONL row). The summary object is
/// flat, so the first '}' closes it.
std::string strip_wall_clock(std::string text) {
  const std::string key = "\"sched_wall_seconds\":{";
  for (std::size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos)) {
    std::size_t end = text.find('}', pos) + 1;
    if (end < text.size() && text[end] == ',') ++end;
    text.erase(pos, end - pos);
  }
  return text;
}

struct TempFile {
  std::filesystem::path path;
  explicit TempFile(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("gasched_sweep_" + name)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
};

TEST(SweepFlatten, RowMajorFirstAxisSlowest) {
  Sweep sweep("flatten");
  sweep.base(small_scenario());
  sweep.axis("procs", {4.0, 8.0},
             [](SweepCell& c, double v) {
               c.scenario.cluster.num_processors =
                   static_cast<std::size_t>(v);
             });
  sweep.schedulers({"EF", "RR", "MM"});
  const auto cells = sweep.flatten();
  ASSERT_EQ(cells.size(), 6u);
  ASSERT_EQ(sweep.cell_count(), 6u);
  EXPECT_EQ(sweep.axis_names(),
            (std::vector<std::string>{"procs", "scheduler"}));
  // procs varies slowest, scheduler fastest.
  EXPECT_EQ(cells[0].coord("procs"), "4");
  EXPECT_EQ(cells[0].scheduler, "EF");
  EXPECT_EQ(cells[1].scheduler, "RR");
  EXPECT_EQ(cells[2].scheduler, "MM");
  EXPECT_EQ(cells[3].coord("procs"), "8");
  EXPECT_EQ(cells[3].scheduler, "EF");
  EXPECT_EQ(cells[3].scenario.cluster.num_processors, 8u);
  EXPECT_EQ(cells[0].scenario.cluster.num_processors, 4u);
  EXPECT_DOUBLE_EQ(cells[5].coord_value("procs"), 8.0);
  EXPECT_EQ(cells[5].index, 5u);
}

TEST(SweepFlatten, SchedulerNamesResolveEagerly) {
  Sweep sweep("typo");
  EXPECT_THROW(sweep.schedulers({"NOPE"}), std::runtime_error);
  EXPECT_THROW(sweep.scheduler("NOPE"), std::runtime_error);
  // Case-insensitive resolution to canonical spelling.
  sweep.schedulers({"pn", "ef"});
  EXPECT_EQ(sweep.flatten()[0].scheduler, "PN");
}

TEST(SweepFlatten, DuplicateOrEmptyAxisRejected) {
  Sweep sweep("bad");
  sweep.axis("x", {1.0}, {});
  EXPECT_THROW(sweep.axis("x", {2.0}, {}), std::invalid_argument);
  EXPECT_THROW(sweep.axis("y", std::vector<Sweep::Value>{}),
               std::invalid_argument);
}

// The core determinism contract: the same grid, executed serially and on
// the pool, produces byte-identical CSV files.
TEST(SweepRun, CsvByteIdenticalAcrossThreadCounts) {
  TempFile serial_csv("serial.csv"), parallel_csv("parallel.csv");
  auto build = [&](bool parallel, const std::filesystem::path& path,
                   metrics::CsvSink& sink) {
    Sweep sweep("determinism");
    sweep.base(small_scenario());
    sweep.params(fast_params());
    sweep.axis("mean_comm_cost", {5.0, 20.0},
               [](SweepCell& c, double v) {
                 c.scenario.cluster.comm.mean_cost = v;
               });
    sweep.schedulers({"EF", "RR", "PN"});
    sweep.parallel(parallel);
    sweep.progress(false);
    sweep.add_sink(sink);
    return sweep.run();
  };
  metrics::CsvSink s1(serial_csv.path), s2(parallel_csv.path);
  const auto serial = build(false, serial_csv.path, s1);
  const auto parallel = build(true, parallel_csv.path, s2);

  ASSERT_EQ(serial.rows.size(), 6u);
  ASSERT_EQ(parallel.rows.size(), 6u);
  EXPECT_EQ(serial.failed, 0u);
  EXPECT_EQ(parallel.failed, 0u);
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.rows[i].cell.makespan.mean,
                     parallel.rows[i].cell.makespan.mean)
        << "row " << i;
  }
  const std::string a = read_file(serial_csv.path);
  const std::string b = read_file(parallel_csv.path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "CSV must not depend on the thread count";
}

TEST(SweepRun, PerCellErrorCaptureKeepsGridAlive) {
  Sweep sweep("errors");
  sweep.base(small_scenario());
  sweep.axis("i", {0.0, 1.0, 2.0, 3.0}, {});
  sweep.progress(false);
  sweep.runner([](const SweepCell& cell, bool) -> CellOutcome {
    if (cell.index == 1) throw std::runtime_error("cell exploded");
    CellOutcome out;
    out.summary.scheduler = "ok";
    return out;
  });
  const auto result = sweep.run();
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_FALSE(result.rows[1].ok());
  EXPECT_EQ(result.rows[1].error, "cell exploded");
  EXPECT_TRUE(result.rows[0].ok());
  EXPECT_TRUE(result.rows[3].ok());
}

TEST(SweepRun, UnknownSchedulerIsACellErrorNotACrash) {
  Sweep sweep("no-scheduler");
  sweep.base(small_scenario());
  sweep.axis("i", {0.0, 1.0}, {});
  sweep.progress(false);
  // No scheduler declared and no custom runner: the default runner
  // reports per-cell errors instead of aborting the grid.
  const auto result = sweep.run();
  EXPECT_EQ(result.failed, 2u);
  EXPECT_NE(result.rows[0].error.find("scheduler"), std::string::npos);
}

// Sinks observe rows in job-list order even when cells complete out of
// order, and the streaming CSV keeps completed prefixes on disk.
TEST(SweepRun, SinksReceiveRowsInJobOrder) {
  struct OrderSink final : metrics::ResultSink {
    std::vector<std::size_t> indices;
    void row(const metrics::SweepRow& r) override {
      indices.push_back(r.index);
    }
  } order;
  Sweep sweep("order");
  sweep.base(small_scenario());
  sweep.axis("i", {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, {});
  sweep.progress(false);
  sweep.add_sink(order);
  sweep.runner([](const SweepCell& cell, bool) {
    // Reverse the natural completion order a little.
    if (cell.index % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return CellOutcome{};
  });
  sweep.run();
  ASSERT_EQ(order.indices.size(), 8u);
  for (std::size_t i = 0; i < order.indices.size(); ++i) {
    EXPECT_EQ(order.indices[i], i);
  }
}

TEST(SweepRun, ExtrasFlowToCsvAndResult) {
  TempFile csv("extras.csv");
  metrics::CsvSink sink(csv.path);
  Sweep sweep("extras");
  sweep.base(small_scenario());
  sweep.axis("x", {1.0, 2.0}, {});
  sweep.extra_columns({"doubled"});
  sweep.progress(false);
  sweep.add_sink(sink);
  sweep.runner([](const SweepCell& cell, bool) {
    CellOutcome out;
    out.extras = {{"doubled", 2.0 * cell.coord_value("x")}};
    return out;
  });
  const auto result = sweep.run();
  EXPECT_DOUBLE_EQ(result.rows[1].extra("doubled"), 4.0);
  const std::string text = read_file(csv.path);
  EXPECT_NE(text.find("doubled"), std::string::npos);
  EXPECT_NE(text.find(",4,"), std::string::npos);
}

TEST(SweepRun, WorkloadAxisPreservesCount) {
  Sweep sweep("workloads");
  sweep.base(small_scenario());
  WorkloadSpec uniform;
  uniform.dist = "uniform";
  WorkloadSpec pareto;
  pareto.dist = "pareto";
  sweep.workloads({{"uniform", uniform}, {"pareto", pareto}});
  const auto cells = sweep.flatten();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1].scenario.workload.dist, "pareto");
  EXPECT_EQ(cells[1].scenario.workload.count, 60u);
  EXPECT_EQ(cells[1].coord("workload"), "pareto");
}

// Sharding partitions the deterministic job list: the shards' executed
// sets are disjoint and their union is the full grid.
TEST(SweepShard, PartitionsJobListDisjointly) {
  auto build = [](Sweep& sweep) {
    sweep.base(small_scenario());
    sweep.axis("i", {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, {});
    sweep.progress(false);
    sweep.runner([](const SweepCell&, bool) { return CellOutcome{}; });
  };
  std::set<std::size_t> executed;
  for (std::size_t shard = 0; shard < 3; ++shard) {
    Sweep sweep("shard");
    build(sweep);
    sweep.shard(shard, 3);
    const auto result = sweep.run();
    ASSERT_EQ(result.rows.size(), 8u);
    for (const auto& row : result.rows) {
      if (row.skipped) continue;
      EXPECT_TRUE(executed.insert(row.index).second)
          << "cell " << row.index << " ran in two shards";
      EXPECT_EQ(row.index % 3, shard);
    }
    // Cells i with i % 3 == shard: 3 for shards 0 and 1, 2 for shard 2.
    const std::size_t expected = shard < 2 ? 3u : 2u;
    EXPECT_EQ(result.rows.size() - result.skipped, expected);
  }
  EXPECT_EQ(executed.size(), 8u);
  Sweep bad("bad");
  EXPECT_THROW(bad.shard(2, 2), std::invalid_argument);
  EXPECT_THROW(bad.shard(0, 0), std::invalid_argument);
}

// Skipped (off-shard) rows are never delivered to sinks, and the rows a
// shard does deliver keep job-list order.
TEST(SweepShard, SinksSeeOnlyOwnedRowsInOrder) {
  struct OrderSink final : metrics::ResultSink {
    std::vector<std::size_t> indices;
    void row(const metrics::SweepRow& r) override {
      indices.push_back(r.index);
    }
  } order;
  Sweep sweep("shard-sink");
  sweep.base(small_scenario());
  sweep.axis("i", {0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0}, {});
  sweep.progress(false);
  sweep.shard(1, 2);
  sweep.add_sink(order);
  sweep.runner([](const SweepCell&, bool) { return CellOutcome{}; });
  const auto result = sweep.run();
  EXPECT_EQ(order.indices, (std::vector<std::size_t>{1, 3, 5}));
  EXPECT_EQ(result.skipped, 4u);
}

// The resume contract from the ISSUE: kill a run part-way (here:
// truncate its CSV mid-row), resume, and the final file is
// byte-identical to an uninterrupted run.
TEST(SweepResume, TruncatedCsvResumesToByteIdenticalFile) {
  TempFile full_csv("resume_full.csv"), killed_csv("resume_killed.csv");
  auto build = [&](Sweep& sweep) {
    sweep.base(small_scenario());
    sweep.params(fast_params());
    sweep.axis("mean_comm_cost", {5.0, 20.0},
               [](SweepCell& c, double v) {
                 c.scenario.cluster.comm.mean_cost = v;
               });
    sweep.schedulers({"EF", "RR", "PN"});
    sweep.progress(false);
  };

  {
    metrics::CsvSink sink(full_csv.path);
    Sweep sweep("resume");
    build(sweep);
    sweep.add_sink(sink);
    ASSERT_EQ(sweep.run().failed, 0u);
  }
  const std::string complete = read_file(full_csv.path);
  ASSERT_FALSE(complete.empty());

  // Simulate the kill: keep the header + 3 complete rows + a torn 4th.
  std::size_t nl = 0, offset = 0;
  for (std::size_t i = 0; i < complete.size(); ++i) {
    if (complete[i] == '\n' && ++nl == 4) {
      offset = i + 1;
      break;
    }
  }
  ASSERT_GT(offset, 0u);
  {
    std::ofstream out(killed_csv.path, std::ios::binary | std::ios::trunc);
    out << complete.substr(0, offset + 7);  // 7 bytes of the torn row
  }

  metrics::CsvSink sink(killed_csv.path, metrics::SinkMode::kResume);
  Sweep sweep("resume");
  build(sweep);
  sweep.add_sink(sink);
  const auto result = sweep.run();
  EXPECT_EQ(result.skipped, 3u);  // the three complete data rows
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(read_file(killed_csv.path), complete)
      << "resumed CSV must be byte-identical to an uninterrupted run";
}

// Resuming an already-complete file executes nothing and changes no
// bytes.
TEST(SweepResume, CompleteFileSkipsEveryCell) {
  TempFile csv("resume_done.csv");
  auto build = [&](Sweep& sweep) {
    sweep.base(small_scenario());
    sweep.axis("i", {0.0, 1.0, 2.0}, {});
    sweep.progress(false);
    sweep.runner([](const SweepCell&, bool) { return CellOutcome{}; });
  };
  {
    metrics::CsvSink sink(csv.path);
    Sweep sweep("done");
    build(sweep);
    sweep.add_sink(sink);
    sweep.run();
  }
  const std::string before = read_file(csv.path);
  metrics::CsvSink sink(csv.path, metrics::SinkMode::kResume);
  Sweep sweep("done");
  build(sweep);
  sweep.add_sink(sink);
  const auto result = sweep.run();
  EXPECT_EQ(result.skipped, 3u);
  EXPECT_EQ(read_file(csv.path), before);
}

// A resumable sink only skips cells present in EVERY non-passive sink:
// attaching a fresh JSONL sink to a resumed CSV re-runs everything (the
// CSV drops the duplicate rows itself and keeps its bytes).
TEST(SweepResume, FreshSecondSinkForcesFullExecution) {
  TempFile csv("resume_two.csv"), jsonl("resume_two.jsonl");
  auto build = [&](Sweep& sweep) {
    sweep.base(small_scenario());
    sweep.axis("i", {0.0, 1.0, 2.0, 3.0}, {});
    sweep.progress(false);
    sweep.runner([](const SweepCell&, bool) { return CellOutcome{}; });
  };
  {
    metrics::CsvSink sink(csv.path);
    Sweep sweep("two-sinks");
    build(sweep);
    sweep.add_sink(sink);
    sweep.run();
  }
  const std::string before = read_file(csv.path);

  metrics::CsvSink resumed(csv.path, metrics::SinkMode::kResume);
  metrics::JsonlSink fresh(jsonl.path);  // kTruncate: holds nothing
  Sweep sweep("two-sinks");
  build(sweep);
  sweep.add_sink(resumed).add_sink(fresh);
  const auto result = sweep.run();
  EXPECT_EQ(result.skipped, 0u) << "fresh sink must force re-execution";
  EXPECT_EQ(read_file(csv.path), before) << "CSV drops duplicates";
  std::ifstream in(jsonl.path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) lines += line.empty() ? 0 : 1;
  EXPECT_EQ(lines, 4u) << "fresh JSONL receives every row";
}

// Failed cells are not sealed into a resumed file: the scan stops its
// valid prefix at the first error row, so the resume retries the failed
// cell (and everything after it) instead of reporting success over a
// CSV that permanently contains the failure.
TEST(SweepResume, RetriesFailedCellsInsteadOfSkippingThem) {
  TempFile csv("resume_retry.csv");
  auto build = [&](Sweep& sweep, bool fail_cell_1) {
    sweep.base(small_scenario());
    sweep.axis("i", {0.0, 1.0, 2.0}, {});
    sweep.progress(false);
    sweep.runner([fail_cell_1](const SweepCell& cell, bool) -> CellOutcome {
      if (fail_cell_1 && cell.index == 1) {
        throw std::runtime_error("transient\nfailure");  // multi-line text
      }
      return CellOutcome{};
    });
  };
  {
    metrics::CsvSink sink(csv.path);
    Sweep sweep("retry");
    build(sweep, /*fail_cell_1=*/true);
    sweep.add_sink(sink);
    EXPECT_EQ(sweep.run().failed, 1u);
  }
  // The error text is flattened to one physical line (the invariant the
  // resume scanner and shard merger read by).
  EXPECT_NE(read_file(csv.path).find("transient failure"),
            std::string::npos);

  metrics::CsvSink sink(csv.path, metrics::SinkMode::kResume);
  Sweep sweep("retry");
  build(sweep, /*fail_cell_1=*/false);  // the failure was transient
  sweep.add_sink(sink);
  const auto result = sweep.run();
  EXPECT_EQ(result.skipped, 1u) << "only the pre-failure prefix skips";
  EXPECT_EQ(result.failed, 0u);
  const std::string text = read_file(csv.path);
  EXPECT_EQ(text.find("transient"), std::string::npos)
      << "the repaired file must not retain the old error row";
  // Header + the three data rows, all present exactly once.
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);
}

// A resume against a file with a different schema must fail loudly, not
// silently mix two experiments in one file.
TEST(SweepResume, SchemaMismatchThrows) {
  TempFile csv("resume_schema.csv");
  {
    std::ofstream out(csv.path);
    out << "index,other_axis,scheduler,foo\n0,1,EF,2\n";
  }
  metrics::CsvSink sink(csv.path, metrics::SinkMode::kResume);
  Sweep sweep("schema");
  sweep.base(small_scenario());
  sweep.axis("i", {0.0, 1.0}, {});
  sweep.progress(false);
  sweep.add_sink(sink);
  sweep.runner([](const SweepCell&, bool) { return CellOutcome{}; });
  EXPECT_THROW(sweep.run(), std::runtime_error);
}

// The JSONL-only path: a run writing only a JSONL sink (a bench invoked
// with --json but no --csv) must survive a kill too. JSONL rows carry
// wall-clock numbers, so the resumed file is not byte-identical to an
// uninterrupted run — but the kept prefix is preserved byte-for-byte
// and the whole file matches once the wall-clock summaries are
// stripped.
TEST(SweepResume, JsonlOnlySinkResumesTornFile) {
  TempFile full("resume_jsonl_full.jsonl");
  TempFile killed("resume_jsonl_killed.jsonl");
  auto build = [&](Sweep& sweep) {
    sweep.base(small_scenario());
    sweep.params(fast_params());
    sweep.axis("mean_comm_cost", {5.0, 20.0},
               [](SweepCell& c, double v) {
                 c.scenario.cluster.comm.mean_cost = v;
               });
    sweep.schedulers({"EF", "RR", "PN"});
    sweep.progress(false);
  };

  {
    metrics::JsonlSink sink(full.path);
    Sweep sweep("resume-jsonl");
    build(sweep);
    sweep.add_sink(sink);
    ASSERT_EQ(sweep.run().failed, 0u);
  }
  const std::string complete = read_file(full.path);
  ASSERT_FALSE(complete.empty());

  // Simulate the kill: keep 3 complete rows plus a torn 4th.
  std::size_t nl = 0, offset = 0;
  for (std::size_t i = 0; i < complete.size(); ++i) {
    if (complete[i] == '\n' && ++nl == 3) {
      offset = i + 1;
      break;
    }
  }
  ASSERT_GT(offset, 0u);
  {
    std::ofstream out(killed.path, std::ios::binary | std::ios::trunc);
    out << complete.substr(0, offset + 9);  // 9 bytes of the torn row
  }

  metrics::JsonlSink sink(killed.path, metrics::SinkMode::kResume);
  Sweep sweep("resume-jsonl");
  build(sweep);
  sweep.add_sink(sink);
  const auto result = sweep.run();
  EXPECT_EQ(result.skipped, 3u);  // the three complete rows
  EXPECT_EQ(result.failed, 0u);

  const std::string resumed = read_file(killed.path);
  EXPECT_EQ(resumed.substr(0, offset), complete.substr(0, offset))
      << "the kept prefix must be preserved byte-for-byte";
  EXPECT_EQ(strip_wall_clock(resumed), strip_wall_clock(complete))
      << "resumed JSONL must match an uninterrupted run everywhere "
         "except the wall-clock summaries";
}

TEST(SchedulerSelector, TagsNamesAllAndDedup) {
  const auto paper = expand_scheduler_selector("paper");
  EXPECT_EQ(paper, all_schedulers());
  const auto all = expand_scheduler_selector("all");
  EXPECT_EQ(all, SchedulerRegistry::instance().names());
  // Mixed tag + name, case-insensitive, deduplicated.
  const auto mixed = expand_scheduler_selector("metaheuristic,rr,PN");
  const auto meta = metaheuristic_schedulers();
  ASSERT_EQ(mixed.size(), meta.size() + 1);
  EXPECT_EQ(mixed.back(), "RR");
  // Empty selector = the paper's seven.
  EXPECT_EQ(expand_scheduler_selector(""), all_schedulers());
  EXPECT_THROW(expand_scheduler_selector("nope"), std::runtime_error);
}

TEST(SweepConfig, SweepSectionBuildsGrid) {
  const util::Config cfg = util::Config::parse(R"(
[scenario]
name = grid
seed = 7
replications = 2

[workload]
dist = uniform
param_a = 10
param_b = 200
count = 40

[sweep]
schedulers = EF,RR
procs = 4, 8
population = 10, 20
)");
  Sweep sweep = sweep_from_config(cfg);
  EXPECT_EQ(sweep.name(), "grid");
  // 2 procs x 2 population x 2 schedulers; scheduler axis innermost.
  EXPECT_EQ(sweep.cell_count(), 8u);
  const auto axes = sweep.axis_names();
  ASSERT_EQ(axes.size(), 3u);
  EXPECT_EQ(axes.back(), "scheduler");
  const auto cells = sweep.flatten();
  EXPECT_EQ(cells[0].scheduler, "EF");
  EXPECT_EQ(cells[1].scheduler, "RR");
  // procs is a scenario axis; population falls through to [scheduler]
  // params.
  EXPECT_EQ(cells[0].scenario.cluster.num_processors, 4u);
  EXPECT_EQ(cells.back().scenario.cluster.num_processors, 8u);
  EXPECT_EQ(cells[0].params.get_size("population", 0), 10u);
  EXPECT_EQ(cells.back().params.get_size("population", 0), 20u);
}

TEST(SweepConfig, OverrideReplacesConfigSchedulers) {
  const util::Config cfg = util::Config::parse(R"(
[sweep]
schedulers = EF
)");
  Sweep sweep = sweep_from_config(cfg, "MM,MX");
  const auto cells = sweep.flatten();
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].scheduler, "MM");
  EXPECT_EQ(cells[1].scheduler, "MX");
}

TEST(SweepConfig, NonNumericAxisValueThrows) {
  const util::Config cfg = util::Config::parse(R"(
[sweep]
procs = 4, banana
)");
  EXPECT_THROW(sweep_from_config(cfg), std::runtime_error);
}

// End-to-end: a config-driven grid actually runs and streams JSONL.
TEST(SweepConfig, ConfigGridRunsEndToEnd) {
  TempFile jsonl("grid.jsonl");
  const util::Config cfg = util::Config::parse(R"(
[scenario]
replications = 2

[workload]
dist = uniform
param_a = 10
param_b = 200
count = 40

[cluster]
processors = 5

[scheduler]
max_generations = 8
population = 8
batch_size = 20

[sweep]
schedulers = EF,PN
mean_comm_cost = 2, 10
)");
  Sweep sweep = sweep_from_config(cfg);
  metrics::JsonlSink sink(jsonl.path);
  sweep.add_sink(sink).progress(false);
  const auto result = sweep.run();
  EXPECT_EQ(result.failed, 0u);
  ASSERT_EQ(result.rows.size(), 4u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.cell.replications, 2u);
    EXPECT_GT(row.cell.makespan.mean, 0.0);
  }
  // JSONL: one object per row.
  std::ifstream in(jsonl.path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 4u);
}

}  // namespace
}  // namespace gasched::exp
