// Tests for the OLB (opportunistic load balancing) and Duplex baselines.

#include <gtest/gtest.h>

#include <set>

#include "sched/extra_heuristics.hpp"

namespace gasched::sched {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
  }
  return v;
}

std::deque<workload::Task> tasks_of_sizes(const std::vector<double>& sizes) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), sizes[i], 0.0});
  }
  return q;
}

// ---------------------------------------------------------------- OLB ----

TEST(Olb, PicksEarliestAvailableProcessor) {
  auto olb = make_olb();
  util::Rng rng(1);
  auto q = tasks_of_sizes({100.0});
  // Availability: 1000/10 = 100 s, 500/50 = 10 s, 0/5 = 0 s.
  const auto a =
      olb->invoke(make_view({10.0, 50.0, 5.0}, {1000.0, 500.0, 0.0}), q, rng);
  EXPECT_EQ(a.per_proc[2].size(), 1u);
}

TEST(Olb, IsRateAwareUnlikeLightestLoaded) {
  // Proc 0 has less pending work in MFLOPs but drains slower: LL would
  // pick proc 0; OLB must pick proc 1 (100/1 = 100 s vs 900/100 = 9 s).
  auto olb = make_olb();
  util::Rng rng(2);
  auto q = tasks_of_sizes({50.0});
  const auto a = olb->invoke(make_view({1.0, 100.0}, {100.0, 900.0}), q, rng);
  EXPECT_EQ(a.per_proc[1].size(), 1u);
}

TEST(Olb, IgnoresTaskSize) {
  // The chosen processor must not depend on the task's own cost: a huge
  // task still goes to the earliest-available (here the slow, idle one).
  auto olb = make_olb();
  util::Rng rng(3);
  auto q = tasks_of_sizes({1e6});
  const auto a = olb->invoke(make_view({1.0, 100.0}, {0.0, 10.0}), q, rng);
  EXPECT_EQ(a.per_proc[0].size(), 1u);
}

TEST(Olb, SpreadsEqualTasksAcrossIdleProcessors) {
  auto olb = make_olb();
  util::Rng rng(4);
  auto q = tasks_of_sizes({100.0, 100.0, 100.0, 100.0});
  const auto a = olb->invoke(make_view({10.0, 10.0, 10.0, 10.0}), q, rng);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(a.per_proc[j].size(), 1u) << "proc " << j;
  }
}

// ------------------------------------------------------------- Duplex ----

TEST(Duplex, RejectsZeroBatch) {
  EXPECT_THROW(DuplexPolicy{0}, std::invalid_argument);
}

TEST(Duplex, ConsumesBatchesFcfs) {
  auto dup = make_duplex(3);
  util::Rng rng(5);
  auto q = tasks_of_sizes({10, 20, 30, 40, 50});
  const auto a = dup->invoke(make_view({10.0, 10.0}), q, rng);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(q.size(), 2u);
  std::set<workload::TaskId> ids;
  for (const auto& queue : a.per_proc) ids.insert(queue.begin(), queue.end());
  EXPECT_EQ(ids, (std::set<workload::TaskId>{0, 1, 2}));
}

/// Estimated makespan helper for comparing Duplex with MM and MX.
double est_makespan(const sim::BatchAssignment& a, const sim::SystemView& view,
                    const std::vector<double>& sizes) {
  double ms = 0.0;
  for (std::size_t j = 0; j < view.size(); ++j) {
    double load = view.procs[j].pending_mflops;
    for (const auto id : a.per_proc[j]) {
      load += sizes[static_cast<std::size_t>(id)];
    }
    ms = std::max(ms, load / view.procs[j].rate);
  }
  return ms;
}

TEST(Duplex, NeverWorseThanEitherMinMinOrMaxMin) {
  const std::vector<double> sizes{512, 37, 1024, 240, 777, 64,
                                  350, 128, 905, 18,  443, 610};
  const auto view = make_view({7.0, 13.0, 29.0, 61.0}, {300.0, 0.0, 150.0, 0.0});
  util::Rng rng(6);

  auto qd = tasks_of_sizes(sizes);
  const auto dup = make_duplex(sizes.size())->invoke(view, qd, rng);
  auto qm = tasks_of_sizes(sizes);
  const auto mm = make_mm(sizes.size())->invoke(view, qm, rng);
  auto qx = tasks_of_sizes(sizes);
  const auto mx = make_mx(sizes.size())->invoke(view, qx, rng);

  const double d = est_makespan(dup, view, sizes);
  EXPECT_LE(d, est_makespan(mm, view, sizes) + 1e-9);
  EXPECT_LE(d, est_makespan(mx, view, sizes) + 1e-9);
}

TEST(Duplex, EmptyQueueYieldsEmptyAssignment) {
  auto dup = make_duplex(10);
  util::Rng rng(7);
  std::deque<workload::Task> q;
  const auto a = dup->invoke(make_view({10.0, 20.0}), q, rng);
  EXPECT_EQ(a.total(), 0u);
}

}  // namespace
}  // namespace gasched::sched
