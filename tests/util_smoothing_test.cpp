// Tests for the paper's Γ smoothing function (§3.6):
// Γ_i = Γ_{i-1} + ν(a_i − Γ_{i-1}), Γ_0 = a_1.

#include "util/smoothing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gasched::util {
namespace {

TEST(Smoother, FirstObservationInitialisesGamma) {
  Smoother s(0.5);
  EXPECT_FALSE(s.primed());
  EXPECT_DOUBLE_EQ(s.observe(7.0), 7.0);
  EXPECT_TRUE(s.primed());
  EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Smoother, RecurrenceMatchesPaperDefinition) {
  Smoother s(0.25);
  s.observe(10.0);
  // Γ_1 = 10 + 0.25 (2 − 10) = 8
  EXPECT_DOUBLE_EQ(s.observe(2.0), 8.0);
  // Γ_2 = 8 + 0.25 (16 − 8) = 10
  EXPECT_DOUBLE_EQ(s.observe(16.0), 10.0);
}

TEST(Smoother, NuZeroFreezesFirstValue) {
  Smoother s(0.0);
  s.observe(5.0);
  for (double v : {100.0, -3.0, 42.0}) s.observe(v);
  EXPECT_DOUBLE_EQ(s.value(), 5.0);
}

TEST(Smoother, NuOneTracksLatestValue) {
  Smoother s(1.0);
  s.observe(5.0);
  EXPECT_DOUBLE_EQ(s.observe(11.0), 11.0);
  EXPECT_DOUBLE_EQ(s.observe(-2.0), -2.0);
}

TEST(Smoother, NuIsClampedToUnitInterval) {
  EXPECT_DOUBLE_EQ(Smoother(-3.0).nu(), 0.0);
  EXPECT_DOUBLE_EQ(Smoother(9.0).nu(), 1.0);
}

TEST(Smoother, ValueOrReturnsFallbackUntilPrimed) {
  Smoother s(0.5);
  EXPECT_DOUBLE_EQ(s.value_or(123.0), 123.0);
  s.observe(1.0);
  EXPECT_DOUBLE_EQ(s.value_or(123.0), 1.0);
}

TEST(Smoother, ConvergesToConstantInput) {
  Smoother s(0.3);
  for (int i = 0; i < 200; ++i) s.observe(42.0);
  EXPECT_NEAR(s.value(), 42.0, 1e-9);
}

TEST(Smoother, ConvergesTowardMeanOfAlternatingInput) {
  Smoother s(0.1);
  for (int i = 0; i < 10000; ++i) s.observe(i % 2 == 0 ? 0.0 : 10.0);
  EXPECT_NEAR(s.value(), 5.0, 1.0);
}

TEST(Smoother, StaysWithinObservedRange) {
  // Γ is a convex combination, so it can never escape [min, max] of inputs.
  Smoother s(0.7);
  const std::vector<double> vals{3.0, 9.0, 4.5, 8.2, 3.3, 6.6};
  for (double v : vals) {
    s.observe(v);
    EXPECT_GE(s.value(), 3.0);
    EXPECT_LE(s.value(), 9.0);
  }
}

TEST(Smoother, ResetClearsState) {
  Smoother s(0.5);
  s.observe(10.0);
  s.reset();
  EXPECT_FALSE(s.primed());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.observe(3.0), 3.0);
}

TEST(Smoother, CountTracksObservations) {
  Smoother s(0.5);
  for (int i = 1; i <= 10; ++i) {
    s.observe(static_cast<double>(i));
    EXPECT_EQ(s.count(), static_cast<std::size_t>(i));
  }
}

class SmootherNuSweep : public ::testing::TestWithParam<double> {};

TEST_P(SmootherNuSweep, HigherNuTracksStepChangeFaster) {
  const double nu = GetParam();
  Smoother s(nu);
  s.observe(0.0);
  s.observe(1.0);  // step input
  // After one step the response equals ν exactly.
  EXPECT_NEAR(s.value(), nu, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(NuGrid, SmootherNuSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

}  // namespace
}  // namespace gasched::util
