// Tests for CSV round-tripping, quoting, and numeric formatting.

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace gasched::util {
namespace {

std::filesystem::path temp_file(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("gasched_csv_" + name);
}

TEST(Csv, WriteAndReadSimpleRows) {
  const auto path = temp_file("simple.csv");
  {
    CsvWriter w(path);
    w.row({"a", "b", "c"});
    w.row({"1", "2", "3"});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
  std::filesystem::remove(path);
}

TEST(Csv, QuotesCellsWithCommas) {
  const auto path = temp_file("quotes.csv");
  {
    CsvWriter w(path);
    w.row({"hello, world", "plain"});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "hello, world");
  EXPECT_EQ(rows[0][1], "plain");
  std::filesystem::remove(path);
}

TEST(Csv, EscapesEmbeddedQuotes) {
  const auto path = temp_file("escq.csv");
  {
    CsvWriter w(path);
    w.row({"she said \"hi\"", "x"});
  }
  const auto rows = read_csv(path);
  EXPECT_EQ(rows[0][0], "she said \"hi\"");
  std::filesystem::remove(path);
}

TEST(Csv, NumericRowRoundTrips) {
  const auto path = temp_file("num.csv");
  {
    CsvWriter w(path);
    w.row_numeric({1.5, -2.25, 3e10, 0.0});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows[0].size(), 4u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), 1.5);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][1]), -2.25);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][2]), 3e10);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][3]), 0.0);
  std::filesystem::remove(path);
}

TEST(Csv, ParseLineHandlesQuotedCommasAndEscapes) {
  const auto cells = parse_csv_line(R"(a,"b,c","d""e",f)");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b,c");
  EXPECT_EQ(cells[2], "d\"e");
  EXPECT_EQ(cells[3], "f");
}

TEST(Csv, ParseLineEmptyCells) {
  const auto cells = parse_csv_line(",,x,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "");
  EXPECT_EQ(cells[1], "");
  EXPECT_EQ(cells[2], "x");
  EXPECT_EQ(cells[3], "");
}

TEST(Csv, ParseLineStripsCarriageReturn) {
  const auto cells = parse_csv_line("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(Csv, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/gasched/file.csv"), std::runtime_error);
}

TEST(Csv, WriterCreatesParentDirectories) {
  const auto dir = std::filesystem::temp_directory_path() / "gasched_csv_dir";
  const auto path = dir / "nested" / "out.csv";
  std::filesystem::remove_all(dir);
  {
    CsvWriter w(path);
    w.row({"x"});
  }
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove_all(dir);
}

TEST(Csv, FormatDoubleCompact) {
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_NEAR(std::stod(format_double(1.0 / 3.0)), 1.0 / 3.0, 1e-11);
}

}  // namespace
}  // namespace gasched::util
