// Miniature versions of the paper's figures run as assertions: the
// qualitative shapes the reproduction must preserve, at a scale small
// enough for CI. The bench binaries produce the full tables.

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "util/stats.hpp"

namespace gasched::exp {
namespace {

SchedulerOptions opts() {
  SchedulerOptions o;
  o.batch_size = 60;
  o.max_generations = 80;
  o.population = 14;
  return o;
}

Scenario scenario(DistKind kind, double a, double b, double comm,
                  std::size_t tasks = 300, std::size_t procs = 12) {
  Scenario s;
  s.name = "shape";
  s.cluster = paper_cluster(comm, procs);
  s.workload.kind = kind;
  s.workload.param_a = a;
  s.workload.param_b = b;
  s.workload.count = tasks;
  s.seed = 2025;
  s.replications = 3;
  return s;
}

double mean_eff(const Scenario& s, SchedulerKind k) {
  double sum = 0.0;
  const auto runs = run_replications(s, k, opts());
  for (const auto& r : runs) sum += r.efficiency();
  return sum / static_cast<double>(runs.size());
}

double mean_ms(const Scenario& s, SchedulerKind k) {
  double sum = 0.0;
  const auto runs = run_replications(s, k, opts());
  for (const auto& r : runs) sum += r.makespan;
  return sum / static_cast<double>(runs.size());
}

// Fig 5 shape: PN's efficiency beats the load-blind immediate schedulers
// on normal workloads with significant communication costs.
TEST(FigureShapes, Fig5PnBeatsLoadBlindSchedulers) {
  const auto s = scenario(DistKind::kNormal, 1000.0, 9e5, 20.0);
  const double pn = mean_eff(s, SchedulerKind::kPN);
  EXPECT_GT(pn, mean_eff(s, SchedulerKind::kRR));
  EXPECT_GT(pn, mean_eff(s, SchedulerKind::kLL));
}

// Fig 5 shape: every scheduler's efficiency rises as communication gets
// cheaper.
TEST(FigureShapes, Fig5EfficiencyRisesWithCheaperComm) {
  const auto dear = scenario(DistKind::kNormal, 1000.0, 9e5, 60.0);
  const auto cheap = scenario(DistKind::kNormal, 1000.0, 9e5, 8.0);
  for (const auto kind :
       {SchedulerKind::kPN, SchedulerKind::kEF, SchedulerKind::kMM}) {
    EXPECT_GT(mean_eff(cheap, kind), mean_eff(dear, kind))
        << scheduler_name(kind);
  }
}

// Fig 6 shape: PN's makespan beats RR and LL on the normal workload.
TEST(FigureShapes, Fig6PnMakespanBeatsSimpleSchedulers) {
  const auto s = scenario(DistKind::kNormal, 1000.0, 9e5, 20.0);
  const double pn = mean_ms(s, SchedulerKind::kPN);
  EXPECT_LT(pn, mean_ms(s, SchedulerKind::kRR));
  EXPECT_LT(pn, mean_ms(s, SchedulerKind::kLL));
}

// Figs 8/9 shape: widening the task-size range accentuates the spread
// between schedulers.
TEST(FigureShapes, Fig8Vs9WiderRangeAccentuatesDifferences) {
  const auto narrow = scenario(DistKind::kUniform, 10.0, 100.0, 5.0);
  const auto wide = scenario(DistKind::kUniform, 10.0, 10000.0, 5.0);
  auto spread = [&](const Scenario& s) {
    std::vector<double> ms;
    for (const auto kind : all_schedulers()) {
      ms.push_back(mean_ms(s, kind));
    }
    const auto sum = util::summarize(ms);
    return (sum.max - sum.min) / sum.mean;
  };
  EXPECT_GT(spread(wide), spread(narrow));
}

// Fig 11 shape: batch schedulers beat immediate-mode schedulers at
// Poisson mean 100.
TEST(FigureShapes, Fig11BatchBeatsImmediateOnPoisson) {
  const auto s = scenario(DistKind::kPoisson, 100.0, 0.0, 1.0);
  const double batch = (mean_ms(s, SchedulerKind::kPN) +
                        mean_ms(s, SchedulerKind::kMM) +
                        mean_ms(s, SchedulerKind::kMX)) /
                       3.0;
  const double immediate = (mean_ms(s, SchedulerKind::kEF) +
                            mean_ms(s, SchedulerKind::kLL) +
                            mean_ms(s, SchedulerKind::kRR)) /
                           3.0;
  EXPECT_LT(batch, immediate);
}

// Fig 10 shape: PN leads at Poisson mean 10.
TEST(FigureShapes, Fig10PnLeadsAtSmallPoissonMean) {
  const auto s = scenario(DistKind::kPoisson, 10.0, 0.0, 1.0);
  const double pn = mean_ms(s, SchedulerKind::kPN);
  for (const auto kind : {SchedulerKind::kEF, SchedulerKind::kRR,
                          SchedulerKind::kMX, SchedulerKind::kZO}) {
    EXPECT_LT(pn, mean_ms(s, kind) * 1.05) << scheduler_name(kind);
  }
}

}  // namespace
}  // namespace gasched::exp
