// Miniature versions of the paper's figures run as assertions: the
// qualitative shapes the reproduction must preserve, at a scale small
// enough for CI. The bench binaries produce the full tables.

#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "util/stats.hpp"

namespace gasched::exp {
namespace {

SchedulerParams opts() {
  SchedulerParams o;
  o.set("batch_size", 60);
  o.set("max_generations", 80);
  o.set("population", 14);
  return o;
}

Scenario scenario(std::string kind, double a, double b, double comm,
                  std::size_t tasks = 300, std::size_t procs = 12) {
  Scenario s;
  s.name = "shape";
  s.cluster = paper_cluster(comm, procs);
  s.workload.dist = kind;
  s.workload.param_a = a;
  s.workload.param_b = b;
  s.workload.count = tasks;
  s.seed = 2025;
  s.replications = 3;
  return s;
}

double mean_eff(const Scenario& s, std::string k) {
  double sum = 0.0;
  const auto runs = run_replications(s, k, opts());
  for (const auto& r : runs) sum += r.efficiency();
  return sum / static_cast<double>(runs.size());
}

double mean_ms(const Scenario& s, std::string k) {
  double sum = 0.0;
  const auto runs = run_replications(s, k, opts());
  for (const auto& r : runs) sum += r.makespan;
  return sum / static_cast<double>(runs.size());
}

// Fig 5 shape: PN's efficiency beats the load-blind immediate schedulers
// on normal workloads with significant communication costs.
TEST(FigureShapes, Fig5PnBeatsLoadBlindSchedulers) {
  const auto s = scenario("normal", 1000.0, 9e5, 20.0);
  const double pn = mean_eff(s, "PN");
  EXPECT_GT(pn, mean_eff(s, "RR"));
  EXPECT_GT(pn, mean_eff(s, "LL"));
}

// Fig 5 shape: every scheduler's efficiency rises as communication gets
// cheaper.
TEST(FigureShapes, Fig5EfficiencyRisesWithCheaperComm) {
  const auto dear = scenario("normal", 1000.0, 9e5, 60.0);
  const auto cheap = scenario("normal", 1000.0, 9e5, 8.0);
  for (const auto kind :
       {"PN", "EF", "MM"}) {
    EXPECT_GT(mean_eff(cheap, kind), mean_eff(dear, kind))
        << kind;
  }
}

// Fig 6 shape: PN's makespan beats RR and LL on the normal workload.
TEST(FigureShapes, Fig6PnMakespanBeatsSimpleSchedulers) {
  const auto s = scenario("normal", 1000.0, 9e5, 20.0);
  const double pn = mean_ms(s, "PN");
  EXPECT_LT(pn, mean_ms(s, "RR"));
  EXPECT_LT(pn, mean_ms(s, "LL"));
}

// Figs 8/9 shape: widening the task-size range accentuates the spread
// between schedulers.
TEST(FigureShapes, Fig8Vs9WiderRangeAccentuatesDifferences) {
  const auto narrow = scenario("uniform", 10.0, 100.0, 5.0);
  const auto wide = scenario("uniform", 10.0, 10000.0, 5.0);
  auto spread = [&](const Scenario& s) {
    std::vector<double> ms;
    for (const auto kind : all_schedulers()) {
      ms.push_back(mean_ms(s, kind));
    }
    const auto sum = util::summarize(ms);
    return (sum.max - sum.min) / sum.mean;
  };
  EXPECT_GT(spread(wide), spread(narrow));
}

// Fig 11 shape: batch schedulers beat immediate-mode schedulers at
// Poisson mean 100.
TEST(FigureShapes, Fig11BatchBeatsImmediateOnPoisson) {
  const auto s = scenario("poisson", 100.0, 0.0, 1.0);
  const double batch = (mean_ms(s, "PN") +
                        mean_ms(s, "MM") +
                        mean_ms(s, "MX")) /
                       3.0;
  const double immediate = (mean_ms(s, "EF") +
                            mean_ms(s, "LL") +
                            mean_ms(s, "RR")) /
                           3.0;
  EXPECT_LT(batch, immediate);
}

// Fig 10 shape: PN leads at Poisson mean 10.
TEST(FigureShapes, Fig10PnLeadsAtSmallPoissonMean) {
  const auto s = scenario("poisson", 10.0, 0.0, 1.0);
  const double pn = mean_ms(s, "PN");
  for (const auto kind : {"EF", "RR",
                          "MX", "ZO"}) {
    EXPECT_LT(pn, mean_ms(s, kind) * 1.05) << kind;
  }
}

}  // namespace
}  // namespace gasched::exp
