// Cached-fitness and population-parallel evaluation tests: dirty tracking
// must skip untouched survivors without changing any result, and pool
// evaluation must be bit-identical to serial evaluation (the engine's
// determinism contract for any thread count).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "util/thread_pool.hpp"

namespace gasched::ga {
namespace {

/// Toy problem (inversions of a permutation) with an evaluation counter.
class CountingSortProblem final : public GaProblem {
 public:
  double fitness(const Chromosome& c) const override {
    return 1.0 / (1.0 + inversions(c));
  }
  double objective(const Chromosome& c) const override {
    return inversions(c);
  }
  Evaluation evaluate(const Chromosome& c, Workspace* ws) const override {
    evaluations.fetch_add(1, std::memory_order_relaxed);
    return GaProblem::evaluate(c, ws);
  }

  mutable std::atomic<std::size_t> evaluations{0};

 private:
  static double inversions(const Chromosome& c) {
    double inv = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        if (c[i] > c[j]) ++inv;
      }
    }
    return inv;
  }
};

std::vector<Chromosome> random_population(std::size_t count, std::size_t n,
                                          util::Rng& rng) {
  std::vector<Chromosome> pop;
  for (std::size_t p = 0; p < count; ++p) {
    Chromosome c(n);
    std::iota(c.begin(), c.end(), Gene{0});
    rng.shuffle(c);
    pop.push_back(std::move(c));
  }
  return pop;
}

GaEngine make_engine(GaConfig cfg) {
  static const RouletteSelection sel;
  static const CycleCrossover cx;
  static const SwapMutation mut;
  return GaEngine(cfg, sel, cx, mut);
}

TEST(CachedEval, FrozenPopulationEvaluatesOnlyOnce) {
  // No crossover, no mutation, no improvement: after the initial sweep no
  // individual is ever dirty again, so the evaluation count stays at the
  // population size no matter how many generations run.
  GaConfig cfg;
  cfg.population = 12;
  cfg.max_generations = 40;
  cfg.crossover_rate = 0.0;
  cfg.mutants_per_generation = 0;
  cfg.improvement_passes = 0;
  const GaEngine engine = make_engine(cfg);
  CountingSortProblem problem;
  util::Rng rng(1);
  const GaResult r = engine.run(problem, random_population(12, 10, rng), rng);
  EXPECT_EQ(problem.evaluations.load(), 12u);
  EXPECT_EQ(r.evaluations, 12u);
  EXPECT_EQ(r.generations, 40u);
}

TEST(CachedEval, DefaultConfigSkipsSurvivorsAndElites) {
  // With the paper's operator mix some pairs skip crossover; their clean
  // copies and the elite slot must not be re-evaluated.
  GaConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 50;
  const GaEngine engine = make_engine(cfg);
  CountingSortProblem problem;
  util::Rng rng(2);
  const GaResult r = engine.run(problem, random_population(20, 12, rng), rng);
  const std::size_t naive = 20 * (r.generations + 1);
  EXPECT_EQ(problem.evaluations.load(), r.evaluations);
  EXPECT_LT(r.evaluations, naive);
  EXPECT_GE(r.evaluations, 20u);
}

TEST(CachedEval, ResultsIdenticalWithCachingDisabledByForce) {
  // A run where every generation dirties everything (improvement pass
  // that always reports a change) must agree with the plain run on what
  // it reports for identical chromosomes — i.e. caching changes counts,
  // never values. Here we simply check the engine is deterministic across
  // two identical configs (the caching path is always on; the golden
  // tests pin the absolute values).
  GaConfig cfg;
  cfg.population = 14;
  cfg.max_generations = 60;
  const GaEngine engine = make_engine(cfg);
  CountingSortProblem p1, p2;
  util::Rng ra(3), rb(3);
  auto popa = random_population(14, 11, ra);
  auto popb = random_population(14, 11, rb);
  const GaResult x = engine.run(p1, popa, ra);
  const GaResult y = engine.run(p2, popb, rb);
  EXPECT_EQ(x.best, y.best);
  EXPECT_EQ(x.best_objective, y.best_objective);
  EXPECT_EQ(x.evaluations, y.evaluations);
}

TEST(ParallelEval, PoolAndSerialEvaluationAreBitIdentical) {
  // Population above the threshold: one run on the pool, one serial.
  // Same seeds -> byte-identical results (evaluation is pure; the RNG
  // stream never touches the pool).
  GaConfig serial_cfg;
  serial_cfg.population = 96;
  serial_cfg.max_generations = 30;
  serial_cfg.record_history = true;
  serial_cfg.parallel_evaluation = false;
  GaConfig pool_cfg = serial_cfg;
  pool_cfg.parallel_evaluation = true;
  pool_cfg.parallel_eval_threshold = 8;  // force the pool path

  CountingSortProblem p1, p2;
  util::Rng pop_rng(4);
  auto popa = random_population(96, 14, pop_rng);
  auto popb = popa;
  util::Rng ra(44), rb(44);
  const GaResult s = make_engine(serial_cfg).run(p1, popa, ra);
  const GaResult q = make_engine(pool_cfg).run(p2, popb, rb);
  EXPECT_EQ(s.best, q.best);
  EXPECT_EQ(s.best_objective, q.best_objective);
  EXPECT_EQ(s.best_fitness, q.best_fitness);
  EXPECT_EQ(s.objective_history, q.objective_history);
  EXPECT_EQ(s.evaluations, q.evaluations);
}

TEST(ParallelEval, ScheduleProblemParallelMatchesSerial) {
  // The real problem type: workspace-based flat evaluation on the pool
  // must reproduce the serial run exactly, including the improvement
  // heuristic's RNG consumption.
  util::Rng fixture(5);
  const std::size_t tasks = 40, procs = 8, pop = 80;
  std::vector<double> sizes(tasks);
  for (auto& v : sizes) v = fixture.uniform(10.0, 1000.0);
  sim::SystemView view;
  view.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    view.procs[j].id = static_cast<sim::ProcId>(j);
    view.procs[j].rate = fixture.uniform(10.0, 100.0);
    view.procs[j].comm_estimate = fixture.uniform(1.0, 20.0);
  }
  const core::ScheduleCodec codec(tasks, procs);
  const core::ScheduleEvaluator eval(std::move(sizes), view, true);
  const core::ScheduleProblem problem(codec, eval);

  auto run = [&](bool parallel) {
    GaConfig cfg;
    cfg.population = pop;
    cfg.max_generations = 25;
    cfg.parallel_evaluation = parallel;
    cfg.parallel_eval_threshold = 16;
    cfg.record_history = true;
    util::Rng init_rng(6);
    auto init = core::initial_population(codec, eval, pop, 0.5, init_rng);
    util::Rng ga_rng(7);
    return make_engine(cfg).run(problem, std::move(init), ga_rng);
  };
  const GaResult serial = run(false);
  const GaResult pool = run(true);
  EXPECT_EQ(serial.best, pool.best);
  EXPECT_EQ(serial.best_objective, pool.best_objective);
  EXPECT_EQ(serial.objective_history, pool.objective_history);
  EXPECT_EQ(serial.evaluations, pool.evaluations);
}

TEST(ParallelEval, ThresholdKeepsMicroGaSerial) {
  // Default config: population 20 <= threshold 64 — the pool must not be
  // touched. We can't observe pool usage directly, but the config
  // contract is part of the documented behaviour; assert the defaults.
  const GaConfig cfg;
  EXPECT_TRUE(cfg.parallel_evaluation);
  EXPECT_EQ(cfg.parallel_eval_threshold, 64u);
  EXPECT_GT(cfg.parallel_eval_threshold, cfg.population);
}

}  // namespace
}  // namespace gasched::ga
