// Tests for selection operators: bias toward fitness, degeneracy handling,
// and the paper's roulette slot definition ς_i = F_i / Σ F_j.

#include "ga/selection.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace gasched::ga {
namespace {

std::map<std::size_t, int> histogram(const std::vector<std::size_t>& picks) {
  std::map<std::size_t, int> h;
  for (const auto p : picks) ++h[p];
  return h;
}

TEST(Roulette, ProportionalToFitness) {
  RouletteSelection sel;
  util::Rng rng(1);
  // Individual 1 has 3x the fitness of individual 0.
  const std::vector<double> fitness{1.0, 3.0};
  const auto picks = sel.select(fitness, 100000, rng);
  const auto h = histogram(picks);
  EXPECT_NEAR(static_cast<double>(h.at(1)) / 100000.0, 0.75, 0.01);
}

TEST(Roulette, ZeroFitnessFallsBackToUniform) {
  RouletteSelection sel;
  util::Rng rng(2);
  const std::vector<double> fitness{0.0, 0.0, 0.0, 0.0};
  const auto picks = sel.select(fitness, 40000, rng);
  const auto h = histogram(picks);
  for (const auto& [idx, count] : h) {
    EXPECT_NEAR(static_cast<double>(count) / 40000.0, 0.25, 0.02);
  }
}

TEST(Roulette, NegativeFitnessTreatedAsZero) {
  RouletteSelection sel;
  util::Rng rng(3);
  const std::vector<double> fitness{-5.0, 1.0};
  const auto picks = sel.select(fitness, 10000, rng);
  const auto h = histogram(picks);
  EXPECT_EQ(h.count(0), 0u);  // index 0 never selected
}

TEST(Roulette, EmptyPopulationThrows) {
  RouletteSelection sel;
  util::Rng rng(4);
  EXPECT_THROW(sel.select({}, 1, rng), std::invalid_argument);
}

TEST(Roulette, SingleIndividualAlwaysChosen) {
  RouletteSelection sel;
  util::Rng rng(5);
  const std::vector<double> fitness{0.7};
  for (const auto p : sel.select(fitness, 100, rng)) EXPECT_EQ(p, 0u);
}

TEST(Tournament, StrictlyPrefersFitterWithLargeK) {
  TournamentSelection sel(8);
  util::Rng rng(6);
  const std::vector<double> fitness{0.1, 0.2, 0.9, 0.3};
  const auto picks = sel.select(fitness, 10000, rng);
  const auto h = histogram(picks);
  // With k=8 over 4 individuals the best is almost always in the sample.
  EXPECT_GT(h.at(2), 9000);
}

TEST(Tournament, KOneIsUniform) {
  TournamentSelection sel(1);
  util::Rng rng(7);
  const std::vector<double> fitness{0.1, 100.0};
  const auto picks = sel.select(fitness, 40000, rng);
  const auto h = histogram(picks);
  EXPECT_NEAR(static_cast<double>(h.at(0)) / 40000.0, 0.5, 0.02);
}

TEST(Tournament, RejectsZeroK) {
  EXPECT_THROW(TournamentSelection(0), std::invalid_argument);
}

TEST(Rank, BiasDependsOnOrderNotMagnitude) {
  RankSelection sel;
  util::Rng rng(8);
  // Huge fitness gap — rank selection must not be swamped by it.
  const std::vector<double> fitness{1.0, 1e9};
  const auto picks = sel.select(fitness, 60000, rng);
  const auto h = histogram(picks);
  // Ranks 1 and 2 => probabilities 1/3 and 2/3.
  EXPECT_NEAR(static_cast<double>(h.at(1)) / 60000.0, 2.0 / 3.0, 0.02);
}

TEST(Sus, ProportionalAndLowVariance) {
  SusSelection sel;
  util::Rng rng(9);
  const std::vector<double> fitness{1.0, 1.0, 2.0};
  // A single SUS draw of 4 picks should deterministically include the
  // high-fitness individual at least twice w.h.p. — run many draws and
  // check overall proportions tightly.
  std::map<std::size_t, int> h;
  const int draws = 2000;
  for (int d = 0; d < draws; ++d) {
    for (const auto p : sel.select(fitness, 4, rng)) ++h[p];
  }
  const double total = 4.0 * draws;
  EXPECT_NEAR(h[2] / total, 0.5, 0.02);
  EXPECT_NEAR(h[0] / total, 0.25, 0.02);
}

TEST(Sus, ZeroTotalFallsBackToUniform) {
  SusSelection sel;
  util::Rng rng(10);
  const std::vector<double> fitness{0.0, 0.0};
  const auto picks = sel.select(fitness, 1000, rng);
  EXPECT_EQ(picks.size(), 1000u);
}

class SelectionContract
    : public ::testing::TestWithParam<std::shared_ptr<SelectionOp>> {};

TEST_P(SelectionContract, ReturnsRequestedCountOfValidIndices) {
  auto sel = GetParam();
  util::Rng rng(11);
  const std::vector<double> fitness{0.2, 0.8, 0.5, 0.0, 0.9};
  const auto picks = sel->select(fitness, 333, rng);
  ASSERT_EQ(picks.size(), 333u);
  for (const auto p : picks) ASSERT_LT(p, fitness.size());
}

TEST_P(SelectionContract, NeverSelectsStrictlyWorstAlwaysOverBest) {
  // Weak sanity: across many draws, the best individual is picked at
  // least as often as the worst.
  auto sel = GetParam();
  util::Rng rng(12);
  const std::vector<double> fitness{0.01, 0.5, 0.99};
  const auto picks = sel->select(fitness, 30000, rng);
  const auto h = histogram(picks);
  const int best = h.count(2) ? h.at(2) : 0;
  const int worst = h.count(0) ? h.at(0) : 0;
  EXPECT_GE(best, worst);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, SelectionContract,
    ::testing::Values(std::make_shared<RouletteSelection>(),
                      std::make_shared<TournamentSelection>(2),
                      std::make_shared<TournamentSelection>(4),
                      std::make_shared<RankSelection>(),
                      std::make_shared<SusSelection>()));

}  // namespace
}  // namespace gasched::ga
