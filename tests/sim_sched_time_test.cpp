// Tests for scheduler-computation-time modelling
// (EngineConfig::sched_time_scale) and the GA wall-clock stop condition
// (GeneticSchedulerConfig::max_wall_seconds) — together they realise the
// paper's "GA stops evolving if a processor becomes idle" (§3.4).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/genetic_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace gasched::sim {
namespace {

using workload::Task;
using workload::Workload;

/// Greedy round robin that burns a configurable amount of wall time per
/// invocation, standing in for an expensive scheduler.
class SlowPolicy final : public SchedulingPolicy {
 public:
  explicit SlowPolicy(double wall_ms) : wall_ms_(wall_ms) {}
  BatchAssignment invoke(const SystemView& view, std::deque<Task>& queue,
                         util::Rng&) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wall_ms_));
    auto a = BatchAssignment::empty(view.size());
    std::size_t j = 0;
    while (!queue.empty()) {
      a.per_proc[j % view.size()].push_back(queue.front().id);
      queue.pop_front();
      ++j;
    }
    return a;
  }
  std::string name() const override { return "slow"; }

 private:
  double wall_ms_;
};

Cluster simple_cluster(std::size_t procs, double rate) {
  ClusterConfig cfg;
  cfg.num_processors = procs;
  cfg.rate_lo = cfg.rate_hi = rate;
  cfg.zero_comm = true;
  util::Rng rng(7);
  return build_cluster(cfg, rng);
}

Workload constant_workload(std::size_t count, double size) {
  workload::ConstantSizes dist(size);
  util::Rng rng(3);
  return workload::generate(dist, count, rng);
}

TEST(SchedTime, ZeroScaleAssignsInstantly) {
  const Cluster c = simple_cluster(1, 10.0);
  const Workload w = constant_workload(4, 100.0);
  SlowPolicy policy(5.0);
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_DOUBLE_EQ(r.makespan, 40.0);  // pure execution time
}

TEST(SchedTime, PositiveScaleDelaysAssignments) {
  const Cluster c = simple_cluster(1, 10.0);
  const Workload w = constant_workload(4, 100.0);
  // Scale wall time by 1000: ~5 ms per invocation => ~5 simulated seconds
  // of scheduler latency before work starts.
  SlowPolicy policy(5.0);
  EngineConfig ecfg;
  ecfg.sched_time_scale = 1000.0;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  EXPECT_GT(r.makespan, 41.0);
  EXPECT_EQ(r.tasks_completed, 4u);
}

TEST(SchedTime, AllTasksCompleteUnderDelayedAssignments) {
  const Cluster c = simple_cluster(4, 20.0);
  const Workload w = constant_workload(40, 100.0);
  SlowPolicy policy(1.0);
  EngineConfig ecfg;
  ecfg.sched_time_scale = 100.0;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  EXPECT_EQ(r.tasks_completed, 40u);
}

TEST(GaWallBudget, StopsEvolutionEarly) {
  // A generous GA (many generations) with a ~zero wall budget must return
  // almost immediately with the initial population's best.
  core::GeneticSchedulerConfig cfg;
  cfg.ga.max_generations = 1000000;  // would take minutes unbounded
  cfg.ga.population = 20;
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 150;
  cfg.max_wall_seconds = 0.02;
  core::GeneticBatchScheduler sched(cfg, "T");
  SystemView view;
  view.procs.resize(8);
  for (std::size_t j = 0; j < 8; ++j) {
    view.procs[j].id = static_cast<ProcId>(j);
    view.procs[j].rate = 10.0 + static_cast<double>(j);
  }
  std::deque<Task> queue;
  for (int i = 0; i < 150; ++i) {
    queue.push_back({i, 100.0, 0.0});
  }
  util::Rng rng(1);
  const auto t0 = std::chrono::steady_clock::now();
  const auto a = sched.invoke(view, queue, rng);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(a.total(), 150u);
  EXPECT_LT(elapsed, 2.0);  // far below what 1e6 generations would take
}

TEST(GaWallBudget, DisabledBudgetRunsAllGenerations) {
  core::GeneticSchedulerConfig cfg;
  cfg.ga.max_generations = 30;
  cfg.ga.population = 8;
  cfg.dynamic_batch = false;
  cfg.fixed_batch = 20;
  cfg.max_wall_seconds = 0.0;
  core::GeneticBatchScheduler sched(cfg, "T");
  SystemView view;
  view.procs.resize(3);
  for (std::size_t j = 0; j < 3; ++j) {
    view.procs[j].id = static_cast<ProcId>(j);
    view.procs[j].rate = 20.0;
  }
  std::deque<Task> queue;
  for (int i = 0; i < 20; ++i) queue.push_back({i, 50.0, 0.0});
  util::Rng rng(2);
  const auto a = sched.invoke(view, queue, rng);
  EXPECT_EQ(a.total(), 20u);
}

}  // namespace
}  // namespace gasched::sim
