// Property tests shared by every local-search batch scheduler (SA, tabu,
// ACO, hill climbing): whatever the search strategy, the policy contract
// of sim::SchedulingPolicy must hold.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"

namespace gasched::meta {
namespace {

using Factory =
    std::function<std::unique_ptr<sim::SchedulingPolicy>(std::size_t batch)>;

struct PolicyCase {
  std::string label;
  Factory make;
};

PolicyCase sa_case() {
  return {"SA", [](std::size_t batch) {
            SaConfig cfg;
            cfg.batch.batch_size = batch;
            return make_sa_scheduler(cfg);
          }};
}
PolicyCase tabu_case() {
  return {"TS", [](std::size_t batch) {
            TabuConfig cfg;
            cfg.batch.batch_size = batch;
            return make_tabu_scheduler(cfg);
          }};
}
PolicyCase aco_case() {
  return {"ACO", [](std::size_t batch) {
            AcoConfig cfg;
            cfg.batch.batch_size = batch;
            cfg.iterations = 10;  // keep the sweep fast
            return make_aco_scheduler(cfg);
          }};
}
PolicyCase hc_case() {
  return {"HC", [](std::size_t batch) {
            HillClimbConfig cfg;
            cfg.batch.batch_size = batch;
            return make_hill_climb_scheduler(cfg);
          }};
}

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {},
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
    v.procs[j].comm_observations = j < comm.size() ? 1 : 0;
  }
  return v;
}

std::deque<workload::Task> tasks_of_sizes(const std::vector<double>& sizes) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i) + 100, sizes[i], 0.0});
  }
  return q;
}

/// Estimated makespan of an assignment under `view` (no comm term).
double estimated_makespan(const sim::BatchAssignment& a,
                          const sim::SystemView& view,
                          const std::vector<double>& sizes_by_id) {
  double ms = 0.0;
  for (std::size_t j = 0; j < view.size(); ++j) {
    double load = view.procs[j].pending_mflops;
    for (const auto id : a.per_proc[j]) {
      load += sizes_by_id.at(static_cast<std::size_t>(id) - 100);
    }
    ms = std::max(ms, load / view.procs[j].rate);
  }
  return ms;
}

class MetaPolicyTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(MetaPolicyTest, ConsumesExactlyOneBatchAndAssignsEachTaskOnce) {
  const auto view = make_view({10.0, 20.0, 40.0});
  const std::vector<double> sizes(25, 100.0);
  auto q = tasks_of_sizes(sizes);
  auto policy = GetParam().make(10);
  util::Rng rng(42);

  const auto a = policy->invoke(view, q, rng);
  EXPECT_EQ(q.size(), 15u);  // 10 consumed
  EXPECT_EQ(a.total(), 10u);

  std::set<workload::TaskId> seen;
  for (const auto& queue : a.per_proc) {
    for (const auto id : queue) {
      EXPECT_TRUE(seen.insert(id).second) << "duplicate task " << id;
      EXPECT_GE(id, 100);
      EXPECT_LT(id, 110);  // exactly the first 10 tasks, FCFS
    }
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST_P(MetaPolicyTest, EmptyQueueYieldsEmptyAssignment) {
  const auto view = make_view({10.0, 20.0});
  std::deque<workload::Task> q;
  auto policy = GetParam().make(10);
  util::Rng rng(1);
  const auto a = policy->invoke(view, q, rng);
  EXPECT_EQ(a.total(), 0u);
  EXPECT_EQ(a.per_proc.size(), 2u);
}

TEST_P(MetaPolicyTest, SingleProcessorReceivesEverything) {
  const auto view = make_view({25.0});
  auto q = tasks_of_sizes({10, 20, 30});
  auto policy = GetParam().make(10);
  util::Rng rng(2);
  const auto a = policy->invoke(view, q, rng);
  EXPECT_EQ(a.per_proc[0].size(), 3u);
}

TEST_P(MetaPolicyTest, DeterministicGivenSeed) {
  const auto view = make_view({10.0, 30.0, 60.0}, {500.0, 0.0, 100.0},
                              {1.0, 0.2, 3.0});
  const std::vector<double> sizes{120, 40, 900, 77, 310, 15, 222, 68};
  auto run = [&] {
    auto q = tasks_of_sizes(sizes);
    auto policy = GetParam().make(8);
    util::Rng rng(777);
    return policy->invoke(view, q, rng);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t j = 0; j < a.per_proc.size(); ++j) {
    EXPECT_EQ(a.per_proc[j], b.per_proc[j]) << "proc " << j;
  }
}

TEST_P(MetaPolicyTest, BeatsRoundRobinOnHeterogeneousRates) {
  // Rates spanning 1:16 make blind cyclic placement pay dearly; any
  // informed local search must do at least as well as balanced-by-count.
  const auto view = make_view({5.0, 10.0, 20.0, 80.0});
  std::vector<double> sizes;
  for (int i = 0; i < 32; ++i) sizes.push_back(100.0 + 10.0 * (i % 7));
  auto q = tasks_of_sizes(sizes);
  auto policy = GetParam().make(32);
  util::Rng rng(5);
  const auto a = policy->invoke(view, q, rng);

  // Round-robin reference on the same batch.
  auto rr = sim::BatchAssignment::empty(4);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    rr.per_proc[i % 4].push_back(static_cast<workload::TaskId>(i) + 100);
  }
  EXPECT_LT(estimated_makespan(a, view, sizes),
            estimated_makespan(rr, view, sizes));
}

TEST_P(MetaPolicyTest, EqualTasksOnEqualProcessorsBalancePerfectly) {
  const auto view = make_view({10.0, 10.0, 10.0, 10.0});
  const std::vector<double> sizes(16, 100.0);
  auto q = tasks_of_sizes(sizes);
  auto policy = GetParam().make(16);
  util::Rng rng(3);
  const auto a = policy->invoke(view, q, rng);
  // Optimal: four tasks per processor, makespan 40.
  EXPECT_NEAR(estimated_makespan(a, view, sizes), 40.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllMetaSchedulers, MetaPolicyTest,
                         ::testing::Values(sa_case(), tabu_case(), aco_case(),
                                           hc_case()),
                         [](const ::testing::TestParamInfo<PolicyCase>& info) {
                           return info.param.label;
                         });

}  // namespace
}  // namespace gasched::meta
