// Tests for the serialized scheduler-uplink mode
// (EngineConfig::serial_dispatch).

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace gasched::sim {
namespace {

using workload::Task;
using workload::Workload;

class GreedyPolicy final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view, std::deque<Task>& queue,
                         util::Rng&) override {
    auto a = BatchAssignment::empty(view.size());
    std::size_t j = 0;
    while (!queue.empty()) {
      a.per_proc[j % view.size()].push_back(queue.front().id);
      queue.pop_front();
      ++j;
    }
    return a;
  }
  std::string name() const override { return "greedy"; }
};

Cluster fixed_comm_cluster(std::size_t procs, double rate, double comm) {
  ClusterConfig cfg;
  cfg.num_processors = procs;
  cfg.rate_lo = cfg.rate_hi = rate;
  cfg.comm.mean_cost = comm;
  cfg.comm.spread_cv = 0.0;
  cfg.comm.jitter_cv = 0.0;
  util::Rng rng(7);
  return build_cluster(cfg, rng);
}

Workload constant_workload(std::size_t count, double size) {
  workload::ConstantSizes dist(size);
  util::Rng rng(3);
  return workload::generate(dist, count, rng);
}

TEST(SerialDispatch, AllTasksComplete) {
  const Cluster c = fixed_comm_cluster(4, 10.0, 2.0);
  const Workload w = constant_workload(32, 100.0);
  EngineConfig ecfg;
  ecfg.serial_dispatch = true;
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  EXPECT_EQ(r.tasks_completed, 32u);
}

TEST(SerialDispatch, NeverFasterThanParallelLinks) {
  const Cluster c = fixed_comm_cluster(8, 10.0, 5.0);
  const Workload w = constant_workload(64, 100.0);
  GreedyPolicy p1, p2;
  const auto parallel = simulate(c, w, p1, util::Rng(1));
  EngineConfig ecfg;
  ecfg.serial_dispatch = true;
  const auto serial = simulate(c, w, p2, util::Rng(1), ecfg);
  EXPECT_GE(serial.makespan, parallel.makespan);
}

TEST(SerialDispatch, LinkBoundWhenCommDominates) {
  // 4 procs, comm 10 s, exec 1 s: the serialized link is the bottleneck,
  // so makespan ≈ tasks × comm.
  const Cluster c = fixed_comm_cluster(4, 100.0, 10.0);
  const Workload w = constant_workload(20, 100.0);
  EngineConfig ecfg;
  ecfg.serial_dispatch = true;
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  EXPECT_NEAR(r.makespan, 20.0 * 10.0 + 1.0, 1.5);
}

TEST(SerialDispatch, ParallelLinksOverlapCommunication) {
  // Same setup without serialization: 4 links transfer concurrently.
  const Cluster c = fixed_comm_cluster(4, 100.0, 10.0);
  const Workload w = constant_workload(20, 100.0);
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_LT(r.makespan, 0.5 * 20.0 * 10.0);
}

TEST(SerialDispatch, WorksUnderFailures) {
  const Cluster c = fixed_comm_cluster(3, 10.0, 1.0);
  const Workload w = constant_workload(24, 100.0);
  FailureConfig fcfg;
  fcfg.mean_uptime = 60.0;
  fcfg.mean_downtime = 20.0;
  fcfg.horizon = 1e6;
  util::Rng frng(5);
  const FailureTrace trace(fcfg, 3, frng);
  EngineConfig ecfg;
  ecfg.serial_dispatch = true;
  ecfg.failures = &trace;
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  EXPECT_EQ(r.tasks_completed, 24u);
}

TEST(SerialDispatch, DeterministicGivenSeed) {
  const Cluster c = fixed_comm_cluster(5, 20.0, 3.0);
  const Workload w = constant_workload(40, 150.0);
  EngineConfig ecfg;
  ecfg.serial_dispatch = true;
  GreedyPolicy p1, p2;
  const auto a = simulate(c, w, p1, util::Rng(4), ecfg);
  const auto b = simulate(c, w, p2, util::Rng(4), ecfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
}  // namespace gasched::sim
