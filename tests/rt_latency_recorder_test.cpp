// Tests for the log-linear histogram and the serving runtime's latency
// recorder: bucket-boundary invariants, quantiles checked against an
// exact sorted reference, and the recorder's seconds-based summaries.

#include "rt/latency.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace gasched {
namespace {

using util::LogLinearHistogram;

TEST(LogLinearHistogram, UnitBucketsAreExactBelowSixteen) {
  for (std::uint64_t v = 0; v < LogLinearHistogram::kSubBuckets; ++v) {
    const std::size_t idx = LogLinearHistogram::bucket_index(v);
    EXPECT_EQ(idx, v);
    EXPECT_EQ(LogLinearHistogram::bucket_lower_bound(idx), v);
    EXPECT_EQ(LogLinearHistogram::bucket_upper_bound(idx), v);
  }
}

TEST(LogLinearHistogram, BucketBoundsBracketEveryValue) {
  // For a spread of values across the whole 64-bit range: the value lies
  // inside its bucket's [lower, upper], the bounds map back to the same
  // bucket, and the relative bucket width never exceeds 1/kSubBuckets.
  util::Rng rng(17);
  std::vector<std::uint64_t> values;
  for (unsigned e = 0; e < 63; ++e) {
    values.push_back(1ull << e);
    values.push_back((1ull << e) + 1);
    values.push_back((1ull << e) - 1);
    values.push_back((1ull << e) | static_cast<std::uint64_t>(
                                       rng.uniform(0.0, double(1ull << e))));
  }
  for (const std::uint64_t v : values) {
    const std::size_t idx = LogLinearHistogram::bucket_index(v);
    ASSERT_LT(idx, LogLinearHistogram::bucket_count());
    const std::uint64_t lo = LogLinearHistogram::bucket_lower_bound(idx);
    const std::uint64_t hi = LogLinearHistogram::bucket_upper_bound(idx);
    ASSERT_LE(lo, v);
    ASSERT_GE(hi, v);
    EXPECT_EQ(LogLinearHistogram::bucket_index(lo), idx);
    EXPECT_EQ(LogLinearHistogram::bucket_index(hi), idx);
    if (v >= LogLinearHistogram::kSubBuckets) {
      const double width = static_cast<double>(hi - lo + 1);
      EXPECT_LE(width / static_cast<double>(lo),
                1.0 / static_cast<double>(LogLinearHistogram::kSubBuckets) +
                    1e-12);
    }
  }
}

TEST(LogLinearHistogram, AdjacentBucketsTile) {
  // Buckets partition the value line: upper(i) + 1 == lower(i + 1).
  for (std::size_t i = 0; i + 1 < 400; ++i) {
    EXPECT_EQ(LogLinearHistogram::bucket_upper_bound(i) + 1,
              LogLinearHistogram::bucket_lower_bound(i + 1))
        << "at bucket " << i;
  }
}

TEST(LogLinearHistogram, QuantilesMatchSortedReference) {
  // Log-normal-ish latencies spanning ~5 decades: each quantile must be
  // >= the exact order statistic and within the 6.25% bucket-width bound.
  util::Rng rng(23);
  LogLinearHistogram h;
  std::vector<std::uint64_t> ref;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(rng.normal(10.0, 2.0));  // ~e^10 ns median
    const auto ns = static_cast<std::uint64_t>(v);
    h.record(ns);
    ref.push_back(ns);
  }
  std::sort(ref.begin(), ref.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::uint64_t exact =
        ref[static_cast<std::size_t>(
                std::ceil(q * static_cast<double>(ref.size()))) -
            1];
    const std::uint64_t approx = h.quantile(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx),
              static_cast<double>(exact) * (1.0 + 1.0 / 16.0) + 1.0)
        << "q=" << q;
  }
  EXPECT_EQ(h.quantile(1.0), ref.back());  // clamped to the true max
  EXPECT_EQ(h.count(), ref.size());
  EXPECT_EQ(h.min(), ref.front());
  EXPECT_EQ(h.max(), ref.back());
}

TEST(LogLinearHistogram, EmptyResetAndMerge) {
  LogLinearHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(100);
  h.record(200);
  EXPECT_NEAR(h.mean(), 150.0, 1e-9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);

  LogLinearHistogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(LatencyRecorder, SummariesAreInSecondsAndOrdered) {
  rt::LatencyRecorder rec;
  util::Rng rng(31);
  // 1–10 ms scheduling latencies.
  for (int i = 0; i < 5000; ++i) {
    rec.record_sched(
        static_cast<std::uint64_t>(rng.uniform(1.0e6, 10.0e6)));
  }
  const rt::LatencySummary s = rec.sched();
  EXPECT_EQ(s.count, 5000u);
  EXPECT_GT(s.mean, 0.001);
  EXPECT_LT(s.mean, 0.010);
  EXPECT_LE(s.p50, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max * (1.0 + 1e-12));
  EXPECT_GT(s.p50, 0.001);
  EXPECT_LT(s.max, 0.011);

  // Dimensions are independent.
  EXPECT_EQ(rec.queue().count, 0u);
  EXPECT_EQ(rec.sojourn().count, 0u);
  rec.record_queue(500);
  rec.record_sojourn(1500);
  EXPECT_EQ(rec.queue().count, 1u);
  EXPECT_EQ(rec.sojourn().count, 1u);
  rec.reset();
  EXPECT_EQ(rec.sched().count, 0u);
  EXPECT_EQ(rec.queue().count, 0u);
}

}  // namespace
}  // namespace gasched
