// Tests for the experiment harness: scheduler factory, scenario
// realisation, replication determinism, and the same-workload guarantee.

#include "exp/runner.hpp"

#include <gtest/gtest.h>

namespace gasched::exp {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.name = "test";
  s.cluster = paper_cluster(/*mean_comm_cost=*/10.0, /*processors=*/6);
  s.workload.kind = DistKind::kUniform;
  s.workload.param_a = 10.0;
  s.workload.param_b = 100.0;
  s.workload.count = 120;
  s.seed = 7;
  s.replications = 3;
  return s;
}

SchedulerOptions quick_opts() {
  SchedulerOptions o;
  o.batch_size = 40;
  o.max_generations = 40;
  o.population = 10;
  return o;
}

TEST(SchedulerFactory, AllSevenConstructibleWithPaperNames) {
  for (const auto kind : all_schedulers()) {
    const auto policy = make_scheduler(kind, quick_opts());
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), scheduler_name(kind));
  }
}

TEST(SchedulerFactory, OrderMatchesPaperBarCharts) {
  const auto all = all_schedulers();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_STREQ(scheduler_name(all[0]), "EF");
  EXPECT_STREQ(scheduler_name(all[1]), "LL");
  EXPECT_STREQ(scheduler_name(all[2]), "RR");
  EXPECT_STREQ(scheduler_name(all[3]), "ZO");
  EXPECT_STREQ(scheduler_name(all[4]), "PN");
  EXPECT_STREQ(scheduler_name(all[5]), "MM");
  EXPECT_STREQ(scheduler_name(all[6]), "MX");
}

TEST(Distributions, FactoryMatchesSpec) {
  WorkloadSpec normal{DistKind::kNormal, 1000.0, 9e5, 10};
  EXPECT_EQ(make_distribution(normal)->name(), "normal");
  WorkloadSpec uni{DistKind::kUniform, 10.0, 100.0, 10};
  EXPECT_EQ(make_distribution(uni)->name(), "uniform");
  WorkloadSpec poi{DistKind::kPoisson, 10.0, 0.0, 10};
  EXPECT_EQ(make_distribution(poi)->name(), "poisson");
  WorkloadSpec con{DistKind::kConstant, 5.0, 0.0, 10};
  EXPECT_EQ(make_distribution(con)->name(), "constant");
}

TEST(PaperCluster, MatchesSection42) {
  const auto cfg = paper_cluster(20.0);
  EXPECT_EQ(cfg.num_processors, 50u);
  EXPECT_DOUBLE_EQ(cfg.rate_lo, 10.0);
  EXPECT_DOUBLE_EQ(cfg.rate_hi, 100.0);
  EXPECT_DOUBLE_EQ(cfg.comm.mean_cost, 20.0);
  EXPECT_EQ(cfg.availability, sim::AvailabilityKind::kFixed);
}

TEST(Runner, CompletesAllTasksForEveryScheduler) {
  const Scenario s = small_scenario();
  for (const auto kind : all_schedulers()) {
    const auto runs = run_replications(s, kind, quick_opts());
    ASSERT_EQ(runs.size(), s.replications);
    for (const auto& r : runs) {
      EXPECT_EQ(r.tasks_completed, s.workload.count)
          << scheduler_name(kind);
      EXPECT_GT(r.makespan, 0.0);
      EXPECT_GT(r.efficiency(), 0.0);
      EXPECT_LE(r.efficiency(), 1.0);
    }
  }
}

TEST(Runner, DeterministicAcrossCalls) {
  const Scenario s = small_scenario();
  const auto a = run_replications(s, SchedulerKind::kEF, quick_opts());
  const auto b = run_replications(s, SchedulerKind::kEF, quick_opts());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].makespan, b[i].makespan);
  }
}

TEST(Runner, ParallelAndSerialAgree) {
  const Scenario s = small_scenario();
  const auto par =
      run_replications(s, SchedulerKind::kMM, quick_opts(), /*parallel=*/true);
  const auto ser = run_replications(s, SchedulerKind::kMM, quick_opts(),
                                    /*parallel=*/false);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].makespan, ser[i].makespan);
    EXPECT_DOUBLE_EQ(par[i].efficiency(), ser[i].efficiency());
  }
}

TEST(Runner, ReplicationsDiffer) {
  const Scenario s = small_scenario();
  const auto runs = run_replications(s, SchedulerKind::kRR, quick_opts());
  EXPECT_NE(runs[0].makespan, runs[1].makespan);
}

TEST(Runner, RunOneMatchesReplicationSlot) {
  const Scenario s = small_scenario();
  const auto runs = run_replications(s, SchedulerKind::kLL, quick_opts());
  const auto lone = run_one(s, SchedulerKind::kLL, quick_opts(), 1);
  EXPECT_DOUBLE_EQ(lone.makespan, runs[1].makespan);
}

TEST(Runner, CellSummaryAggregates) {
  const Scenario s = small_scenario();
  const auto cell = run_cell(s, SchedulerKind::kEF, quick_opts());
  EXPECT_EQ(cell.scheduler, "EF");
  EXPECT_EQ(cell.replications, s.replications);
  EXPECT_GT(cell.makespan.mean, 0.0);
}

}  // namespace
}  // namespace gasched::exp
