// Tests for the experiment harness: registry-backed scheduler factory,
// scenario realisation, replication determinism, and the same-workload
// guarantee.

#include "exp/runner.hpp"

#include <gtest/gtest.h>

namespace gasched::exp {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.name = "test";
  s.cluster = paper_cluster(/*mean_comm_cost=*/10.0, /*processors=*/6);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 100.0;
  s.workload.count = 120;
  s.seed = 7;
  s.replications = 3;
  return s;
}

SchedulerParams quick_opts() {
  SchedulerParams o;
  o.set("batch_size", 40);
  o.set("max_generations", 40);
  o.set("population", 10);
  return o;
}

TEST(SchedulerFactory, AllSevenConstructibleWithPaperNames) {
  for (const auto& name : all_schedulers()) {
    const auto policy = make_scheduler(name, quick_opts());
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(SchedulerFactory, OrderMatchesPaperBarCharts) {
  const auto all = all_schedulers();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all[0], "EF");
  EXPECT_EQ(all[1], "LL");
  EXPECT_EQ(all[2], "RR");
  EXPECT_EQ(all[3], "ZO");
  EXPECT_EQ(all[4], "PN");
  EXPECT_EQ(all[5], "MM");
  EXPECT_EQ(all[6], "MX");
}

TEST(Distributions, FactoryMatchesSpec) {
  WorkloadSpec spec;
  spec.count = 10;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;
  EXPECT_EQ(make_distribution(spec)->name(), "normal");
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 100.0;
  EXPECT_EQ(make_distribution(spec)->name(), "uniform");
  spec.dist = "poisson";
  spec.param_a = 10.0;
  EXPECT_EQ(make_distribution(spec)->name(), "poisson");
  spec.dist = "constant";
  spec.param_a = 5.0;
  EXPECT_EQ(make_distribution(spec)->name(), "constant");
  spec.dist = "pareto";
  spec.param_a = 10.0;
  spec.param_b = 10000.0;
  EXPECT_EQ(make_distribution(spec)->name(), "pareto");
  spec.dist = "bimodal";
  EXPECT_EQ(make_distribution(spec)->name(), "bimodal");
}

TEST(Distributions, NamedKeysOverridePositionalParams) {
  WorkloadSpec spec;
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 100.0;
  spec.params.set("lo", 50.0).set("hi", 60.0);
  const auto d = make_distribution(spec);
  EXPECT_DOUBLE_EQ(d->min_size(), 50.0);
  EXPECT_DOUBLE_EQ(d->mean(), 55.0);
}

TEST(PaperCluster, MatchesSection42) {
  const auto cfg = paper_cluster(20.0);
  EXPECT_EQ(cfg.num_processors, 50u);
  EXPECT_DOUBLE_EQ(cfg.rate_lo, 10.0);
  EXPECT_DOUBLE_EQ(cfg.rate_hi, 100.0);
  EXPECT_DOUBLE_EQ(cfg.comm.mean_cost, 20.0);
  EXPECT_EQ(cfg.availability, sim::AvailabilityKind::kFixed);
}

TEST(Runner, CompletesAllTasksForEveryScheduler) {
  const Scenario s = small_scenario();
  for (const auto& name : all_schedulers()) {
    const auto runs = run_replications(s, name, quick_opts());
    ASSERT_EQ(runs.size(), s.replications);
    for (const auto& r : runs) {
      EXPECT_EQ(r.tasks_completed, s.workload.count) << name;
      EXPECT_GT(r.makespan, 0.0);
      EXPECT_GT(r.efficiency(), 0.0);
      EXPECT_LE(r.efficiency(), 1.0);
    }
  }
}

TEST(Runner, DeterministicAcrossCalls) {
  const Scenario s = small_scenario();
  const auto a = run_replications(s, "EF", quick_opts());
  const auto b = run_replications(s, "EF", quick_opts());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].makespan, b[i].makespan);
  }
}

TEST(Runner, ParallelAndSerialAgree) {
  const Scenario s = small_scenario();
  const auto par = run_replications(s, "MM", quick_opts(), /*parallel=*/true);
  const auto ser = run_replications(s, "MM", quick_opts(), /*parallel=*/false);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].makespan, ser[i].makespan);
    EXPECT_DOUBLE_EQ(par[i].efficiency(), ser[i].efficiency());
  }
}

TEST(Runner, ReplicationsDiffer) {
  const Scenario s = small_scenario();
  const auto runs = run_replications(s, "RR", quick_opts());
  EXPECT_NE(runs[0].makespan, runs[1].makespan);
}

TEST(Runner, RunOneMatchesReplicationSlot) {
  const Scenario s = small_scenario();
  const auto runs = run_replications(s, "LL", quick_opts());
  const auto lone = run_one(s, "LL", quick_opts(), 1);
  EXPECT_DOUBLE_EQ(lone.makespan, runs[1].makespan);
}

TEST(Runner, CellSummaryAggregates) {
  const Scenario s = small_scenario();
  const auto cell = run_cell(s, "EF", quick_opts());
  EXPECT_EQ(cell.scheduler, "EF");
  EXPECT_EQ(cell.replications, s.replications);
  EXPECT_GT(cell.makespan.mean, 0.0);
}

TEST(Runner, AcceptsCaseInsensitiveNamesAndLabelsCanonically) {
  const Scenario s = small_scenario();
  const auto cell = run_cell(s, "ef", quick_opts());
  EXPECT_EQ(cell.scheduler, "EF");
  const auto canonical = run_replications(s, "EF", quick_opts());
  const auto lower = run_replications(s, "ef", quick_opts());
  for (std::size_t i = 0; i < canonical.size(); ++i) {
    EXPECT_DOUBLE_EQ(canonical[i].makespan, lower[i].makespan);
  }
}

TEST(Runner, UnknownSchedulerThrowsBeforeRunning) {
  const Scenario s = small_scenario();
  EXPECT_THROW(run_replications(s, "NOPE", quick_opts()),
               std::runtime_error);
}

}  // namespace
}  // namespace gasched::exp
