// Tests for cluster construction from declarative configs.

#include "sim/cluster.hpp"

#include <gtest/gtest.h>

namespace gasched::sim {
namespace {

TEST(BuildCluster, PaperDefaultsProduceFiftyHeterogeneousProcessors) {
  ClusterConfig cfg;  // defaults: 50 procs, rates U[10, 100], fixed avail
  util::Rng rng(1);
  const Cluster c = build_cluster(cfg, rng);
  ASSERT_EQ(c.size(), 50u);
  double lo = 1e18, hi = 0.0;
  for (const auto& p : c.processors) {
    EXPECT_GE(p.base_rate, 10.0);
    EXPECT_LE(p.base_rate, 100.0);
    EXPECT_DOUBLE_EQ(p.availability->multiplier(123.0), 1.0);
    lo = std::min(lo, p.base_rate);
    hi = std::max(hi, p.base_rate);
  }
  EXPECT_GT(hi - lo, 10.0);  // genuinely heterogeneous
  EXPECT_EQ(c.comm->links(), 50u);
}

TEST(BuildCluster, IdsAreDense) {
  ClusterConfig cfg;
  cfg.num_processors = 7;
  util::Rng rng(2);
  const Cluster c = build_cluster(cfg, rng);
  for (std::size_t j = 0; j < c.size(); ++j) {
    EXPECT_EQ(c.processors[j].id, static_cast<ProcId>(j));
  }
}

TEST(BuildCluster, DeterministicGivenSeed) {
  ClusterConfig cfg;
  util::Rng r1(42), r2(42);
  const Cluster a = build_cluster(cfg, r1);
  const Cluster b = build_cluster(cfg, r2);
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_DOUBLE_EQ(a.processors[j].base_rate, b.processors[j].base_rate);
    EXPECT_DOUBLE_EQ(a.comm->true_mean(static_cast<ProcId>(j)),
                     b.comm->true_mean(static_cast<ProcId>(j)));
  }
}

TEST(BuildCluster, ZeroCommOption) {
  ClusterConfig cfg;
  cfg.zero_comm = true;
  util::Rng rng(3);
  const Cluster c = build_cluster(cfg, rng);
  EXPECT_EQ(c.comm->name(), "zero");
  EXPECT_DOUBLE_EQ(c.comm->true_mean(0), 0.0);
}

TEST(BuildCluster, DriftingCommOption) {
  ClusterConfig cfg;
  cfg.drifting_comm = true;
  util::Rng rng(4);
  const Cluster c = build_cluster(cfg, rng);
  EXPECT_EQ(c.comm->name(), "drifting");
}

TEST(BuildCluster, AvailabilityKinds) {
  for (const auto kind :
       {AvailabilityKind::kSinusoidal, AvailabilityKind::kRandomWalk,
        AvailabilityKind::kTwoState}) {
    ClusterConfig cfg;
    cfg.num_processors = 4;
    cfg.availability = kind;
    util::Rng rng(5);
    const Cluster c = build_cluster(cfg, rng);
    for (const auto& p : c.processors) {
      const double m = p.availability->multiplier(100.0);
      EXPECT_GT(m, 0.0);
      EXPECT_LE(m, 1.0);
    }
  }
}

TEST(BuildCluster, RejectsInvalidConfigs) {
  util::Rng rng(6);
  ClusterConfig empty;
  empty.num_processors = 0;
  EXPECT_THROW(build_cluster(empty, rng), std::invalid_argument);
  ClusterConfig bad_rates;
  bad_rates.rate_lo = 0.0;
  EXPECT_THROW(build_cluster(bad_rates, rng), std::invalid_argument);
  ClusterConfig inverted;
  inverted.rate_lo = 100.0;
  inverted.rate_hi = 10.0;
  EXPECT_THROW(build_cluster(inverted, rng), std::invalid_argument);
}

TEST(Cluster, TotalRateSumsEffectiveRates) {
  ClusterConfig cfg;
  cfg.num_processors = 3;
  cfg.rate_lo = 10.0;
  cfg.rate_hi = 10.0;  // homogeneous for exactness
  util::Rng rng(7);
  const Cluster c = build_cluster(cfg, rng);
  EXPECT_DOUBLE_EQ(c.total_rate_at(0.0), 30.0);
}

TEST(Processor, RateAtAppliesAvailability) {
  Processor p;
  p.base_rate = 40.0;
  p.availability = std::make_shared<FixedAvailability>(0.5);
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 20.0);
}

}  // namespace
}  // namespace gasched::sim
