// Tests for the live in-process runtime. Wall-clock driven, so the
// assertions are about completion, accounting, and qualitative behaviour,
// not exact values. Task sizes are kept tiny so the suite stays fast.

#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"
#include "sched/heuristics.hpp"

namespace gasched::rt {
namespace {

workload::Task tiny_task(workload::TaskId id, double mflops = 1.0) {
  return {id, mflops, 0.0};
}

RuntimeConfig quick_config(std::size_t workers = 3) {
  RuntimeConfig cfg;
  cfg.worker_speeds.assign(workers, 1.0);
  cfg.work_scale = 0.05;  // 1-MFLOP task => 0.05 real MFLOP
  cfg.seed = 11;
  return cfg;
}

TEST(BurnMflops, ScalesRoughlyLinearly) {
  // Warm up, then check 8x work takes measurably longer.
  burn_mflops(1.0);
  const auto t0 = std::chrono::steady_clock::now();
  burn_mflops(4.0);
  const auto t1 = std::chrono::steady_clock::now();
  burn_mflops(32.0);
  const auto t2 = std::chrono::steady_clock::now();
  const double small = std::chrono::duration<double>(t1 - t0).count();
  const double large = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_GT(large, 2.0 * small);
}

TEST(Runtime, DrivesLocalSearchPoliciesUnmodified) {
  // The same SA / tabu objects used in simulation must run against real
  // threads: the runtime only speaks sim::SchedulingPolicy.
  meta::SaConfig sa_cfg;
  sa_cfg.batch.batch_size = 8;
  Runtime sa_runtime(quick_config(3), meta::make_sa_scheduler(sa_cfg));
  for (workload::TaskId id = 0; id < 24; ++id) {
    sa_runtime.submit(tiny_task(id));
  }
  EXPECT_EQ(sa_runtime.drain().tasks_completed, 24u);

  meta::TabuConfig ts_cfg;
  ts_cfg.batch.batch_size = 8;
  Runtime ts_runtime(quick_config(2), meta::make_tabu_scheduler(ts_cfg));
  for (workload::TaskId id = 0; id < 16; ++id) {
    ts_runtime.submit(tiny_task(id));
  }
  EXPECT_EQ(ts_runtime.drain().tasks_completed, 16u);
}

TEST(Runtime, CompletesAllSubmittedTasks) {
  Runtime runtime(quick_config(), sched::make_ef());
  for (int i = 0; i < 60; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 60u);
  std::size_t total = 0;
  double work = 0.0;
  for (const auto& w : r.per_worker) {
    total += w.tasks;
    work += w.work_mflops;
  }
  EXPECT_EQ(total, 60u);
  EXPECT_NEAR(work, 60.0, 1e-9);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_GE(r.scheduler_invocations, 1u);
}

TEST(Runtime, DrainIsRepeatable) {
  Runtime runtime(quick_config(2), sched::make_rr());
  for (int i = 0; i < 10; ++i) runtime.submit(tiny_task(i));
  EXPECT_EQ(runtime.drain().tasks_completed, 10u);
  for (int i = 10; i < 25; ++i) runtime.submit(tiny_task(i));
  EXPECT_EQ(runtime.drain().tasks_completed, 25u);  // cumulative
}

TEST(Runtime, UsesAllWorkersUnderRoundRobin) {
  Runtime runtime(quick_config(3), sched::make_rr());
  for (int i = 0; i < 30; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  for (const auto& w : r.per_worker) EXPECT_EQ(w.tasks, 10u);
}

TEST(Runtime, BatchTriggerDefersScheduling) {
  RuntimeConfig cfg = quick_config(2);
  cfg.min_batch_trigger = 1000;  // never reached; drain() must flush
  Runtime runtime(cfg, sched::make_ef());
  for (int i = 0; i < 8; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 8u);
  EXPECT_EQ(r.scheduler_invocations, 1u);  // exactly the drain flush
}

TEST(Runtime, HeterogeneousSpeedsShiftLoadUnderEf) {
  RuntimeConfig cfg;
  cfg.worker_speeds = {1.0, 0.2};  // worker 1 is 5x slower
  cfg.work_scale = 0.2;
  cfg.seed = 3;
  Runtime runtime(cfg, sched::make_ef());
  for (int i = 0; i < 40; ++i) runtime.submit(tiny_task(i, 2.0));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 40u);
  // EF should give the fast worker clearly more tasks.
  EXPECT_GT(r.per_worker[0].tasks, r.per_worker[1].tasks);
}

TEST(Runtime, EmulatedLatencyIsAccounted) {
  RuntimeConfig cfg = quick_config(2);
  cfg.dispatch_latency = {0.002, 0.002};
  Runtime runtime(cfg, sched::make_rr());
  for (int i = 0; i < 10; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  double comm = 0.0;
  for (const auto& w : r.per_worker) comm += w.comm_seconds;
  EXPECT_GT(comm, 0.005);  // 10 dispatches x ~2 ms
}

TEST(Runtime, GeneticSchedulerRunsLive) {
  // The paper's PN scheduler drives real threads through the same
  // interface it uses in simulation.
  exp::SchedulerParams opts;
  opts.set("max_generations", 30);
  opts.set("population", 10);
  opts.set("batch_size", 64);
  RuntimeConfig cfg = quick_config(3);
  cfg.min_batch_trigger = 64;
  Runtime runtime(cfg, exp::make_scheduler("PN", opts));
  for (int i = 0; i < 64; ++i) runtime.submit(tiny_task(i, 1.5));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 64u);
}

TEST(Runtime, RejectsInvalidConfig) {
  RuntimeConfig bad = quick_config();
  bad.worker_speeds = {0.0};
  EXPECT_THROW(Runtime(bad, sched::make_ef()), std::invalid_argument);
  RuntimeConfig bad2 = quick_config();
  bad2.work_scale = 0.0;
  EXPECT_THROW(Runtime(bad2, sched::make_ef()), std::invalid_argument);
  EXPECT_THROW(Runtime(quick_config(), nullptr), std::invalid_argument);
}

TEST(Runtime, HostCalibrationIsPositive) {
  Runtime runtime(quick_config(1), sched::make_rr());
  EXPECT_GT(runtime.host_mflops(), 0.0);
}

// --- Serve mode (open-loop arrivals over the SPSC dispatch plane) ------

ServeConfig quick_serve(double duration = 0.2, double rate = 2000.0) {
  ServeConfig cfg;
  cfg.duration_s = duration;
  cfg.rate = rate;
  return cfg;
}

TEST(RuntimeServe, CompletesAndAccounts) {
  Runtime runtime(quick_config(3), sched::make_rr());
  const workload::ConstantSizes sizes(1.0);
  const ServeResult r = runtime.serve(quick_serve(), sizes);
  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.offered, r.admitted + r.shed);
  EXPECT_EQ(r.completed, r.admitted);  // window is fully drained
  EXPECT_GT(r.throughput_per_sec, 0.0);
  // Latency summaries cover every completed task and are ordered.
  EXPECT_EQ(r.sched_latency.count, r.completed);
  EXPECT_EQ(r.queue_latency.count, r.completed);
  EXPECT_EQ(r.sojourn.count, r.completed);
  EXPECT_LE(r.sched_latency.p50, r.sched_latency.p99);
  EXPECT_LE(r.sched_latency.p99, r.sched_latency.p999);
  EXPECT_GE(r.sojourn.p50, r.queue_latency.p50);  // sojourn ⊇ queueing
  // Per-worker accounting adds up to the window's completions.
  std::size_t tasks = 0;
  for (const auto& w : r.per_worker) tasks += w.tasks;
  EXPECT_EQ(tasks, r.completed);
}

TEST(RuntimeServe, AllRoutePoliciesServe) {
  const workload::ConstantSizes sizes(1.0);
  for (const char* policy : {"rr", "least_loaded", "fastest"}) {
    Runtime runtime(quick_config(2), sched::make_rr());
    ServeConfig cfg = quick_serve(0.1);
    cfg.policy = policy;
    const ServeResult r = runtime.serve(cfg, sizes);
    EXPECT_EQ(r.completed, r.admitted) << policy;
    EXPECT_GT(r.completed, 0u) << policy;
  }
}

TEST(RuntimeServe, RepeatedWindowsAreIndependent) {
  Runtime runtime(quick_config(2), sched::make_rr());
  const workload::ConstantSizes sizes(1.0);
  const ServeResult a = runtime.serve(quick_serve(0.1), sizes);
  const ServeResult b = runtime.serve(quick_serve(0.1), sizes);
  EXPECT_EQ(a.completed, a.admitted);
  EXPECT_EQ(b.completed, b.admitted);
  // The second window reports only its own tasks.
  std::size_t tasks = 0;
  for (const auto& w : b.per_worker) tasks += w.tasks;
  EXPECT_EQ(tasks, b.completed);
}

TEST(RuntimeServe, ShedsUnderOverloadWithTinyQueue) {
  RuntimeConfig rcfg = quick_config(1);
  rcfg.work_scale = 1.0;   // ~1 real MFLOP per task: the worker saturates
  rcfg.ring_capacity = 16;  // small ring => backpressure reaches the queue
  Runtime runtime(rcfg, sched::make_rr());
  const workload::ConstantSizes sizes(1.0);
  ServeConfig cfg = quick_serve(0.2, 20000.0);
  cfg.queue_capacity = 8;
  const ServeResult r = runtime.serve(cfg, sizes);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.offered, r.admitted + r.shed);
  EXPECT_EQ(r.completed, r.admitted);
}

TEST(RuntimeServe, ArrivalPresetsDriveTheWindow) {
  Runtime runtime(quick_config(2), sched::make_rr());
  const workload::ConstantSizes sizes(1.0);
  ServeConfig flash = quick_serve(0.2, 2000.0);
  flash.arrival = "flash";
  flash.arrival_params.set("arrival_flash_start", 0.05);
  flash.arrival_params.set("arrival_flash_width", 0.05);
  flash.arrival_params.set("arrival_flash_mult", 5.0);
  const ServeResult r = runtime.serve(flash, sizes);
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.completed, r.admitted);
}

TEST(RuntimeServe, RejectsBadConfigs) {
  Runtime runtime(quick_config(1), sched::make_rr());
  const workload::ConstantSizes sizes(1.0);
  ServeConfig bad = quick_serve();
  bad.policy = "nope";
  EXPECT_THROW(runtime.serve(bad, sizes), std::runtime_error);
  ServeConfig bad2 = quick_serve();
  bad2.arrival = "lunar";  // unknown preset: error lists the valid names
  try {
    runtime.serve(bad2, sizes);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("diurnal"), std::string::npos);
  }
  ServeConfig bad3 = quick_serve();
  bad3.duration_s = 0.0;
  EXPECT_THROW(runtime.serve(bad3, sizes), std::invalid_argument);
  ServeConfig bad4 = quick_serve();
  bad4.rate = -1.0;
  EXPECT_THROW(runtime.serve(bad4, sizes), std::invalid_argument);
}

TEST(RuntimeServe, RefusesWithUndrainedBatchWork) {
  RuntimeConfig cfg = quick_config(1);
  cfg.min_batch_trigger = 1000;  // keep the submission unscheduled
  Runtime runtime(cfg, sched::make_rr());
  runtime.submit(tiny_task(0));
  const workload::ConstantSizes sizes(1.0);
  EXPECT_THROW(runtime.serve(quick_serve(), sizes), std::logic_error);
  EXPECT_EQ(runtime.drain().tasks_completed, 1u);  // still drainable
  EXPECT_GT(runtime.serve(quick_serve(0.05), sizes).completed, 0u);
}

TEST(RuntimeServe, BatchModeStillWorksAfterServing) {
  Runtime runtime(quick_config(2), sched::make_rr());
  const workload::ConstantSizes sizes(1.0);
  const ServeResult r = runtime.serve(quick_serve(0.1), sizes);
  EXPECT_EQ(r.completed, r.admitted);
  for (int i = 0; i < 10; ++i) runtime.submit(tiny_task(i));
  EXPECT_EQ(runtime.drain().tasks_completed, 10u + r.completed);
}

}  // namespace
}  // namespace gasched::rt
