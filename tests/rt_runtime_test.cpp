// Tests for the live in-process runtime. Wall-clock driven, so the
// assertions are about completion, accounting, and qualitative behaviour,
// not exact values. Task sizes are kept tiny so the suite stays fast.

#include "rt/runtime.hpp"

#include <gtest/gtest.h>

#include "exp/scenario.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"
#include "sched/heuristics.hpp"

namespace gasched::rt {
namespace {

workload::Task tiny_task(workload::TaskId id, double mflops = 1.0) {
  return {id, mflops, 0.0};
}

RuntimeConfig quick_config(std::size_t workers = 3) {
  RuntimeConfig cfg;
  cfg.worker_speeds.assign(workers, 1.0);
  cfg.work_scale = 0.05;  // 1-MFLOP task => 0.05 real MFLOP
  cfg.seed = 11;
  return cfg;
}

TEST(BurnMflops, ScalesRoughlyLinearly) {
  // Warm up, then check 8x work takes measurably longer.
  burn_mflops(1.0);
  const auto t0 = std::chrono::steady_clock::now();
  burn_mflops(4.0);
  const auto t1 = std::chrono::steady_clock::now();
  burn_mflops(32.0);
  const auto t2 = std::chrono::steady_clock::now();
  const double small = std::chrono::duration<double>(t1 - t0).count();
  const double large = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_GT(large, 2.0 * small);
}

TEST(Runtime, DrivesLocalSearchPoliciesUnmodified) {
  // The same SA / tabu objects used in simulation must run against real
  // threads: the runtime only speaks sim::SchedulingPolicy.
  meta::SaConfig sa_cfg;
  sa_cfg.batch.batch_size = 8;
  Runtime sa_runtime(quick_config(3), meta::make_sa_scheduler(sa_cfg));
  for (workload::TaskId id = 0; id < 24; ++id) {
    sa_runtime.submit(tiny_task(id));
  }
  EXPECT_EQ(sa_runtime.drain().tasks_completed, 24u);

  meta::TabuConfig ts_cfg;
  ts_cfg.batch.batch_size = 8;
  Runtime ts_runtime(quick_config(2), meta::make_tabu_scheduler(ts_cfg));
  for (workload::TaskId id = 0; id < 16; ++id) {
    ts_runtime.submit(tiny_task(id));
  }
  EXPECT_EQ(ts_runtime.drain().tasks_completed, 16u);
}

TEST(Runtime, CompletesAllSubmittedTasks) {
  Runtime runtime(quick_config(), sched::make_ef());
  for (int i = 0; i < 60; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 60u);
  std::size_t total = 0;
  double work = 0.0;
  for (const auto& w : r.per_worker) {
    total += w.tasks;
    work += w.work_mflops;
  }
  EXPECT_EQ(total, 60u);
  EXPECT_NEAR(work, 60.0, 1e-9);
  EXPECT_GT(r.makespan_seconds, 0.0);
  EXPECT_GE(r.scheduler_invocations, 1u);
}

TEST(Runtime, DrainIsRepeatable) {
  Runtime runtime(quick_config(2), sched::make_rr());
  for (int i = 0; i < 10; ++i) runtime.submit(tiny_task(i));
  EXPECT_EQ(runtime.drain().tasks_completed, 10u);
  for (int i = 10; i < 25; ++i) runtime.submit(tiny_task(i));
  EXPECT_EQ(runtime.drain().tasks_completed, 25u);  // cumulative
}

TEST(Runtime, UsesAllWorkersUnderRoundRobin) {
  Runtime runtime(quick_config(3), sched::make_rr());
  for (int i = 0; i < 30; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  for (const auto& w : r.per_worker) EXPECT_EQ(w.tasks, 10u);
}

TEST(Runtime, BatchTriggerDefersScheduling) {
  RuntimeConfig cfg = quick_config(2);
  cfg.min_batch_trigger = 1000;  // never reached; drain() must flush
  Runtime runtime(cfg, sched::make_ef());
  for (int i = 0; i < 8; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 8u);
  EXPECT_EQ(r.scheduler_invocations, 1u);  // exactly the drain flush
}

TEST(Runtime, HeterogeneousSpeedsShiftLoadUnderEf) {
  RuntimeConfig cfg;
  cfg.worker_speeds = {1.0, 0.2};  // worker 1 is 5x slower
  cfg.work_scale = 0.2;
  cfg.seed = 3;
  Runtime runtime(cfg, sched::make_ef());
  for (int i = 0; i < 40; ++i) runtime.submit(tiny_task(i, 2.0));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 40u);
  // EF should give the fast worker clearly more tasks.
  EXPECT_GT(r.per_worker[0].tasks, r.per_worker[1].tasks);
}

TEST(Runtime, EmulatedLatencyIsAccounted) {
  RuntimeConfig cfg = quick_config(2);
  cfg.dispatch_latency = {0.002, 0.002};
  Runtime runtime(cfg, sched::make_rr());
  for (int i = 0; i < 10; ++i) runtime.submit(tiny_task(i));
  const RuntimeResult r = runtime.drain();
  double comm = 0.0;
  for (const auto& w : r.per_worker) comm += w.comm_seconds;
  EXPECT_GT(comm, 0.005);  // 10 dispatches x ~2 ms
}

TEST(Runtime, GeneticSchedulerRunsLive) {
  // The paper's PN scheduler drives real threads through the same
  // interface it uses in simulation.
  exp::SchedulerParams opts;
  opts.set("max_generations", 30);
  opts.set("population", 10);
  opts.set("batch_size", 64);
  RuntimeConfig cfg = quick_config(3);
  cfg.min_batch_trigger = 64;
  Runtime runtime(cfg, exp::make_scheduler("PN", opts));
  for (int i = 0; i < 64; ++i) runtime.submit(tiny_task(i, 1.5));
  const RuntimeResult r = runtime.drain();
  EXPECT_EQ(r.tasks_completed, 64u);
}

TEST(Runtime, RejectsInvalidConfig) {
  RuntimeConfig bad = quick_config();
  bad.worker_speeds = {0.0};
  EXPECT_THROW(Runtime(bad, sched::make_ef()), std::invalid_argument);
  RuntimeConfig bad2 = quick_config();
  bad2.work_scale = 0.0;
  EXPECT_THROW(Runtime(bad2, sched::make_ef()), std::invalid_argument);
  EXPECT_THROW(Runtime(quick_config(), nullptr), std::invalid_argument);
}

TEST(Runtime, HostCalibrationIsPositive) {
  Runtime runtime(quick_config(1), sched::make_rr());
  EXPECT_GT(runtime.host_mflops(), 0.0);
}

}  // namespace
}  // namespace gasched::rt
