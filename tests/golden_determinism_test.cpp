// Golden regression tests: exact simulation outputs for pinned seeds.
//
// The library promises bit-reproducibility — xoshiro256** substreams per
// replication, portable inverse-CDF samplers, no dependence on thread
// scheduling or the standard library's distribution implementations.
// These tests pin that contract: if any change alters an RNG stream, the
// event order, or a scheduler's arithmetic, the exact doubles below
// change and the diff shows up here instead of silently shifting every
// benchmark.
//
// When a change *intentionally* alters results (e.g. a new RNG draw in a
// scheduler), regenerate the constants with the printing snippet in this
// file's history and say so in the commit message.

#include <gtest/gtest.h>

#include "core/numeric.hpp"
#include "exp/runner.hpp"

namespace gasched::exp {
namespace {

// The goldens below pin the *exact* numeric mode's doubles. Pin the
// process default so a GASCHED_NUMERIC_MODE=fast CI run (which exercises
// the SIMD path everywhere else) cannot disturb them — fast-mode results
// are tolerance-bounded, not bit-pinned (docs/evaluation.md).
const struct PinExactMode {
  PinExactMode() { core::set_default_numeric_mode(core::NumericMode::kExact); }
} pin_exact_mode;

Scenario golden_scenario() {
  Scenario s;
  s.name = "golden";
  s.cluster = paper_cluster(10.0, 8);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 1000.0;
  s.workload.count = 200;
  s.seed = 987654321;
  s.replications = 2;
  return s;
}

SchedulerParams golden_opts() {
  SchedulerParams o;
  o.set("batch_size", 50);
  o.set("max_generations", 40);
  o.set("population", 12);
  return o;
}

struct Golden {
  std::string kind;
  double makespan[2];
  double response[2];
};

// Captured 2026-06-12 at the commit introducing this test.
const Golden kGolden[] = {
    {"PN",
     {533.38076700184502, 609.55880600455134},
     {265.24668627213669, 297.66190815501085}},
    {"EF",
     {595.92641545973072, 766.75149709238076},
     {258.31307270289938, 305.37391944866107}},
    {"SA",
     {519.23513123779287, 597.24464984579515},
     {264.42731134918745, 295.45747820857338}},
    {"TS",
     {520.6251024967529, 586.02649005207411},
     {264.14630247102627, 299.16590101334418}},
    {"ACO",
     {533.35321338274696, 610.99617088239199},
     {264.39984671674409, 292.48581488777694}},
    {"RR",
     {1345.6660362725179, 1151.838229634337},
     {325.95767505375056, 340.01369278259932}},
};

class GoldenTest : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTest, ExactMakespanAndResponse) {
  const auto& g = GetParam();
  const auto runs = run_replications(golden_scenario(), g.kind, golden_opts());
  ASSERT_EQ(runs.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(runs[r].makespan, g.makespan[r])
        << g.kind << " rep " << r;
    EXPECT_DOUBLE_EQ(runs[r].mean_response_time, g.response[r])
        << g.kind << " rep " << r;
    EXPECT_EQ(runs[r].tasks_completed, 200u);
  }
}

TEST_P(GoldenTest, ParallelExecutionMatchesGolden) {
  // The same constants must hold regardless of the thread pool: parallel
  // replications derive their streams from (seed, rep), never from
  // scheduling order.
  const auto& g = GetParam();
  const auto runs = run_replications(golden_scenario(), g.kind, golden_opts(),
                                     /*parallel=*/true);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(runs[r].makespan, g.makespan[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, GoldenTest,
                         ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return info.param.kind;
                         });

}  // namespace
}  // namespace gasched::exp
