// Tests for permutation crossover operators. The central property: any
// child of two permutations of the same gene set is itself a permutation
// of that gene set (exercised across operators, sizes, and seeds).

#include "ga/crossover.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

namespace gasched::ga {
namespace {

Chromosome iota_chromosome(std::size_t n) {
  Chromosome c(n);
  for (std::size_t i = 0; i < n; ++i) c[i] = static_cast<Gene>(i);
  return c;
}

/// Chromosome with negative "delimiter" genes mixed in, mirroring the
/// scheduling encoding.
Chromosome schedule_like(std::size_t tasks, std::size_t delims,
                         util::Rng& rng) {
  Chromosome c;
  for (std::size_t i = 0; i < tasks; ++i) c.push_back(static_cast<Gene>(i));
  for (std::size_t k = 0; k < delims; ++k) {
    c.push_back(-static_cast<Gene>(k) - 1);
  }
  rng.shuffle(c);
  return c;
}

using OpFactory = std::shared_ptr<CrossoverOp>;

class CrossoverContract
    : public ::testing::TestWithParam<std::tuple<OpFactory, std::size_t>> {};

TEST_P(CrossoverContract, ChildrenArePermutationsOfParents) {
  const auto& [op, n] = GetParam();
  util::Rng rng(1234 + n);
  for (int trial = 0; trial < 200; ++trial) {
    Chromosome a = schedule_like(n, n / 4 + 1, rng);
    Chromosome b = a;
    rng.shuffle(b);
    const auto [c1, c2] = op->apply(a, b, rng);
    ASSERT_EQ(c1.size(), a.size());
    ASSERT_EQ(c2.size(), a.size());
    ASSERT_TRUE(is_permutation_of_distinct(c1)) << op->name();
    ASSERT_TRUE(is_permutation_of_distinct(c2)) << op->name();
    ASSERT_TRUE(same_gene_set(c1, a)) << op->name();
    ASSERT_TRUE(same_gene_set(c2, a)) << op->name();
  }
}

TEST_P(CrossoverContract, IdenticalParentsYieldIdenticalChildren) {
  const auto& [op, n] = GetParam();
  util::Rng rng(77 + n);
  const Chromosome a = schedule_like(n, 2, rng);
  const auto [c1, c2] = op->apply(a, a, rng);
  EXPECT_EQ(c1, a);
  EXPECT_EQ(c2, a);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorsAndSizes, CrossoverContract,
    ::testing::Combine(
        ::testing::Values(std::make_shared<CycleCrossover>(),
                          std::make_shared<PmxCrossover>(),
                          std::make_shared<OrderCrossover>(),
                          std::make_shared<PositionCrossover>()),
        ::testing::Values(std::size_t{2}, std::size_t{3}, std::size_t{8},
                          std::size_t{40}, std::size_t{150})));

TEST(CycleCrossover, PreservesPositionOwnership) {
  // CX property: every child position holds the gene one of the parents
  // had at that position.
  CycleCrossover cx;
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Chromosome a = iota_chromosome(20);
    Chromosome b = a;
    rng.shuffle(a);
    rng.shuffle(b);
    const auto [c1, c2] = cx.apply(a, b, rng);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(c1[i] == a[i] || c1[i] == b[i]);
      EXPECT_TRUE(c2[i] == a[i] || c2[i] == b[i]);
    }
  }
}

TEST(CycleCrossover, ChildrenAreComplementary) {
  // Where c1 takes from a, c2 takes from b (and vice versa).
  CycleCrossover cx;
  util::Rng rng(6);
  Chromosome a = iota_chromosome(12);
  Chromosome b = a;
  rng.shuffle(b);
  const auto [c1, c2] = cx.apply(a, b, rng);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (c1[i] == a[i]) {
      EXPECT_EQ(c2[i], b[i]);
    } else {
      EXPECT_EQ(c1[i], b[i]);
      EXPECT_EQ(c2[i], a[i]);
    }
  }
}

TEST(CycleCrossover, MismatchedGeneSetsThrow) {
  CycleCrossover cx;
  util::Rng rng(7);
  const Chromosome a{0, 1, 2};
  const Chromosome b{0, 1, 99};
  EXPECT_THROW(cx.apply(a, b, rng), std::invalid_argument);
}

TEST(Crossover, UnequalLengthsThrow) {
  CycleCrossover cx;
  PmxCrossover pmx;
  util::Rng rng(8);
  const Chromosome a{0, 1, 2};
  const Chromosome b{0, 1};
  EXPECT_THROW(cx.apply(a, b, rng), std::invalid_argument);
  EXPECT_THROW(pmx.apply(a, b, rng), std::invalid_argument);
}

TEST(Crossover, EmptyParentsThrow) {
  OrderCrossover ox;
  util::Rng rng(9);
  EXPECT_THROW(ox.apply({}, {}, rng), std::invalid_argument);
}

TEST(Crossover, ProducesNovelOffspringOnDifferentParents) {
  // Statistical: across many trials, at least some children must differ
  // from both parents (operators genuinely recombine).
  util::Rng rng(10);
  for (const OpFactory& op :
       {OpFactory(std::make_shared<CycleCrossover>()),
        OpFactory(std::make_shared<PmxCrossover>()),
        OpFactory(std::make_shared<OrderCrossover>()),
        OpFactory(std::make_shared<PositionCrossover>())}) {
    int novel = 0;
    for (int trial = 0; trial < 50; ++trial) {
      Chromosome a = iota_chromosome(30);
      Chromosome b = a;
      rng.shuffle(a);
      rng.shuffle(b);
      const auto [c1, c2] = op->apply(a, b, rng);
      if (c1 != a && c1 != b) ++novel;
      if (c2 != a && c2 != b) ++novel;
    }
    EXPECT_GT(novel, 10) << op->name();
  }
}

}  // namespace
}  // namespace gasched::ga
