// Tests for the string-keyed scheduler/distribution registries: name
// round-trips, case-insensitive lookup, tag-derived enumeration order,
// duplicate-registration rejection, the contents of unknown-name errors,
// and out-of-library registration through the public API.

#include "exp/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/runner.hpp"

namespace gasched::exp {
namespace {

SchedulerParams quick_params() {
  SchedulerParams p;
  p.set("batch_size", 30);
  p.set("max_generations", 20);
  p.set("population", 8);
  return p;
}

bool listed(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(SchedulerRegistry, SeventeenBuiltinsRegistered) {
  const auto names = SchedulerRegistry::instance().names();
  EXPECT_GE(names.size(), 17u);  // >= so user entries in-process don't break
  for (const std::string expected :
       {"EF", "LL", "RR", "ZO", "PN", "MM", "MX", "MET", "KPB", "SUF", "OLB",
        "DUP", "SA", "TS", "ACO", "HC", "PNI"}) {
    EXPECT_TRUE(listed(names, expected)) << expected;
  }
}

TEST(SchedulerRegistry, EveryRegisteredNameRoundTripsThroughItsFactory) {
  const auto& registry = SchedulerRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto policy = registry.create(name, quick_params());
    ASSERT_NE(policy, nullptr) << name;
    // The policy's self-reported name starts with the registry name
    // (KPB reports its percentage, e.g. "KPB20").
    EXPECT_EQ(policy->name().rfind(name, 0), 0u)
        << name << " vs " << policy->name();
    EXPECT_EQ(registry.canonical_name(name), name);
    EXPECT_TRUE(registry.contains(name));
    EXPECT_FALSE(registry.find(name).summary.empty()) << name;
  }
}

TEST(SchedulerRegistry, LookupIsCaseInsensitive) {
  const auto& registry = SchedulerRegistry::instance();
  EXPECT_EQ(registry.canonical_name("pn"), "PN");
  EXPECT_EQ(registry.canonical_name("Aco"), "ACO");
  EXPECT_EQ(registry.canonical_name("pni"), "PNI");
  EXPECT_TRUE(registry.contains("mEt"));
  EXPECT_EQ(registry.create("zo", quick_params())->name(), "ZO");
}

TEST(SchedulerRegistry, UnknownNameErrorListsEveryRegisteredName) {
  try {
    SchedulerRegistry::instance().create("XYZ", quick_params());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("XYZ"), std::string::npos) << msg;
    for (const auto& name : SchedulerRegistry::instance().names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << ": " << msg;
    }
  }
}

TEST(SchedulerRegistry, DuplicateRegistrationRejectedCaseInsensitively) {
  auto& registry = SchedulerRegistry::instance();
  SchedulerEntry dup;
  dup.name = "pn";  // clashes with the built-in "PN"
  dup.summary = "dup";
  dup.factory = [](const SchedulerParams&) {
    return SchedulerRegistry::instance().create("RR");
  };
  EXPECT_THROW(registry.add(dup), std::invalid_argument);
}

TEST(SchedulerRegistry, RejectsEmptyNameAndMissingFactory) {
  auto& registry = SchedulerRegistry::instance();
  SchedulerEntry no_name;
  no_name.factory = [](const SchedulerParams&) {
    return SchedulerRegistry::instance().create("RR");
  };
  EXPECT_THROW(registry.add(no_name), std::invalid_argument);
  SchedulerEntry no_factory;
  no_factory.name = "NOFACTORY";
  EXPECT_THROW(registry.add(no_factory), std::invalid_argument);
}

TEST(SchedulerRegistry, UserEntryRunsThroughTheHarnessByName) {
  auto& registry = SchedulerRegistry::instance();
  if (!registry.contains("TESTRR")) {
    registry.add({.name = "TESTRR",
                  .summary = "RR under a custom name (registry test)",
                  .factory = [](const SchedulerParams& p) {
                    return make_scheduler("RR", p);
                  }});
  }
  EXPECT_TRUE(listed(registry.names(), "TESTRR"));

  Scenario s;
  s.name = "registry";
  s.cluster = paper_cluster(5.0, 4);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 100.0;
  s.workload.count = 40;
  s.replications = 2;
  const auto cell = run_cell(s, "testrr", quick_params());
  EXPECT_EQ(cell.scheduler, "TESTRR");
  EXPECT_GT(cell.makespan.mean, 0.0);
}

TEST(SchedulerRegistry, TagSetsMatchTheLegacyLists) {
  EXPECT_EQ(all_schedulers(),
            (std::vector<std::string>{"EF", "LL", "RR", "ZO", "PN", "MM",
                                      "MX"}));
  EXPECT_EQ(extended_schedulers(),
            (std::vector<std::string>{"EF", "LL", "RR", "ZO", "PN", "MM",
                                      "MX", "MET", "KPB", "SUF", "OLB",
                                      "DUP"}));
  EXPECT_EQ(metaheuristic_schedulers(),
            (std::vector<std::string>{"ZO", "PN", "SA", "TS", "ACO", "HC",
                                      "PNI"}));
}

TEST(Params, SetAcceptsEveryArithmeticTypeUnambiguously) {
  Params p;
  p.set("i", 4)
      .set("u", 4u)
      .set("s", std::size_t{5})
      .set("l", std::int64_t{-6})
      .set("f", 1.5f)
      .set("d", 2.25)
      .set("b", true)
      .set("str", "seven");
  EXPECT_EQ(p.get_int("i", 0), 4);
  EXPECT_EQ(p.get_size("u", 0), 4u);
  EXPECT_EQ(p.get_size("s", 0), 5u);
  EXPECT_EQ(p.get_int("l", 0), -6);
  EXPECT_DOUBLE_EQ(p.get_double("f", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(p.get_double("d", 0.0), 2.25);
  EXPECT_TRUE(p.get_bool("b", false));
  EXPECT_EQ(p.get("str", ""), "seven");
}

TEST(DistributionRegistry, BuiltinFamiliesIncludeHeavyTails) {
  const auto names = DistributionRegistry::instance().names();
  for (const std::string expected :
       {"normal", "uniform", "poisson", "constant", "pareto", "bimodal"}) {
    EXPECT_TRUE(listed(names, expected)) << expected;
  }
}

TEST(DistributionRegistry, CreateHonoursNamedKeys) {
  WorkloadSpec spec;
  spec.dist = "PARETO";  // case-insensitive
  spec.params.set("alpha", 1.5).set("lo", 20.0).set("hi", 2000.0);
  const auto d = DistributionRegistry::instance().create(spec);
  EXPECT_EQ(d->name(), "pareto");
  EXPECT_DOUBLE_EQ(d->min_size(), 20.0);
  util::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double x = d->sample(rng);
    EXPECT_GE(x, 20.0);
    EXPECT_LE(x, 2000.0);
  }
}

TEST(DistributionRegistry, UnknownFamilyErrorListsRegisteredOnes) {
  WorkloadSpec spec;
  spec.dist = "zipf";
  try {
    DistributionRegistry::instance().create(spec);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zipf"), std::string::npos) << msg;
    for (const auto& name : DistributionRegistry::instance().names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name << ": " << msg;
    }
  }
}

TEST(DistributionRegistry, DuplicateRegistrationRejected) {
  DistributionEntry dup;
  dup.name = "Uniform";  // clashes with the built-in "uniform"
  dup.summary = "dup";
  dup.factory = [](const WorkloadSpec&) {
    return std::make_unique<workload::ConstantSizes>(1.0);
  };
  EXPECT_THROW(DistributionRegistry::instance().add(dup),
               std::invalid_argument);
}

}  // namespace
}  // namespace gasched::exp
