// Tests for task-size distributions and workload generation (paper §4:
// uniform, normal, and Poisson task sets).

#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "util/stats.hpp"

namespace gasched::workload {
namespace {

TEST(UniformSizes, RespectsBounds) {
  UniformSizes dist(10.0, 100.0);
  util::Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist.sample(rng);
    ASSERT_GE(v, 10.0);
    ASSERT_LE(v, 100.0);
  }
}

TEST(UniformSizes, MeanMatches) {
  UniformSizes dist(10.0, 1000.0);
  util::Rng rng(2);
  util::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(dist.sample(rng));
  EXPECT_NEAR(rs.mean(), dist.mean(), 5.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 505.0);
}

TEST(UniformSizes, RejectsInvalidRange) {
  EXPECT_THROW(UniformSizes(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(UniformSizes(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(UniformSizes(10.0, 5.0), std::invalid_argument);
}

TEST(NormalSizes, PaperParametersMatchMoments) {
  // Paper §4.3: mean 1000 MFLOPs, variance 9e5 (σ ≈ 948.7). Truncating
  // below at the floor (resampling) shifts the mean up to the analytic
  // truncated-normal mean μ + σ·φ(α)/(1−Φ(α)) ≈ 1256 for α ≈ −1.053.
  NormalSizes dist(1000.0, 9e5);
  util::Rng rng(3);
  util::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(dist.sample(rng));
  EXPECT_NEAR(rs.mean(), 1256.0, 30.0);
  EXPECT_GT(rs.min(), 0.0);
}

TEST(NormalSizes, AlwaysAboveFloor) {
  NormalSizes dist(100.0, 1e6, 5.0);  // heavy truncation
  util::Rng rng(4);
  for (int i = 0; i < 50000; ++i) ASSERT_GE(dist.sample(rng), 5.0);
}

TEST(NormalSizes, RejectsInvalidParameters) {
  EXPECT_THROW(NormalSizes(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(NormalSizes(10.0, -1.0), std::invalid_argument);
  EXPECT_THROW(NormalSizes(10.0, 1.0, 0.0), std::invalid_argument);
}

TEST(PoissonSizes, MeanMatches) {
  PoissonSizes dist(100.0);
  util::Rng rng(5);
  util::RunningStats rs;
  for (int i = 0; i < 100000; ++i) rs.add(dist.sample(rng));
  EXPECT_NEAR(rs.mean(), 100.0, 1.0);
}

TEST(PoissonSizes, SmallMeanClampsZeros) {
  PoissonSizes dist(0.5, 1.0);
  util::Rng rng(6);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(dist.sample(rng), 1.0);
}

TEST(ConstantSizes, AlwaysSameValue) {
  ConstantSizes dist(42.0);
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 42.0);
}

TEST(Generate, CountAndDenseIds) {
  UniformSizes dist(10.0, 100.0);
  util::Rng rng(8);
  const Workload w = generate(dist, 500, rng);
  ASSERT_EQ(w.size(), 500u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w.tasks[i].id, static_cast<TaskId>(i));
    EXPECT_GT(w.tasks[i].size_mflops, 0.0);
  }
}

TEST(Generate, AllAtStartArrivals) {
  UniformSizes dist(10.0, 100.0);
  util::Rng rng(9);
  const Workload w = generate(dist, 100, rng);
  for (const auto& t : w.tasks) EXPECT_DOUBLE_EQ(t.arrival_time, 0.0);
}

TEST(Generate, StreamingArrivalsAreMonotone) {
  UniformSizes dist(10.0, 100.0);
  util::Rng rng(10);
  ArrivalConfig arr;
  arr.all_at_start = false;
  arr.mean_interarrival = 2.0;
  const Workload w = generate(dist, 200, rng, arr);
  for (std::size_t i = 1; i < w.size(); ++i) {
    EXPECT_GE(w.tasks[i].arrival_time, w.tasks[i - 1].arrival_time);
  }
  EXPECT_GT(w.tasks.back().arrival_time, 0.0);
}

TEST(Generate, DeterministicGivenSeed) {
  UniformSizes dist(10.0, 100.0);
  util::Rng r1(11), r2(11);
  const Workload a = generate(dist, 50, r1);
  const Workload b = generate(dist, 50, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].size_mflops, b.tasks[i].size_mflops);
  }
}

TEST(Workload, AggregateHelpers) {
  Workload w;
  w.tasks = {{0, 10.0, 0.0}, {1, 30.0, 0.0}, {2, 20.0, 0.0}};
  EXPECT_DOUBLE_EQ(w.total_mflops(), 60.0);
  EXPECT_DOUBLE_EQ(w.max_mflops(), 30.0);
  EXPECT_DOUBLE_EQ(w.min_mflops(), 10.0);
  EXPECT_FALSE(w.empty());
}

TEST(Factories, PaperFamiliesHaveDocumentedParameters) {
  EXPECT_DOUBLE_EQ(make_normal_paper()->mean(), 1000.0);
  EXPECT_EQ(make_normal_paper()->name(), "normal");
  EXPECT_DOUBLE_EQ(make_uniform_narrow()->mean(), 55.0);
  EXPECT_DOUBLE_EQ(make_uniform_mid()->mean(), 505.0);
  EXPECT_DOUBLE_EQ(make_uniform_wide()->mean(), 5005.0);
  EXPECT_DOUBLE_EQ(make_poisson_small()->mean(), 10.0);
  EXPECT_DOUBLE_EQ(make_poisson_large()->mean(), 100.0);
}

class DistributionContract
    : public ::testing::TestWithParam<std::shared_ptr<SizeDistribution>> {};

TEST_P(DistributionContract, SamplesArePositiveAndAboveDeclaredMin) {
  auto dist = GetParam();
  util::Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const double v = dist->sample(rng);
    ASSERT_GT(v, 0.0);
    ASSERT_GE(v, dist->min_size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionContract,
    ::testing::Values(std::make_shared<UniformSizes>(10.0, 100.0),
                      std::make_shared<NormalSizes>(1000.0, 9e5),
                      std::make_shared<PoissonSizes>(10.0),
                      std::make_shared<PoissonSizes>(100.0),
                      std::make_shared<ConstantSizes>(5.0)));

}  // namespace
}  // namespace gasched::workload
