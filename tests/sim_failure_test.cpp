// Tests for the failure model and the engine's requeue-on-failure
// behaviour (the design rationale for scheduler-side queues, paper §3).

#include "sim/failure.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace gasched::sim {
namespace {

using workload::Task;
using workload::Workload;

class GreedyPolicy final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view, std::deque<Task>& queue,
                         util::Rng&) override {
    auto a = BatchAssignment::empty(view.size());
    std::size_t j = 0;
    while (!queue.empty()) {
      a.per_proc[j % view.size()].push_back(queue.front().id);
      queue.pop_front();
      ++j;
    }
    return a;
  }
  std::string name() const override { return "greedy"; }
};

Cluster simple_cluster(std::size_t procs, double rate) {
  ClusterConfig cfg;
  cfg.num_processors = procs;
  cfg.rate_lo = cfg.rate_hi = rate;
  cfg.zero_comm = true;
  util::Rng rng(7);
  return build_cluster(cfg, rng);
}

Workload constant_workload(std::size_t count, double size) {
  workload::ConstantSizes dist(size);
  util::Rng rng(3);
  return workload::generate(dist, count, rng);
}

TEST(FailureTrace, EmptyByDefault) {
  FailureTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_TRUE(trace.outages(0).empty());
  EXPECT_TRUE(trace.up_at(0, 123.0));
  EXPECT_EQ(trace.total_outages(), 0u);
}

TEST(FailureTrace, GeneratesSortedNonOverlappingOutages) {
  FailureConfig cfg;
  cfg.mean_uptime = 100.0;
  cfg.mean_downtime = 20.0;
  cfg.horizon = 5000.0;
  util::Rng rng(1);
  FailureTrace trace(cfg, 10, rng);
  EXPECT_FALSE(trace.empty());
  for (ProcId j = 0; j < 10; ++j) {
    SimTime prev_up = 0.0;
    for (const auto& o : trace.outages(j)) {
      EXPECT_GT(o.down, prev_up);
      EXPECT_GT(o.up, o.down);
      prev_up = o.up;
    }
  }
}

TEST(FailureTrace, UpAtMatchesOutages) {
  FailureConfig cfg;
  cfg.mean_uptime = 50.0;
  cfg.mean_downtime = 10.0;
  cfg.horizon = 1000.0;
  util::Rng rng(2);
  FailureTrace trace(cfg, 3, rng);
  for (ProcId j = 0; j < 3; ++j) {
    for (const auto& o : trace.outages(j)) {
      EXPECT_TRUE(trace.up_at(j, o.down - 1e-6));
      EXPECT_FALSE(trace.up_at(j, o.down));
      EXPECT_FALSE(trace.up_at(j, 0.5 * (o.down + o.up)));
      EXPECT_TRUE(trace.up_at(j, o.up));
    }
  }
}

TEST(FailureTrace, FractionZeroMeansNoFailures) {
  FailureConfig cfg;
  cfg.failing_fraction = 0.0;
  util::Rng rng(3);
  FailureTrace trace(cfg, 10, rng);
  EXPECT_TRUE(trace.empty());
}

TEST(FailureTrace, RejectsBadConfig) {
  util::Rng rng(4);
  FailureConfig bad;
  bad.mean_uptime = 0.0;
  EXPECT_THROW(FailureTrace(bad, 2, rng), std::invalid_argument);
  FailureConfig bad2;
  bad2.failing_fraction = 2.0;
  EXPECT_THROW(FailureTrace(bad2, 2, rng), std::invalid_argument);
}

TEST(EngineFailures, AllTasksStillCompleteExactlyOnce) {
  const Cluster c = simple_cluster(4, 10.0);
  const Workload w = constant_workload(40, 100.0);  // 10 s per task
  FailureConfig fcfg;
  fcfg.mean_uptime = 60.0;
  fcfg.mean_downtime = 15.0;
  fcfg.horizon = 100000.0;
  util::Rng frng(5);
  const FailureTrace trace(fcfg, 4, frng);
  ASSERT_FALSE(trace.empty());
  EngineConfig ecfg;
  ecfg.failures = &trace;
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  EXPECT_EQ(r.tasks_completed, 40u);
  std::size_t total_tasks = 0;
  double total_work = 0.0;
  for (const auto& p : r.per_proc) {
    total_tasks += p.tasks;
    total_work += p.work_mflops;
  }
  EXPECT_EQ(total_tasks, 40u);
  EXPECT_NEAR(total_work, w.total_mflops(), 1e-6);
  EXPECT_GT(r.tasks_requeued, 0u);
}

TEST(EngineFailures, MakespanLongerThanWithoutFailures) {
  const Cluster c = simple_cluster(2, 10.0);
  const Workload w = constant_workload(30, 200.0);
  FailureConfig fcfg;
  fcfg.mean_uptime = 100.0;
  fcfg.mean_downtime = 100.0;
  fcfg.horizon = 1000000.0;
  util::Rng frng(6);
  const FailureTrace trace(fcfg, 2, frng);
  GreedyPolicy p1, p2;
  const auto without = simulate(c, w, p1, util::Rng(1));
  EngineConfig ecfg;
  ecfg.failures = &trace;
  const auto with = simulate(c, w, p2, util::Rng(1), ecfg);
  EXPECT_GT(with.makespan, without.makespan);
}

TEST(EngineFailures, FailureCountsRecorded) {
  const Cluster c = simple_cluster(2, 10.0);
  const Workload w = constant_workload(20, 100.0);
  FailureConfig fcfg;
  fcfg.mean_uptime = 40.0;
  fcfg.mean_downtime = 10.0;
  fcfg.horizon = 100000.0;
  util::Rng frng(7);
  const FailureTrace trace(fcfg, 2, frng);
  EngineConfig ecfg;
  ecfg.failures = &trace;
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  std::size_t failures = 0;
  for (const auto& p : r.per_proc) failures += p.failures;
  EXPECT_GT(failures, 0u);
}

TEST(EngineFailures, DeterministicGivenSeeds) {
  const Cluster c = simple_cluster(3, 20.0);
  const Workload w = constant_workload(30, 150.0);
  FailureConfig fcfg;
  fcfg.mean_uptime = 50.0;
  fcfg.mean_downtime = 20.0;
  fcfg.horizon = 100000.0;
  util::Rng f1(8);
  const FailureTrace trace(fcfg, 3, f1);
  EngineConfig ecfg;
  ecfg.failures = &trace;
  GreedyPolicy p1, p2;
  const auto a = simulate(c, w, p1, util::Rng(2), ecfg);
  const auto b = simulate(c, w, p2, util::Rng(2), ecfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.tasks_requeued, b.tasks_requeued);
}

TEST(EngineFailures, TraceAttemptsReflectRetries) {
  const Cluster c = simple_cluster(2, 10.0);
  const Workload w = constant_workload(20, 200.0);  // 20 s per task
  FailureConfig fcfg;
  fcfg.mean_uptime = 30.0;
  fcfg.mean_downtime = 10.0;
  fcfg.horizon = 1000000.0;
  util::Rng frng(9);
  const FailureTrace trace(fcfg, 2, frng);
  EngineConfig ecfg;
  ecfg.failures = &trace;
  ecfg.record_task_trace = true;
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1), ecfg);
  std::size_t retried = 0;
  for (const auto& rec : r.task_trace) {
    if (rec.attempts > 1) ++retried;
  }
  EXPECT_GT(retried, 0u);
}

}  // namespace
}  // namespace gasched::sim
