// Tests for scenario construction from config files.

#include "exp/config_scenario.hpp"

#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace gasched::exp {
namespace {

TEST(ConfigScenario, DefaultsMatchDocumentation) {
  const auto s = scenario_from_config(util::Config::parse(""));
  EXPECT_EQ(s.name, "config");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.replications, 5u);
  EXPECT_EQ(s.cluster.num_processors, 50u);
  EXPECT_DOUBLE_EQ(s.cluster.comm.mean_cost, 20.0);
  EXPECT_EQ(s.workload.kind, DistKind::kNormal);
  EXPECT_TRUE(s.workload.all_at_start);
  EXPECT_FALSE(s.failures.has_value());
}

TEST(ConfigScenario, FullConfigRoundTrips) {
  const auto cfg = util::Config::parse(
      "[scenario]\nname = t\nseed = 9\nreplications = 2\n"
      "[cluster]\nprocessors = 8\nrate_lo = 5\nrate_hi = 50\n"
      "availability = random_walk\n"
      "[comm]\nmean_cost = 3\n"
      "[workload]\ndist = uniform\nparam_a = 10\nparam_b = 100\n"
      "count = 60\nall_at_start = false\nmean_interarrival = 2.5\n"
      "[failures]\nenabled = true\nmean_uptime = 100\n"
      "mean_downtime = 10\nfailing_fraction = 0.25\n");
  const auto s = scenario_from_config(cfg);
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.replications, 2u);
  EXPECT_EQ(s.cluster.num_processors, 8u);
  EXPECT_EQ(s.cluster.availability, sim::AvailabilityKind::kRandomWalk);
  EXPECT_DOUBLE_EQ(s.cluster.comm.mean_cost, 3.0);
  EXPECT_EQ(s.workload.kind, DistKind::kUniform);
  EXPECT_EQ(s.workload.count, 60u);
  EXPECT_FALSE(s.workload.all_at_start);
  EXPECT_DOUBLE_EQ(s.workload.mean_interarrival, 2.5);
  ASSERT_TRUE(s.failures.has_value());
  EXPECT_DOUBLE_EQ(s.failures->mean_uptime, 100.0);
  EXPECT_DOUBLE_EQ(s.failures->failing_fraction, 0.25);
}

TEST(ConfigScenario, SchedulerOptions) {
  const auto cfg = util::Config::parse(
      "[scheduler]\nbatch_size = 77\nmax_generations = 55\n"
      "population = 11\nrebalances = 3\npn_dynamic_batch = false\n"
      "kpb_percent = 35\n");
  const auto o = scheduler_options_from_config(cfg);
  EXPECT_EQ(o.batch_size, 77u);
  EXPECT_EQ(o.max_generations, 55u);
  EXPECT_EQ(o.population, 11u);
  EXPECT_EQ(o.rebalances, 3u);
  EXPECT_FALSE(o.pn_dynamic_batch);
  EXPECT_DOUBLE_EQ(o.kpb_percent, 35.0);
}

TEST(ConfigScenario, UnknownEnumsThrow) {
  EXPECT_THROW(scenario_from_config(util::Config::parse(
                   "[cluster]\navailability = quantum\n")),
               std::runtime_error);
  EXPECT_THROW(
      scenario_from_config(util::Config::parse("[workload]\ndist = zipf\n")),
      std::runtime_error);
}

TEST(ConfigScenario, SchedulerNamesResolve) {
  for (const auto kind : extended_schedulers()) {
    EXPECT_EQ(scheduler_kind_from_name(scheduler_name(kind)), kind);
  }
  for (const auto kind : metaheuristic_schedulers()) {
    EXPECT_EQ(scheduler_kind_from_name(scheduler_name(kind)), kind);
  }
  EXPECT_THROW(scheduler_kind_from_name("XYZ"), std::runtime_error);
}

TEST(ConfigScenario, ParsesArrivalAndSmoothingKeys) {
  const auto cfg = util::Config::parse(
      "[scenario]\ncomm_nu = 0.3\nrate_nu = 0.7\n"
      "[workload]\nall_at_start = false\nmean_interarrival = 2.5\n"
      "burstiness = 8\nburst_dwell = 12\n"
      "[scheduler]\nislands = 6\nmigration_interval = 15\n");
  const auto s = scenario_from_config(cfg);
  EXPECT_DOUBLE_EQ(s.comm_nu, 0.3);
  EXPECT_DOUBLE_EQ(s.rate_nu, 0.7);
  EXPECT_FALSE(s.workload.all_at_start);
  EXPECT_DOUBLE_EQ(s.workload.mean_interarrival, 2.5);
  EXPECT_DOUBLE_EQ(s.workload.burstiness, 8.0);
  EXPECT_DOUBLE_EQ(s.workload.burst_dwell, 12.0);
  const auto o = scheduler_options_from_config(cfg);
  EXPECT_EQ(o.islands, 6u);
  EXPECT_EQ(o.migration_interval, 15u);
}

TEST(ConfigScenario, ConfiguredScenarioActuallyRuns) {
  const auto cfg = util::Config::parse(
      "[scenario]\nreplications = 2\n"
      "[cluster]\nprocessors = 4\n"
      "[comm]\nmean_cost = 2\n"
      "[workload]\ndist = uniform\nparam_a = 10\nparam_b = 100\ncount = 40\n"
      "[scheduler]\nmax_generations = 20\nbatch_size = 20\n");
  const auto s = scenario_from_config(cfg);
  const auto o = scheduler_options_from_config(cfg);
  const auto runs = run_replications(s, SchedulerKind::kPN, o);
  ASSERT_EQ(runs.size(), 2u);
  for (const auto& r : runs) EXPECT_EQ(r.tasks_completed, 40u);
}

}  // namespace
}  // namespace gasched::exp
