// Tests for scenario construction from config files.

#include "exp/config_scenario.hpp"

#include <gtest/gtest.h>

#include "exp/registry.hpp"
#include "exp/runner.hpp"

namespace gasched::exp {
namespace {

TEST(ConfigScenario, DefaultsMatchDocumentation) {
  const auto s = scenario_from_config(util::Config::parse(""));
  EXPECT_EQ(s.name, "config");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.replications, 5u);
  EXPECT_EQ(s.cluster.num_processors, 50u);
  EXPECT_DOUBLE_EQ(s.cluster.comm.mean_cost, 20.0);
  EXPECT_EQ(s.workload.dist, "normal");
  EXPECT_TRUE(s.workload.all_at_start);
  EXPECT_FALSE(s.failures.has_value());
}

TEST(ConfigScenario, FullConfigRoundTrips) {
  const auto cfg = util::Config::parse(
      "[scenario]\nname = t\nseed = 9\nreplications = 2\n"
      "[cluster]\nprocessors = 8\nrate_lo = 5\nrate_hi = 50\n"
      "availability = random_walk\n"
      "[comm]\nmean_cost = 3\n"
      "[workload]\ndist = uniform\nparam_a = 10\nparam_b = 100\n"
      "count = 60\nall_at_start = false\nmean_interarrival = 2.5\n"
      "[failures]\nenabled = true\nmean_uptime = 100\n"
      "mean_downtime = 10\nfailing_fraction = 0.25\n");
  const auto s = scenario_from_config(cfg);
  EXPECT_EQ(s.name, "t");
  EXPECT_EQ(s.seed, 9u);
  EXPECT_EQ(s.replications, 2u);
  EXPECT_EQ(s.cluster.num_processors, 8u);
  EXPECT_EQ(s.cluster.availability, sim::AvailabilityKind::kRandomWalk);
  EXPECT_DOUBLE_EQ(s.cluster.comm.mean_cost, 3.0);
  EXPECT_EQ(s.workload.dist, "uniform");
  EXPECT_EQ(s.workload.count, 60u);
  EXPECT_FALSE(s.workload.all_at_start);
  EXPECT_DOUBLE_EQ(s.workload.mean_interarrival, 2.5);
  ASSERT_TRUE(s.failures.has_value());
  EXPECT_DOUBLE_EQ(s.failures->mean_uptime, 100.0);
  EXPECT_DOUBLE_EQ(s.failures->failing_fraction, 0.25);
}

TEST(ConfigScenario, SchedulerParamsCarrySectionVerbatim) {
  const auto cfg = util::Config::parse(
      "[scheduler]\nbatch_size = 77\nmax_generations = 55\n"
      "population = 11\nrebalances = 3\npn_dynamic_batch = false\n"
      "kpb_percent = 35\nsa_cooling = 0.8\n");
  const auto p = scheduler_params_from_config(cfg);
  EXPECT_EQ(p.get_size("batch_size", 200), 77u);
  EXPECT_EQ(p.get_size("max_generations", 1000), 55u);
  EXPECT_EQ(p.get_size("population", 20), 11u);
  EXPECT_EQ(p.get_size("rebalances", 1), 3u);
  EXPECT_FALSE(p.get_bool("pn_dynamic_batch", true));
  EXPECT_DOUBLE_EQ(p.get_double("kpb_percent", 20.0), 35.0);
  // Per-scheduler keys ride along untouched for the factory that wants
  // them — nothing to extend centrally.
  EXPECT_DOUBLE_EQ(p.get_double("sa_cooling", 0.92), 0.8);
}

TEST(ConfigScenario, UnknownEnumsThrow) {
  EXPECT_THROW(scenario_from_config(util::Config::parse(
                   "[cluster]\navailability = quantum\n")),
               std::runtime_error);
  EXPECT_THROW(
      scenario_from_config(util::Config::parse("[workload]\ndist = zipf\n")),
      std::runtime_error);
}

TEST(ConfigScenario, UnknownDistErrorListsRegisteredFamilies) {
  try {
    scenario_from_config(util::Config::parse("[workload]\ndist = zipf\n"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zipf"), std::string::npos) << msg;
    EXPECT_NE(msg.find("normal"), std::string::npos) << msg;
    EXPECT_NE(msg.find("pareto"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bimodal"), std::string::npos) << msg;
  }
}

TEST(ConfigScenario, DistNamesAreCaseInsensitive) {
  const auto s = scenario_from_config(
      util::Config::parse("[workload]\ndist = Pareto\n"));
  EXPECT_EQ(s.workload.dist, "pareto");
}

TEST(ConfigScenario, ParsesArrivalAndSmoothingKeys) {
  const auto cfg = util::Config::parse(
      "[scenario]\ncomm_nu = 0.3\nrate_nu = 0.7\n"
      "[workload]\nall_at_start = false\nmean_interarrival = 2.5\n"
      "burstiness = 8\nburst_dwell = 12\n"
      "[scheduler]\nislands = 6\nmigration_interval = 15\n");
  const auto s = scenario_from_config(cfg);
  EXPECT_DOUBLE_EQ(s.comm_nu, 0.3);
  EXPECT_DOUBLE_EQ(s.rate_nu, 0.7);
  EXPECT_FALSE(s.workload.all_at_start);
  EXPECT_DOUBLE_EQ(s.workload.mean_interarrival, 2.5);
  EXPECT_DOUBLE_EQ(s.workload.burstiness, 8.0);
  EXPECT_DOUBLE_EQ(s.workload.burst_dwell, 12.0);
  const auto p = scheduler_params_from_config(cfg);
  EXPECT_EQ(p.get_size("islands", 4), 6u);
  EXPECT_EQ(p.get_size("migration_interval", 25), 15u);
}

TEST(ConfigScenario, SchedulerNamesResolveThroughRegistry) {
  for (const auto& name : extended_schedulers()) {
    EXPECT_EQ(SchedulerRegistry::instance().canonical_name(name), name);
  }
  for (const auto& name : metaheuristic_schedulers()) {
    EXPECT_EQ(SchedulerRegistry::instance().canonical_name(name), name);
  }
  EXPECT_THROW(SchedulerRegistry::instance().canonical_name("XYZ"),
               std::runtime_error);
}

TEST(ConfigScenario, ConfiguredScenarioActuallyRuns) {
  const auto cfg = util::Config::parse(
      "[scenario]\nreplications = 2\n"
      "[cluster]\nprocessors = 4\n"
      "[comm]\nmean_cost = 2\n"
      "[workload]\ndist = uniform\nparam_a = 10\nparam_b = 100\ncount = 40\n"
      "[scheduler]\nmax_generations = 20\nbatch_size = 20\n");
  const auto s = scenario_from_config(cfg);
  const auto p = scheduler_params_from_config(cfg);
  const auto runs = run_replications(s, "PN", p);
  ASSERT_EQ(runs.size(), 2u);
  for (const auto& r : runs) EXPECT_EQ(r.tasks_completed, 40u);
}

TEST(ConfigScenario, ParetoScenarioRunsFromConfig) {
  const auto cfg = util::Config::parse(
      "[scenario]\nreplications = 2\n"
      "[cluster]\nprocessors = 4\n"
      "[comm]\nmean_cost = 2\n"
      "[workload]\ndist = pareto\nalpha = 1.3\nlo = 10\nhi = 5000\n"
      "count = 50\n"
      "[scheduler]\nmax_generations = 15\nbatch_size = 25\n");
  const auto s = scenario_from_config(cfg);
  EXPECT_EQ(s.workload.dist, "pareto");
  const auto dist = make_distribution(s.workload);
  EXPECT_EQ(dist->name(), "pareto");
  EXPECT_DOUBLE_EQ(dist->min_size(), 10.0);
  const auto runs =
      run_replications(s, "PN", scheduler_params_from_config(cfg));
  ASSERT_EQ(runs.size(), 2u);
  for (const auto& r : runs) EXPECT_EQ(r.tasks_completed, 50u);
}

TEST(ConfigScenario, BimodalScenarioRunsFromConfig) {
  const auto cfg = util::Config::parse(
      "[scenario]\nreplications = 1\n"
      "[cluster]\nprocessors = 4\n"
      "[comm]\nmean_cost = 2\n"
      "[workload]\ndist = bimodal\nmean_small = 50\nvar_small = 100\n"
      "mean_large = 2000\nvar_large = 10000\nweight_small = 0.7\n"
      "count = 50\n"
      "[scheduler]\nmax_generations = 15\nbatch_size = 25\n");
  const auto s = scenario_from_config(cfg);
  EXPECT_EQ(s.workload.dist, "bimodal");
  EXPECT_EQ(make_distribution(s.workload)->name(), "bimodal");
  const auto runs =
      run_replications(s, "PN", scheduler_params_from_config(cfg));
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].tasks_completed, 50u);
}

}  // namespace
}  // namespace gasched::exp
