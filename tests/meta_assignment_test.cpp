// Unit tests for meta::LoadTracker — the incremental assignment state the
// local-search schedulers (SA / tabu / hill climbing) walk on.

#include "meta/assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace gasched::meta {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {},
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
    v.procs[j].comm_observations = j < comm.size() ? 3 : 0;
  }
  return v;
}

/// Recomputes C_j from scratch for cross-checking the incremental state.
std::vector<double> recompute(const core::ScheduleEvaluator& eval,
                              const LoadTracker& t) {
  std::vector<double> c(t.num_procs());
  for (std::size_t j = 0; j < t.num_procs(); ++j) c[j] = eval.delta(j);
  for (std::size_t s = 0; s < t.num_tasks(); ++s) {
    c[t.proc_of(s)] += eval.task_cost_on(s, t.proc_of(s));
  }
  return c;
}

TEST(LoadTracker, InitialCompletionTimesMatchEvaluator) {
  const auto view = make_view({10.0, 20.0}, {100.0, 0.0}, {1.0, 2.0});
  const core::ScheduleEvaluator eval({100.0, 200.0, 300.0}, view, true);
  const LoadTracker t(eval, {{0, 1}, {2}});

  // C_0 = 100/10 + (100/10 + 1) + (200/10 + 1) = 10 + 11 + 21 = 42.
  EXPECT_DOUBLE_EQ(t.completion(0), 42.0);
  // C_1 = 0 + 300/20 + 2 = 17.
  EXPECT_DOUBLE_EQ(t.completion(1), 17.0);
  EXPECT_DOUBLE_EQ(t.makespan(), 42.0);
  EXPECT_EQ(t.heaviest_proc(), 0u);
}

TEST(LoadTracker, RejectsIncompleteOrDuplicateAssignments) {
  const auto view = make_view({10.0, 20.0});
  const core::ScheduleEvaluator eval({100.0, 200.0}, view, false);
  EXPECT_THROW(LoadTracker(eval, {{0}, {}}), std::invalid_argument);
  EXPECT_THROW(LoadTracker(eval, {{0, 1}, {1}}), std::invalid_argument);
  EXPECT_THROW(LoadTracker(eval, {{0, 1}}), std::invalid_argument);
  EXPECT_THROW(LoadTracker(eval, {{0, 5}, {1}}), std::invalid_argument);
}

TEST(LoadTracker, ApplyMovesLoadBetweenProcessors) {
  const auto view = make_view({10.0, 10.0});
  const core::ScheduleEvaluator eval({100.0, 100.0}, view, false);
  LoadTracker t(eval, {{0, 1}, {}});
  EXPECT_DOUBLE_EQ(t.completion(0), 20.0);

  t.apply({1, 0, 1});
  EXPECT_EQ(t.proc_of(1), 1u);
  EXPECT_DOUBLE_EQ(t.completion(0), 10.0);
  EXPECT_DOUBLE_EQ(t.completion(1), 10.0);
}

TEST(LoadTracker, ApplyRejectsStaleOrigin) {
  const auto view = make_view({10.0, 10.0});
  const core::ScheduleEvaluator eval({100.0}, view, false);
  LoadTracker t(eval, {{0}, {}});
  EXPECT_THROW(t.apply({0, 1, 0}), std::invalid_argument);
}

TEST(LoadTracker, MakespanDeltaPredictsActualChange) {
  const auto view = make_view({10.0, 25.0, 50.0}, {0.0, 500.0, 0.0});
  const core::ScheduleEvaluator eval({100.0, 400.0, 900.0, 50.0}, view, false);
  LoadTracker t(eval, {{0, 3}, {1}, {2}});

  const Move m{2, 2, 0};
  const double predicted = t.makespan_delta(m);
  const double before = t.makespan();
  t.apply(m);
  EXPECT_NEAR(t.makespan(), before + predicted, 1e-9);
}

TEST(LoadTracker, SwapSlotsExchangesProcessors) {
  const auto view = make_view({10.0, 10.0});
  const core::ScheduleEvaluator eval({100.0, 300.0}, view, false);
  LoadTracker t(eval, {{0}, {1}});
  t.swap_slots(0, 1);
  EXPECT_EQ(t.proc_of(0), 1u);
  EXPECT_EQ(t.proc_of(1), 0u);
  EXPECT_DOUBLE_EQ(t.completion(0), 30.0);
  EXPECT_DOUBLE_EQ(t.completion(1), 10.0);
}

TEST(LoadTracker, SwapOnSameProcessorIsANoop) {
  const auto view = make_view({10.0, 10.0});
  const core::ScheduleEvaluator eval({100.0, 300.0}, view, false);
  LoadTracker t(eval, {{0, 1}, {}});
  t.swap_slots(0, 1);
  EXPECT_EQ(t.proc_of(0), 0u);
  EXPECT_EQ(t.proc_of(1), 0u);
}

TEST(LoadTracker, ToQueuesRoundTripsThroughConstructor) {
  const auto view = make_view({10.0, 20.0, 40.0});
  const core::ScheduleEvaluator eval({10, 20, 30, 40, 50}, view, false);
  LoadTracker t(eval, {{0, 2}, {4}, {1, 3}});
  const core::ProcQueues q = t.to_queues();
  const LoadTracker t2(eval, q);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_DOUBLE_EQ(t2.completion(j), t.completion(j));
  }
}

TEST(LoadTracker, RandomMoveAlwaysValid) {
  const auto view = make_view({10.0, 20.0, 40.0, 80.0});
  const core::ScheduleEvaluator eval({10, 20, 30, 40, 50, 60}, view, false);
  const LoadTracker t(eval, {{0, 1}, {2}, {3, 4}, {5}});
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Move m = t.random_move(rng);
    EXPECT_LT(m.slot, t.num_tasks());
    EXPECT_EQ(m.from, t.proc_of(m.slot));
    EXPECT_NE(m.to, m.from);
    EXPECT_LT(m.to, t.num_procs());
  }
}

TEST(LoadTracker, IncrementalStateMatchesRecomputationUnderRandomWalk) {
  const auto view =
      make_view({10.0, 30.0, 55.0}, {100.0, 0.0, 40.0}, {0.5, 1.5, 0.1});
  const core::ScheduleEvaluator eval({15, 25, 35, 45, 55, 65, 75}, view, true);
  LoadTracker t(eval, {{0, 1, 2}, {3, 4}, {5, 6}});
  util::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    t.apply(t.random_move(rng));
    if (i % 50 == 0) {
      const auto expect = recompute(eval, t);
      for (std::size_t j = 0; j < t.num_procs(); ++j) {
        ASSERT_NEAR(t.completion(j), expect[j], 1e-7) << "proc " << j;
      }
    }
  }
  const auto expect = recompute(eval, t);
  for (std::size_t j = 0; j < t.num_procs(); ++j) {
    EXPECT_NEAR(t.completion(j), expect[j], 1e-7);
  }
}

}  // namespace
}  // namespace gasched::meta
