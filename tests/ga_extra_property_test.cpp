// Cross-operator GA property sweep: every (selection, crossover,
// mutation) combination must keep the population valid and never lose the
// best individual when elitism is on.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "ga/engine.hpp"

namespace gasched::ga {
namespace {

/// Objective: weighted displacement of each gene from its sorted position
/// (a smoother landscape than raw inversions).
class DisplacementProblem final : public GaProblem {
 public:
  double fitness(const Chromosome& c) const override {
    return 1.0 / (1.0 + objective(c));
  }
  double objective(const Chromosome& c) const override {
    double d = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const double target = static_cast<double>(c[i]);
      d += std::abs(static_cast<double>(i) - target);
    }
    return d;
  }
};

using Combo = std::tuple<std::shared_ptr<SelectionOp>,
                         std::shared_ptr<CrossoverOp>,
                         std::shared_ptr<MutationOp>>;

class OperatorMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(OperatorMatrix, EvolvesValidlyAndMonotonically) {
  const auto& [sel, cx, mut] = GetParam();
  GaConfig cfg;
  cfg.population = 10;
  cfg.max_generations = 40;
  cfg.elitism = true;
  cfg.record_history = true;
  const GaEngine engine(cfg, *sel, *cx, *mut);
  DisplacementProblem problem;
  util::Rng rng(321);
  std::vector<Chromosome> init;
  for (int p = 0; p < 10; ++p) {
    Chromosome c(12);
    for (std::size_t i = 0; i < c.size(); ++i) {
      c[i] = static_cast<Gene>(i);
    }
    rng.shuffle(c);
    init.push_back(std::move(c));
  }
  const GaResult r = engine.run(problem, init, rng);
  // Result is a valid permutation of 0..11.
  ASSERT_TRUE(is_permutation_of_distinct(r.best));
  ASSERT_TRUE(same_gene_set(r.best, init[0]));
  // Best objective never worsens across generations (elitism).
  for (std::size_t g = 1; g < r.objective_history.size(); ++g) {
    ASSERT_LE(r.objective_history[g], r.objective_history[g - 1])
        << sel->name() << "/" << cx->name() << "/" << mut->name();
  }
  // And it is at least as good as the best seed.
  double seed_best = 1e18;
  for (const auto& c : init) {
    seed_best = std::min(seed_best, problem.objective(c));
  }
  EXPECT_LE(r.best_objective, seed_best);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, OperatorMatrix,
    ::testing::Combine(
        ::testing::Values(
            std::shared_ptr<SelectionOp>(std::make_shared<RouletteSelection>()),
            std::shared_ptr<SelectionOp>(
                std::make_shared<TournamentSelection>(3)),
            std::shared_ptr<SelectionOp>(std::make_shared<SusSelection>())),
        ::testing::Values(
            std::shared_ptr<CrossoverOp>(std::make_shared<CycleCrossover>()),
            std::shared_ptr<CrossoverOp>(std::make_shared<PmxCrossover>()),
            std::shared_ptr<CrossoverOp>(std::make_shared<OrderCrossover>())),
        ::testing::Values(
            std::shared_ptr<MutationOp>(std::make_shared<SwapMutation>()),
            std::shared_ptr<MutationOp>(
                std::make_shared<InversionMutation>()))));

}  // namespace
}  // namespace gasched::ga
