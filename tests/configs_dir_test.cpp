// Validates every shipped scenario config in configs/: each file must
// parse, produce a self-consistent Scenario, and actually run end-to-end
// at a reduced scale. Guards the shipped INI files against drift when
// config keys change.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <vector>

#include "exp/config_scenario.hpp"
#include "exp/runner.hpp"

namespace gasched::exp {
namespace {

std::filesystem::path configs_dir() {
  // Tests run from build/tests; the source tree is two levels up. Fall
  // back to the compile-time source dir for out-of-tree runs.
  for (auto p : {std::filesystem::path("../../configs"),
                 std::filesystem::path(GASCHED_SOURCE_DIR) / "configs"}) {
    if (std::filesystem::is_directory(p)) return p;
  }
  return {};
}

std::vector<std::filesystem::path> config_files() {
  std::vector<std::filesystem::path> files;
  const auto dir = configs_dir();
  if (dir.empty()) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ini") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

class ShippedConfigTest
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(ShippedConfigTest, ParsesAndRunsReduced) {
  const util::Config cfg = util::Config::load(GetParam());
  Scenario s = scenario_from_config(cfg);
  SchedulerParams opts = scheduler_params_from_config(cfg);

  EXPECT_FALSE(s.name.empty());
  EXPECT_GT(s.cluster.num_processors, 0u);
  EXPECT_GT(s.workload.count, 0u);
  EXPECT_GE(s.workload.burstiness, 1.0);

  // Shrink for test speed, then run one replication end-to-end.
  s.workload.count = std::min<std::size_t>(s.workload.count, 120);
  s.cluster.num_processors = std::min<std::size_t>(s.cluster.num_processors, 8);
  s.replications = 1;
  opts.set("max_generations",
           std::min<std::size_t>(
               opts.get_size("max_generations", kDefaultMaxGenerations), 30));
  const auto r = run_one(s, "PN", opts, 0);
  EXPECT_EQ(r.tasks_completed, s.workload.count);
  EXPECT_GT(r.makespan, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllShippedConfigs, ShippedConfigTest, ::testing::ValuesIn(config_files()),
    [](const ::testing::TestParamInfo<std::filesystem::path>& info) {
      std::string name = info.param.stem().string();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ShippedConfigs, DirectoryShipsAtLeastFiveScenarios) {
  EXPECT_GE(config_files().size(), 5u);
}

}  // namespace
}  // namespace gasched::exp
