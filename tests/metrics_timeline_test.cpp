// Tests for the utilization-over-time series.

#include "metrics/timeline.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace gasched::metrics {
namespace {

using workload::Task;

class GreedyPolicy final : public sim::SchedulingPolicy {
 public:
  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<Task>& queue, util::Rng&) override {
    auto a = sim::BatchAssignment::empty(view.size());
    std::size_t j = 0;
    while (!queue.empty()) {
      a.per_proc[j % view.size()].push_back(queue.front().id);
      queue.pop_front();
      ++j;
    }
    return a;
  }
  std::string name() const override { return "greedy"; }
};

sim::SimulationResult traced_run(bool zero_comm, std::size_t tasks = 20,
                                 std::size_t procs = 4) {
  sim::ClusterConfig cfg;
  cfg.num_processors = procs;
  cfg.rate_lo = cfg.rate_hi = 10.0;
  cfg.zero_comm = zero_comm;
  cfg.comm.mean_cost = 2.0;
  cfg.comm.spread_cv = 0.0;
  cfg.comm.jitter_cv = 0.0;
  util::Rng crng(7);
  const auto cluster = sim::build_cluster(cfg, crng);
  workload::ConstantSizes dist(100.0);
  util::Rng wrng(3);
  const auto wl = workload::generate(dist, tasks, wrng);
  sim::EngineConfig ecfg;
  ecfg.record_task_trace = true;
  GreedyPolicy policy;
  return sim::simulate(cluster, wl, policy, util::Rng(1), ecfg);
}

TEST(Timeline, FullyBusyClusterIsFlatOne) {
  // 20 equal tasks on 4 equal procs, no comm: every bucket fully busy.
  const auto r = traced_run(/*zero_comm=*/true);
  const auto tl = utilization_timeline(r, 10);
  ASSERT_EQ(tl.size(), 10u);
  for (const auto& p : tl) {
    EXPECT_NEAR(p.busy_fraction, 1.0, 1e-9);
    EXPECT_NEAR(p.comm_fraction, 0.0, 1e-9);
  }
}

TEST(Timeline, MeanBusyMatchesEfficiency) {
  const auto r = traced_run(/*zero_comm=*/false);
  const auto tl = utilization_timeline(r, 200);
  EXPECT_NEAR(mean_busy_fraction(tl), r.efficiency(), 0.02);
}

TEST(Timeline, FractionsBounded) {
  const auto r = traced_run(false, 30, 3);
  for (const auto bins : {1u, 7u, 64u}) {
    for (const auto& p : utilization_timeline(r, bins)) {
      EXPECT_GE(p.busy_fraction, 0.0);
      EXPECT_GE(p.comm_fraction, 0.0);
      EXPECT_LE(p.busy_fraction + p.comm_fraction, 1.0 + 1e-9);
    }
  }
}

TEST(Timeline, BucketTimesAreUniform) {
  const auto r = traced_run(true);
  const auto tl = utilization_timeline(r, 5);
  const double width = r.makespan / 5.0;
  for (std::size_t b = 0; b < tl.size(); ++b) {
    EXPECT_NEAR(tl[b].time, static_cast<double>(b) * width, 1e-9);
  }
}

TEST(Timeline, CommShowsUpInCommFraction) {
  const auto r = traced_run(false);
  const auto tl = utilization_timeline(r, 20);
  double total_comm = 0.0;
  for (const auto& p : tl) total_comm += p.comm_fraction;
  EXPECT_GT(total_comm, 0.0);
}

TEST(Timeline, RequiresTraceAndBins) {
  sim::SimulationResult empty;
  EXPECT_THROW(utilization_timeline(empty, 10), std::invalid_argument);
  const auto r = traced_run(true);
  EXPECT_THROW(utilization_timeline(r, 0), std::invalid_argument);
}

TEST(Timeline, MeanBusyOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_busy_fraction({}), 0.0);
}

}  // namespace
}  // namespace gasched::metrics
