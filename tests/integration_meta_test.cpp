// End-to-end simulations for the extended scheduler set: the local-search
// meta-heuristics (SA, TS, ACO, HC), the island-model PN (PNI), and the
// extra heuristic baselines (OLB, DUP) — all through the experiment API,
// with the same directional assertions the core integration suite makes
// for the paper's seven schedulers.

#include <gtest/gtest.h>

#include "exp/runner.hpp"

namespace gasched::exp {
namespace {

SchedulerParams quick_opts() {
  SchedulerParams o;
  o.set("batch_size", 50);
  o.set("max_generations", 40);
  o.set("population", 10);
  o.set("islands", 3);
  o.set("migration_interval", 10);
  return o;
}

Scenario base_scenario(double mean_comm, std::size_t tasks = 250,
                       std::size_t procs = 8, std::uint64_t seed = 17) {
  Scenario s;
  s.name = "integration-meta";
  s.cluster = paper_cluster(mean_comm, procs);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 1000.0;
  s.workload.count = tasks;
  s.seed = seed;
  s.replications = 3;
  return s;
}

double mean_makespan(const std::vector<sim::SimulationResult>& runs) {
  double s = 0.0;
  for (const auto& r : runs) s += r.makespan;
  return s / static_cast<double>(runs.size());
}

class ExtendedSchedulerTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ExtendedSchedulerTest, CompletesEveryTask) {
  const Scenario s = base_scenario(5.0);
  const auto runs = run_replications(s, GetParam(), quick_opts());
  ASSERT_EQ(runs.size(), s.replications);
  for (const auto& r : runs) {
    EXPECT_EQ(r.tasks_completed, s.workload.count);
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GT(r.efficiency(), 0.0);
    EXPECT_LE(r.efficiency(), 1.0 + 1e-9);
  }
}

TEST_P(ExtendedSchedulerTest, DeterministicAcrossRuns) {
  const Scenario s = base_scenario(5.0, 120, 6);
  const auto a = run_replications(s, GetParam(), quick_opts());
  const auto b = run_replications(s, GetParam(), quick_opts(),
                                  /*parallel=*/false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    EXPECT_DOUBLE_EQ(a[r].makespan, b[r].makespan) << "rep " << r;
    EXPECT_EQ(a[r].tasks_completed, b[r].tasks_completed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    NewSchedulers, ExtendedSchedulerTest,
    ::testing::Values("SA", "TS",
                      "ACO", "HC",
                      "PNI", "OLB",
                      "DUP"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(IntegrationMeta, LocalSearchersBeatRoundRobin) {
  const Scenario s = base_scenario(10.0, 300);
  const double rr =
      mean_makespan(run_replications(s, "RR", quick_opts()));
  for (const auto kind : {"SA", "TS",
                          "ACO", "HC"}) {
    const double m = mean_makespan(run_replications(s, kind, quick_opts()));
    EXPECT_LT(m, rr) << kind;
  }
}

TEST(IntegrationMeta, IslandPnCompetitiveWithPn) {
  // PNI spends islands × generations of search, so it should land within
  // a modest factor of single-population PN (usually at or below it).
  const Scenario s = base_scenario(10.0, 300);
  const double pn =
      mean_makespan(run_replications(s, "PN", quick_opts()));
  const double pni =
      mean_makespan(run_replications(s, "PNI", quick_opts()));
  EXPECT_LT(pni, 1.15 * pn);
}

TEST(IntegrationMeta, DuplexAtLeastAsGoodAsWorseOfMmMx) {
  const Scenario s = base_scenario(10.0, 300);
  const double dup =
      mean_makespan(run_replications(s, "DUP", quick_opts()));
  const double mm =
      mean_makespan(run_replications(s, "MM", quick_opts()));
  const double mx =
      mean_makespan(run_replications(s, "MX", quick_opts()));
  EXPECT_LE(dup, std::max(mm, mx) * 1.05);
}

TEST(IntegrationMeta, AllNewSchedulersSurviveProcessorFailures) {
  // §3's rationale for scheduler-side queues ("when a machine is switched
  // off") must hold for every search strategy: tasks on failed machines
  // are requeued and all work completes.
  Scenario s = base_scenario(5.0, 150, 6);
  sim::FailureConfig f;
  f.mean_uptime = 300.0;
  f.mean_downtime = 80.0;
  f.failing_fraction = 0.5;
  s.failures = f;
  for (const auto kind : {"SA", "TS",
                          "ACO", "HC",
                          "PNI", "OLB",
                          "DUP"}) {
    const auto runs = run_replications(s, kind, quick_opts());
    for (const auto& r : runs) {
      EXPECT_EQ(r.tasks_completed, s.workload.count) << kind;
    }
  }
}

TEST(IntegrationMeta, NewSchedulersHandleStreamingArrivals) {
  Scenario s = base_scenario(5.0, 150, 6);
  s.workload.all_at_start = false;
  s.workload.mean_interarrival = 2.0;
  s.workload.burstiness = 4.0;
  s.workload.burst_dwell = 20.0;
  for (const auto kind : {"SA", "TS",
                          "ACO", "PNI"}) {
    const auto runs = run_replications(s, kind, quick_opts());
    for (const auto& r : runs) {
      EXPECT_EQ(r.tasks_completed, s.workload.count) << kind;
      EXPECT_GT(r.mean_response_time, 0.0);
    }
  }
}

TEST(IntegrationMeta, ExtendedAndMetaheuristicSetsAreConsistent) {
  for (const auto& kind : extended_schedulers()) {
    EXPECT_NO_THROW(make_scheduler(kind, quick_opts()));
    EXPECT_FALSE(kind.empty());
  }
  for (const auto& kind : metaheuristic_schedulers()) {
    EXPECT_NO_THROW(make_scheduler(kind, quick_opts()));
    EXPECT_FALSE(kind.empty());
  }
}

}  // namespace
}  // namespace gasched::exp
