// Tests for the generic GA loop using a transparent toy problem: sort a
// permutation (objective = number of inversions).

#include "ga/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace gasched::ga {
namespace {

/// Toy problem: minimise inversions of a permutation of 0..n-1.
class SortProblem final : public GaProblem {
 public:
  static double inversions(const Chromosome& c) {
    double inv = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      for (std::size_t j = i + 1; j < c.size(); ++j) {
        if (c[i] > c[j]) ++inv;
      }
    }
    return inv;
  }
  double fitness(const Chromosome& c) const override {
    return 1.0 / (1.0 + inversions(c));
  }
  double objective(const Chromosome& c) const override {
    return inversions(c);
  }
};

/// Same problem plus a greedy local improvement: swap one adjacent
/// out-of-order pair.
class SortProblemWithImprove final : public GaProblem {
 public:
  double fitness(const Chromosome& c) const override {
    return 1.0 / (1.0 + SortProblem::inversions(c));
  }
  double objective(const Chromosome& c) const override {
    return SortProblem::inversions(c);
  }
  bool improve(Chromosome& c, util::Rng& rng,
               Workspace* /*ws*/) const override {
    if (c.size() < 2) return false;
    const std::size_t start = rng.index(c.size() - 1);
    for (std::size_t k = 0; k + 1 < c.size(); ++k) {
      const std::size_t i = (start + k) % (c.size() - 1);
      if (c[i] > c[i + 1]) {
        std::swap(c[i], c[i + 1]);
        return true;
      }
    }
    return false;
  }
};

std::vector<Chromosome> random_population(std::size_t count, std::size_t n,
                                          util::Rng& rng) {
  std::vector<Chromosome> pop;
  for (std::size_t p = 0; p < count; ++p) {
    Chromosome c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = static_cast<Gene>(i);
    rng.shuffle(c);
    pop.push_back(std::move(c));
  }
  return pop;
}

GaEngine make_engine(GaConfig cfg) {
  static const RouletteSelection sel;
  static const CycleCrossover cx;
  static const SwapMutation mut;
  return GaEngine(cfg, sel, cx, mut);
}

TEST(GaEngine, ImprovesObjectiveSubstantially) {
  GaConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 300;
  cfg.record_history = true;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(1);
  auto pop = random_population(20, 15, rng);
  SortProblem problem;
  const double initial_best = [&] {
    double best = 1e18;
    for (const auto& c : pop) best = std::min(best, problem.objective(c));
    return best;
  }();
  const GaResult r = engine.run(problem, pop, rng);
  EXPECT_LT(r.best_objective, initial_best * 0.5);
  EXPECT_TRUE(is_permutation_of_distinct(r.best));
}

TEST(GaEngine, HistoryIsMonotoneNonIncreasingWithElitism) {
  GaConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 100;
  cfg.elitism = true;
  cfg.record_history = true;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(2);
  SortProblem problem;
  const GaResult r = engine.run(problem, random_population(16, 12, rng), rng);
  ASSERT_FALSE(r.objective_history.empty());
  for (std::size_t i = 1; i < r.objective_history.size(); ++i) {
    EXPECT_LE(r.objective_history[i], r.objective_history[i - 1]);
  }
}

TEST(GaEngine, TargetObjectiveStopsEarly) {
  GaConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 10000;
  cfg.target_objective = 5.0;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(3);
  SortProblem problem;
  const GaResult r = engine.run(problem, random_population(20, 10, rng), rng);
  EXPECT_LE(r.best_objective, 5.0);
  EXPECT_LT(r.generations, 10000u);
}

TEST(GaEngine, StopPredicateHonoured) {
  GaConfig cfg;
  cfg.population = 10;
  cfg.max_generations = 1000;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(4);
  SortProblem problem;
  const GaResult r = engine.run(
      problem, random_population(10, 10, rng), rng,
      [](std::size_t gen, double) { return gen >= 7; });
  EXPECT_EQ(r.generations, 7u);
}

TEST(GaEngine, ImprovementHookAccelerates) {
  GaConfig base;
  base.population = 12;
  base.max_generations = 60;
  base.improvement_passes = 0;
  GaConfig with = base;
  with.improvement_passes = 3;
  const GaEngine plain = make_engine(base);
  const GaEngine improved = make_engine(with);
  SortProblem p0;
  SortProblemWithImprove p1;
  // Average over several seeds to avoid flakiness.
  double plain_sum = 0.0, improved_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng r1(100 + seed), r2(100 + seed);
    auto pop1 = random_population(12, 20, r1);
    auto pop2 = pop1;
    plain_sum += plain.run(p0, pop1, r1).best_objective;
    improved_sum += improved.run(p1, pop2, r2).best_objective;
  }
  EXPECT_LT(improved_sum, plain_sum);
}

TEST(GaEngine, DeterministicGivenSeed) {
  GaConfig cfg;
  cfg.population = 10;
  cfg.max_generations = 50;
  const GaEngine engine = make_engine(cfg);
  SortProblem problem;
  util::Rng ra(9), rb(9);
  auto pa = random_population(10, 12, ra);
  auto pb = random_population(10, 12, rb);
  const GaResult x = engine.run(problem, pa, ra);
  const GaResult y = engine.run(problem, pb, rb);
  EXPECT_EQ(x.best, y.best);
  EXPECT_DOUBLE_EQ(x.best_objective, y.best_objective);
}

TEST(GaEngine, PadsSmallInitialPopulation) {
  GaConfig cfg;
  cfg.population = 8;
  cfg.max_generations = 5;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(10);
  SortProblem problem;
  auto seed = random_population(2, 10, rng);
  const GaResult r = engine.run(problem, seed, rng);
  EXPECT_FALSE(r.best.empty());
}

TEST(GaEngine, RejectsEmptyInitialPopulation) {
  GaConfig cfg;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(11);
  SortProblem problem;
  EXPECT_THROW(engine.run(problem, {}, rng), std::invalid_argument);
}

TEST(GaEngine, RejectsTinyPopulationConfig) {
  GaConfig cfg;
  cfg.population = 1;
  EXPECT_THROW(make_engine(cfg), std::invalid_argument);
}

TEST(GaEngine, StallStopEndsConvergedRuns) {
  GaConfig cfg;
  cfg.population = 12;
  cfg.max_generations = 100000;
  cfg.stall_generations = 25;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(13);
  SortProblem problem;
  const GaResult r = engine.run(problem, random_population(12, 8, rng), rng);
  // A permutation of 8 converges long before 100k generations; the stall
  // detector must cut the run short.
  EXPECT_LT(r.generations, 10000u);
}

TEST(GaEngine, StallCounterResetsOnImprovement) {
  GaConfig cfg;
  cfg.population = 12;
  cfg.max_generations = 400;
  cfg.stall_generations = 200;  // must not fire while still improving
  cfg.record_history = true;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(14);
  SortProblem problem;
  const GaResult r = engine.run(problem, random_population(12, 14, rng), rng);
  // The run should make progress well past the stall window's length.
  EXPECT_LT(r.best_objective, r.objective_history.front());
}

TEST(GaEngine, ZeroGenerationsReturnsBestOfInitialPopulation) {
  GaConfig cfg;
  cfg.population = 6;
  cfg.max_generations = 0;
  const GaEngine engine = make_engine(cfg);
  util::Rng rng(12);
  SortProblem problem;
  auto pop = random_population(6, 10, rng);
  double best = 1e18;
  for (const auto& c : pop) best = std::min(best, problem.objective(c));
  const GaResult r = engine.run(problem, pop, rng);
  EXPECT_DOUBLE_EQ(r.best_objective, best);
  EXPECT_EQ(r.generations, 0u);
}

}  // namespace
}  // namespace gasched::ga
