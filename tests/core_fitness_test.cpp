// Tests for the paper's fitness function (§3.2): ψ, relative error, and
// F = 1/E with and without communication estimates.

#include "core/fitness.hpp"

#include <gtest/gtest.h>

namespace gasched::core {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {},
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.now = 0.0;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
  }
  return v;
}

TEST(Evaluator, PsiMatchesPaperFormula) {
  // Two procs at 10 and 30 Mflop/s with loads 100 and 0 MFLOPs; batch of
  // two tasks 200 + 200 MFLOPs.
  // ψ = (400 / 40) + (100/10 + 0/30) = 10 + 10 = 20.
  const ScheduleEvaluator eval({200.0, 200.0},
                               make_view({10.0, 30.0}, {100.0, 0.0}), false);
  EXPECT_DOUBLE_EQ(eval.psi(), 20.0);
}

TEST(Evaluator, CompletionTimeIncludesDeltaExecAndComm) {
  // P0: rate 10, load 100 (δ=10), comm 2 per dispatch.
  const ScheduleEvaluator eval({50.0, 100.0},
                               make_view({10.0}, {100.0}, {2.0}), true);
  // Queue both tasks: 10 + (5+2) + (10+2) = 29.
  EXPECT_DOUBLE_EQ(
      eval.completion_time(0, std::vector<std::size_t>{0, 1}), 29.0);
  EXPECT_DOUBLE_EQ(eval.completion_time(0, std::vector<std::size_t>{}), 10.0);
}

TEST(Evaluator, CommDisabledDropsGammaTerm) {
  const ScheduleEvaluator eval({50.0}, make_view({10.0}, {0.0}, {7.0}),
                               /*use_comm=*/false);
  EXPECT_DOUBLE_EQ(eval.completion_time(0, std::vector<std::size_t>{0}), 5.0);
  EXPECT_DOUBLE_EQ(eval.comm(0), 0.0);
}

TEST(Evaluator, PerfectBalanceHasZeroErrorAndFitnessOne) {
  // Two identical procs, two identical tasks, no comm: assigning one each
  // gives C_j = 10 = ψ exactly.
  const ScheduleEvaluator eval({100.0, 100.0}, make_view({10.0, 10.0}),
                               false);
  const ProcQueues balanced{{0}, {1}};
  EXPECT_DOUBLE_EQ(eval.relative_error(balanced), 0.0);
  EXPECT_DOUBLE_EQ(eval.fitness(balanced), 1.0);
}

TEST(Evaluator, ImbalanceIncreasesErrorAndLowersFitness) {
  const ScheduleEvaluator eval({100.0, 100.0}, make_view({10.0, 10.0}),
                               false);
  const ProcQueues balanced{{0}, {1}};
  const ProcQueues skewed{{0, 1}, {}};
  EXPECT_GT(eval.relative_error(skewed), eval.relative_error(balanced));
  EXPECT_LT(eval.fitness(skewed), eval.fitness(balanced));
}

TEST(Evaluator, FitnessAlwaysInUnitInterval) {
  const ScheduleEvaluator eval({5.0, 500.0, 50.0},
                               make_view({10.0, 20.0}, {0.0, 300.0},
                                         {1.0, 9.0}),
                               true);
  for (const ProcQueues& q :
       {ProcQueues{{0, 1, 2}, {}}, ProcQueues{{}, {0, 1, 2}},
        ProcQueues{{0}, {1, 2}}, ProcQueues{{2, 1}, {0}}}) {
    const double f = eval.fitness(q);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(Evaluator, MakespanIsMaxCompletion) {
  const ScheduleEvaluator eval({100.0, 300.0},
                               make_view({10.0, 10.0}), false);
  const ProcQueues q{{0}, {1}};  // C = {10, 30}
  EXPECT_DOUBLE_EQ(eval.makespan(q), 30.0);
}

TEST(Evaluator, CommAwareFitnessPrefersCheapLinks) {
  // Identical rates; link 0 costs 0, link 1 costs 20. Putting both tasks
  // on the cheap link beats splitting when comm dominates.
  const ScheduleEvaluator eval({10.0, 10.0},
                               make_view({10.0, 10.0}, {}, {0.0, 20.0}),
                               true);
  const ProcQueues cheap_only{{0, 1}, {}};
  const ProcQueues split{{0}, {1}};
  // split: C = {1, 21}, ψ = 0.1 ... cheap: C = {2, 0}.
  EXPECT_LT(eval.relative_error(cheap_only), eval.relative_error(split));
}

TEST(Evaluator, RejectsInvalidInputs) {
  EXPECT_THROW(ScheduleEvaluator({10.0}, sim::SystemView{}, false),
               std::invalid_argument);
  EXPECT_THROW(ScheduleEvaluator({10.0}, make_view({0.0}), false),
               std::invalid_argument);
  EXPECT_THROW(ScheduleEvaluator({0.0}, make_view({10.0}), false),
               std::invalid_argument);
  EXPECT_THROW(ScheduleEvaluator({-5.0}, make_view({10.0}), false),
               std::invalid_argument);
}

TEST(ScheduleProblem, AdapterMatchesEvaluatorThroughCodec) {
  const ScheduleCodec codec(3, 2);
  const ScheduleEvaluator eval({10.0, 20.0, 30.0},
                               make_view({10.0, 10.0}), false);
  const ScheduleProblem problem(codec, eval);
  const ProcQueues q{{0, 2}, {1}};
  const ga::Chromosome c = codec.encode(q);
  EXPECT_DOUBLE_EQ(problem.fitness(c), eval.fitness(q));
  EXPECT_DOUBLE_EQ(problem.objective(c), eval.makespan(q));
}

TEST(Evaluator, HeterogeneousRatesFavourFastProcessor) {
  // One 400-MFLOP task: the 40 Mflop/s processor finishes in 10 s, the
  // 10 Mflop/s one in 40 s; schedules using the fast one have lower
  // makespan.
  const ScheduleEvaluator eval({400.0}, make_view({10.0, 40.0}), false);
  EXPECT_DOUBLE_EQ(eval.makespan({{ }, {0}}), 10.0);
  EXPECT_DOUBLE_EQ(eval.makespan({{0}, { }}), 40.0);
}

}  // namespace
}  // namespace gasched::core
