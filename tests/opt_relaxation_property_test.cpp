// Property/fuzz tests for the makespan relaxation bound
// (opt/relaxation.hpp) on hundreds of random BoundInstances small enough
// for exact branch-and-bound. The load-bearing invariant chain, checked
// on every instance:
//
//   makespan_lower_bound  <=  relaxation_lower_bound  <=  optimal
//                         <=  any evaluated schedule's makespan
//
// plus: the certificate recomputes identically from the returned duals
// (it is plain double arithmetic, not solver state), the whole stack is
// deterministic, and early termination (tiny iteration caps) still
// yields a *valid* — merely looser — bound.

#include "opt/relaxation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "metrics/bounds.hpp"
#include "util/rng.hpp"

namespace gasched::opt {
namespace {

metrics::BoundInstance random_instance(util::Rng& rng) {
  metrics::BoundInstance inst;
  const std::size_t M = 1 + rng.index(4);   // 1..4 processors
  const std::size_t N = 3 + rng.index(10);  // 3..12 tasks
  const bool with_pending = rng.bernoulli(0.5);
  const bool with_comm = rng.bernoulli(0.7);
  for (std::size_t j = 0; j < M; ++j) {
    inst.rates.push_back(rng.uniform(5.0, 60.0));
    if (with_pending) {
      inst.pending_mflops.push_back(rng.bernoulli(0.5) ? rng.uniform(0, 300)
                                                       : 0.0);
    }
    if (with_comm) inst.comm_costs.push_back(rng.uniform(0.0, 3.0));
  }
  for (std::size_t t = 0; t < N; ++t) {
    inst.task_sizes.push_back(rng.uniform(5.0, 500.0));
  }
  return inst;
}

/// Makespan of the greedy earliest-completion schedule under the
/// instance's own cost model — a *feasible* schedule, hence an upper
/// bound on the optimum that every lower bound must stay below.
double greedy_makespan(const metrics::BoundInstance& inst) {
  const std::size_t M = inst.rates.size();
  std::vector<double> completion(M);
  for (std::size_t j = 0; j < M; ++j) {
    completion[j] =
        (inst.pending_mflops.empty() ? 0.0 : inst.pending_mflops[j]) /
        inst.rates[j];
  }
  for (const double size : inst.task_sizes) {
    std::size_t best = 0;
    double best_c = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < M; ++j) {
      const double c =
          completion[j] + size / inst.rates[j] +
          (inst.comm_costs.empty() ? 0.0 : inst.comm_costs[j]);
      if (c < best_c) {
        best_c = c;
        best = j;
      }
    }
    completion[best] = best_c;
  }
  return *std::max_element(completion.begin(), completion.end());
}

TEST(RelaxationProperty, InvariantChainOnFuzzedInstances) {
  constexpr int kInstances = 500;
  int tractable = 0;
  for (int trial = 0; trial < kInstances; ++trial) {
    util::Rng rng(10'000 + static_cast<std::uint64_t>(trial));
    const metrics::BoundInstance inst = random_instance(rng);
    const double scale = greedy_makespan(inst);
    const double slack = 1e-9 * std::max(scale, 1.0);

    const double lb_comb = metrics::makespan_lower_bound(inst);
    const double lb_qp = metrics::relaxation_lower_bound(inst);
    const RelaxationResult r = solve_makespan_relaxation(inst);

    // The fold makes dominance structural; certificate validity is the
    // real property.
    EXPECT_GE(lb_qp, lb_comb) << "trial " << trial;
    EXPECT_GE(r.certified_bound, 0.0) << "trial " << trial;
    EXPECT_LE(lb_qp, scale + slack)
        << "bound above a feasible schedule, trial " << trial;

    double opt = std::numeric_limits<double>::quiet_NaN();
    try {
      opt = metrics::optimal_makespan_exact(inst, 5'000'000);
    } catch (const std::invalid_argument&) {
      continue;  // search cap hit; the greedy check above still ran
    }
    ++tractable;
    EXPECT_LE(lb_comb, opt + slack) << "trial " << trial;
    EXPECT_LE(lb_qp, opt + slack)
        << "certified bound above the exact optimum, trial " << trial;
    EXPECT_LE(opt, scale + slack) << "trial " << trial;
  }
  // The cap should only rarely bite at N <= 12, M <= 4.
  EXPECT_GE(tractable, kInstances * 4 / 5);
}

TEST(RelaxationProperty, CertificateRecomputesFromReturnedDuals) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    util::Rng rng(seed);
    const metrics::BoundInstance inst = random_instance(rng);
    const RelaxationResult r = solve_makespan_relaxation(inst);
    ASSERT_EQ(r.machine_duals.size(), inst.rates.size());
    for (const double l : r.machine_duals) {
      EXPECT_TRUE(std::isfinite(l));
      EXPECT_GE(l, 0.0);
    }
    // certified_bound IS certified_bound_from_duals(machine_duals): the
    // certificate is a pure function of the published duals, so an
    // independent recompute is bit-identical.
    EXPECT_DOUBLE_EQ(certified_bound_from_duals(inst, r.machine_duals),
                     r.certified_bound)
        << "seed " << seed;
  }
}

TEST(RelaxationProperty, ArbitraryNonnegativeDualsAreValidBounds) {
  // Weak duality holds for ANY λ >= 0 — not just the solver's. Random
  // multipliers must therefore never exceed the optimum.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    util::Rng rng(700 + seed);
    metrics::BoundInstance inst = random_instance(rng);
    // Keep the exact search cheap.
    inst.task_sizes.resize(std::min<std::size_t>(inst.task_sizes.size(), 8));
    const double opt = metrics::optimal_makespan_exact(inst);
    std::vector<double> lambda(inst.rates.size());
    for (auto& l : lambda) l = rng.uniform(0.0, 5.0);
    const double cert = certified_bound_from_duals(inst, lambda);
    EXPECT_LE(cert, opt + 1e-9 * std::max(opt, 1.0)) << "seed " << seed;
    EXPECT_GE(cert, 0.0);
  }
}

TEST(RelaxationProperty, EarlyTerminationStaysValid) {
  RelaxationOptions tight;             // defaults: converges
  RelaxationOptions truncated;
  truncated.max_iterations = 3;        // nowhere near convergence
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    util::Rng rng(31'000 + seed);
    metrics::BoundInstance inst = random_instance(rng);
    inst.task_sizes.resize(std::min<std::size_t>(inst.task_sizes.size(), 8));
    const double opt = metrics::optimal_makespan_exact(inst);
    const RelaxationResult r = solve_makespan_relaxation(inst, truncated);
    EXPECT_LE(r.certified_bound, opt + 1e-9 * std::max(opt, 1.0))
        << "early-terminated certificate invalid, seed " << seed;
    EXPECT_GE(r.certified_bound, 0.0);
    // And the converged bound is at least as tight.
    const RelaxationResult full = solve_makespan_relaxation(inst, tight);
    EXPECT_GE(full.certified_bound, r.certified_bound - 1e-9)
        << "seed " << seed;
  }
}

TEST(RelaxationProperty, DeterministicAcrossRepeatedSolves) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng_a(seed), rng_b(seed);
    const metrics::BoundInstance a = random_instance(rng_a);
    const metrics::BoundInstance b = random_instance(rng_b);
    const RelaxationResult ra = solve_makespan_relaxation(a);
    const RelaxationResult rb = solve_makespan_relaxation(b);
    EXPECT_EQ(ra.certified_bound, rb.certified_bound);
    EXPECT_EQ(ra.relaxation_objective, rb.relaxation_objective);
    EXPECT_EQ(ra.iterations, rb.iterations);
    ASSERT_EQ(ra.machine_duals.size(), rb.machine_duals.size());
    for (std::size_t j = 0; j < ra.machine_duals.size(); ++j) {
      EXPECT_EQ(ra.machine_duals[j], rb.machine_duals[j]);
    }
  }
}

TEST(RelaxationProperty, NoTasksReducesToDrainTime) {
  metrics::BoundInstance inst;
  inst.rates = {2.0, 4.0};
  inst.pending_mflops = {10.0, 4.0};  // δ = {5, 1}
  const RelaxationResult r = solve_makespan_relaxation(inst);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.certified_bound, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.machine_duals[0], 1.0);
  EXPECT_DOUBLE_EQ(r.machine_duals[1], 0.0);
}

TEST(RelaxationProperty, RejectsMalformedLambda) {
  metrics::BoundInstance inst;
  inst.rates = {1.0, 1.0};
  inst.task_sizes = {1.0};
  EXPECT_THROW(certified_bound_from_duals(inst, {1.0}),
               std::invalid_argument);
  // All-zero or negative multipliers certify nothing: bound 0.
  EXPECT_DOUBLE_EQ(certified_bound_from_duals(inst, {0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(certified_bound_from_duals(inst, {-1.0, -2.0}), 0.0);
}

}  // namespace
}  // namespace gasched::opt
