// Tests for streaming statistics, summaries, percentiles, and OLS fits.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gasched::util {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 5.0);
  EXPECT_DOUBLE_EQ(rs.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  const std::vector<double> xs{1.5, -2.0, 3.25, 10.0, 0.0, 7.5, -1.25};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) rs.add(1e9 + (i % 2));
  EXPECT_NEAR(rs.variance(), 0.2502502502, 1e-6);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 50.0), 0.0);
  const std::vector<double> one{3.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(one, 100.0), 3.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{0.0, 10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 25.0), 7.5);
}

TEST(Percentile, ClampsOutOfRangeQ) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(xs, 105.0), 2.0);
}

TEST(Summarize, FullSummary) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0, 5.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(LinearFit, ExactLineRecovered) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.5 * i);
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.5, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(LinearFit, FlatLineHasZeroSlope) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{7, 7, 7, 7};
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.0, 1e-12);
  EXPECT_NEAR(f.intercept, 7.0, 1e-12);
}

TEST(LinearFit, DegenerateInputsReturnZeroFit) {
  const std::vector<double> one{1.0};
  EXPECT_DOUBLE_EQ(linear_fit(one, one).slope, 0.0);
  const std::vector<double> same_x{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(linear_fit(same_x, ys).slope, 0.0);
}

TEST(LinearFit, NoisyLineStillCloseAndR2High) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(10.0 + 0.5 * i + ((i % 3) - 1) * 0.1);
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 0.01);
  EXPECT_GT(f.r2, 0.99);
}

}  // namespace
}  // namespace gasched::util
