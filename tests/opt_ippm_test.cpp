// Tests for the IP-PMM interior-point QP solver (opt/ippm.hpp):
// randomized problems with hand-derivable KKT solutions (box-constrained
// least squares, simplex QPs/LPs, transportation polytopes),
// convergence-to-tolerance, and the pathological shapes the proximal
// regularization exists for — rank-deficient constraint matrices, zero
// Hessians, and infeasible systems.

#include "opt/ippm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace gasched::opt {
namespace {

/// max_i |a_i - b_i|.
double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

/// Identity Hessian of size n (dense row-major).
std::vector<double> identity(std::size_t n) {
  std::vector<double> q(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) q[i * n + i] = 1.0;
  return q;
}

// ------------------------------------------- known KKT solutions ----

/// min ½‖x − d‖² s.t. x ≥ 0 (no equality rows): the unique KKT point is
/// x = max(d, 0), z = max(−d, 0) — exercised over random sign patterns.
TEST(Ippm, BoxConstrainedLeastSquaresMatchesProjection) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 3 + rng.index(8);
    QpProblem p;
    p.num_vars = n;
    p.num_cons = 0;
    p.hessian = identity(n);
    p.linear.resize(n);
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) {
      d[i] = rng.uniform(-5.0, 5.0);
      p.linear[i] = -d[i];  // ½‖x−d‖² = ½xᵀx − dᵀx + const
    }
    IppmOptions opts;
    opts.tolerance = 1e-10;  // the 1e-6 absolute checks need a tight solve
    const IppmSolution s = solve_qp(p, opts);
    ASSERT_TRUE(s.converged()) << "seed " << seed;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(s.x[i], std::max(d[i], 0.0), 1e-6)
          << "x[" << i << "], seed " << seed;
      EXPECT_NEAR(s.z[i], std::max(-d[i], 0.0), 1e-6)
          << "z[" << i << "], seed " << seed;
    }
  }
}

/// min ½‖x‖² s.t. Σx = 1, x ≥ 0: the minimum-norm point of the simplex,
/// x_i = 1/n, objective 1/(2n).
TEST(Ippm, SimplexQpFindsUniformPoint) {
  for (std::size_t n : {2u, 5u, 17u}) {
    QpProblem p;
    p.num_vars = n;
    p.num_cons = 1;
    p.hessian = identity(n);
    p.linear.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) p.constraints.push_back({0, i, 1.0});
    p.rhs = {1.0};
    const IppmSolution s = solve_qp(p);
    ASSERT_TRUE(s.converged()) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(s.x[i], 1.0 / static_cast<double>(n), 1e-7);
    }
    EXPECT_NEAR(s.objective, 0.5 / static_cast<double>(n), 1e-7);
  }
}

/// Pure LP (empty Hessian): min cᵀx s.t. Σx = 1, x ≥ 0 puts all mass on
/// the cheapest coordinate; the optimal value is min_i c_i and the dual
/// y equals it (the simplex row's shadow price).
TEST(Ippm, PureLpOverSimplexPicksCheapestVertex) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed);
    const std::size_t n = 4 + rng.index(10);
    QpProblem p;
    p.num_vars = n;
    p.num_cons = 1;
    p.linear.resize(n);
    double cmin = 1e300;
    for (std::size_t i = 0; i < n; ++i) {
      p.linear[i] = rng.uniform(-3.0, 7.0);
      cmin = std::min(cmin, p.linear[i]);
      p.constraints.push_back({0, i, 1.0});
    }
    p.rhs = {1.0};
    const IppmSolution s = solve_qp(p);
    ASSERT_TRUE(s.converged()) << "seed " << seed;
    EXPECT_NEAR(s.objective, cmin, 1e-6) << "seed " << seed;
    EXPECT_NEAR(s.y[0], cmin, 1e-5) << "seed " << seed;
  }
}

// --------------------------------------- transportation polytopes ----

/// Random transportation LP: supplies a_i, demands b_j (Σa = Σb), vars
/// x_ij ≥ 0 with row sums a_i and column sums b_j, cost Σ c_ij x_ij.
/// The full row set is rank deficient by one (row sums − column sums
/// cancel), so this doubles as the rank-deficient-A regression test.
QpProblem transportation(util::Rng& rng, std::size_t rows, std::size_t cols) {
  QpProblem p;
  p.num_vars = rows * cols;
  p.num_cons = rows + cols;
  p.linear.resize(p.num_vars);
  p.rhs.assign(p.num_cons, 0.0);
  std::vector<double> supply(rows);
  double total = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    supply[i] = rng.uniform(1.0, 9.0);
    total += supply[i];
    p.rhs[i] = supply[i];
  }
  // Random demand split of the same total keeps the system consistent.
  std::vector<double> w(cols);
  double wsum = 0.0;
  for (auto& v : w) {
    v = rng.uniform(0.5, 2.0);
    wsum += v;
  }
  for (std::size_t j = 0; j < cols; ++j) {
    p.rhs[rows + j] = total * w[j] / wsum;
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const std::size_t v = i * cols + j;
      p.linear[v] = rng.uniform(1.0, 20.0);
      p.constraints.push_back({i, v, 1.0});
      p.constraints.push_back({rows + j, v, 1.0});
    }
  }
  return p;
}

/// The KKT conditions certify optimality directly: primal feasibility,
/// z = c − Aᵀy ≥ 0, and x ∘ z ≈ 0. Checking them (instead of a known
/// optimum) keeps the test exact on every random instance.
void expect_kkt_optimal(const QpProblem& p, const IppmSolution& s,
                        double tol) {
  std::vector<double> ax(p.num_cons, 0.0);
  std::vector<double> aty(p.num_vars, 0.0);
  for (const auto& e : p.constraints) {
    ax[e.row] += e.value * s.x[e.col];
    aty[e.col] += e.value * s.y[e.row];
  }
  for (std::size_t i = 0; i < p.num_cons; ++i) {
    EXPECT_NEAR(ax[i], p.rhs[i], tol) << "row " << i;
  }
  for (std::size_t v = 0; v < p.num_vars; ++v) {
    EXPECT_GE(s.x[v], -tol) << "var " << v;
    EXPECT_GE(p.linear[v] - aty[v], -tol) << "reduced cost " << v;
    EXPECT_NEAR(s.x[v] * (p.linear[v] - aty[v]), 0.0, tol) << "compl " << v;
  }
}

TEST(Ippm, TransportationPolytopeSatisfiesKkt) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    const std::size_t rows = 2 + rng.index(3);
    const std::size_t cols = 2 + rng.index(4);
    const QpProblem p = transportation(rng, rows, cols);
    const IppmSolution s = solve_qp(p);
    ASSERT_TRUE(s.converged()) << "seed " << seed;
    expect_kkt_optimal(p, s, 1e-5);
  }
}

/// The supply rows are pairwise column-disjoint, so the Schur fast path
/// applies with k = rows. It must agree with the dense path to solver
/// accuracy on both objective and iterate.
TEST(Ippm, SchurFastPathMatchesDensePath) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng_a(seed), rng_b(seed);
    QpProblem dense = transportation(rng_a, 3, 4);
    QpProblem schur = transportation(rng_b, 3, 4);
    schur.schur_diag_rows = 3;
    const IppmSolution sd = solve_qp(dense);
    const IppmSolution ss = solve_qp(schur);
    ASSERT_TRUE(sd.converged());
    ASSERT_TRUE(ss.converged());
    EXPECT_NEAR(sd.objective, ss.objective, 1e-6) << "seed " << seed;
    EXPECT_LT(max_abs_diff(sd.x, ss.x), 1e-5) << "seed " << seed;
  }
}

// --------------------------------------------------- pathologies ----

/// Duplicated equality rows make A rank deficient without changing the
/// feasible set; the dual regularization must still produce the
/// minimum-norm simplex point.
TEST(Ippm, RankDeficientDuplicateRowsStillConverge) {
  const std::size_t n = 6;
  QpProblem p;
  p.num_vars = n;
  p.num_cons = 3;  // the same Σx = 1 row three times
  p.hessian = identity(n);
  p.linear.assign(n, 0.0);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t i = 0; i < n; ++i) p.constraints.push_back({r, i, 1.0});
    p.rhs.push_back(1.0);
  }
  const IppmSolution s = solve_qp(p);
  ASSERT_TRUE(s.converged());
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(s.x[i], 1.0 / n, 1e-6);
}

/// Σx = −1 with x ≥ 0 has no feasible point; the stall heuristic must
/// report infeasibility rather than looping to the iteration limit with
/// a bogus "converged".
TEST(Ippm, DetectsInfeasibleSystem) {
  QpProblem p;
  p.num_vars = 4;
  p.num_cons = 1;
  p.linear.assign(4, 1.0);
  for (std::size_t i = 0; i < 4; ++i) p.constraints.push_back({0, i, 1.0});
  p.rhs = {-1.0};
  const IppmSolution s = solve_qp(p);
  EXPECT_NE(s.status, IppmStatus::kConverged);
}

TEST(Ippm, ValidatesInput) {
  QpProblem p;  // zero variables
  EXPECT_THROW(solve_qp(p), std::invalid_argument);

  p.num_vars = 2;
  p.num_cons = 1;
  p.linear = {1.0};  // wrong size
  EXPECT_THROW(solve_qp(p), std::invalid_argument);

  p.linear = {1.0, 1.0};
  p.rhs = {1.0};
  p.constraints = {{0, 5, 1.0}};  // column out of range
  EXPECT_THROW(solve_qp(p), std::invalid_argument);

  // Rows 0 and 1 share column 0: not a valid Schur prefix.
  p.num_cons = 2;
  p.rhs = {1.0, 1.0};
  p.constraints = {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}};
  p.schur_diag_rows = 2;
  EXPECT_THROW(solve_qp(p), std::invalid_argument);
  p.schur_diag_rows = 1;  // row 0 alone is fine
  EXPECT_NO_THROW(solve_qp(p));
}

// ------------------------------------------ convergence contract ----

TEST(Ippm, ReportsResidualsWithinTolerance) {
  util::Rng rng(99);
  const QpProblem p = transportation(rng, 3, 3);
  IppmOptions opts;
  opts.tolerance = 1e-10;
  const IppmSolution s = solve_qp(p, opts);
  ASSERT_TRUE(s.converged());
  EXPECT_LE(s.primal_residual, opts.tolerance);
  EXPECT_LE(s.dual_residual, opts.tolerance);
  EXPECT_LE(s.complementarity, opts.tolerance);
}

TEST(Ippm, IterationLimitReturnsIterateNotGarbage) {
  util::Rng rng(7);
  const QpProblem p = transportation(rng, 4, 5);
  IppmOptions opts;
  opts.max_iterations = 2;
  const IppmSolution s = solve_qp(p, opts);
  EXPECT_EQ(s.status, IppmStatus::kIterationLimit);
  ASSERT_EQ(s.x.size(), p.num_vars);
  ASSERT_EQ(s.y.size(), p.num_cons);
  for (const double v : s.x) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 0.0);  // interior iterates stay strictly positive
  }
  for (const double v : s.y) EXPECT_TRUE(std::isfinite(v));
}

TEST(Ippm, RepeatedSolvesAreBitIdentical) {
  util::Rng rng_a(3), rng_b(3);
  const QpProblem pa = transportation(rng_a, 3, 4);
  const QpProblem pb = transportation(rng_b, 3, 4);
  const IppmSolution a = solve_qp(pa);
  const IppmSolution b = solve_qp(pb);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_EQ(a.x[i], b.x[i]) << "x[" << i << "]";
    EXPECT_EQ(a.z[i], b.z[i]) << "z[" << i << "]";
  }
  for (std::size_t i = 0; i < a.y.size(); ++i) {
    EXPECT_EQ(a.y[i], b.y[i]) << "y[" << i << "]";
  }
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.iterations, b.iterations);
}

}  // namespace
}  // namespace gasched::opt
