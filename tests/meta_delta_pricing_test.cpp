// Equivalence tests for LoadTracker's maintained top-2 completion-time
// state: makespan(), heaviest_proc(), and makespan_delta() must match a
// fresh full scan bit for bit across randomized move/swap sequences — the
// contract that lets SA, tabu search, and hill climbing read the makespan
// in O(1) without perturbing a single accepted/rejected decision.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "meta/assignment.hpp"
#include "util/rng.hpp"

namespace gasched::meta {
namespace {

sim::SystemView random_view(std::size_t procs, util::Rng& rng) {
  sim::SystemView v;
  v.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rng.uniform(5.0, 120.0);
    v.procs[j].pending_mflops = rng.bernoulli(0.5) ? rng.uniform(0.0, 500.0) : 0.0;
    v.procs[j].comm_estimate = rng.uniform(0.1, 30.0);
    v.procs[j].comm_observations = 1;
  }
  return v;
}

std::vector<double> random_sizes(std::size_t tasks, util::Rng& rng) {
  std::vector<double> s(tasks);
  for (auto& v : s) v = rng.uniform(5.0, 1500.0);
  return s;
}

/// Fresh-scan reference: first argmax of the tracker's completion times,
/// exactly as the pre-refactor O(M) implementation computed it.
struct ScanResult {
  double makespan = 0.0;
  std::size_t heaviest = 0;
};

ScanResult fresh_scan(const LoadTracker& t) {
  ScanResult r;
  double heavy_time = -1.0;
  double m = 0.0;
  for (std::size_t j = 0; j < t.num_procs(); ++j) {
    const double cj = t.completion(j);
    m = std::max(m, cj);
    if (cj > heavy_time) {
      heavy_time = cj;
      r.heaviest = j;
    }
  }
  r.makespan = m;
  return r;
}

/// Fresh-scan reference for makespan_delta: price the move arithmetically
/// against copies of the completion times and diff full-scan maxima.
double fresh_delta(const LoadTracker& t, const Move& m) {
  std::vector<double> after(t.num_procs());
  for (std::size_t j = 0; j < t.num_procs(); ++j) after[j] = t.completion(j);
  const auto& eval = t.evaluator();
  after[m.from] -= eval.task_cost_on(m.slot, m.from);
  after[m.to] += eval.task_cost_on(m.slot, m.to);
  return *std::max_element(after.begin(), after.end()) - fresh_scan(t).makespan;
}

TEST(MetaDeltaPricing, Top2MatchesFreshScanAcrossRandomMoveSequences) {
  util::Rng rng(2024);
  core::FlatSchedule flat;
  for (int round = 0; round < 25; ++round) {
    const std::size_t tasks = 1 + rng.index(40);
    const std::size_t procs = 2 + rng.index(10);
    const core::ScheduleEvaluator eval(random_sizes(tasks, rng),
                                       random_view(procs, rng),
                                       rng.bernoulli(0.5));
    core::list_schedule_flat(eval, 0.5, rng, flat);
    LoadTracker tracker(eval, flat);

    // The SA/tabu/HC inner-loop shape: propose, price the delta, apply a
    // biased-random subset. The tracked state must agree with a fresh
    // scan after every application — not just at the end.
    for (int step = 0; step < 200; ++step) {
      const Move m = tracker.random_move(rng);
      ASSERT_EQ(tracker.makespan_delta(m), fresh_delta(tracker, m));
      if (rng.bernoulli(0.7)) tracker.apply(m);
      const ScanResult ref = fresh_scan(tracker);
      ASSERT_EQ(tracker.makespan(), ref.makespan);
      ASSERT_EQ(tracker.heaviest_proc(), ref.heaviest);
    }
  }
}

TEST(MetaDeltaPricing, Top2MatchesFreshScanAcrossSwapSequences) {
  util::Rng rng(2025);
  core::FlatSchedule flat;
  for (int round = 0; round < 25; ++round) {
    const std::size_t tasks = 2 + rng.index(30);
    const std::size_t procs = 2 + rng.index(8);
    const core::ScheduleEvaluator eval(random_sizes(tasks, rng),
                                       random_view(procs, rng),
                                       rng.bernoulli(0.5));
    core::list_schedule_flat(eval, 0.0, rng, flat);
    LoadTracker tracker(eval, flat);

    for (int step = 0; step < 100; ++step) {
      const std::size_t a = rng.index(tasks);
      const std::size_t b = rng.index(tasks);
      tracker.swap_slots(a, b);  // no-op when both live on one processor
      const ScanResult ref = fresh_scan(tracker);
      ASSERT_EQ(tracker.makespan(), ref.makespan);
      ASSERT_EQ(tracker.heaviest_proc(), ref.heaviest);
    }
  }
}

TEST(MetaDeltaPricing, TieBreakingMatchesFirstArgmax) {
  // Identical rates, sizes, and no pending load or comm: every non-empty
  // queue of equal length finishes at exactly the same double, so the
  // first-argmax tie rule does real work here.
  const std::size_t procs = 6;
  sim::SystemView v;
  v.procs.resize(procs);
  for (std::size_t j = 0; j < procs; ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = 10.0;
    v.procs[j].pending_mflops = 0.0;
    v.procs[j].comm_estimate = 0.0;
    v.procs[j].comm_observations = 1;
  }
  const std::size_t tasks = 12;  // two equal tasks per processor
  const core::ScheduleEvaluator eval(std::vector<double>(tasks, 100.0), v,
                                     /*use_comm=*/false);
  core::ProcQueues queues(procs);
  for (std::size_t s = 0; s < tasks; ++s) queues[s % procs].push_back(s);
  LoadTracker tracker(eval, queues);

  // All processors tie: the heaviest is the first.
  EXPECT_EQ(tracker.heaviest_proc(), 0u);
  const ScanResult ref0 = fresh_scan(tracker);
  EXPECT_EQ(tracker.makespan(), ref0.makespan);

  util::Rng rng(2026);
  for (int step = 0; step < 300; ++step) {
    const Move m = tracker.random_move(rng);
    ASSERT_EQ(tracker.makespan_delta(m), fresh_delta(tracker, m));
    tracker.apply(m);
    const ScanResult ref = fresh_scan(tracker);
    ASSERT_EQ(tracker.makespan(), ref.makespan);
    ASSERT_EQ(tracker.heaviest_proc(), ref.heaviest);
  }
}

TEST(MetaDeltaPricing, ResetRebuildsTop2State) {
  util::Rng rng(2027);
  const std::size_t tasks = 20, procs = 5;
  const core::ScheduleEvaluator eval(random_sizes(tasks, rng),
                                     random_view(procs, rng), true);
  core::FlatSchedule a, b;
  core::list_schedule_flat(eval, 0.0, rng, a);
  core::list_schedule_flat(eval, 1.0, rng, b);

  LoadTracker tracker(eval, a);
  for (int step = 0; step < 50; ++step) tracker.apply(tracker.random_move(rng));
  tracker.reset(eval, b);

  const LoadTracker fresh(eval, b);
  EXPECT_EQ(tracker.makespan(), fresh.makespan());
  EXPECT_EQ(tracker.heaviest_proc(), fresh.heaviest_proc());
  for (std::size_t j = 0; j < procs; ++j) {
    EXPECT_EQ(tracker.completion(j), fresh.completion(j));
  }
}

TEST(MetaDeltaPricing, SingleProcessorTrackerStaysConsistent) {
  util::Rng rng(2028);
  const std::size_t tasks = 8;
  const core::ScheduleEvaluator eval(random_sizes(tasks, rng),
                                     random_view(1, rng), true);
  core::ProcQueues queues(1);
  for (std::size_t s = 0; s < tasks; ++s) queues[0].push_back(s);
  const LoadTracker tracker(eval, queues);
  EXPECT_EQ(tracker.heaviest_proc(), 0u);
  EXPECT_EQ(tracker.makespan(), fresh_scan(tracker).makespan);
}

}  // namespace
}  // namespace gasched::meta
