// Tests for the island-model parallel GA (ga/island.hpp).
//
// Uses a self-contained permutation problem — minimise the number of
// positions where the chromosome differs from the identity permutation —
// so island behaviour is tested independently of the scheduling stack.

#include "ga/island.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace gasched::ga {
namespace {

/// Objective: count of misplaced genes; fitness: 1/(1+objective).
class SortProblem final : public GaProblem {
 public:
  double fitness(const Chromosome& c) const override {
    return 1.0 / (1.0 + objective(c));
  }
  double objective(const Chromosome& c) const override {
    double misplaced = 0.0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c[i] != static_cast<Gene>(i)) misplaced += 1.0;
    }
    return misplaced;
  }
};

std::vector<Chromosome> scrambled_population(std::size_t count,
                                             std::size_t length,
                                             util::Rng& rng) {
  std::vector<Chromosome> pop;
  pop.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Chromosome c(length);
    std::iota(c.begin(), c.end(), Gene{0});
    rng.shuffle(c);
    pop.push_back(std::move(c));
  }
  return pop;
}

IslandConfig base_config() {
  IslandConfig cfg;
  cfg.ga.population = 12;
  cfg.ga.max_generations = 120;
  cfg.ga.mutants_per_generation = 2;
  cfg.islands = 4;
  cfg.migration_interval = 20;
  cfg.migrants = 2;
  return cfg;
}

struct Operators {
  RouletteSelection selection;
  CycleCrossover crossover;
  SwapMutation mutation;
};

IslandResult run(const IslandConfig& cfg, std::uint64_t seed,
                 std::size_t length = 12, const StopPredicate& stop = {}) {
  const SortProblem problem;
  const Operators ops;
  util::Rng rng(seed);
  auto initial =
      scrambled_population(cfg.ga.population * cfg.islands, length, rng);
  util::Rng run_rng = rng.split(99);
  return run_island_ga(problem, cfg, ops.selection, ops.crossover,
                       ops.mutation, std::move(initial), run_rng, stop);
}

TEST(IslandGa, RejectsDegenerateConfigurations) {
  const SortProblem problem;
  const Operators ops;
  util::Rng rng(1);
  IslandConfig cfg = base_config();

  cfg.islands = 0;
  EXPECT_THROW(run_island_ga(problem, cfg, ops.selection, ops.crossover,
                             ops.mutation, scrambled_population(4, 6, rng),
                             rng),
               std::invalid_argument);

  cfg = base_config();
  cfg.migration_interval = 0;
  EXPECT_THROW(run_island_ga(problem, cfg, ops.selection, ops.crossover,
                             ops.mutation, scrambled_population(4, 6, rng),
                             rng),
               std::invalid_argument);

  cfg = base_config();
  EXPECT_THROW(run_island_ga(problem, cfg, ops.selection, ops.crossover,
                             ops.mutation, {}, rng),
               std::invalid_argument);
}

TEST(IslandGa, SolvesSmallPermutationProblem) {
  const auto result = run(base_config(), 7, 8);
  EXPECT_LE(result.best.best_objective, 2.0);
}

TEST(IslandGa, ParallelAndSequentialAreBitIdentical) {
  IslandConfig par = base_config();
  par.parallel = true;
  IslandConfig seq = base_config();
  seq.parallel = false;

  const auto a = run(par, 21);
  const auto b = run(seq, 21);
  EXPECT_EQ(a.best.best, b.best.best);
  EXPECT_EQ(a.best.best_objective, b.best.best_objective);
  EXPECT_EQ(a.island_objectives, b.island_objectives);
  EXPECT_EQ(a.total_generations, b.total_generations);
}

TEST(IslandGa, ReportsPerIslandObjectives) {
  const auto result = run(base_config(), 3);
  ASSERT_EQ(result.island_objectives.size(), 4u);
  for (const double obj : result.island_objectives) {
    EXPECT_GE(obj, 0.0);
    EXPECT_GE(obj, result.best.best_objective);
  }
}

TEST(IslandGa, GenerationAccountingSumsIslands) {
  IslandConfig cfg = base_config();
  cfg.ga.max_generations = 60;
  cfg.ga.stall_generations = 0;  // no early stop
  cfg.ga.target_objective = 0.0;
  const auto result = run(cfg, 11);
  // Each of the 4 islands evolves the full 60-generation budget.
  EXPECT_EQ(result.total_generations, 4u * 60u);
}

TEST(IslandGa, StopPredicateHaltsBetweenEpochs) {
  IslandConfig cfg = base_config();
  cfg.ga.max_generations = 1000;
  std::size_t calls = 0;
  const auto result = run(cfg, 5, 12, [&](std::size_t gen, double) {
    ++calls;
    return gen >= 40;  // allow two 20-generation epochs
  });
  EXPECT_GT(calls, 0u);
  EXPECT_EQ(result.total_generations, 4u * 40u);
}

TEST(IslandGa, SingleIslandDegeneratesToPlainGa) {
  IslandConfig cfg = base_config();
  cfg.islands = 1;
  const auto result = run(cfg, 9);
  ASSERT_EQ(result.island_objectives.size(), 1u);
  EXPECT_EQ(result.island_objectives[0], result.best.best_objective);
}

TEST(IslandGa, MigrationNotWorseThanIsolation) {
  // With micro-populations, migration should help (or at least not hurt)
  // on average. Compare summed best objectives across several seeds.
  double with_migration = 0.0;
  double without = 0.0;
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    IslandConfig mig = base_config();
    mig.ga.max_generations = 80;
    IslandConfig iso = mig;
    iso.migrants = 0;
    with_migration += run(mig, seed, 16).best.best_objective;
    without += run(iso, seed, 16).best.best_objective;
  }
  EXPECT_LE(with_migration, without + 2.0);
}

}  // namespace
}  // namespace gasched::ga
