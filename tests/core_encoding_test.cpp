// Tests for the schedule encoding (paper §3.1, Fig 2).

#include "core/encoding.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gasched::core {
namespace {

TEST(Codec, ChromosomeLengthIsHPlusMMinusOne) {
  EXPECT_EQ(ScheduleCodec(10, 4).chromosome_length(), 13u);
  EXPECT_EQ(ScheduleCodec(0, 3).chromosome_length(), 2u);
  EXPECT_EQ(ScheduleCodec(5, 1).chromosome_length(), 5u);
}

TEST(Codec, RejectsZeroProcessors) {
  EXPECT_THROW(ScheduleCodec(5, 0), std::invalid_argument);
}

TEST(Codec, EncodeDecodeRoundTrip) {
  const ScheduleCodec codec(6, 3);
  const ProcQueues queues{{0, 3}, {1, 4, 5}, {2}};
  const ga::Chromosome c = codec.encode(queues);
  EXPECT_EQ(c.size(), codec.chromosome_length());
  EXPECT_TRUE(codec.valid(c));
  EXPECT_EQ(codec.decode(c), queues);
}

TEST(Codec, PaperFigureTwoShape) {
  // Fig 2 example: queues split by delimiters; verify layout precisely.
  const ScheduleCodec codec(4, 3);
  const ProcQueues queues{{2, 0}, {}, {1, 3}};
  const ga::Chromosome c = codec.encode(queues);
  // P0: 2 0 | P1: (empty) | P2: 1 3  =>  [2, 0, d0, d1, 1, 3]
  const ga::Chromosome expected{2, 0, ScheduleCodec::delimiter_gene(0),
                                ScheduleCodec::delimiter_gene(1), 1, 3};
  EXPECT_EQ(c, expected);
}

TEST(Codec, EmptyBatchEncodesOnlyDelimiters) {
  const ScheduleCodec codec(0, 4);
  const ga::Chromosome c = codec.encode(ProcQueues(4));
  EXPECT_EQ(c.size(), 3u);
  for (const auto g : c) EXPECT_TRUE(ScheduleCodec::is_delimiter(g));
}

TEST(Codec, SingleProcessorNoDelimiters) {
  const ScheduleCodec codec(3, 1);
  const ProcQueues queues{{2, 0, 1}};
  const ga::Chromosome c = codec.encode(queues);
  EXPECT_EQ(c, (ga::Chromosome{2, 0, 1}));
  EXPECT_EQ(codec.decode(c), queues);
}

TEST(Codec, EncodeRejectsBadQueues) {
  const ScheduleCodec codec(4, 2);
  EXPECT_THROW(codec.encode(ProcQueues{{0, 1}}), std::invalid_argument);
  // Slot out of range.
  EXPECT_THROW(codec.encode(ProcQueues{{0, 9}, {1, 2}}),
               std::invalid_argument);
  // Missing a task.
  EXPECT_THROW(codec.encode(ProcQueues{{0}, {1, 2}}), std::invalid_argument);
  // Duplicate task (length exceeds H+M-1).
  EXPECT_THROW(codec.encode(ProcQueues{{0, 0}, {1, 2, 3}}),
               std::invalid_argument);
}

TEST(Codec, DecodeAnyPermutationAssignsEveryTaskOnce) {
  const ScheduleCodec codec(12, 5);
  ga::Chromosome c;
  for (std::size_t i = 0; i < 12; ++i) c.push_back(static_cast<ga::Gene>(i));
  for (std::size_t k = 0; k < 4; ++k) {
    c.push_back(ScheduleCodec::delimiter_gene(k));
  }
  util::Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    rng.shuffle(c);
    ASSERT_TRUE(codec.valid(c));
    const ProcQueues q = codec.decode(c);
    ASSERT_EQ(q.size(), 5u);
    std::vector<int> seen(12, 0);
    for (const auto& queue : q) {
      for (const auto slot : queue) ++seen[slot];
    }
    for (const int s : seen) ASSERT_EQ(s, 1);
  }
}

TEST(Codec, ValidRejectsWrongLengthAndDuplicates) {
  const ScheduleCodec codec(3, 2);
  EXPECT_FALSE(codec.valid({0, 1, 2}));                       // too short
  EXPECT_FALSE(codec.valid({0, 1, 1, ScheduleCodec::delimiter_gene(0)}));
  EXPECT_FALSE(codec.valid({0, 1, 5, ScheduleCodec::delimiter_gene(0)}));
  EXPECT_FALSE(codec.valid({0, 1, 2, ScheduleCodec::delimiter_gene(3)}));
  EXPECT_TRUE(codec.valid({0, 1, 2, ScheduleCodec::delimiter_gene(0)}));
}

TEST(Codec, DecodeRejectsTooManyDelimiters) {
  const ScheduleCodec codec(2, 2);
  const ga::Chromosome c{0, ScheduleCodec::delimiter_gene(0),
                         ScheduleCodec::delimiter_gene(1), 1};
  EXPECT_THROW(codec.decode(c), std::invalid_argument);
}

TEST(Codec, DelimiterGenesAreDistinctNegatives) {
  for (std::size_t k = 0; k < 10; ++k) {
    const ga::Gene g = ScheduleCodec::delimiter_gene(k);
    EXPECT_LT(g, 0);
    EXPECT_TRUE(ScheduleCodec::is_delimiter(g));
    for (std::size_t k2 = 0; k2 < k; ++k2) {
      EXPECT_NE(g, ScheduleCodec::delimiter_gene(k2));
    }
  }
}

}  // namespace
}  // namespace gasched::core
