// Tests for the JSON writer (util/json.hpp) and the experiment JSON
// export (metrics/report_json.hpp).

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <cmath>
#include <fstream>

#include "metrics/report_json.hpp"

namespace gasched::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, FiniteRoundTripsNonFiniteIsNull) {
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(1.0 / 0.0), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
  // 17 significant digits round-trip doubles exactly.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(v)), v);
}

TEST(JsonWriter, BuildsNestedDocument) {
  JsonWriter w;
  w.begin_object();
  w.key("name").string("gasched");
  w.key("n").number(std::int64_t{3});
  w.key("ok").boolean(true);
  w.key("none").null();
  w.key("xs").begin_array().number(1.5).number(2.5).end_array();
  w.key("inner").begin_object().key("a").number(std::int64_t{1}).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"gasched\",\"n\":3,\"ok\":true,\"none\":null,"
            "\"xs\":[1.5,2.5],\"inner\":{\"a\":1}}");
}

TEST(JsonWriter, TopLevelScalarIsValid) {
  JsonWriter w;
  w.number(42.0);
  EXPECT_EQ(w.str(), "42");
}

TEST(JsonWriter, RejectsMisuse) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.number(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed container
  }
  {
    JsonWriter w;
    w.number(1.0);
    EXPECT_THROW(w.number(2.0), std::logic_error);  // two documents
  }
}

TEST(ReportJson, CellAndExperimentSerialise) {
  metrics::CellSummary cell;
  cell.scheduler = "PN";
  cell.replications = 3;
  cell.makespan.count = 3;
  cell.makespan.mean = 123.5;
  cell.makespan.ci95 = 4.5;

  const std::string js = metrics::cell_to_json(cell);
  EXPECT_NE(js.find("\"scheduler\":\"PN\""), std::string::npos);
  EXPECT_NE(js.find("\"mean\":123.5"), std::string::npos);

  const std::string doc = metrics::experiment_to_json("fig05", {cell, cell});
  EXPECT_NE(doc.find("\"experiment\":\"fig05\""), std::string::npos);
  // Two cells in the array.
  std::size_t n = 0;
  for (std::size_t pos = 0;
       (pos = doc.find("\"scheduler\"", pos)) != std::string::npos; ++pos) {
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(ReportJson, WritesFile) {
  metrics::CellSummary cell;
  cell.scheduler = "EF";
  const auto path =
      std::filesystem::temp_directory_path() / "gasched_json_test.json";
  metrics::write_experiment_json("t", {cell}, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"scheduler\":\"EF\""), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gasched::util
