// figset plot smoke tests: the emitted gnuplot/matplotlib scripts must
// reference CSV columns strictly by name, and only names that actually
// appear in the CSV header CsvSink writes for that figure's sweep.

#include "exp/figset.hpp"

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/numeric.hpp"
#include "exp/sweep.hpp"
#include "metrics/sink.hpp"

namespace fs = std::filesystem;
using namespace gasched;

namespace {

// The emitted plot scripts are validated against the exact-mode CSV
// header; under the fast numeric mode sweeps add an audit_max_dev column
// the figure scripts don't reference. Pin exact so the fast-mode CI run
// keeps validating the canonical header set.
const struct PinExactMode {
  PinExactMode() { core::set_default_numeric_mode(core::NumericMode::kExact); }
} pin_exact_mode;

fs::path temp_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Every column name the script references: gnuplot `column('…')` and
/// `strcol('…')`, python `row['…']`.
std::set<std::string> referenced_columns(const std::string& text) {
  std::set<std::string> out;
  const std::regex pattern(
      R"((?:column|strcol)\('([^']*)'\)|row\['([^']*)'\])");
  for (std::sregex_iterator it(text.begin(), text.end(), pattern), end;
       it != end; ++it) {
    out.insert((*it)[1].matched ? (*it)[1].str() : (*it)[2].str());
  }
  return out;
}

/// The header of the CSV a `figset run` writes for this figure.
std::set<std::string> csv_header_columns(const exp::Sweep& sweep) {
  metrics::SweepHeader header;
  header.name = sweep.name();
  header.axes = sweep.axis_names();
  header.extra_columns = sweep.extra_column_names();
  const auto cols = metrics::csv_columns(header);
  return {cols.begin(), cols.end()};
}

}  // namespace

TEST(FigsetPlotTest, ScriptsReferenceOnlyCsvHeaderColumns) {
  const fs::path dir = temp_dir("gasched_figset_plot_test");
  for (const auto& fig : exp::FigSet::instance().figures()) {
    const auto paths =
        exp::write_plot_scripts(fig, fig.scale(/*full=*/false), dir);
    ASSERT_EQ(paths.size(), 2u) << fig.id;
    const auto allowed = csv_header_columns(fig.build(fig.scale(false)));
    for (const auto& path : paths) {
      ASSERT_TRUE(fs::exists(path)) << path;
      const std::string text = slurp(path);
      const auto referenced = referenced_columns(text);
      EXPECT_FALSE(referenced.empty())
          << path << " references no columns by name";
      for (const auto& column : referenced) {
        EXPECT_TRUE(allowed.count(column) > 0)
            << path << " references '" << column
            << "', which is not a column of " << fig.id << ".csv";
      }
      // Scripts must read the figure's CSV (by relative name) and render
      // the figure's PNG.
      EXPECT_NE(text.find(fig.id + ".csv"), std::string::npos) << path;
      EXPECT_NE(text.find(fig.id + ".png"), std::string::npos) << path;
    }
  }
  fs::remove_all(dir);
}

TEST(FigsetPlotTest, NumericAxisFiguresGetOneSeriesPerScheduler) {
  const fs::path dir = temp_dir("gasched_figset_plot_numeric");
  const auto& fig = exp::FigSet::instance().find("fig05");
  exp::write_plot_scripts(fig, fig.scale(false), dir);
  const std::string gp = slurp(dir / "fig05.gp");
  EXPECT_NE(gp.find("strcol('scheduler')"), std::string::npos);
  EXPECT_NE(gp.find("with linespoints"), std::string::npos);
  const std::string py = slurp(dir / "fig05.py");
  EXPECT_NE(py.find("row['scheduler'] == name"), std::string::npos);
  fs::remove_all(dir);
}

TEST(FigsetPlotTest, CategoricalFiguresGetLabeledBars) {
  const fs::path dir = temp_dir("gasched_figset_plot_bars");
  const auto& fig = exp::FigSet::instance().find("fig06");
  exp::write_plot_scripts(fig, fig.scale(false), dir);
  const std::string gp = slurp(dir / "fig06.gp");
  EXPECT_NE(gp.find("boxerrorbars"), std::string::npos);
  EXPECT_NE(gp.find("xtic(strcol('scheduler'))"), std::string::npos);
  const std::string py = slurp(dir / "fig06.py");
  EXPECT_NE(py.find("ax.bar("), std::string::npos);
  fs::remove_all(dir);
}

// Closes the loop behind ScriptsReferenceOnlyCsvHeaderColumns: the
// csv_columns vocabulary the test (and the plot emitter) use must be the
// actual header CsvSink writes, verified on a cheap custom-runner sweep
// with axes and extras.
TEST(FigsetPlotTest, CsvColumnsMatchesTheHeaderCsvSinkWrites) {
  exp::Sweep sweep("plot_header_probe");
  exp::Scenario base;
  base.name = "probe";
  base.replications = 1;
  sweep.base(base);
  sweep.axis("alpha", {exp::Sweep::Value{"a", {}}, exp::Sweep::Value{"b", {}}});
  sweep.extra_columns({"extra_one", "extra_two"});
  sweep.runner([](const exp::SweepCell& cell, bool) {
    exp::CellOutcome out;
    out.summary.scheduler = cell.coord("alpha");
    out.summary.replications = 1;
    out.extras = {{"extra_one", 1.0}, {"extra_two", 2.0}};
    return out;
  });

  const fs::path dir = temp_dir("gasched_figset_plot_header");
  const fs::path csv = dir / "probe.csv";
  metrics::CsvSink sink(csv);
  sweep.add_sink(sink).parallel(false).progress(false);
  sweep.run();

  std::ifstream in(csv);
  std::string header_line;
  ASSERT_TRUE(std::getline(in, header_line));

  metrics::SweepHeader header;
  header.name = sweep.name();
  header.axes = sweep.axis_names();
  header.extra_columns = sweep.extra_column_names();
  std::string expected;
  for (const auto& col : metrics::csv_columns(header)) {
    if (!expected.empty()) expected += ",";
    expected += col;
  }
  EXPECT_EQ(header_line, expected);
  fs::remove_all(dir);
}
