// Tests for the discrete-event engine: protocol correctness, accounting,
// determinism, and failure detection.

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "workload/generator.hpp"

namespace gasched::sim {
namespace {

using workload::Task;
using workload::Workload;

/// Assigns every unscheduled task round-robin immediately.
class TestRoundRobin final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view,
                         std::deque<Task>& queue, util::Rng&) override {
    auto a = BatchAssignment::empty(view.size());
    std::size_t j = 0;
    while (!queue.empty()) {
      a.per_proc[j % view.size()].push_back(queue.front().id);
      queue.pop_front();
      ++j;
    }
    return a;
  }
  std::string name() const override { return "test-rr"; }
};

/// Assigns everything to processor 0.
class AllToZero final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view,
                         std::deque<Task>& queue, util::Rng&) override {
    auto a = BatchAssignment::empty(view.size());
    while (!queue.empty()) {
      a.per_proc[0].push_back(queue.front().id);
      queue.pop_front();
    }
    return a;
  }
  std::string name() const override { return "all-to-zero"; }
};

/// Never assigns anything (protocol-deadlock probe).
class NeverAssign final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view, std::deque<Task>&,
                         util::Rng&) override {
    return BatchAssignment::empty(view.size());
  }
  std::string name() const override { return "never"; }
};

/// Records the views it is given, then delegates to round robin.
class ViewProbe final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view,
                         std::deque<Task>& queue, util::Rng& rng) override {
    views.push_back(view);
    return inner.invoke(view, queue, rng);
  }
  std::string name() const override { return "probe"; }
  std::vector<SystemView> views;
  TestRoundRobin inner;
};

Cluster homogeneous_cluster(std::size_t procs, double rate, bool zero_comm,
                            double mean_comm = 10.0) {
  ClusterConfig cfg;
  cfg.num_processors = procs;
  cfg.rate_lo = rate;
  cfg.rate_hi = rate;
  cfg.zero_comm = zero_comm;
  cfg.comm.mean_cost = mean_comm;
  cfg.comm.spread_cv = 0.0;
  cfg.comm.jitter_cv = 0.0;
  util::Rng rng(7);
  return build_cluster(cfg, rng);
}

Workload constant_workload(std::size_t count, double size) {
  workload::ConstantSizes dist(size);
  util::Rng rng(3);
  return workload::generate(dist, count, rng);
}

TEST(Engine, SingleProcessorZeroCommExactMakespan) {
  const Cluster c = homogeneous_cluster(1, 10.0, /*zero_comm=*/true);
  const Workload w = constant_workload(5, 100.0);  // 5 × 10 s
  TestRoundRobin policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_EQ(r.tasks_completed, 5u);
  EXPECT_DOUBLE_EQ(r.makespan, 50.0);
  EXPECT_DOUBLE_EQ(r.efficiency(), 1.0);
}

TEST(Engine, TwoProcessorsSplitWorkEvenly) {
  const Cluster c = homogeneous_cluster(2, 10.0, true);
  const Workload w = constant_workload(10, 100.0);
  TestRoundRobin policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  // 5 tasks each at 10 s = 50 s.
  EXPECT_DOUBLE_EQ(r.makespan, 50.0);
  EXPECT_EQ(r.per_proc[0].tasks, 5u);
  EXPECT_EQ(r.per_proc[1].tasks, 5u);
  EXPECT_DOUBLE_EQ(r.efficiency(), 1.0);
}

TEST(Engine, CommunicationCostExtendsMakespanAndCutsEfficiency) {
  const Cluster c = homogeneous_cluster(1, 10.0, false, /*mean_comm=*/5.0);
  const Workload w = constant_workload(4, 100.0);
  TestRoundRobin policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  // Each task: 5 s comm + 10 s exec, serialized on one processor.
  EXPECT_NEAR(r.makespan, 60.0, 1e-9);
  EXPECT_NEAR(r.efficiency(), 40.0 / 60.0, 1e-9);
  EXPECT_NEAR(r.total_comm_time(), 20.0, 1e-9);
}

TEST(Engine, AllTasksCompleteOnImbalancedAssignment) {
  const Cluster c = homogeneous_cluster(3, 10.0, true);
  const Workload w = constant_workload(9, 50.0);
  AllToZero policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_EQ(r.tasks_completed, 9u);
  EXPECT_EQ(r.per_proc[0].tasks, 9u);
  EXPECT_EQ(r.per_proc[1].tasks, 0u);
  // Only 1 of 3 processors works: efficiency 1/3.
  EXPECT_NEAR(r.efficiency(), 1.0 / 3.0, 1e-9);
}

TEST(Engine, FasterProcessorFinishesProportionallyFaster) {
  ClusterConfig cfg;
  cfg.num_processors = 1;
  cfg.rate_lo = cfg.rate_hi = 20.0;
  cfg.zero_comm = true;
  util::Rng crng(7);
  const Cluster fast = build_cluster(cfg, crng);
  const Cluster slow = homogeneous_cluster(1, 10.0, true);
  const Workload w = constant_workload(4, 100.0);
  TestRoundRobin p1, p2;
  const auto rf = simulate(fast, w, p1, util::Rng(1));
  const auto rs = simulate(slow, w, p2, util::Rng(1));
  EXPECT_NEAR(rs.makespan / rf.makespan, 2.0, 1e-9);
}

TEST(Engine, DeterministicGivenSeed) {
  const Cluster c = homogeneous_cluster(4, 25.0, false, 3.0);
  workload::UniformSizes dist(10.0, 100.0);
  util::Rng wrng(5);
  const Workload w = workload::generate(dist, 200, wrng);
  TestRoundRobin p1, p2;
  const auto a = simulate(c, w, p1, util::Rng(99));
  const auto b = simulate(c, w, p2, util::Rng(99));
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.efficiency(), b.efficiency());
}

TEST(Engine, NeverAssigningPolicyIsDetectedAsDeadlock) {
  const Cluster c = homogeneous_cluster(2, 10.0, true);
  const Workload w = constant_workload(3, 10.0);
  NeverAssign policy;
  EXPECT_THROW(simulate(c, w, policy, util::Rng(1)), std::runtime_error);
}

TEST(Engine, UnknownTaskIdInAssignmentThrows) {
  class BadPolicy final : public SchedulingPolicy {
   public:
    BatchAssignment invoke(const SystemView& view, std::deque<Task>& queue,
                           util::Rng&) override {
      auto a = BatchAssignment::empty(view.size());
      queue.clear();
      a.per_proc[0].push_back(9999);  // not a real task
      return a;
    }
    std::string name() const override { return "bad"; }
  };
  const Cluster c = homogeneous_cluster(1, 10.0, true);
  const Workload w = constant_workload(2, 10.0);
  BadPolicy policy;
  EXPECT_THROW(simulate(c, w, policy, util::Rng(1)), std::runtime_error);
}

TEST(Engine, DuplicateTaskIdsRejected) {
  const Cluster c = homogeneous_cluster(1, 10.0, true);
  Workload w;
  w.tasks = {{0, 10.0, 0.0}, {0, 20.0, 0.0}};
  TestRoundRobin policy;
  EXPECT_THROW(simulate(c, w, policy, util::Rng(1)), std::invalid_argument);
}

TEST(Engine, EmptyClusterRejected) {
  Cluster c;
  const Workload w = constant_workload(1, 10.0);
  TestRoundRobin policy;
  EXPECT_THROW(simulate(c, w, policy, util::Rng(1)), std::invalid_argument);
}

TEST(Engine, CommEstimatesBecomeVisibleToLaterInvocations) {
  // Use streaming arrivals so the policy is invoked repeatedly; later
  // views must carry per-link comm observations.
  ClusterConfig cfg;
  cfg.num_processors = 2;
  cfg.rate_lo = cfg.rate_hi = 10.0;
  cfg.comm.mean_cost = 4.0;
  cfg.comm.spread_cv = 0.0;
  cfg.comm.jitter_cv = 0.0;
  util::Rng crng(7);
  const Cluster c = build_cluster(cfg, crng);

  workload::ConstantSizes dist(100.0);
  util::Rng wrng(3);
  workload::ArrivalConfig arr;
  arr.all_at_start = false;
  arr.mean_interarrival = 30.0;
  const Workload w = workload::generate(dist, 20, wrng, arr);

  ViewProbe probe;
  const auto r = simulate(c, w, probe, util::Rng(1));
  EXPECT_EQ(r.tasks_completed, 20u);
  ASSERT_GT(probe.views.size(), 1u);
  const auto& last = probe.views.back();
  bool observed = false;
  for (const auto& p : last.procs) {
    if (p.comm_observations > 0) {
      observed = true;
      EXPECT_NEAR(p.comm_estimate, 4.0, 1e-9);  // zero jitter => exact
    }
  }
  EXPECT_TRUE(observed);
}

TEST(Engine, PendingLoadVisibleInView) {
  // With all tasks at t=0 and one invocation, the first view must show
  // zero pending; engine-internal accounting is observed via a second
  // streaming arrival.
  const Cluster c = homogeneous_cluster(1, 10.0, true);
  Workload w;
  w.tasks = {{0, 100.0, 0.0}, {1, 100.0, 5.0}};  // second arrives mid-run
  ViewProbe probe;
  const auto r = simulate(c, w, probe, util::Rng(1));
  EXPECT_EQ(r.tasks_completed, 2u);
  ASSERT_EQ(probe.views.size(), 2u);
  EXPECT_DOUBLE_EQ(probe.views[0].procs[0].pending_mflops, 0.0);
  // At t=5 the first task (10 s long) still has half its work left.
  EXPECT_NEAR(probe.views[1].procs[0].pending_mflops, 50.0, 1e-9);
}

TEST(Engine, RateEstimateConvergesToTrueRate) {
  ClusterConfig cfg;
  cfg.num_processors = 1;
  cfg.rate_lo = cfg.rate_hi = 40.0;
  cfg.zero_comm = true;
  util::Rng crng(7);
  const Cluster c = build_cluster(cfg, crng);
  workload::ConstantSizes dist(100.0);
  util::Rng wrng(3);
  workload::ArrivalConfig arr;
  arr.all_at_start = false;
  arr.mean_interarrival = 10.0;
  const Workload w = workload::generate(dist, 10, wrng, arr);
  ViewProbe probe;
  simulate(c, w, probe, util::Rng(1));
  ASSERT_GT(probe.views.size(), 2u);
  EXPECT_NEAR(probe.views.back().procs[0].rate, 40.0, 1e-6);
}

TEST(Engine, MeanResponseTimePositiveAndBounded) {
  const Cluster c = homogeneous_cluster(2, 10.0, true);
  const Workload w = constant_workload(10, 100.0);
  TestRoundRobin policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_GT(r.mean_response_time, 0.0);
  EXPECT_LE(r.mean_response_time, r.makespan);
}

TEST(Engine, SchedulerInvocationsCounted) {
  const Cluster c = homogeneous_cluster(2, 10.0, true);
  const Workload w = constant_workload(6, 10.0);
  TestRoundRobin policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_GE(r.scheduler_invocations, 1u);
}

TEST(Engine, TimeVaryingAvailabilitySlowsExecution) {
  ClusterConfig base;
  base.num_processors = 1;
  base.rate_lo = base.rate_hi = 10.0;
  base.zero_comm = true;
  util::Rng r1(7);
  const Cluster dedicated = build_cluster(base, r1);

  ClusterConfig loaded = base;
  loaded.availability = AvailabilityKind::kSinusoidal;
  loaded.avail_lo = 0.3;
  loaded.avail_hi = 0.6;
  loaded.avail_period = 50.0;
  util::Rng r2(7);
  const Cluster busy = build_cluster(loaded, r2);

  const Workload w = constant_workload(5, 200.0);
  TestRoundRobin p1, p2;
  const auto fast = simulate(dedicated, w, p1, util::Rng(1));
  const auto slow = simulate(busy, w, p2, util::Rng(1));
  EXPECT_GT(slow.makespan, fast.makespan * 1.5);
}

}  // namespace
}  // namespace gasched::sim
