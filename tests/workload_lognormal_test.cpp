// Tests for the lognormal size family: sampling statistics, parameter
// validation, and the full INI → DistributionRegistry → simulation
// round-trip (ROADMAP "registry growth directions").

#include "workload/heavy_tail.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "exp/config_scenario.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace gasched::workload {
namespace {

TEST(LognormalSizes, SampleMeanMatchesTheory) {
  const LognormalSizes dist(1000.0, 0.8);
  EXPECT_EQ(dist.name(), "lognormal");
  EXPECT_DOUBLE_EQ(dist.mean(), 1000.0 * std::exp(0.5 * 0.8 * 0.8));
  util::Rng rng(12345);
  const std::size_t n = 200000;
  double sum = 0.0, below_median = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, dist.min_size());
    sum += x;
    if (x < 1000.0) below_median += 1.0;
  }
  EXPECT_NEAR(sum / static_cast<double>(n), dist.mean(),
              0.03 * dist.mean());
  // The median of a lognormal is e^mu = the `median` parameter.
  EXPECT_NEAR(below_median / static_cast<double>(n), 0.5, 0.01);
}

TEST(LognormalSizes, SigmaZeroDegeneratesToConstant) {
  const LognormalSizes dist(500.0, 0.0);
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(dist.sample(rng), 500.0);
  }
}

TEST(LognormalSizes, FloorClampsSmallDraws) {
  const LognormalSizes dist(2.0, 3.0, /*floor=*/1.5);
  util::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(dist.sample(rng), 1.5);
  }
}

TEST(LognormalSizes, InvalidParametersThrow) {
  EXPECT_THROW(LognormalSizes(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LognormalSizes(-5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LognormalSizes(10.0, -0.1), std::invalid_argument);
  EXPECT_THROW(LognormalSizes(10.0, 1.0, 0.0), std::invalid_argument);
}

TEST(LognormalConfig, RegistryRoundTripFromIni) {
  // The family must be selectable from a scenario INI with its named
  // keys surviving the Config → WorkloadSpec → factory round trip.
  const util::Config cfg = util::Config::parse(R"(
[workload]
dist = LOGNORMAL
median = 750
sigma = 0.5
floor = 2
count = 80
)");
  const exp::Scenario s = exp::scenario_from_config(cfg);
  EXPECT_EQ(s.workload.dist, "lognormal");  // canonicalised
  const auto dist = exp::make_distribution(s.workload);
  EXPECT_EQ(dist->name(), "lognormal");
  EXPECT_DOUBLE_EQ(dist->min_size(), 2.0);
  EXPECT_DOUBLE_EQ(dist->mean(), 750.0 * std::exp(0.5 * 0.25));
}

TEST(LognormalConfig, DefaultsFallBackToParamA) {
  exp::WorkloadSpec spec;
  spec.dist = "lognormal";
  spec.param_a = 333.0;  // median fallback
  const auto dist = exp::make_distribution(spec);
  EXPECT_DOUBLE_EQ(dist->mean(), 333.0 * std::exp(0.5));
}

TEST(LognormalConfig, ConfigScenarioSimulatesDeterministically) {
  const util::Config cfg = util::Config::parse(R"(
[scenario]
replications = 2

[cluster]
processors = 4

[workload]
dist = lognormal
median = 300
sigma = 1.2
count = 50
)");
  const exp::Scenario s = exp::scenario_from_config(cfg);
  const auto a = exp::run_replications(s, "EF", {});
  const auto b = exp::run_replications(s, "EF", {});
  ASSERT_EQ(a.size(), 2u);
  EXPECT_GT(a[0].makespan, 0.0);
  EXPECT_DOUBLE_EQ(a[0].makespan, b[0].makespan);
  EXPECT_DOUBLE_EQ(a[1].makespan, b[1].makespan);
}

}  // namespace
}  // namespace gasched::workload
