// Tests for the thread pool: completion, exception propagation, and
// parallel_for coverage/determinism properties.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gasched::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeMatchesRequested) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelFor, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(3, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 3u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, NonZeroBeginRespected) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+11+...+19
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [&](std::size_t i) {
                                   if (i == 42) {
                                     throw std::runtime_error("iter failed");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, ResultsIndependentOfThreadCount) {
  // The same deterministic per-index computation must produce identical
  // output regardless of pool width (HPC reproducibility requirement).
  const std::size_t n = 500;
  auto compute = [](std::size_t i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < 100; ++k) {
      acc += static_cast<double>(i * k % 17);
    }
    return acc;
  };
  std::vector<double> serial(n), wide(n);
  ThreadPool one(1), many(8);
  one.parallel_for(0, n, [&](std::size_t i) { serial[i] = compute(i); });
  many.parallel_for(0, n, [&](std::size_t i) { wide[i] = compute(i); });
  EXPECT_EQ(serial, wide);
}

TEST(ParallelFor, NestedFromPoolWorkerDoesNotDeadlock) {
  // The sweep executor parallelises cells on the pool and each cell's
  // replications call parallel_for again from a worker thread. Before
  // help-first waiting this deadlocked as soon as every worker blocked
  // in an outer wait; now waiters execute queued jobs instead.
  ThreadPool pool(4);
  const std::size_t outer = 8, inner = 64;
  std::vector<std::vector<std::atomic<int>>> hits(outer);
  for (auto& row : hits) {
    row = std::vector<std::atomic<int>>(inner);
  }
  pool.parallel_for(0, outer, [&](std::size_t i) {
    pool.parallel_for(0, inner,
                      [&](std::size_t j) { hits[i][j].fetch_add(1); });
  });
  for (std::size_t i = 0; i < outer; ++i) {
    for (std::size_t j = 0; j < inner; ++j) {
      ASSERT_EQ(hits[i][j].load(), 1) << i << "," << j;
    }
  }
}

TEST(ParallelFor, NestedOnSingleThreadPoolStillCompletes) {
  // With one worker the calling thread drains everything itself; nested
  // calls must still terminate (the submitted helpers become no-ops).
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 16, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, TriplyNestedCoversEveryIndex) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) {
      pool.parallel_for(0, 5, [&](std::size_t) { count.fetch_add(1); });
    });
  });
  EXPECT_EQ(count.load(), 3 * 4 * 5);
}

TEST(ParallelFor, NestedExceptionPropagatesToOuterCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [&](std::size_t i) {
                          pool.parallel_for(0, 8, [&](std::size_t j) {
                            if (i == 2 && j == 3) {
                              throw std::runtime_error("inner failed");
                            }
                          });
                        }),
      std::runtime_error);
}

TEST(ThreadPool, TryRunOneDrainsQueuedJobs) {
  // A pool whose single worker is parked can still make progress through
  // a helping caller.
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    started.store(true);
    while (!release.load()) {
      std::this_thread::yield();
    }
  });
  // Wait until the worker holds the blocker so try_run_one below cannot
  // pick it up (and spin on a flag only this thread sets).
  while (!started.load()) {
    std::this_thread::yield();
  }
  std::atomic<int> ran{0};
  auto queued = pool.submit([&] { ran.fetch_add(1); });
  EXPECT_TRUE(pool.try_run_one());  // runs the queued job inline
  EXPECT_EQ(ran.load(), 1);
  EXPECT_FALSE(pool.try_run_one());  // queue empty now
  release.store(true);
  blocker.get();
  queued.get();
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
  EXPECT_GE(global_pool().size(), 1u);
}

}  // namespace
}  // namespace gasched::util
