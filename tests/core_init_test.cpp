// Tests for the list-scheduling initial population (paper §3.3).

#include "core/init.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace gasched::core {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
  }
  return v;
}

std::vector<double> uniform_sizes(std::size_t n, util::Rng& rng) {
  std::vector<double> s(n);
  for (auto& v : s) v = rng.uniform(10.0, 100.0);
  return s;
}

TEST(ListSchedule, CoversEveryTaskExactlyOnce) {
  util::Rng rng(1);
  const auto sizes = uniform_sizes(40, rng);
  const ScheduleEvaluator eval(sizes, make_view({10, 20, 30, 40}), false);
  for (double frac : {0.0, 0.3, 1.0}) {
    const ProcQueues q = list_schedule(eval, frac, rng);
    ASSERT_EQ(q.size(), 4u);
    std::vector<int> seen(40, 0);
    for (const auto& queue : q) {
      for (const auto slot : queue) ++seen[slot];
    }
    for (const int s : seen) ASSERT_EQ(s, 1);
  }
}

TEST(ListSchedule, PureGreedyIsWellBalanced) {
  // With random_fraction = 0 (pure earliest-finish) the completion times
  // should be close to each other.
  util::Rng rng(2);
  const auto sizes = uniform_sizes(200, rng);
  const ScheduleEvaluator eval(sizes, make_view({10, 20, 30, 40}), false);
  const ProcQueues q = list_schedule(eval, 0.0, rng);
  std::vector<double> completions;
  for (std::size_t j = 0; j < 4; ++j) {
    completions.push_back(eval.completion_time(j, q[j]));
  }
  const auto s = util::summarize(completions);
  EXPECT_LT((s.max - s.min) / s.mean, 0.25);
}

TEST(ListSchedule, GreedyBeatsFullyRandomOnAverage) {
  util::Rng rng(3);
  const auto sizes = uniform_sizes(100, rng);
  const ScheduleEvaluator eval(sizes, make_view({10, 15, 50, 80}), false);
  double greedy_ms = 0.0, random_ms = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    greedy_ms += eval.makespan(list_schedule(eval, 0.0, rng));
    random_ms += eval.makespan(list_schedule(eval, 1.0, rng));
  }
  EXPECT_LT(greedy_ms, random_ms);
}

TEST(ListSchedule, FullyRandomUsesAllProcessorsEventually) {
  util::Rng rng(4);
  const auto sizes = uniform_sizes(300, rng);
  const ScheduleEvaluator eval(sizes, make_view({10, 10, 10, 10, 10}),
                               false);
  const ProcQueues q = list_schedule(eval, 1.0, rng);
  for (const auto& queue : q) EXPECT_FALSE(queue.empty());
}

TEST(ListSchedule, RespectsExistingLoad) {
  // Proc 0 is pre-loaded; greedy must put the single task on proc 1.
  sim::SystemView v = make_view({10.0, 10.0});
  v.procs[0].pending_mflops = 10000.0;
  const ScheduleEvaluator eval({50.0}, v, false);
  util::Rng rng(5);
  const ProcQueues q = list_schedule(eval, 0.0, rng);
  EXPECT_TRUE(q[0].empty());
  ASSERT_EQ(q[1].size(), 1u);
}

TEST(ListSchedule, CommEstimatesSteerGreedyPlacement) {
  // Equal rates but link 0 is expensive: greedy with comm-aware evaluator
  // must prefer proc 1 for a single task.
  const ScheduleEvaluator eval({50.0},
                               make_view({10.0, 10.0}, {100.0, 0.0}), true);
  util::Rng rng(6);
  const ProcQueues q = list_schedule(eval, 0.0, rng);
  EXPECT_TRUE(q[0].empty());
  EXPECT_EQ(q[1].size(), 1u);
}

TEST(InitialPopulation, CorrectCountAndAllValid) {
  util::Rng rng(7);
  const auto sizes = uniform_sizes(30, rng);
  const ScheduleCodec codec(30, 5);
  const ScheduleEvaluator eval(sizes, make_view({10, 20, 30, 40, 50}),
                               false);
  const auto pop = initial_population(codec, eval, 20, 0.5, rng);
  ASSERT_EQ(pop.size(), 20u);
  for (const auto& c : pop) ASSERT_TRUE(codec.valid(c));
}

TEST(InitialPopulation, IndividualsAreDiverse) {
  util::Rng rng(8);
  const auto sizes = uniform_sizes(30, rng);
  const ScheduleCodec codec(30, 5);
  const ScheduleEvaluator eval(sizes, make_view({10, 20, 30, 40, 50}),
                               false);
  const auto pop = initial_population(codec, eval, 10, 0.5, rng);
  int distinct_pairs = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    for (std::size_t j = i + 1; j < pop.size(); ++j) {
      if (pop[i] != pop[j]) ++distinct_pairs;
    }
  }
  EXPECT_GT(distinct_pairs, 30);  // most pairs differ
}

TEST(ListSchedule, EmptyBatchYieldsEmptyQueues) {
  const ScheduleEvaluator eval({}, make_view({10.0, 20.0}), false);
  util::Rng rng(9);
  const ProcQueues q = list_schedule(eval, 0.5, rng);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_TRUE(q[0].empty());
  EXPECT_TRUE(q[1].empty());
}

}  // namespace
}  // namespace gasched::core
