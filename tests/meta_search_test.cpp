// Scheduler-specific tests for the local-search batch schedulers:
// configuration validation, and the "search never worsens the greedy
// start" guarantee each of SA / tabu / ACO / hill climbing makes.

#include <gtest/gtest.h>

#include "core/init.hpp"
#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"

namespace gasched::meta {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {},
                          std::vector<double> comm = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
    v.procs[j].comm_estimate = j < comm.size() ? comm[j] : 0.0;
    v.procs[j].comm_observations = j < comm.size() ? 1 : 0;
  }
  return v;
}

std::deque<workload::Task> tasks_of_sizes(const std::vector<double>& sizes) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), sizes[i], 0.0});
  }
  return q;
}

/// A rugged instance: strongly heterogeneous rates, pre-existing load,
/// observed per-link communication estimates, and lumpy task sizes.
struct Instance {
  sim::SystemView view = make_view({7.0, 13.0, 29.0, 61.0, 97.0},
                                   {300.0, 0.0, 150.0, 0.0, 800.0},
                                   {2.0, 0.3, 1.1, 4.0, 0.6});
  std::vector<double> sizes = {512, 37, 1024, 240, 777,  64, 350, 128,
                               905, 18, 443,  610, 82,   290, 730, 55};
};

/// Makespan of the policy's assignment, evaluated with the same evaluator
/// the policy used internally (slot i == task id i).
double result_makespan(const Instance& in, const sim::BatchAssignment& a) {
  const core::ScheduleEvaluator eval(in.sizes, in.view, true);
  core::ProcQueues queues(in.view.size());
  for (std::size_t j = 0; j < a.per_proc.size(); ++j) {
    for (const auto id : a.per_proc[j]) {
      queues[j].push_back(static_cast<std::size_t>(id));
    }
  }
  return eval.makespan(queues);
}

/// Makespan of the greedy list schedule the policy starts from, replayed
/// with an identical RNG stream (the policy's first RNG use is the same
/// list_schedule call).
double greedy_start_makespan(const Instance& in, std::uint64_t seed) {
  const core::ScheduleEvaluator eval(in.sizes, in.view, true);
  util::Rng rng(seed);
  return eval.makespan(core::list_schedule(eval, 0.0, rng));
}

template <typename PolicyPtr>
void expect_no_worse_than_greedy(PolicyPtr policy, std::uint64_t seed) {
  const Instance in;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(seed);
  const auto a = policy->invoke(in.view, q, rng);
  EXPECT_LE(result_makespan(in, a), greedy_start_makespan(in, seed) + 1e-9);
}

// ---------------------------------------------------------------- SA ----

TEST(SimulatedAnnealing, RejectsInvalidConfiguration) {
  SaConfig cooling_low;
  cooling_low.cooling = 0.0;
  EXPECT_THROW(SimulatedAnnealingScheduler{cooling_low},
               std::invalid_argument);
  SaConfig cooling_high;
  cooling_high.cooling = 1.0;
  EXPECT_THROW(SimulatedAnnealingScheduler{cooling_high},
               std::invalid_argument);
  SaConfig accept_bad;
  accept_bad.initial_acceptance = 1.0;
  EXPECT_THROW(SimulatedAnnealingScheduler{accept_bad}, std::invalid_argument);
  SaConfig zero_batch;
  zero_batch.batch.batch_size = 0;
  EXPECT_THROW(SimulatedAnnealingScheduler{zero_batch}, std::invalid_argument);
}

TEST(SimulatedAnnealing, NeverWorseThanGreedyStart) {
  SaConfig cfg;
  cfg.batch.batch_size = 16;
  expect_no_worse_than_greedy(make_sa_scheduler(cfg), 31);
}

TEST(SimulatedAnnealing, ImprovesARandomStart) {
  // From a fully random start the annealer must close most of the gap to
  // the greedy schedule (loose factor keeps this robust across seeds).
  const Instance in;
  SaConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.batch.init_random_fraction = 1.0;
  auto policy = make_sa_scheduler(cfg);
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(13);
  const auto a = policy->invoke(in.view, q, rng);
  EXPECT_LT(result_makespan(in, a), 1.5 * greedy_start_makespan(in, 13));
}

TEST(SimulatedAnnealing, AggressiveCoolingStillReturnsValidSchedule) {
  SaConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.cooling = 0.5;
  cfg.frozen_levels = 1;
  const Instance in;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(3);
  const auto a = make_sa_scheduler(cfg)->invoke(in.view, q, rng);
  EXPECT_EQ(a.total(), in.sizes.size());
}

// -------------------------------------------------------------- Tabu ----

TEST(TabuSearch, NeverWorseThanGreedyStart) {
  TabuConfig cfg;
  cfg.batch.batch_size = 16;
  expect_no_worse_than_greedy(make_tabu_scheduler(cfg), 41);
}

TEST(TabuSearch, SingleIterationIsValid) {
  TabuConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.max_iterations = 1;
  const Instance in;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(4);
  const auto a = make_tabu_scheduler(cfg)->invoke(in.view, q, rng);
  EXPECT_EQ(a.total(), in.sizes.size());
}

TEST(TabuSearch, StallTerminationRespectsBudget) {
  TabuConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.stall_iterations = 1;
  cfg.max_iterations = 100000;  // must terminate via stall, not budget
  const Instance in;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(5);
  const auto a = make_tabu_scheduler(cfg)->invoke(in.view, q, rng);
  EXPECT_EQ(a.total(), in.sizes.size());
}

TEST(TabuSearch, ZeroBatchRejected) {
  TabuConfig cfg;
  cfg.batch.batch_size = 0;
  EXPECT_THROW(TabuSearchScheduler{cfg}, std::invalid_argument);
}

// --------------------------------------------------------------- ACO ----

TEST(AntColony, RejectsInvalidConfiguration) {
  AcoConfig zero_ants;
  zero_ants.ants = 0;
  EXPECT_THROW(AntColonyScheduler{zero_ants}, std::invalid_argument);
  AcoConfig zero_iters;
  zero_iters.iterations = 0;
  EXPECT_THROW(AntColonyScheduler{zero_iters}, std::invalid_argument);
  AcoConfig evap_bad;
  evap_bad.evaporation = 0.0;
  EXPECT_THROW(AntColonyScheduler{evap_bad}, std::invalid_argument);
  AcoConfig tau_bad;
  tau_bad.tau_min = 5.0;
  tau_bad.tau_max = 1.0;
  EXPECT_THROW(AntColonyScheduler{tau_bad}, std::invalid_argument);
}

TEST(AntColony, NeverWorseThanGreedySeed) {
  AcoConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.iterations = 15;
  expect_no_worse_than_greedy(make_aco_scheduler(cfg), 51);
}

TEST(AntColony, MinimalColonyIsValid) {
  AcoConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.ants = 1;
  cfg.iterations = 1;
  const Instance in;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(6);
  const auto a = make_aco_scheduler(cfg)->invoke(in.view, q, rng);
  EXPECT_EQ(a.total(), in.sizes.size());
}

TEST(AntColony, HighBetaTracksGreedyClosely) {
  // β ≫ α makes visibility dominate: construction approximates repeated
  // earliest-finish placement, so results stay near the greedy makespan.
  const Instance in;
  AcoConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.alpha = 0.1;
  cfg.beta = 8.0;
  cfg.iterations = 10;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(7);
  const auto a = make_aco_scheduler(cfg)->invoke(in.view, q, rng);
  EXPECT_LE(result_makespan(in, a), 1.2 * greedy_start_makespan(in, 7));
}

// ---------------------------------------------------------------- HC ----

TEST(HillClimb, NeverWorseThanGreedyStart) {
  HillClimbConfig cfg;
  cfg.batch.batch_size = 16;
  expect_no_worse_than_greedy(make_hill_climb_scheduler(cfg), 61);
}

TEST(HillClimb, SingleRestartTinyBudgetIsValid) {
  HillClimbConfig cfg;
  cfg.batch.batch_size = 16;
  cfg.restarts = 1;
  cfg.max_samples = 4;
  const Instance in;
  auto q = tasks_of_sizes(in.sizes);
  util::Rng rng(8);
  const auto a = make_hill_climb_scheduler(cfg)->invoke(in.view, q, rng);
  EXPECT_EQ(a.total(), in.sizes.size());
}

}  // namespace
}  // namespace gasched::meta
