// Tests for the Linpack-style rate calibration substrate.

#include "sim/linpack.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gasched::sim {
namespace {

TEST(LuFactor, SolvesKnownSystemExactly) {
  // A = [[2, 1], [1, 3]], b = A * [1, 2] = [4, 7].
  std::vector<double> a{2.0, 1.0, 1.0, 3.0};
  std::vector<double> b{4.0, 7.0};
  std::vector<std::size_t> piv;
  ASSERT_TRUE(lu_factor(a, 2, piv));
  lu_solve(a, 2, piv, b);
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuFactor, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  std::vector<double> a{0.0, 1.0, 1.0, 0.0};
  std::vector<double> b{2.0, 3.0};  // solution x = [3, 2]
  std::vector<std::size_t> piv;
  ASSERT_TRUE(lu_factor(a, 2, piv));
  lu_solve(a, 2, piv, b);
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuFactor, DetectsSingularMatrix) {
  std::vector<double> a{1.0, 2.0, 2.0, 4.0};  // rank 1
  std::vector<std::size_t> piv;
  EXPECT_FALSE(lu_factor(a, 2, piv));
}

TEST(LuFactor, IdentityIsItsOwnFactorisation) {
  const std::size_t n = 5;
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<double>(i);
  std::vector<std::size_t> piv;
  ASSERT_TRUE(lu_factor(a, n, piv));
  lu_solve(a, n, piv, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(b[i], static_cast<double>(i), 1e-12);
  }
}

TEST(Linpack, BenchmarkProducesAccurateSolution) {
  util::Rng rng(1);
  const LinpackResult r = linpack_benchmark(128, rng);
  EXPECT_EQ(r.n, 128u);
  EXPECT_GT(r.mflops, 0.0);
  // The constructed system has solution = all ones; residual must be tiny
  // relative to the matrix scale.
  EXPECT_LT(r.residual, 1e-6);
}

TEST(Linpack, RateScalesPlausiblyWithSize) {
  util::Rng rng(2);
  const LinpackResult small = linpack_benchmark(64, rng);
  const LinpackResult large = linpack_benchmark(256, rng);
  // Both should produce meaningful (non-degenerate) rates.
  EXPECT_GT(small.mflops, 1.0);
  EXPECT_GT(large.mflops, 1.0);
}

TEST(Linpack, RejectsZeroOrder) {
  util::Rng rng(3);
  EXPECT_THROW(linpack_benchmark(0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace gasched::sim
