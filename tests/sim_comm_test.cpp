// Tests for communication cost models.

#include "sim/comm_model.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace gasched::sim {
namespace {

TEST(NormalCommModel, PerLinkMeansArePositiveAndHeterogeneous) {
  CommConfig cfg;
  cfg.mean_cost = 20.0;
  cfg.spread_cv = 0.5;
  util::Rng rng(1);
  NormalCommModel model(cfg, 50, rng);
  util::RunningStats rs;
  for (std::size_t j = 0; j < model.links(); ++j) {
    const double m = model.true_mean(static_cast<ProcId>(j));
    EXPECT_GE(m, cfg.floor);
    rs.add(m);
  }
  EXPECT_NEAR(rs.mean(), 20.0, 5.0);
  EXPECT_GT(rs.stddev(), 1.0);  // links genuinely differ
}

TEST(NormalCommModel, SamplesClusterAroundLinkMean) {
  CommConfig cfg;
  cfg.mean_cost = 50.0;
  cfg.spread_cv = 0.0;  // all links share the global mean
  cfg.jitter_cv = 0.1;
  util::Rng rng(2);
  NormalCommModel model(cfg, 4, rng);
  util::Rng sample_rng(3);
  util::RunningStats rs;
  for (int i = 0; i < 20000; ++i) {
    rs.add(model.sample(1, 0.0, sample_rng));
  }
  EXPECT_NEAR(rs.mean(), model.true_mean(1), 0.5);
}

TEST(NormalCommModel, SamplesNeverBelowFloor) {
  CommConfig cfg;
  cfg.mean_cost = 1.0;
  cfg.jitter_cv = 5.0;  // huge jitter forces clamping
  cfg.floor = 0.01;
  util::Rng rng(4);
  NormalCommModel model(cfg, 3, rng);
  util::Rng sample_rng(5);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(model.sample(0, 0.0, sample_rng), 0.01);
  }
}

TEST(NormalCommModel, RejectsNegativeConfig) {
  CommConfig cfg;
  cfg.mean_cost = -1.0;
  util::Rng rng(6);
  EXPECT_THROW(NormalCommModel(cfg, 2, rng), std::invalid_argument);
}

TEST(ZeroCommModel, AlwaysZero) {
  ZeroCommModel model(10);
  util::Rng rng(7);
  EXPECT_DOUBLE_EQ(model.sample(3, 100.0, rng), 0.0);
  EXPECT_DOUBLE_EQ(model.true_mean(3), 0.0);
  EXPECT_EQ(model.links(), 10u);
}

TEST(DriftingCommModel, MeansDriftOverTime) {
  CommConfig cfg;
  cfg.mean_cost = 20.0;
  util::Rng rng(8);
  DriftingCommModel model(cfg, 5, /*drift_step=*/0.5, /*dwell=*/10.0,
                          /*horizon=*/10000.0, rng);
  bool any_change = false;
  for (std::size_t j = 0; j < model.links(); ++j) {
    if (model.mean_at(static_cast<ProcId>(j), 0.0) !=
        model.mean_at(static_cast<ProcId>(j), 5000.0)) {
      any_change = true;
    }
  }
  EXPECT_TRUE(any_change);
}

TEST(DriftingCommModel, MeanNeverBelowFloor) {
  CommConfig cfg;
  cfg.mean_cost = 1.0;
  cfg.floor = 0.05;
  util::Rng rng(9);
  DriftingCommModel model(cfg, 3, 1.0, 5.0, 5000.0, rng);
  for (double t = 0.0; t < 6000.0; t += 97.0) {
    for (std::size_t j = 0; j < model.links(); ++j) {
      ASSERT_GE(model.mean_at(static_cast<ProcId>(j), t), 0.05);
    }
  }
}

TEST(DriftingCommModel, TrueMeanIsTimeAverage) {
  CommConfig cfg;
  cfg.mean_cost = 30.0;
  util::Rng rng(10);
  DriftingCommModel model(cfg, 2, 0.1, 10.0, 1000.0, rng);
  // true_mean should be within the plausible envelope of the walk.
  for (std::size_t j = 0; j < model.links(); ++j) {
    EXPECT_GT(model.true_mean(static_cast<ProcId>(j)), 0.0);
  }
}

TEST(DriftingCommModel, RejectsBadParameters) {
  CommConfig cfg;
  util::Rng rng(11);
  EXPECT_THROW(DriftingCommModel(cfg, 2, 0.1, 0.0, 100.0, rng),
               std::invalid_argument);
  EXPECT_THROW(DriftingCommModel(cfg, 2, -0.1, 1.0, 100.0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace gasched::sim
