// Tests for the baseline schedulers (EF, LL, RR, MM, MX) from §4.1.

#include "sched/heuristics.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gasched::sched {
namespace {

sim::SystemView make_view(std::vector<double> rates,
                          std::vector<double> pending = {}) {
  sim::SystemView v;
  v.procs.resize(rates.size());
  for (std::size_t j = 0; j < rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = rates[j];
    v.procs[j].pending_mflops = j < pending.size() ? pending[j] : 0.0;
  }
  return v;
}

std::deque<workload::Task> tasks_of_sizes(std::vector<double> sizes) {
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), sizes[i], 0.0});
  }
  return q;
}

TEST(EarliestFinish, PicksFastestProcessorWhenUnloaded) {
  auto ef = make_ef();
  util::Rng rng(1);
  auto q = tasks_of_sizes({100.0});
  const auto a = ef->invoke(make_view({10.0, 50.0, 20.0}), q, rng);
  EXPECT_EQ(a.per_proc[1].size(), 1u);  // rate 50 finishes first
}

TEST(EarliestFinish, AccountsForExistingLoad) {
  auto ef = make_ef();
  util::Rng rng(2);
  auto q = tasks_of_sizes({100.0});
  // Fast proc is busy: (2000+100)/50 = 42 vs (0+100)/20 = 5.
  const auto a = ef->invoke(make_view({50.0, 20.0}, {2000.0, 0.0}), q, rng);
  EXPECT_EQ(a.per_proc[1].size(), 1u);
}

TEST(EarliestFinish, UpdatesLoadWithinInvocation) {
  auto ef = make_ef();
  util::Rng rng(3);
  // Two equal tasks on two equal procs: the second must go to the other
  // processor because the first updated the working load.
  auto q = tasks_of_sizes({100.0, 100.0});
  const auto a = ef->invoke(make_view({10.0, 10.0}), q, rng);
  EXPECT_EQ(a.per_proc[0].size(), 1u);
  EXPECT_EQ(a.per_proc[1].size(), 1u);
}

TEST(LightestLoaded, IgnoresTaskSizeAndRate) {
  auto ll = make_ll();
  util::Rng rng(4);
  auto q = tasks_of_sizes({1.0});
  // Proc 0 slow-but-empty, proc 1 fast-but-loaded: LL picks 0.
  const auto a = ll->invoke(make_view({1.0, 100.0}, {0.0, 10.0}), q, rng);
  EXPECT_EQ(a.per_proc[0].size(), 1u);
}

TEST(LightestLoaded, SpreadsEqualTasksEvenly) {
  auto ll = make_ll();
  util::Rng rng(5);
  auto q = tasks_of_sizes(std::vector<double>(12, 50.0));
  const auto a = ll->invoke(make_view({10, 10, 10}), q, rng);
  for (const auto& per : a.per_proc) EXPECT_EQ(per.size(), 4u);
}

TEST(RoundRobin, CyclesThroughProcessorsInOrder) {
  auto rr = make_rr();
  util::Rng rng(6);
  auto q = tasks_of_sizes({1, 2, 3, 4, 5, 6, 7});
  const auto a = rr->invoke(make_view({10, 10, 10}), q, rng);
  EXPECT_EQ(a.per_proc[0], (std::vector<workload::TaskId>{0, 3, 6}));
  EXPECT_EQ(a.per_proc[1], (std::vector<workload::TaskId>{1, 4}));
  EXPECT_EQ(a.per_proc[2], (std::vector<workload::TaskId>{2, 5}));
}

TEST(RoundRobin, StatePersistsAcrossInvocations) {
  auto rr = make_rr();
  util::Rng rng(7);
  auto q1 = tasks_of_sizes({1, 2});
  rr->invoke(make_view({10, 10, 10}), q1, rng);
  auto q2 = tasks_of_sizes({3});
  const auto a = rr->invoke(make_view({10, 10, 10}), q2, rng);
  EXPECT_EQ(a.per_proc[2].size(), 1u);  // continues at proc 2
}

TEST(ImmediatePolicies, ConsumeEntireQueue) {
  for (auto make : {make_ef, make_ll, make_rr}) {
    auto policy = make();
    util::Rng rng(8);
    auto q = tasks_of_sizes(std::vector<double>(37, 10.0));
    const auto a = policy->invoke(make_view({10, 20}), q, rng);
    EXPECT_TRUE(q.empty()) << policy->name();
    EXPECT_EQ(a.total(), 37u) << policy->name();
  }
}

TEST(SortedBatch, MinMinSchedulesSmallestFirst) {
  auto mm = make_mm(10);
  util::Rng rng(9);
  auto q = tasks_of_sizes({500.0, 10.0, 300.0, 50.0});
  const auto a = mm->invoke(make_view({10.0}), q, rng);
  // Single processor: dispatch order equals sorted ascending order.
  EXPECT_EQ(a.per_proc[0], (std::vector<workload::TaskId>{1, 3, 2, 0}));
}

TEST(SortedBatch, MaxMinSchedulesLargestFirst) {
  auto mx = make_mx(10);
  util::Rng rng(10);
  auto q = tasks_of_sizes({500.0, 10.0, 300.0, 50.0});
  const auto a = mx->invoke(make_view({10.0}), q, rng);
  EXPECT_EQ(a.per_proc[0], (std::vector<workload::TaskId>{0, 2, 3, 1}));
}

TEST(SortedBatch, RespectsBatchSize) {
  auto mm = make_mm(5);
  util::Rng rng(11);
  auto q = tasks_of_sizes(std::vector<double>(12, 10.0));
  const auto a = mm->invoke(make_view({10, 10}), q, rng);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(q.size(), 7u);
}

TEST(SortedBatch, BalancesAcrossHeterogeneousProcessors) {
  auto mx = make_mx(100);
  util::Rng rng(12);
  auto q = tasks_of_sizes(std::vector<double>(100, 100.0));
  const auto view = make_view({10.0, 30.0});
  const auto a = mx->invoke(view, q, rng);
  // Proc 1 is 3x faster; it should receive roughly 3x the tasks.
  const double ratio = static_cast<double>(a.per_proc[1].size()) /
                       static_cast<double>(a.per_proc[0].size());
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(SortedBatch, RejectsZeroBatch) {
  EXPECT_THROW(SortedBatchPolicy(false, 0), std::invalid_argument);
}

TEST(Factories, NamesMatchPaper) {
  EXPECT_EQ(make_ef()->name(), "EF");
  EXPECT_EQ(make_ll()->name(), "LL");
  EXPECT_EQ(make_rr()->name(), "RR");
  EXPECT_EQ(make_mm()->name(), "MM");
  EXPECT_EQ(make_mx()->name(), "MX");
}

TEST(AllHeuristics, AssignEachTaskExactlyOnce) {
  for (auto make : {make_ef, make_ll, make_rr}) {
    auto policy = make();
    util::Rng rng(13);
    auto q = tasks_of_sizes({10, 20, 30, 40, 50, 60});
    const auto a = policy->invoke(make_view({10, 20, 30}), q, rng);
    std::set<workload::TaskId> seen;
    for (const auto& per : a.per_proc) {
      for (const auto id : per) EXPECT_TRUE(seen.insert(id).second);
    }
    EXPECT_EQ(seen.size(), 6u);
  }
}

}  // namespace
}  // namespace gasched::sched
