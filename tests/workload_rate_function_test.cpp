// Tests for the shared λ(t) arrival abstraction (workload/arrival.hpp):
// rate-function presets, the registry-style factory with its
// list-all-valid-names error, the thinning sampler's statistics, and the
// byte-identity of the constant path with the legacy exponential stream.

#include "workload/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "workload/generator.hpp"

namespace gasched::workload {
namespace {

TEST(RateFunctions, ConstantIsFlat) {
  const ConstantRate r(12.5);
  EXPECT_DOUBLE_EQ(r.rate(0.0), 12.5);
  EXPECT_DOUBLE_EQ(r.rate(1e6), 12.5);
  EXPECT_DOUBLE_EQ(r.max_rate(), 12.5);
}

TEST(RateFunctions, DiurnalOscillatesAroundBase) {
  const DiurnalRate r(100.0, 0.5, 600.0);
  EXPECT_DOUBLE_EQ(r.rate(0.0), 100.0);          // sin(0) = 0
  EXPECT_NEAR(r.rate(150.0), 150.0, 1e-9);       // peak at period/4
  EXPECT_NEAR(r.rate(450.0), 50.0, 1e-9);        // trough at 3/4
  EXPECT_DOUBLE_EQ(r.max_rate(), 150.0);
  // Bounded by the majorant everywhere.
  for (double t = 0.0; t < 1200.0; t += 7.3) {
    EXPECT_LE(r.rate(t), r.max_rate());
    EXPECT_GE(r.rate(t), 0.0);
  }
}

TEST(RateFunctions, RampRisesThenHolds) {
  const RampRate r(200.0, 0.25, 100.0);
  EXPECT_DOUBLE_EQ(r.rate(0.0), 50.0);
  EXPECT_DOUBLE_EQ(r.rate(50.0), 125.0);
  EXPECT_DOUBLE_EQ(r.rate(100.0), 200.0);
  EXPECT_DOUBLE_EQ(r.rate(1e9), 200.0);
  EXPECT_DOUBLE_EQ(r.max_rate(), 200.0);
}

TEST(RateFunctions, FlashCrowdSpikesOnceOrPeriodically) {
  const FlashCrowdRate once(10.0, 8.0, 60.0, 30.0);
  EXPECT_DOUBLE_EQ(once.rate(59.9), 10.0);
  EXPECT_DOUBLE_EQ(once.rate(60.0), 80.0);
  EXPECT_DOUBLE_EQ(once.rate(89.9), 80.0);
  EXPECT_DOUBLE_EQ(once.rate(90.0), 10.0);
  EXPECT_DOUBLE_EQ(once.rate(660.0), 10.0);  // single spike only
  EXPECT_DOUBLE_EQ(once.max_rate(), 80.0);

  const FlashCrowdRate repeating(10.0, 8.0, 60.0, 30.0, 600.0);
  EXPECT_DOUBLE_EQ(repeating.rate(660.0), 80.0);  // next window
  EXPECT_DOUBLE_EQ(repeating.rate(700.0), 10.0);
}

TEST(RateFunctions, FactoryBuildsEveryPreset) {
  const exp::Params none;
  for (const char* name : {"constant", "diurnal", "ramp", "flash"}) {
    const auto fn = make_rate_function(name, 50.0, none);
    ASSERT_NE(fn, nullptr) << name;
    EXPECT_EQ(fn->name(), name);
    EXPECT_GT(fn->max_rate(), 0.0);
  }
  // Shape keys are honoured.
  exp::Params p;
  p.set("arrival_amplitude", 0.25);
  const auto diurnal = make_rate_function("diurnal", 100.0, p);
  EXPECT_DOUBLE_EQ(diurnal->max_rate(), 125.0);
}

TEST(RateFunctions, UnknownPresetListsValidNames) {
  try {
    make_rate_function("sawtooth", 10.0, exp::Params{});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sawtooth"), std::string::npos);
    for (const char* name : {"constant", "diurnal", "flash", "ramp"}) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
}

TEST(ArrivalSource, ConstantPathIsByteIdenticalToLegacyStream) {
  // The serving runtime and the generator both promise that a constant
  // rate reproduces the plain rng.exponential(mean) stream exactly.
  util::Rng a(42), b(42);
  ArrivalSource source = ArrivalSource::constant(2.5);
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += b.exponential(2.5);
    EXPECT_DOUBLE_EQ(source.next(a), t);
  }
}

TEST(ArrivalSource, ThinnedConstantMatchesHomogeneousRate) {
  // Thinning against a constant λ must produce ≈ λT arrivals in [0, T].
  const ConstantRate fn(50.0);
  ArrivalSource source = ArrivalSource::thinned(fn);
  util::Rng rng(7);
  std::size_t n = 0;
  while (source.next(rng) < 100.0) ++n;
  EXPECT_NEAR(static_cast<double>(n), 5000.0, 300.0);  // ~4 sigma
}

TEST(ArrivalSource, ThinnedRampIsSparseEarlyDenseLate) {
  const RampRate fn(100.0, 0.0, 100.0);  // 0 → 100/s over 100 s
  ArrivalSource source = ArrivalSource::thinned(fn);
  util::Rng rng(8);
  std::size_t first_half = 0, second_half = 0;
  for (;;) {
    const double t = source.next(rng);
    if (t >= 100.0) break;
    (t < 50.0 ? first_half : second_half)++;
  }
  // Integrated rate: 1250 arrivals in [0,50), 3750 in [50,100).
  EXPECT_GT(second_half, 2 * first_half);
  EXPECT_NEAR(static_cast<double>(first_half + second_half), 5000.0, 350.0);
}

TEST(ArrivalSource, ThinnedArrivalsAreStrictlyMonotone) {
  const DiurnalRate fn(200.0, 0.9, 10.0);
  ArrivalSource source = ArrivalSource::thinned(fn);
  util::Rng rng(9);
  double prev = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double t = source.next(rng);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GenerateWithRateFunction, ArrivalsFollowThePreset) {
  // generate() accepts a rate function and stamps monotone arrivals.
  ArrivalConfig arrivals;
  arrivals.all_at_start = false;
  arrivals.mean_interarrival = 0.01;  // base 100/s
  arrivals.rate_function = std::make_shared<RampRate>(100.0, 0.0, 10.0);
  util::Rng rng(10);
  const ConstantSizes sizes(10.0);
  const Workload w = generate(sizes, 1000, rng, arrivals);
  double prev = 0.0;
  for (const auto& t : w.tasks) {
    EXPECT_GE(t.arrival_time, prev);
    prev = t.arrival_time;
  }
  // The ramp starves the first instants: nothing arrives near t = 0.
  EXPECT_GT(w.tasks.front().arrival_time, 0.1);
}

TEST(GenerateWithRateFunction, RejectsRateFunctionPlusBurstiness) {
  ArrivalConfig arrivals;
  arrivals.all_at_start = false;
  arrivals.burstiness = 4.0;
  arrivals.rate_function = std::make_shared<ConstantRate>(10.0);
  util::Rng rng(11);
  const ConstantSizes sizes(10.0);
  EXPECT_THROW(generate(sizes, 10, rng, arrivals), std::invalid_argument);
}

}  // namespace
}  // namespace gasched::workload
