// Tests for task-trace recording, validation, Gantt rendering, and trace
// export.

#include "sim/gantt.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "util/csv.hpp"
#include "workload/generator.hpp"

namespace gasched::sim {
namespace {

using workload::Task;
using workload::Workload;

class GreedyPolicy final : public SchedulingPolicy {
 public:
  BatchAssignment invoke(const SystemView& view, std::deque<Task>& queue,
                         util::Rng&) override {
    auto a = BatchAssignment::empty(view.size());
    std::size_t j = 0;
    while (!queue.empty()) {
      a.per_proc[j % view.size()].push_back(queue.front().id);
      queue.pop_front();
      ++j;
    }
    return a;
  }
  std::string name() const override { return "greedy"; }
};

SimulationResult traced_run(std::size_t tasks = 24, std::size_t procs = 4) {
  ClusterConfig cfg;
  cfg.num_processors = procs;
  cfg.rate_lo = 10.0;
  cfg.rate_hi = 50.0;
  cfg.comm.mean_cost = 2.0;
  util::Rng crng(7);
  const Cluster c = build_cluster(cfg, crng);
  workload::UniformSizes dist(50.0, 300.0);
  util::Rng wrng(3);
  const Workload w = workload::generate(dist, tasks, wrng);
  EngineConfig ecfg;
  ecfg.record_task_trace = true;
  GreedyPolicy policy;
  return simulate(c, w, policy, util::Rng(1), ecfg);
}

TEST(TaskTrace, RecordedForEveryTask) {
  const auto r = traced_run();
  ASSERT_EQ(r.task_trace.size(), 24u);
  for (const auto& rec : r.task_trace) {
    EXPECT_NE(rec.id, workload::kInvalidTask);
    EXPECT_GE(rec.proc, 0);
    EXPECT_EQ(rec.attempts, 1u);
  }
}

TEST(TaskTrace, ValidatesConsistent) {
  const auto r = traced_run();
  EXPECT_EQ(validate_task_trace(r), "");
}

TEST(TaskTrace, OrderingWithinEachRecord) {
  const auto r = traced_run();
  for (const auto& rec : r.task_trace) {
    EXPECT_GE(rec.dispatch, rec.arrival);
    EXPECT_GE(rec.start, rec.dispatch);
    EXPECT_GE(rec.completion, rec.start);
    EXPECT_LE(rec.completion, r.makespan + 1e-9);
    EXPECT_GT(rec.comm_cost, 0.0);
  }
}

TEST(TaskTrace, EmptyWithoutFlag) {
  ClusterConfig cfg;
  cfg.num_processors = 2;
  cfg.zero_comm = true;
  util::Rng crng(7);
  const Cluster c = build_cluster(cfg, crng);
  workload::ConstantSizes dist(10.0);
  util::Rng wrng(3);
  const Workload w = workload::generate(dist, 5, wrng);
  GreedyPolicy policy;
  const auto r = simulate(c, w, policy, util::Rng(1));
  EXPECT_TRUE(r.task_trace.empty());
}

TEST(ValidateTaskTrace, CatchesCorruption) {
  auto r = traced_run();
  auto bad = r;
  bad.task_trace[0].start = bad.task_trace[0].completion + 10.0;
  EXPECT_NE(validate_task_trace(bad), "");
  auto bad2 = r;
  bad2.task_trace[0].proc = 999;
  EXPECT_NE(validate_task_trace(bad2), "");
}

TEST(Gantt, RendersOneLanePerProcessor) {
  const auto r = traced_run(24, 4);
  std::ostringstream os;
  render_gantt(r, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("P0"), std::string::npos);
  EXPECT_NE(out.find("P3"), std::string::npos);
  EXPECT_NE(out.find('#'), std::string::npos);  // some execution drawn
}

TEST(Gantt, ThrowsWithoutTrace) {
  SimulationResult r;
  std::ostringstream os;
  EXPECT_THROW(render_gantt(r, os), std::invalid_argument);
}

TEST(Gantt, RespectsWidthAndRowLimits) {
  const auto r = traced_run(24, 4);
  GanttOptions opts;
  opts.width = 40;
  opts.max_procs = 2;
  std::ostringstream os;
  render_gantt(r, os, opts);
  const std::string out = os.str();
  EXPECT_EQ(out.find("P2 "), std::string::npos);
  EXPECT_NE(out.find("more processors"), std::string::npos);
}

TEST(TraceExport, WritesCsvWithHeaderAndRows) {
  const auto r = traced_run(10, 2);
  const auto path =
      std::filesystem::temp_directory_path() / "gasched_task_trace.csv";
  save_task_trace(r, path);
  const auto rows = util::read_csv(path);
  ASSERT_EQ(rows.size(), 11u);  // header + 10 tasks
  EXPECT_EQ(rows[0][0], "id");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace gasched::sim
