// fed::Federation: topology parsing, spillover conservation (no task
// lost or duplicated across migrations), and determinism — serial and
// thread-pool replication runs must produce bit-identical results.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "fed/federation.hpp"
#include "fed/topology.hpp"
#include "util/config.hpp"

namespace gasched::fed {
namespace {

// --- Topology ----------------------------------------------------------

TEST(TopologyTest, FullMeshLinksEveryOrderedPair) {
  const Topology t = Topology::full_mesh(4);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.link_count(), 12u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(t.connected(i, i));
    EXPECT_EQ(t.neighbors(i).size(), 3u);
  }
}

TEST(TopologyTest, StarRoutesThroughHub) {
  const Topology t = Topology::star(5, /*hub=*/2);
  EXPECT_EQ(t.link_count(), 8u);  // 4 spokes × 2 directions
  EXPECT_EQ(t.neighbors(2).size(), 4u);
  EXPECT_TRUE(t.connected(0, 2));
  EXPECT_TRUE(t.connected(2, 0));
  EXPECT_FALSE(t.connected(0, 1));
  EXPECT_THROW(Topology::star(3, 7), std::invalid_argument);
}

TEST(TopologyTest, RingLinksAdjacentOnly) {
  const Topology t = Topology::ring(4);
  EXPECT_EQ(t.link_count(), 8u);
  EXPECT_TRUE(t.connected(0, 3));  // wrap-around
  EXPECT_TRUE(t.connected(3, 0));
  EXPECT_FALSE(t.connected(0, 2));
  EXPECT_EQ(t.neighbors(1), (std::vector<std::size_t>{0, 2}));
}

TEST(TopologyTest, TransferTimeIsLatencyPlusSizeOverBandwidth) {
  Topology t(2);
  t.add_link(0, 1, LinkParams{0.5, 1000.0});
  EXPECT_DOUBLE_EQ(t.transfer_time(0, 1, 2000.0), 0.5 + 2.0);
  EXPECT_THROW(t.transfer_time(1, 0, 1.0), std::invalid_argument);
}

TEST(TopologyTest, RejectsBadLinks) {
  Topology t(3);
  EXPECT_THROW(t.add_link(0, 0, {}), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 9, {}), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 1, LinkParams{0.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 1, LinkParams{1.0, -5.0}),
               std::invalid_argument);
}

// --- INI parsing -------------------------------------------------------

constexpr const char* kBaseIni = R"(
[federation]
clusters = edge, core, burst
topology = full_mesh
router = round_robin
migration = threshold
migration_threshold = 8
migration_chunk = 8
seed = 7
replications = 2
latency = 0.25
bandwidth = 2e4

[workload]
dist = uniform
param_a = 10
param_b = 100
count = 240

[scheduler]
batch_size = 16

[cluster.edge]
processors = 4
scheduler = MM
weight = 2

[cluster.core]
processors = 6
rate_lo = 50
rate_hi = 120
scheduler = MM

[cluster.burst]
processors = 4
scheduler = MM
)";

TEST(FederationConfigTest, ParsesClustersTopologyAndPolicies) {
  const auto cfg =
      federation_from_config(util::Config::parse(kBaseIni));
  ASSERT_EQ(cfg.clusters.size(), 3u);
  EXPECT_EQ(cfg.clusters[0].name, "edge");
  EXPECT_EQ(cfg.clusters[0].cluster.num_processors, 4u);
  EXPECT_DOUBLE_EQ(cfg.clusters[0].weight, 2.0);
  EXPECT_EQ(cfg.clusters[1].cluster.num_processors, 6u);
  EXPECT_DOUBLE_EQ(cfg.clusters[1].cluster.rate_lo, 50.0);
  EXPECT_EQ(cfg.clusters[2].scheduler, "MM");
  EXPECT_EQ(cfg.topology.size(), 3u);
  EXPECT_EQ(cfg.topology.link_count(), 6u);
  ASSERT_NE(cfg.topology.link(0, 1), nullptr);
  EXPECT_DOUBLE_EQ(cfg.topology.link(0, 1)->latency, 0.25);
  EXPECT_DOUBLE_EQ(cfg.topology.link(0, 1)->bandwidth, 2e4);
  EXPECT_EQ(cfg.router, RouterKind::kRoundRobin);
  EXPECT_EQ(cfg.migration, MigrationKind::kThreshold);
  EXPECT_EQ(cfg.migration_threshold, 8u);
  EXPECT_EQ(cfg.workload.count, 240u);
  EXPECT_EQ(cfg.workload.dist, "uniform");
  EXPECT_EQ(cfg.scheduler_params.get_size("batch_size", 0), 16u);
}

TEST(FederationConfigTest, LinkSectionsOverrideAndDefineCustomTopology) {
  const std::string ini = std::string(kBaseIni) +
                          "\n[link.edge.core]\nlatency = 1.5\n";
  const auto cfg = federation_from_config(util::Config::parse(ini));
  ASSERT_NE(cfg.topology.link(0, 1), nullptr);
  EXPECT_DOUBLE_EQ(cfg.topology.link(0, 1)->latency, 1.5);
  // Unmentioned key keeps the federation default.
  EXPECT_DOUBLE_EQ(cfg.topology.link(0, 1)->bandwidth, 2e4);
  // Other links untouched.
  EXPECT_DOUBLE_EQ(cfg.topology.link(1, 0)->latency, 0.25);

  // A custom topology has only the [link.*] edges.
  std::string custom(kBaseIni);
  const auto pos = custom.find("topology = full_mesh");
  custom.replace(pos, std::string("topology = full_mesh").size(),
                 "topology = custom");
  custom += "\n[link.edge.core]\nlatency = 0.1\n[link.core.edge]\n"
            "bandwidth = 1e3\n";
  const auto ccfg = federation_from_config(util::Config::parse(custom));
  EXPECT_EQ(ccfg.topology.link_count(), 2u);
  EXPECT_TRUE(ccfg.topology.connected(0, 1));
  EXPECT_TRUE(ccfg.topology.connected(1, 0));
  EXPECT_FALSE(ccfg.topology.connected(0, 2));
}

TEST(FederationConfigTest, StarHubByName) {
  std::string ini(kBaseIni);
  const auto pos = ini.find("topology = full_mesh");
  ini.replace(pos, std::string("topology = full_mesh").size(),
              "topology = star\nhub = core");
  const auto cfg = federation_from_config(util::Config::parse(ini));
  EXPECT_EQ(cfg.topology.neighbors(1).size(), 2u);  // core is the hub
  EXPECT_FALSE(cfg.topology.connected(0, 2));
}

TEST(FederationConfigTest, RejectsUnknownNames) {
  EXPECT_THROW(federation_from_config(util::Config::parse("[federation]\n")),
               std::runtime_error);
  auto bad = [&](const std::string& find, const std::string& replace) {
    std::string ini(kBaseIni);
    ini.replace(ini.find(find), find.size(), replace);
    return util::Config::parse(ini);
  };
  EXPECT_THROW(
      federation_from_config(bad("router = round_robin", "router = zigzag")),
      std::runtime_error);
  EXPECT_THROW(federation_from_config(
                   bad("migration = threshold", "migration = telepathy")),
               std::runtime_error);
  EXPECT_THROW(federation_from_config(
                   bad("topology = full_mesh", "topology = torus")),
               std::runtime_error);
  EXPECT_THROW(federation_from_config(
                   bad("topology = full_mesh", "topology = star\nhub = nope")),
               std::runtime_error);
}

// --- runs: conservation, migration policies, determinism ---------------

FederationConfig base_config() {
  return federation_from_config(util::Config::parse(kBaseIni));
}

void expect_conserved(const FederationResult& r, std::size_t total) {
  EXPECT_EQ(r.tasks_completed, total);
  std::size_t routed = 0;
  for (const ClusterResult& c : r.clusters) {
    // Per-cluster flow balance: everything a cluster completed either
    // was routed to it or migrated in, minus what it pushed away.
    EXPECT_EQ(c.sim.tasks_completed,
              c.tasks_routed + c.migrated_in - c.migrated_out)
        << "cluster " << c.name;
    routed += c.tasks_routed;
  }
  EXPECT_EQ(routed, total);
}

TEST(FederationRunTest, ThresholdMigrationConservesTasks) {
  const auto cfg = base_config();
  const FederationResult r = run_federation(cfg, 0);
  expect_conserved(r, cfg.workload.count);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_GT(r.link_busy_seconds, 0.0);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(FederationRunTest, StealMigrationConservesTasks) {
  auto cfg = base_config();
  cfg.migration = MigrationKind::kSteal;
  cfg.router = RouterKind::kWeighted;
  cfg.clusters[0].weight = 20.0;  // overload edge; core/burst will steal
  cfg.clusters[1].cluster.rate_lo = 80.0;
  cfg.clusters[1].cluster.rate_hi = 160.0;
  const FederationResult r = run_federation(cfg, 0);
  expect_conserved(r, cfg.workload.count);
  EXPECT_GT(r.migrations, 0u);
  EXPECT_GT(r.clusters[0].migrated_out, 0u);
}

TEST(FederationRunTest, BroadcastMigrationConservesTasks) {
  auto cfg = base_config();
  cfg.migration = MigrationKind::kBroadcast;
  cfg.router = RouterKind::kWeighted;
  cfg.clusters[0].weight = 10.0;
  const FederationResult r = run_federation(cfg, 0);
  expect_conserved(r, cfg.workload.count);
  EXPECT_GT(r.migrations, 0u);
}

TEST(FederationRunTest, IsolatedClustersNeverMigrate) {
  auto cfg = base_config();
  cfg.topology = Topology(3);  // custom topology with zero links
  const FederationResult r = run_federation(cfg, 0);
  expect_conserved(r, cfg.workload.count);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_DOUBLE_EQ(r.link_busy_seconds, 0.0);
}

TEST(FederationRunTest, HashRouterSplitsDeterministically) {
  auto cfg = base_config();
  cfg.router = RouterKind::kHash;
  cfg.migration = MigrationKind::kNone;
  cfg.topology = Topology::full_mesh(3);
  const FederationResult a = run_federation(cfg, 0);
  const FederationResult b = run_federation(cfg, 0);
  expect_conserved(a, cfg.workload.count);
  for (std::size_t k = 0; k < a.clusters.size(); ++k) {
    EXPECT_GT(a.clusters[k].tasks_routed, 0u);
    EXPECT_EQ(a.clusters[k].tasks_routed, b.clusters[k].tasks_routed);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(FederationRunTest, SerialAndParallelReplicationsBitIdentical) {
  const auto cfg = base_config();
  const auto serial = run_federation_replications(cfg, /*parallel=*/false);
  const auto pooled = run_federation_replications(cfg, /*parallel=*/true);
  ASSERT_EQ(serial.size(), cfg.replications);
  ASSERT_EQ(pooled.size(), cfg.replications);
  for (std::size_t rep = 0; rep < serial.size(); ++rep) {
    EXPECT_DOUBLE_EQ(serial[rep].makespan, pooled[rep].makespan);
    EXPECT_DOUBLE_EQ(serial[rep].mean_response_time,
                     pooled[rep].mean_response_time);
    EXPECT_EQ(serial[rep].migrations, pooled[rep].migrations);
    EXPECT_DOUBLE_EQ(serial[rep].link_busy_seconds,
                     pooled[rep].link_busy_seconds);
    ASSERT_EQ(serial[rep].clusters.size(), pooled[rep].clusters.size());
    for (std::size_t k = 0; k < serial[rep].clusters.size(); ++k) {
      EXPECT_DOUBLE_EQ(serial[rep].clusters[k].sim.makespan,
                       pooled[rep].clusters[k].sim.makespan);
      EXPECT_EQ(serial[rep].clusters[k].migrated_in,
                pooled[rep].clusters[k].migrated_in);
    }
  }
}

TEST(FederationRunTest, FlattenedResultConcatenatesProcessors) {
  const auto cfg = base_config();
  const FederationResult r = run_federation(cfg, 1);
  const sim::SimulationResult flat = r.as_simulation_result();
  EXPECT_EQ(flat.per_proc.size(), 4u + 6u + 4u);
  EXPECT_DOUBLE_EQ(flat.makespan, r.makespan);
  EXPECT_EQ(flat.tasks_completed, r.tasks_completed);
  double busy = 0.0;
  for (const ClusterResult& c : r.clusters) busy += c.sim.total_busy_time();
  EXPECT_DOUBLE_EQ(flat.total_busy_time(), busy);
}

TEST(FederationRunTest, PerClusterFailuresStillConserve) {
  auto cfg = base_config();
  sim::FailureConfig fc;
  fc.mean_uptime = 300.0;
  fc.mean_downtime = 50.0;
  fc.horizon = 1e6;
  cfg.clusters[1].failures = fc;
  const FederationResult r = run_federation(cfg, 0);
  expect_conserved(r, cfg.workload.count);
}

TEST(FederationRunTest, MismatchedTopologySizeThrows) {
  auto cfg = base_config();
  cfg.topology = Topology::full_mesh(2);
  EXPECT_THROW(Federation(cfg, 0), std::invalid_argument);
}

}  // namespace
}  // namespace gasched::fed
