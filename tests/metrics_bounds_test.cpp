// Tests for makespan lower bounds and the exact branch-and-bound solver
// (metrics/bounds.hpp), plus the "near-optimal" verification the paper
// asserts but never quantifies: every informed scheduler in the library
// must land close to the exact optimum on small instances.

#include "metrics/bounds.hpp"

#include <gtest/gtest.h>

#include "core/genetic_scheduler.hpp"
#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"

namespace gasched::metrics {
namespace {

TEST(Bounds, ValidatesInstances) {
  EXPECT_THROW(makespan_lower_bound({{1.0}, {}, {}, {}}),
               std::invalid_argument);
  EXPECT_THROW(makespan_lower_bound({{1.0}, {0.0}, {}, {}}),
               std::invalid_argument);
  EXPECT_THROW(makespan_lower_bound({{1.0}, {1.0}, {1.0, 2.0}, {}}),
               std::invalid_argument);
  EXPECT_THROW(makespan_lower_bound({{1.0}, {1.0}, {}, {1.0, 2.0}}),
               std::invalid_argument);
}

TEST(Bounds, WorkBoundForDivisibleLoad) {
  // 12 unit tasks on rates 1+2: W/ΣP = 12/3 = 4.
  BoundInstance inst;
  inst.task_sizes.assign(12, 1.0);
  inst.rates = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(inst), 4.0);
}

TEST(Bounds, CriticalTaskDominatesForOneHugeTask) {
  BoundInstance inst;
  inst.task_sizes = {100.0};
  inst.rates = {1.0, 10.0};
  inst.comm_costs = {0.5, 2.0};
  // Best placement: 100/10 + 2 = 12 (vs 100/1 + 0.5 = 100.5).
  EXPECT_DOUBLE_EQ(makespan_lower_bound(inst), 12.0);
}

TEST(Bounds, PigeonholeDominatesForCommHeavyTinyTasks) {
  BoundInstance inst;
  inst.task_sizes.assign(10, 1e-9);
  inst.rates = {1.0, 1.0};
  inst.comm_costs = {3.0, 3.0};
  // ceil(10/2) = 5 dispatches on some processor, 3 s each.
  EXPECT_GE(makespan_lower_bound(inst), 15.0);
}

TEST(Bounds, BusiestExistingLoadIsAFloor) {
  BoundInstance inst;
  inst.task_sizes = {};
  inst.rates = {1.0, 10.0};
  inst.pending_mflops = {40.0, 0.0};
  EXPECT_DOUBLE_EQ(makespan_lower_bound(inst), 40.0);
  EXPECT_DOUBLE_EQ(optimal_makespan_exact(inst), 40.0);
}

TEST(ExactSolver, MatchesHandComputedInstance) {
  // Two procs (1, 2 Mflop/s), tasks {2, 2, 4}, no comm. Optimal: {4}→P2
  // (2 s), {2,2}→P1 (4 s)? That's 4. Better: {2}→P1 (2), {2,4}→P2 (3) →
  // makespan 3.
  BoundInstance inst;
  inst.task_sizes = {2.0, 2.0, 4.0};
  inst.rates = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(optimal_makespan_exact(inst), 3.0);
}

TEST(ExactSolver, AccountsForCommAndPending) {
  // One proc busy (δ = 5 s), one idle but slow, comm asymmetric.
  BoundInstance inst;
  inst.task_sizes = {10.0};
  inst.rates = {10.0, 1.0};
  inst.pending_mflops = {50.0, 0.0};
  inst.comm_costs = {1.0, 1.0};
  // P0: 5 + 1 + 1 = 7; P1: 0 + 10 + 1 = 11 → optimum 7... but makespan
  // includes P0's δ = 5 either way: placing on P1 gives max(5, 11) = 11,
  // on P0 gives max(7, 0) = 7.
  EXPECT_DOUBLE_EQ(optimal_makespan_exact(inst), 7.0);
}

TEST(ExactSolver, ThrowsWhenInstanceTooLarge) {
  BoundInstance inst;
  inst.task_sizes.assign(14, 1.0);
  inst.rates = {1.0, 1.1, 1.2, 1.3};
  EXPECT_THROW(optimal_makespan_exact(inst, 100), std::invalid_argument);
}

/// Random small instances: the lower bound must never exceed the exact
/// optimum, and the optimum must never beat the bound's logic.
class BoundVsExactTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundVsExactTest, LowerBoundIsValid) {
  util::Rng rng(GetParam());
  BoundInstance inst;
  const std::size_t M = 2 + rng.index(2);       // 2..3 processors
  const std::size_t N = 4 + rng.index(6);       // 4..9 tasks
  for (std::size_t j = 0; j < M; ++j) {
    inst.rates.push_back(rng.uniform(5.0, 50.0));
    inst.pending_mflops.push_back(rng.bernoulli(0.5) ? rng.uniform(0, 200)
                                                     : 0.0);
    inst.comm_costs.push_back(rng.uniform(0.0, 3.0));
  }
  for (std::size_t i = 0; i < N; ++i) {
    inst.task_sizes.push_back(rng.uniform(10.0, 500.0));
  }
  const double opt = optimal_makespan_exact(inst);
  const double lb = makespan_lower_bound(inst);
  EXPECT_LE(lb, opt + 1e-9) << "invalid lower bound";
  EXPECT_GT(lb, 0.0);
  // On instances this small the bound should also be reasonably tight.
  EXPECT_GE(lb, 0.25 * opt);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, BoundVsExactTest,
                         ::testing::Range<std::uint64_t>(1, 41));

// ----------------------------------------- relaxation lower bound ----

TEST(RelaxationBound, DisabledFallsBackToCombinatorial) {
  BoundInstance inst;
  inst.task_sizes = {10.0, 20.0, 30.0};
  inst.rates = {1.0, 2.0};
  RelaxationBoundOptions off;
  off.enabled = false;
  EXPECT_DOUBLE_EQ(relaxation_lower_bound(inst, off),
                   makespan_lower_bound(inst));
}

TEST(RelaxationBound, SingleProcessorIsNearExact) {
  // On one processor the relaxation has no fractional freedom: the
  // optimum is δ + Σ(t/P + c) and both bounds should essentially hit it.
  BoundInstance inst;
  inst.task_sizes = {10.0, 25.0, 40.0};
  inst.rates = {5.0};
  inst.pending_mflops = {15.0};
  inst.comm_costs = {0.5};
  const double opt = optimal_makespan_exact(inst);
  EXPECT_DOUBLE_EQ(opt, 3.0 + (10.0 + 25.0 + 40.0) / 5.0 + 3 * 0.5);
  const double lb = relaxation_lower_bound(inst);
  EXPECT_LE(lb, opt + 1e-9);
  EXPECT_GE(lb, opt * (1.0 - 1e-9));
}

TEST(RelaxationBound, AllEqualRatesMatchesDivisibleLoad) {
  // Identical processors, no comm: the relaxation spreads work evenly,
  // T* = W/ΣP — the work bound exactly, so lb_qp == lb_comb here.
  BoundInstance inst;
  inst.task_sizes.assign(12, 3.0);
  inst.rates.assign(4, 2.0);
  const double lb_comb = makespan_lower_bound(inst);
  const double lb_qp = relaxation_lower_bound(inst);
  EXPECT_DOUBLE_EQ(lb_comb, 36.0 / 8.0);
  EXPECT_GE(lb_qp, lb_comb);
  EXPECT_NEAR(lb_qp, lb_comb, 1e-6);
  EXPECT_LE(lb_qp, optimal_makespan_exact(inst) + 1e-9);
}

TEST(RelaxationBound, CommCostDominatedInstanceStaysValid) {
  // Tiny compute, heavy per-dispatch comm: the pigeonhole term drives
  // lb_comb, and the relaxation (which prices comm per fractional
  // assignment) must stay a valid bound and at least match it.
  BoundInstance inst;
  inst.task_sizes.assign(8, 1e-6);
  inst.rates = {1.0, 1.0};
  inst.comm_costs = {4.0, 4.0};
  const double opt = optimal_makespan_exact(inst);
  const double lb_comb = makespan_lower_bound(inst);
  const double lb_qp = relaxation_lower_bound(inst);
  EXPECT_GE(lb_comb, 16.0);  // ceil(8/2) = 4 dispatches × 4 s
  EXPECT_GE(lb_qp, lb_comb);
  EXPECT_LE(lb_qp, opt + 1e-9);
}

TEST(RelaxationBound, EmptyOptionalVectorsMatchExplicitZeros) {
  // Empty pending_mflops/comm_costs mean "all zeros"; spelling the zeros
  // out must not change a single bit of any bound (same arithmetic, same
  // order) — the solver path included.
  BoundInstance sparse;
  sparse.task_sizes = {7.0, 11.0, 13.0, 17.0};
  sparse.rates = {2.0, 3.0, 5.0};

  BoundInstance dense = sparse;
  dense.pending_mflops.assign(3, 0.0);
  dense.comm_costs.assign(3, 0.0);

  EXPECT_EQ(makespan_lower_bound(sparse), makespan_lower_bound(dense));
  EXPECT_EQ(relaxation_lower_bound(sparse), relaxation_lower_bound(dense));
  EXPECT_EQ(optimal_makespan_exact(sparse), optimal_makespan_exact(dense));
}

TEST(RelaxationBound, ValidatesLikeCombinatorialBound) {
  EXPECT_THROW(relaxation_lower_bound({{1.0}, {}, {}, {}}),
               std::invalid_argument);
  EXPECT_THROW(relaxation_lower_bound({{1.0}, {-1.0}, {}, {}}),
               std::invalid_argument);
}

// ------------------------------------------------ near-optimality ----

sim::SystemView view_of(const BoundInstance& inst) {
  sim::SystemView v;
  v.procs.resize(inst.rates.size());
  for (std::size_t j = 0; j < inst.rates.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = inst.rates[j];
    v.procs[j].pending_mflops =
        inst.pending_mflops.empty() ? 0.0 : inst.pending_mflops[j];
    v.procs[j].comm_estimate =
        inst.comm_costs.empty() ? 0.0 : inst.comm_costs[j];
    v.procs[j].comm_observations = 1;
  }
  return v;
}

double policy_makespan(sim::SchedulingPolicy& policy,
                       const BoundInstance& inst, std::uint64_t seed) {
  const auto view = view_of(inst);
  std::deque<workload::Task> q;
  for (std::size_t i = 0; i < inst.task_sizes.size(); ++i) {
    q.push_back({static_cast<workload::TaskId>(i), inst.task_sizes[i], 0.0});
  }
  util::Rng rng(seed);
  const auto a = policy.invoke(view, q, rng);
  double ms = 0.0;
  for (std::size_t j = 0; j < view.size(); ++j) {
    double c = view.procs[j].pending_mflops / view.procs[j].rate;
    for (const auto id : a.per_proc[j]) {
      c += inst.task_sizes[static_cast<std::size_t>(id)] /
               view.procs[j].rate +
           view.procs[j].comm_estimate;
    }
    ms = std::max(ms, c);
  }
  return ms;
}

TEST(NearOptimality, EverySearcherIsWithin15PercentOfExactOptimum) {
  util::Rng inst_rng(2025);
  for (int trial = 0; trial < 5; ++trial) {
    BoundInstance inst;
    const std::size_t M = 3;
    for (std::size_t j = 0; j < M; ++j) {
      inst.rates.push_back(inst_rng.uniform(10.0, 60.0));
      inst.comm_costs.push_back(inst_rng.uniform(0.1, 1.5));
    }
    for (int i = 0; i < 9; ++i) {
      inst.task_sizes.push_back(inst_rng.uniform(20.0, 400.0));
    }
    const double opt = optimal_makespan_exact(inst);

    core::GeneticSchedulerConfig pn_cfg;
    pn_cfg.dynamic_batch = false;
    pn_cfg.fixed_batch = 16;
    pn_cfg.ga.max_generations = 200;
    const auto pn = core::make_pn_scheduler(pn_cfg);
    meta::SaConfig sa_cfg;
    sa_cfg.batch.batch_size = 16;
    const auto sa = meta::make_sa_scheduler(sa_cfg);
    meta::TabuConfig ts_cfg;
    ts_cfg.batch.batch_size = 16;
    const auto ts = meta::make_tabu_scheduler(ts_cfg);
    meta::AcoConfig aco_cfg;
    aco_cfg.batch.batch_size = 16;
    const auto aco = meta::make_aco_scheduler(aco_cfg);
    meta::HillClimbConfig hc_cfg;
    hc_cfg.batch.batch_size = 16;
    const auto hc = meta::make_hill_climb_scheduler(hc_cfg);

    const std::uint64_t seed = 77 + static_cast<std::uint64_t>(trial);
    EXPECT_LE(policy_makespan(*pn, inst, seed), 1.15 * opt) << "PN " << trial;
    EXPECT_LE(policy_makespan(*sa, inst, seed), 1.15 * opt) << "SA " << trial;
    EXPECT_LE(policy_makespan(*ts, inst, seed), 1.15 * opt) << "TS " << trial;
    EXPECT_LE(policy_makespan(*aco, inst, seed), 1.15 * opt) << "ACO "
                                                             << trial;
    EXPECT_LE(policy_makespan(*hc, inst, seed), 1.15 * opt) << "HC " << trial;
  }
}

}  // namespace
}  // namespace gasched::metrics
