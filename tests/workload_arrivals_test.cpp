// Tests for the arrival processes of workload::generate — all-at-start
// (the paper's §4.2 setup), Poisson streaming, and bursty two-state MMPP
// arrivals.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workload/generator.hpp"
#include "workload/heavy_tail.hpp"

namespace gasched::workload {
namespace {

ArrivalConfig poisson(double mean_ia) {
  ArrivalConfig a;
  a.all_at_start = false;
  a.mean_interarrival = mean_ia;
  return a;
}

ArrivalConfig bursty(double mean_ia, double b, double dwell = 50.0) {
  ArrivalConfig a = poisson(mean_ia);
  a.burstiness = b;
  a.burst_dwell = dwell;
  return a;
}

/// Coefficient of variation of the inter-arrival times.
double interarrival_cv(const Workload& w) {
  std::vector<double> ia;
  for (std::size_t i = 1; i < w.tasks.size(); ++i) {
    ia.push_back(w.tasks[i].arrival_time - w.tasks[i - 1].arrival_time);
  }
  double mean = 0.0;
  for (const double x : ia) mean += x;
  mean /= static_cast<double>(ia.size());
  double var = 0.0;
  for (const double x : ia) var += (x - mean) * (x - mean);
  var /= static_cast<double>(ia.size());
  return std::sqrt(var) / mean;
}

TEST(Arrivals, AllAtStartIsTheDefault) {
  util::Rng rng(1);
  const ConstantSizes sizes(10.0);
  const Workload w = generate(sizes, 50, rng);
  for (const auto& t : w.tasks) EXPECT_DOUBLE_EQ(t.arrival_time, 0.0);
}

TEST(Arrivals, PoissonArrivalsAreMonotoneWithCorrectMean) {
  util::Rng rng(2);
  const ConstantSizes sizes(10.0);
  const Workload w = generate(sizes, 4000, rng, poisson(2.0));
  double prev = 0.0;
  for (const auto& t : w.tasks) {
    EXPECT_GE(t.arrival_time, prev);
    prev = t.arrival_time;
  }
  // Last arrival ≈ count × mean inter-arrival; 4000 draws → tight CLT band.
  EXPECT_NEAR(w.tasks.back().arrival_time, 8000.0, 500.0);
  // Poisson process: CV of inter-arrivals ≈ 1.
  EXPECT_NEAR(interarrival_cv(w), 1.0, 0.12);
}

TEST(Arrivals, BurstinessBelowOneRejected) {
  util::Rng rng(3);
  const ConstantSizes sizes(10.0);
  EXPECT_THROW(generate(sizes, 10, rng, bursty(1.0, 0.5)),
               std::invalid_argument);
}

TEST(Arrivals, BurstinessOneDegeneratesToPoisson) {
  const ConstantSizes sizes(10.0);
  util::Rng r1(4), r2(4);
  const Workload a = generate(sizes, 200, r1, poisson(1.5));
  const Workload b = generate(sizes, 200, r2, bursty(1.5, 1.0));
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].arrival_time, b.tasks[i].arrival_time);
  }
}

TEST(Arrivals, MmppArrivalsAreMonotone) {
  util::Rng rng(5);
  const ConstantSizes sizes(10.0);
  const Workload w = generate(sizes, 2000, rng, bursty(1.0, 8.0, 25.0));
  double prev = 0.0;
  for (const auto& t : w.tasks) {
    EXPECT_GE(t.arrival_time, prev);
    prev = t.arrival_time;
  }
}

TEST(Arrivals, MmppIsOverdispersedRelativeToPoisson) {
  // Burstiness shows up as inter-arrival CV > 1 (hyper-exponential
  // mixture). Use a dwell long enough for runs of same-state arrivals.
  util::Rng rng(6);
  const ConstantSizes sizes(10.0);
  const Workload w = generate(sizes, 4000, rng, bursty(1.0, 8.0, 100.0));
  EXPECT_GT(interarrival_cv(w), 1.3);
}

TEST(Arrivals, HigherBurstinessClumpsArrivalsMore) {
  const ConstantSizes sizes(10.0);
  util::Rng r1(7), r2(8);
  const Workload mild = generate(sizes, 4000, r1, bursty(1.0, 2.0, 100.0));
  const Workload wild = generate(sizes, 4000, r2, bursty(1.0, 16.0, 100.0));
  EXPECT_GT(interarrival_cv(wild), interarrival_cv(mild));
}

TEST(ParetoSizes, SamplesClampedToBounds) {
  // Regression: ParetoSizes::sample clamps the inverse-CDF draw to
  // [lo, hi] with std::clamp (heavy_tail.cpp once compiled only by the
  // grace of a transitive <algorithm> include). Drive the tails hard —
  // small α pushes mass toward hi, u → 0/1 stresses both edges.
  util::Rng rng(9);
  const ParetoSizes dist(0.5, 2.0, 5000.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.sample(rng);
    ASSERT_GE(x, dist.min_size());
    ASSERT_LE(x, 5000.0);
  }
  EXPECT_DOUBLE_EQ(dist.min_size(), 2.0);
  EXPECT_GT(dist.mean(), 2.0);
  EXPECT_LT(dist.mean(), 5000.0);
}

}  // namespace
}  // namespace gasched::workload
