// Tests for result aggregation and balance metrics.

#include "metrics/aggregate.hpp"

#include <gtest/gtest.h>

namespace gasched::metrics {
namespace {

sim::SimulationResult make_result(double makespan,
                                  std::vector<double> busy,
                                  double wall = 0.0) {
  sim::SimulationResult r;
  r.makespan = makespan;
  r.scheduler_wall_seconds = wall;
  r.per_proc.resize(busy.size());
  for (std::size_t j = 0; j < busy.size(); ++j) {
    r.per_proc[j].busy_time = busy[j];
  }
  r.tasks_completed = 1;
  return r;
}

TEST(Efficiency, DefinitionMatchesPaper) {
  // 2 procs, makespan 10, busy 10 + 5 => efficiency 15/20.
  const auto r = make_result(10.0, {10.0, 5.0});
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.75);
}

TEST(Efficiency, ZeroMakespanIsZero) {
  const auto r = make_result(0.0, {0.0});
  EXPECT_DOUBLE_EQ(r.efficiency(), 0.0);
}

TEST(Aggregate, MeansAcrossRuns) {
  std::vector<sim::SimulationResult> runs;
  runs.push_back(make_result(10.0, {10.0, 10.0}, 1.0));
  runs.push_back(make_result(20.0, {10.0, 10.0}, 3.0));
  const CellSummary cell = aggregate("PN", runs);
  EXPECT_EQ(cell.scheduler, "PN");
  EXPECT_EQ(cell.replications, 2u);
  EXPECT_DOUBLE_EQ(cell.makespan.mean, 15.0);
  EXPECT_DOUBLE_EQ(cell.makespan.min, 10.0);
  EXPECT_DOUBLE_EQ(cell.makespan.max, 20.0);
  EXPECT_DOUBLE_EQ(cell.sched_wall.mean, 2.0);
  EXPECT_DOUBLE_EQ(cell.efficiency.mean, (1.0 + 0.5) / 2.0);
}

TEST(Aggregate, EmptyRunsAreSafe) {
  const CellSummary cell = aggregate("X", {});
  EXPECT_EQ(cell.replications, 0u);
  EXPECT_DOUBLE_EQ(cell.makespan.mean, 0.0);
}

TEST(BusyTimeCv, ZeroForPerfectBalance) {
  EXPECT_DOUBLE_EQ(busy_time_cv(make_result(10.0, {5.0, 5.0, 5.0})), 0.0);
}

TEST(BusyTimeCv, PositiveForImbalance) {
  EXPECT_GT(busy_time_cv(make_result(10.0, {10.0, 0.0})), 0.5);
}

TEST(JainFairness, OneForPerfectBalance) {
  EXPECT_DOUBLE_EQ(jain_fairness(make_result(10.0, {4.0, 4.0, 4.0, 4.0})),
                   1.0);
}

TEST(JainFairness, OneOverNForSingleActiveProcessor) {
  EXPECT_NEAR(jain_fairness(make_result(10.0, {8.0, 0.0, 0.0, 0.0})), 0.25,
              1e-12);
}

TEST(JainFairness, DegenerateInputs) {
  sim::SimulationResult empty;
  EXPECT_DOUBLE_EQ(jain_fairness(empty), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness(make_result(1.0, {0.0, 0.0})), 1.0);
}

TEST(TotalTimes, SumAcrossProcessors) {
  auto r = make_result(10.0, {3.0, 4.0});
  r.per_proc[0].comm_time = 1.0;
  r.per_proc[1].comm_time = 2.5;
  EXPECT_DOUBLE_EQ(r.total_busy_time(), 7.0);
  EXPECT_DOUBLE_EQ(r.total_comm_time(), 3.5);
}

}  // namespace
}  // namespace gasched::metrics
