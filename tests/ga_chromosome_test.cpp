// Tests for chromosome helpers.

#include "ga/chromosome.hpp"

#include <gtest/gtest.h>

namespace gasched::ga {
namespace {

TEST(Chromosome, DistinctnessCheck) {
  EXPECT_TRUE(is_permutation_of_distinct({1, 2, 3, -1, 0}));
  EXPECT_FALSE(is_permutation_of_distinct({1, 2, 2}));
  EXPECT_TRUE(is_permutation_of_distinct({}));
  EXPECT_TRUE(is_permutation_of_distinct({5}));
}

TEST(Chromosome, SameGeneSetIgnoresOrder) {
  EXPECT_TRUE(same_gene_set({1, 2, 3}, {3, 1, 2}));
  EXPECT_FALSE(same_gene_set({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(same_gene_set({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(same_gene_set({}, {}));
}

TEST(Chromosome, PositionIndexMapsEveryGene) {
  const Chromosome c{7, -2, 4, 0};
  const auto idx = position_index(c);
  ASSERT_EQ(idx.size(), 4u);
  EXPECT_EQ(idx.at(7), 0u);
  EXPECT_EQ(idx.at(-2), 1u);
  EXPECT_EQ(idx.at(4), 2u);
  EXPECT_EQ(idx.at(0), 3u);
}

}  // namespace
}  // namespace gasched::ga
