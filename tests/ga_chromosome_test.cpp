// Tests for chromosome helpers.

#include "ga/chromosome.hpp"

#include <gtest/gtest.h>

namespace gasched::ga {
namespace {

TEST(Chromosome, DistinctnessCheck) {
  EXPECT_TRUE(is_permutation_of_distinct({1, 2, 3, -1, 0}));
  EXPECT_FALSE(is_permutation_of_distinct({1, 2, 2}));
  EXPECT_TRUE(is_permutation_of_distinct({}));
  EXPECT_TRUE(is_permutation_of_distinct({5}));
}

TEST(Chromosome, SameGeneSetIgnoresOrder) {
  EXPECT_TRUE(same_gene_set({1, 2, 3}, {3, 1, 2}));
  EXPECT_FALSE(same_gene_set({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(same_gene_set({1, 2}, {1, 2, 3}));
  EXPECT_TRUE(same_gene_set({}, {}));
}

TEST(Chromosome, PositionIndexMapsEveryGene) {
  const Chromosome c{7, -2, 4, 0};
  PositionIndex idx;
  idx.build(c);
  EXPECT_EQ(idx.find(7), 0u);
  EXPECT_EQ(idx.find(-2), 1u);
  EXPECT_EQ(idx.find(4), 2u);
  EXPECT_EQ(idx.find(0), 3u);
  EXPECT_EQ(idx.find(5), PositionIndex::npos);
  EXPECT_EQ(idx.find(-100), PositionIndex::npos);
  EXPECT_EQ(idx.find(100), PositionIndex::npos);
}

TEST(Chromosome, PositionIndexIsReusable) {
  PositionIndex idx;
  idx.build({3, 1, 2});
  EXPECT_EQ(idx.find(3), 0u);
  idx.build({-5, 9});
  EXPECT_EQ(idx.find(-5), 0u);
  EXPECT_EQ(idx.find(9), 1u);
  EXPECT_EQ(idx.find(3), PositionIndex::npos);
  idx.build({});
  EXPECT_EQ(idx.find(0), PositionIndex::npos);
}

TEST(Chromosome, PositionIndexWideGeneRangeFallsBackToSparse) {
  // A pathological gene set whose value range dwarfs the chromosome: the
  // index must stay correct (and not allocate an O(range) table).
  const Chromosome c{1 << 30, -(1 << 30), 0, 42};
  PositionIndex idx;
  idx.build(c);
  EXPECT_EQ(idx.find(1 << 30), 0u);
  EXPECT_EQ(idx.find(-(1 << 30)), 1u);
  EXPECT_EQ(idx.find(0), 2u);
  EXPECT_EQ(idx.find(42), 3u);
  EXPECT_EQ(idx.find(7), PositionIndex::npos);
}

}  // namespace
}  // namespace gasched::ga
