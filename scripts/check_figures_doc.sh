#!/usr/bin/env bash
# Keeps the generated figure table in docs/figures.md in sync with the
# FigSet registry. The table between the BEGIN/END figset-table markers
# is the verbatim output of `figset list --markdown`; this script
# regenerates it and fails (exit 1) on any drift, so the doc cannot
# silently fall behind a registry change.
#
#   scripts/check_figures_doc.sh [BUILD_DIR]            # check (CI)
#   scripts/check_figures_doc.sh [BUILD_DIR] --update   # rewrite in place
#
# Run from the repository root (CI does): the bench-binary column is
# discovered from bench/*.cpp.
set -euo pipefail

BUILD_DIR="${1:-build}"
MODE="${2:-check}"
DOC="docs/figures.md"
BEGIN='<!-- BEGIN figset-table (generated: scripts/check_figures_doc.sh build --update) -->'
END='<!-- END figset-table -->'

FIGSET="$BUILD_DIR/tools/figset"
if [ ! -x "$FIGSET" ]; then
  echo "check_figures_doc: building figset in $BUILD_DIR" >&2
  cmake --build "$BUILD_DIR" --target figset -j "$(nproc)" >&2
fi

if ! grep -qF "$BEGIN" "$DOC" || ! grep -qF "$END" "$DOC"; then
  echo "check_figures_doc: $DOC is missing the figset-table markers" >&2
  exit 1
fi

generated=$("$FIGSET" list --markdown --bench-dir bench)

rebuilt=$(awk -v begin="$BEGIN" -v end="$END" -v table="$generated" '
  $0 == begin { print; print table; skipping = 1; next }
  $0 == end   { skipping = 0 }
  !skipping   { print }
' "$DOC")

if [ "$MODE" = "--update" ]; then
  printf '%s\n' "$rebuilt" > "$DOC"
  echo "check_figures_doc: updated $DOC"
  exit 0
fi

if ! diff -u "$DOC" <(printf '%s\n' "$rebuilt"); then
  echo "check_figures_doc: $DOC is out of sync with the FigSet registry" >&2
  echo "check_figures_doc: run: scripts/check_figures_doc.sh $BUILD_DIR --update" >&2
  exit 1
fi
echo "check_figures_doc: $DOC matches the registry"
