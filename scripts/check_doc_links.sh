#!/usr/bin/env bash
# Fails (exit 1) when any markdown file passed as an argument contains a
# relative link whose target does not exist. External (http/https/
# mailto) links and pure in-page anchors (#...) are ignored; a relative
# link's own "#section" suffix is stripped before the existence check.
#
#   scripts/check_doc_links.sh README.md docs/*.md
#
# Run from the repository root (CI does); targets resolve relative to
# each file's directory.
set -u

status=0
for file in "$@"; do
  if [ ! -f "$file" ]; then
    echo "check_doc_links: no such file: $file" >&2
    status=1
    continue
  fi
  dir=$(dirname "$file")
  # Inline markdown links: [text](target). Reference-style links are not
  # used in this repo.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "check_doc_links: $file -> broken link: $target" >&2
      status=1
    fi
  done < <(awk '/^```/ { fence = !fence; next } !fence' "$file" \
             | grep -o '](\([^)]*\))' | sed 's/^](//; s/)$//')
done

if [ "$status" -eq 0 ]; then
  echo "check_doc_links: all relative links resolve ($# files)"
fi
exit "$status"
