#!/usr/bin/env bash
# Evaluation-core perf trajectory: runs bench/perf_eval on the two
# standard fixtures and writes a machine-readable JSON report.
#
#   usage: scripts/bench_perf.sh [BUILD_DIR] [OUT_JSON] [LABEL]
#
# Defaults: BUILD_DIR=build, OUT_JSON=BENCH_eval.json (in the current
# directory), LABEL=$(git rev-parse --short HEAD). The committed
# bench/BENCH_eval.json keeps the before/after anchor numbers of the
# zero-allocation refactor; re-run this script to append a fresh
# measurement when touching the evaluation core.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_eval.json}"
LABEL="${3:-$(git rev-parse --short HEAD 2>/dev/null || echo current)}"

PERF="$BUILD_DIR/bench/perf_eval"
if [ ! -x "$PERF" ]; then
  echo "bench_perf: building perf_eval in $BUILD_DIR" >&2
  cmake --build "$BUILD_DIR" --target perf_eval -j "$(nproc)" >&2
fi

# Two fixtures: the paper-scale batch (H=200, M=50) and a 3x batch that
# stresses decode/evaluate bandwidth.
SMALL=$("$PERF" --label "$LABEL" --tasks 200 --generations 300)
LARGE=$("$PERF" --label "$LABEL" --tasks 600 --generations 150)

cat > "$OUT" <<EOF
{
  "schema": "gasched-eval-perf-v1",
  "label": "$LABEL",
  "measurements": [
    $SMALL,
    $LARGE
  ]
}
EOF
echo "bench_perf: wrote $OUT" >&2
cat "$OUT"
