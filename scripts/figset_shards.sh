#!/usr/bin/env bash
# Local shard fan-out for the paper-figure driver: launches N `figset
# run --shard i/N` processes in parallel, waits for all of them, and
# stitches their outputs with `figset merge`. The merged CSVs/JSONL are
# byte-identical to a single unsharded run (docs/sweeps.md), so this is
# a pure wall-clock play for multi-core hosts — the same shard/merge
# machinery that splits a figure set across machines, driven locally.
#
#   usage: scripts/figset_shards.sh [-n SHARDS] [-b BUILD_DIR] [-o OUT]
#                                   [-- FIGSET_RUN_ARGS...]
#
#   -n SHARDS     number of parallel shard processes (default: nproc)
#   -b BUILD_DIR  build tree holding tools/figset (default: build)
#   -o OUT        merged output directory (default: figset_out)
#   --            everything after it is passed to every `figset run`
#                 (e.g. --only 'fig0[5-9]' --tasks 50 --reps 1)
#
# Shard work directories land in OUT.shards/shard_<i> and are kept on
# success for inspection; any shard failure aborts with that shard's
# exit status after the others finish.
set -euo pipefail

SHARDS="$(nproc)"
BUILD_DIR="build"
OUT="figset_out"
while getopts ":n:b:o:" opt; do
  case "$opt" in
    n) SHARDS="$OPTARG" ;;
    b) BUILD_DIR="$OPTARG" ;;
    o) OUT="$OPTARG" ;;
    \?) echo "figset_shards: unknown option -$OPTARG" >&2; exit 2 ;;
    :) echo "figset_shards: -$OPTARG needs a value" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))
if ! [[ "$SHARDS" =~ ^[0-9]+$ ]] || [ "$SHARDS" -lt 1 ]; then
  echo "figset_shards: shard count must be a positive integer" >&2
  exit 2
fi

FIGSET="$BUILD_DIR/tools/figset"
if [ ! -x "$FIGSET" ]; then
  echo "figset_shards: building figset in $BUILD_DIR" >&2
  cmake --build "$BUILD_DIR" --target figset -j "$(nproc)" >&2
fi

WORK="$OUT.shards"
rm -rf "$WORK"
mkdir -p "$WORK"

pids=()
for ((i = 0; i < SHARDS; ++i)); do
  "$FIGSET" run --shard "$i/$SHARDS" --out "$WORK/shard_$i" "$@" \
    > "$WORK/shard_$i.log" 2>&1 &
  pids+=($!)
done

status=0
for ((i = 0; i < SHARDS; ++i)); do
  if ! wait "${pids[$i]}"; then
    rc=$?
    echo "figset_shards: shard $i/$SHARDS failed (exit $rc):" >&2
    tail -20 "$WORK/shard_$i.log" >&2
    status=$rc
  fi
done
[ "$status" -eq 0 ] || exit "$status"

shard_dirs=()
for ((i = 0; i < SHARDS; ++i)); do
  shard_dirs+=("$WORK/shard_$i")
done
"$FIGSET" merge --out "$OUT" "${shard_dirs[@]}"
echo "figset_shards: merged $SHARDS shards into $OUT" >&2
