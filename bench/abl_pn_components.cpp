// Ablation: factorial decomposition of the PN scheduler. PN differs from
// the ZO baseline in exactly three ingredients — (C) communication-cost
// prediction in the fitness function, (R) the re-balancing heuristic,
// (B) dynamic batch sizing — but the paper only ever evaluates the full
// bundle. This bench runs all 2³ combinations so each ingredient's
// marginal contribution is visible. 000 = ZO, 111 = PN.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/genetic_scheduler.hpp"
#include "exp/runner.hpp"
#include "util/thread_pool.hpp"

using namespace gasched;

namespace {

/// A PN/ZO hybrid with the given feature mask, for replication-style
/// execution outside the scheduler registry.
std::unique_ptr<sim::SchedulingPolicy> make_variant(bool comm, bool rebalance,
                                                    bool dynamic,
                                                    const bench::BenchParams& p,
                                                    std::string name) {
  core::GeneticSchedulerConfig cfg;
  cfg.ga.max_generations = p.generations;
  cfg.ga.population = p.population;
  cfg.use_comm_estimates = comm;
  cfg.rebalance = rebalance;
  cfg.ga.improvement_passes = rebalance ? 1 : 0;
  cfg.dynamic_batch = dynamic;
  cfg.fixed_batch = p.batch;
  cfg.max_batch = p.batch;
  return std::make_unique<core::GeneticBatchScheduler>(cfg, std::move(name));
}

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/4,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "PN component decomposition (C=comm, R=rebalance, B=batch)",
      "design-choice study (not in paper): the paper bundles three changes "
      "over ZO; hypothesis per its SS5: comm prediction carries the "
      "efficiency gain, re-balancing the makespan gain, dynamic batch "
      "removes a tuning knob at little cost",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("pn-components", p, spec, /*mean_comm=*/10.0);
  std::vector<exp::Sweep::Value> variants;
  for (int mask = 0; mask < 8; ++mask) {
    const bool comm = (mask & 4) != 0;
    const bool rebalance = (mask & 2) != 0;
    const bool dynamic = (mask & 1) != 0;
    const std::string name = std::string(comm ? "C" : "-") +
                             (rebalance ? "R" : "-") + (dynamic ? "B" : "-");
    variants.push_back({name, {}});
  }
  sweep.axis("variant", std::move(variants));
  // Custom runner: the hybrid policies live outside the registry, so the
  // replication loop follows the runner's documented stream discipline
  // (workload/cluster depend only on (seed, rep), identical across
  // variants).
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const auto mask = static_cast<int>(cell.index);
    const bool comm = (mask & 4) != 0;
    const bool rebalance = (mask & 2) != 0;
    const bool dynamic = (mask & 1) != 0;
    const auto& s = cell.scenario;
    std::vector<sim::SimulationResult> runs(s.replications);
    auto body = [&](std::size_t rep) {
      const util::Rng base(s.seed);
      util::Rng wrng = base.split(3 * rep);
      util::Rng crng = base.split(3 * rep + 1);
      util::Rng srng = base.split(3 * rep + 2);
      const auto dist = exp::make_distribution(s.workload);
      const auto wl = workload::generate(*dist, s.workload.count, wrng);
      const auto cluster = sim::build_cluster(s.cluster, crng);
      const auto policy = make_variant(comm, rebalance, dynamic, p,
                                       cell.coord("variant"));
      runs[rep] = sim::simulate(cluster, wl, *policy, srng);
    };
    if (parallel && runs.size() > 1) {
      util::global_pool().parallel_for(0, runs.size(), body);
    } else {
      for (std::size_t rep = 0; rep < runs.size(); ++rep) body(rep);
    }
    exp::CellOutcome out;
    out.summary = metrics::aggregate(cell.coord("variant"), runs);
    return out;
  });

  bench::run_sweep(sweep, p);
  std::cout << "\nRow '---' is the ZO baseline; row 'CRB' is full PN.\n";
  return 0;
}
