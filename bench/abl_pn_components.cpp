// Ablation: factorial decomposition of the PN scheduler. PN differs from
// the ZO baseline in exactly three ingredients — (C) communication-cost
// prediction in the fitness function, (R) the re-balancing heuristic,
// (B) dynamic batch sizing — but the paper only ever evaluates the full
// bundle. This bench runs all 2³ combinations so each ingredient's
// marginal contribution is visible. 000 = ZO, 111 = PN.

#include <iostream>

#include "bench_common.hpp"
#include "core/genetic_scheduler.hpp"
#include "exp/runner.hpp"
#include "util/thread_pool.hpp"

using namespace gasched;

namespace {

/// A PN/ZO hybrid with the given feature mask, for run_replications-style
/// execution outside the scheduler registry.
std::unique_ptr<sim::SchedulingPolicy> make_variant(bool comm, bool rebalance,
                                                    bool dynamic,
                                                    const bench::BenchParams& p,
                                                    std::string name) {
  core::GeneticSchedulerConfig cfg;
  cfg.ga.max_generations = p.generations;
  cfg.ga.population = p.population;
  cfg.use_comm_estimates = comm;
  cfg.rebalance = rebalance;
  cfg.ga.improvement_passes = rebalance ? 1 : 0;
  cfg.dynamic_batch = dynamic;
  cfg.fixed_batch = p.batch;
  cfg.max_batch = p.batch;
  return std::make_unique<core::GeneticBatchScheduler>(cfg, std::move(name));
}

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/4,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "PN component decomposition (C=comm, R=rebalance, B=batch)",
      "design-choice study (not in paper): the paper bundles three changes "
      "over ZO; hypothesis per its SS5: comm prediction carries the "
      "efficiency gain, re-balancing the makespan gain, dynamic batch "
      "removes a tuning knob at little cost",
      p);

  exp::Scenario s;
  s.name = "pn-components";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;

  struct Variant {
    bool comm, rebalance, dynamic_batch;
  };
  std::vector<Variant> variants;
  for (int mask = 0; mask < 8; ++mask) {
    variants.push_back({(mask & 4) != 0, (mask & 2) != 0, (mask & 1) != 0});
  }

  util::Table table({"C", "R", "B", "makespan", "ci95", "efficiency"});
  std::vector<std::vector<double>> csv_rows;
  for (const auto& v : variants) {
    const std::string name = std::string(v.comm ? "C" : "-") +
                             (v.rebalance ? "R" : "-") +
                             (v.dynamic_batch ? "B" : "-");
    // Run replications manually (policies outside the scheduler registry).
    std::vector<double> makespans(p.reps), efficiencies(p.reps);
    util::global_pool().parallel_for(0, p.reps, [&](std::size_t rep) {
      // The runner's stream discipline: workload/cluster depend only on
      // (seed, rep), so every variant sees identical instances.
      const util::Rng base(s.seed);
      util::Rng wrng = base.split(3 * rep);
      util::Rng crng = base.split(3 * rep + 1);
      util::Rng srng = base.split(3 * rep + 2);
      const auto dist = exp::make_distribution(s.workload);
      const auto wl = workload::generate(*dist, s.workload.count, wrng);
      const auto cluster = sim::build_cluster(s.cluster, crng);
      const auto policy =
          make_variant(v.comm, v.rebalance, v.dynamic_batch, p, name);
      const auto r = sim::simulate(cluster, wl, *policy, srng);
      makespans[rep] = r.makespan;
      efficiencies[rep] = r.efficiency();
    });
    const auto ms = util::summarize(makespans);
    const auto ef = util::summarize(efficiencies);
    table.add_row({v.comm ? "x" : "", v.rebalance ? "x" : "",
                   v.dynamic_batch ? "x" : "", util::fmt(ms.mean),
                   util::fmt(ms.ci95), util::fmt(ef.mean, 4)});
    csv_rows.push_back({v.comm ? 1.0 : 0.0, v.rebalance ? 1.0 : 0.0,
                        v.dynamic_batch ? 1.0 : 0.0, ms.mean, ef.mean});
  }
  table.print(std::cout);
  bench::maybe_write_csv(p, {"comm", "rebalance", "dynamic", "makespan",
                             "efficiency"},
                         csv_rows);
  std::cout << "\nRow '---' is the ZO baseline; row 'CRB' is full PN.\n";
  return 0;
}
