// Figure 9: makespan with task sizes uniformly distributed 10–10000 MFLOPs
// (ratio 1:1000).
//
// The grid and shape check live in exp::FigSet (src/exp/figset.cpp,
// id "fig09"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig09", argc, argv);
}
