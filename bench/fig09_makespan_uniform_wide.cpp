// Figure 9: makespan with task sizes uniformly distributed 10–10000 MFLOPs
// (ratio 1:1000).
//
// Paper result: with the wider range the differences between schedulers
// become accentuated, and PN performs best.

#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                                     /*generations=*/120);
  bench::print_banner(
      "Figure 9", "makespan bars (uniform 10-10000, ratio 1:1000)",
      "differences between schedulers become accentuated (the paper's "
      "claim for this figure); the meta-heuristic and size-aware batch "
      "schedulers lead, LL/RR trail badly",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 10000.0;

  const auto means = bench::run_makespan_bars(p, spec, /*mean_comm=*/5.0);
  const auto s = util::summarize(means);
  // EF LL RR ZO PN MM MX: load-aware schedulers vs load-blind LL/RR.
  const double pn = means[4];
  const double worst_blind = std::max(means[1], means[2]);
  std::cout << "\nSpread across schedulers: (max-min)/mean = "
            << util::fmt((s.max - s.min) / s.mean, 4)
            << " (large spread expected)\nPN vs worst load-blind scheduler: "
            << util::fmt(pn, 5) << " vs " << util::fmt(worst_blind, 5)
            << " (accentuated gap expected)\n";
  return 0;
}
