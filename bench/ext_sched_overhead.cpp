// Extension: scheduler computation costs simulated time (§3.4). When the
// GA's wall time is charged to the simulation (sched_time_scale > 0),
// unlimited evolution delays dispatch and hurts makespan; the wall-clock
// budget (the "stop when a processor becomes idle" condition) restores
// the balance.

#include <iostream>

#include "bench_common.hpp"
#include "core/genetic_scheduler.hpp"
#include "exp/runner.hpp"
#include "util/thread_pool.hpp"

using namespace gasched;

namespace {

/// One PN configuration under a charged-time engine.
struct OverheadCase {
  const char* label;
  double time_scale;
  double budget;
  std::size_t gens;
};

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/400);
  bench::print_banner(
      "Extension", "charging scheduler computation to simulated time",
      "paper-consistent hypothesis (§3.4): when GA time delays dispatch, "
      "capping evolution (the processor-idle stop) beats unlimited "
      "evolution; with free scheduling, more generations only help",
      p);

  // Scale: 1 wall second of GA time = `scale` simulated seconds. Large
  // values emulate a slow scheduler processor relative to the cluster.
  const double scale = 2000.0;
  const std::vector<OverheadCase> cases{
      {"free scheduling, 50 gens", 0.0, 0.0, 50},
      {"free scheduling, 400 gens", 0.0, 0.0, p.generations},
      {"charged time, 400 gens, no budget", scale, 0.0, p.generations},
      {"charged time, 400 gens, 20 ms budget", scale, 0.02, p.generations},
  };

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("sched-overhead", p, spec, /*mean_comm=*/10.0);
  std::vector<exp::Sweep::Value> values;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    values.push_back({cases[i].label, {}});
  }
  sweep.axis("configuration", std::move(values));
  // Custom runner: max_wall_seconds lives on GeneticSchedulerConfig, not
  // in the registry's parameter surface, so the policy is built directly.
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const OverheadCase& oc = cases[cell.index];
    std::vector<sim::SimulationResult> runs(cell.scenario.replications);
    auto body = [&](std::size_t rep) {
      const util::Rng base(cell.scenario.seed);
      util::Rng workload_rng = base.split(3 * rep);
      util::Rng cluster_rng = base.split(3 * rep + 1);
      util::Rng sim_rng = base.split(3 * rep + 2);
      const auto dist = exp::make_distribution(cell.scenario.workload);
      const auto wl = workload::generate(
          *dist, cell.scenario.workload.count, workload_rng);
      const auto cluster =
          sim::build_cluster(cell.scenario.cluster, cluster_rng);
      core::GeneticSchedulerConfig cfg;
      cfg.ga.max_generations = oc.gens;
      cfg.ga.population = p.population;
      cfg.max_wall_seconds = oc.budget;
      const auto pn = core::make_pn_scheduler(cfg);
      sim::EngineConfig ecfg;
      ecfg.sched_time_scale = oc.time_scale;
      runs[rep] = sim::simulate(cluster, wl, *pn, sim_rng, ecfg);
    };
    if (parallel && runs.size() > 1) {
      util::global_pool().parallel_for(0, runs.size(), body);
    } else {
      for (std::size_t rep = 0; rep < runs.size(); ++rep) body(rep);
    }
    exp::CellOutcome out;
    out.summary = metrics::aggregate("PN", runs);
    return out;
  });

  bench::run_sweep(sweep, p);
  return 0;
}
