// Extension: scheduler computation costs simulated time (§3.4). When the
// GA's wall time is charged to the simulation (sched_time_scale > 0),
// unlimited evolution delays dispatch and hurts makespan; the wall-clock
// budget (the "stop when a processor becomes idle" condition) restores
// the balance.

#include <iostream>

#include "bench_common.hpp"
#include "core/genetic_scheduler.hpp"
#include "exp/runner.hpp"

using namespace gasched;

namespace {

/// Runs PN with an explicit scheduler config under a charged-time engine.
double run_pn(const bench::BenchParams& p, double time_scale,
              double wall_budget, std::size_t generations) {
  double sum = 0.0;
  for (std::size_t rep = 0; rep < p.reps; ++rep) {
    const util::Rng base(p.seed);
    util::Rng workload_rng = base.split(3 * rep);
    util::Rng cluster_rng = base.split(3 * rep + 1);
    util::Rng sim_rng = base.split(3 * rep + 2);
    const sim::Cluster cluster =
        sim::build_cluster(exp::paper_cluster(10.0, p.procs), cluster_rng);
    workload::NormalSizes dist(1000.0, 9e5);
    const auto wl = workload::generate(dist, p.tasks, workload_rng);

    core::GeneticSchedulerConfig cfg;
    cfg.ga.max_generations = generations;
    cfg.ga.population = p.population;
    cfg.max_wall_seconds = wall_budget;
    auto pn = core::make_pn_scheduler(cfg);
    sim::EngineConfig ecfg;
    ecfg.sched_time_scale = time_scale;
    const auto r = sim::simulate(cluster, wl, *pn, sim_rng, ecfg);
    sum += r.makespan;
  }
  return sum / static_cast<double>(p.reps);
}

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/400);
  bench::print_banner(
      "Extension", "charging scheduler computation to simulated time",
      "paper-consistent hypothesis (§3.4): when GA time delays dispatch, "
      "capping evolution (the processor-idle stop) beats unlimited "
      "evolution; with free scheduling, more generations only help",
      p);

  // Scale: 1 wall second of GA time = `scale` simulated seconds. Large
  // values emulate a slow scheduler processor relative to the cluster.
  const double scale = 2000.0;

  util::Table table({"configuration", "mean makespan"});
  std::vector<std::vector<double>> csv_rows;
  const struct {
    const char* label;
    double time_scale;
    double budget;
    std::size_t gens;
  } rows[] = {
      {"free scheduling, 50 gens", 0.0, 0.0, 50},
      {"free scheduling, 400 gens", 0.0, 0.0, p.generations},
      {"charged time, 400 gens, no budget", scale, 0.0, p.generations},
      {"charged time, 400 gens, 20 ms budget", scale, 0.02, p.generations},
  };
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const double ms =
        run_pn(p, rows[i].time_scale, rows[i].budget, rows[i].gens);
    table.add_row(rows[i].label, {ms});
    csv_rows.push_back({static_cast<double>(i), ms});
  }
  table.print(std::cout);
  bench::maybe_write_csv(p, {"config_index", "makespan"}, csv_rows);
  return 0;
}
