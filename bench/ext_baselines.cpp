// Extension: the full ten-scheduler comparison — the paper's seven plus
// MET, KPB, and Sufferage from its reference [11] (Maheswaran et al.
// 1999), on the paper's normal workload.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "ten-scheduler comparison (adds MET, KPB, SUF)",
      "literature-consistent hypothesis: MET collapses onto the fastest "
      "machine (terrible on heterogeneous rates), KPB sits between MET "
      "and EF, Sufferage is competitive with min-min",
      p);

  exp::Scenario s;
  s.name = "baselines";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;

  const auto opts = bench::scheduler_params(p);
  util::Table table({"scheduler", "makespan", "ci95", "efficiency"});
  std::vector<std::vector<double>> csv_rows;
  double met_ms = 0.0, ef_ms = 0.0, kpb_ms = 0.0;
  for (const auto kind : exp::extended_schedulers()) {
    const auto cell = exp::run_cell(s, kind, opts);
    table.add_row(cell.scheduler, {cell.makespan.mean, cell.makespan.ci95,
                                   cell.efficiency.mean});
    csv_rows.push_back({static_cast<double>(csv_rows.size()),
                        cell.makespan.mean, cell.efficiency.mean});
    if (kind == "MET") met_ms = cell.makespan.mean;
    if (kind == "EF") ef_ms = cell.makespan.mean;
    if (kind == "KPB") kpb_ms = cell.makespan.mean;
  }
  table.print(std::cout);
  bench::maybe_write_csv(p, {"scheduler_index", "makespan", "efficiency"},
                         csv_rows);
  std::cout << "\nMET/EF makespan ratio " << util::fmt(met_ms / ef_ms, 4)
            << " (>> 1 expected); KPB between: "
            << util::fmt(ef_ms, 5) << " <= " << util::fmt(kpb_ms, 5)
            << " <= " << util::fmt(met_ms, 5) << " roughly.\n";
  return 0;
}
