// Extension: the full ten-scheduler comparison — the paper's seven plus
// MET, KPB, and Sufferage from its reference [11] (Maheswaran et al.
// 1999), on the paper's normal workload.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "ten-scheduler comparison (adds MET, KPB, SUF)",
      "literature-consistent hypothesis: MET collapses onto the fastest "
      "machine (terrible on heterogeneous rates), KPB sits between MET "
      "and EF, Sufferage is competitive with min-min",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("baselines", p, spec, /*mean_comm=*/10.0);
  sweep.schedulers(exp::extended_schedulers());
  const auto result = bench::run_sweep(sweep, p);

  double met_ms = 0.0, ef_ms = 0.0, kpb_ms = 0.0;
  for (const auto& row : result.rows) {
    if (row.scheduler == "MET") met_ms = row.cell.makespan.mean;
    if (row.scheduler == "EF") ef_ms = row.cell.makespan.mean;
    if (row.scheduler == "KPB") kpb_ms = row.cell.makespan.mean;
  }
  std::cout << "\nMET/EF makespan ratio " << util::fmt(met_ms / ef_ms, 4)
            << " (>> 1 expected); KPB between: "
            << util::fmt(ef_ms, 5) << " <= " << util::fmt(kpb_ms, 5)
            << " <= " << util::fmt(met_ms, 5) << " roughly.\n";
  return 0;
}
