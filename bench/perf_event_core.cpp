// Event-core perf probe: the ledger anchor behind the
// `perf_event_core` section of BENCH_eval.json.
//
// Three measurements on the calendar-queue event core:
//
//   hold    the classic hold model (Vaucher & Duval): preload N events,
//           then H× {pop the minimum, push a successor at +Exp(1)} — the
//           steady-state access pattern of a running simulation. Reports
//           ops/sec and, critically, allocs_per_event: after preload the
//           arena recycles slots, so the hold phase must allocate
//           NOTHING (asserted by CI at 0.00).
//   flood   N pushes at t = 0 followed by a full drain — the paper's
//           all_at_start workloads, the calendar queue's degenerate case,
//           kept linear by the equal-timestamp tail-append fast path.
//   engine  an end-to-end sim::Engine run at cloud scale (default 1000
//           processors × 1,000,000 tasks under RR) reporting event
//           throughput and makespan — proof the rebuilt core carries the
//           federation-scale scenarios the fed/ layer composes.
//
// Plain binary (no Google Benchmark): it owns operator new for the
// allocation counting, and emits one machine-readable JSON line.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};

}  // namespace

// Counting hook: every heap allocation in the process bumps the counter.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gasched;

struct Options {
  std::size_t events = 1'000'000;  ///< hold-model population / flood size
  std::size_t holds = 4'000'000;   ///< hold operations measured
  std::size_t tasks = 1'000'000;   ///< engine run workload
  std::size_t procs = 1000;        ///< engine run cluster size
  std::string scheduler = "RR";
  std::string label = "current";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](std::size_t& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_event_core: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      out = std::strtoul(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--events") == 0) {
      num(o.events);
    } else if (std::strcmp(argv[i], "--holds") == 0) {
      num(o.holds);
    } else if (std::strcmp(argv[i], "--tasks") == 0) {
      num(o.tasks);
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      num(o.procs);
    } else if (std::strcmp(argv[i], "--scheduler") == 0 && i + 1 < argc) {
      o.scheduler = argv[++i];
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      o.label = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_event_core [--events N] [--holds H] "
                   "[--tasks N] [--procs M] [--scheduler S] [--label L]\n");
      std::exit(2);
    }
  }
  return o;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hold model: (ops/sec, allocs per hold operation). The preload draws
/// from Exp(1) — the equilibrium residual of the hold increments — so
/// the queue starts in the stationary regime the holds maintain.
std::pair<double, double> run_hold(const Options& o) {
  sim::CalendarQueue<std::uint64_t> q;
  q.reserve(o.events);
  util::Rng rng(11);
  for (std::size_t i = 0; i < o.events; ++i) {
    q.push(rng.exponential(1.0), i);
  }
  // Warm up one hold round so lazily-grown internals settle before the
  // allocation window opens.
  for (std::size_t i = 0; i < 10'000; ++i) {
    const double t = q.top_time();
    q.pop();
    q.push(t + rng.exponential(1.0), i);
  }
  const unsigned long long a0 = g_allocs.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < o.holds; ++i) {
    const double t = q.top_time();
    q.pop();
    q.push(t + rng.exponential(1.0), i);
  }
  const double wall = seconds_since(t0);
  const unsigned long long a1 = g_allocs.load(std::memory_order_relaxed);
  return {static_cast<double>(o.holds) / wall,
          static_cast<double>(a1 - a0) / static_cast<double>(o.holds)};
}

/// Equal-timestamp flood: (pushes/sec, pops/sec).
std::pair<double, double> run_flood(const Options& o) {
  sim::CalendarQueue<std::uint64_t> q;
  q.reserve(o.events);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < o.events; ++i) q.push(0.0, i);
  const double push_wall = seconds_since(t0);
  const auto t1 = std::chrono::steady_clock::now();
  while (!q.empty()) q.pop();
  const double pop_wall = seconds_since(t1);
  return {static_cast<double>(o.events) / push_wall,
          static_cast<double>(o.events) / pop_wall};
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  const auto [hold_ops_per_sec, allocs_per_event] = run_hold(o);
  const auto [flood_pushes_per_sec, flood_pops_per_sec] = run_flood(o);

  // End-to-end engine run at scale: the paper's all-at-start setting on a
  // cheap O(1)-per-task scheduler, so the event core (not the policy)
  // dominates.
  exp::Scenario s;
  s.name = "perf_event_core";
  s.cluster.num_processors = o.procs;
  s.cluster.comm.mean_cost = 1.0;
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 100.0;
  s.workload.count = o.tasks;
  s.seed = 20050404;
  const util::Rng base(s.seed);
  util::Rng workload_rng = base.split(0);
  util::Rng cluster_rng = base.split(1);
  util::Rng sim_rng = base.split(2);
  const auto dist = exp::make_distribution(s.workload);
  const workload::Workload wl =
      workload::generate(*dist, s.workload.count, workload_rng);
  const sim::Cluster cluster = sim::build_cluster(s.cluster, cluster_rng);
  const auto policy = exp::make_scheduler(o.scheduler);

  sim::Engine engine(cluster, wl, *policy, std::move(sim_rng));
  const auto t0 = std::chrono::steady_clock::now();
  const sim::SimulationResult r = engine.run();
  const double engine_wall = seconds_since(t0);
  const double events = static_cast<double>(engine.events_processed());

  std::printf(
      "{\"label\":\"%s\",\"events\":%zu,\"holds\":%zu,"
      "\"hold_ops_per_sec\":%.1f,\"allocs_per_event\":%.2f,"
      "\"flood_pushes_per_sec\":%.1f,\"flood_pops_per_sec\":%.1f,"
      "\"engine\":{\"procs\":%zu,\"tasks\":%zu,\"scheduler\":\"%s\","
      "\"events_processed\":%.0f,\"wall_seconds\":%.3f,"
      "\"events_per_sec\":%.1f,\"tasks_per_sec\":%.1f,"
      "\"tasks_completed\":%zu,\"makespan\":%.3f}}\n",
      o.label.c_str(), o.events, o.holds, hold_ops_per_sec, allocs_per_event,
      flood_pushes_per_sec, flood_pops_per_sec, o.procs, o.tasks,
      o.scheduler.c_str(), events, engine_wall, events / engine_wall,
      static_cast<double>(r.tasks_completed) / engine_wall,
      r.tasks_completed, r.makespan);
  return 0;
}
