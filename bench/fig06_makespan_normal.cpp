// Figure 6: makespan of the seven schedulers with normally distributed
// task sizes (mean 1000 MFLOPs, variance 9e5) and PN's dynamic batch size.
//
// Paper result: PN outperforms all the other schedulers in total execution
// time.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                                     /*generations=*/120);
  bench::print_banner(
      "Figure 6", "makespan bars (normal task sizes, dynamic batch)",
      "PN has the lowest makespan of all seven schedulers", p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  const auto means = bench::run_makespan_bars(p, spec, /*mean_comm=*/20.0);

  const std::size_t pn = 4;  // EF LL RR ZO PN MM MX
  bool pn_best = true;
  for (std::size_t i = 0; i < means.size(); ++i) {
    if (i != pn && means[i] < means[pn]) pn_best = false;
  }
  std::cout << "\nPN lowest makespan: " << (pn_best ? "YES" : "no") << "\n";
  return 0;
}
