// Figure 6: makespan of the seven schedulers with normally distributed
// task sizes (mean 1000 MFLOPs, variance 9e5) and PN's dynamic batch size.
//
// The grid and shape check live in exp::FigSet (src/exp/figset.cpp,
// id "fig06"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig06", argc, argv);
}
