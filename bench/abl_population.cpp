// Ablation: population size. The paper uses a micro GA of 20 individuals
// (§4.2, citing Chipperfield & Flemming) "which speeds up computation time
// without impacting greatly on the final result". This bench quantifies
// that trade-off end-to-end (full simulation, PN scheduler).

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "GA population size (PN, full simulation)",
      "paper claim: population 20 (micro GA) is fast without much quality "
      "loss vs larger populations",
      p);

  exp::Scenario scenario;
  scenario.name = "abl-pop";
  scenario.cluster = exp::paper_cluster(10.0, p.procs);
  scenario.workload.dist = "normal";
  scenario.workload.param_a = 1000.0;
  scenario.workload.param_b = 9e5;
  scenario.workload.count = p.tasks;
  scenario.seed = p.seed;
  scenario.replications = p.reps;

  util::Table table(
      {"population", "makespan", "efficiency", "sched_wall_s"});
  std::vector<std::vector<double>> csv_rows;
  for (const std::size_t pop : {6, 12, 20, 40, 80}) {
    exp::SchedulerParams opts = bench::scheduler_params(p);
    opts.set("population", pop);
    const auto cell = exp::run_cell(scenario, "PN", opts);
    table.add_row(util::fmt(static_cast<double>(pop), 4),
                  {cell.makespan.mean, cell.efficiency.mean,
                   cell.sched_wall.mean});
    csv_rows.push_back({static_cast<double>(pop), cell.makespan.mean,
                        cell.efficiency.mean, cell.sched_wall.mean});
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"population", "makespan", "efficiency", "sched_wall_s"}, csv_rows);
  return 0;
}
