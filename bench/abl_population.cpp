// Ablation: population size. The paper uses a micro GA of 20 individuals
// (§4.2, citing Chipperfield & Flemming) "which speeds up computation time
// without impacting greatly on the final result". This bench quantifies
// that trade-off end-to-end (full simulation, PN scheduler).

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "GA population size (PN, full simulation)",
      "paper claim: population 20 (micro GA) is fast without much quality "
      "loss vs larger populations",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("abl-pop", p, spec, /*mean_comm=*/10.0);
  sweep.scheduler("PN");
  sweep.param_axis("population", {6, 12, 20, 40, 80});
  bench::run_sweep(sweep, p);
  return 0;
}
