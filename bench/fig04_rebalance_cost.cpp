// Figure 4: wall-clock time taken to schedule a task stream with varying
// numbers of re-balances per individual per generation of the GA.
//
// Paper result: time grows linearly in the number of re-balances (≈50 s at
// 0 to ≈250 s at 20 for 10,000 tasks on the authors' hardware). Absolute
// times differ on other machines; the linear shape is the claim.

#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/1500, /*reps=*/2,
                                     /*generations=*/60);
  bench::print_banner(
      "Figure 4", "scheduling time vs re-balances per generation",
      "wall-clock scheduling time increases linearly with the number of "
      "re-balances",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  std::vector<double> levels;
  for (std::size_t k = 0; k <= 20; k += 2) {
    levels.push_back(static_cast<double>(k));
  }

  exp::Sweep sweep = bench::make_sweep("fig4", p, spec, /*mean_comm=*/20.0);
  sweep.scheduler("PN");
  sweep.param_axis("rebalances", levels);
  const auto result = bench::run_sweep(sweep, p);

  std::vector<double> ys;
  for (const auto& row : result.rows) ys.push_back(row.cell.sched_wall.mean);
  const util::LinearFit fit = util::linear_fit(levels, ys);
  std::cout << "\nLinear fit: time = " << util::fmt(fit.intercept, 4) << " + "
            << util::fmt(fit.slope, 4) << " * rebalances   (R^2 = "
            << util::fmt(fit.r2, 4) << ")\n"
            << (fit.r2 > 0.9 ? "Shape REPRODUCED: linear growth.\n"
                             : "Shape NOT clearly linear at this scale.\n");
  return 0;
}
