// Figure 4: wall-clock time taken to schedule a task stream with varying
// numbers of re-balances per individual per generation of the GA.
//
// The grid and linear-fit report live in exp::FigSet
// (src/exp/figset.cpp, id "fig04"); this binary is a thin driver so the
// figure also runs under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig04", argc, argv);
}
