// Figure 10: makespan with Poisson-distributed task sizes, mean 10 MFLOPs.
//
// The grid and shape check live in exp::FigSet (src/exp/figset.cpp,
// id "fig10"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig10", argc, argv);
}
