// Figure 10: makespan with Poisson-distributed task sizes, mean 10 MFLOPs.
//
// Paper result: PN performs best, followed by MM; MX performs quite badly
// when the mean task size is small.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                                     /*generations=*/120);
  bench::print_banner(
      "Figure 10", "makespan bars (Poisson task sizes, mean 10 MFLOPs)",
      "PN best, MM next; MX performs badly at this small mean", p);

  exp::WorkloadSpec spec;
  spec.dist = "poisson";
  spec.param_a = 10.0;

  const auto means = bench::run_makespan_bars(p, spec, /*mean_comm=*/1.0);
  const std::size_t pn = 4, mm = 5, mx = 6;
  bool pn_best = true;
  for (std::size_t i = 0; i < means.size(); ++i) {
    if (i != pn && means[i] < means[pn]) pn_best = false;
  }
  std::cout << "\nPN lowest makespan: " << (pn_best ? "YES" : "no")
            << "; MM/MX ratio = " << util::fmt(means[mm] / means[mx], 4)
            << " (< 1 expected: MM beats MX at small means)\n";
  return 0;
}
