// Ablation: initial-population construction (§3.3). The paper assigns a
// percentage of tasks randomly and the rest earliest-finish; this bench
// sweeps that percentage from pure greedy (0) to pure random (1).

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/8,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "random fraction of the list-scheduling init",
      "paper claim: mixing random and earliest-finish placement gives a "
      "well-balanced randomised initial population",
      p);

  exp::WorkloadSpec spec;  // GA-batch study: sizes drawn directly below
  exp::Sweep sweep =
      bench::make_sweep("abl-init", p, spec, /*mean_comm=*/20.0);
  sweep.axis("random_fraction", {0.0, 0.25, 0.5, 0.75, 1.0}, {});
  sweep.extra_columns(
      {"initial_makespan", "final_makespan", "reduction"});
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const double frac = cell.coord_value("random_fraction");
    std::vector<double> initials(p.reps), finals(p.reps);
    auto body = [&](std::size_t rep) {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster = sim::build_cluster(
          exp::paper_cluster(20.0, p.procs), cluster_rng);
      sim::SystemView view;
      view.procs.resize(cluster.size());
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = cluster.processors[j].base_rate;
        view.procs[j].comm_estimate =
            cluster.comm->true_mean(static_cast<sim::ProcId>(j));
      }
      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);
      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, true);
      const core::ScheduleProblem problem(codec, eval);

      ga::GaConfig cfg;
      cfg.population = p.population;
      cfg.max_generations = p.generations;
      cfg.record_history = true;
      const ga::RouletteSelection sel;
      const ga::CycleCrossover cx;
      const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, cx, mut);
      util::Rng ga_rng = base.split(5000 + rep);
      auto init = core::initial_population(codec, eval, cfg.population,
                                           frac, ga_rng);
      const auto r = engine.run(problem, std::move(init), ga_rng);
      initials[rep] = r.objective_history.front();
      finals[rep] = r.best_objective;
    };
    if (parallel && p.reps > 1) {
      util::global_pool().parallel_for(0, p.reps, body);
    } else {
      for (std::size_t rep = 0; rep < p.reps; ++rep) body(rep);
    }
    const double init_ms = util::summarize(initials).mean;
    const double final_ms = util::summarize(finals).mean;
    exp::CellOutcome out;
    out.extras = {{"initial_makespan", init_ms},
                  {"final_makespan", final_ms},
                  {"reduction", 1.0 - final_ms / init_ms}};
    return out;
  });

  bench::run_sweep(sweep, p);
  return 0;
}
