// Ablation: initial-population construction (§3.3). The paper assigns a
// percentage of tasks randomly and the rest earliest-finish; this bench
// sweeps that percentage from pure greedy (0) to pure random (1).

#include <iostream>

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/8,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "random fraction of the list-scheduling init",
      "paper claim: mixing random and earliest-finish placement gives a "
      "well-balanced randomised initial population",
      p);

  util::Table table({"random_fraction", "initial_makespan",
                     "final_makespan", "reduction"});
  std::vector<std::vector<double>> csv_rows;
  const std::vector<double> fractions{0.0, 0.25, 0.5, 0.75, 1.0};
  // results[fi][rep] = {initial, final makespan}; filled in parallel.
  std::vector<std::vector<std::pair<double, double>>> results(
      fractions.size(), std::vector<std::pair<double, double>>(p.reps));
  util::global_pool().parallel_for(
      0, fractions.size() * p.reps, [&](std::size_t w) {
    const std::size_t fi = w / p.reps;
    const double frac = fractions[fi];
    const std::size_t rep = w % p.reps;
    {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster =
          sim::build_cluster(exp::paper_cluster(20.0, p.procs), cluster_rng);
      sim::SystemView view;
      view.procs.resize(cluster.size());
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = cluster.processors[j].base_rate;
        view.procs[j].comm_estimate =
            cluster.comm->true_mean(static_cast<sim::ProcId>(j));
      }
      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);
      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, true);
      const core::ScheduleProblem problem(codec, eval);

      ga::GaConfig cfg;
      cfg.population = p.population;
      cfg.max_generations = p.generations;
      cfg.record_history = true;
      const ga::RouletteSelection sel;
      const ga::CycleCrossover cx;
      const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, cx, mut);
      util::Rng ga_rng = base.split(5000 + rep);
      auto init =
          core::initial_population(codec, eval, cfg.population, frac, ga_rng);
      const auto r = engine.run(problem, std::move(init), ga_rng);
      results[fi][rep] = {r.objective_history.front(), r.best_objective};
    }
  });
  for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
    double init_sum = 0.0, final_sum = 0.0;
    for (const auto& [ini, fin] : results[fi]) {
      init_sum += ini;
      final_sum += fin;
    }
    const double reps = static_cast<double>(p.reps);
    const double init_ms = init_sum / reps;
    const double final_ms = final_sum / reps;
    table.add_row(util::fmt(fractions[fi], 3),
                  {init_ms, final_ms, 1.0 - final_ms / init_ms});
    csv_rows.push_back(
        {fractions[fi], init_ms, final_ms, 1.0 - final_ms / init_ms});
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"random_fraction", "initial_makespan", "final_makespan",
          "reduction"},
      csv_rows);
  return 0;
}
