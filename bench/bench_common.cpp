#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>
#include <optional>

namespace gasched::bench {

BenchParams parse_params(int argc, char** argv, std::size_t quick_tasks,
                         std::size_t quick_reps,
                         std::size_t quick_generations) {
  const util::Cli cli(argc, argv);
  BenchParams p;
  p.full = util::bench_full_scale() || cli.get_bool("full", false);
  if (p.full) {
    p.tasks = 10000;
    p.reps = 50;
    p.generations = 1000;
  } else {
    p.tasks = quick_tasks;
    p.reps = quick_reps;
    p.generations = quick_generations;
  }
  p.tasks = static_cast<std::size_t>(
      cli.get_int("tasks", static_cast<std::int64_t>(p.tasks)));
  p.reps = static_cast<std::size_t>(
      cli.get_int("reps", static_cast<std::int64_t>(p.reps)));
  p.generations = static_cast<std::size_t>(cli.get_int(
      "generations", static_cast<std::int64_t>(p.generations)));
  p.procs = static_cast<std::size_t>(
      cli.get_int("procs", static_cast<std::int64_t>(p.procs)));
  p.population = static_cast<std::size_t>(
      cli.get_int("population", static_cast<std::int64_t>(p.population)));
  p.batch = static_cast<std::size_t>(
      cli.get_int("batch", static_cast<std::int64_t>(p.batch)));
  p.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(p.seed)));
  p.serial = cli.get_bool("serial", false);
  if (cli.has("csv")) p.csv = cli.get("csv", "");
  if (cli.has("json")) p.json = cli.get("json", "");
  p.resume = cli.get_bool("resume", false);
  if (p.resume && !p.csv && !p.json) {
    std::cerr << "error: --resume needs --csv and/or --json (the files "
                 "are what a resume continues from)\n";
    std::exit(2);
  }
  return p;
}

exp::SchedulerParams scheduler_params(const BenchParams& p) {
  exp::SchedulerParams o;
  o.set("batch_size", p.batch);
  o.set("max_generations", p.generations);
  o.set("population", p.population);
  o.set("pn_dynamic_batch", p.pn_dynamic_batch);
  return o;
}

void print_banner(const std::string& figure, const std::string& title,
                  const std::string& paper_expectation,
                  const BenchParams& p) {
  std::cout << "=== " << figure << ": " << title << " ===\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "Scale: " << (p.full ? "full (paper)" : "quick") << "  tasks="
            << p.tasks << " procs=" << p.procs << " reps=" << p.reps
            << " generations=" << p.generations << " batch=" << p.batch
            << " seed=" << p.seed
            << (p.serial ? "  (serial execution)" : "") << "\n\n";
}

exp::Scenario bench_scenario(const BenchParams& p,
                             const exp::WorkloadSpec& spec,
                             double mean_comm_cost, std::string name) {
  exp::Scenario s;
  s.name = std::move(name);
  s.cluster = exp::paper_cluster(mean_comm_cost, p.procs);
  s.workload = spec;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;
  return s;
}

exp::Sweep make_sweep(std::string name, const BenchParams& p,
                      const exp::WorkloadSpec& spec, double mean_comm_cost) {
  exp::Sweep sweep(name);
  sweep.base(bench_scenario(p, spec, mean_comm_cost, std::move(name)));
  sweep.params(scheduler_params(p));
  sweep.parallel(!p.serial);
  return sweep;
}

exp::SweepResult run_sweep(exp::Sweep& sweep, const BenchParams& p,
                           bool print_table) {
  std::optional<metrics::TableSink> table;
  if (print_table) {
    table.emplace(std::cout);
    sweep.add_sink(*table);
  }
  const metrics::SinkMode mode = p.resume ? metrics::SinkMode::kResume
                                          : metrics::SinkMode::kTruncate;
  std::optional<metrics::CsvSink> csv;
  if (p.csv) {
    csv.emplace(*p.csv, mode);
    sweep.add_sink(*csv);
  }
  std::optional<metrics::JsonlSink> jsonl;
  if (p.json) {
    jsonl.emplace(*p.json, mode);
    sweep.add_sink(*jsonl);
  }
  const exp::SweepResult result = sweep.run();
  if (csv) std::cout << "CSV written to " << csv->path().string() << "\n";
  if (jsonl) {
    std::cout << "JSONL written to " << jsonl->path().string() << "\n";
  }
  if (result.failed > 0) {
    // A failed cell in a bench is always a configuration or regression
    // error, and every downstream shape check would silently compute on
    // default-constructed zeros — abort the binary instead.
    std::cerr << "error: " << result.failed << "/" << result.rows.size()
              << " sweep cells failed (see the error column above)\n";
    std::exit(EXIT_FAILURE);
  }
  if (result.skipped > 0) {
    // Resumed cells hold no in-memory data (their rows were read off
    // disk by the sinks, not recomputed), so the figure-specific tables
    // and shape checks after this call would compute on zeros. The
    // output files are complete — stop here, like figset does.
    std::cout << result.skipped << "/" << result.rows.size()
              << " cells were already on disk (--resume); output files "
                 "are complete. Re-run without --resume for the derived "
                 "tables and shape checks.\n";
    std::exit(EXIT_SUCCESS);
  }
  return result;
}

exp::FigScale to_scale(const BenchParams& p) {
  exp::FigScale s;
  s.tasks = p.tasks;
  s.procs = p.procs;
  s.reps = p.reps;
  s.generations = p.generations;
  s.population = p.population;
  s.batch = p.batch;
  s.seed = p.seed;
  s.full = p.full;
  return s;
}

int run_figure(const std::string& id, int argc, char** argv) {
  const exp::FigureDef& fig = exp::FigSet::instance().find(id);
  BenchParams p = parse_params(argc, argv, fig.quick_tasks, fig.quick_reps,
                               fig.quick_generations);
  // Figures 3/5/7 pin their paper task counts at full scale, but an
  // explicit --tasks wins — the same precedence figset uses, so both
  // drivers build identical grids from identical flags.
  const util::Cli cli(argc, argv);
  if (p.full && fig.full_tasks != 0 && !cli.has("tasks")) {
    p.tasks = fig.full_tasks;
  }
  print_banner(fig.number, fig.title, fig.paper_expectation, p);

  const exp::FigScale scale = to_scale(p);
  exp::Sweep sweep = fig.build(scale);
  sweep.parallel(!p.serial);
  const exp::SweepResult result = run_sweep(sweep, p, fig.grid_table);
  if (fig.report) fig.report(result, scale, std::cout);
  return 0;
}

void maybe_write_csv(const BenchParams& p,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  if (!p.csv) return;
  util::CsvWriter w(*p.csv);
  w.row(header);
  for (const auto& row : rows) w.row_numeric(row);
  std::cout << "CSV written to " << *p.csv << "\n";
}

void maybe_write_json(const BenchParams& p, const std::string& experiment,
                      const std::vector<metrics::CellSummary>& cells) {
  if (!p.json) return;
  metrics::write_experiment_json(experiment, cells, *p.json);
  std::cout << "JSON written to " << *p.json << "\n";
}

}  // namespace gasched::bench
