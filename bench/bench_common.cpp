#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>
#include <optional>

namespace gasched::bench {

BenchParams parse_params(int argc, char** argv, std::size_t quick_tasks,
                         std::size_t quick_reps,
                         std::size_t quick_generations) {
  const util::Cli cli(argc, argv);
  BenchParams p;
  p.full = util::bench_full_scale() || cli.get_bool("full", false);
  if (p.full) {
    p.tasks = 10000;
    p.reps = 50;
    p.generations = 1000;
  } else {
    p.tasks = quick_tasks;
    p.reps = quick_reps;
    p.generations = quick_generations;
  }
  p.tasks = static_cast<std::size_t>(
      cli.get_int("tasks", static_cast<std::int64_t>(p.tasks)));
  p.reps = static_cast<std::size_t>(
      cli.get_int("reps", static_cast<std::int64_t>(p.reps)));
  p.generations = static_cast<std::size_t>(cli.get_int(
      "generations", static_cast<std::int64_t>(p.generations)));
  p.procs = static_cast<std::size_t>(
      cli.get_int("procs", static_cast<std::int64_t>(p.procs)));
  p.population = static_cast<std::size_t>(
      cli.get_int("population", static_cast<std::int64_t>(p.population)));
  p.batch = static_cast<std::size_t>(
      cli.get_int("batch", static_cast<std::int64_t>(p.batch)));
  p.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(p.seed)));
  p.serial = cli.get_bool("serial", false);
  if (cli.has("csv")) p.csv = cli.get("csv", "");
  if (cli.has("json")) p.json = cli.get("json", "");
  return p;
}

exp::SchedulerParams scheduler_params(const BenchParams& p) {
  exp::SchedulerParams o;
  o.set("batch_size", p.batch);
  o.set("max_generations", p.generations);
  o.set("population", p.population);
  o.set("pn_dynamic_batch", p.pn_dynamic_batch);
  return o;
}

void print_banner(const std::string& figure, const std::string& title,
                  const std::string& paper_expectation,
                  const BenchParams& p) {
  std::cout << "=== " << figure << ": " << title << " ===\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "Scale: " << (p.full ? "full (paper)" : "quick") << "  tasks="
            << p.tasks << " procs=" << p.procs << " reps=" << p.reps
            << " generations=" << p.generations << " batch=" << p.batch
            << " seed=" << p.seed
            << (p.serial ? "  (serial execution)" : "") << "\n\n";
}

exp::Scenario bench_scenario(const BenchParams& p,
                             const exp::WorkloadSpec& spec,
                             double mean_comm_cost, std::string name) {
  exp::Scenario s;
  s.name = std::move(name);
  s.cluster = exp::paper_cluster(mean_comm_cost, p.procs);
  s.workload = spec;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;
  return s;
}

exp::Sweep make_sweep(std::string name, const BenchParams& p,
                      const exp::WorkloadSpec& spec, double mean_comm_cost) {
  exp::Sweep sweep(name);
  sweep.base(bench_scenario(p, spec, mean_comm_cost, std::move(name)));
  sweep.params(scheduler_params(p));
  sweep.parallel(!p.serial);
  return sweep;
}

exp::SweepResult run_sweep(exp::Sweep& sweep, const BenchParams& p,
                           bool print_table) {
  std::optional<metrics::TableSink> table;
  if (print_table) {
    table.emplace(std::cout);
    sweep.add_sink(*table);
  }
  std::optional<metrics::CsvSink> csv;
  if (p.csv) {
    csv.emplace(*p.csv);
    sweep.add_sink(*csv);
  }
  std::optional<metrics::JsonlSink> jsonl;
  if (p.json) {
    jsonl.emplace(*p.json);
    sweep.add_sink(*jsonl);
  }
  const exp::SweepResult result = sweep.run();
  if (csv) std::cout << "CSV written to " << csv->path().string() << "\n";
  if (jsonl) {
    std::cout << "JSONL written to " << jsonl->path().string() << "\n";
  }
  if (result.failed > 0) {
    // A failed cell in a bench is always a configuration or regression
    // error, and every downstream shape check would silently compute on
    // default-constructed zeros — abort the binary instead.
    std::cerr << "error: " << result.failed << "/" << result.rows.size()
              << " sweep cells failed (see the error column above)\n";
    std::exit(EXIT_FAILURE);
  }
  return result;
}

std::vector<double> run_makespan_bars(const BenchParams& p,
                                      const exp::WorkloadSpec& spec,
                                      double mean_comm_cost) {
  exp::Sweep sweep = make_sweep("bench", p, spec, mean_comm_cost);
  sweep.schedulers(exp::all_schedulers());
  return run_sweep(sweep, p).makespan_means();
}

std::vector<std::vector<double>> run_efficiency_sweep(
    const BenchParams& p, const exp::WorkloadSpec& spec,
    const std::vector<double>& inv_costs) {
  exp::Sweep sweep = make_sweep("efficiency", p, spec, /*mean_comm=*/20.0);
  sweep.axis("inv_comm_cost", inv_costs,
             [](exp::SweepCell& c, double inv) {
               c.scenario.cluster.comm.mean_cost = 1.0 / inv;
             });
  sweep.schedulers(exp::all_schedulers());

  const auto result = run_sweep(sweep, p, /*print_table=*/false);

  // Pivot for the paper's reading direction: one row per cost point,
  // schedulers as columns.
  const auto schedulers = exp::all_schedulers();
  std::vector<std::string> header{"1/mean_comm_cost"};
  for (const auto& kind : schedulers) header.push_back(kind);
  util::Table table(header);
  std::vector<std::vector<double>> rows;
  const std::size_t stride = schedulers.size();
  for (std::size_t pi = 0; pi < inv_costs.size(); ++pi) {
    std::vector<double> row{inv_costs[pi]};
    std::vector<std::string> cells{util::fmt(inv_costs[pi], 3)};
    for (std::size_t si = 0; si < stride; ++si) {
      const double eff =
          result.rows[pi * stride + si].cell.efficiency.mean;
      row.push_back(eff);
      cells.push_back(util::fmt(eff, 4));
    }
    table.add_row(cells);
    rows.push_back(std::move(row));
  }
  table.print(std::cout);
  return rows;
}

void maybe_write_csv(const BenchParams& p,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  if (!p.csv) return;
  util::CsvWriter w(*p.csv);
  w.row(header);
  for (const auto& row : rows) w.row_numeric(row);
  std::cout << "CSV written to " << *p.csv << "\n";
}

void maybe_write_json(const BenchParams& p, const std::string& experiment,
                      const std::vector<metrics::CellSummary>& cells) {
  if (!p.json) return;
  metrics::write_experiment_json(experiment, cells, *p.json);
  std::cout << "JSON written to " << *p.json << "\n";
}

}  // namespace gasched::bench
