#include "bench_common.hpp"

#include <iostream>

namespace gasched::bench {

BenchParams parse_params(int argc, char** argv, std::size_t quick_tasks,
                         std::size_t quick_reps,
                         std::size_t quick_generations) {
  const util::Cli cli(argc, argv);
  BenchParams p;
  p.full = util::bench_full_scale() || cli.get_bool("full", false);
  if (p.full) {
    p.tasks = 10000;
    p.reps = 50;
    p.generations = 1000;
  } else {
    p.tasks = quick_tasks;
    p.reps = quick_reps;
    p.generations = quick_generations;
  }
  p.tasks = static_cast<std::size_t>(
      cli.get_int("tasks", static_cast<std::int64_t>(p.tasks)));
  p.reps = static_cast<std::size_t>(
      cli.get_int("reps", static_cast<std::int64_t>(p.reps)));
  p.generations = static_cast<std::size_t>(cli.get_int(
      "generations", static_cast<std::int64_t>(p.generations)));
  p.procs = static_cast<std::size_t>(
      cli.get_int("procs", static_cast<std::int64_t>(p.procs)));
  p.population = static_cast<std::size_t>(
      cli.get_int("population", static_cast<std::int64_t>(p.population)));
  p.batch = static_cast<std::size_t>(
      cli.get_int("batch", static_cast<std::int64_t>(p.batch)));
  p.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(p.seed)));
  if (cli.has("csv")) p.csv = cli.get("csv", "");
  if (cli.has("json")) p.json = cli.get("json", "");
  return p;
}

exp::SchedulerParams scheduler_params(const BenchParams& p) {
  exp::SchedulerParams o;
  o.set("batch_size", p.batch);
  o.set("max_generations", p.generations);
  o.set("population", p.population);
  o.set("pn_dynamic_batch", p.pn_dynamic_batch);
  return o;
}

void print_banner(const std::string& figure, const std::string& title,
                  const std::string& paper_expectation,
                  const BenchParams& p) {
  std::cout << "=== " << figure << ": " << title << " ===\n"
            << "Paper expectation: " << paper_expectation << "\n"
            << "Scale: " << (p.full ? "full (paper)" : "quick") << "  tasks="
            << p.tasks << " procs=" << p.procs << " reps=" << p.reps
            << " generations=" << p.generations << " batch=" << p.batch
            << " seed=" << p.seed << "\n\n";
}

namespace {

exp::Scenario make_scenario(const BenchParams& p,
                            const exp::WorkloadSpec& spec,
                            double mean_comm_cost) {
  exp::Scenario s;
  s.name = "bench";
  s.cluster = exp::paper_cluster(mean_comm_cost, p.procs);
  s.workload = spec;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;
  return s;
}

}  // namespace

std::vector<double> run_makespan_bars(const BenchParams& p,
                                      const exp::WorkloadSpec& spec,
                                      double mean_comm_cost) {
  const exp::Scenario scenario = make_scenario(p, spec, mean_comm_cost);
  const auto opts = scheduler_params(p);
  util::Table table({"scheduler", "makespan", "ci95", "efficiency",
                     "response", "sched_wall_s"});
  std::vector<double> means;
  std::vector<std::vector<double>> csv_rows;
  std::vector<metrics::CellSummary> cells;
  for (const auto kind : exp::all_schedulers()) {
    const auto cell = exp::run_cell(scenario, kind, opts);
    table.add_row(cell.scheduler,
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.response.mean,
                   cell.sched_wall.mean});
    means.push_back(cell.makespan.mean);
    csv_rows.push_back({static_cast<double>(csv_rows.size()),
                        cell.makespan.mean, cell.makespan.ci95,
                        cell.efficiency.mean});
    cells.push_back(cell);
  }
  table.print(std::cout);
  maybe_write_csv(p, {"scheduler_index", "makespan_mean", "makespan_ci95",
                      "efficiency_mean"},
                  csv_rows);
  maybe_write_json(p, scenario.name, cells);
  return means;
}

std::vector<std::vector<double>> run_efficiency_sweep(
    const BenchParams& p, const exp::WorkloadSpec& spec,
    const std::vector<double>& inv_costs) {
  const auto opts = scheduler_params(p);
  std::vector<std::string> header{"1/mean_comm_cost"};
  for (const auto kind : exp::all_schedulers()) {
    header.push_back(kind);
  }
  util::Table table(header);
  std::vector<std::vector<double>> rows;
  for (const double inv : inv_costs) {
    const double cost = 1.0 / inv;
    const exp::Scenario scenario = make_scenario(p, spec, cost);
    std::vector<double> row{inv};
    for (const auto kind : exp::all_schedulers()) {
      row.push_back(exp::run_cell(scenario, kind, opts).efficiency.mean);
    }
    std::vector<std::string> cells{util::fmt(inv, 3)};
    for (std::size_t i = 1; i < row.size(); ++i) {
      cells.push_back(util::fmt(row[i], 4));
    }
    table.add_row(cells);
    rows.push_back(std::move(row));
  }
  table.print(std::cout);
  maybe_write_csv(p, header, rows);
  return rows;
}

void maybe_write_csv(const BenchParams& p,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows) {
  if (!p.csv) return;
  util::CsvWriter w(*p.csv);
  w.row(header);
  for (const auto& row : rows) w.row_numeric(row);
  std::cout << "CSV written to " << *p.csv << "\n";
}

void maybe_write_json(const BenchParams& p, const std::string& experiment,
                      const std::vector<metrics::CellSummary>& cells) {
  if (!p.json) return;
  metrics::write_experiment_json(experiment, cells, *p.json);
  std::cout << "JSON written to " << *p.json << "\n";
}

}  // namespace gasched::bench
