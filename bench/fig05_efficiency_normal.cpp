// Figure 5: efficiency of the seven schedulers with normally distributed
// task sizes (mean 1000 MFLOPs, variance 9e5) and varying communication
// costs; 1000 tasks, batch size 200, 50 processors.
//
// The grid and pivoted report live in exp::FigSet (src/exp/figset.cpp,
// id "fig05"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig05", argc, argv);
}
