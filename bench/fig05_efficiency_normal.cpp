// Figure 5: efficiency of the seven schedulers with normally distributed
// task sizes (mean 1000 MFLOPs, variance 9e5) and varying communication
// costs; 1000 tasks, batch size 200, 50 processors.
//
// Paper result: PN gives the best processor efficiency across the sweep;
// efficiency rises as communication gets cheaper (larger 1/cost).

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                               /*generations=*/120);
  if (p.full) p.tasks = 1000;  // the paper uses 1000 tasks for this figure
  p.pn_dynamic_batch = false;  // paper fixes the batch size at 200 here
  bench::print_banner(
      "Figure 5", "efficiency vs 1/mean comm cost (normal task sizes)",
      "PN has the highest efficiency at every communication cost; all "
      "schedulers improve as communication gets cheaper",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  const std::vector<double> inv_costs =
      p.full ? std::vector<double>{0.01, 0.02, 0.03, 0.04, 0.05,
                                   0.06, 0.07, 0.08, 0.09, 0.10}
             : std::vector<double>{0.01, 0.025, 0.05, 0.075, 0.10};

  const auto rows = bench::run_efficiency_sweep(p, spec, inv_costs);

  // Shape check: PN (column 5 = index 5 in row, after the x value) should
  // win at most sweep points.
  const std::size_t pn_col = 5;  // x, EF, LL, RR, ZO, PN, MM, MX
  std::size_t pn_wins = 0;
  for (const auto& row : rows) {
    bool best = true;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (c != pn_col && row[c] > row[pn_col]) best = false;
    }
    if (best) ++pn_wins;
  }
  std::cout << "\nPN best at " << pn_wins << "/" << rows.size()
            << " sweep points.\n";
  return 0;
}
