// Ablation: island-model parallelisation of the PN genetic scheduler
// (reference [2], Chipperfield & Fleming). Sweeps the island count with
// the per-island generation budget held fixed, so K islands spend K×
// the search effort of the paper's single micro-population — the
// question is how much schedule quality that extra (parallelisable)
// effort buys, and what migration contributes on top of isolation.

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "island count for the PN scheduler (PNI)",
      "design-choice study (not in paper): quality improves with islands "
      "at diminishing returns; migration beats isolated islands",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("island", p, spec, /*mean_comm=*/10.0);

  std::vector<exp::Sweep::Value> configs;
  // Single-population PN is the islands=1 reference.
  configs.push_back(
      {"PN (1 island)", [](exp::SweepCell& c) { c.scheduler = "PN"; }});
  for (const std::size_t islands : {2u, 4u, 8u}) {
    configs.push_back({"PNI x" + std::to_string(islands),
                       [islands](exp::SweepCell& c) {
                         c.scheduler = "PNI";
                         c.params.set("islands", islands);
                         c.params.set("migration_interval", 20);
                       }});
  }
  // Migration off (isolated demes) at 4 islands, via a huge migration
  // interval: epochs never complete a migration.
  configs.push_back({"PNI x4 (no migration)", [](exp::SweepCell& c) {
                       c.scheduler = "PNI";
                       c.params.set("islands", 4);
                       c.params.set("migration_interval", 1000000);
                     }});
  sweep.axis("config", std::move(configs));

  bench::run_sweep(sweep, p);
  return 0;
}
