// Ablation: island-model parallelisation of the PN genetic scheduler
// (reference [2], Chipperfield & Fleming). Sweeps the island count with
// the per-island generation budget held fixed, so K islands spend K×
// the search effort of the paper's single micro-population — the
// question is how much schedule quality that extra (parallelisable)
// effort buys, and what migration contributes on top of isolation.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "island count for the PN scheduler (PNI)",
      "design-choice study (not in paper): quality improves with islands "
      "at diminishing returns; migration beats isolated islands",
      p);

  exp::Scenario s;
  s.name = "island";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;

  util::Table table({"config", "makespan", "ci95", "efficiency",
                     "sched_wall_s"});
  std::vector<std::vector<double>> csv_rows;

  // Single-population PN is the islands=1 reference.
  {
    const auto cell =
        exp::run_cell(s, "PN", bench::scheduler_params(p));
    table.add_row("PN (1 island)",
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.sched_wall.mean});
    csv_rows.push_back(
        {1.0, cell.makespan.mean, cell.efficiency.mean, cell.sched_wall.mean});
  }

  for (const std::size_t islands : {2u, 4u, 8u}) {
    auto opts = bench::scheduler_params(p);
    opts.set("islands", islands);
    opts.set("migration_interval", 20);
    const auto cell = exp::run_cell(s, "PNI", opts);
    table.add_row("PNI x" + std::to_string(islands),
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.sched_wall.mean});
    csv_rows.push_back({static_cast<double>(islands), cell.makespan.mean,
                        cell.efficiency.mean, cell.sched_wall.mean});
  }

  // Migration off (isolated demes) at 4 islands, via a huge migration
  // interval: epochs never complete a migration.
  {
    auto opts = bench::scheduler_params(p);
    opts.set("islands", 4);
    opts.set("migration_interval", 1000000);
    const auto cell = exp::run_cell(s, "PNI", opts);
    table.add_row("PNI x4 (no migration)",
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.sched_wall.mean});
    csv_rows.push_back({-4.0, cell.makespan.mean, cell.efficiency.mean,
                        cell.sched_wall.mean});
  }

  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"islands", "makespan", "efficiency", "sched_wall_s"}, csv_rows);
  return 0;
}
