// Microbenchmarks (google-benchmark) for the hot operations of the GA
// scheduler: decode, fitness evaluation, crossover, mutation, rebalance,
// selection, list-scheduling init, and the event engine itself.

#include <benchmark/benchmark.h>

#include "core/fitness.hpp"
#include "core/init.hpp"
#include "core/rebalance.hpp"
#include "exp/runner.hpp"
#include "ga/crossover.hpp"
#include "ga/mutation.hpp"
#include "ga/selection.hpp"
#include "sim/linpack.hpp"

namespace {

using namespace gasched;

struct BatchFixture {
  std::size_t tasks;
  std::size_t procs;
  core::ScheduleCodec codec;
  core::ScheduleEvaluator eval;
  ga::Chromosome chromosome;

  static sim::SystemView view_for(std::size_t procs, util::Rng& rng) {
    sim::SystemView v;
    v.procs.resize(procs);
    for (std::size_t j = 0; j < procs; ++j) {
      v.procs[j].id = static_cast<sim::ProcId>(j);
      v.procs[j].rate = rng.uniform(10.0, 100.0);
      v.procs[j].comm_estimate = rng.uniform(1.0, 50.0);
    }
    return v;
  }

  static std::vector<double> sizes_for(std::size_t tasks, util::Rng& rng) {
    std::vector<double> s(tasks);
    for (auto& v : s) v = rng.uniform(10.0, 1000.0);
    return s;
  }

  explicit BatchFixture(std::size_t tasks_, std::size_t procs_)
      : tasks(tasks_),
        procs(procs_),
        codec(tasks_, procs_),
        eval([&] {
          util::Rng rng(1);
          auto sizes = sizes_for(tasks_, rng);
          auto view = view_for(procs_, rng);
          return core::ScheduleEvaluator(std::move(sizes), view, true);
        }()),
        chromosome([&] {
          util::Rng rng(2);
          return codec.encode(core::list_schedule(eval, 0.5, rng));
        }()) {}
};

void BM_Decode(benchmark::State& state) {
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.codec.decode(f.chromosome));
  }
}
BENCHMARK(BM_Decode)->Arg(50)->Arg(200)->Arg(1000);

void BM_FlatDecode(benchmark::State& state) {
  // The zero-allocation decode path: reused FlatSchedule workspace.
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  core::FlatSchedule flat;
  for (auto _ : state) {
    f.codec.decode_into(f.chromosome, flat);
    benchmark::DoNotOptimize(flat.num_slots());
  }
}
BENCHMARK(BM_FlatDecode)->Arg(50)->Arg(200)->Arg(1000);

void BM_FitnessEval(benchmark::State& state) {
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  const auto queues = f.codec.decode(f.chromosome);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.eval.fitness(queues));
  }
}
BENCHMARK(BM_FitnessEval)->Arg(50)->Arg(200)->Arg(1000);

void BM_FitnessFromChromosome(benchmark::State& state) {
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  const core::ScheduleProblem problem(f.codec, f.eval);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.fitness(f.chromosome));
  }
}
BENCHMARK(BM_FitnessFromChromosome)->Arg(200);

void BM_EvaluateWorkspace(benchmark::State& state) {
  // Combined fitness+objective through the reused workspace — what the
  // GA engine actually runs per dirty individual.
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  const core::ScheduleProblem problem(f.codec, f.eval);
  const auto ws = problem.make_workspace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate(f.chromosome, ws.get()));
  }
}
BENCHMARK(BM_EvaluateWorkspace)->Arg(50)->Arg(200)->Arg(1000);

void BM_LoadDecoded(benchmark::State& state) {
  // Fused decode + full pricing into the per-queue load cache — the
  // rebalance/engine hot path (one chromosome pass, no second sweep).
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  core::FlatSchedule flat;
  core::QueueLoads loads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.eval.load_decoded(f.codec, f.chromosome, flat, loads));
  }
}
BENCHMARK(BM_LoadDecoded)->Arg(50)->Arg(200)->Arg(1000);

void BM_EvaluateSwapDelta(benchmark::State& state) {
  // O(changed-queues) re-pricing after a cross-queue task swap, against
  // the cached loads — the rebalance probe cost, versus a full O(N)
  // pricing per probe before the delta stack.
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  core::FlatSchedule flat;
  core::QueueLoads loads;
  f.codec.decode_into(f.chromosome, flat);
  f.eval.load(flat, loads);
  util::Rng rng(13);
  const std::size_t procs = flat.num_procs();
  for (auto _ : state) {
    const std::size_t qa = rng.index(procs);
    std::size_t qb = rng.index(procs - 1);
    if (qb >= qa) ++qb;
    const auto queue_a = flat.queue(qa);
    const auto queue_b = flat.queue(qb);
    if (queue_a.empty() || queue_b.empty()) continue;
    std::swap(queue_a[rng.index(queue_a.size())],
              queue_b[rng.index(queue_b.size())]);
    benchmark::DoNotOptimize(f.eval.evaluate_swap(flat, loads, qa, qb));
  }
}
BENCHMARK(BM_EvaluateSwapDelta)->Arg(50)->Arg(200)->Arg(1000);

void BM_CompletionTimeKernel(benchmark::State& state) {
  // Canonical left-to-right queue pricing (table-served costs) vs the
  // sum-then-divide bulk form: range(1) selects the kernel so a single
  // compare run shows both. The bulk form is opt-in only (not bitwise
  // equal); this benchmark is where its headroom is measured.
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 8);
  core::FlatSchedule flat;
  f.codec.decode_into(f.chromosome, flat);
  const bool bulk = state.range(1) != 0;
  const std::size_t procs = flat.num_procs();
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t j = 0; j < procs; ++j) {
      acc += bulk ? f.eval.completion_time_bulk(j, flat.queue(j))
                  : f.eval.completion_time(j, flat.queue(j));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CompletionTimeKernel)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

void BM_CycleCrossover(benchmark::State& state) {
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  util::Rng rng(3);
  ga::Chromosome other = f.chromosome;
  rng.shuffle(other);
  const ga::CycleCrossover cx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cx.apply(f.chromosome, other, rng));
  }
}
BENCHMARK(BM_CycleCrossover)->Arg(200)->Arg(1000);

void BM_PmxCrossover(benchmark::State& state) {
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  util::Rng rng(4);
  ga::Chromosome other = f.chromosome;
  rng.shuffle(other);
  const ga::PmxCrossover pmx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmx.apply(f.chromosome, other, rng));
  }
}
BENCHMARK(BM_PmxCrossover)->Arg(200);

void BM_SwapMutation(benchmark::State& state) {
  BatchFixture f(200, 50);
  util::Rng rng(5);
  const ga::SwapMutation mut;
  ga::Chromosome c = f.chromosome;
  for (auto _ : state) {
    mut.apply(c, rng);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_SwapMutation);

void BM_Rebalance(benchmark::State& state) {
  BatchFixture f(200, 50);
  util::Rng rng(6);
  ga::Chromosome c = f.chromosome;
  for (auto _ : state) {
    core::rebalance_once(c, f.codec, f.eval, rng);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_Rebalance);

void BM_RouletteSelect(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<double> fitness(20);
  for (auto& v : fitness) v = rng.uniform01();
  const ga::RouletteSelection sel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.select(fitness, 20, rng));
  }
}
BENCHMARK(BM_RouletteSelect);

void BM_RouletteSelectInto(benchmark::State& state) {
  // The engine's allocation-free selection path (reused output buffer).
  util::Rng rng(7);
  std::vector<double> fitness(20);
  for (auto& v : fitness) v = rng.uniform01();
  const ga::RouletteSelection sel;
  std::vector<std::size_t> out;
  for (auto _ : state) {
    sel.select_into(fitness, 20, rng, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RouletteSelectInto);

void BM_PositionIndexBuild(benchmark::State& state) {
  // Regression micro-check for the dense position index that replaced the
  // per-pair unordered_map: building over a schedule chromosome must stay
  // O(length) with no steady-state allocation.
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  ga::PositionIndex idx;
  for (auto _ : state) {
    idx.build(f.chromosome);
    benchmark::DoNotOptimize(idx.find(f.chromosome.front()));
  }
}
BENCHMARK(BM_PositionIndexBuild)->Arg(200)->Arg(1000);

void BM_GaGeneration(benchmark::State& state) {
  // End-to-end generation throughput on the paper's micro-GA config (the
  // BENCH_eval.json anchor, inline): iterations/sec == generations/sec.
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  const core::ScheduleProblem problem(f.codec, f.eval);
  static const ga::RouletteSelection sel;
  static const ga::CycleCrossover cx;
  static const ga::SwapMutation mut;
  util::Rng init_rng(11);
  const auto init =
      core::initial_population(f.codec, f.eval, 20, 0.5, init_rng);
  util::Rng ga_rng(12);
  const std::size_t chunk = 32;
  ga::GaConfig cfg;
  cfg.population = 20;
  cfg.max_generations = chunk;
  cfg.improvement_passes = 1;
  const ga::GaEngine engine(cfg, sel, cx, mut);
  while (state.KeepRunningBatch(static_cast<benchmark::IterationCount>(chunk))) {
    auto pop = init;
    benchmark::DoNotOptimize(engine.run(problem, std::move(pop), ga_rng));
  }
}
BENCHMARK(BM_GaGeneration)->Arg(200);

void BM_ListScheduleInit(benchmark::State& state) {
  BatchFixture f(static_cast<std::size_t>(state.range(0)), 50);
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::list_schedule(f.eval, 0.5, rng));
  }
}
BENCHMARK(BM_ListScheduleInit)->Arg(200);

void BM_FullSimulationEF(benchmark::State& state) {
  exp::Scenario s;
  s.cluster = exp::paper_cluster(10.0, 20);
  s.workload.dist = "uniform";
  s.workload.param_a = 10.0;
  s.workload.param_b = 1000.0;
  s.workload.count = static_cast<std::size_t>(state.range(0));
  s.seed = 9;
  exp::SchedulerParams opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        exp::run_one(s, "EF", opts, 0));
  }
}
BENCHMARK(BM_FullSimulationEF)->Arg(200)->Arg(1000);

void BM_Linpack(benchmark::State& state) {
  util::Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::linpack_benchmark(static_cast<std::size_t>(state.range(0)),
                               rng));
  }
}
BENCHMARK(BM_Linpack)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
