// Serving-runtime perf probe: the ledger anchor behind the
// `perf_runtime` section of BENCH_eval.json.
//
// Drives rt::Runtime::serve() — the lock-free SPSC dispatch plane —
// through a policy × arrival-regime matrix:
//
//   policies   rr, least_loaded, fastest   (immediate-mode RR / LL / EF)
//   regimes    constant λ, ramp (0 → λ over half the window), flash
//              crowd (10× λ over the middle fifth)
//
// Each cell reports p50/p99/p999 scheduling latency (arrival-due → ring
// push), queueing latency (ring push → execution start), sojourn p99,
// throughput, shed count — and allocs_per_dispatch, the proof that the
// steady-state dispatch path performs zero heap allocations (CI gates it
// at 0.00; the few setup allocations inside serve() amortise to < 0.005
// over thousands of dispatches). A saturation cell per policy (constant
// λ × 50, shedding) measures max sustainable throughput: completions per
// second when the arrival source always has work to offer.
//
// Plain binary (no Google Benchmark): it owns operator new for the
// allocation counting, and emits one machine-readable JSON line.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "rt/runtime.hpp"
#include "sched/heuristics.hpp"
#include "workload/generator.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};

}  // namespace

// Counting hook: every heap allocation in the process bumps the counter.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gasched;

struct Options {
  double duration = 2.0;    ///< arrival window per cell (seconds)
  double rate = 20000.0;    ///< base λ (tasks/s), well under capacity
  std::size_t workers = 4;
  double work_scale = 0.002;  ///< 1-MFLOP nominal task ≈ 2000 real flops
  std::string label = "current";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](double& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_runtime: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      out = std::strtod(argv[++i], nullptr);
    };
    if (std::strcmp(argv[i], "--duration") == 0) {
      num(o.duration);
    } else if (std::strcmp(argv[i], "--rate") == 0) {
      num(o.rate);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      o.workers = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--work-scale") == 0) {
      num(o.work_scale);
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      o.label = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_runtime [--duration S] [--rate L] "
                   "[--workers N] [--work-scale F] [--label L]\n");
      std::exit(2);
    }
  }
  return o;
}

/// One serve window with the allocation counter differenced around it.
struct Cell {
  rt::ServeResult result;
  double allocs_per_dispatch = 0.0;
};

Cell run_cell(rt::Runtime& runtime, const rt::ServeConfig& cfg,
              const workload::SizeDistribution& sizes) {
  Cell cell;
  const unsigned long long a0 = g_allocs.load(std::memory_order_relaxed);
  cell.result = runtime.serve(cfg, sizes);
  const unsigned long long a1 = g_allocs.load(std::memory_order_relaxed);
  cell.allocs_per_dispatch =
      cell.result.completed > 0
          ? static_cast<double>(a1 - a0) /
                static_cast<double>(cell.result.completed)
          : 0.0;
  return cell;
}

void print_cell(const char* policy, const char* arrival, const Cell& c,
                bool first) {
  const rt::ServeResult& r = c.result;
  std::printf(
      "%s{\"policy\":\"%s\",\"arrival\":\"%s\",\"offered\":%llu,"
      "\"admitted\":%llu,\"shed\":%llu,\"completed\":%llu,"
      "\"throughput_per_sec\":%.1f,"
      "\"sched_p50_us\":%.1f,\"sched_p99_us\":%.1f,\"sched_p999_us\":%.1f,"
      "\"queue_p50_us\":%.1f,\"queue_p99_us\":%.1f,\"queue_p999_us\":%.1f,"
      "\"sojourn_p99_us\":%.1f,\"allocs_per_dispatch\":%.2f}",
      first ? "" : ",", policy, arrival,
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.admitted),
      static_cast<unsigned long long>(r.shed),
      static_cast<unsigned long long>(r.completed), r.throughput_per_sec,
      r.sched_latency.p50 * 1e6, r.sched_latency.p99 * 1e6,
      r.sched_latency.p999 * 1e6, r.queue_latency.p50 * 1e6,
      r.queue_latency.p99 * 1e6, r.queue_latency.p999 * 1e6,
      r.sojourn.p99 * 1e6, c.allocs_per_dispatch);
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  const workload::UniformSizes sizes(0.5, 1.5);  // nominal MFLOPs per task

  const char* kPolicies[] = {"rr", "least_loaded", "fastest"};
  const char* kRegimes[] = {"constant", "ramp", "flash"};

  std::printf(
      "{\"label\":\"%s\",\"workers\":%zu,\"duration\":%.2f,\"rate\":%.0f,"
      "\"work_scale\":%g,\"cells\":[",
      o.label.c_str(), o.workers, o.duration, o.rate, o.work_scale);

  std::vector<double> max_sustainable;
  bool first = true;
  for (const char* policy : kPolicies) {
    rt::RuntimeConfig rcfg;
    rcfg.worker_speeds.assign(o.workers, 1.0);
    rcfg.work_scale = o.work_scale;
    rcfg.seed = 42;
    // The batch-mode policy is unused in serve mode but must be non-null.
    rt::Runtime runtime(rcfg, sched::make_rr());

    for (const char* regime : kRegimes) {
      rt::ServeConfig scfg;
      scfg.duration_s = o.duration;
      scfg.rate = o.rate;
      scfg.policy = policy;
      scfg.arrival = regime;
      if (std::strcmp(regime, "ramp") == 0) {
        scfg.arrival_params.set("arrival_start_factor", 0.0);
        scfg.arrival_params.set("arrival_ramp", 0.5 * o.duration);
      } else if (std::strcmp(regime, "flash") == 0) {
        scfg.arrival_params.set("arrival_flash_mult", 10.0);
        scfg.arrival_params.set("arrival_flash_start", 0.4 * o.duration);
        scfg.arrival_params.set("arrival_flash_width", 0.2 * o.duration);
      }
      const Cell cell = run_cell(runtime, scfg, sizes);
      print_cell(policy, regime, cell, first);
      first = false;
    }

    // Saturation: constant arrivals far past capacity, shedding. The
    // completion rate under a permanently full admission queue is the
    // max sustainable throughput of this policy's dispatch path.
    rt::ServeConfig sat;
    sat.duration_s = o.duration;
    sat.rate = o.rate * 50.0;
    sat.policy = policy;
    const Cell cell = run_cell(runtime, sat, sizes);
    print_cell(policy, "saturation", cell, false);
    max_sustainable.push_back(cell.result.throughput_per_sec);
  }

  std::printf("],\"max_sustainable\":[");
  for (std::size_t i = 0; i < max_sustainable.size(); ++i) {
    std::printf("%s{\"policy\":\"%s\",\"throughput_per_sec\":%.1f}",
                i == 0 ? "" : ",", kPolicies[i], max_sustainable[i]);
  }
  std::printf("]}\n");
  return 0;
}
