// Extension: time-varying processor availability. §3 designs for
// processors that "are not dedicated and may have other tasks that
// partially use their resources", yet the paper's §4.2 experiments fix
// every execution rate. This bench runs the schedulers under the three
// non-dedicated availability models the simulator ships — sinusoidal
// (periodic background load), random-walk (drifting load), and two-state
// (bursty on/off load) — plus the paper's fixed setup as reference, and
// additionally under drifting per-link communication costs.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

namespace {

struct AvailCase {
  std::string label;
  sim::AvailabilityKind kind;
  bool drifting_comm;
};

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Extension", "variable resource availability (SS3's setting)",
      "literature-consistent hypothesis: every scheduler loses efficiency "
      "when processors are non-dedicated; schedulers that track observed "
      "rates (PN, and EF through pending loads) degrade most gracefully, "
      "RR degrades worst",
      p);

  const std::vector<AvailCase> cases{
      {"fixed", sim::AvailabilityKind::kFixed, false},
      {"sinusoidal", sim::AvailabilityKind::kSinusoidal, false},
      {"random_walk", sim::AvailabilityKind::kRandomWalk, false},
      {"two_state", sim::AvailabilityKind::kTwoState, false},
      {"fixed+drift_comm", sim::AvailabilityKind::kFixed, true},
  };
  const std::vector<std::string> kinds{
      "PN", "EF",
      "MM", "RR"};

  const auto opts = bench::scheduler_params(p);
  util::Table table(
      {"availability", "scheduler", "makespan", "ci95", "efficiency"});
  std::vector<std::vector<double>> csv_rows;
  double pn_fixed = 0.0, pn_twostate = 0.0;
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    exp::Scenario s;
    s.name = "availability-" + cases[ci].label;
    s.cluster = exp::paper_cluster(10.0, p.procs);
    s.cluster.availability = cases[ci].kind;
    s.cluster.drifting_comm = cases[ci].drifting_comm;
    s.workload.dist = "normal";
    s.workload.param_a = 1000.0;
    s.workload.param_b = 9e5;
    s.workload.count = p.tasks;
    s.seed = p.seed;
    s.replications = p.reps;

    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
      const auto cell = exp::run_cell(s, kinds[ki], opts);
      table.add_row({cases[ci].label, cell.scheduler,
                     util::fmt(cell.makespan.mean),
                     util::fmt(cell.makespan.ci95),
                     util::fmt(cell.efficiency.mean)});
      csv_rows.push_back({static_cast<double>(ci), static_cast<double>(ki),
                          cell.makespan.mean, cell.efficiency.mean});
      if (kinds[ki] == "PN") {
        if (cases[ci].label == "fixed") pn_fixed = cell.makespan.mean;
        if (cases[ci].label == "two_state") pn_twostate = cell.makespan.mean;
      }
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"availability_index", "scheduler_index", "makespan", "efficiency"},
      csv_rows);
  if (pn_fixed > 0.0) {
    std::cout << "\nPN makespan two_state/fixed = "
              << util::fmt(pn_twostate / pn_fixed, 3)
              << "x (> 1: non-dedicated processors cost real time).\n";
  }
  return 0;
}
