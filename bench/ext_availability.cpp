// Extension: time-varying processor availability. §3 designs for
// processors that "are not dedicated and may have other tasks that
// partially use their resources", yet the paper's §4.2 experiments fix
// every execution rate. This bench runs the schedulers under the three
// non-dedicated availability models the simulator ships — sinusoidal
// (periodic background load), random-walk (drifting load), and two-state
// (bursty on/off load) — plus the paper's fixed setup as reference, and
// additionally under drifting per-link communication costs.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Extension", "variable resource availability (SS3's setting)",
      "literature-consistent hypothesis: every scheduler loses efficiency "
      "when processors are non-dedicated; schedulers that track observed "
      "rates (PN, and EF through pending loads) degrade most gracefully, "
      "RR degrades worst",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("availability", p, spec, /*mean_comm=*/10.0);

  const std::pair<const char*, sim::AvailabilityKind> models[] = {
      {"fixed", sim::AvailabilityKind::kFixed},
      {"sinusoidal", sim::AvailabilityKind::kSinusoidal},
      {"random_walk", sim::AvailabilityKind::kRandomWalk},
      {"two_state", sim::AvailabilityKind::kTwoState},
  };
  std::vector<exp::Sweep::Value> cases;
  for (const auto& [label, kind] : models) {
    const auto k = kind;
    cases.push_back({label, [k](exp::SweepCell& c) {
                       c.scenario.cluster.availability = k;
                     }});
  }
  cases.push_back({"fixed+drift_comm", [](exp::SweepCell& c) {
                     c.scenario.cluster.availability =
                         sim::AvailabilityKind::kFixed;
                     c.scenario.cluster.drifting_comm = true;
                   }});
  sweep.axis("availability", std::move(cases));
  sweep.schedulers({"PN", "EF", "MM", "RR"});
  const auto result = bench::run_sweep(sweep, p);

  double pn_fixed = 0.0, pn_twostate = 0.0;
  for (const auto& row : result.rows) {
    if (row.scheduler != "PN") continue;
    const auto& label = row.coords.front().second;
    if (label == "fixed") pn_fixed = row.cell.makespan.mean;
    if (label == "two_state") pn_twostate = row.cell.makespan.mean;
  }
  if (pn_fixed > 0.0) {
    std::cout << "\nPN makespan two_state/fixed = "
              << util::fmt(pn_twostate / pn_fixed, 3)
              << "x (> 1: non-dedicated processors cost real time).\n";
  }
  return 0;
}
