// Microbenchmarks (google-benchmark) for the local-search and bounds hot
// paths: LoadTracker move pricing and application, one SA temperature
// sweep, the makespan lower bound at scale, and the exact
// branch-and-bound solver on tiny instances.

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/fitness.hpp"
#include "core/init.hpp"
#include "meta/assignment.hpp"
#include "metrics/bounds.hpp"

namespace {

using namespace gasched;

struct MetaFixture {
  std::size_t tasks;
  std::size_t procs;
  core::ScheduleEvaluator eval;
  core::ProcQueues initial;

  static sim::SystemView view_for(std::size_t procs, util::Rng& rng) {
    sim::SystemView v;
    v.procs.resize(procs);
    for (std::size_t j = 0; j < procs; ++j) {
      v.procs[j].id = static_cast<sim::ProcId>(j);
      v.procs[j].rate = rng.uniform(10.0, 100.0);
      v.procs[j].comm_estimate = rng.uniform(1.0, 20.0);
      v.procs[j].comm_observations = 1;
    }
    return v;
  }

  MetaFixture(std::size_t tasks_, std::size_t procs_)
      : tasks(tasks_),
        procs(procs_),
        eval([&] {
          util::Rng rng(1);
          std::vector<double> sizes(tasks_);
          for (auto& s : sizes) s = rng.uniform(10.0, 1000.0);
          auto view = view_for(procs_, rng);
          return core::ScheduleEvaluator(std::move(sizes), view, true);
        }()),
        initial([&] {
          util::Rng rng(2);
          return core::list_schedule(eval, 0.5, rng);
        }()) {}
};

void BM_LoadTrackerResetFlat(benchmark::State& state) {
  // The restart path of the local searchers: re-initialise an existing
  // tracker from a flat schedule, reusing its buffers (no allocation).
  const MetaFixture f(static_cast<std::size_t>(state.range(0)), 50);
  core::FlatSchedule flat;
  flat.assign(f.initial);
  meta::LoadTracker t(f.eval, flat);
  for (auto _ : state) {
    t.reset(f.eval, flat);
    benchmark::DoNotOptimize(t.makespan());
  }
}
BENCHMARK(BM_LoadTrackerResetFlat)->Arg(200)->Arg(1000);

void BM_LoadTrackerDelta(benchmark::State& state) {
  const MetaFixture f(static_cast<std::size_t>(state.range(0)), 50);
  meta::LoadTracker t(f.eval, f.initial);
  util::Rng rng(3);
  for (auto _ : state) {
    const meta::Move m = t.random_move(rng);
    benchmark::DoNotOptimize(t.makespan_delta(m));
  }
}
BENCHMARK(BM_LoadTrackerDelta)->Arg(200)->Arg(1000);

void BM_LoadTrackerApply(benchmark::State& state) {
  const MetaFixture f(static_cast<std::size_t>(state.range(0)), 50);
  meta::LoadTracker t(f.eval, f.initial);
  util::Rng rng(4);
  for (auto _ : state) {
    t.apply(t.random_move(rng));
    benchmark::DoNotOptimize(t.completion(0));
  }
}
BENCHMARK(BM_LoadTrackerApply)->Arg(200)->Arg(1000);

void BM_LoadTrackerMakespanQuery(benchmark::State& state) {
  // makespan()/heaviest_proc() are served from the maintained top-2 state
  // (O(1)); interleave applies so the bench exercises the maintenance,
  // not a cached scalar read.
  const MetaFixture f(static_cast<std::size_t>(state.range(0)), 50);
  meta::LoadTracker t(f.eval, f.initial);
  util::Rng rng(9);
  for (auto _ : state) {
    t.apply(t.random_move(rng));
    benchmark::DoNotOptimize(t.makespan());
    benchmark::DoNotOptimize(t.heaviest_proc());
  }
}
BENCHMARK(BM_LoadTrackerMakespanQuery)->Arg(200)->Arg(1000);

void BM_SaSweep(benchmark::State& state) {
  // One annealing sweep: N accept/reject decisions at a fixed temperature.
  const MetaFixture f(static_cast<std::size_t>(state.range(0)), 50);
  util::Rng rng(5);
  for (auto _ : state) {
    meta::LoadTracker t(f.eval, f.initial);
    const double temperature = 10.0;
    for (std::size_t i = 0; i < f.tasks; ++i) {
      const meta::Move m = t.random_move(rng);
      const double d = t.makespan_delta(m);
      if (d <= 0.0 || rng.uniform01() < std::exp(-d / temperature)) {
        t.apply(m);
      }
    }
    benchmark::DoNotOptimize(t.makespan());
  }
}
BENCHMARK(BM_SaSweep)->Arg(200);

void BM_LowerBound(benchmark::State& state) {
  util::Rng rng(6);
  metrics::BoundInstance inst;
  const auto N = static_cast<std::size_t>(state.range(0));
  for (std::size_t j = 0; j < 50; ++j) {
    inst.rates.push_back(rng.uniform(10.0, 100.0));
    inst.comm_costs.push_back(rng.uniform(0.1, 2.0));
  }
  for (std::size_t i = 0; i < N; ++i) {
    inst.task_sizes.push_back(rng.uniform(10.0, 1000.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::makespan_lower_bound(inst));
  }
}
BENCHMARK(BM_LowerBound)->Arg(1000)->Arg(10000);

void BM_ExactSolver(benchmark::State& state) {
  util::Rng rng(7);
  metrics::BoundInstance inst;
  for (std::size_t j = 0; j < 3; ++j) {
    inst.rates.push_back(rng.uniform(10.0, 60.0));
    inst.comm_costs.push_back(rng.uniform(0.1, 1.5));
  }
  const auto N = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < N; ++i) {
    inst.task_sizes.push_back(rng.uniform(20.0, 400.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::optimal_makespan_exact(inst));
  }
}
BENCHMARK(BM_ExactSolver)->Arg(8)->Arg(10)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
