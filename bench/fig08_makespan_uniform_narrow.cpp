// Figure 8: makespan with task sizes uniformly distributed 10–100 MFLOPs
// (smallest:largest ratio only 1:10).
//
// The grid and shape check live in exp::FigSet (src/exp/figset.cpp,
// id "fig08"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig08", argc, argv);
}
