// Figure 8: makespan with task sizes uniformly distributed 10–100 MFLOPs
// (smallest:largest ratio only 1:10).
//
// Paper result: with such a narrow size range, most schedulers produce
// similarly efficient schedules — the bars are close together.

#include <iostream>

#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                                     /*generations=*/120);
  bench::print_banner(
      "Figure 8", "makespan bars (uniform 10-100, ratio 1:10)",
      "schedulers perform similarly: the narrow task-size range flattens "
      "the differences",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 100.0;

  const auto means = bench::run_makespan_bars(p, spec, /*mean_comm=*/5.0);
  const auto s = util::summarize(means);
  std::cout << "\nSpread across schedulers: (max-min)/mean = "
            << util::fmt((s.max - s.min) / s.mean, 4)
            << " (small spread expected)\n";
  return 0;
}
