// Ablation: genetic diversity of the micro GA. §4.2 adopts a population
// of 20 ("micro GA", ref [2]) to keep the scheduler fast; the cost is
// genetic diversity, which small populations burn through quickly. This
// bench tracks the normalised genotype diversity (ga/stats.hpp) and the
// best makespan over generations for several population sizes on one
// scheduling batch, showing what the micro-GA choice trades away and how
// the re-balancing heuristic partially compensates.

#include <iostream>

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

namespace {

struct Cell {
  double d0 = 0.0;     // initial diversity
  double dmid = 0.0;   // diversity at mid run
  double dend = 0.0;   // final diversity
  double makespan = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/6,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "population size vs genetic diversity (micro GA, SS4.2)",
      "design-choice study (not in paper): small populations converge "
      "fast but lose diversity; population 20 (the paper's pick) retains "
      "near-large-population quality at a fraction of the cost",
      p);

  const std::vector<std::size_t> pops{6, 10, 20, 40, 80};

  std::vector<std::vector<Cell>> results(pops.size(),
                                         std::vector<Cell>(p.reps));
  util::global_pool().parallel_for(0, pops.size() * p.reps, [&](std::size_t w) {
    const std::size_t pi = w / p.reps;
    const std::size_t rep = w % p.reps;
    const util::Rng base(p.seed);
    util::Rng cluster_rng = base.split(2 * rep);
    util::Rng task_rng = base.split(2 * rep + 1);
    const sim::Cluster cluster =
        sim::build_cluster(exp::paper_cluster(20.0, p.procs), cluster_rng);
    sim::SystemView view;
    view.procs.resize(cluster.size());
    for (std::size_t j = 0; j < cluster.size(); ++j) {
      view.procs[j].id = static_cast<sim::ProcId>(j);
      view.procs[j].rate = cluster.processors[j].base_rate;
      view.procs[j].comm_estimate =
          cluster.comm->true_mean(static_cast<sim::ProcId>(j));
    }
    workload::NormalSizes dist(1000.0, 9e5);
    std::vector<double> sizes(p.tasks);
    for (auto& s : sizes) s = dist.sample(task_rng);
    const core::ScheduleCodec codec(p.tasks, cluster.size());
    const core::ScheduleEvaluator eval(sizes, view, true);
    const core::ScheduleProblem problem(codec, eval);

    ga::GaConfig cfg;
    cfg.population = pops[pi];
    cfg.max_generations = p.generations;
    cfg.record_stats = true;
    static const ga::RouletteSelection sel;
    static const ga::CycleCrossover cx;
    static const ga::SwapMutation mut;
    const ga::GaEngine engine(cfg, sel, cx, mut);
    util::Rng ga_rng = base.split(1000 + 100 * rep + pi);
    auto init =
        core::initial_population(codec, eval, cfg.population, 0.5, ga_rng);
    const auto r = engine.run(problem, std::move(init), ga_rng);

    Cell c;
    c.makespan = r.best_objective;
    if (!r.stats_history.empty()) {
      c.d0 = r.stats_history.front().diversity;
      c.dmid = r.stats_history[r.stats_history.size() / 2].diversity;
      c.dend = r.stats_history.back().diversity;
    }
    results[pi][rep] = c;
  });

  util::Table table({"population", "diversity_t0", "diversity_mid",
                     "diversity_end", "final_makespan"});
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t pi = 0; pi < pops.size(); ++pi) {
    Cell mean;
    for (const auto& c : results[pi]) {
      mean.d0 += c.d0;
      mean.dmid += c.dmid;
      mean.dend += c.dend;
      mean.makespan += c.makespan;
    }
    const double reps = static_cast<double>(p.reps);
    table.add_row(std::to_string(pops[pi]),
                  {mean.d0 / reps, mean.dmid / reps, mean.dend / reps,
                   mean.makespan / reps});
    csv_rows.push_back({static_cast<double>(pops[pi]), mean.d0 / reps,
                        mean.dmid / reps, mean.dend / reps,
                        mean.makespan / reps});
  }
  table.print(std::cout);
  bench::maybe_write_csv(p,
                         {"population", "diversity_t0", "diversity_mid",
                          "diversity_end", "final_makespan"},
                         csv_rows);
  return 0;
}
