// Ablation: genetic diversity of the micro GA. §4.2 adopts a population
// of 20 ("micro GA", ref [2]) to keep the scheduler fast; the cost is
// genetic diversity, which small populations burn through quickly. This
// bench tracks the normalised genotype diversity (ga/stats.hpp) and the
// best makespan over generations for several population sizes on one
// scheduling batch, showing what the micro-GA choice trades away and how
// the re-balancing heuristic partially compensates.

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/6,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "population size vs genetic diversity (micro GA, SS4.2)",
      "design-choice study (not in paper): small populations converge "
      "fast but lose diversity; population 20 (the paper's pick) retains "
      "near-large-population quality at a fraction of the cost",
      p);

  exp::WorkloadSpec spec;  // GA-batch study: sizes drawn directly below
  exp::Sweep sweep =
      bench::make_sweep("abl-diversity", p, spec, /*mean_comm=*/20.0);
  sweep.axis("population", {6, 10, 20, 40, 80}, {});
  sweep.extra_columns({"diversity_t0", "diversity_mid", "diversity_end",
                       "final_makespan"});
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const std::size_t pi = cell.index;
    const auto pop = static_cast<std::size_t>(
        cell.coord_value("population"));
    std::vector<double> d0(p.reps), dmid(p.reps), dend(p.reps),
        finals(p.reps);
    auto body = [&](std::size_t rep) {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster = sim::build_cluster(
          exp::paper_cluster(20.0, p.procs), cluster_rng);
      sim::SystemView view;
      view.procs.resize(cluster.size());
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = cluster.processors[j].base_rate;
        view.procs[j].comm_estimate =
            cluster.comm->true_mean(static_cast<sim::ProcId>(j));
      }
      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);
      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, true);
      const core::ScheduleProblem problem(codec, eval);

      ga::GaConfig cfg;
      cfg.population = pop;
      cfg.max_generations = p.generations;
      cfg.record_stats = true;
      static const ga::RouletteSelection sel;
      static const ga::CycleCrossover cx;
      static const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, cx, mut);
      util::Rng ga_rng = base.split(1000 + 100 * rep + pi);
      auto init = core::initial_population(codec, eval, cfg.population, 0.5,
                                           ga_rng);
      const auto r = engine.run(problem, std::move(init), ga_rng);
      finals[rep] = r.best_objective;
      if (!r.stats_history.empty()) {
        d0[rep] = r.stats_history.front().diversity;
        dmid[rep] = r.stats_history[r.stats_history.size() / 2].diversity;
        dend[rep] = r.stats_history.back().diversity;
      }
    };
    if (parallel && p.reps > 1) {
      util::global_pool().parallel_for(0, p.reps, body);
    } else {
      for (std::size_t rep = 0; rep < p.reps; ++rep) body(rep);
    }
    exp::CellOutcome out;
    out.extras = {{"diversity_t0", util::summarize(d0).mean},
                  {"diversity_mid", util::summarize(dmid).mean},
                  {"diversity_end", util::summarize(dend).mean},
                  {"final_makespan", util::summarize(finals).mean}};
    return out;
  });

  bench::run_sweep(sweep, p);
  return 0;
}
