// Ablation: crossover operator choice. The paper uses cycle crossover
// (following Zomaya & Teh); this bench compares it with PMX, order, and
// position-based crossover on the same batch-scheduling problem.

#include <memory>

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/8,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "crossover operators on one scheduling batch",
      "design-choice study (not in paper): cycle crossover is the paper's "
      "choice; alternatives should be in the same quality band",
      p);

  const std::vector<std::pair<std::string, std::shared_ptr<ga::CrossoverOp>>>
      ops{
          {"cycle", std::make_shared<ga::CycleCrossover>()},
          {"pmx", std::make_shared<ga::PmxCrossover>()},
          {"order", std::make_shared<ga::OrderCrossover>()},
          {"position", std::make_shared<ga::PositionCrossover>()},
      };

  exp::WorkloadSpec spec;  // GA-batch study: sizes drawn directly below
  exp::Sweep sweep =
      bench::make_sweep("abl-crossover", p, spec, /*mean_comm=*/20.0);
  std::vector<exp::Sweep::Value> values;
  for (const auto& [label, op] : ops) values.push_back({label, {}});
  sweep.axis("crossover", std::move(values));
  sweep.extra_columns({"final_makespan", "reduction_vs_init"});
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const std::size_t oi = cell.index;
    std::vector<double> finals(p.reps), reductions(p.reps);
    auto body = [&](std::size_t rep) {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster = sim::build_cluster(
          exp::paper_cluster(20.0, p.procs), cluster_rng);
      sim::SystemView view;
      view.procs.resize(cluster.size());
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = cluster.processors[j].base_rate;
        view.procs[j].comm_estimate =
            cluster.comm->true_mean(static_cast<sim::ProcId>(j));
      }
      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);
      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, true);
      const core::ScheduleProblem problem(codec, eval);

      ga::GaConfig cfg;
      cfg.population = p.population;
      cfg.max_generations = p.generations;
      cfg.record_history = true;
      const ga::RouletteSelection sel;
      const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, *ops[oi].second, mut);
      util::Rng ga_rng = base.split(1000 + 10 * rep + oi);
      auto init = core::initial_population(codec, eval, cfg.population, 0.5,
                                           ga_rng);
      const auto r = engine.run(problem, std::move(init), ga_rng);
      finals[rep] = r.best_objective;
      reductions[rep] =
          1.0 - r.best_objective / r.objective_history.front();
    };
    if (parallel && p.reps > 1) {
      util::global_pool().parallel_for(0, p.reps, body);
    } else {
      for (std::size_t rep = 0; rep < p.reps; ++rep) body(rep);
    }
    exp::CellOutcome out;
    out.extras = {{"final_makespan", util::summarize(finals).mean},
                  {"reduction_vs_init", util::summarize(reductions).mean}};
    return out;
  });

  bench::run_sweep(sweep, p);
  return 0;
}
