// Ablation: crossover operator choice. The paper uses cycle crossover
// (following Zomaya & Teh); this bench compares it with PMX, order, and
// position-based crossover on the same batch-scheduling problem.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/8,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "crossover operators on one scheduling batch",
      "design-choice study (not in paper): cycle crossover is the paper's "
      "choice; alternatives should be in the same quality band",
      p);

  std::vector<std::pair<std::string, std::shared_ptr<ga::CrossoverOp>>> ops{
      {"cycle", std::make_shared<ga::CycleCrossover>()},
      {"pmx", std::make_shared<ga::PmxCrossover>()},
      {"order", std::make_shared<ga::OrderCrossover>()},
      {"position", std::make_shared<ga::PositionCrossover>()},
  };

  util::Table table({"crossover", "final_makespan", "reduction_vs_init"});
  std::vector<std::vector<double>> csv_rows;
  // results[oi][rep] = {final makespan, reduction}; filled in parallel.
  std::vector<std::vector<std::pair<double, double>>> results(
      ops.size(), std::vector<std::pair<double, double>>(p.reps));
  util::global_pool().parallel_for(0, ops.size() * p.reps, [&](std::size_t w) {
    const std::size_t oi = w / p.reps;
    const std::size_t rep = w % p.reps;
    {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster =
          sim::build_cluster(exp::paper_cluster(20.0, p.procs), cluster_rng);
      sim::SystemView view;
      view.procs.resize(cluster.size());
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = cluster.processors[j].base_rate;
        view.procs[j].comm_estimate =
            cluster.comm->true_mean(static_cast<sim::ProcId>(j));
      }
      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);
      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, true);
      const core::ScheduleProblem problem(codec, eval);

      ga::GaConfig cfg;
      cfg.population = p.population;
      cfg.max_generations = p.generations;
      cfg.record_history = true;
      const ga::RouletteSelection sel;
      const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, *ops[oi].second, mut);
      util::Rng ga_rng = base.split(1000 + 10 * rep + oi);
      auto init =
          core::initial_population(codec, eval, cfg.population, 0.5, ga_rng);
      const auto r = engine.run(problem, std::move(init), ga_rng);
      results[oi][rep] = {
          r.best_objective,
          1.0 - r.best_objective / r.objective_history.front()};
    }
  });
  for (std::size_t oi = 0; oi < ops.size(); ++oi) {
    double ms_sum = 0.0, red_sum = 0.0;
    for (const auto& [ms, red] : results[oi]) {
      ms_sum += ms;
      red_sum += red;
    }
    const double reps = static_cast<double>(p.reps);
    table.add_row(ops[oi].first, {ms_sum / reps, red_sum / reps});
    csv_rows.push_back(
        {static_cast<double>(oi), ms_sum / reps, red_sum / reps});
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"op_index", "final_makespan", "reduction_vs_init"}, csv_rows);
  return 0;
}
