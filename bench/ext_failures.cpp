// Extension: non-dedicated processors that fail and recover. The paper's
// §3 design keeps all task queues at the scheduler so that "when a machine
// is switched off" its work can be reassigned; this bench exercises that
// path end-to-end and compares scheduler robustness.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "processor failures and recoveries",
      "paper-consistent hypothesis: all schedulers still complete every "
      "task (work is requeued at the scheduler); makespans stretch; "
      "comm-aware batch scheduling retains its lead",
      p);

  exp::Scenario s;
  s.name = "failures";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;

  sim::FailureConfig fcfg;
  fcfg.mean_uptime = 400.0;
  fcfg.mean_downtime = 100.0;
  fcfg.horizon = 1e6;
  fcfg.failing_fraction = 0.5;  // half the machines are flaky

  const auto opts = bench::scheduler_params(p);
  util::Table table({"scheduler", "makespan(no fail)", "makespan(fail)",
                     "slowdown", "requeued"});
  std::vector<std::vector<double>> csv_rows;
  for (const auto kind : exp::all_schedulers()) {
    exp::Scenario healthy = s;
    const auto base_cell = exp::run_cell(healthy, kind, opts);
    exp::Scenario flaky = s;
    flaky.failures = fcfg;
    const auto runs = exp::run_replications(flaky, kind, opts);
    double ms = 0.0, requeued = 0.0;
    for (const auto& r : runs) {
      ms += r.makespan;
      requeued += static_cast<double>(r.tasks_requeued);
      if (r.tasks_completed != s.workload.count) {
        std::cerr << "ERROR: task lost under failures!\n";
        return 1;
      }
    }
    ms /= static_cast<double>(runs.size());
    requeued /= static_cast<double>(runs.size());
    table.add_row(kind,
                  {base_cell.makespan.mean, ms, ms / base_cell.makespan.mean,
                   requeued});
    csv_rows.push_back({static_cast<double>(csv_rows.size()),
                        base_cell.makespan.mean, ms, requeued});
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"scheduler_index", "makespan_nofail", "makespan_fail", "requeued"},
      csv_rows);
  std::cout << "\nNo tasks were lost: scheduler-side queues make failures "
               "survivable, as §3 argues.\n";
  return 0;
}
