// Extension: non-dedicated processors that fail and recover. The paper's
// §3 design keeps all task queues at the scheduler so that "when a machine
// is switched off" its work can be reassigned; this bench exercises that
// path end-to-end and compares scheduler robustness.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "processor failures and recoveries",
      "paper-consistent hypothesis: all schedulers still complete every "
      "task (work is requeued at the scheduler); makespans stretch; "
      "comm-aware batch scheduling retains its lead",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  sim::FailureConfig fcfg;
  fcfg.mean_uptime = 400.0;
  fcfg.mean_downtime = 100.0;
  fcfg.horizon = 1e6;
  fcfg.failing_fraction = 0.5;  // half the machines are flaky

  exp::Sweep sweep =
      bench::make_sweep("failures", p, spec, /*mean_comm=*/10.0);
  sweep.axis("cluster",
             {exp::Sweep::Value{"healthy", {}},
              exp::Sweep::Value{"flaky", [fcfg](exp::SweepCell& c) {
                                  c.scenario.failures = fcfg;
                                }}});
  sweep.schedulers(exp::all_schedulers());
  const auto result = bench::run_sweep(sweep, p);

  // Pair healthy/flaky rows per scheduler for the slowdown summary and
  // the no-task-lost invariant.
  const auto healthy = result.where("cluster", "healthy");
  const auto flaky = result.where("cluster", "flaky");
  bool lost = false;
  util::Table slowdown({"scheduler", "slowdown", "requeued"});
  for (std::size_t i = 0; i < healthy.size() && i < flaky.size(); ++i) {
    slowdown.add_row(
        flaky[i]->scheduler,
        {flaky[i]->cell.makespan.mean / healthy[i]->cell.makespan.mean,
         flaky[i]->cell.requeued.mean});
    if (flaky[i]->cell.completed.min <
        static_cast<double>(p.tasks)) {
      std::cerr << "ERROR: task lost under failures (" << flaky[i]->scheduler
                << ")!\n";
      lost = true;
    }
  }
  std::cout << "\n";
  slowdown.print(std::cout);
  if (lost) return 1;
  std::cout << "\nNo tasks were lost: scheduler-side queues make failures "
               "survivable, as §3 argues.\n";
  return 0;
}
