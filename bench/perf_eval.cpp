// Evaluation-core throughput probe: the perf-trajectory anchor behind
// BENCH_eval.json (see scripts/bench_perf.sh).
//
// Measures, on a fixed pinned-seed fixture (the micro_ga_ops batch
// fixture: heterogeneous rates/comms, tasks ~N(sizes), population 20):
//
//   generations_per_sec  GA generation throughput (paper config: 1
//                        re-balance pass per individual per generation)
//   evals_per_sec        fitness+objective evaluations per second
//   evals_per_generation actual evaluations per generation (cached-fitness
//                        observability: 2·population without caching)
//   allocs_per_generation steady-state heap allocations per generation,
//                        counted by a global operator-new hook and
//                        differenced between a G- and a 2G-generation run
//                        so setup/teardown costs cancel
//
// No Google-Benchmark dependency: this tool must emit machine-readable
// JSON and count allocations, both of which need full control of main().

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <tuple>

#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};

}  // namespace

// Counting hook: every heap allocation in the process bumps the counter.
// Deliberately minimal — malloc/free keep their usual semantics.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gasched;

struct Options {
  std::size_t tasks = 200;
  std::size_t procs = 50;
  std::size_t population = 20;
  std::size_t generations = 300;
  std::string label = "current";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](std::size_t& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_eval: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      out = std::strtoul(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--tasks") == 0) {
      num(o.tasks);
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      num(o.procs);
    } else if (std::strcmp(argv[i], "--population") == 0) {
      num(o.population);
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      num(o.generations);
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      o.label = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_eval [--tasks N] [--procs M] "
                   "[--population P] [--generations G] [--label L]\n");
      std::exit(2);
    }
  }
  return o;
}

/// (wall seconds, allocations, generations, evaluations) of one GA run on
/// the pinned fixture.
std::tuple<double, unsigned long long, std::size_t, std::size_t> run_ga(
    const Options& o, const core::ScheduleCodec& codec,
    const core::ScheduleEvaluator& eval, std::size_t generations) {
  const core::ScheduleProblem problem(codec, eval);
  static const ga::RouletteSelection kSelection;
  static const ga::CycleCrossover kCrossover;
  static const ga::SwapMutation kMutation;
  ga::GaConfig cfg;
  cfg.population = o.population;
  cfg.max_generations = generations;
  cfg.improvement_passes = 1;  // the paper's per-individual re-balance
  const ga::GaEngine engine(cfg, kSelection, kCrossover, kMutation);
  util::Rng init_rng(2);
  auto init =
      core::initial_population(codec, eval, o.population, 0.5, init_rng);
  util::Rng ga_rng(3);
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned long long a0 = g_allocs.load(std::memory_order_relaxed);
  const ga::GaResult r = engine.run(problem, std::move(init), ga_rng);
  const unsigned long long a1 = g_allocs.load(std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), a1 - a0,
          r.generations, r.evaluations};
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  // Pinned fixture (seeds match micro_ga_ops' BatchFixture).
  util::Rng fixture_rng(1);
  std::vector<double> sizes(o.tasks);
  for (auto& v : sizes) v = fixture_rng.uniform(10.0, 1000.0);
  sim::SystemView view;
  view.procs.resize(o.procs);
  for (std::size_t j = 0; j < o.procs; ++j) {
    view.procs[j].id = static_cast<sim::ProcId>(j);
    view.procs[j].rate = fixture_rng.uniform(10.0, 100.0);
    view.procs[j].comm_estimate = fixture_rng.uniform(1.0, 50.0);
  }
  const core::ScheduleCodec codec(o.tasks, o.procs);
  const core::ScheduleEvaluator eval(std::move(sizes), view,
                                     /*use_comm=*/true);

  run_ga(o, codec, eval, o.generations);  // warm-up (code + allocator)
  const auto [t1, a1, g1, e1] = run_ga(o, codec, eval, o.generations);
  const auto [t2, a2, g2, e2] = run_ga(o, codec, eval, 2 * o.generations);
  const double gens = static_cast<double>(g2 - g1);
  const double generations_per_sec = gens / (t2 - t1);
  const double allocs_per_generation =
      static_cast<double>(a2 - a1) / gens;
  const double evals_per_generation = static_cast<double>(e2 - e1) / gens;
  const double evals_per_sec =
      static_cast<double>(e2 - e1) / (t2 - t1);

  std::printf(
      "{\"label\":\"%s\",\"tasks\":%zu,\"procs\":%zu,\"population\":%zu,"
      "\"generations\":%zu,\"generations_per_sec\":%.1f,"
      "\"evals_per_sec\":%.1f,\"evals_per_generation\":%.2f,"
      "\"allocs_per_generation\":%.2f}\n",
      o.label.c_str(), o.tasks, o.procs, o.population, o.generations,
      generations_per_sec, evals_per_sec, evals_per_generation,
      allocs_per_generation);
  return 0;
}
