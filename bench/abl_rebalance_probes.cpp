// Ablation: probe budget of the re-balancing heuristic. §3.5 fixes "a
// maximum of 5 random searches for a smaller task"; this bench sweeps
// that cap on one scheduling batch to show what the choice trades —
// more probes find a swap more often (better makespan per generation)
// but cost time linearly, the same trade Fig. 4 shows for the number of
// re-balances.

#include <chrono>

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/8,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "re-balance probe cap (paper SS3.5 fixes 5)",
      "design-choice study (not in paper): makespan improves with more "
      "probes at diminishing returns; GA wall time grows with the cap",
      p);

  exp::WorkloadSpec spec;  // GA-batch study: sizes drawn directly below
  exp::Sweep sweep =
      bench::make_sweep("abl-probes", p, spec, /*mean_comm=*/20.0);
  sweep.axis("probes", {0, 1, 2, 5, 10, 20}, {});
  sweep.extra_columns(
      {"final_makespan", "reduction_vs_init", "ga_wall_s"});
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const std::size_t pi = cell.index;
    const auto probes = static_cast<std::size_t>(
        cell.coord_value("probes"));
    std::vector<double> finals(p.reps), reductions(p.reps), walls(p.reps);
    auto body = [&](std::size_t rep) {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster = sim::build_cluster(
          exp::paper_cluster(20.0, p.procs), cluster_rng);
      sim::SystemView view;
      view.procs.resize(cluster.size());
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = cluster.processors[j].base_rate;
        view.procs[j].comm_estimate =
            cluster.comm->true_mean(static_cast<sim::ProcId>(j));
      }
      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);
      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, true);
      const core::ScheduleProblem problem(codec, eval, probes);

      ga::GaConfig cfg;
      cfg.population = p.population;
      cfg.max_generations = p.generations;
      cfg.record_history = true;
      // probes = 0 disables the improvement pass entirely (pure GA).
      cfg.improvement_passes = probes == 0 ? 0 : 1;
      static const ga::RouletteSelection sel;
      static const ga::CycleCrossover cx;
      static const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, cx, mut);
      util::Rng ga_rng = base.split(1000 + 100 * rep + pi);
      auto init = core::initial_population(codec, eval, cfg.population, 0.5,
                                           ga_rng);
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = engine.run(problem, std::move(init), ga_rng);
      const auto t1 = std::chrono::steady_clock::now();
      finals[rep] = r.best_objective;
      reductions[rep] =
          1.0 - r.best_objective / r.objective_history.front();
      walls[rep] = std::chrono::duration<double>(t1 - t0).count();
    };
    if (parallel && p.reps > 1) {
      util::global_pool().parallel_for(0, p.reps, body);
    } else {
      for (std::size_t rep = 0; rep < p.reps; ++rep) body(rep);
    }
    exp::CellOutcome out;
    out.extras = {{"final_makespan", util::summarize(finals).mean},
                  {"reduction_vs_init", util::summarize(reductions).mean},
                  {"ga_wall_s", util::summarize(walls).mean}};
    return out;
  });

  bench::run_sweep(sweep, p);
  return 0;
}
