// Ablation: probe budget of the re-balancing heuristic. §3.5 fixes "a
// maximum of 5 random searches for a smaller task"; this bench sweeps
// that cap on one scheduling batch to show what the choice trades —
// more probes find a swap more often (better makespan per generation)
// but cost time linearly, the same trade Fig. 4 shows for the number of
// re-balances.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/8,
                                     /*generations=*/300);
  bench::print_banner(
      "Ablation", "re-balance probe cap (paper SS3.5 fixes 5)",
      "design-choice study (not in paper): makespan improves with more "
      "probes at diminishing returns; GA wall time grows with the cap",
      p);

  const std::vector<std::size_t> probe_caps{0, 1, 2, 5, 10, 20};

  util::Table table({"probes", "final_makespan", "reduction_vs_init",
                     "ga_wall_s"});
  std::vector<std::vector<double>> csv_rows;
  struct Cell {
    double makespan = 0.0;
    double reduction = 0.0;
    double wall = 0.0;
  };
  std::vector<std::vector<Cell>> results(probe_caps.size(),
                                         std::vector<Cell>(p.reps));
  util::global_pool().parallel_for(
      0, probe_caps.size() * p.reps, [&](std::size_t w) {
        const std::size_t pi = w / p.reps;
        const std::size_t rep = w % p.reps;
        const util::Rng base(p.seed);
        util::Rng cluster_rng = base.split(2 * rep);
        util::Rng task_rng = base.split(2 * rep + 1);
        const sim::Cluster cluster =
            sim::build_cluster(exp::paper_cluster(20.0, p.procs), cluster_rng);
        sim::SystemView view;
        view.procs.resize(cluster.size());
        for (std::size_t j = 0; j < cluster.size(); ++j) {
          view.procs[j].id = static_cast<sim::ProcId>(j);
          view.procs[j].rate = cluster.processors[j].base_rate;
          view.procs[j].comm_estimate =
              cluster.comm->true_mean(static_cast<sim::ProcId>(j));
        }
        workload::NormalSizes dist(1000.0, 9e5);
        std::vector<double> sizes(p.tasks);
        for (auto& s : sizes) s = dist.sample(task_rng);
        const core::ScheduleCodec codec(p.tasks, cluster.size());
        const core::ScheduleEvaluator eval(sizes, view, true);
        const core::ScheduleProblem problem(codec, eval, probe_caps[pi]);

        ga::GaConfig cfg;
        cfg.population = p.population;
        cfg.max_generations = p.generations;
        cfg.record_history = true;
        // probes = 0 disables the improvement pass entirely (pure GA).
        cfg.improvement_passes = probe_caps[pi] == 0 ? 0 : 1;
        static const ga::RouletteSelection sel;
        static const ga::CycleCrossover cx;
        static const ga::SwapMutation mut;
        const ga::GaEngine engine(cfg, sel, cx, mut);
        util::Rng ga_rng = base.split(1000 + 100 * rep + pi);
        auto init =
            core::initial_population(codec, eval, cfg.population, 0.5, ga_rng);
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = engine.run(problem, std::move(init), ga_rng);
        const auto t1 = std::chrono::steady_clock::now();
        results[pi][rep] = {
            r.best_objective,
            1.0 - r.best_objective / r.objective_history.front(),
            std::chrono::duration<double>(t1 - t0).count()};
      });

  for (std::size_t pi = 0; pi < probe_caps.size(); ++pi) {
    double ms = 0.0, red = 0.0, wall = 0.0;
    for (const auto& c : results[pi]) {
      ms += c.makespan;
      red += c.reduction;
      wall += c.wall;
    }
    const double reps = static_cast<double>(p.reps);
    table.add_row(std::to_string(probe_caps[pi]),
                  {ms / reps, red / reps, wall / reps});
    csv_rows.push_back({static_cast<double>(probe_caps[pi]), ms / reps,
                        red / reps, wall / reps});
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"probes", "final_makespan", "reduction_vs_init", "ga_wall_s"},
      csv_rows);
  return 0;
}
