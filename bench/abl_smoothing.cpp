// Ablation: smoothing factor ν of the per-link communication estimators
// (§3.6). ν controls how strongly the newest observation moves the
// estimate Γ: ν = 0 freezes the first observation, ν = 1 tracks the
// latest sample verbatim. The paper motivates smoothing ("minimise
// localised fluctuations") but does not report a value; this bench
// sweeps ν for the PN scheduler on a cluster with noisy per-dispatch
// communication costs.

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/4,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "comm-estimator smoothing factor nu (SS3.6)",
      "design-choice study (not in paper): intermediate nu performs best "
      "under jittery links — nu=1 chases noise, nu~0 never adapts",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Scenario base =
      bench::bench_scenario(p, spec, /*mean_comm=*/15.0, "smoothing");
  base.cluster.comm.jitter_cv = 0.8;  // strongly noisy per-dispatch costs

  exp::Sweep sweep("abl-smoothing");
  sweep.base(base)
      .params(bench::scheduler_params(p))
      .parallel(!p.serial)
      .scheduler("PN")
      .axis("nu", {0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0},
            [](exp::SweepCell& c, double nu) { c.scenario.comm_nu = nu; });
  bench::run_sweep(sweep, p);
  return 0;
}
