// Ablation: smoothing factor ν of the per-link communication estimators
// (§3.6). ν controls how strongly the newest observation moves the
// estimate Γ: ν = 0 freezes the first observation, ν = 1 tracks the
// latest sample verbatim. The paper motivates smoothing ("minimise
// localised fluctuations") but does not report a value; this bench
// sweeps ν for the PN scheduler on a cluster with noisy per-dispatch
// communication costs.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/4,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "comm-estimator smoothing factor nu (SS3.6)",
      "design-choice study (not in paper): intermediate nu performs best "
      "under jittery links — nu=1 chases noise, nu~0 never adapts",
      p);

  exp::Scenario s;
  s.name = "smoothing";
  s.cluster = exp::paper_cluster(15.0, p.procs);
  s.cluster.comm.jitter_cv = 0.8;  // strongly noisy per-dispatch costs
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;

  const auto opts = bench::scheduler_params(p);
  util::Table table({"nu", "makespan", "ci95", "efficiency"});
  std::vector<std::vector<double>> csv_rows;
  for (const double nu : {0.05, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    s.comm_nu = nu;
    const auto cell = exp::run_cell(s, "PN", opts);
    table.add_row(util::fmt(nu, 2),
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean});
    csv_rows.push_back({nu, cell.makespan.mean, cell.efficiency.mean});
  }
  table.print(std::cout);
  bench::maybe_write_csv(p, {"nu", "makespan", "efficiency"}, csv_rows);
  return 0;
}
