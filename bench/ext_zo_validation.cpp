// Extension: validation of the ZO baseline in the spirit of §4.1 — the
// authors "validated [their] implementation of this scheduler by
// reproducing some of the performance results in [19]" (Zomaya & Teh
// 2001) but do not show them. Zomaya & Teh's setting is homogeneous
// processors with a GA load-balancer; their headline observations are
// (a) the GA balances loads to near-optimal makespans, and (b) quality
// holds as the processor count scales. This bench reproduces both on a
// homogeneous cluster with near-zero communication cost, scoring ZO
// against the work lower bound W/(M·P) and against RR.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/bounds.hpp"
#include "sim/cluster.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/4,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "ZO baseline validation (Zomaya & Teh 2001 setting)",
      "Zomaya & Teh report near-optimal load balancing on homogeneous "
      "processors: expect ZO within a few percent of the W/(M*P) bound at "
      "every M, with RR clearly worse on heterogeneous task sizes",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 1000.0;

  exp::Scenario base =
      bench::bench_scenario(p, spec, /*mean_comm=*/0.05, "zo-validation");
  base.cluster.rate_lo = 50.0;  // homogeneous: every rate is 50 Mflop/s
  base.cluster.rate_hi = 50.0;

  exp::Sweep sweep("zo-validation");
  sweep.base(base).params(bench::scheduler_params(p)).parallel(!p.serial);
  sweep.axis("procs", {4, 8, 16, 32},
             [](exp::SweepCell& c, double m) {
               c.scenario.cluster.num_processors =
                   static_cast<std::size_t>(m);
             });
  sweep.schedulers({"ZO", "RR", "EF"});
  sweep.extra_columns({"bound_ratio"});
  // Custom runner: the default replication run plus the per-replication
  // work lower bound (the workload depends only on rep, so the bound can
  // be reconstructed from the runner's documented stream discipline).
  sweep.runner([](const exp::SweepCell& cell, bool parallel) {
    const auto runs = exp::run_replications(cell.scenario, cell.scheduler,
                                            cell.params, parallel);
    double ratio = 0.0;
    for (std::size_t rep = 0; rep < runs.size(); ++rep) {
      const util::Rng rng_base(cell.scenario.seed);
      util::Rng wrng = rng_base.split(3 * rep);
      const auto dist = exp::make_distribution(cell.scenario.workload);
      const auto wl = workload::generate(
          *dist, cell.scenario.workload.count, wrng);
      metrics::BoundInstance inst;
      for (const auto& task : wl.tasks) {
        inst.task_sizes.push_back(task.size_mflops);
      }
      inst.rates.assign(cell.scenario.cluster.num_processors, 50.0);
      ratio += runs[rep].makespan / metrics::makespan_lower_bound(inst);
    }
    exp::CellOutcome out;
    out.summary = metrics::aggregate(cell.scheduler, runs);
    out.extras = {{"bound_ratio",
                   ratio / static_cast<double>(runs.size())}};
    return out;
  });

  bench::run_sweep(sweep, p);
  std::cout << "\nbound_ratio = makespan / (W / (M*P) work bound); 1.0 is "
               "perfect balance.\n";
  return 0;
}
