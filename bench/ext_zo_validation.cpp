// Extension: validation of the ZO baseline in the spirit of §4.1 — the
// authors "validated [their] implementation of this scheduler by
// reproducing some of the performance results in [19]" (Zomaya & Teh
// 2001) but do not show them. Zomaya & Teh's setting is homogeneous
// processors with a GA load-balancer; their headline observations are
// (a) the GA balances loads to near-optimal makespans, and (b) quality
// holds as the processor count scales. This bench reproduces both on a
// homogeneous cluster with near-zero communication cost, scoring ZO
// against the work lower bound W/(M·P) and against RR.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/bounds.hpp"
#include "sim/cluster.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/4,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "ZO baseline validation (Zomaya & Teh 2001 setting)",
      "Zomaya & Teh report near-optimal load balancing on homogeneous "
      "processors: expect ZO within a few percent of the W/(M*P) bound at "
      "every M, with RR clearly worse on heterogeneous task sizes",
      p);

  const auto opts = bench::scheduler_params(p);
  util::Table table({"procs", "scheduler", "makespan", "bound_ratio"});
  std::vector<std::vector<double>> csv_rows;
  for (const std::size_t procs : {4u, 8u, 16u, 32u}) {
    exp::Scenario s;
    s.name = "zo-validation";
    s.cluster = exp::paper_cluster(0.05, procs);
    s.cluster.rate_lo = 50.0;  // homogeneous: every rate is 50 Mflop/s
    s.cluster.rate_hi = 50.0;
    s.workload.dist = "uniform";
    s.workload.param_a = 10.0;
    s.workload.param_b = 1000.0;
    s.workload.count = p.tasks;
    s.seed = p.seed;
    s.replications = p.reps;

    // Per-replication work bound (workload depends on rep only).
    std::vector<double> bounds(p.reps);
    for (std::size_t rep = 0; rep < p.reps; ++rep) {
      const util::Rng base(s.seed);
      util::Rng wrng = base.split(3 * rep);
      const auto dist = exp::make_distribution(s.workload);
      const auto wl = workload::generate(*dist, s.workload.count, wrng);
      metrics::BoundInstance inst;
      for (const auto& task : wl.tasks) {
        inst.task_sizes.push_back(task.size_mflops);
      }
      inst.rates.assign(procs, 50.0);
      bounds[rep] = metrics::makespan_lower_bound(inst);
    }

    std::size_t row = 0;
    for (const std::string kind : {"ZO", "RR", "EF"}) {
      const auto runs = exp::run_replications(s, kind, opts);
      double ms = 0.0, ratio = 0.0;
      for (std::size_t rep = 0; rep < runs.size(); ++rep) {
        ms += runs[rep].makespan;
        ratio += runs[rep].makespan / bounds[rep];
      }
      ms /= static_cast<double>(runs.size());
      ratio /= static_cast<double>(runs.size());
      table.add_row({std::to_string(procs), kind,
                     util::fmt(ms), util::fmt(ratio, 4)});
      csv_rows.push_back({static_cast<double>(procs),
                          static_cast<double>(row++), ms, ratio});
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(p, {"procs", "scheduler", "makespan", "bound_ratio"},
                         csv_rows);
  std::cout << "\nbound_ratio = makespan / (W / (M*P) work bound); 1.0 is "
               "perfect balance.\n";
  return 0;
}
