// Ablation: batch-size policy (§3.7). Compares fixed batch sizes against
// the paper's dynamic H = ⌊√(Γs+1)⌋ rule on full simulations.
//
// Larger batches usually give better schedules (as the paper notes, citing
// Zomaya & Teh) but cost more scheduler time; the dynamic rule trades the
// two automatically.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "batch size policy (PN, full simulation)",
      "paper claim: a larger batch usually yields a more efficient "
      "schedule; the dynamic rule balances quality against scheduler time",
      p);

  exp::Scenario scenario;
  scenario.name = "abl-batch";
  scenario.cluster = exp::paper_cluster(10.0, p.procs);
  scenario.workload.dist = "normal";
  scenario.workload.param_a = 1000.0;
  scenario.workload.param_b = 9e5;
  scenario.workload.count = p.tasks;
  scenario.seed = p.seed;
  scenario.replications = p.reps;

  util::Table table({"batch_policy", "makespan", "efficiency",
                     "sched_wall_s", "invocations"});
  std::vector<std::vector<double>> csv_rows;
  for (const std::size_t batch : {25, 50, 100, 200, 400}) {
    exp::SchedulerParams opts = bench::scheduler_params(p);
    opts.set("pn_dynamic_batch", false);
    opts.set("batch_size", batch);
    const auto cell = exp::run_cell(scenario, "PN", opts);
    table.add_row("fixed " + std::to_string(batch),
                  {cell.makespan.mean, cell.efficiency.mean,
                   cell.sched_wall.mean, cell.invocations.mean});
    csv_rows.push_back({static_cast<double>(batch), cell.makespan.mean,
                        cell.efficiency.mean, cell.sched_wall.mean});
  }
  {
    exp::SchedulerParams opts = bench::scheduler_params(p);
    opts.set("pn_dynamic_batch", true);
    const auto cell = exp::run_cell(scenario, "PN", opts);
    table.add_row("dynamic sqrt(Gs+1)",
                  {cell.makespan.mean, cell.efficiency.mean,
                   cell.sched_wall.mean, cell.invocations.mean});
    csv_rows.push_back(
        {0.0, cell.makespan.mean, cell.efficiency.mean, cell.sched_wall.mean});
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"batch_or_0_dynamic", "makespan", "efficiency", "sched_wall_s"},
      csv_rows);
  return 0;
}
