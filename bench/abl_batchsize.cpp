// Ablation: batch-size policy (§3.7). Compares fixed batch sizes against
// the paper's dynamic H = ⌊√(Γs+1)⌋ rule on full simulations.
//
// Larger batches usually give better schedules (as the paper notes, citing
// Zomaya & Teh) but cost more scheduler time; the dynamic rule trades the
// two automatically.

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Ablation", "batch size policy (PN, full simulation)",
      "paper claim: a larger batch usually yields a more efficient "
      "schedule; the dynamic rule balances quality against scheduler time",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("abl-batch", p, spec, /*mean_comm=*/10.0);
  sweep.scheduler("PN");

  std::vector<exp::Sweep::Value> policies;
  for (const std::size_t batch : {25, 50, 100, 200, 400}) {
    policies.push_back({"fixed " + std::to_string(batch),
                        [batch](exp::SweepCell& c) {
                          c.params.set("pn_dynamic_batch", false);
                          c.params.set("batch_size", batch);
                        }});
  }
  policies.push_back({"dynamic sqrt(Gs+1)", [](exp::SweepCell& c) {
                        c.params.set("pn_dynamic_batch", true);
                      }});
  sweep.axis("batch_policy", std::move(policies));

  bench::run_sweep(sweep, p);
  return 0;
}
