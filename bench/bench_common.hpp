#pragma once
// Shared infrastructure for the figure-reproduction bench binaries.
//
// Every binary prints (a) the paper's expectation for that figure, (b) an
// ASCII table with the regenerated rows/series, and (c) optionally writes
// the series as CSV (--csv <path>). Two scales are supported:
//   quick (default)       — reduced tasks/replications/generations so the
//                            whole suite runs in minutes;
//   full  (GASCHED_BENCH_SCALE=full or --full) — paper-scale parameters
//                            (10,000 tasks, 50 replications, 1000
//                            generations).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "metrics/report_json.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace gasched::bench {

/// Scale-dependent experiment parameters.
struct BenchParams {
  std::size_t tasks = 1000;        ///< tasks per simulation
  std::size_t procs = 50;          ///< processors
  std::size_t reps = 3;            ///< replications per cell
  std::size_t generations = 120;   ///< GA generation cap
  std::size_t population = 20;     ///< GA population (paper: 20)
  std::size_t batch = 200;         ///< fixed batch size (paper: 200)
  std::uint64_t seed = 20050404;   ///< base seed (IPPS 2005 vintage)
  bool pn_dynamic_batch = true;    ///< PN batch policy (Fig 5/7 fix it)
  bool full = false;               ///< paper-scale switch
  std::optional<std::string> csv;  ///< CSV output path
  std::optional<std::string> json; ///< JSON output path (aggregated cells)
};

/// Parses common flags (--tasks, --reps, --generations, --procs, --seed,
/// --csv, --json, --full) on top of quick/full defaults.
BenchParams parse_params(int argc, char** argv, std::size_t quick_tasks,
                         std::size_t quick_reps,
                         std::size_t quick_generations);

/// Shared SchedulerParams (batch_size, max_generations, population,
/// pn_dynamic_batch) matching `p`.
exp::SchedulerParams scheduler_params(const BenchParams& p);

/// Prints the figure banner: id, title, and the paper's qualitative
/// expectation the reproduction should match.
void print_banner(const std::string& figure, const std::string& title,
                  const std::string& paper_expectation,
                  const BenchParams& p);

/// Runs the seven-scheduler makespan bar chart for `spec` at one mean
/// communication cost. Prints a table (mean ± CI makespan, efficiency per
/// scheduler, paper bar-chart order) and returns mean makespans keyed by
/// scheduler order in exp::all_schedulers().
std::vector<double> run_makespan_bars(const BenchParams& p,
                                      const exp::WorkloadSpec& spec,
                                      double mean_comm_cost);

/// Runs the efficiency-vs-communication-cost sweep (Figs 5 and 7): for
/// each value of inv_costs (= 1/mean cost), computes mean efficiency per
/// scheduler. Prints the table and returns rows[point][scheduler].
std::vector<std::vector<double>> run_efficiency_sweep(
    const BenchParams& p, const exp::WorkloadSpec& spec,
    const std::vector<double>& inv_costs);

/// Writes `rows` as CSV with the given header if `p.csv` is set.
void maybe_write_csv(const BenchParams& p,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows);

/// Writes the aggregated cells as a JSON document if `p.json` is set.
void maybe_write_json(const BenchParams& p, const std::string& experiment,
                      const std::vector<metrics::CellSummary>& cells);

}  // namespace gasched::bench
