#pragma once
// Shared infrastructure for the figure-reproduction bench binaries.
//
// Every binary declares its experiment as an exp::Sweep (axes ×
// schedulers), runs it through run_sweep — which executes the grid in
// parallel on util::global_pool() and streams results to the standard
// sinks (ASCII table on stdout, crash-safe CSV via --csv, JSONL via
// --json; --resume continues a killed run from whichever of those files
// exist, including JSONL-only runs) — and then prints its
// figure-specific shape check from the returned rows.
// The paper-figure binaries (fig*) are one step thinner:
// their grids are registered in exp::FigSet and run_figure drives the
// whole binary, so the same definitions power tools/figset. Two scales
// are supported:
//   quick (default)       — reduced tasks/replications/generations so the
//                            whole suite runs in minutes;
//   full  (GASCHED_BENCH_SCALE=full or --full) — paper-scale parameters
//                            (10,000 tasks, 50 replications, 1000
//                            generations).
// --serial disables sweep parallelism (the determinism baseline: output
// files are byte-identical to a parallel run).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "exp/figset.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"
#include "metrics/report_json.hpp"
#include "metrics/sink.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace gasched::bench {

/// Scale-dependent experiment parameters.
struct BenchParams {
  std::size_t tasks = 1000;        ///< tasks per simulation
  std::size_t procs = 50;          ///< processors
  std::size_t reps = 3;            ///< replications per cell
  std::size_t generations = 120;   ///< GA generation cap
  std::size_t population = 20;     ///< GA population (paper: 20)
  std::size_t batch = 200;         ///< fixed batch size (paper: 200)
  std::uint64_t seed = 20050404;   ///< base seed (IPPS 2005 vintage)
  bool pn_dynamic_batch = true;    ///< PN batch policy (Fig 5/7 fix it)
  bool full = false;               ///< paper-scale switch
  bool serial = false;             ///< --serial: single-threaded sweep
  std::optional<std::string> csv;  ///< CSV output path (streaming sink)
  std::optional<std::string> json; ///< JSONL output path (streaming sink)
  /// --resume: open the --csv/--json sinks in SinkMode::kResume, so a
  /// killed run continues where its output files stop (cells already on
  /// disk are skipped; see Sweep::run). Requires --csv and/or --json.
  bool resume = false;
};

/// Parses common flags (--tasks, --reps, --generations, --procs, --seed,
/// --csv, --json, --resume, --serial, --full) on top of quick/full
/// defaults. Exits with code 2 when --resume is given without --csv or
/// --json (there would be no file to continue from).
BenchParams parse_params(int argc, char** argv, std::size_t quick_tasks,
                         std::size_t quick_reps,
                         std::size_t quick_generations);

/// Shared SchedulerParams (batch_size, max_generations, population,
/// pn_dynamic_batch) matching `p`.
exp::SchedulerParams scheduler_params(const BenchParams& p);

/// Prints the figure banner: id, title, and the paper's qualitative
/// expectation the reproduction should match.
void print_banner(const std::string& figure, const std::string& title,
                  const std::string& paper_expectation,
                  const BenchParams& p);

/// The standard bench scenario: paper cluster at `mean_comm_cost` with
/// `spec` sizes, scaled by `p`.
exp::Scenario bench_scenario(const BenchParams& p,
                             const exp::WorkloadSpec& spec,
                             double mean_comm_cost, std::string name);

/// A Sweep preconfigured from `p`: bench scenario as the base cell,
/// scheduler_params(p), parallel unless --serial. Add axes and run it
/// with run_sweep.
exp::Sweep make_sweep(std::string name, const BenchParams& p,
                      const exp::WorkloadSpec& spec, double mean_comm_cost);

/// Runs `sweep` with the standard sinks: ASCII table on stdout (unless
/// `print_table` is false — benches that pivot their own table pass
/// false), streaming CSV at p.csv, streaming JSONL at p.json (both in
/// resume mode under --resume). Failed cells abort the binary with exit
/// code 1 after the table/sinks have reported them (a bench grid must
/// never silently compute its shape checks on missing cells). Cells
/// skipped by a resume make the binary exit 0 once the files are
/// complete: the in-memory rows for resumed cells are empty, so every
/// figure-specific table and shape check downstream of this call would
/// silently compute on zeros — the same reason figset omits reports for
/// resumed runs.
exp::SweepResult run_sweep(exp::Sweep& sweep, const BenchParams& p,
                           bool print_table = true);

/// The exp::FigScale equivalent of `p` (figure grids are built from
/// FigScale so the registered definitions in exp/figset.hpp and the
/// bench binaries share one source of truth).
exp::FigScale to_scale(const BenchParams& p);

/// The whole of a figure bench binary: looks `id` up in exp::FigSet,
/// parses the common flags against the figure's quick defaults (applying
/// its full-scale task pin), prints the banner, builds and runs the grid
/// with the standard sinks, and prints the figure's report/shape check.
/// Returns the process exit code.
int run_figure(const std::string& id, int argc, char** argv);

/// Writes `rows` as CSV with the given header if `p.csv` is set. Only
/// for bespoke series a SweepResult does not model (e.g. fig03's
/// per-generation trajectories); grid results use the CsvSink.
void maybe_write_csv(const BenchParams& p,
                     const std::vector<std::string>& header,
                     const std::vector<std::vector<double>>& rows);

/// Writes the aggregated cells as a JSON document if `p.json` is set
/// (bespoke counterpart of the JSONL sink).
void maybe_write_json(const BenchParams& p, const std::string& experiment,
                      const std::vector<metrics::CellSummary>& cells);

}  // namespace gasched::bench
