// Figure 3: average reduction in makespan after each generation of the GA,
// for 0 (pure GA), 1, and 50 re-balances per individual per generation.
//
// The grid, trajectory runner, and report live in exp::FigSet
// (src/exp/figset.cpp, id "fig03"); this binary is a thin driver so the
// figure also runs under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig03", argc, argv);
}
