// Figure 3: average reduction in makespan after each generation of the GA,
// for 0 (pure GA), 1, and 50 re-balances per individual per generation.
//
// Paper result: the largest reductions occur in the first ~100
// generations; after 1000 generations the best makespan is reduced to
// about 75% (pure GA), 70% (1 re-balance), and 65% (50 re-balances) of its
// initial value.

#include <iostream>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"
#include "core/fitness.hpp"
#include "core/init.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "workload/generator.hpp"

using namespace gasched;

namespace {

/// Observable system view of a freshly built cluster: Linpack rates, no
/// pending load, comm estimates primed at the true link means (the GA is
/// studied in steady state here, as in the paper's Fig 3).
sim::SystemView steady_state_view(const sim::Cluster& cluster) {
  sim::SystemView v;
  v.procs.resize(cluster.size());
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = cluster.processors[j].base_rate;
    v.procs[j].comm_estimate =
        cluster.comm->true_mean(static_cast<sim::ProcId>(j));
    v.procs[j].comm_observations = 1;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  auto p = bench::parse_params(argc, argv, /*tasks=*/200, /*reps=*/10,
                               /*generations=*/300);
  if (p.full) {
    p.tasks = 200;  // Fig 3 studies one batch, not the 10k-task stream
    p.reps = 50;
  }
  bench::print_banner(
      "Figure 3", "makespan reduction per GA generation",
      "largest gains in first ~100 generations; final makespan ~75% (pure "
      "GA) / ~70% (1 rebalance) / ~65% (50 rebalances) of initial",
      p);

  const std::vector<double> rebalance_levels{0, 1, 50};
  // reduction[level][gen]: mean reduction trajectories, filled by the
  // sweep's cells (deterministic: every stream depends only on rep).
  std::vector<std::vector<double>> reduction(
      rebalance_levels.size(), std::vector<double>(p.generations + 1, 0.0));

  exp::WorkloadSpec spec;  // GA-batch study: sizes drawn directly below
  exp::Sweep sweep = bench::make_sweep("fig3", p, spec, /*mean_comm=*/20.0);
  sweep.axis("rebalances", rebalance_levels, {});
  sweep.extra_columns({"final_reduction"});
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const std::size_t li = cell.index;
    const auto level =
        static_cast<std::size_t>(cell.coord_value("rebalances"));
    std::vector<std::vector<double>> per_rep(
        p.reps, std::vector<double>(p.generations + 1, 0.0));
    auto body = [&](std::size_t rep) {
      const util::Rng base(p.seed);
      util::Rng cluster_rng = base.split(2 * rep);
      util::Rng task_rng = base.split(2 * rep + 1);
      const sim::Cluster cluster = sim::build_cluster(
          exp::paper_cluster(20.0, p.procs), cluster_rng);
      const sim::SystemView view = steady_state_view(cluster);

      workload::NormalSizes dist(1000.0, 9e5);
      std::vector<double> sizes(p.tasks);
      for (auto& s : sizes) s = dist.sample(task_rng);

      const core::ScheduleCodec codec(p.tasks, cluster.size());
      const core::ScheduleEvaluator eval(sizes, view, /*use_comm=*/true);

      // All three series start from the *same* initial population so the
      // re-balance levels are compared like-for-like.
      util::Rng init_rng = base.split(500 + rep);
      const auto shared_init = core::initial_population(
          codec, eval, p.population, 0.5, init_rng);

      ga::GaConfig cfg;
      cfg.population = p.population;
      cfg.max_generations = p.generations;
      cfg.improvement_passes = level;
      cfg.record_history = true;
      const ga::RouletteSelection sel;
      const ga::CycleCrossover cx;
      const ga::SwapMutation mut;
      const ga::GaEngine engine(cfg, sel, cx, mut);
      const core::ScheduleProblem problem(codec, eval);
      util::Rng ga_rng = base.split(1000 + 10 * rep + li);
      auto init = shared_init;
      const auto result = engine.run(problem, std::move(init), ga_rng);
      const double initial = result.objective_history.front();
      for (std::size_t g = 0; g < per_rep[rep].size(); ++g) {
        const double ms = g < result.objective_history.size()
                              ? result.objective_history[g]
                              : result.objective_history.back();
        per_rep[rep][g] = 1.0 - ms / initial;
      }
    };
    if (parallel && p.reps > 1) {
      util::global_pool().parallel_for(0, p.reps, body);
    } else {
      for (std::size_t rep = 0; rep < p.reps; ++rep) body(rep);
    }

    // Serial reduction over replications into the shared trajectory
    // table (one writer per level: cells own disjoint rows).
    for (std::size_t rep = 0; rep < p.reps; ++rep) {
      for (std::size_t g = 0; g < reduction[li].size(); ++g) {
        reduction[li][g] += per_rep[rep][g];
      }
    }
    for (auto& v : reduction[li]) v /= static_cast<double>(p.reps);

    exp::CellOutcome out;
    out.extras = {{"final_reduction", reduction[li].back()}};
    return out;
  });

  // The trajectory table/CSV below is the figure; the sweep table would
  // only repeat the final points, so the grid sinks stay detached and
  // --csv/--json go to the bespoke series instead.
  bench::BenchParams run_p = p;
  run_p.csv.reset();
  run_p.json.reset();
  bench::run_sweep(sweep, run_p, /*print_table=*/false);

  util::Table table(
      {"generation", "pure GA", "1 rebalance", "50 rebalances"});
  std::vector<std::vector<double>> csv_rows;
  const std::size_t step = std::max<std::size_t>(1, p.generations / 20);
  for (std::size_t g = 0; g <= p.generations; g += step) {
    std::vector<double> row{static_cast<double>(g)};
    for (std::size_t li = 0; li < rebalance_levels.size(); ++li) {
      row.push_back(reduction[li][g]);
    }
    table.add_row(util::fmt(static_cast<double>(g), 6),
                  {row[1], row[2], row[3]});
    csv_rows.push_back(std::move(row));
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"generation", "pure_ga", "rebalance_1", "rebalance_50"}, csv_rows);

  std::cout << "\nFinal makespan as % of initial: pure GA="
            << util::fmt(100.0 * (1.0 - csv_rows.back()[1]), 4)
            << "%  1 rebalance="
            << util::fmt(100.0 * (1.0 - csv_rows.back()[2]), 4)
            << "%  50 rebalances="
            << util::fmt(100.0 * (1.0 - csv_rows.back()[3]), 4) << "%\n";
  return 0;
}
