// Extension: meta-heuristic shoot-out. The paper's §2 frames GAs, tabu
// search (ref [6]) and ant colony optimisation (ref [3]) as the
// applicable meta-heuristic family but evaluates only GAs; this bench
// completes the comparison. All searchers share the PN information model
// (smoothed rates, pending load, smoothed per-link comm estimates) and
// the same FCFS batch protocol, so differences isolate the search
// strategy itself: PN/PNI (genetic + re-balance), ZO (comm-oblivious
// genetic), SA (annealing), TS (tabu), ACO (ant colony), HC (restart
// hill climbing).

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "meta-heuristic shoot-out (PN, ZO, SA, TS, ACO, HC, PNI)",
      "literature-consistent hypothesis: all informed searchers land in "
      "one band well below RR; the GA variants with comm prediction (PN, "
      "PNI) lead on efficiency; HC is the floor of the family",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  auto kinds = exp::metaheuristic_schedulers();
  kinds.push_back("RR");  // uninformed reference

  exp::Sweep sweep =
      bench::make_sweep("metaheuristics", p, spec, /*mean_comm=*/10.0);
  sweep.schedulers(kinds);
  const auto result = bench::run_sweep(sweep, p);

  double pn_ms = 0.0, hc_ms = 0.0, rr_ms = 0.0;
  for (const auto& row : result.rows) {
    if (row.scheduler == "PN") pn_ms = row.cell.makespan.mean;
    if (row.scheduler == "HC") hc_ms = row.cell.makespan.mean;
    if (row.scheduler == "RR") rr_ms = row.cell.makespan.mean;
  }
  std::cout << "\nPN/RR makespan ratio " << util::fmt(pn_ms / rr_ms, 4)
            << " (<< 1 expected); HC/RR " << util::fmt(hc_ms / rr_ms, 4)
            << " (< 1 expected).\n";
  return 0;
}
