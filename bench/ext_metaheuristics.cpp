// Extension: meta-heuristic shoot-out. The paper's §2 frames GAs, tabu
// search (ref [6]) and ant colony optimisation (ref [3]) as the
// applicable meta-heuristic family but evaluates only GAs; this bench
// completes the comparison. All searchers share the PN information model
// (smoothed rates, pending load, smoothed per-link comm estimates) and
// the same FCFS batch protocol, so differences isolate the search
// strategy itself: PN/PNI (genetic + re-balance), ZO (comm-oblivious
// genetic), SA (annealing), TS (tabu), ACO (ant colony), HC (restart
// hill climbing).

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "meta-heuristic shoot-out (PN, ZO, SA, TS, ACO, HC, PNI)",
      "literature-consistent hypothesis: all informed searchers land in "
      "one band well below RR; the GA variants with comm prediction (PN, "
      "PNI) lead on efficiency; HC is the floor of the family",
      p);

  exp::Scenario s;
  s.name = "metaheuristics";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;

  const auto opts = bench::scheduler_params(p);
  util::Table table(
      {"scheduler", "makespan", "ci95", "efficiency", "sched_wall_s"});
  std::vector<std::vector<double>> csv_rows;
  double pn_ms = 0.0, hc_ms = 0.0, rr_ms = 0.0;
  auto kinds = exp::metaheuristic_schedulers();
  kinds.push_back("RR");  // uninformed reference
  for (const auto kind : kinds) {
    const auto cell = exp::run_cell(s, kind, opts);
    table.add_row(cell.scheduler,
                  {cell.makespan.mean, cell.makespan.ci95,
                   cell.efficiency.mean, cell.sched_wall.mean});
    csv_rows.push_back({static_cast<double>(csv_rows.size()),
                        cell.makespan.mean, cell.efficiency.mean,
                        cell.sched_wall.mean});
    if (kind == "PN") pn_ms = cell.makespan.mean;
    if (kind == "HC") hc_ms = cell.makespan.mean;
    if (kind == "RR") rr_ms = cell.makespan.mean;
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"scheduler_index", "makespan", "efficiency", "sched_wall_s"},
      csv_rows);
  std::cout << "\nPN/RR makespan ratio " << util::fmt(pn_ms / rr_ms, 4)
            << " (<< 1 expected); HC/RR " << util::fmt(hc_ms / rr_ms, 4)
            << " (< 1 expected).\n";
  return 0;
}
