// Extension: how near is "near-optimal"? §3 claims the scheduler "can
// produce near-optimal schedules" without quantifying the gap. Part 1
// measures every batch searcher against the *exact* optimum
// (branch-and-bound, metrics/bounds.hpp) on small single-batch
// instances. Part 2 runs the registered `extgap` figure grid
// (exp::FigSet): full-simulation makespans at H=600 tasks / M=50
// processors against two *certified* lower bounds — `lb_comb`
// (combinatorial, metrics::makespan_lower_bound) and `lb_qp` (the
// interior-point relaxation bound, metrics::relaxation_lower_bound;
// docs/bounds.md) — with the certified `gap_pct` column. The binary
// exits 1 if lb_qp fails to dominate lb_comb on any cell: the fold in
// relaxation_lower_bound makes that impossible unless the bound stack
// is broken, so CI treats it as a hard failure.
//
// --quick shrinks both parts to a seconds-long smoke run for CI.

#include <deque>
#include <iostream>

#include "bench_common.hpp"
#include "metrics/bounds.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                               /*generations=*/100);
  const bool quick = util::Cli(argc, argv).get_bool("quick", false);
  if (quick) {
    // CI smoke scale: exercises every code path (exact search, GA
    // schedulers, interior-point bound) in a few seconds.
    p.tasks = 120;
    p.procs = 12;
    p.reps = 1;
    p.generations = 10;
  }
  bench::print_banner(
      "Extension", "optimality gap (SS3's 'near-optimal' claim, quantified)",
      "hypothesis: informed batch searchers land within a few percent of "
      "the exact optimum on small instances; at scale, makespans sit "
      "within a modest constant of the certified relaxation bound lb_qp, "
      "which dominates the combinatorial bound lb_comb on every cell",
      p);

  // ---- Part 1: exact optimum on small single-batch instances ----------
  const std::size_t kInstances = p.full ? 40 : (quick ? 6 : 15);
  const std::size_t kTinyTasks = 10;
  const std::size_t kTinyProcs = 3;

  std::cout << "Part 1 — single batch of " << kTinyTasks << " tasks on "
            << kTinyProcs << " processors, " << kInstances
            << " random instances, exact optimum by branch-and-bound:\n";

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep part1 = bench::make_sweep("optgap-exact", p, spec,
                                       /*mean_comm=*/10.0);
  part1.schedulers(exp::metaheuristic_schedulers());
  part1.extra_columns({"mean_makespan_over_optimum"});
  part1.runner([&](const exp::SweepCell& cell, bool parallel) {
    // Estimated makespan of one batch assignment under `view`.
    const auto assignment_makespan =
        [](const sim::BatchAssignment& a, const sim::SystemView& view,
           const std::vector<double>& sizes) {
          double ms = 0.0;
          for (std::size_t j = 0; j < view.size(); ++j) {
            double c = view.procs[j].pending_mflops / view.procs[j].rate;
            for (const auto id : a.per_proc[j]) {
              c += sizes[static_cast<std::size_t>(id)] /
                       view.procs[j].rate +
                   view.procs[j].comm_estimate;
            }
            ms = std::max(ms, c);
          }
          return ms;
        };
    std::vector<double> gaps(kInstances);
    auto body = [&](std::size_t inst_i) {
      util::Rng rng(p.seed + inst_i);
      metrics::BoundInstance inst;
      sim::SystemView view;
      view.procs.resize(kTinyProcs);
      for (std::size_t j = 0; j < kTinyProcs; ++j) {
        inst.rates.push_back(rng.uniform(10.0, 80.0));
        inst.comm_costs.push_back(rng.uniform(0.1, 2.0));
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = inst.rates[j];
        view.procs[j].comm_estimate = inst.comm_costs[j];
        view.procs[j].comm_observations = 1;
      }
      for (std::size_t i = 0; i < kTinyTasks; ++i) {
        inst.task_sizes.push_back(rng.uniform(20.0, 500.0));
      }
      const double opt = metrics::optimal_makespan_exact(inst);

      exp::SchedulerParams opts;
      opts.set("batch_size", kTinyTasks);
      opts.set("max_generations", p.generations);
      opts.set("population", p.population);
      // One fixed batch covering the whole instance: the dynamic H rule
      // would schedule a processor-count-sized prefix only.
      opts.set("pn_dynamic_batch", false);
      const auto policy = exp::make_scheduler(cell.scheduler, opts);
      std::deque<workload::Task> q;
      for (std::size_t i = 0; i < kTinyTasks; ++i) {
        q.push_back(
            {static_cast<workload::TaskId>(i), inst.task_sizes[i], 0.0});
      }
      util::Rng prng(p.seed + 1000 + inst_i);
      const auto a = policy->invoke(view, q, prng);
      if (!q.empty()) {
        // A partial assignment would make the gap look better than the
        // exact optimum — surface it rather than scoring it silently.
        std::cerr << "warning: " << cell.scheduler << " left " << q.size()
                  << " tasks unscheduled on instance " << inst_i << "\n";
      }
      gaps[inst_i] = assignment_makespan(a, view, inst.task_sizes) / opt;
    };
    if (parallel && kInstances > 1) {
      util::global_pool().parallel_for(0, kInstances, body);
    } else {
      for (std::size_t i = 0; i < kInstances; ++i) body(i);
    }
    exp::CellOutcome out;
    out.extras = {
        {"mean_makespan_over_optimum", util::summarize(gaps).mean}};
    return out;
  });
  bench::BenchParams part1_p = p;
  part1_p.csv.reset();  // --csv/--json capture the Part 2 grid below
  part1_p.json.reset();
  bench::run_sweep(part1, part1_p);

  // ---- Part 2: certified lower-bound gap at simulation scale -----------
  std::cout << "\nPart 2 — `extgap` figure grid: full simulation ("
            << p.tasks << " tasks, " << p.procs
            << " processors) vs certified bounds lb_comb and lb_qp:\n";

  const exp::FigureDef& fig = exp::FigSet::instance().find("extgap");
  exp::Sweep part2 = fig.build(bench::to_scale(p));
  const exp::SweepResult r2 = bench::run_sweep(part2, p);
  fig.report(r2, bench::to_scale(p), std::cout);

  // Hard certificate check: relaxation_lower_bound folds the
  // combinatorial bound in, so lb_qp < lb_comb (beyond rounding) means
  // the bound stack itself is broken — fail the binary.
  bool dominance_broken = false;
  for (const auto& row : r2.rows) {
    if (row.extra("lb_qp") < row.extra("lb_comb") - 1e-9) {
      std::cerr << "error: cell " << row.index << " (" << row.scheduler
                << "): lb_qp=" << row.extra("lb_qp") << " < lb_comb="
                << row.extra("lb_comb") << " — certified bound regression\n";
      dominance_broken = true;
    }
  }
  if (dominance_broken) return 1;

  std::cout << "\nBoth Part 2 bounds ignore availability/queueing dynamics, "
               "so gap_pct includes\nboth scheduler suboptimality and bound "
               "looseness; Part 1 isolates the former.\n";
  return 0;
}
