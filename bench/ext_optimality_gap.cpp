// Extension: how near is "near-optimal"? §3 claims the scheduler "can
// produce near-optimal schedules" without quantifying the gap. Part 1
// measures every batch searcher against the *exact* optimum
// (branch-and-bound, metrics/bounds.hpp) on small single-batch
// instances. Part 2 measures full-simulation makespans against a valid
// makespan lower bound at realistic scale, where exact search is
// impossible.

#include <deque>
#include <iostream>

#include "bench_common.hpp"
#include "metrics/bounds.hpp"
#include "sim/cluster.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "optimality gap (SS3's 'near-optimal' claim, quantified)",
      "hypothesis: informed batch searchers land within a few percent of "
      "the exact optimum on small instances; at scale, makespans sit "
      "within a modest constant of the (loose) lower bound, with PN "
      "closest",
      p);

  // ---- Part 1: exact optimum on small single-batch instances ----------
  const std::size_t kInstances = p.full ? 40 : 15;
  const std::size_t kTinyTasks = 10;
  const std::size_t kTinyProcs = 3;

  std::cout << "Part 1 — single batch of " << kTinyTasks << " tasks on "
            << kTinyProcs << " processors, " << kInstances
            << " random instances, exact optimum by branch-and-bound:\n";

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep part1 = bench::make_sweep("optgap-exact", p, spec,
                                       /*mean_comm=*/10.0);
  part1.schedulers(exp::metaheuristic_schedulers());
  part1.extra_columns({"mean_makespan_over_optimum"});
  part1.runner([&](const exp::SweepCell& cell, bool parallel) {
    // Estimated makespan of one batch assignment under `view`.
    const auto assignment_makespan =
        [](const sim::BatchAssignment& a, const sim::SystemView& view,
           const std::vector<double>& sizes) {
          double ms = 0.0;
          for (std::size_t j = 0; j < view.size(); ++j) {
            double c = view.procs[j].pending_mflops / view.procs[j].rate;
            for (const auto id : a.per_proc[j]) {
              c += sizes[static_cast<std::size_t>(id)] /
                       view.procs[j].rate +
                   view.procs[j].comm_estimate;
            }
            ms = std::max(ms, c);
          }
          return ms;
        };
    std::vector<double> gaps(kInstances);
    auto body = [&](std::size_t inst_i) {
      util::Rng rng(p.seed + inst_i);
      metrics::BoundInstance inst;
      sim::SystemView view;
      view.procs.resize(kTinyProcs);
      for (std::size_t j = 0; j < kTinyProcs; ++j) {
        inst.rates.push_back(rng.uniform(10.0, 80.0));
        inst.comm_costs.push_back(rng.uniform(0.1, 2.0));
        view.procs[j].id = static_cast<sim::ProcId>(j);
        view.procs[j].rate = inst.rates[j];
        view.procs[j].comm_estimate = inst.comm_costs[j];
        view.procs[j].comm_observations = 1;
      }
      for (std::size_t i = 0; i < kTinyTasks; ++i) {
        inst.task_sizes.push_back(rng.uniform(20.0, 500.0));
      }
      const double opt = metrics::optimal_makespan_exact(inst);

      exp::SchedulerParams opts;
      opts.set("batch_size", kTinyTasks);
      opts.set("max_generations", p.generations);
      opts.set("population", p.population);
      // One fixed batch covering the whole instance: the dynamic H rule
      // would schedule a processor-count-sized prefix only.
      opts.set("pn_dynamic_batch", false);
      const auto policy = exp::make_scheduler(cell.scheduler, opts);
      std::deque<workload::Task> q;
      for (std::size_t i = 0; i < kTinyTasks; ++i) {
        q.push_back(
            {static_cast<workload::TaskId>(i), inst.task_sizes[i], 0.0});
      }
      util::Rng prng(p.seed + 1000 + inst_i);
      const auto a = policy->invoke(view, q, prng);
      if (!q.empty()) {
        // A partial assignment would make the gap look better than the
        // exact optimum — surface it rather than scoring it silently.
        std::cerr << "warning: " << cell.scheduler << " left " << q.size()
                  << " tasks unscheduled on instance " << inst_i << "\n";
      }
      gaps[inst_i] = assignment_makespan(a, view, inst.task_sizes) / opt;
    };
    if (parallel && kInstances > 1) {
      util::global_pool().parallel_for(0, kInstances, body);
    } else {
      for (std::size_t i = 0; i < kInstances; ++i) body(i);
    }
    exp::CellOutcome out;
    out.extras = {
        {"mean_makespan_over_optimum", util::summarize(gaps).mean}};
    return out;
  });
  bench::BenchParams part1_p = p;
  part1_p.csv.reset();  // --csv/--json capture the Part 2 grid below
  part1_p.json.reset();
  bench::run_sweep(part1, part1_p);

  // ---- Part 2: lower-bound gap at simulation scale ---------------------
  std::cout << "\nPart 2 — full simulation (" << p.tasks << " tasks, "
            << p.procs << " processors) vs makespan lower bound:\n";

  exp::Sweep part2 =
      bench::make_sweep("optgap-bound", p, spec, /*mean_comm=*/10.0);
  part2.schedulers({"PN", "EF", "MM", "RR"});
  part2.extra_columns({"mean_makespan_over_bound"});
  part2.runner([&](const exp::SweepCell& cell, bool parallel) {
    const auto runs = exp::run_replications(cell.scenario, cell.scheduler,
                                            cell.params, parallel);
    // Reconstruct each replication's cluster/workload with the runner's
    // documented stream discipline to compute its lower bound.
    double ratio = 0.0;
    for (std::size_t rep = 0; rep < runs.size(); ++rep) {
      const util::Rng base(cell.scenario.seed);
      util::Rng wrng = base.split(3 * rep);
      util::Rng crng = base.split(3 * rep + 1);
      const auto dist = exp::make_distribution(cell.scenario.workload);
      const auto wl =
          workload::generate(*dist, cell.scenario.workload.count, wrng);
      const auto cluster = sim::build_cluster(cell.scenario.cluster, crng);
      metrics::BoundInstance inst;
      for (const auto& task : wl.tasks) {
        inst.task_sizes.push_back(task.size_mflops);
      }
      for (std::size_t j = 0; j < cluster.size(); ++j) {
        inst.rates.push_back(cluster.processors[j].base_rate);
        inst.comm_costs.push_back(
            cluster.comm->true_mean(static_cast<sim::ProcId>(j)));
      }
      ratio += runs[rep].makespan / metrics::makespan_lower_bound(inst);
    }
    exp::CellOutcome out;
    out.summary = metrics::aggregate(cell.scheduler, runs);
    out.extras = {{"mean_makespan_over_bound",
                   ratio / static_cast<double>(runs.size())}};
    return out;
  });
  bench::run_sweep(part2, p);

  std::cout << "\nThe Part 2 bound ignores availability/queueing dynamics, "
               "so ratios include\nboth scheduler suboptimality and bound "
               "looseness; Part 1 isolates the former.\n";
  return 0;
}
