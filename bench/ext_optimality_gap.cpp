// Extension: how near is "near-optimal"? §3 claims the scheduler "can
// produce near-optimal schedules" without quantifying the gap. Part 1
// measures every batch searcher against the *exact* optimum
// (branch-and-bound, metrics/bounds.hpp) on small single-batch
// instances. Part 2 measures full-simulation makespans against a valid
// makespan lower bound at realistic scale, where exact search is
// impossible.

#include <iostream>

#include "bench_common.hpp"
#include "metrics/bounds.hpp"
#include "sim/cluster.hpp"
#include "workload/generator.hpp"

using namespace gasched;

namespace {

/// Estimated makespan of one batch assignment under `view`.
double assignment_makespan(const sim::BatchAssignment& a,
                           const sim::SystemView& view,
                           const std::vector<double>& sizes) {
  double ms = 0.0;
  for (std::size_t j = 0; j < view.size(); ++j) {
    double c = view.procs[j].pending_mflops / view.procs[j].rate;
    for (const auto id : a.per_proc[j]) {
      c += sizes[static_cast<std::size_t>(id)] / view.procs[j].rate +
           view.procs[j].comm_estimate;
    }
    ms = std::max(ms, c);
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "optimality gap (SS3's 'near-optimal' claim, quantified)",
      "hypothesis: informed batch searchers land within a few percent of "
      "the exact optimum on small instances; at scale, makespans sit "
      "within a modest constant of the (loose) lower bound, with PN "
      "closest",
      p);

  // ---- Part 1: exact optimum on small single-batch instances ----------
  const std::size_t kInstances = p.full ? 40 : 15;
  const std::size_t kTinyTasks = 10;
  const std::size_t kTinyProcs = 3;
  const auto kinds = exp::metaheuristic_schedulers();

  std::vector<double> gap_sum(kinds.size(), 0.0);
  for (std::size_t inst_i = 0; inst_i < kInstances; ++inst_i) {
    util::Rng rng(p.seed + inst_i);
    metrics::BoundInstance inst;
    sim::SystemView view;
    view.procs.resize(kTinyProcs);
    for (std::size_t j = 0; j < kTinyProcs; ++j) {
      inst.rates.push_back(rng.uniform(10.0, 80.0));
      inst.comm_costs.push_back(rng.uniform(0.1, 2.0));
      view.procs[j].id = static_cast<sim::ProcId>(j);
      view.procs[j].rate = inst.rates[j];
      view.procs[j].comm_estimate = inst.comm_costs[j];
      view.procs[j].comm_observations = 1;
    }
    for (std::size_t i = 0; i < kTinyTasks; ++i) {
      inst.task_sizes.push_back(rng.uniform(20.0, 500.0));
    }
    const double opt = metrics::optimal_makespan_exact(inst);

    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
      exp::SchedulerParams opts;
      opts.set("batch_size", kTinyTasks);
      opts.set("max_generations", p.generations);
      opts.set("population", p.population);
      // One fixed batch covering the whole instance: the dynamic H rule
      // would schedule a processor-count-sized prefix only.
      opts.set("pn_dynamic_batch", false);
      const auto policy = exp::make_scheduler(kinds[ki], opts);
      std::deque<workload::Task> q;
      for (std::size_t i = 0; i < kTinyTasks; ++i) {
        q.push_back(
            {static_cast<workload::TaskId>(i), inst.task_sizes[i], 0.0});
      }
      util::Rng prng(p.seed + 1000 + inst_i);
      const auto a = policy->invoke(view, q, prng);
      if (!q.empty()) {
        std::cerr << "warning: " << kinds[ki]
                  << " left " << q.size() << " tasks unscheduled\n";
      }
      gap_sum[ki] += assignment_makespan(a, view, inst.task_sizes) / opt;
    }
  }

  std::cout << "Part 1 — single batch of " << kTinyTasks << " tasks on "
            << kTinyProcs << " processors, " << kInstances
            << " random instances, exact optimum by branch-and-bound:\n";
  util::Table t1({"scheduler", "mean makespan / optimum"});
  std::vector<std::vector<double>> csv_rows;
  for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
    const double g = gap_sum[ki] / static_cast<double>(kInstances);
    t1.add_row(kinds[ki], {g});
    csv_rows.push_back({static_cast<double>(ki), g});
  }
  t1.print(std::cout);

  // ---- Part 2: lower-bound gap at simulation scale ---------------------
  std::cout << "\nPart 2 — full simulation (" << p.tasks << " tasks, "
            << p.procs << " processors) vs makespan lower bound:\n";
  exp::Scenario s;
  s.name = "optgap";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.seed = p.seed;
  s.replications = p.reps;
  const auto opts = bench::scheduler_params(p);

  // Reconstruct each replication's cluster/workload with the runner's
  // documented stream discipline to compute its lower bound.
  std::vector<double> bounds(p.reps);
  for (std::size_t rep = 0; rep < p.reps; ++rep) {
    const util::Rng base(s.seed);
    util::Rng wrng = base.split(3 * rep);
    util::Rng crng = base.split(3 * rep + 1);
    const auto dist = exp::make_distribution(s.workload);
    const auto wl = workload::generate(*dist, s.workload.count, wrng);
    const auto cluster = sim::build_cluster(s.cluster, crng);
    metrics::BoundInstance inst;
    for (const auto& task : wl.tasks) inst.task_sizes.push_back(task.size_mflops);
    for (std::size_t j = 0; j < cluster.size(); ++j) {
      inst.rates.push_back(cluster.processors[j].base_rate);
      inst.comm_costs.push_back(
          cluster.comm->true_mean(static_cast<sim::ProcId>(j)));
    }
    bounds[rep] = metrics::makespan_lower_bound(inst);
  }

  util::Table t2({"scheduler", "mean makespan / lower bound"});
  std::size_t row = 0;
  for (const std::string kind : {"PN", "EF", "MM", "RR"}) {
    const auto runs = exp::run_replications(s, kind, opts);
    double ratio = 0.0;
    for (std::size_t rep = 0; rep < runs.size(); ++rep) {
      ratio += runs[rep].makespan / bounds[rep];
    }
    ratio /= static_cast<double>(runs.size());
    t2.add_row(kind, {ratio});
    csv_rows.push_back({100.0 + static_cast<double>(row++), ratio});
  }
  t2.print(std::cout);
  bench::maybe_write_csv(p, {"row", "ratio"}, csv_rows);
  std::cout << "\nThe Part 2 bound ignores availability/queueing dynamics, "
               "so ratios include\nboth scheduler suboptimality and bound "
               "looseness; Part 1 isolates the former.\n";
  return 0;
}
