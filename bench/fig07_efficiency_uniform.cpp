// Figure 7: efficiency of the seven schedulers with uniformly distributed
// task sizes (10–1000 MFLOPs) and varying communication costs.
//
// Paper result: the two meta-heuristic schedulers (PN and ZO) clearly
// provide more efficient schedules than the simple heuristics.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                               /*generations=*/120);
  if (p.full) p.tasks = 1000;
  p.pn_dynamic_batch = false;  // fixed batch of 200, as in Fig 5
  bench::print_banner(
      "Figure 7", "efficiency vs 1/mean comm cost (uniform 10-1000)",
      "the meta-heuristic schedulers (PN, ZO) are clearly more efficient "
      "than the simple heuristics",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 1000.0;

  const std::vector<double> inv_costs =
      p.full ? std::vector<double>{0.01, 0.02, 0.03, 0.04, 0.05,
                                   0.06, 0.07, 0.08, 0.09, 0.10}
             : std::vector<double>{0.01, 0.025, 0.05, 0.075, 0.10};

  const auto rows = bench::run_efficiency_sweep(p, spec, inv_costs);

  // Shape check: mean efficiency of {PN, ZO} vs best simple heuristic.
  double meta = 0.0, heuristic = 0.0;
  for (const auto& row : rows) {
    meta += 0.5 * (row[4] + row[5]);  // ZO + PN
    double best_simple = 0.0;
    for (const std::size_t c : {1u, 2u, 3u, 6u, 7u}) {
      best_simple = std::max(best_simple, row[c]);
    }
    heuristic += best_simple;
  }
  std::cout << "\nMean meta-heuristic efficiency "
            << util::fmt(meta / rows.size(), 4)
            << " vs best simple heuristic "
            << util::fmt(heuristic / rows.size(), 4) << "\n";
  return 0;
}
