// Figure 7: efficiency of the seven schedulers with uniformly distributed
// task sizes (10–1000 MFLOPs) and varying communication costs.
//
// The grid and pivoted report live in exp::FigSet (src/exp/figset.cpp,
// id "fig07"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig07", argc, argv);
}
