// Extension: federated multi-cluster scheduling (fed::Federation).
//
// Three clusters with their own schedulers share one arrival stream split
// by a capacity-weighted router that deliberately overloads the first
// cluster; the sweep compares spillover/migration policies (none /
// threshold / steal / broadcast) across link topologies (full mesh /
// star). Expectation: every policy completes every task (conservation is
// a hard invariant — the bench fails otherwise), and migration relieves
// the overloaded cluster, cutting federation makespan versus `none`.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "bench_common.hpp"
#include "fed/federation.hpp"

using namespace gasched;

namespace {

fed::FederationConfig make_fed(const bench::BenchParams& p,
                               const std::string& cluster_scheduler,
                               const std::string& migration,
                               const std::string& topology) {
  fed::FederationConfig cfg;
  cfg.name = "ext_federation";
  const std::size_t procs_per_cluster =
      std::max<std::size_t>(4, p.procs / 3);
  const char* names[] = {"edge", "core", "burst"};
  for (std::size_t k = 0; k < 3; ++k) {
    fed::ClusterSpec spec;
    spec.name = names[k];
    spec.cluster.num_processors = procs_per_cluster;
    spec.cluster.comm.mean_cost = 5.0;
    // Default MM: its batches leave a visible unscheduled queue between
    // invocations — the spillover signal the migration policies act on.
    // --cluster-scheduler RR switches to an O(1)-per-task policy for
    // cloud-scale runs (≥1M tasks) where the event core is the subject.
    spec.scheduler = cluster_scheduler;
    spec.weight = k == 0 ? 4.0 : 1.0;  // overload `edge`
    cfg.clusters.push_back(std::move(spec));
  }
  cfg.router = fed::RouterKind::kWeighted;
  if (migration == "none") {
    cfg.migration = fed::MigrationKind::kNone;
  } else if (migration == "threshold") {
    cfg.migration = fed::MigrationKind::kThreshold;
  } else if (migration == "steal") {
    cfg.migration = fed::MigrationKind::kSteal;
  } else {
    cfg.migration = fed::MigrationKind::kBroadcast;
  }
  cfg.migration_threshold = 16;
  cfg.migration_chunk = 16;
  // star(hub=edge) vs full_mesh: with three clusters a ring *is* a full
  // mesh, so the star (no core↔burst link — relief traffic must transit
  // the overloaded hub) is the topology that actually differs.
  cfg.topology = topology == "star" ? fed::Topology::star(3, 0)
                                    : fed::Topology::full_mesh(3);
  cfg.workload.dist = "uniform";
  cfg.workload.param_a = 10.0;
  cfg.workload.param_b = 1000.0;
  cfg.workload.count = p.tasks;
  cfg.scheduler_params = bench::scheduler_params(p);
  cfg.seed = p.seed;
  cfg.replications = p.reps;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/600, /*reps=*/2,
                                     /*generations=*/100);
  const util::Cli cli(argc, argv);
  const std::string cluster_scheduler = cli.get("cluster-scheduler", "MM");
  bench::print_banner(
      "Extension", "federated multi-cluster scheduling",
      "hypothesis: task conservation holds under every migration policy, "
      "and spillover migration relieves the overloaded cluster (lower "
      "federation makespan than isolated `none`)",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "uniform";
  spec.param_a = 10.0;
  spec.param_b = 1000.0;

  exp::Sweep sweep = bench::make_sweep("federation", p, spec,
                                       /*mean_comm=*/5.0);
  sweep.axis("topology", {exp::Sweep::Value{"full_mesh", {}},
                          exp::Sweep::Value{"star", {}}});
  sweep.axis("migration", {exp::Sweep::Value{"none", {}},
                           exp::Sweep::Value{"threshold", {}},
                           exp::Sweep::Value{"steal", {}},
                           exp::Sweep::Value{"broadcast", {}}});
  sweep.extra_columns({"migrations", "link_busy", "edge_completed"});
  sweep.runner([&](const exp::SweepCell& cell, bool parallel) {
    const fed::FederationConfig cfg = make_fed(
        p, cluster_scheduler, cell.coord("migration"), cell.coord("topology"));
    const auto runs = fed::run_federation_replications(cfg, parallel);
    std::vector<sim::SimulationResult> flat;
    double migrations = 0.0, link_busy = 0.0, edge_completed = 0.0;
    for (const fed::FederationResult& r : runs) {
      flat.push_back(r.as_simulation_result());
      migrations += static_cast<double>(r.migrations);
      link_busy += r.link_busy_seconds;
      edge_completed += static_cast<double>(r.clusters[0].sim.tasks_completed);
    }
    const double n = static_cast<double>(runs.size());
    exp::CellOutcome out;
    out.summary = metrics::aggregate(cell.coord("migration"), flat);
    out.extras = {{"migrations", migrations / n},
                  {"link_busy", link_busy / n},
                  {"edge_completed", edge_completed / n}};
    return out;
  });
  const auto result = bench::run_sweep(sweep, p);

  const auto coord = [](const metrics::SweepRow& row,
                        const std::string& axis) -> const std::string& {
    for (const auto& [name, label] : row.coords) {
      if (name == axis) return label;
    }
    throw std::out_of_range("ext_federation: no axis " + axis);
  };

  // Hard invariant: no policy may lose or duplicate a task.
  bool conserved = true;
  for (const auto& row : result.rows) {
    if (row.cell.completed.min < static_cast<double>(p.tasks) ||
        row.cell.completed.max > static_cast<double>(p.tasks)) {
      std::cerr << "ERROR: task conservation violated (topology="
                << coord(row, "topology") << ", migration="
                << coord(row, "migration") << ")\n";
      conserved = false;
    }
  }

  // Comparative summary per topology: makespan of each policy vs `none`.
  util::Table table({"topology/migration", "makespan", "vs none",
                     "migrations", "edge share"});
  for (const std::string topo : {"full_mesh", "star"}) {
    const auto rows = result.where("topology", topo);
    double none_makespan = 0.0;
    for (const auto* row : rows) {
      if (coord(*row, "migration") == "none") {
        none_makespan = row->cell.makespan.mean;
      }
    }
    for (const auto* row : rows) {
      table.add_row(topo + "/" + coord(*row, "migration"),
                    {row->cell.makespan.mean,
                     none_makespan > 0.0
                         ? row->cell.makespan.mean / none_makespan
                         : 0.0,
                     row->extra("migrations"),
                     row->extra("edge_completed") /
                         static_cast<double>(p.tasks)});
    }
  }
  std::cout << "\n";
  table.print(std::cout);

  if (!conserved) return 1;
  std::cout << "shape check: OK — all " << result.rows.size()
            << " cells completed every task\n";
  return 0;
}
