// Extension: scalability in the processor count. The paper reports
// results for "up to 50 heterogeneous processors"; this bench sweeps M
// and reports makespan and efficiency for PN against a fast immediate
// heuristic (EF) and a batch heuristic (MM). Ideal strong scaling would
// halve the makespan when M doubles; the efficiency column shows how
// much of that each scheduler keeps as coordination and communication
// overheads grow with M.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Extension", "processor-count scaling (M = 5..50)",
      "literature-consistent hypothesis: makespan falls ~1/M while the "
      "cluster stays work-starved; PN holds the best efficiency at every "
      "M; the PN advantage widens with M as placement mistakes compound",
      p);

  const std::vector<std::string> kinds{
      "PN", "EF",
      "MM"};

  const auto opts = bench::scheduler_params(p);
  util::Table table({"procs", "scheduler", "makespan", "ci95", "efficiency"});
  std::vector<std::vector<double>> csv_rows;
  std::vector<double> pn_by_m;
  for (const std::size_t procs : {5u, 10u, 20u, 35u, 50u}) {
    exp::Scenario s;
    s.name = "scalability";
    s.cluster = exp::paper_cluster(10.0, procs);
    s.workload.dist = "normal";
    s.workload.param_a = 1000.0;
    s.workload.param_b = 9e5;
    s.workload.count = p.tasks;
    s.seed = p.seed;
    s.replications = p.reps;

    for (std::size_t ki = 0; ki < kinds.size(); ++ki) {
      const auto& kind = kinds[ki];
      const auto cell = exp::run_cell(s, kind, opts);
      table.add_row({std::to_string(procs), cell.scheduler,
                     util::fmt(cell.makespan.mean), util::fmt(cell.makespan.ci95),
                     util::fmt(cell.efficiency.mean)});
      csv_rows.push_back({static_cast<double>(procs),
                          static_cast<double>(ki), cell.makespan.mean,
                          cell.efficiency.mean});
      if (kind == "PN") pn_by_m.push_back(cell.makespan.mean);
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"procs", "scheduler_index", "makespan", "efficiency"}, csv_rows);
  if (pn_by_m.size() >= 2) {
    std::cout << "\nPN makespan M=5 over M=50: "
              << util::fmt(pn_by_m.front() / pn_by_m.back(), 3)
              << "x (close to 10x = ideal scaling).\n";
  }
  return 0;
}
