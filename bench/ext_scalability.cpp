// Extension: scalability in the processor count. The paper reports
// results for "up to 50 heterogeneous processors"; this bench sweeps M
// and reports makespan and efficiency for PN against a fast immediate
// heuristic (EF) and a batch heuristic (MM). Ideal strong scaling would
// halve the makespan when M doubles; the efficiency column shows how
// much of that each scheduler keeps as coordination and communication
// overheads grow with M.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/80);
  bench::print_banner(
      "Extension", "processor-count scaling (M = 5..50)",
      "literature-consistent hypothesis: makespan falls ~1/M while the "
      "cluster stays work-starved; PN holds the best efficiency at every "
      "M; the PN advantage widens with M as placement mistakes compound",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;

  exp::Sweep sweep =
      bench::make_sweep("scalability", p, spec, /*mean_comm=*/10.0);
  sweep.axis("procs", {5, 10, 20, 35, 50},
             [](exp::SweepCell& c, double m) {
               c.scenario.cluster.num_processors =
                   static_cast<std::size_t>(m);
             });
  sweep.schedulers({"PN", "EF", "MM"});
  const auto result = bench::run_sweep(sweep, p);

  std::vector<double> pn_by_m;
  for (const auto& row : result.rows) {
    if (row.scheduler == "PN") pn_by_m.push_back(row.cell.makespan.mean);
  }
  if (pn_by_m.size() >= 2) {
    std::cout << "\nPN makespan M=5 over M=50: "
              << util::fmt(pn_by_m.front() / pn_by_m.back(), 3)
              << "x (close to 10x = ideal scaling).\n";
  }
  return 0;
}
