// Extension: the dynamic setting the scheduler is designed for. Unlike
// the paper's experiments (§4.2, all tasks present at t = 0), tasks here
// arrive continuously — the scheduler must operate on-line, exactly the
// §3 protocol. Reports makespan, efficiency, and mean task response time
// per scheduler across four arrival regimes at the same mean rate, all
// realised by the shared workload::ArrivalSource λ(t) implementation
// (workload/arrival.hpp, also the serving runtime's arrival source):
// plain Poisson, bursty (two-state MMPP), diurnal λ(t), and a flash
// crowd.

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "streaming (Poisson) task arrivals",
      "paper-consistent hypothesis: PN retains its lead when tasks arrive "
      "continuously rather than all at t=0; response time matters here",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "normal";
  spec.param_a = 1000.0;
  spec.param_b = 9e5;
  spec.all_at_start = false;
  // Keep the system loaded: mean service need per task ≈ 1256 MFLOPs /
  // (55 Mflop/s avg rate) ≈ 23 s across `procs` processors.
  spec.mean_interarrival =
      23.0 / static_cast<double>(p.procs) * 0.7;  // ~70% offered load

  exp::Sweep sweep =
      bench::make_sweep("streaming", p, spec, /*mean_comm=*/10.0);
  // Four regimes at the same mean rate: plain Poisson; bursty MMPP (the
  // clumping real submission streams show; dwell ≈ 30 mean
  // inter-arrivals, so each ON burst carries a few dozen tasks); a
  // diurnal λ(t) cycle spanning the run; and a mid-run flash crowd.
  sweep.axis(
      "arrivals",
      {exp::Sweep::Value{"poisson",
                         [](exp::SweepCell& c) {
                           c.scenario.workload.burstiness = 1.0;
                         }},
       exp::Sweep::Value{"bursty x8",
                         [](exp::SweepCell& c) {
                           c.scenario.workload.burstiness = 8.0;
                           c.scenario.workload.burst_dwell =
                               30.0 * c.scenario.workload.mean_interarrival;
                         }},
       exp::Sweep::Value{"diurnal",
                         [](exp::SweepCell& c) {
                           auto& w = c.scenario.workload;
                           w.arrival = "diurnal";
                           // One full cycle over the expected arrival span.
                           w.params.set("arrival_period",
                                        w.mean_interarrival *
                                            static_cast<double>(w.count));
                           w.params.set("arrival_amplitude", 0.8);
                         }},
       exp::Sweep::Value{"flash x10", [](exp::SweepCell& c) {
                           auto& w = c.scenario.workload;
                           w.arrival = "flash";
                           const double span =
                               w.mean_interarrival *
                               static_cast<double>(w.count);
                           // A single 10x spike over the middle tenth.
                           w.params.set("arrival_flash_start", 0.45 * span);
                           w.params.set("arrival_flash_width", 0.1 * span);
                           w.params.set("arrival_flash_mult", 10.0);
                         }}});
  sweep.schedulers(exp::all_schedulers());
  bench::run_sweep(sweep, p);
  return 0;
}
