// Extension: the dynamic setting the scheduler is designed for. Unlike
// the paper's experiments (§4.2, all tasks present at t = 0), tasks here
// arrive continuously as a Poisson process — the scheduler must operate
// on-line, exactly the §3 protocol. Reports makespan, efficiency, and
// mean task response time per scheduler.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/800, /*reps=*/3,
                                     /*generations=*/100);
  bench::print_banner(
      "Extension", "streaming (Poisson) task arrivals",
      "paper-consistent hypothesis: PN retains its lead when tasks arrive "
      "continuously rather than all at t=0; response time matters here",
      p);

  exp::Scenario s;
  s.name = "streaming";
  s.cluster = exp::paper_cluster(10.0, p.procs);
  s.workload.dist = "normal";
  s.workload.param_a = 1000.0;
  s.workload.param_b = 9e5;
  s.workload.count = p.tasks;
  s.workload.all_at_start = false;
  // Keep the system loaded: mean service need per task ≈ 1256 MFLOPs /
  // (55 Mflop/s avg rate) ≈ 23 s across `procs` processors.
  s.workload.mean_interarrival =
      23.0 / static_cast<double>(p.procs) * 0.7;  // ~70% offered load
  s.seed = p.seed;
  s.replications = p.reps;

  const auto opts = bench::scheduler_params(p);
  util::Table table({"arrivals", "scheduler", "makespan", "efficiency",
                     "mean_response", "invocations"});
  std::vector<std::vector<double>> csv_rows;
  // Poisson arrivals, then bursty (two-state MMPP) arrivals at the same
  // mean rate — the clumping real submission streams show.
  for (const double burstiness : {1.0, 8.0}) {
    s.workload.burstiness = burstiness;
    // Dwell ≈ 30 mean inter-arrivals, so each ON burst carries a few
    // dozen tasks.
    s.workload.burst_dwell = 30.0 * s.workload.mean_interarrival;
    const std::string label = burstiness > 1.0 ? "bursty x8" : "poisson";
    for (const auto kind : exp::all_schedulers()) {
      const auto cell = exp::run_cell(s, kind, opts);
      table.add_row({label, cell.scheduler, util::fmt(cell.makespan.mean),
                     util::fmt(cell.efficiency.mean),
                     util::fmt(cell.response.mean),
                     util::fmt(cell.invocations.mean)});
      csv_rows.push_back({burstiness, static_cast<double>(csv_rows.size()),
                          cell.makespan.mean, cell.efficiency.mean,
                          cell.response.mean});
    }
  }
  table.print(std::cout);
  bench::maybe_write_csv(
      p, {"burstiness", "row", "makespan", "efficiency", "mean_response"},
      csv_rows);
  return 0;
}
