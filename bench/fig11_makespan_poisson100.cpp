// Figure 11: makespan with Poisson-distributed task sizes, mean 100
// MFLOPs.
//
// Paper result: the batch schedulers (PN, ZO, MM, MX) all perform well;
// the immediate-mode schedulers (EF, LL, RR) do not perform as well.

#include <iostream>

#include "bench_common.hpp"

using namespace gasched;

int main(int argc, char** argv) {
  const auto p = bench::parse_params(argc, argv, /*tasks=*/1000, /*reps=*/3,
                                     /*generations=*/120);
  bench::print_banner(
      "Figure 11", "makespan bars (Poisson task sizes, mean 100 MFLOPs)",
      "batch schedulers all perform well; immediate-mode schedulers trail",
      p);

  exp::WorkloadSpec spec;
  spec.dist = "poisson";
  spec.param_a = 100.0;

  const auto means = bench::run_makespan_bars(p, spec, /*mean_comm=*/1.0);
  // EF LL RR ZO PN MM MX — compare batch (3,4,5,6) vs immediate (0,1,2).
  const double batch =
      (means[3] + means[4] + means[5] + means[6]) / 4.0;
  const double immediate = (means[0] + means[1] + means[2]) / 3.0;
  std::cout << "\nMean batch makespan " << util::fmt(batch, 5)
            << " vs immediate " << util::fmt(immediate, 5)
            << " (batch <= immediate expected)\n";
  return 0;
}
