// Figure 11: makespan with Poisson-distributed task sizes, mean 100
// MFLOPs.
//
// The grid and shape check live in exp::FigSet (src/exp/figset.cpp,
// id "fig11"); this binary is a thin driver so the figure also runs
// under tools/figset.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  return gasched::bench::run_figure("fig11", argc, argv);
}
