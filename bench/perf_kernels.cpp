// SIMD-kernel and numeric-mode throughput probe: the perf anchor behind
// the perf_kernels section of BENCH_eval.json (see scripts/bench_perf.sh
// and docs/evaluation.md "Numeric modes").
//
// Measures, on the perf_eval pinned fixture (seeds 1/2/3):
//
//   kernels[]   ns/op of each SIMD primitive (core/kernels.hpp) on the
//               active ISA vs the unrolled-scalar fallback, at pricing-
//               shaped sizes (a queue gather over a cost pane, the
//               completion-lane reduction)
//   ga[]        exact- vs fast-mode GA generation throughput at
//               H=200 and H=600 (fixed M=50, population 20), the
//               fast/exact speedup, fast-mode steady-state allocations
//               per generation (differenced G vs 2G so warm-up lane
//               growth cancels; must be 0.00), and the tolerance audit's
//               sample count and max relative deviation for the fast runs
//
// `--report` prints the machine stanza (compiled + runtime CPU features,
// active kernel ISA, GASCHED_NATIVE) and exits — the ledger provenance
// hook. The probe itself exits non-zero if the audit saw a deviation
// above tolerance, so CI can gate on plain exit status.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "core/fitness.hpp"
#include "core/init.hpp"
#include "core/kernels.hpp"
#include "core/numeric.hpp"
#include "ga/engine.hpp"
#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<unsigned long long> g_allocs{0};

}  // namespace

// Counting hook: every heap allocation in the process bumps the counter.
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace gasched;
namespace kernels = core::kernels;

struct Options {
  std::size_t procs = 50;
  std::size_t population = 20;
  /// Generations of the H=200 case; the H=600 case runs half as many.
  std::size_t generations = 300;
  double tolerance = 1e-12;
  bool report = false;
  std::string label = "current";
};

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto num = [&](std::size_t& out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_kernels: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      out = std::strtoul(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--report") == 0) {
      o.report = true;
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      num(o.generations);
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      num(o.procs);
    } else if (std::strcmp(argv[i], "--population") == 0) {
      num(o.population);
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      o.tolerance = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      o.label = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: perf_kernels [--report] [--generations G] "
                   "[--procs M] [--population P] [--tolerance T] "
                   "[--label L]\n");
      std::exit(2);
    }
  }
  return o;
}

void print_machine(FILE* out) {
  const kernels::CpuFeatures f = kernels::cpu_features();
  std::fprintf(out,
               "{\"active_isa\":\"%s\",\"compiled_avx2\":%s,"
               "\"compiled_neon\":%s,\"runtime_avx2\":%s,"
               "\"runtime_neon\":%s,\"native_build\":%s}",
               kernels::isa_name(kernels::active_isa()),
               f.compiled_avx2 ? "true" : "false",
               f.compiled_neon ? "true" : "false",
               f.runtime_avx2 ? "true" : "false",
               f.runtime_neon ? "true" : "false",
               f.native_build ? "true" : "false");
}

// --- kernel micro-timings ---------------------------------------------------

/// Median-of-3 ns/op of `body` (called `iters` times per rep), with a
/// volatile sink so the summations cannot be dead-code eliminated.
template <typename F>
double ns_per_op(std::size_t iters, F&& body) {
  volatile double sink = 0.0;
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < iters; ++k) sink = sink + body();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() /
        static_cast<double>(iters);
    best = std::min(best, ns);
  }
  (void)sink;
  return best;
}

struct KernelRow {
  const char* kernel;
  std::size_t n;
  double ns_active;
  double ns_scalar;
};

std::vector<KernelRow> time_kernels() {
  // Pricing-shaped inputs: a 600-slot cost pane, a 200-slot queue gather
  // (H=200 batches put ~H/M slots per queue, but the batched path gathers
  // every queue of every lane — per-slot cost is what matters), and an
  // M=50 completion-lane reduction.
  util::Rng rng(7);
  std::vector<double> pane(600);
  for (auto& v : pane) v = rng.uniform(0.0, 10.0);
  std::vector<std::size_t> idx(200);
  for (auto& i : idx) i = rng.index(pane.size());
  std::vector<double> lane(50);
  for (auto& v : lane) v = rng.uniform(0.0, 100.0);

  const kernels::Isa active = kernels::active_isa();
  const kernels::Isa scalar = kernels::Isa::kScalar;
  const std::size_t iters = 200000;

  std::vector<KernelRow> rows;
  rows.push_back({"sum_gather", idx.size(),
                  ns_per_op(iters,
                            [&] {
                              return kernels::sum_gather_isa(
                                  active, pane.data(), idx.data(), idx.size());
                            }),
                  ns_per_op(iters, [&] {
                    return kernels::sum_gather_isa(scalar, pane.data(),
                                                   idx.data(), idx.size());
                  })});
  rows.push_back({"sum_range", pane.size(),
                  ns_per_op(iters,
                            [&] {
                              return kernels::sum_range_isa(active, pane.data(),
                                                            pane.size());
                            }),
                  ns_per_op(iters, [&] {
                    return kernels::sum_range_isa(scalar, pane.data(),
                                                  pane.size());
                  })});
  rows.push_back({"reduce_deviation", lane.size(),
                  ns_per_op(iters,
                            [&] {
                              return kernels::reduce_deviation_isa(
                                         active, lane.data(), lane.size(), 42.0)
                                  .sum_sq;
                            }),
                  ns_per_op(iters, [&] {
                    return kernels::reduce_deviation_isa(scalar, lane.data(),
                                                         lane.size(), 42.0)
                        .sum_sq;
                  })});
  return rows;
}

// --- GA exact-vs-fast -------------------------------------------------------

/// (wall seconds, allocations, generations) of one GA run on the pinned
/// fixture, built fresh per call with the requested numeric mode.
std::tuple<double, unsigned long long, std::size_t> run_ga(
    const Options& o, std::size_t tasks, std::size_t generations,
    core::NumericMode mode) {
  // Pinned fixture (seeds match perf_eval / micro_ga_ops' BatchFixture).
  util::Rng fixture_rng(1);
  std::vector<double> sizes(tasks);
  for (auto& v : sizes) v = fixture_rng.uniform(10.0, 1000.0);
  sim::SystemView view;
  view.procs.resize(o.procs);
  for (std::size_t j = 0; j < o.procs; ++j) {
    view.procs[j].id = static_cast<sim::ProcId>(j);
    view.procs[j].rate = fixture_rng.uniform(10.0, 100.0);
    view.procs[j].comm_estimate = fixture_rng.uniform(1.0, 50.0);
  }
  const core::ScheduleCodec codec(tasks, o.procs);
  const core::ScheduleEvaluator eval(std::move(sizes), view,
                                     /*use_comm=*/true, mode);
  const core::ScheduleProblem problem(codec, eval);
  static const ga::RouletteSelection kSelection;
  static const ga::CycleCrossover kCrossover;
  static const ga::SwapMutation kMutation;
  ga::GaConfig cfg;
  cfg.population = o.population;
  cfg.max_generations = generations;
  // Trajectory-independent workload: always cross over (every offspring
  // is dirty, so every generation prices the full population through the
  // mode under test) and skip the improvement passes (whose delta-pricing
  // work depends on how converged the trajectory happens to be — and
  // exact/fast trajectories diverge, which would make the differenced
  // gens/sec compare different amounts of work instead of the same
  // pricing done two ways).
  cfg.crossover_rate = 1.0;
  cfg.improvement_passes = 0;
  cfg.numeric_mode = mode;
  const ga::GaEngine engine(cfg, kSelection, kCrossover, kMutation);
  util::Rng init_rng(2);
  auto init =
      core::initial_population(codec, eval, o.population, 0.5, init_rng);
  util::Rng ga_rng(3);
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned long long a0 = g_allocs.load(std::memory_order_relaxed);
  const ga::GaResult r = engine.run(problem, std::move(init), ga_rng);
  const unsigned long long a1 = g_allocs.load(std::memory_order_relaxed);
  const auto t1 = std::chrono::steady_clock::now();
  return {std::chrono::duration<double>(t1 - t0).count(), a1 - a0,
          r.generations};
}

// Isolated population-pricing throughput: the same ScheduleProblem
// evaluate_batch API in both modes (exact falls back to the per-
// individual loop), on a fixed population block, workspace reused — no
// selection/crossover in the loop, so this measures the pricing path the
// numeric mode actually changes. The end-to-end gens/sec below wraps the
// same pricing in the full GA loop, whose other stages dilute the
// speedup (Amdahl).
double pricing_evals_per_sec(const Options& o, std::size_t tasks,
                             core::NumericMode mode) {
  util::Rng fixture_rng(1);
  std::vector<double> sizes(tasks);
  for (auto& v : sizes) v = fixture_rng.uniform(10.0, 1000.0);
  sim::SystemView view;
  view.procs.resize(o.procs);
  for (std::size_t j = 0; j < o.procs; ++j) {
    view.procs[j].id = static_cast<sim::ProcId>(j);
    view.procs[j].rate = fixture_rng.uniform(10.0, 100.0);
    view.procs[j].comm_estimate = fixture_rng.uniform(1.0, 50.0);
  }
  const core::ScheduleCodec codec(tasks, o.procs);
  const core::ScheduleEvaluator eval(std::move(sizes), view,
                                     /*use_comm=*/true, mode);
  const core::ScheduleProblem problem(codec, eval);
  util::Rng init_rng(2);
  const auto pop =
      core::initial_population(codec, eval, o.population, 0.5, init_rng);
  std::vector<std::size_t> indices(pop.size());
  for (std::size_t k = 0; k < indices.size(); ++k) indices[k] = k;
  const auto ws = problem.make_workspace();
  std::vector<ga::GaProblem::Evaluation> out(pop.size());

  // Warm-up (lane growth, code), then size the rep count to ~0.2 s.
  problem.evaluate_batch(pop, indices, ws.get(), out.data());
  const auto p0 = std::chrono::steady_clock::now();
  problem.evaluate_batch(pop, indices, ws.get(), out.data());
  const auto p1 = std::chrono::steady_clock::now();
  const double per_batch =
      std::max(std::chrono::duration<double>(p1 - p0).count(), 1e-9);
  const auto reps = static_cast<std::size_t>(
      std::max(1.0, std::min(0.2 / per_batch, 1e6)));

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    problem.evaluate_batch(pop, indices, ws.get(), out.data());
  }
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(reps * pop.size()) /
         std::chrono::duration<double>(t1 - t0).count();
}

struct PricingRow {
  std::size_t tasks;
  double exact_eps;
  double fast_eps;
  double speedup;
  unsigned long long audit_samples;
  double audit_max_dev;
};

PricingRow compare_pricing(const Options& o, std::size_t tasks) {
  PricingRow row{};
  row.tasks = tasks;
  row.exact_eps = pricing_evals_per_sec(o, tasks, core::NumericMode::kExact);
  core::ToleranceAudit audit(core::AuditConfig{o.tolerance, 64});
  const core::ToleranceAudit::Scope scope(audit);
  row.fast_eps = pricing_evals_per_sec(o, tasks, core::NumericMode::kFast);
  row.speedup = row.fast_eps / row.exact_eps;
  row.audit_samples = audit.samples();
  row.audit_max_dev = audit.max_deviation();
  return row;
}

struct GaRow {
  std::size_t tasks;
  std::size_t generations;
  double exact_gps;
  double fast_gps;
  double speedup;
  double fast_allocs_per_gen;
  unsigned long long audit_samples;
  double audit_max_dev;
};

GaRow compare_modes(const Options& o, std::size_t tasks,
                    std::size_t generations) {
  auto gps = [&](core::NumericMode mode) {
    run_ga(o, tasks, generations, mode);  // warm-up (code + allocator)
    const auto [t1, a1, g1] = run_ga(o, tasks, generations, mode);
    const auto [t2, a2, g2] = run_ga(o, tasks, 2 * generations, mode);
    const double gens = static_cast<double>(g2 - g1);
    return std::pair{gens / (t2 - t1),
                     static_cast<double>(a2 - a1) / gens};
  };

  GaRow row{};
  row.tasks = tasks;
  row.generations = generations;
  std::tie(row.exact_gps, std::ignore) = gps(core::NumericMode::kExact);

  // Scope a fresh audit around the fast runs so the reported sample
  // count and max deviation belong to exactly this case.
  core::ToleranceAudit audit(core::AuditConfig{o.tolerance, 64});
  const core::ToleranceAudit::Scope scope(audit);
  std::tie(row.fast_gps, row.fast_allocs_per_gen) =
      gps(core::NumericMode::kFast);
  row.speedup = row.fast_gps / row.exact_gps;
  row.audit_samples = audit.samples();
  row.audit_max_dev = audit.max_deviation();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  int exit_code = 0;
  try {
    if (o.report) {
      print_machine(stdout);
      std::printf("\n");
      return 0;
    }
    const std::vector<KernelRow> kernel_rows = time_kernels();
    std::vector<PricingRow> pricing_rows;
    pricing_rows.push_back(compare_pricing(o, 200));
    pricing_rows.push_back(compare_pricing(o, 600));
    std::vector<GaRow> ga_rows;
    ga_rows.push_back(compare_modes(o, 200, o.generations));
    ga_rows.push_back(
        compare_modes(o, 600, std::max<std::size_t>(o.generations / 2, 1)));

    std::printf("{\"label\":\"%s\",\"machine\":", o.label.c_str());
    print_machine(stdout);
    std::printf(",\"tolerance\":%g,\"kernels\":[", o.tolerance);
    for (std::size_t i = 0; i < kernel_rows.size(); ++i) {
      const KernelRow& k = kernel_rows[i];
      std::printf(
          "%s{\"kernel\":\"%s\",\"n\":%zu,\"ns_per_op_active\":%.1f,"
          "\"ns_per_op_scalar\":%.1f}",
          i ? "," : "", k.kernel, k.n, k.ns_active, k.ns_scalar);
    }
    std::printf("],\"pricing\":[");
    for (std::size_t i = 0; i < pricing_rows.size(); ++i) {
      const PricingRow& p = pricing_rows[i];
      std::printf(
          "%s{\"tasks\":%zu,\"procs\":%zu,\"population\":%zu,"
          "\"exact_evals_per_sec\":%.0f,\"fast_evals_per_sec\":%.0f,"
          "\"speedup\":%.2f,\"audit_samples\":%llu,"
          "\"audit_max_deviation\":%.3g}",
          i ? "," : "", p.tasks, o.procs, o.population, p.exact_eps,
          p.fast_eps, p.speedup, p.audit_samples, p.audit_max_dev);
      if (p.audit_max_dev > o.tolerance) exit_code = 1;
    }
    std::printf("],\"ga\":[");
    for (std::size_t i = 0; i < ga_rows.size(); ++i) {
      const GaRow& g = ga_rows[i];
      std::printf(
          "%s{\"tasks\":%zu,\"procs\":%zu,\"population\":%zu,"
          "\"generations\":%zu,\"exact_gens_per_sec\":%.1f,"
          "\"fast_gens_per_sec\":%.1f,\"speedup\":%.2f,"
          "\"allocs_per_generation\":%.2f,\"audit_samples\":%llu,"
          "\"audit_max_deviation\":%.3g}",
          i ? "," : "", g.tasks, o.procs, o.population, g.generations,
          g.exact_gps, g.fast_gps, g.speedup, g.fast_allocs_per_gen,
          g.audit_samples, g.audit_max_dev);
      if (g.audit_max_dev > o.tolerance) exit_code = 1;
    }
    std::printf("]}\n");
  } catch (const std::exception& e) {
    // A ToleranceAudit violation throws out of the fast run — the
    // hardest possible failure of the numeric-mode contract.
    std::fprintf(stderr, "perf_kernels: %s\n", e.what());
    return 1;
  }
  return exit_code;
}
