#include "exp/registry.hpp"

#include <algorithm>
#include <cctype>
#include <numeric>
#include <stdexcept>

#include "core/register.hpp"
#include "meta/register.hpp"
#include "sched/register.hpp"
#include "workload/register.hpp"

namespace gasched::exp {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Indices of `entries` ordered by (rank, registration order).
template <typename Entry>
std::vector<std::size_t> display_order(const std::deque<Entry>& entries) {
  std::vector<std::size_t> idx(entries.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return entries[a].rank < entries[b].rank;
  });
  return idx;
}

template <typename Entry>
std::string joined_names(const std::deque<Entry>& entries) {
  std::string out;
  for (const auto i : display_order(entries)) {
    if (!out.empty()) out += ", ";
    out += entries[i].name;
  }
  return out;
}

}  // namespace

// --- SchedulerRegistry ------------------------------------------------------

SchedulerRegistry& SchedulerRegistry::instance() {
  static SchedulerRegistry registry;
  return registry;
}

SchedulerRegistry::SchedulerRegistry() {
  sched::register_builtin_schedulers(*this);
  core::register_builtin_schedulers(*this);
  meta::register_builtin_schedulers(*this);
}

void SchedulerRegistry::add(SchedulerEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("SchedulerRegistry: empty scheduler name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("SchedulerRegistry: scheduler '" +
                                entry.name + "' has no factory");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = lower(entry.name);
  if (by_name_.contains(key)) {
    throw std::invalid_argument("SchedulerRegistry: scheduler '" +
                                entry.name + "' is already registered");
  }
  entries_.push_back(std::move(entry));
  by_name_[key] = entries_.size() - 1;
}

bool SchedulerRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.contains(lower(name));
}

const SchedulerEntry& SchedulerRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(lower(name));
  if (it == by_name_.end()) {
    throw std::runtime_error("unknown scheduler '" + name +
                             "'; registered schedulers: " +
                             joined_names(entries_));
  }
  return entries_[it->second];
}

std::string SchedulerRegistry::canonical_name(const std::string& name) const {
  return find(name).name;
}

std::unique_ptr<sim::SchedulingPolicy> SchedulerRegistry::create(
    const std::string& name, const SchedulerParams& params) const {
  // find() returns a reference that stays valid (entries are never
  // removed); invoke the factory outside the lock.
  return find(name).factory(params);
}

std::vector<std::string> SchedulerRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto i : display_order(entries_)) out.push_back(entries_[i].name);
  return out;
}

std::vector<std::string> SchedulerRegistry::names_tagged(
    unsigned tags) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const auto i : display_order(entries_)) {
    if (entries_[i].tags & tags) out.push_back(entries_[i].name);
  }
  return out;
}

// --- DistributionRegistry ---------------------------------------------------

DistributionRegistry& DistributionRegistry::instance() {
  static DistributionRegistry registry;
  return registry;
}

DistributionRegistry::DistributionRegistry() {
  workload::register_builtin_distributions(*this);
}

void DistributionRegistry::add(DistributionEntry entry) {
  if (entry.name.empty()) {
    throw std::invalid_argument("DistributionRegistry: empty family name");
  }
  if (!entry.factory) {
    throw std::invalid_argument("DistributionRegistry: family '" +
                                entry.name + "' has no factory");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = lower(entry.name);
  if (by_name_.contains(key)) {
    throw std::invalid_argument("DistributionRegistry: family '" +
                                entry.name + "' is already registered");
  }
  entries_.push_back(std::move(entry));
  by_name_[key] = entries_.size() - 1;
}

bool DistributionRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return by_name_.contains(lower(name));
}

const DistributionEntry& DistributionRegistry::find(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(lower(name));
  if (it == by_name_.end()) {
    throw std::runtime_error("unknown task-size distribution '" + name +
                             "'; registered families: " +
                             joined_names(entries_));
  }
  return entries_[it->second];
}

std::string DistributionRegistry::canonical_name(
    const std::string& name) const {
  return find(name).name;
}

std::unique_ptr<workload::SizeDistribution> DistributionRegistry::create(
    const WorkloadSpec& spec) const {
  return find(spec.dist).factory(spec);
}

std::vector<std::string> DistributionRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto i : display_order(entries_)) out.push_back(entries_[i].name);
  return out;
}

}  // namespace gasched::exp
