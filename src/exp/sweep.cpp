#include "exp/sweep.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>
#include <stdexcept>

#include "core/numeric.hpp"
#include "exp/registry.hpp"
#include "exp/runner.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace gasched::exp {

namespace {

bool stderr_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stderr)) != 0;
#else
  return false;
#endif
}

}  // namespace

// --- SweepCell --------------------------------------------------------------

const std::string& SweepCell::coord(const std::string& axis) const {
  for (const auto& [name, label] : coords) {
    if (name == axis) return label;
  }
  throw std::out_of_range("SweepCell: unknown axis '" + axis + "'");
}

double SweepCell::coord_value(const std::string& axis) const {
  const std::string& label = coord(axis);
  try {
    std::size_t pos = 0;
    const double v = std::stod(label, &pos);
    if (pos != label.size()) throw std::invalid_argument(label);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error("SweepCell: axis '" + axis + "' label '" +
                             label + "' is not numeric");
  }
}

// --- SweepResult ------------------------------------------------------------

std::vector<double> SweepResult::makespan_means() const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(r.cell.makespan.mean);
  return out;
}

std::vector<double> SweepResult::efficiency_means() const {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(r.cell.efficiency.mean);
  return out;
}

std::vector<const metrics::SweepRow*> SweepResult::where(
    const std::string& axis, const std::string& label) const {
  std::vector<const metrics::SweepRow*> out;
  for (const auto& r : rows) {
    for (const auto& [name, value] : r.coords) {
      if (name == axis && value == label) {
        out.push_back(&r);
        break;
      }
    }
  }
  return out;
}

// --- Sweep: declaration -----------------------------------------------------

Sweep::Sweep(std::string name) : name_(std::move(name)) {}

Sweep& Sweep::base(Scenario s) {
  base_ = std::move(s);
  return *this;
}

Sweep& Sweep::params(SchedulerParams p) {
  params_ = std::move(p);
  return *this;
}

Sweep& Sweep::scheduler(const std::string& name) {
  fixed_scheduler_ = SchedulerRegistry::instance().canonical_name(name);
  return *this;
}

Sweep& Sweep::schedulers(const std::vector<std::string>& names) {
  std::vector<Value> values;
  values.reserve(names.size());
  for (const auto& raw : names) {
    const std::string canonical =
        SchedulerRegistry::instance().canonical_name(raw);
    values.push_back(
        {canonical, [canonical](SweepCell& c) { c.scheduler = canonical; }});
  }
  return axis("scheduler", std::move(values));
}

Sweep& Sweep::schedulers_tagged(unsigned tags) {
  return schedulers(SchedulerRegistry::instance().names_tagged(tags));
}

Sweep& Sweep::axis(std::string axis_name, std::vector<Value> values) {
  if (values.empty()) {
    throw std::invalid_argument("Sweep: axis '" + axis_name +
                                "' has no values");
  }
  for (const auto& existing : axes_) {
    if (existing.name == axis_name) {
      throw std::invalid_argument("Sweep: duplicate axis '" + axis_name +
                                  "'");
    }
  }
  axes_.push_back({std::move(axis_name), std::move(values)});
  return *this;
}

Sweep& Sweep::axis(std::string axis_name, const std::vector<double>& values,
                   std::function<void(SweepCell&, double)> apply) {
  std::vector<Value> labeled;
  labeled.reserve(values.size());
  for (const double v : values) {
    labeled.push_back({util::format_double(v),
                       [apply, v](SweepCell& c) {
                         if (apply) apply(c, v);
                       }});
  }
  return axis(std::move(axis_name), std::move(labeled));
}

Sweep& Sweep::param_axis(const std::string& key,
                         const std::vector<double>& values) {
  return axis(key, values,
              [key](SweepCell& c, double v) { c.params.set(key, v); });
}

Sweep& Sweep::workloads(
    std::vector<std::pair<std::string, WorkloadSpec>> specs) {
  std::vector<Value> values;
  values.reserve(specs.size());
  for (auto& [label, spec] : specs) {
    WorkloadSpec copy = spec;
    values.push_back({label, [copy](SweepCell& c) {
                        const std::size_t count = c.scenario.workload.count;
                        c.scenario.workload = copy;
                        c.scenario.workload.count = count;
                      }});
  }
  return axis("workload", std::move(values));
}

Sweep& Sweep::runner(CellRunner fn) {
  runner_ = std::move(fn);
  return *this;
}

Sweep& Sweep::extra_columns(std::vector<std::string> names) {
  extra_columns_ = std::move(names);
  return *this;
}

Sweep& Sweep::add_sink(metrics::ResultSink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

Sweep& Sweep::parallel(bool on) {
  parallel_ = on;
  return *this;
}

Sweep& Sweep::shard(std::size_t index, std::size_t count) {
  if (count == 0 || index >= count) {
    throw std::invalid_argument("Sweep: invalid shard " +
                                std::to_string(index) + "/" +
                                std::to_string(count));
  }
  shard_index_ = index;
  shard_count_ = count;
  return *this;
}

Sweep& Sweep::progress(bool on) {
  progress_ = on;
  return *this;
}

std::size_t Sweep::cell_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.values.size();
  return n;
}

std::vector<std::string> Sweep::axis_names() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const auto& axis : axes_) names.push_back(axis.name);
  return names;
}

std::vector<SweepCell> Sweep::flatten() const {
  const std::size_t total = cell_count();
  std::vector<SweepCell> cells;
  cells.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    SweepCell cell;
    cell.index = index;
    cell.scenario = base_;
    cell.scheduler = fixed_scheduler_;
    cell.params = params_;
    // Row-major decomposition: the first axis varies slowest.
    std::size_t stride = total;
    for (const auto& axis : axes_) {
      stride /= axis.values.size();
      const Value& value = axis.values[(index / stride) % axis.values.size()];
      cell.coords.emplace_back(axis.name, value.label);
      if (value.apply) value.apply(cell);
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

// --- Sweep: execution -------------------------------------------------------

namespace {

CellOutcome default_cell_runner(const SweepCell& cell, bool parallel) {
  if (cell.scheduler.empty()) {
    throw std::runtime_error(
        "sweep cell has no scheduler: declare schedulers()/scheduler() or "
        "a custom runner");
  }
  CellOutcome out;
  out.summary = run_cell(cell.scenario, cell.scheduler, cell.params, parallel);
  return out;
}

}  // namespace

SweepResult Sweep::run() const {
  const std::vector<SweepCell> cells = flatten();

  // Under the fast numeric mode every row additionally reports the
  // tolerance audit's max relative deviation (core/numeric.hpp), so fast
  // sweeps are self-documenting about how far they strayed from the exact
  // arithmetic. Exact-mode output is completely unchanged — the extra
  // column never appears, keeping the figure CSVs byte-identical.
  const bool fast_mode =
      core::default_numeric_mode() == core::NumericMode::kFast;
  std::vector<std::string> extra_columns = extra_columns_;
  if (fast_mode) extra_columns.emplace_back("audit_max_dev");

  SweepResult result;
  result.header = {name_, axis_names(), std::move(extra_columns)};
  result.rows.resize(cells.size());

  for (auto* sink : sinks_) sink->begin(result.header);

  // Resume: cells already present in EVERY non-passive sink need not be
  // re-executed — each of their files already holds the row. Cells held
  // by only some sinks re-run (deterministically identical) and the
  // sinks that have them drop the duplicate delivery themselves.
  std::set<std::size_t> resume_skip;
  bool first_resumable = true;
  for (auto* sink : sinks_) {
    const std::set<std::size_t>* have = sink->resumed();
    if (have == nullptr) continue;  // passive sink (table, progress)
    if (first_resumable) {
      resume_skip = *have;
      first_resumable = false;
    } else {
      std::set<std::size_t> kept;
      for (const std::size_t i : resume_skip) {
        if (have->count(i) > 0) kept.insert(i);
      }
      resume_skip = std::move(kept);
    }
  }

  const bool show_progress = progress_.value_or(stderr_is_tty());
  // Sink/progress state. `done` marks completed cells; rows stream to
  // the sinks as the completed prefix extends, so output order is the
  // job-list order no matter which thread finishes first, and a killed
  // sweep keeps every flushed cell.
  std::mutex mu;
  std::vector<char> done(cells.size(), 0);
  std::size_t next_flush = 0;
  std::size_t completed = 0;

  // Pre-mark skipped cells (off-shard or resumed): their rows carry the
  // coordinates but no data and are never delivered to sinks.
  std::vector<std::size_t> to_run;
  to_run.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const bool on_shard = (i % shard_count_) == shard_index_;
    if (on_shard && resume_skip.count(i) == 0) {
      to_run.push_back(i);
      continue;
    }
    result.rows[i].index = i;
    result.rows[i].coords = cells[i].coords;
    result.rows[i].scheduler = cells[i].scheduler;
    result.rows[i].skipped = true;
    done[i] = 1;
    ++result.skipped;
  }

  auto flush_ready = [&] {
    // Caller holds `mu` (or is still single-threaded before execution).
    while (next_flush < cells.size() && done[next_flush]) {
      if (!result.rows[next_flush].skipped) {
        for (auto* sink : sinks_) sink->row(result.rows[next_flush]);
      }
      ++next_flush;
    }
  };
  flush_ready();  // advance past any leading skipped cells

  auto run_cell_at = [&](std::size_t job) {
    const std::size_t i = to_run[job];
    metrics::SweepRow row;
    row.index = i;
    row.coords = cells[i].coords;
    row.scheduler = cells[i].scheduler;
    try {
      CellOutcome out = runner_ ? runner_(cells[i], parallel_)
                                : default_cell_runner(cells[i], parallel_);
      row.cell = std::move(out.summary);
      row.extras = std::move(out.extras);
      if (fast_mode) {
        row.extras.emplace_back("audit_max_dev",
                                row.cell.audit_max_deviation);
      }
    } catch (const std::exception& e) {
      row.error = e.what();
    } catch (...) {
      row.error = "unknown error";
    }

    std::lock_guard lk(mu);
    result.rows[i] = std::move(row);
    done[i] = 1;
    ++completed;
    if (!result.rows[i].ok()) ++result.failed;
    flush_ready();
    if (show_progress) {
      std::fprintf(stderr, "\r[%s] %zu/%zu cells", name_.c_str(), completed,
                   to_run.size());
      if (result.skipped > 0) {
        std::fprintf(stderr, " (%zu skipped)", result.skipped);
      }
      if (result.failed > 0) {
        std::fprintf(stderr, " (%zu failed)", result.failed);
      }
      std::fflush(stderr);
    }
  };

  if (parallel_ && to_run.size() > 1) {
    util::global_pool().parallel_for(0, to_run.size(), run_cell_at);
  } else {
    for (std::size_t job = 0; job < to_run.size(); ++job) run_cell_at(job);
  }

  if (show_progress && !to_run.empty()) std::fprintf(stderr, "\n");
  for (auto* sink : sinks_) sink->end();
  return result;
}

}  // namespace gasched::exp
