#include "exp/params.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace gasched::exp {

Params::Params(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [key, value] : kv) values_[key] = value;
}

Params Params::from_config(const util::Config& cfg,
                           const std::string& section) {
  Params p;
  for (auto& [key, value] : cfg.section(section)) {
    p.values_[key] = value;
  }
  return p;
}

Params& Params::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
  return *this;
}

Params& Params::set(const std::string& key, const char* value) {
  values_[key] = value;
  return *this;
}

Params& Params::set(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
  return *this;
}

Params& Params::set_floating(const std::string& key, double value) {
  std::ostringstream ss;
  ss.precision(std::numeric_limits<double>::max_digits10);
  ss << value;
  values_[key] = ss.str();
  return *this;
}

Params& Params::set_integer(const std::string& key, long long value) {
  values_[key] = std::to_string(value);
  return *this;
}

Params& Params::set_unsigned(const std::string& key,
                             unsigned long long value) {
  values_[key] = std::to_string(value);
  return *this;
}

std::string Params::get(const std::string& key,
                        const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Params::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("Params: bad numeric value for " + key + ": " +
                             it->second);
  }
}

std::int64_t Params::get_int(const std::string& key,
                             std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long out = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("Params: bad integer value for " + key + ": " +
                             it->second);
  }
}

std::size_t Params::get_size(const std::string& key,
                             std::size_t fallback) const {
  const std::int64_t v =
      get_int(key, static_cast<std::int64_t>(fallback));
  if (v < 0) {
    throw std::runtime_error("Params: negative value for " + key);
  }
  return static_cast<std::size_t>(v);
}

bool Params::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::runtime_error("Params: bad boolean value for " + key + ": " + v);
}

bool Params::has(const std::string& key) const {
  return values_.contains(key);
}

std::vector<std::string> Params::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

}  // namespace gasched::exp
