#pragma once
// Replication runner: executes a (scenario, scheduler) cell R times with
// deterministic per-replication substreams, optionally in parallel across
// a thread pool. Every scheduler sees the *same* workload and cluster in
// replication r (paper §4.2: "All schedulers were presented with the same
// set of tasks for scheduling").
//
// Schedulers are addressed by SchedulerRegistry name (case-insensitive),
// so any registered entry — built-in or user-added — can run a cell.

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "metrics/aggregate.hpp"
#include "metrics/bounds.hpp"
#include "sim/engine.hpp"

namespace gasched::exp {

/// Runs `scenario` under the named scheduler for scenario.replications
/// runs and returns the per-run results in replication order. Thread-safe
/// and deterministic: replication r derives its RNG streams from
/// (scenario.seed, r) regardless of execution order. Throws
/// std::runtime_error (listing all registered names) for unknown
/// schedulers.
std::vector<sim::SimulationResult> run_replications(
    const Scenario& scenario, const std::string& scheduler,
    const SchedulerParams& params = {}, bool parallel = true);

/// Convenience: run and aggregate into a CellSummary labelled with the
/// scheduler's canonical registry name.
metrics::CellSummary run_cell(const Scenario& scenario,
                              const std::string& scheduler,
                              const SchedulerParams& params = {},
                              bool parallel = true);

/// Runs one replication index `rep` of the cell (exposed for tests).
/// With `record_task_trace` the engine keeps the per-task placement
/// trace (for Gantt rendering / timelines) — identical run otherwise.
sim::SimulationResult run_one(const Scenario& scenario,
                              const std::string& scheduler,
                              const SchedulerParams& params, std::size_t rep,
                              bool record_task_trace = false);

/// The scheduler-visible bound instance of replication `rep`: the same
/// workload and cluster streams as run_one (so every scheduler's run in
/// that replication is bounded by it), Linpack base rates, true per-link
/// comm means, no pending load. Feed to metrics::makespan_lower_bound /
/// relaxation_lower_bound / optimal_makespan_exact.
metrics::BoundInstance bound_instance(const Scenario& scenario,
                                      std::size_t rep);

/// Certified makespan lower bounds of a scenario, averaged over its
/// replications (each replication's workload/cluster has its own pair):
/// `lb_comb` is metrics::makespan_lower_bound, `lb_qp` is
/// metrics::relaxation_lower_bound under `options` (== lb_comb when
/// options.enabled is false). Deterministic at any thread count.
struct CertifiedBounds {
  double lb_comb = 0.0;
  double lb_qp = 0.0;
};
CertifiedBounds certified_bounds(const Scenario& scenario,
                                 const metrics::RelaxationBoundOptions& options,
                                 bool parallel = true);

}  // namespace gasched::exp
