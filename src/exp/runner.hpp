#pragma once
// Replication runner: executes a (scenario, scheduler) cell R times with
// deterministic per-replication substreams, optionally in parallel across
// a thread pool. Every scheduler sees the *same* workload and cluster in
// replication r (paper §4.2: "All schedulers were presented with the same
// set of tasks for scheduling").
//
// Schedulers are addressed by SchedulerRegistry name (case-insensitive),
// so any registered entry — built-in or user-added — can run a cell.

#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "metrics/aggregate.hpp"
#include "sim/engine.hpp"

namespace gasched::exp {

/// Runs `scenario` under the named scheduler for scenario.replications
/// runs and returns the per-run results in replication order. Thread-safe
/// and deterministic: replication r derives its RNG streams from
/// (scenario.seed, r) regardless of execution order. Throws
/// std::runtime_error (listing all registered names) for unknown
/// schedulers.
std::vector<sim::SimulationResult> run_replications(
    const Scenario& scenario, const std::string& scheduler,
    const SchedulerParams& params = {}, bool parallel = true);

/// Convenience: run and aggregate into a CellSummary labelled with the
/// scheduler's canonical registry name.
metrics::CellSummary run_cell(const Scenario& scenario,
                              const std::string& scheduler,
                              const SchedulerParams& params = {},
                              bool parallel = true);

/// Runs one replication index `rep` of the cell (exposed for tests).
/// With `record_task_trace` the engine keeps the per-task placement
/// trace (for Gantt rendering / timelines) — identical run otherwise.
sim::SimulationResult run_one(const Scenario& scenario,
                              const std::string& scheduler,
                              const SchedulerParams& params, std::size_t rep,
                              bool record_task_trace = false);

}  // namespace gasched::exp
