#pragma once
/// \file
/// Declarative experiment grids. A Sweep is the first-class object
/// behind every figure, ablation, and scenario comparison: named axes
/// (scheduler sets by name or registry tag, workload families, scalar
/// parameter ranges), flattened to a job list of cells and executed on
/// util::global_pool() with cell-level *and* replication-level
/// parallelism. Invariants the rest of the repo builds on:
///
///  - **Deterministic job order.** flatten() decomposes the axes
///    row-major in declaration order (first axis varies slowest), so the
///    job list — and therefore every cell index, CSV row order, shard
///    partition, and resume key — is a pure function of the declaration,
///    identical on every machine and thread count.
///  - **Deterministic results.** Every cell's replications derive their
///    RNG streams from (scenario.seed, rep), never from execution order,
///    so re-running a cell (e.g. after a crash) reproduces it exactly.
///  - **Ordered streaming.** Rows stream to the attached
///    metrics::ResultSink instances in job-list order as completed
///    prefixes; a killed sweep keeps every flushed row.
///  - **Per-cell error capture.** A failed cell (factory error, bad
///    parameters) becomes a row carrying the error string; the rest of
///    the grid still runs.
///  - **Resume and sharding compose with all of the above.** Cells
///    already present in every resumable sink are skipped, and
///    shard(i, N) restricts execution to a deterministic subset of the
///    job list; skipped cells yield rows flagged `skipped` that are
///    never delivered to sinks, so resumed/merged files end up
///    byte-identical to a fresh single-machine run.
///
/// Typical use (the whole of a former 60-line bench main loop):
///
///   exp::Sweep sweep("fig06");
///   sweep.base(scenario).params(opts).schedulers(exp::all_schedulers());
///   metrics::TableSink table(std::cout);
///   sweep.add_sink(table);
///   const exp::SweepResult r = sweep.run();

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "exp/scenario.hpp"
#include "metrics/sink.hpp"

namespace gasched::exp {

/// One flattened grid cell: a fully-resolved scenario, scheduler, and
/// parameter set, plus the axis coordinates that produced it.
struct SweepCell {
  std::size_t index = 0;  ///< position in the job list (deterministic)
  Scenario scenario;
  std::string scheduler;  ///< canonical registry name; may be empty
  SchedulerParams params;
  /// (axis, label) pairs in axis order.
  std::vector<std::pair<std::string, std::string>> coords;

  /// Label of `axis`; throws std::out_of_range when the axis is unknown.
  const std::string& coord(const std::string& axis) const;
  /// Label of `axis` parsed as a double (throws on unknown axis or
  /// non-numeric label).
  double coord_value(const std::string& axis) const;
};

/// What one executed cell yields: the aggregated replications plus any
/// custom columns a bespoke runner wants to surface.
struct CellOutcome {
  metrics::CellSummary summary;
  std::vector<std::pair<std::string, double>> extras;
};

/// Computes one cell. `parallel` mirrors the sweep's execution mode:
/// runners that replicate internally should parallelise (e.g. via
/// run_replications or ThreadPool::parallel_for, both safe to nest)
/// exactly when it is true, and must produce results that do not depend
/// on it. The default runner is run_replications + metrics::aggregate.
using CellRunner =
    std::function<CellOutcome(const SweepCell& cell, bool parallel)>;

/// Everything a finished sweep produced, in job-list order.
struct SweepResult {
  metrics::SweepHeader header;
  std::vector<metrics::SweepRow> rows;
  std::size_t failed = 0;   ///< number of rows with a non-empty error
  std::size_t skipped = 0;  ///< cells not executed (resumed / off-shard)

  /// Mean makespan per row (NaN-free: failed rows report 0).
  std::vector<double> makespan_means() const;
  /// Mean efficiency per row.
  std::vector<double> efficiency_means() const;
  /// Rows whose coordinate on `axis` equals `label`, in order.
  std::vector<const metrics::SweepRow*> where(
      const std::string& axis, const std::string& label) const;
};

/// Declarative experiment grid; see the file comment for an example.
/// Axes flatten row-major in declaration order (first axis varies
/// slowest), so declare the presentation-outer axis first.
class Sweep {
 public:
  explicit Sweep(std::string name = "sweep");

  /// Prototype scenario every cell starts from.
  Sweep& base(Scenario s);
  /// Prototype scheduler parameters every cell starts from.
  Sweep& params(SchedulerParams p);
  /// Fixed scheduler for every cell (no axis). Resolved eagerly.
  Sweep& scheduler(const std::string& name);
  /// Adds a "scheduler" axis over the given registry names (resolved
  /// eagerly, so typos fail at declaration with the full name list).
  Sweep& schedulers(const std::vector<std::string>& names);
  /// Adds a "scheduler" axis over every registry entry whose tags
  /// intersect `tags` (SchedulerTag bits).
  Sweep& schedulers_tagged(unsigned tags);

  /// One point on a labeled axis. `apply` may be empty for axes that
  /// only label custom-runner cells.
  struct Value {
    std::string label;
    std::function<void(SweepCell&)> apply;
  };
  /// Adds a labeled axis.
  Sweep& axis(std::string axis_name, std::vector<Value> values);
  /// Adds a numeric axis: apply(cell, v) runs for each value, labels are
  /// round-trip formatted.
  Sweep& axis(std::string axis_name, const std::vector<double>& values,
              std::function<void(SweepCell&, double)> apply);
  /// Adds a numeric axis over a [scheduler] parameter key.
  Sweep& param_axis(const std::string& key,
                    const std::vector<double>& values);
  /// Adds a "workload" axis over named workload specs (each cell's
  /// scenario.workload is replaced wholesale; count is preserved).
  Sweep& workloads(
      std::vector<std::pair<std::string, WorkloadSpec>> specs);

  /// Replaces the default cell runner (run_replications + aggregate).
  Sweep& runner(CellRunner fn);
  /// Declares the extras columns custom runners emit, so streaming sinks
  /// can fix their schema before the first row.
  Sweep& extra_columns(std::vector<std::string> names);
  /// Attaches a sink (non-owning; must outlive run()).
  Sweep& add_sink(metrics::ResultSink& sink);
  /// Enables/disables execution on util::global_pool(). Results are
  /// identical either way; serial mode exists for baselines and tests.
  Sweep& parallel(bool on);
  /// Restricts execution to shard `index` of `count`: only cells whose
  /// job-list index ≡ index (mod count) run; the rest become `skipped`
  /// rows that are never delivered to sinks. Because the job list is
  /// deterministic, N machines running shards 0..N-1 produce disjoint
  /// row sets whose union is exactly the unsharded run (stitch them with
  /// figset merge). Throws std::invalid_argument when index >= count or
  /// count == 0.
  Sweep& shard(std::size_t index, std::size_t count);
  /// Forces the stderr progress line on or off (default: only when
  /// stderr is a terminal).
  Sweep& progress(bool on);

  const std::string& name() const noexcept { return name_; }
  std::size_t cell_count() const;
  std::vector<std::string> axis_names() const;
  /// The extras columns declared via extra_columns() (figset plot and
  /// tests derive the CSV schema from these + the axes).
  const std::vector<std::string>& extra_column_names() const noexcept {
    return extra_columns_;
  }
  /// The deterministic job list (exposed for tests and inspection).
  std::vector<SweepCell> flatten() const;

  /// Executes the grid and streams rows to the attached sinks.
  ///
  /// Resume: after begin(), cells whose index is present in *every*
  /// non-passive sink (ResultSink::resumed() != nullptr — the file
  /// sinks; see SinkMode::kResume) are skipped instead of executed, so
  /// an interrupted run continues where its output files stop and the
  /// final files are byte-identical to an uninterrupted run. Cells held
  /// by only some file sinks are re-executed (deterministically equal)
  /// and each sink drops rows it already has.
  SweepResult run() const;

 private:
  struct Axis {
    std::string name;
    std::vector<Value> values;
  };

  std::string name_;
  Scenario base_;
  SchedulerParams params_;
  std::string fixed_scheduler_;
  std::vector<Axis> axes_;
  CellRunner runner_;
  std::vector<std::string> extra_columns_;
  std::vector<metrics::ResultSink*> sinks_;
  bool parallel_ = true;
  std::optional<bool> progress_;
  std::size_t shard_index_ = 0;
  std::size_t shard_count_ = 1;
};

}  // namespace gasched::exp
