#pragma once
// Typed key/value parameter view for registry factories. A Params object
// carries the free-form options of one INI section ("[scheduler]" for
// scheduler factories, "[workload]" for distribution factories) so each
// registry entry parses exactly the keys it understands and falls back to
// its own documented defaults — no central one-size-fits-all options
// struct to extend when a new scheduler or distribution is added.
//
// Shared [scheduler] keys the built-in entries agree on (defaults in
// parentheses; see exp/registry.hpp for the per-entry extras):
//
//   batch_size (200)          FCFS batch for MM, MX, ZO, SUF, DUP and the
//                             local-search metaheuristics; cap for PN/PNI
//   max_generations (1000)    GA generation cap (ZO, PN, PNI)
//   population (20)           GA population (ZO, PN, PNI)
//   rebalances (1)            re-balance passes per individual (PN, PNI)
//   pn_dynamic_batch (true)   PN/PNI use the dynamic ⌊√(Γs+1)⌋ batch
//   kpb_percent (20)          subset percentage for KPB
//   islands (4)               island count for PNI
//   migration_interval (25)   generations between PNI migrations

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/config.hpp"

namespace gasched::exp {

/// Shared [scheduler] defaults — the single source for the values the
/// key reference above quotes. Factories pass these as getter fallbacks;
/// callers that need to inspect a key before a factory runs should use
/// the same constants.
inline constexpr std::size_t kDefaultBatchSize = 200;
inline constexpr std::size_t kDefaultMaxGenerations = 1000;
inline constexpr std::size_t kDefaultPopulation = 20;
inline constexpr std::size_t kDefaultRebalances = 1;
inline constexpr std::size_t kDefaultRebalanceProbes = 5;
inline constexpr bool kDefaultPnDynamicBatch = true;
inline constexpr double kDefaultKpbPercent = 20.0;
inline constexpr std::size_t kDefaultIslands = 4;
inline constexpr std::size_t kDefaultMigrationInterval = 25;

/// Ordered string→string map with typed getters. Missing keys return the
/// caller's fallback; unparseable values throw std::runtime_error naming
/// the key.
class Params {
 public:
  Params() = default;
  Params(std::initializer_list<std::pair<std::string, std::string>> kv);

  /// All keys of `section` in `cfg`, prefix stripped: the [scheduler]
  /// section becomes the SchedulerParams of every factory, the [workload]
  /// section the per-family keys of a distribution factory.
  static Params from_config(const util::Config& cfg,
                            const std::string& section);

  /// Setters (fluent, so call sites can chain). One constrained template
  /// covers every arithmetic type unambiguously (int literals, unsigned,
  /// size_t, float, double, ...); floating-point values are stored with
  /// round-trip precision.
  Params& set(const std::string& key, std::string value);
  Params& set(const std::string& key, const char* value);
  Params& set(const std::string& key, bool value);
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Params& set(const std::string& key, T value) {
    if constexpr (std::is_floating_point_v<T>) {
      return set_floating(key, static_cast<double>(value));
    } else if constexpr (std::is_signed_v<T>) {
      return set_integer(key, static_cast<long long>(value));
    } else {
      return set_unsigned(key, static_cast<unsigned long long>(value));
    }
  }

  /// Typed getters with defaults.
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// True when the key is present.
  bool has(const std::string& key) const;

  /// Keys in lexicographic order.
  std::vector<std::string> keys() const;

  /// Number of entries.
  std::size_t size() const noexcept { return values_.size(); }

 private:
  Params& set_floating(const std::string& key, double value);
  Params& set_integer(const std::string& key, long long value);
  Params& set_unsigned(const std::string& key, unsigned long long value);

  std::map<std::string, std::string> values_;
};

/// The parameter view handed to scheduler factories (sourced from the
/// INI [scheduler] section; see the key reference above).
using SchedulerParams = Params;

}  // namespace gasched::exp
