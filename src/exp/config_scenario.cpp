#include "exp/config_scenario.hpp"

#include <stdexcept>

#include "exp/registry.hpp"

namespace gasched::exp {

namespace {

sim::AvailabilityKind availability_from_name(const std::string& name) {
  if (name == "fixed") return sim::AvailabilityKind::kFixed;
  if (name == "sinusoidal") return sim::AvailabilityKind::kSinusoidal;
  if (name == "random_walk") return sim::AvailabilityKind::kRandomWalk;
  if (name == "two_state") return sim::AvailabilityKind::kTwoState;
  throw std::runtime_error("scenario config: unknown availability '" + name +
                           "'");
}

}  // namespace

Scenario scenario_from_config(const util::Config& cfg) {
  Scenario s;
  s.name = cfg.get("scenario.name", "config");
  s.seed = static_cast<std::uint64_t>(cfg.get_int("scenario.seed", 42));
  s.replications =
      static_cast<std::size_t>(cfg.get_int("scenario.replications", 5));
  s.sched_time_scale = cfg.get_double("scenario.sched_time_scale", 0.0);
  s.comm_nu = cfg.get_double("scenario.comm_nu", 0.5);
  s.rate_nu = cfg.get_double("scenario.rate_nu", 0.5);

  s.cluster.num_processors =
      static_cast<std::size_t>(cfg.get_int("cluster.processors", 50));
  s.cluster.rate_lo = cfg.get_double("cluster.rate_lo", 10.0);
  s.cluster.rate_hi = cfg.get_double("cluster.rate_hi", 100.0);
  s.cluster.availability =
      availability_from_name(cfg.get("cluster.availability", "fixed"));
  s.cluster.avail_lo = cfg.get_double("cluster.avail_lo", 0.5);
  s.cluster.avail_hi = cfg.get_double("cluster.avail_hi", 1.0);
  s.cluster.avail_period = cfg.get_double("cluster.avail_period", 500.0);
  s.cluster.zero_comm = cfg.get_bool("cluster.zero_comm", false);
  s.cluster.drifting_comm = cfg.get_bool("cluster.drifting_comm", false);
  s.cluster.comm_drift_step = cfg.get_double("cluster.comm_drift_step", 0.1);

  s.cluster.comm.mean_cost = cfg.get_double("comm.mean_cost", 20.0);
  s.cluster.comm.spread_cv = cfg.get_double("comm.spread_cv", 0.5);
  s.cluster.comm.jitter_cv = cfg.get_double("comm.jitter_cv", 0.2);
  s.cluster.comm.floor = cfg.get_double("comm.floor", 1e-3);

  // Resolve the family eagerly so a bad `dist` fails here, with the full
  // list of registered families, not deep inside a replication run.
  s.workload.dist = DistributionRegistry::instance().canonical_name(
      cfg.get("workload.dist", "normal"));
  s.workload.param_a = cfg.get_double("workload.param_a", 1000.0);
  s.workload.param_b = cfg.get_double("workload.param_b", 9e5);
  s.workload.params = Params::from_config(cfg, "workload");
  s.workload.count =
      static_cast<std::size_t>(cfg.get_int("workload.count", 1000));
  s.workload.all_at_start = cfg.get_bool("workload.all_at_start", true);
  s.workload.mean_interarrival =
      cfg.get_double("workload.mean_interarrival", 1.0);
  s.workload.burstiness = cfg.get_double("workload.burstiness", 1.0);
  s.workload.burst_dwell = cfg.get_double("workload.burst_dwell", 50.0);

  if (cfg.get_bool("failures.enabled", false)) {
    sim::FailureConfig f;
    f.mean_uptime = cfg.get_double("failures.mean_uptime", 5000.0);
    f.mean_downtime = cfg.get_double("failures.mean_downtime", 200.0);
    f.horizon = cfg.get_double("failures.horizon", 100000.0);
    f.failing_fraction = cfg.get_double("failures.failing_fraction", 1.0);
    s.failures = f;
  }
  return s;
}

SchedulerParams scheduler_params_from_config(const util::Config& cfg) {
  return Params::from_config(cfg, "scheduler");
}

}  // namespace gasched::exp
