#include "exp/config_scenario.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/kernels.hpp"

#include "exp/registry.hpp"

namespace gasched::exp {

namespace {

sim::AvailabilityKind availability_from_name(const std::string& name) {
  if (name == "fixed") return sim::AvailabilityKind::kFixed;
  if (name == "sinusoidal") return sim::AvailabilityKind::kSinusoidal;
  if (name == "random_walk") return sim::AvailabilityKind::kRandomWalk;
  if (name == "two_state") return sim::AvailabilityKind::kTwoState;
  throw std::runtime_error("scenario config: unknown availability '" + name +
                           "'");
}

}  // namespace

Scenario scenario_from_config(const util::Config& cfg) {
  Scenario s;
  s.name = cfg.get("scenario.name", "config");
  s.seed = static_cast<std::uint64_t>(cfg.get_int("scenario.seed", 42));
  s.replications =
      static_cast<std::size_t>(cfg.get_int("scenario.replications", 5));
  s.sched_time_scale = cfg.get_double("scenario.sched_time_scale", 0.0);
  s.comm_nu = cfg.get_double("scenario.comm_nu", 0.5);
  s.rate_nu = cfg.get_double("scenario.rate_nu", 0.5);

  s.cluster.num_processors =
      static_cast<std::size_t>(cfg.get_int("cluster.processors", 50));
  s.cluster.rate_lo = cfg.get_double("cluster.rate_lo", 10.0);
  s.cluster.rate_hi = cfg.get_double("cluster.rate_hi", 100.0);
  s.cluster.availability =
      availability_from_name(cfg.get("cluster.availability", "fixed"));
  s.cluster.avail_lo = cfg.get_double("cluster.avail_lo", 0.5);
  s.cluster.avail_hi = cfg.get_double("cluster.avail_hi", 1.0);
  s.cluster.avail_period = cfg.get_double("cluster.avail_period", 500.0);
  s.cluster.zero_comm = cfg.get_bool("cluster.zero_comm", false);
  s.cluster.drifting_comm = cfg.get_bool("cluster.drifting_comm", false);
  s.cluster.comm_drift_step = cfg.get_double("cluster.comm_drift_step", 0.1);

  s.cluster.comm.mean_cost = cfg.get_double("comm.mean_cost", 20.0);
  s.cluster.comm.spread_cv = cfg.get_double("comm.spread_cv", 0.5);
  s.cluster.comm.jitter_cv = cfg.get_double("comm.jitter_cv", 0.2);
  s.cluster.comm.floor = cfg.get_double("comm.floor", 1e-3);

  // Resolve the family eagerly so a bad `dist` fails here, with the full
  // list of registered families, not deep inside a replication run.
  s.workload.dist = DistributionRegistry::instance().canonical_name(
      cfg.get("workload.dist", "normal"));
  s.workload.param_a = cfg.get_double("workload.param_a", 1000.0);
  s.workload.param_b = cfg.get_double("workload.param_b", 9e5);
  s.workload.params = Params::from_config(cfg, "workload");
  s.workload.count =
      static_cast<std::size_t>(cfg.get_int("workload.count", 1000));
  s.workload.all_at_start = cfg.get_bool("workload.all_at_start", true);
  s.workload.mean_interarrival =
      cfg.get_double("workload.mean_interarrival", 1.0);
  s.workload.burstiness = cfg.get_double("workload.burstiness", 1.0);
  s.workload.burst_dwell = cfg.get_double("workload.burst_dwell", 50.0);
  s.workload.arrival = cfg.get("workload.arrival", "constant");
  // Fail on an unknown preset here, listing the valid names, not deep
  // inside a replication run (mirrors the eager `dist` resolution above).
  if (!s.workload.all_at_start) make_arrival(s.workload);

  if (cfg.get_bool("failures.enabled", false)) {
    sim::FailureConfig f;
    f.mean_uptime = cfg.get_double("failures.mean_uptime", 5000.0);
    f.mean_downtime = cfg.get_double("failures.mean_downtime", 200.0);
    f.horizon = cfg.get_double("failures.horizon", 100000.0);
    f.failing_fraction = cfg.get_double("failures.failing_fraction", 1.0);
    s.failures = f;
  }
  return s;
}

SchedulerParams scheduler_params_from_config(const util::Config& cfg) {
  return Params::from_config(cfg, "scheduler");
}

metrics::RelaxationBoundOptions bounds_from_config(const util::Config& cfg) {
  metrics::RelaxationBoundOptions opts;
  opts.enabled = cfg.get_bool("bounds.enabled", false);
  opts.tolerance = cfg.get_double("bounds.tolerance", opts.tolerance);
  opts.max_iterations = static_cast<std::size_t>(cfg.get_int(
      "bounds.max_iterations",
      static_cast<std::int64_t>(opts.max_iterations)));
  return opts;
}

EvalConfig eval_config_from_config(const util::Config& cfg) {
  EvalConfig eval;
  eval.numeric_mode = cfg.get("eval.numeric_mode", "");
  if (!eval.numeric_mode.empty()) {
    core::parse_numeric_mode(eval.numeric_mode);  // validate early
  }
  eval.audit.tolerance =
      cfg.get_double("eval.tolerance", eval.audit.tolerance);
  eval.audit.sample_period = static_cast<std::size_t>(cfg.get_int(
      "eval.audit_sample_period",
      static_cast<std::int64_t>(eval.audit.sample_period)));
  return eval;
}

void apply_eval_config(const EvalConfig& eval) {
  if (!eval.numeric_mode.empty()) {
    core::set_default_numeric_mode(core::parse_numeric_mode(eval.numeric_mode));
  }
  if (core::default_numeric_mode() == core::NumericMode::kFast) {
    // Resolve the kernel ISA now: a bad GASCHED_KERNEL_ISA override
    // surfaces here as a clean config-time error instead of throwing
    // from the first pricing call on a pool worker mid-sweep.
    core::kernels::active_isa();
  }
  core::ToleranceAudit::global().configure(eval.audit);
}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream ss(text);
  std::string token;
  while (std::getline(ss, token, ',')) {
    const auto first = token.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    const auto last = token.find_last_not_of(" \t");
    tokens.push_back(token.substr(first, last - first + 1));
  }
  return tokens;
}

std::vector<double> parse_axis_values(const std::string& key,
                                      const std::string& text) {
  std::vector<double> values;
  for (const auto& token : split_list(text)) {
    try {
      std::size_t pos = 0;
      values.push_back(std::stod(token, &pos));
      if (pos != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      throw std::runtime_error("sweep config: key '" + key +
                               "' has non-numeric value '" + token + "'");
    }
  }
  if (values.empty()) {
    throw std::runtime_error("sweep config: key '" + key +
                             "' has no values");
  }
  return values;
}

using ScenarioAxisApply = void (*)(SweepCell&, double);

/// [sweep] keys that sweep the scenario itself; anything else becomes a
/// [scheduler] parameter axis.
const std::pair<const char*, ScenarioAxisApply> kScenarioAxes[] = {
    {"procs",
     [](SweepCell& c, double v) {
       c.scenario.cluster.num_processors = static_cast<std::size_t>(v);
     }},
    {"tasks",
     [](SweepCell& c, double v) {
       c.scenario.workload.count = static_cast<std::size_t>(v);
     }},
    {"replications",
     [](SweepCell& c, double v) {
       c.scenario.replications = static_cast<std::size_t>(v);
     }},
    {"mean_comm_cost",
     [](SweepCell& c, double v) { c.scenario.cluster.comm.mean_cost = v; }},
    {"comm_nu", [](SweepCell& c, double v) { c.scenario.comm_nu = v; }},
    {"rate_nu", [](SweepCell& c, double v) { c.scenario.rate_nu = v; }},
    {"sched_time_scale",
     [](SweepCell& c, double v) { c.scenario.sched_time_scale = v; }},
    {"mean_interarrival",
     [](SweepCell& c, double v) {
       c.scenario.workload.mean_interarrival = v;
     }},
    {"burstiness",
     [](SweepCell& c, double v) { c.scenario.workload.burstiness = v; }},
    {"param_a",
     [](SweepCell& c, double v) { c.scenario.workload.param_a = v; }},
    {"param_b",
     [](SweepCell& c, double v) { c.scenario.workload.param_b = v; }},
};

}  // namespace

std::vector<std::string> expand_scheduler_selector(
    const std::string& selector) {
  const auto& registry = SchedulerRegistry::instance();
  std::vector<std::string> names;
  auto add = [&](const std::string& canonical) {
    if (std::find(names.begin(), names.end(), canonical) == names.end()) {
      names.push_back(canonical);
    }
  };
  const auto tokens = split_list(selector);
  if (tokens.empty()) return all_schedulers();
  for (const auto& token : tokens) {
    const std::string t = lower(token);
    if (t == "all") {
      for (const auto& name : registry.names()) add(name);
    } else if (t == "paper") {
      for (const auto& name : registry.names_tagged(kSchedulerTagPaper))
        add(name);
    } else if (t == "baseline" || t == "baselines") {
      for (const auto& name : registry.names_tagged(kSchedulerTagBaseline))
        add(name);
    } else if (t == "metaheuristic" || t == "metaheuristics" || t == "meta") {
      for (const auto& name :
           registry.names_tagged(kSchedulerTagMetaheuristic))
        add(name);
    } else {
      add(registry.canonical_name(token));
    }
  }
  return names;
}

Sweep sweep_from_config(const util::Config& cfg,
                        const std::string& scheduler_override) {
  Sweep sweep(cfg.get("scenario.name", "config"));
  sweep.base(scenario_from_config(cfg));
  sweep.params(scheduler_params_from_config(cfg));

  std::string selector = cfg.get("sweep.schedulers", "");
  if (!scheduler_override.empty()) selector = scheduler_override;

  // Scalar axes in file key order (lexicographic — Config::section's
  // order), so the flattening is reproducible from the file alone.
  for (const auto& [key, value] : cfg.section("sweep")) {
    if (key == "schedulers") continue;
    const auto values = parse_axis_values(key, value);
    ScenarioAxisApply apply = nullptr;
    for (const auto& [name, fn] : kScenarioAxes) {
      if (key == name) apply = fn;
    }
    if (apply != nullptr) {
      sweep.axis(key, values, apply);
    } else {
      sweep.param_axis(key, values);
    }
  }

  // The scheduler axis is always innermost: rows group by parameter
  // point, matching how comparison tables read.
  sweep.schedulers(expand_scheduler_selector(selector));
  return sweep;
}

}  // namespace gasched::exp
