#pragma once
/// \file
/// The paper-figure suite as data: every fig03–fig11 grid from
/// conf_ipps_PageN05 registered once, so one driver (tools/figset) can
/// run the whole suite — or any tagged/glob-selected subset — as a
/// sequence of sweeps with shared progress, per-figure CSV/JSONL output
/// files, and a run manifest. The bench binaries (bench/fig*.cpp) are
/// thin wrappers over the same definitions, so a figure's grid, scale
/// defaults, and shape check live in exactly one place.
///
/// Because exp::Sweep job lists are deterministic, figure runs compose
/// with resume (SinkMode::kResume skips cells already on disk) and with
/// sharding (Sweep::shard partitions the job list across machines);
/// merge_csv_shards / merge_jsonl_shards stitch shard outputs back into
/// files byte-identical to an unsharded run.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.hpp"

namespace gasched::exp {

/// Scale-resolved parameters a figure grid is built from. Produced by
/// FigureDef::scale() (quick or paper-scale defaults) and then
/// overridable from the command line.
struct FigScale {
  std::size_t tasks = 1000;       ///< tasks per simulation
  std::size_t procs = 50;         ///< processors (paper: 50)
  std::size_t reps = 3;           ///< replications per cell
  std::size_t generations = 120;  ///< GA generation cap
  std::size_t population = 20;    ///< GA population (paper: 20)
  std::size_t batch = 200;        ///< fixed batch size (paper: 200)
  std::uint64_t seed = 20050404;  ///< base seed (IPPS 2005 vintage)
  bool full = false;              ///< paper-scale switch
};

/// One figure of the paper, registered as data: identity and paper
/// context, quick/full scale defaults, a builder that declares the grid
/// for a resolved scale, and a report that prints the figure-specific
/// derived tables and qualitative shape check from a completed result.
struct FigureDef {
  std::string id;           ///< suite key and file stem ("fig06")
  std::string number;       ///< display name ("Figure 6")
  std::string title;
  std::string paper_expectation;  ///< the qualitative claim to reproduce
  std::string paper_section;      ///< e.g. "§4.3"
  std::vector<std::string> tags;  ///< subset selectors ("makespan", ...)

  std::size_t quick_tasks = 1000;
  std::size_t quick_reps = 3;
  std::size_t quick_generations = 120;
  /// Task-count override at full scale (0 = the suite default of 10000;
  /// figs 3, 5 and 7 pin their own counts as the paper does).
  std::size_t full_tasks = 0;
  /// False for figures that pivot/print their own tables (3, 5, 7): the
  /// generic grid table would only repeat them.
  bool grid_table = true;

  /// Declares the figure's grid for `s`. The returned sweep has base
  /// scenario, params, axes, extra columns, and any custom runner set;
  /// parallelism, sinks, shard, and progress are the caller's business.
  std::function<Sweep(const FigScale& s)> build;
  /// Prints derived tables and the shape-check verdict. Only valid for
  /// results with no skipped cells (a resumed or sharded run holds only
  /// part of the data; the driver omits the report and says so).
  std::function<void(const SweepResult& r, const FigScale& s,
                     std::ostream& os)>
      report;

  /// Quick or paper-scale parameters for this figure (tasks 10000 /
  /// reps 50 / generations 1000 at full scale, unless full_tasks pins
  /// the count).
  FigScale scale(bool full) const;
};

/// Process-wide figure registry, pre-populated with fig03–fig11. Same
/// contract as the scheduler/distribution registries: entries are never
/// removed, so references stay valid; add() rejects duplicate ids.
class FigSet {
 public:
  static FigSet& instance();

  /// Registers a figure (user extensions). Throws std::invalid_argument
  /// on an empty/duplicate id or missing build.
  void add(FigureDef def);

  /// All figures in registration (= paper) order.
  const std::vector<FigureDef>& figures() const;

  /// The figure with `id` (exact match). Throws std::runtime_error
  /// listing every registered id when unknown.
  const FigureDef& find(const std::string& id) const;

  /// Figures whose id matches glob `only` (empty = all; `*`, `?`, and
  /// `[a-z]` classes — e.g. "fig0[5-9]") and that carry `tag` (empty =
  /// any), in registration order.
  std::vector<const FigureDef*> select(const std::string& only,
                                       const std::string& tag) const;

 private:
  FigSet();
  std::vector<FigureDef> figures_;
};

/// Glob match over `text`: `*` (any run), `?` (any char), and
/// `[...]`/`[!...]` character classes with `-` ranges. Anchored at both
/// ends, case-sensitive.
bool glob_match(const std::string& pattern, const std::string& text);

/// Parses a `--shard I/N` specification into (index, count). Strict:
/// both parts must be whole decimal numbers, N > 0, I < N — trailing
/// garbage is rejected, not ignored. Throws std::runtime_error with a
/// usage-quality message otherwise (shared by figset and run_scenario).
std::pair<std::size_t, std::size_t> parse_shard_spec(
    const std::string& spec);

/// Stitches shard CSV files (disjoint subsets of one sweep's rows, as
/// written by CsvSink under Sweep::shard) into `out`: one header, data
/// lines in ascending cell-index order, every line byte-for-byte as the
/// shard wrote it — so the merged file is byte-identical to an unsharded
/// run. Throws std::runtime_error on a header mismatch between shards,
/// a duplicate cell index, or an unparseable line.
void merge_csv_shards(const std::vector<std::filesystem::path>& shards,
                      const std::filesystem::path& out);

/// JSONL counterpart of merge_csv_shards: lines are kept verbatim and
/// ordered by their "index" field. (Unlike the CSV, JSONL rows contain
/// wall-clock numbers, so the merged file matches an unsharded run's
/// row set and order but not its bytes.)
void merge_jsonl_shards(const std::vector<std::filesystem::path>& shards,
                        const std::filesystem::path& out);

/// `figset plot`: writes ready-to-run plot scripts for `fig` into `dir`,
/// next to the `<id>.csv` a `figset run` left there — `<id>.gp`
/// (gnuplot ≥ 5.0) and `<id>.py` (matplotlib + the csv stdlib module,
/// no pandas). Both read the CSV by relative name, so they run from
/// inside the output directory, and both render `<id>.png`.
///
/// The plot shape is derived from the figure's grid: a numeric
/// non-scheduler axis becomes the x axis with one line per scheduler
/// (efficiency-tagged figures plot efficiency_mean, the rest
/// makespan_mean ± makespan_ci95); grids with only categorical axes
/// become labeled bars. Scripts reference CSV columns strictly by name
/// — gnuplot `column('…')`/`strcol('…')`, python `row['…']` — and only
/// names from metrics::csv_columns for the figure's sweep; the
/// figset_plot_test smoke test enforces that vocabulary.
///
/// Returns the paths written (gp first). Throws std::runtime_error when
/// a script file cannot be created.
std::vector<std::filesystem::path> write_plot_scripts(
    const FigureDef& fig, const FigScale& scale,
    const std::filesystem::path& dir);

}  // namespace gasched::exp
