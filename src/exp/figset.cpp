#include "exp/figset.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <string_view>
#include <system_error>

#include "core/fitness.hpp"
#include "core/init.hpp"
#include "exp/runner.hpp"
#include "ga/engine.hpp"
#include "sim/cluster.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace gasched::exp {

namespace {

// --- grid building blocks ---------------------------------------------------

/// Shared [scheduler] parameters for a figure grid at scale `s` (the
/// same set bench_common::scheduler_params builds from BenchParams).
SchedulerParams fig_params(const FigScale& s, bool pn_dynamic_batch) {
  SchedulerParams o;
  o.set("batch_size", s.batch);
  o.set("max_generations", s.generations);
  o.set("population", s.population);
  o.set("pn_dynamic_batch", pn_dynamic_batch);
  return o;
}

/// The standard figure scenario: paper cluster at `mean_comm_cost` with
/// `spec` sizes, scaled by `s`.
Scenario fig_scenario(const FigScale& s, const WorkloadSpec& spec,
                      double mean_comm_cost, std::string name) {
  Scenario sc;
  sc.name = std::move(name);
  sc.cluster = paper_cluster(mean_comm_cost, s.procs);
  sc.workload = spec;
  sc.workload.count = s.tasks;
  sc.seed = s.seed;
  sc.replications = s.reps;
  return sc;
}

Sweep fig_sweep(const std::string& id, const FigScale& s,
                const WorkloadSpec& spec, double mean_comm_cost,
                bool pn_dynamic_batch) {
  Sweep sweep(id);
  sweep.base(fig_scenario(s, spec, mean_comm_cost, id));
  sweep.params(fig_params(s, pn_dynamic_batch));
  return sweep;
}

/// Label of `axis` on an executed row, parsed as a double.
double row_coord(const metrics::SweepRow& row, const std::string& axis) {
  for (const auto& [name, label] : row.coords) {
    if (name == axis) return std::stod(label);
  }
  throw std::out_of_range("figset: row has no axis '" + axis + "'");
}

WorkloadSpec dist_spec(const std::string& dist, double a, double b = 0.0) {
  WorkloadSpec spec;
  spec.dist = dist;
  spec.param_a = a;
  spec.param_b = b;
  return spec;
}

// --- makespan bar figures (6, 8, 9, 10, 11) ---------------------------------

/// A seven-scheduler makespan bar chart: one grid row per scheduler in
/// all_schedulers() order; `check` receives the mean makespans in that
/// order.
FigureDef makespan_figure(
    std::string id, std::string number, std::string title,
    std::string expectation, std::string section, std::string tag,
    WorkloadSpec spec, double mean_comm_cost,
    std::function<void(const std::vector<double>&, std::ostream&)> check) {
  FigureDef def;
  def.id = std::move(id);
  def.number = std::move(number);
  def.title = std::move(title);
  def.paper_expectation = std::move(expectation);
  def.paper_section = std::move(section);
  def.tags = {"makespan", std::move(tag)};
  def.build = [id = def.id, spec, mean_comm_cost](const FigScale& s) {
    Sweep sweep = fig_sweep(id, s, spec, mean_comm_cost,
                            /*pn_dynamic_batch=*/true);
    sweep.schedulers(all_schedulers());
    return sweep;
  };
  def.report = [check = std::move(check)](const SweepResult& r,
                                          const FigScale&, std::ostream& os) {
    check(r.makespan_means(), os);
  };
  return def;
}

// --- efficiency sweep figures (5, 7) ----------------------------------------

std::vector<double> efficiency_inv_costs(bool full) {
  return full ? std::vector<double>{0.01, 0.02, 0.03, 0.04, 0.05,
                                    0.06, 0.07, 0.08, 0.09, 0.10}
              : std::vector<double>{0.01, 0.025, 0.05, 0.075, 0.10};
}

/// Pivots an efficiency grid (inv_comm_cost × the paper's seven) into
/// the paper's reading direction — one row per cost point, schedulers as
/// columns — prints the table, and returns rows[point] = {inv_cost,
/// eff...}.
std::vector<std::vector<double>> print_efficiency_pivot(
    const SweepResult& r, std::ostream& os) {
  const auto schedulers = all_schedulers();
  const std::size_t stride = schedulers.size();
  const std::size_t points = r.rows.size() / stride;
  std::vector<std::string> header{"1/mean_comm_cost"};
  for (const auto& kind : schedulers) header.push_back(kind);
  util::Table table(header);
  std::vector<std::vector<double>> rows;
  for (std::size_t pi = 0; pi < points; ++pi) {
    const double inv = row_coord(r.rows[pi * stride], "inv_comm_cost");
    std::vector<double> row{inv};
    std::vector<std::string> cells{util::fmt(inv, 3)};
    for (std::size_t si = 0; si < stride; ++si) {
      const double eff = r.rows[pi * stride + si].cell.efficiency.mean;
      row.push_back(eff);
      cells.push_back(util::fmt(eff, 4));
    }
    table.add_row(cells);
    rows.push_back(std::move(row));
  }
  table.print(os);
  return rows;
}

FigureDef efficiency_figure(
    std::string id, std::string number, std::string title,
    std::string expectation, std::string section, std::string tag,
    WorkloadSpec spec,
    std::function<void(const std::vector<std::vector<double>>&,
                       std::ostream&)>
        check) {
  FigureDef def;
  def.id = std::move(id);
  def.number = std::move(number);
  def.title = std::move(title);
  def.paper_expectation = std::move(expectation);
  def.paper_section = std::move(section);
  def.tags = {"efficiency", std::move(tag)};
  def.full_tasks = 1000;  // the paper uses 1000 tasks for these figures
  def.grid_table = false;
  def.build = [id = def.id, spec](const FigScale& s) {
    // The paper fixes the batch size at 200 here (no dynamic batch).
    Sweep sweep = fig_sweep(id, s, spec, /*mean_comm_cost=*/20.0,
                            /*pn_dynamic_batch=*/false);
    sweep.axis("inv_comm_cost", efficiency_inv_costs(s.full),
               [](SweepCell& c, double inv) {
                 c.scenario.cluster.comm.mean_cost = 1.0 / inv;
               });
    sweep.schedulers(all_schedulers());
    return sweep;
  };
  def.report = [check = std::move(check)](const SweepResult& r,
                                          const FigScale&, std::ostream& os) {
    check(print_efficiency_pivot(r, os), os);
  };
  return def;
}

// --- Figure 3: GA convergence trajectories ----------------------------------

/// Observable system view of a freshly built cluster: Linpack rates, no
/// pending load, comm estimates primed at the true link means (the GA is
/// studied in steady state here, as in the paper's Fig 3).
sim::SystemView steady_state_view(const sim::Cluster& cluster) {
  sim::SystemView v;
  v.procs.resize(cluster.size());
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    v.procs[j].id = static_cast<sim::ProcId>(j);
    v.procs[j].rate = cluster.processors[j].base_rate;
    v.procs[j].comm_estimate =
        cluster.comm->true_mean(static_cast<sim::ProcId>(j));
    v.procs[j].comm_observations = 1;
  }
  return v;
}

/// Sampling stride for the trajectory columns (~20 points per run).
std::size_t fig3_step(std::size_t generations) {
  return std::max<std::size_t>(1, generations / 20);
}

/// Mean makespan-reduction trajectory (one value per generation) for
/// `level` re-balances per individual, averaged over s.reps replications.
/// `cell_index` keeps the historical GA stream assignment (level index).
std::vector<double> fig3_trajectory(const FigScale& s, std::size_t level,
                                    std::size_t cell_index, bool parallel) {
  std::vector<std::vector<double>> per_rep(
      s.reps, std::vector<double>(s.generations + 1, 0.0));
  auto body = [&](std::size_t rep) {
    const util::Rng base(s.seed);
    util::Rng cluster_rng = base.split(2 * rep);
    util::Rng task_rng = base.split(2 * rep + 1);
    const sim::Cluster cluster =
        sim::build_cluster(paper_cluster(20.0, s.procs), cluster_rng);
    const sim::SystemView view = steady_state_view(cluster);

    workload::NormalSizes dist(1000.0, 9e5);
    std::vector<double> sizes(s.tasks);
    for (auto& sz : sizes) sz = dist.sample(task_rng);

    const core::ScheduleCodec codec(s.tasks, cluster.size());
    const core::ScheduleEvaluator eval(sizes, view, /*use_comm=*/true);

    // All three series start from the *same* initial population so the
    // re-balance levels are compared like-for-like.
    util::Rng init_rng = base.split(500 + rep);
    const auto shared_init =
        core::initial_population(codec, eval, s.population, 0.5, init_rng);

    ga::GaConfig cfg;
    cfg.population = s.population;
    cfg.max_generations = s.generations;
    cfg.improvement_passes = level;
    cfg.record_history = true;
    const ga::RouletteSelection sel;
    const ga::CycleCrossover cx;
    const ga::SwapMutation mut;
    const ga::GaEngine engine(cfg, sel, cx, mut);
    const core::ScheduleProblem problem(codec, eval);
    util::Rng ga_rng = base.split(1000 + 10 * rep + cell_index);
    auto init = shared_init;
    const auto result = engine.run(problem, std::move(init), ga_rng);
    const double initial = result.objective_history.front();
    for (std::size_t g = 0; g < per_rep[rep].size(); ++g) {
      const double ms = g < result.objective_history.size()
                            ? result.objective_history[g]
                            : result.objective_history.back();
      per_rep[rep][g] = 1.0 - ms / initial;
    }
  };
  if (parallel && s.reps > 1) {
    util::global_pool().parallel_for(0, s.reps, body);
  } else {
    for (std::size_t rep = 0; rep < s.reps; ++rep) body(rep);
  }

  std::vector<double> mean(s.generations + 1, 0.0);
  for (std::size_t rep = 0; rep < s.reps; ++rep) {
    for (std::size_t g = 0; g < mean.size(); ++g) mean[g] += per_rep[rep][g];
  }
  for (auto& v : mean) v /= static_cast<double>(s.reps);
  return mean;
}

FigureDef fig03_def() {
  FigureDef def;
  def.id = "fig03";
  def.number = "Figure 3";
  def.title = "makespan reduction per GA generation";
  def.paper_expectation =
      "largest gains in first ~100 generations; final makespan ~75% (pure "
      "GA) / ~70% (1 rebalance) / ~65% (50 rebalances) of initial";
  def.paper_section = "§3";
  def.tags = {"ga", "convergence"};
  def.quick_tasks = 200;
  def.quick_reps = 10;
  def.quick_generations = 300;
  def.full_tasks = 200;  // Fig 3 studies one batch, not the 10k-task stream
  def.grid_table = false;
  def.build = [](const FigScale& s) {
    Sweep sweep("fig03");
    sweep.base(fig_scenario(s, WorkloadSpec{}, 20.0, "fig03"));
    sweep.params(fig_params(s, /*pn_dynamic_batch=*/true));
    sweep.axis("rebalances", {0.0, 1.0, 50.0}, {});
    std::vector<std::string> cols{"final_reduction"};
    const std::size_t step = fig3_step(s.generations);
    for (std::size_t g = 0; g <= s.generations; g += step) {
      cols.push_back("red_g" + std::to_string(g));
    }
    sweep.extra_columns(std::move(cols));
    sweep.runner([s](const SweepCell& cell, bool parallel) {
      const auto level =
          static_cast<std::size_t>(cell.coord_value("rebalances"));
      const std::vector<double> traj =
          fig3_trajectory(s, level, cell.index, parallel);
      CellOutcome out;
      out.extras.emplace_back("final_reduction", traj.back());
      const std::size_t step = fig3_step(s.generations);
      for (std::size_t g = 0; g <= s.generations; g += step) {
        out.extras.emplace_back("red_g" + std::to_string(g), traj[g]);
      }
      return out;
    });
    return sweep;
  };
  def.report = [](const SweepResult& r, const FigScale& s,
                  std::ostream& os) {
    util::Table table(
        {"generation", "pure GA", "1 rebalance", "50 rebalances"});
    const std::size_t step = fig3_step(s.generations);
    for (std::size_t g = 0; g <= s.generations; g += step) {
      const std::string col = "red_g" + std::to_string(g);
      table.add_row(util::fmt(static_cast<double>(g), 6),
                    {r.rows[0].extra(col), r.rows[1].extra(col),
                     r.rows[2].extra(col)});
    }
    table.print(os);
    os << "\nFinal makespan as % of initial: pure GA="
       << util::fmt(100.0 * (1.0 - r.rows[0].extra("final_reduction")), 4)
       << "%  1 rebalance="
       << util::fmt(100.0 * (1.0 - r.rows[1].extra("final_reduction")), 4)
       << "%  50 rebalances="
       << util::fmt(100.0 * (1.0 - r.rows[2].extra("final_reduction")), 4)
       << "%\n";
  };
  return def;
}

// --- Figure 4: scheduling-time cost of re-balancing -------------------------

FigureDef fig04_def() {
  FigureDef def;
  def.id = "fig04";
  def.number = "Figure 4";
  def.title = "scheduling time vs re-balances per generation";
  def.paper_expectation =
      "wall-clock scheduling time increases linearly with the number of "
      "re-balances";
  def.paper_section = "§3";
  def.tags = {"overhead", "ga"};
  def.quick_tasks = 1500;
  def.quick_reps = 2;
  def.quick_generations = 60;
  def.build = [](const FigScale& s) {
    Sweep sweep = fig_sweep("fig04", s,
                            dist_spec("normal", 1000.0, 9e5),
                            /*mean_comm_cost=*/20.0,
                            /*pn_dynamic_batch=*/true);
    sweep.scheduler("PN");
    std::vector<double> levels;
    for (std::size_t k = 0; k <= 20; k += 2) {
      levels.push_back(static_cast<double>(k));
    }
    sweep.param_axis("rebalances", levels);
    return sweep;
  };
  def.report = [](const SweepResult& r, const FigScale&, std::ostream& os) {
    std::vector<double> levels, ys;
    for (const auto& row : r.rows) {
      levels.push_back(row_coord(row, "rebalances"));
      ys.push_back(row.cell.sched_wall.mean);
    }
    const util::LinearFit fit = util::linear_fit(levels, ys);
    os << "\nLinear fit: time = " << util::fmt(fit.intercept, 4) << " + "
       << util::fmt(fit.slope, 4) << " * rebalances   (R^2 = "
       << util::fmt(fit.r2, 4) << ")\n"
       << (fit.r2 > 0.9 ? "Shape REPRODUCED: linear growth.\n"
                        : "Shape NOT clearly linear at this scale.\n");
  };
  return def;
}

// --- Extension: certified optimality gap ------------------------------------

/// Extension grid quantifying the paper's unquantified "near-optimal"
/// claim: four schedulers on the H=600-task / M=50-processor batch, with
/// certified lower-bound columns from exp::certified_bounds. `lb_qp`
/// (interior-point relaxation, docs/bounds.md) must dominate `lb_comb`
/// (combinatorial) on every cell — by construction it is their max — and
/// `gap_pct` is the scheduler's certified distance from optimal.
FigureDef extgap_def() {
  FigureDef def;
  def.id = "extgap";
  def.number = "Extension G";
  def.title = "certified optimality gap via the relaxation bound";
  def.paper_expectation =
      "lb_qp >= lb_comb on every cell, and the size-aware batch "
      "schedulers sit within tens of percent of the certified bound "
      "(quantifying §3's 'near-optimal schedules' claim)";
  def.paper_section = "§3";
  def.tags = {"bounds", "gap", "extension"};
  def.quick_tasks = 600;
  def.quick_reps = 3;
  def.quick_generations = 100;
  def.full_tasks = 600;  // the H=600, M=50 grid of docs/bounds.md
  def.build = [](const FigScale& s) {
    Sweep sweep = fig_sweep("extgap", s, dist_spec("normal", 1000.0, 9e5),
                            /*mean_comm_cost=*/10.0,
                            /*pn_dynamic_batch=*/true);
    sweep.schedulers({"PN", "EF", "MM", "RR"});
    sweep.extra_columns({"lb_comb", "lb_qp", "gap_pct"});
    sweep.runner([](const SweepCell& cell, bool parallel) {
      CellOutcome out;
      out.summary =
          run_cell(cell.scenario, cell.scheduler, cell.params, parallel);
      const metrics::RelaxationBoundOptions opts;  // enabled, 1e-8, 60
      const CertifiedBounds b =
          certified_bounds(cell.scenario, opts, parallel);
      out.extras.emplace_back("lb_comb", b.lb_comb);
      out.extras.emplace_back("lb_qp", b.lb_qp);
      out.extras.emplace_back(
          "gap_pct", b.lb_qp > 0.0
                         ? 100.0 * (out.summary.makespan.mean / b.lb_qp - 1.0)
                         : 0.0);
      return out;
    });
    return sweep;
  };
  def.report = [](const SweepResult& r, const FigScale&, std::ostream& os) {
    bool dominates = true;
    double best_gap = std::numeric_limits<double>::infinity();
    std::string best;
    for (const auto& row : r.rows) {
      if (row.extra("lb_qp") < row.extra("lb_comb") - 1e-9) dominates = false;
      if (row.extra("gap_pct") < best_gap) {
        best_gap = row.extra("gap_pct");
        best = row.scheduler;
      }
    }
    os << "\nlb_qp dominates lb_comb on all cells: "
       << (dominates ? "YES" : "NO — BOUND BUG") << "\n"
       << "Tightest certified gap: " << best << " at "
       << util::fmt(best_gap, 4) << "% above the relaxation bound\n";
  };
  return def;
}

}  // namespace

// --- FigureDef --------------------------------------------------------------

FigScale FigureDef::scale(bool full) const {
  FigScale s;
  s.full = full;
  if (full) {
    s.tasks = full_tasks != 0 ? full_tasks : 10000;
    s.reps = 50;
    s.generations = 1000;
  } else {
    s.tasks = quick_tasks;
    s.reps = quick_reps;
    s.generations = quick_generations;
  }
  return s;
}

// --- FigSet -----------------------------------------------------------------

FigSet& FigSet::instance() {
  static FigSet set;
  return set;
}

FigSet::FigSet() {
  add(fig03_def());
  add(fig04_def());

  add(efficiency_figure(
      "fig05", "Figure 5", "efficiency vs 1/mean comm cost (normal task sizes)",
      "PN has the highest efficiency at every communication cost; all "
      "schedulers improve as communication gets cheaper",
      "§4.3", "normal", dist_spec("normal", 1000.0, 9e5),
      [](const std::vector<std::vector<double>>& rows, std::ostream& os) {
        // PN (column 5 = index 5 in row, after the x value) should win at
        // most sweep points.
        const std::size_t pn_col = 5;  // x, EF, LL, RR, ZO, PN, MM, MX
        std::size_t pn_wins = 0;
        for (const auto& row : rows) {
          bool best = true;
          for (std::size_t c = 1; c < row.size(); ++c) {
            if (c != pn_col && row[c] > row[pn_col]) best = false;
          }
          if (best) ++pn_wins;
        }
        os << "\nPN best at " << pn_wins << "/" << rows.size()
           << " sweep points.\n";
      }));

  add(makespan_figure(
      "fig06", "Figure 6", "makespan bars (normal task sizes, dynamic batch)",
      "PN has the lowest makespan of all seven schedulers", "§4.3", "normal",
      dist_spec("normal", 1000.0, 9e5), /*mean_comm_cost=*/20.0,
      [](const std::vector<double>& means, std::ostream& os) {
        const std::size_t pn = 4;  // EF LL RR ZO PN MM MX
        bool pn_best = true;
        for (std::size_t i = 0; i < means.size(); ++i) {
          if (i != pn && means[i] < means[pn]) pn_best = false;
        }
        os << "\nPN lowest makespan: " << (pn_best ? "YES" : "no") << "\n";
      }));

  add(efficiency_figure(
      "fig07", "Figure 7", "efficiency vs 1/mean comm cost (uniform 10-1000)",
      "the meta-heuristic schedulers (PN, ZO) are clearly more efficient "
      "than the simple heuristics",
      "§4.4", "uniform", dist_spec("uniform", 10.0, 1000.0),
      [](const std::vector<std::vector<double>>& rows, std::ostream& os) {
        // Mean efficiency of {PN, ZO} vs best simple heuristic.
        double meta = 0.0, heuristic = 0.0;
        for (const auto& row : rows) {
          meta += 0.5 * (row[4] + row[5]);  // ZO + PN
          double best_simple = 0.0;
          for (const std::size_t c : {1u, 2u, 3u, 6u, 7u}) {
            best_simple = std::max(best_simple, row[c]);
          }
          heuristic += best_simple;
        }
        os << "\nMean meta-heuristic efficiency "
           << util::fmt(meta / rows.size(), 4)
           << " vs best simple heuristic "
           << util::fmt(heuristic / rows.size(), 4) << "\n";
      }));

  add(makespan_figure(
      "fig08", "Figure 8", "makespan bars (uniform 10-100, ratio 1:10)",
      "schedulers perform similarly: the narrow task-size range flattens "
      "the differences",
      "§4.4", "uniform", dist_spec("uniform", 10.0, 100.0),
      /*mean_comm_cost=*/5.0,
      [](const std::vector<double>& means, std::ostream& os) {
        const auto s = util::summarize(means);
        os << "\nSpread across schedulers: (max-min)/mean = "
           << util::fmt((s.max - s.min) / s.mean, 4)
           << " (small spread expected)\n";
      }));

  add(makespan_figure(
      "fig09", "Figure 9", "makespan bars (uniform 10-10000, ratio 1:1000)",
      "differences between schedulers become accentuated; the "
      "meta-heuristic and size-aware batch schedulers lead, LL/RR trail "
      "badly",
      "§4.4", "uniform", dist_spec("uniform", 10.0, 10000.0),
      /*mean_comm_cost=*/5.0,
      [](const std::vector<double>& means, std::ostream& os) {
        const auto s = util::summarize(means);
        // EF LL RR ZO PN MM MX: load-aware schedulers vs load-blind LL/RR.
        const double pn = means[4];
        const double worst_blind = std::max(means[1], means[2]);
        os << "\nSpread across schedulers: (max-min)/mean = "
           << util::fmt((s.max - s.min) / s.mean, 4)
           << " (large spread expected)\nPN vs worst load-blind scheduler: "
           << util::fmt(pn, 5) << " vs " << util::fmt(worst_blind, 5)
           << " (accentuated gap expected)\n";
      }));

  add(makespan_figure(
      "fig10", "Figure 10", "makespan bars (Poisson task sizes, mean 10 MFLOPs)",
      "PN best, MM next; MX performs badly at this small mean", "§4.5",
      "poisson", dist_spec("poisson", 10.0), /*mean_comm_cost=*/1.0,
      [](const std::vector<double>& means, std::ostream& os) {
        const std::size_t pn = 4, mm = 5, mx = 6;
        bool pn_best = true;
        for (std::size_t i = 0; i < means.size(); ++i) {
          if (i != pn && means[i] < means[pn]) pn_best = false;
        }
        os << "\nPN lowest makespan: " << (pn_best ? "YES" : "no")
           << "; MM/MX ratio = " << util::fmt(means[mm] / means[mx], 4)
           << " (< 1 expected: MM beats MX at small means)\n";
      }));

  add(makespan_figure(
      "fig11", "Figure 11",
      "makespan bars (Poisson task sizes, mean 100 MFLOPs)",
      "batch schedulers all perform well; immediate-mode schedulers trail",
      "§4.5", "poisson", dist_spec("poisson", 100.0), /*mean_comm_cost=*/1.0,
      [](const std::vector<double>& means, std::ostream& os) {
        // EF LL RR ZO PN MM MX — batch (3,4,5,6) vs immediate (0,1,2).
        const double batch =
            (means[3] + means[4] + means[5] + means[6]) / 4.0;
        const double immediate = (means[0] + means[1] + means[2]) / 3.0;
        os << "\nMean batch makespan " << util::fmt(batch, 5)
           << " vs immediate " << util::fmt(immediate, 5)
           << " (batch <= immediate expected)\n";
      }));

  // Extension figures (not in the paper) register after the paper's
  // nine, keeping their positional order stable for tests and docs.
  add(extgap_def());
}

void FigSet::add(FigureDef def) {
  if (def.id.empty()) {
    throw std::invalid_argument("FigSet: figure id must not be empty");
  }
  if (!def.build) {
    throw std::invalid_argument("FigSet: figure '" + def.id +
                                "' has no build function");
  }
  for (const auto& existing : figures_) {
    if (existing.id == def.id) {
      throw std::invalid_argument("FigSet: duplicate figure id '" + def.id +
                                  "'");
    }
  }
  figures_.push_back(std::move(def));
}

const std::vector<FigureDef>& FigSet::figures() const { return figures_; }

const FigureDef& FigSet::find(const std::string& id) const {
  for (const auto& fig : figures_) {
    if (fig.id == id) return fig;
  }
  std::string known;
  for (const auto& fig : figures_) {
    if (!known.empty()) known += ", ";
    known += fig.id;
  }
  throw std::runtime_error("FigSet: unknown figure '" + id +
                           "' (registered: " + known + ")");
}

std::vector<const FigureDef*> FigSet::select(const std::string& only,
                                             const std::string& tag) const {
  std::vector<const FigureDef*> out;
  for (const auto& fig : figures_) {
    if (!only.empty() && !glob_match(only, fig.id)) continue;
    if (!tag.empty() &&
        std::find(fig.tags.begin(), fig.tags.end(), tag) == fig.tags.end()) {
      continue;
    }
    out.push_back(&fig);
  }
  return out;
}

// --- glob matching ----------------------------------------------------------

bool glob_match(const std::string& pattern, const std::string& text) {
  constexpr std::size_t npos = std::string::npos;
  std::size_t p = 0, t = 0;
  std::size_t star_p = npos, star_t = 0;
  while (t < text.size()) {
    bool advanced = false;
    if (p < pattern.size()) {
      const char pc = pattern[p];
      if (pc == '*') {
        star_p = p++;
        star_t = t;
        continue;
      }
      if (pc == '?') {
        ++p;
        ++t;
        continue;
      }
      if (pc == '[') {
        // Character class: [abc], [a-z], negated [!...] / [^...]. A ']'
        // directly after the (possibly negated) opening bracket is a
        // literal member.
        std::size_t q = p + 1;
        bool negate = false;
        if (q < pattern.size() &&
            (pattern[q] == '!' || pattern[q] == '^')) {
          negate = true;
          ++q;
        }
        const std::size_t start = q;
        bool matched = false;
        std::size_t close = npos;
        while (q < pattern.size()) {
          if (pattern[q] == ']' && q > start) {
            close = q;
            break;
          }
          if (q + 2 < pattern.size() && pattern[q + 1] == '-' &&
              pattern[q + 2] != ']') {
            if (text[t] >= pattern[q] && text[t] <= pattern[q + 2]) {
              matched = true;
            }
            q += 3;
          } else {
            if (text[t] == pattern[q]) matched = true;
            ++q;
          }
        }
        if (close != npos) {
          if (matched != negate) {
            p = close + 1;
            ++t;
            advanced = true;
          }
        } else if (text[t] == '[') {  // unclosed: treat '[' literally
          ++p;
          ++t;
          advanced = true;
        }
      } else if (pc == text[t]) {
        ++p;
        ++t;
        advanced = true;
      }
    }
    if (advanced) continue;
    if (star_p != npos) {  // backtrack: let the last '*' eat one more char
      p = star_p + 1;
      t = ++star_t;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::pair<std::size_t, std::size_t> parse_shard_spec(
    const std::string& spec) {
  const std::size_t slash = spec.find('/');
  std::size_t index = 0, count = 0;
  if (slash == std::string::npos ||
      !util::parse_size_t(std::string_view(spec).substr(0, slash), index) ||
      !util::parse_size_t(std::string_view(spec).substr(slash + 1), count)) {
    throw std::runtime_error("--shard expects I/N (e.g. 0/4), got '" + spec +
                             "'");
  }
  if (count == 0 || index >= count) {
    throw std::runtime_error("--shard index " + std::to_string(index) +
                             " out of range for count " +
                             std::to_string(count));
  }
  return {index, count};
}

// --- shard merging ----------------------------------------------------------

namespace {

void write_merged(const std::filesystem::path& out, const std::string& header,
                  const std::map<std::size_t, std::string>& lines) {
  if (out.has_parent_path()) {
    std::filesystem::create_directories(out.parent_path());
  }
  std::ofstream os(out, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw std::runtime_error("merge: cannot open " + out.string() +
                             " for writing");
  }
  if (!header.empty()) os << header << '\n';
  for (const auto& [index, line] : lines) os << line << '\n';
}

}  // namespace

void merge_csv_shards(const std::vector<std::filesystem::path>& shards,
                      const std::filesystem::path& out) {
  if (shards.empty()) {
    throw std::runtime_error("merge: no shard files given");
  }
  std::string header;
  std::size_t columns = 0;
  std::map<std::size_t, std::string> lines;
  for (const auto& path : shards) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("merge: cannot open " + path.string());
    }
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      if (first) {
        first = false;
        if (header.empty()) {
          header = line;
          columns = util::parse_csv_line(header).size();
        } else if (line != header) {
          throw std::runtime_error("merge: header of " + path.string() +
                                   " does not match the first shard's");
        }
        continue;
      }
      if (line.empty()) continue;
      const auto cells = util::parse_csv_line(line);
      std::size_t index = 0;
      if (cells.size() != columns || cells.empty() ||
          !util::parse_size_t(cells[0], index)) {
        throw std::runtime_error("merge: unparseable row in " +
                                 path.string() + ": " + line);
      }
      if (!lines.emplace(index, line).second) {
        throw std::runtime_error(
            "merge: duplicate cell index " + std::to_string(index) + " in " +
            path.string() + " (shards must be disjoint)");
      }
    }
    if (first) {
      throw std::runtime_error("merge: " + path.string() +
                               " is empty (no header)");
    }
  }
  write_merged(out, header, lines);
}

void merge_jsonl_shards(const std::vector<std::filesystem::path>& shards,
                        const std::filesystem::path& out) {
  if (shards.empty()) {
    throw std::runtime_error("merge: no shard files given");
  }
  constexpr std::string_view kIndexKey = "\"index\":";
  std::map<std::size_t, std::string> lines;
  for (const auto& path : shards) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("merge: cannot open " + path.string());
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::size_t at = line.find(kIndexKey);
      std::size_t digits = at == std::string::npos ? 0 : at + kIndexKey.size();
      std::size_t end = digits;
      while (end < line.size() && std::isdigit(line[end]) != 0) ++end;
      std::size_t index = 0;
      if (at == std::string::npos || end == digits ||
          !util::parse_size_t(
              std::string_view(line).substr(digits, end - digits), index)) {
        throw std::runtime_error("merge: line without \"index\" in " +
                                 path.string() + ": " + line);
      }
      if (!lines.emplace(index, line).second) {
        throw std::runtime_error(
            "merge: duplicate cell index " + std::to_string(index) + " in " +
            path.string() + " (shards must be disjoint)");
      }
    }
  }
  write_merged(out, "", lines);
}

// --- plot-script emission (figset plot) -------------------------------------

namespace {

/// True when `label` parses completely as a double (axis labels are
/// round-trip formatted numbers for numeric axes).
bool numeric_label(const std::string& label) {
  if (label.empty()) return false;
  char* end = nullptr;
  (void)std::strtod(label.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// What to draw for one figure, derived from its grid. Exactly one of
/// `x` (numeric line plot) / `cat` (labeled bars) is non-empty.
struct PlotPlan {
  std::string x;                    ///< numeric x column
  std::string cat;                  ///< categorical label column
  std::vector<std::string> series;  ///< scheduler labels (one line each)
  std::string y;
  std::string yerr;  ///< empty = no error bars (no ci column for y)
};

PlotPlan plan_plot(const FigureDef& fig, const Sweep& sweep) {
  PlotPlan plan;
  const bool efficiency =
      std::find(fig.tags.begin(), fig.tags.end(), "efficiency") !=
      fig.tags.end();
  plan.y = efficiency ? "efficiency_mean" : "makespan_mean";
  plan.yerr = efficiency ? "" : "makespan_ci95";

  const auto axes = sweep.axis_names();
  const auto cells = sweep.flatten();
  const auto labels_of = [&cells](const std::string& axis) {
    std::vector<std::string> out;  // first-seen order = job-list order
    for (const auto& cell : cells) {
      for (const auto& [name, label] : cell.coords) {
        if (name == axis &&
            std::find(out.begin(), out.end(), label) == out.end()) {
          out.push_back(label);
        }
      }
    }
    return out;
  };

  std::string x_axis;  // last non-scheduler axis (fastest-varying)
  for (const auto& axis : axes) {
    if (axis != "scheduler") x_axis = axis;
  }
  if (!x_axis.empty()) {
    const auto labels = labels_of(x_axis);
    const bool numeric =
        std::all_of(labels.begin(), labels.end(), numeric_label);
    (numeric ? plan.x : plan.cat) = x_axis;
  }
  if (plan.x.empty() && plan.cat.empty()) plan.cat = "scheduler";
  if (!plan.x.empty() &&
      std::find(axes.begin(), axes.end(), "scheduler") != axes.end()) {
    plan.series = labels_of("scheduler");
  }
  return plan;
}

void write_script_banner(std::ostream& os, const char* comment,
                         const FigureDef& fig, const char* runner) {
  os << comment << " " << fig.id << " — " << fig.number << ": " << fig.title
     << " (" << fig.paper_section << ")\n"
     << comment << " Generated by `figset plot`; regenerate rather than "
     << "editing.\n"
     << comment << " Usage: " << runner << " " << fig.id
     << (std::string(runner) == "gnuplot" ? ".gp" : ".py") << "   (reads "
     << fig.id << ".csv, writes " << fig.id << ".png)\n";
}

void write_gnuplot(std::ostream& os, const FigureDef& fig,
                   const PlotPlan& p) {
  write_script_banner(os, "#", fig, "gnuplot");
  const std::string csv = fig.id + ".csv";
  os << "set datafile separator ','\n"
     << "set key autotitle columnhead\n"  // also names columns for column()
     << "set key outside\n"
     << "set terminal pngcairo size 960,640\n"
     << "set output '" << fig.id << ".png'\n"
     << "set title \"" << fig.number << ": " << fig.title << "\"\n"
     << "set ylabel '" << p.y << "'\n";
  if (!p.x.empty()) {
    os << "set xlabel '" << p.x << "'\n";
    if (p.series.empty()) {
      if (!p.yerr.empty()) {
        os << "plot '" << csv << "' using (column('" << p.x
           << "')):(column('" << p.y << "')):(column('" << p.yerr
           << "')) with yerrorlines lw 2 title '" << p.y << "'\n";
      } else {
        os << "plot '" << csv << "' using (column('" << p.x
           << "')):(column('" << p.y << "')) with linespoints lw 2 title '"
           << p.y << "'\n";
      }
      return;
    }
    os << "plot \\\n";
    for (std::size_t i = 0; i < p.series.size(); ++i) {
      // Rows of other schedulers yield 1/0 (undefined) and are skipped.
      os << "  '" << csv << "' using (column('" << p.x
         << "')):(strcol('scheduler') eq '" << p.series[i] << "' ? column('"
         << p.y << "') : 1/0) with linespoints lw 2 title '" << p.series[i]
         << "'" << (i + 1 < p.series.size() ? ", \\\n" : "\n");
    }
    return;
  }
  os << "set xlabel '" << p.cat << "'\n"
     << "set style fill solid 0.6\n"
     << "set boxwidth 0.6\n"
     << "set xtics rotate by -30\n";
  if (!p.yerr.empty()) {
    os << "plot '" << csv << "' using 0:(column('" << p.y
       << "')):(column('" << p.yerr << "')):xtic(strcol('" << p.cat
       << "')) with boxerrorbars title '" << p.y << "'\n";
  } else {
    os << "plot '" << csv << "' using 0:(column('" << p.y
       << "')):xtic(strcol('" << p.cat << "')) with boxes title '" << p.y
       << "'\n";
  }
}

void write_matplotlib(std::ostream& os, const FigureDef& fig,
                      const PlotPlan& p) {
  os << "#!/usr/bin/env python3\n";
  write_script_banner(os, "#", fig, "python3");
  os << "import csv\n"
     << "import matplotlib\n"
     << "matplotlib.use('Agg')\n"
     << "import matplotlib.pyplot as plt\n"
     << "\n"
     << "with open('" << fig.id << ".csv', newline='') as f:\n"
     << "    rows = [row for row in csv.DictReader(f) if not row['error']]\n"
     << "\n"
     << "fig, ax = plt.subplots(figsize=(9.6, 6.4))\n";
  if (!p.x.empty()) {
    if (p.series.empty()) {
      os << "xs = [float(row['" << p.x << "']) for row in rows]\n"
         << "ys = [float(row['" << p.y << "']) for row in rows]\n";
      if (!p.yerr.empty()) {
        os << "es = [float(row['" << p.yerr << "']) for row in rows]\n"
           << "ax.errorbar(xs, ys, yerr=es, marker='o', capsize=3)\n";
      } else {
        os << "ax.plot(xs, ys, marker='o')\n";
      }
    } else {
      os << "for name in [";
      for (std::size_t i = 0; i < p.series.size(); ++i) {
        os << "'" << p.series[i] << "'"
           << (i + 1 < p.series.size() ? ", " : "");
      }
      os << "]:\n"
         << "    series = [row for row in rows if row['scheduler'] == name]\n"
         << "    xs = [float(row['" << p.x << "']) for row in series]\n"
         << "    ys = [float(row['" << p.y << "']) for row in series]\n"
         << "    ax.plot(xs, ys, marker='o', label=name)\n"
         << "ax.legend()\n";
    }
    os << "ax.set_xlabel('" << p.x << "')\n";
  } else {
    os << "labels = [row['" << p.cat << "'] for row in rows]\n"
       << "ys = [float(row['" << p.y << "']) for row in rows]\n";
    if (!p.yerr.empty()) {
      os << "es = [float(row['" << p.yerr << "']) for row in rows]\n"
         << "ax.bar(range(len(rows)), ys, yerr=es, capsize=3)\n";
    } else {
      os << "ax.bar(range(len(rows)), ys)\n";
    }
    os << "ax.set_xticks(range(len(rows)))\n"
       << "ax.set_xticklabels(labels, rotation=30, ha='right')\n"
       << "ax.set_xlabel('" << p.cat << "')\n";
  }
  os << "ax.set_ylabel('" << p.y << "')\n"
     << "ax.set_title(\"" << fig.number << ": " << fig.title << "\")\n"
     << "fig.savefig('" << fig.id << ".png', dpi=150)\n"
     << "print('wrote " << fig.id << ".png')\n";
}

}  // namespace

std::vector<std::filesystem::path> write_plot_scripts(
    const FigureDef& fig, const FigScale& scale,
    const std::filesystem::path& dir) {
  const Sweep sweep = fig.build(scale);
  const PlotPlan plan = plan_plot(fig, sweep);
  std::filesystem::create_directories(dir);
  const std::filesystem::path gp = dir / (fig.id + ".gp");
  const std::filesystem::path py = dir / (fig.id + ".py");
  for (const auto& [path, writer] :
       {std::pair<const std::filesystem::path*,
                  void (*)(std::ostream&, const FigureDef&, const PlotPlan&)>{
            &gp, &write_gnuplot},
        {&py, &write_matplotlib}}) {
    std::ofstream os(*path, std::ios::trunc);
    if (!os) {
      throw std::runtime_error("figset plot: cannot write " + path->string());
    }
    writer(os, fig, plan);
  }
  return {gp, py};
}

}  // namespace gasched::exp
