#pragma once
// Declarative scenarios from INI-style config files, so experiments can be
// defined, shared, and replayed without recompiling. See
// examples/scenario_example.ini for the full key reference.

#include "exp/scenario.hpp"
#include "util/config.hpp"

namespace gasched::exp {

/// Builds a Scenario from a parsed config. Recognised keys (all optional,
/// defaults in parentheses):
///
///   [scenario]  name (config), seed (42), replications (5),
///               sched_time_scale (0), comm_nu (0.5), rate_nu (0.5)
///   [cluster]   processors (50), rate_lo (10), rate_hi (100),
///               availability (fixed|sinusoidal|random_walk|two_state),
///               avail_lo, avail_hi, avail_period, zero_comm,
///               drifting_comm, comm_drift_step
///   [comm]      mean_cost (20), spread_cv (0.5), jitter_cv (0.2), floor
///   [workload]  dist (normal|uniform|poisson|constant), param_a, param_b,
///               count (1000), all_at_start (true), mean_interarrival (1),
///               burstiness (1), burst_dwell (50)
///   [failures]  enabled (false), mean_uptime, mean_downtime, horizon,
///               failing_fraction
///
/// Throws std::runtime_error on unknown enumeration values.
Scenario scenario_from_config(const util::Config& cfg);

/// Builds SchedulerOptions from the same config:
///
///   [scheduler] batch_size (200), max_generations (1000),
///               population (20), rebalances (1), pn_dynamic_batch (true),
///               kpb_percent (20), islands (4), migration_interval (25)
SchedulerOptions scheduler_options_from_config(const util::Config& cfg);

/// Parses a scheduler name ("PN", "ZO", "EF", "LL", "RR", "MM", "MX",
/// "MET", "KPB", "SUF", "OLB", "DUP", "SA", "TS", "ACO", "HC", "PNI";
/// case-sensitive). Throws std::runtime_error on unknown names.
SchedulerKind scheduler_kind_from_name(const std::string& name);

}  // namespace gasched::exp
