#pragma once
// Declarative scenarios from INI-style config files, so experiments can be
// defined, shared, and replayed without recompiling. See
// examples/scenario_example.ini for the full key reference.

#include "core/numeric.hpp"
#include "exp/scenario.hpp"
#include "exp/sweep.hpp"
#include "metrics/bounds.hpp"
#include "util/config.hpp"

namespace gasched::exp {

/// Builds a Scenario from a parsed config. Recognised keys (all optional,
/// defaults in parentheses):
///
///   [scenario]  name (config), seed (42), replications (5),
///               sched_time_scale (0), comm_nu (0.5), rate_nu (0.5)
///   [cluster]   processors (50), rate_lo (10), rate_hi (100),
///               availability (fixed|sinusoidal|random_walk|two_state),
///               avail_lo, avail_hi, avail_period, zero_comm,
///               drifting_comm, comm_drift_step
///   [comm]      mean_cost (20), spread_cv (0.5), jitter_cv (0.2), floor
///   [workload]  dist (any DistributionRegistry family: normal, uniform,
///               poisson, constant, pareto, bimodal, ...; case-
///               insensitive), param_a, param_b, per-family named keys
///               (see exp/registry.hpp), count (1000), all_at_start
///               (true), mean_interarrival (1), burstiness (1),
///               burst_dwell (50), arrival (constant|diurnal|ramp|flash,
///               plus the arrival_* shape keys of
///               workload::make_rate_function)
///   [failures]  enabled (false), mean_uptime, mean_downtime, horizon,
///               failing_fraction
///
/// Throws std::runtime_error on unknown enumeration values; the
/// unknown-distribution error lists every registered family.
Scenario scenario_from_config(const util::Config& cfg);

/// The [scheduler] section as a SchedulerParams view, handed verbatim to
/// whichever scheduler factories the caller invokes. Shared keys are
/// documented in exp/params.hpp, per-scheduler keys in exp/registry.hpp.
SchedulerParams scheduler_params_from_config(const util::Config& cfg);

/// The [bounds] section as metrics::RelaxationBoundOptions:
///
///   [bounds]  enabled (false), tolerance (1e-8), max_iterations (60)
///
/// Note `enabled` defaults to *false* here — configs opt in to the
/// certified-bound report — while RelaxationBoundOptions{} defaults to
/// true for direct API callers. See docs/bounds.md.
metrics::RelaxationBoundOptions bounds_from_config(const util::Config& cfg);

/// The [eval] section: process-wide numeric-mode selection for the
/// schedule evaluators (core/numeric.hpp).
///
///   [eval]  numeric_mode ("" = leave current default: the
///           GASCHED_NUMERIC_MODE environment override if set, else
///           exact; "exact" and "fast" pin explicitly — INI beats env),
///           tolerance (1e-12), audit_sample_period (64)
///
/// `tolerance` and `audit_sample_period` configure the fast-mode
/// tolerance audit; both are ignored in exact mode.
struct EvalConfig {
  /// Empty = keep the process default (env override or exact).
  std::string numeric_mode;
  core::AuditConfig audit;
};

/// Reads the [eval] section. Throws std::runtime_error on an unknown
/// numeric_mode value (listing the legal ones).
EvalConfig eval_config_from_config(const util::Config& cfg);

/// Applies an EvalConfig process-wide: sets the default numeric mode
/// (when `numeric_mode` is non-empty) and configures the global
/// ToleranceAudit. Call once at startup, before evaluators exist.
void apply_eval_config(const EvalConfig& eval);

/// Expands a scheduler selector into canonical registry names: a
/// comma-separated mix of registry names and the tag words `paper`,
/// `baseline`, `metaheuristic` (or `meta`), plus `all` for every entry.
/// Duplicates collapse (first occurrence wins); an empty selector means
/// the paper's seven. Unknown names throw listing every registered name.
std::vector<std::string> expand_scheduler_selector(
    const std::string& selector);

/// Builds a declarative experiment grid from a config: the scenario
/// sections define the base cell (scenario_from_config /
/// scheduler_params_from_config) and the optional [sweep] section adds
/// axes:
///
///   [sweep]  schedulers (selector, default paper; always the innermost
///            axis), plus any number of `key = v1, v2, ...` scalar axes.
///            Scenario keys — procs, tasks, replications, mean_comm_cost,
///            comm_nu, rate_nu, sched_time_scale, mean_interarrival,
///            burstiness, param_a, param_b — sweep the scenario; every
///            other key sweeps a [scheduler] parameter of that name.
///            Scalar axes flatten in file key order (lexicographic).
///
/// Without a [sweep] section the grid is the scheduler axis alone — the
/// classic one-scenario scheduler comparison. `scheduler_override`, when
/// non-empty, replaces the config's scheduler selector (the CLI flag).
Sweep sweep_from_config(const util::Config& cfg,
                        const std::string& scheduler_override = "");

}  // namespace gasched::exp
