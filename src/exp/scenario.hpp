#pragma once
// Experiment scenarios: declarative descriptions of the paper's setups
// (cluster, workload, schedulers) plus factories to realise them. Used by
// every bench binary and the integration tests so figure parameters live
// in exactly one place.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/genetic_scheduler.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/policy.hpp"
#include "workload/generator.hpp"

namespace gasched::exp {

/// The seven schedulers compared in the paper (§4.1), in the order the
/// makespan bar charts list them, plus further baselines: MET / KPB /
/// SUF / OLB / DUP from the paper's reference [11] (Maheswaran et al.
/// 1999) and the Braun et al. taxonomy, the alternative meta-heuristics
/// the paper's §2 cites (SA = simulated annealing, TS = tabu search
/// [ref 6], ACO = ant colony [ref 3], HC = hill climbing), and PNI (PN
/// evolved with an island-model parallel GA, ref [2]).
enum class SchedulerKind {
  kEF, kLL, kRR, kZO, kPN, kMM, kMX,       // the paper's seven (§4.1)
  kMET, kKPB, kSUF, kOLB, kDUP,            // extra heuristic baselines
  kSA, kTS, kACO, kHC,                     // local-search meta-heuristics
  kPNI                                     // island-model PN
};

/// Display name matching the paper ("EF", "LL", "RR", "ZO", "PN", "MM",
/// "MX") or the conventional names of the extra baselines ("MET", "KPB",
/// "SUF", "OLB", "DUP", "SA", "TS", "ACO", "HC", "PNI").
const char* scheduler_name(SchedulerKind kind);

/// The paper's seven schedulers in its bar-chart order.
std::vector<SchedulerKind> all_schedulers();

/// The paper's seven plus the extra heuristic baselines.
std::vector<SchedulerKind> extended_schedulers();

/// The batch meta-heuristic searchers (PN, ZO, SA, TS, ACO, HC, PNI) —
/// the shoot-out set of bench/ext_metaheuristics.
std::vector<SchedulerKind> metaheuristic_schedulers();

/// Per-scheduler tuning shared across the suite.
struct SchedulerOptions {
  /// Batch size for the fixed-batch schedulers (MM, MX, ZO, and PN when
  /// pn_dynamic_batch is false). Paper: 200.
  std::size_t batch_size = 200;
  /// GA generation cap (paper: 1000). Benches lower this at quick scale.
  std::size_t max_generations = 1000;
  /// GA population (paper: 20, a micro GA).
  std::size_t population = 20;
  /// Re-balancing passes per individual per generation for PN (paper: 1).
  std::size_t rebalances = 1;
  /// PN uses the dynamic ⌊√(Γs+1)⌋ batch size (paper §3.7).
  bool pn_dynamic_batch = true;
  /// Subset percentage for the KPB baseline.
  double kpb_percent = 20.0;
  /// Islands for the PNI scheduler (island-model PN).
  std::size_t islands = 4;
  /// Migration cadence (generations) for PNI.
  std::size_t migration_interval = 25;
};

/// Builds a fresh scheduler instance (schedulers are stateful; one
/// instance per simulation run).
std::unique_ptr<sim::SchedulingPolicy> make_scheduler(
    SchedulerKind kind, const SchedulerOptions& opts = {});

/// Task-size distribution families used in §4.3–§4.5.
enum class DistKind { kNormal, kUniform, kPoisson, kConstant };

/// Declarative workload description.
struct WorkloadSpec {
  DistKind kind = DistKind::kNormal;
  /// Normal: mean / variance. Uniform: lo / hi. Poisson: mean / unused.
  /// Constant: size / unused.
  double param_a = 1000.0;
  double param_b = 9e5;
  /// Number of tasks (paper: up to 10,000).
  std::size_t count = 1000;
  /// All tasks arrive at t = 0 (the paper's §4.2 setting). When false,
  /// tasks arrive as a Poisson process with the given mean inter-arrival
  /// time — the dynamic setting the scheduler is designed for.
  bool all_at_start = true;
  double mean_interarrival = 1.0;
  /// Burst intensity for streaming arrivals (two-state MMPP; 1 = plain
  /// Poisson). See workload::ArrivalConfig.
  double burstiness = 1.0;
  /// Mean MMPP state dwell time (seconds).
  double burst_dwell = 50.0;
};

/// Instantiates the distribution for `spec`.
std::unique_ptr<workload::SizeDistribution> make_distribution(
    const WorkloadSpec& spec);

/// One experiment cell: cluster + workload + seeding + replication count.
struct Scenario {
  std::string name;
  sim::ClusterConfig cluster;
  WorkloadSpec workload;
  std::uint64_t seed = 42;
  std::size_t replications = 5;
  /// Optional processor outages (a fresh trace is drawn per replication).
  std::optional<sim::FailureConfig> failures;
  /// Simulated-time cost of scheduler computation
  /// (EngineConfig::sched_time_scale).
  double sched_time_scale = 0.0;
  /// Smoothing factor ν for the engine's per-link communication estimators
  /// (§3.6; EngineConfig::comm_nu).
  double comm_nu = 0.5;
  /// Smoothing factor ν for the per-processor rate estimators.
  double rate_nu = 0.5;
};

/// The paper's cluster (§4.2): 50 heterogeneous processors with fixed
/// execution rates, normal per-link communication costs with the given
/// mean. Rates are drawn uniformly from [10, 100] Mflop/s (the paper does
/// not state its range; see DESIGN.md).
sim::ClusterConfig paper_cluster(double mean_comm_cost,
                                 std::size_t processors = 50);

}  // namespace gasched::exp
