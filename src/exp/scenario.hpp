#pragma once
// Experiment scenarios: declarative descriptions of the paper's setups
// (cluster, workload, schedulers) plus factories to realise them. Used by
// every bench binary and the integration tests so figure parameters live
// in exactly one place.
//
// Schedulers and task-size distributions are selected by *name* through
// the string-keyed registries in exp/registry.hpp — the paper's seven
// (§4.1), the extra heuristic baselines, the local-search metaheuristics
// and the island-model GA are all pre-registered, and user code can add
// its own entries without touching the library (see
// examples/custom_scheduler.cpp).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/params.hpp"
#include "sim/cluster.hpp"
#include "sim/failure.hpp"
#include "sim/policy.hpp"
#include "workload/generator.hpp"

namespace gasched::exp {

/// The seven schedulers compared in the paper (§4.1: "EF", "LL", "RR",
/// "ZO", "PN", "MM", "MX"), in the order the makespan bar charts list
/// them. Registry-backed (SchedulerTag::kPaper).
std::vector<std::string> all_schedulers();

/// The paper's seven plus the extra heuristic baselines from Maheswaran
/// et al. 1999 / the Braun et al. taxonomy ("MET", "KPB", "SUF", "OLB",
/// "DUP").
std::vector<std::string> extended_schedulers();

/// The batch meta-heuristic searchers ("ZO", "PN", "SA", "TS", "ACO",
/// "HC", "PNI") — the shoot-out set of bench/ext_metaheuristics.
std::vector<std::string> metaheuristic_schedulers();

/// Builds a fresh scheduler instance by registry name (case-insensitive;
/// schedulers are stateful, so one instance per simulation run). Throws
/// std::runtime_error listing every registered name when `name` is
/// unknown. Thin shim over SchedulerRegistry::create.
std::unique_ptr<sim::SchedulingPolicy> make_scheduler(
    const std::string& name, const SchedulerParams& params = {});

/// Declarative workload description. The size family is selected by
/// DistributionRegistry name ("normal", "uniform", "poisson", "constant",
/// "pareto", "bimodal", or any user-registered entry).
struct WorkloadSpec {
  std::string dist = "normal";
  /// Generic positional parameters kept for the paper's three families:
  /// normal mean/variance, uniform lo/hi, poisson mean/unused, constant
  /// size/unused. Families with richer shapes (pareto, bimodal) read
  /// named keys from `params` instead — see exp/registry.hpp.
  double param_a = 1000.0;
  double param_b = 9e5;
  /// Named per-family keys (the INI [workload] section verbatim), e.g.
  /// pareto alpha/lo/hi or bimodal mean_small/mean_large/weight_small.
  Params params;
  /// Number of tasks (paper: up to 10,000).
  std::size_t count = 1000;
  /// All tasks arrive at t = 0 (the paper's §4.2 setting). When false,
  /// tasks arrive as a Poisson process with the given mean inter-arrival
  /// time — the dynamic setting the scheduler is designed for.
  bool all_at_start = true;
  double mean_interarrival = 1.0;
  /// Burst intensity for streaming arrivals (two-state MMPP; 1 = plain
  /// Poisson). See workload::ArrivalConfig.
  double burstiness = 1.0;
  /// Mean MMPP state dwell time (seconds).
  double burst_dwell = 50.0;
  /// Arrival-rate preset when all_at_start is false: "constant" (plain
  /// Poisson at 1/mean_interarrival, the default), or an inhomogeneous
  /// λ(t) built by workload::make_rate_function ("diurnal", "ramp",
  /// "flash") around the same base rate, with shape keys read from
  /// `params`. Non-constant presets require burstiness == 1.
  std::string arrival = "constant";
};

/// Realises the arrival process of `spec` (including a rate-function
/// preset, built around base rate 1/mean_interarrival). Throws
/// std::runtime_error listing the valid presets on an unknown name.
workload::ArrivalConfig make_arrival(const WorkloadSpec& spec);

/// Instantiates the size distribution for `spec` by registry name
/// (case-insensitive). Throws std::runtime_error listing every registered
/// family when `spec.dist` is unknown. Thin shim over
/// DistributionRegistry::create.
std::unique_ptr<workload::SizeDistribution> make_distribution(
    const WorkloadSpec& spec);

/// One experiment cell: cluster + workload + seeding + replication count.
struct Scenario {
  std::string name;
  sim::ClusterConfig cluster;
  WorkloadSpec workload;
  std::uint64_t seed = 42;
  std::size_t replications = 5;
  /// Optional processor outages (a fresh trace is drawn per replication).
  std::optional<sim::FailureConfig> failures;
  /// Simulated-time cost of scheduler computation
  /// (EngineConfig::sched_time_scale).
  double sched_time_scale = 0.0;
  /// Smoothing factor ν for the engine's per-link communication estimators
  /// (§3.6; EngineConfig::comm_nu).
  double comm_nu = 0.5;
  /// Smoothing factor ν for the per-processor rate estimators.
  double rate_nu = 0.5;
};

/// The paper's cluster (§4.2): 50 heterogeneous processors with fixed
/// execution rates, normal per-link communication costs with the given
/// mean. Rates are drawn uniformly from [10, 100] Mflop/s (the paper does
/// not state its range; see DESIGN.md).
sim::ClusterConfig paper_cluster(double mean_comm_cost,
                                 std::size_t processors = 50);

}  // namespace gasched::exp
