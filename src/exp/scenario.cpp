#include "exp/scenario.hpp"

#include "exp/registry.hpp"

namespace gasched::exp {

std::vector<std::string> all_schedulers() {
  return SchedulerRegistry::instance().names_tagged(kSchedulerTagPaper);
}

std::vector<std::string> extended_schedulers() {
  return SchedulerRegistry::instance().names_tagged(kSchedulerTagPaper |
                                                    kSchedulerTagBaseline);
}

std::vector<std::string> metaheuristic_schedulers() {
  return SchedulerRegistry::instance().names_tagged(
      kSchedulerTagMetaheuristic);
}

std::unique_ptr<sim::SchedulingPolicy> make_scheduler(
    const std::string& name, const SchedulerParams& params) {
  return SchedulerRegistry::instance().create(name, params);
}

std::unique_ptr<workload::SizeDistribution> make_distribution(
    const WorkloadSpec& spec) {
  return DistributionRegistry::instance().create(spec);
}

workload::ArrivalConfig make_arrival(const WorkloadSpec& spec) {
  workload::ArrivalConfig arrivals;
  arrivals.all_at_start = spec.all_at_start;
  arrivals.mean_interarrival = spec.mean_interarrival;
  arrivals.burstiness = spec.burstiness;
  arrivals.burst_dwell = spec.burst_dwell;
  // The constant preset stays on the legacy exponential-draw path (no
  // rate function), so default-configured experiments keep their bytes.
  if (!spec.all_at_start && !spec.arrival.empty() &&
      spec.arrival != "constant") {
    arrivals.rate_function = workload::make_rate_function(
        spec.arrival, 1.0 / spec.mean_interarrival, spec.params);
  }
  return arrivals;
}

sim::ClusterConfig paper_cluster(double mean_comm_cost,
                                 std::size_t processors) {
  sim::ClusterConfig cfg;
  cfg.num_processors = processors;
  cfg.rate_lo = 10.0;
  cfg.rate_hi = 100.0;
  cfg.availability = sim::AvailabilityKind::kFixed;
  cfg.comm.mean_cost = mean_comm_cost;
  cfg.comm.spread_cv = 0.5;
  cfg.comm.jitter_cv = 0.2;
  return cfg;
}

}  // namespace gasched::exp
