#include "exp/scenario.hpp"

#include <stdexcept>

#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"
#include "sched/extra_heuristics.hpp"
#include "sched/heuristics.hpp"

namespace gasched::exp {

const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kEF:
      return "EF";
    case SchedulerKind::kLL:
      return "LL";
    case SchedulerKind::kRR:
      return "RR";
    case SchedulerKind::kZO:
      return "ZO";
    case SchedulerKind::kPN:
      return "PN";
    case SchedulerKind::kMM:
      return "MM";
    case SchedulerKind::kMX:
      return "MX";
    case SchedulerKind::kMET:
      return "MET";
    case SchedulerKind::kKPB:
      return "KPB";
    case SchedulerKind::kSUF:
      return "SUF";
    case SchedulerKind::kOLB:
      return "OLB";
    case SchedulerKind::kDUP:
      return "DUP";
    case SchedulerKind::kSA:
      return "SA";
    case SchedulerKind::kTS:
      return "TS";
    case SchedulerKind::kACO:
      return "ACO";
    case SchedulerKind::kHC:
      return "HC";
    case SchedulerKind::kPNI:
      return "PNI";
  }
  return "?";
}

std::vector<SchedulerKind> all_schedulers() {
  return {SchedulerKind::kEF, SchedulerKind::kLL, SchedulerKind::kRR,
          SchedulerKind::kZO, SchedulerKind::kPN, SchedulerKind::kMM,
          SchedulerKind::kMX};
}

std::vector<SchedulerKind> extended_schedulers() {
  auto v = all_schedulers();
  v.push_back(SchedulerKind::kMET);
  v.push_back(SchedulerKind::kKPB);
  v.push_back(SchedulerKind::kSUF);
  v.push_back(SchedulerKind::kOLB);
  v.push_back(SchedulerKind::kDUP);
  return v;
}

std::vector<SchedulerKind> metaheuristic_schedulers() {
  return {SchedulerKind::kPN,  SchedulerKind::kZO, SchedulerKind::kSA,
          SchedulerKind::kTS,  SchedulerKind::kACO, SchedulerKind::kHC,
          SchedulerKind::kPNI};
}

std::unique_ptr<sim::SchedulingPolicy> make_scheduler(
    SchedulerKind kind, const SchedulerOptions& opts) {
  switch (kind) {
    case SchedulerKind::kEF:
      return sched::make_ef();
    case SchedulerKind::kLL:
      return sched::make_ll();
    case SchedulerKind::kRR:
      return sched::make_rr();
    case SchedulerKind::kMM:
      return sched::make_mm(opts.batch_size);
    case SchedulerKind::kMX:
      return sched::make_mx(opts.batch_size);
    case SchedulerKind::kZO: {
      auto zo = core::make_zo_scheduler(opts.batch_size);
      core::GeneticSchedulerConfig cfg = zo->config();
      cfg.ga.max_generations = opts.max_generations;
      cfg.ga.population = opts.population;
      return std::make_unique<core::GeneticBatchScheduler>(cfg, "ZO");
    }
    case SchedulerKind::kPN: {
      core::GeneticSchedulerConfig cfg;
      cfg.ga.max_generations = opts.max_generations;
      cfg.ga.population = opts.population;
      cfg.ga.improvement_passes = opts.rebalances;
      cfg.rebalance = opts.rebalances > 0;
      cfg.dynamic_batch = opts.pn_dynamic_batch;
      cfg.fixed_batch = opts.batch_size;
      cfg.max_batch = opts.batch_size;  // cap dynamic H at the batch size
      return core::make_pn_scheduler(cfg);
    }
    case SchedulerKind::kMET:
      return sched::make_met();
    case SchedulerKind::kKPB:
      return sched::make_kpb(opts.kpb_percent);
    case SchedulerKind::kSUF:
      return sched::make_sufferage(opts.batch_size);
    case SchedulerKind::kOLB:
      return sched::make_olb();
    case SchedulerKind::kDUP:
      return sched::make_duplex(opts.batch_size);
    case SchedulerKind::kSA: {
      meta::SaConfig cfg;
      cfg.batch.batch_size = opts.batch_size;
      return meta::make_sa_scheduler(cfg);
    }
    case SchedulerKind::kTS: {
      meta::TabuConfig cfg;
      cfg.batch.batch_size = opts.batch_size;
      return meta::make_tabu_scheduler(cfg);
    }
    case SchedulerKind::kACO: {
      meta::AcoConfig cfg;
      cfg.batch.batch_size = opts.batch_size;
      return meta::make_aco_scheduler(cfg);
    }
    case SchedulerKind::kHC: {
      meta::HillClimbConfig cfg;
      cfg.batch.batch_size = opts.batch_size;
      return meta::make_hill_climb_scheduler(cfg);
    }
    case SchedulerKind::kPNI: {
      core::GeneticSchedulerConfig cfg;
      cfg.ga.max_generations = opts.max_generations;
      cfg.ga.population = opts.population;
      cfg.ga.improvement_passes = opts.rebalances;
      cfg.rebalance = opts.rebalances > 0;
      cfg.dynamic_batch = opts.pn_dynamic_batch;
      cfg.fixed_batch = opts.batch_size;
      cfg.max_batch = opts.batch_size;
      cfg.migration_interval = opts.migration_interval;
      // Replications already saturate the thread pool; keep islands
      // sequential inside each run so nested parallelism cannot oversubscribe.
      cfg.island_parallel = false;
      return core::make_pn_island_scheduler(opts.islands, cfg);
    }
  }
  throw std::invalid_argument("make_scheduler: unknown kind");
}

std::unique_ptr<workload::SizeDistribution> make_distribution(
    const WorkloadSpec& spec) {
  switch (spec.kind) {
    case DistKind::kNormal:
      return std::make_unique<workload::NormalSizes>(spec.param_a,
                                                     spec.param_b);
    case DistKind::kUniform:
      return std::make_unique<workload::UniformSizes>(spec.param_a,
                                                      spec.param_b);
    case DistKind::kPoisson:
      return std::make_unique<workload::PoissonSizes>(spec.param_a);
    case DistKind::kConstant:
      return std::make_unique<workload::ConstantSizes>(spec.param_a);
  }
  throw std::invalid_argument("make_distribution: unknown kind");
}

sim::ClusterConfig paper_cluster(double mean_comm_cost,
                                 std::size_t processors) {
  sim::ClusterConfig cfg;
  cfg.num_processors = processors;
  cfg.rate_lo = 10.0;
  cfg.rate_hi = 100.0;
  cfg.availability = sim::AvailabilityKind::kFixed;
  cfg.comm.mean_cost = mean_comm_cost;
  cfg.comm.spread_cv = 0.5;
  cfg.comm.jitter_cv = 0.2;
  return cfg;
}

}  // namespace gasched::exp
