#pragma once
/// \file
/// String-keyed, self-registering factories for schedulers and task-size
/// distributions — the open replacement for the old closed
/// SchedulerKind/DistKind enums. Adding a scheduler (in-tree or from
/// user code) is one registry entry: name, one-line summary, tags, and a
/// factory that reads its own options from a SchedulerParams view. No
/// enum to extend, no switch statements or hand-maintained name lists to
/// keep in lockstep. Invariants:
///
///  - **Stable entries.** Entries are never removed or replaced, so
///    references returned by find() stay valid for the process lifetime;
///    add() rejects duplicate names (case-insensitively). Both
///    registries are thread-safe.
///  - **Case-insensitive keys, canonical spellings.** Lookups fold case;
///    canonical_name() returns the registered spelling, which is what
///    sweeps, tables, and CSV files display. Unknown names throw
///    std::runtime_error listing every registered name.
///  - **Registration ranks order every enumeration.** names() sorts by
///    (rank, registration order): the built-ins claim ranks 0…16 to
///    preserve the paper's bar-chart order (EF LL RR ZO PN MM MX first —
///    figure shape checks index into that order), and user entries keep
///    the default rank so they list after the built-ins no matter which
///    translation unit registered first.
///  - **Self-registration.** The built-in entries (17 schedulers, 7
///    distributions) are registered by their own subsystems —
///    sched/register.cpp, meta/register.cpp, core/register.cpp,
///    workload/register.cpp — the first time a registry is touched, so
///    linking the library is enough; no init call.
///
/// Per-entry [scheduler] keys understood by the built-ins, beyond the
/// shared defaults documented in exp/params.hpp:
///
///   PN, PNI    rebalance_probes (5)
///   SA         sa_cooling (0.92), sa_initial_acceptance (0.5),
///              sa_moves_per_temperature (0 = auto)
///   TS         tabu_tenure (0 = auto), tabu_stall (64)
///   ACO        aco_ants (10), aco_iterations (40), aco_evaporation (0.15)
///   HC         hc_restarts (4), hc_stall (96)
///
/// Per-family [workload] keys of the built-in distributions (generic
/// param_a/param_b remain the fallback for the paper's families):
///
///   normal     mean (param_a), variance (param_b), floor (1)
///   uniform    lo (param_a), hi (param_b)
///   poisson    mean (param_a), floor (1)
///   constant   size (param_a)
///   pareto     alpha (1.1), lo (param_a), hi (param_b)
///   lognormal  median (param_a), sigma (1), floor (1)
///   bimodal    mean_small (100), var_small (900), mean_large (10000),
///              var_large (9e6), weight_small (0.8), floor (1)

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exp/params.hpp"
#include "exp/scenario.hpp"
#include "sim/policy.hpp"
#include "workload/generator.hpp"

namespace gasched::exp {

/// Category bits so callers can enumerate coherent scheduler sets
/// (SchedulerEntry::tags is a bitwise-or of these).
enum SchedulerTag : unsigned {
  kSchedulerTagPaper = 1u << 0,          ///< the paper's seven (§4.1)
  kSchedulerTagBaseline = 1u << 1,       ///< extra heuristic baselines
  kSchedulerTagMetaheuristic = 1u << 2,  ///< batch search metaheuristics
};

/// One registered scheduler.
struct SchedulerEntry {
  /// Canonical display name ("PN"); the case-insensitive registry key.
  std::string name;
  /// One-line summary for --list-schedulers and the README table.
  std::string summary;
  /// Bitwise-or of SchedulerTag (0 for plain user entries).
  unsigned tags = 0;
  /// Display rank: enumerations sort by (rank, registration order). The
  /// built-ins use 0…16 to preserve the paper's bar-chart order; leave at
  /// the default to list user entries after them.
  int rank = 1'000'000;
  /// Builds a fresh instance (schedulers are stateful: one per run).
  std::function<std::unique_ptr<sim::SchedulingPolicy>(
      const SchedulerParams&)>
      factory;
};

/// One registered task-size distribution family.
struct DistributionEntry {
  /// Canonical family name ("pareto"); the case-insensitive registry key.
  std::string name;
  /// One-line summary including the [workload] keys the factory reads.
  std::string summary;
  /// Display rank, as for SchedulerEntry.
  int rank = 1'000'000;
  /// Builds the distribution for a workload spec.
  std::function<std::unique_ptr<workload::SizeDistribution>(
      const WorkloadSpec&)>
      factory;
};

/// Process-wide scheduler registry. Thread-safe; entries are never
/// removed, so references returned by find() stay valid.
class SchedulerRegistry {
 public:
  /// The singleton, with the built-ins registered.
  static SchedulerRegistry& instance();

  /// Registers an entry. Throws std::invalid_argument when the name is
  /// empty, the factory is missing, or the name is already registered
  /// (case-insensitively).
  void add(SchedulerEntry entry);

  /// True when `name` resolves (case-insensitive).
  bool contains(const std::string& name) const;

  /// Resolves `name` to its canonical registered spelling. Throws
  /// std::runtime_error listing all registered names when unknown.
  std::string canonical_name(const std::string& name) const;

  /// The full entry for `name`. Throws like canonical_name.
  const SchedulerEntry& find(const std::string& name) const;

  /// Builds a fresh scheduler. Throws like canonical_name.
  std::unique_ptr<sim::SchedulingPolicy> create(
      const std::string& name, const SchedulerParams& params = {}) const;

  /// All registered names, ordered by (rank, registration order).
  std::vector<std::string> names() const;

  /// Registered names whose tags intersect `tags`, same order.
  std::vector<std::string> names_tagged(unsigned tags) const;

 private:
  SchedulerRegistry();
  mutable std::mutex mutex_;
  std::deque<SchedulerEntry> entries_;          // registration order
  std::map<std::string, std::size_t> by_name_;  // lower-case → index
};

/// Process-wide task-size distribution registry; same contract as
/// SchedulerRegistry.
class DistributionRegistry {
 public:
  static DistributionRegistry& instance();

  void add(DistributionEntry entry);
  bool contains(const std::string& name) const;
  std::string canonical_name(const std::string& name) const;
  const DistributionEntry& find(const std::string& name) const;
  std::unique_ptr<workload::SizeDistribution> create(
      const WorkloadSpec& spec) const;
  std::vector<std::string> names() const;

 private:
  DistributionRegistry();
  mutable std::mutex mutex_;
  std::deque<DistributionEntry> entries_;
  std::map<std::string, std::size_t> by_name_;
};

}  // namespace gasched::exp
