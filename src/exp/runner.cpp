#include "exp/runner.hpp"

#include "core/numeric.hpp"
#include "exp/registry.hpp"
#include "util/thread_pool.hpp"

namespace gasched::exp {

sim::SimulationResult run_one(const Scenario& scenario,
                              const std::string& scheduler,
                              const SchedulerParams& params, std::size_t rep,
                              bool record_task_trace) {
  // Stream discipline: workload and cluster depend only on (seed, rep), so
  // every scheduler sees identical tasks and machines in replication rep.
  const util::Rng base(scenario.seed);
  util::Rng workload_rng = base.split(3 * rep);
  util::Rng cluster_rng = base.split(3 * rep + 1);
  util::Rng sim_rng = base.split(3 * rep + 2);

  const auto dist = make_distribution(scenario.workload);
  const workload::ArrivalConfig arrivals = make_arrival(scenario.workload);
  const workload::Workload wl = workload::generate(
      *dist, scenario.workload.count, workload_rng, arrivals);
  const sim::Cluster cluster = sim::build_cluster(scenario.cluster, cluster_rng);
  const auto policy = SchedulerRegistry::instance().create(scheduler, params);

  sim::EngineConfig ecfg;
  ecfg.record_task_trace = record_task_trace;
  ecfg.sched_time_scale = scenario.sched_time_scale;
  ecfg.comm_nu = scenario.comm_nu;
  ecfg.rate_nu = scenario.rate_nu;
  sim::FailureTrace trace;
  if (scenario.failures) {
    util::Rng failure_rng = base.split(3 * rep + 1'000'000);
    trace = sim::FailureTrace(*scenario.failures,
                              scenario.cluster.num_processors, failure_rng);
    ecfg.failures = &trace;
  }
  // Give this replication its own tolerance audit (configured like the
  // global one) so evaluators created inside the run — potentially on a
  // pool worker, but always on *this* thread because the Scope override is
  // thread_local and the engine evaluates synchronously under run_one —
  // record into it. The fold publishes the replication's max deviation to
  // the global audit for process-level reporting.
  core::ToleranceAudit audit;
  const core::ToleranceAudit::Scope audit_scope(audit);
  sim::SimulationResult result = sim::simulate(cluster, wl, *policy, sim_rng, ecfg);
  result.audit_max_deviation = audit.max_deviation();
  core::ToleranceAudit::global().fold(audit);
  return result;
}

std::vector<sim::SimulationResult> run_replications(
    const Scenario& scenario, const std::string& scheduler,
    const SchedulerParams& params, bool parallel) {
  // Resolve once up front: an unknown name should throw here, on the
  // caller's thread, not inside the pool workers.
  const std::string name =
      SchedulerRegistry::instance().canonical_name(scheduler);
  std::vector<sim::SimulationResult> results(scenario.replications);
  auto body = [&](std::size_t rep) {
    results[rep] = run_one(scenario, name, params, rep);
  };
  if (parallel && scenario.replications > 1) {
    util::global_pool().parallel_for(0, scenario.replications, body);
  } else {
    for (std::size_t rep = 0; rep < scenario.replications; ++rep) body(rep);
  }
  return results;
}

metrics::CellSummary run_cell(const Scenario& scenario,
                              const std::string& scheduler,
                              const SchedulerParams& params, bool parallel) {
  const std::string name =
      SchedulerRegistry::instance().canonical_name(scheduler);
  const auto runs = run_replications(scenario, name, params, parallel);
  return metrics::aggregate(name, runs);
}

metrics::BoundInstance bound_instance(const Scenario& scenario,
                                      std::size_t rep) {
  // Mirror run_one's stream discipline exactly: workload and cluster
  // depend only on (seed, rep), so these are the tasks and machines every
  // scheduler saw in replication rep.
  const util::Rng base(scenario.seed);
  util::Rng workload_rng = base.split(3 * rep);
  util::Rng cluster_rng = base.split(3 * rep + 1);
  const auto dist = make_distribution(scenario.workload);
  const workload::ArrivalConfig arrivals = make_arrival(scenario.workload);
  const workload::Workload wl = workload::generate(
      *dist, scenario.workload.count, workload_rng, arrivals);
  const sim::Cluster cluster =
      sim::build_cluster(scenario.cluster, cluster_rng);

  metrics::BoundInstance inst;
  inst.task_sizes.reserve(wl.tasks.size());
  for (const auto& task : wl.tasks) inst.task_sizes.push_back(task.size_mflops);
  inst.rates.reserve(cluster.size());
  inst.comm_costs.reserve(cluster.size());
  for (std::size_t j = 0; j < cluster.size(); ++j) {
    inst.rates.push_back(cluster.processors[j].base_rate);
    inst.comm_costs.push_back(
        cluster.comm->true_mean(static_cast<sim::ProcId>(j)));
  }
  return inst;
}

CertifiedBounds certified_bounds(const Scenario& scenario,
                                 const metrics::RelaxationBoundOptions& options,
                                 bool parallel) {
  const std::size_t reps = scenario.replications;
  std::vector<CertifiedBounds> per_rep(reps);
  auto body = [&](std::size_t rep) {
    const metrics::BoundInstance inst = bound_instance(scenario, rep);
    per_rep[rep].lb_comb = metrics::makespan_lower_bound(inst);
    per_rep[rep].lb_qp = metrics::relaxation_lower_bound(inst, options);
  };
  if (parallel && reps > 1) {
    util::global_pool().parallel_for(0, reps, body);
  } else {
    for (std::size_t rep = 0; rep < reps; ++rep) body(rep);
  }
  CertifiedBounds mean;
  for (const auto& b : per_rep) {
    mean.lb_comb += b.lb_comb;
    mean.lb_qp += b.lb_qp;
  }
  if (reps > 0) {
    mean.lb_comb /= static_cast<double>(reps);
    mean.lb_qp /= static_cast<double>(reps);
  }
  return mean;
}

}  // namespace gasched::exp
