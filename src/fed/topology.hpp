#pragma once
// Inter-cluster link topology for federated simulations.
//
// arXiv:1404.2989's peering analysis motivates treating the adjacency
// structure between providers as a first-class experimental axis rather
// than a hard-coded mesh: which clusters may exchange spillover work, and
// at what cost, changes the equilibrium as much as the schedulers do. A
// Topology is a directed graph over cluster indices with per-link latency
// and bandwidth; migrating a task of s MFLOPs over a link costs
// latency + s / bandwidth simulated seconds. Factories cover the three
// canonical shapes (full mesh, star, ring); custom adjacencies come from
// [link.*] INI sections (see fed::federation_from_config).

#include <cstddef>
#include <optional>
#include <vector>

#include "sim/types.hpp"

namespace gasched::fed {

/// Cost model of one directed inter-cluster link.
struct LinkParams {
  /// Fixed per-transfer setup time (seconds).
  double latency = 0.05;
  /// Payload rate (MFLOPs of task description per second). Task payloads
  /// are proportional to their work, mirroring the intra-cluster model.
  double bandwidth = 1e5;
};

/// Directed graph of clusters with per-link cost parameters.
class Topology {
 public:
  /// An edgeless topology over `n` clusters.
  explicit Topology(std::size_t n);

  /// Every ordered pair of distinct clusters is linked with `link`.
  static Topology full_mesh(std::size_t n, LinkParams link = {});
  /// Spokes exchange work only through `hub` (hub↔spoke links both ways).
  static Topology star(std::size_t n, std::size_t hub, LinkParams link = {});
  /// Cluster i links to (i±1) mod n, both directions.
  static Topology ring(std::size_t n, LinkParams link = {});

  /// Adds (or overwrites) the directed link from → to. Throws
  /// std::invalid_argument on self-links, out-of-range indices, or
  /// non-positive latency/bandwidth.
  void add_link(std::size_t from, std::size_t to, LinkParams link);

  /// Number of clusters.
  std::size_t size() const noexcept { return n_; }

  /// True when a directed from → to link exists.
  bool connected(std::size_t from, std::size_t to) const;

  /// Link parameters of from → to, or nullptr when unlinked.
  const LinkParams* link(std::size_t from, std::size_t to) const;

  /// Transfer time for a task of `mflops` over from → to. Throws
  /// std::invalid_argument when the clusters are not linked.
  sim::SimTime transfer_time(std::size_t from, std::size_t to,
                             double mflops) const;

  /// Out-neighbours of `from` in ascending index order (the tie-break
  /// order every migration policy uses, keeping runs deterministic).
  std::vector<std::size_t> neighbors(std::size_t from) const;

  /// Total number of directed links.
  std::size_t link_count() const;

 private:
  std::size_t at(std::size_t from, std::size_t to) const {
    return from * n_ + to;
  }
  std::size_t n_ = 0;
  std::vector<std::optional<LinkParams>> links_;  // dense n×n, row-major
};

}  // namespace gasched::fed
