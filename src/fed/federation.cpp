#include "fed/federation.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exp/registry.hpp"
#include "util/thread_pool.hpp"
#include "workload/generator.hpp"

namespace gasched::fed {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    const auto b = cur.find_first_not_of(" \t");
    if (b == std::string::npos) {
      cur.clear();
      return;
    }
    const auto e = cur.find_last_not_of(" \t");
    out.push_back(cur.substr(b, e - b + 1));
    cur.clear();
  };
  for (const char c : text) {
    if (c == ',') {
      flush();
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

}  // namespace

ClusterNode::ClusterNode(const ClusterSpec& spec,
                         const exp::SchedulerParams& params,
                         const sim::EngineConfig& engine_cfg,
                         util::Rng cluster_rng, util::Rng failure_rng,
                         util::Rng sim_rng)
    : name_(spec.name), engine_cfg_(engine_cfg) {
  cluster_ = sim::build_cluster(spec.cluster, cluster_rng);
  if (spec.failures) {
    trace_ = sim::FailureTrace(*spec.failures, spec.cluster.num_processors,
                               failure_rng);
    engine_cfg_.failures = &trace_;
  }
  policy_ = exp::make_scheduler(spec.scheduler, params);
  engine_ = std::make_unique<sim::Engine>(cluster_, workload::Workload{},
                                          *policy_, std::move(sim_rng),
                                          engine_cfg_);
}

sim::SimulationResult FederationResult::as_simulation_result() const {
  sim::SimulationResult r;
  r.makespan = makespan;
  r.tasks_completed = tasks_completed;
  r.mean_response_time = mean_response_time;
  for (const ClusterResult& c : clusters) {
    r.per_proc.insert(r.per_proc.end(), c.sim.per_proc.begin(),
                      c.sim.per_proc.end());
    r.scheduler_invocations += c.sim.scheduler_invocations;
    r.scheduler_wall_seconds += c.sim.scheduler_wall_seconds;
    r.tasks_requeued += c.sim.tasks_requeued;
  }
  return r;
}

Federation::Federation(const FederationConfig& cfg, std::size_t rep)
    : cfg_(cfg), topology_(cfg.topology) {
  if (cfg_.clusters.empty()) {
    throw std::invalid_argument("Federation: no clusters configured");
  }
  if (topology_.size() != cfg_.clusters.size()) {
    throw std::invalid_argument(
        "Federation: topology size does not match cluster count");
  }

  // Capacity-weighted routing uses a cumulative weight table; a task's
  // hash picks the interval it falls into.
  double total_weight = 0.0;
  for (const ClusterSpec& s : cfg_.clusters) {
    if (!(s.weight > 0.0)) {
      throw std::invalid_argument("Federation: cluster weights must be > 0");
    }
    total_weight += s.weight;
  }
  double acc = 0.0;
  for (const ClusterSpec& s : cfg_.clusters) {
    acc += s.weight / total_weight;
    weight_cdf_.push_back(acc);
  }
  weight_cdf_.back() = 1.0;

  sim::EngineConfig ecfg;
  ecfg.comm_nu = cfg_.comm_nu;
  ecfg.rate_nu = cfg_.rate_nu;
  ecfg.max_event_factor = cfg_.max_event_factor;

  // Stream discipline mirrors exp::run_one — (seed, rep) decides the
  // global workload; each cluster sub-splits by its index, so cluster k's
  // machines and simulation stream are independent of every other
  // cluster and of the execution order of replications.
  const util::Rng base(cfg_.seed);
  const util::Rng cluster_base = base.split(3 * rep + 1);
  const util::Rng sim_base = base.split(3 * rep + 2);
  const util::Rng failure_base = base.split(3 * rep + 1'000'000);
  for (std::size_t k = 0; k < cfg_.clusters.size(); ++k) {
    nodes_.push_back(std::make_unique<ClusterNode>(
        cfg_.clusters[k], cfg_.scheduler_params, ecfg, cluster_base.split(k),
        failure_base.split(k), sim_base.split(k)));
  }

  util::Rng workload_rng = base.split(3 * rep);
  const auto dist = exp::make_distribution(cfg_.workload);
  workload::ArrivalConfig arrivals;
  arrivals.all_at_start = cfg_.workload.all_at_start;
  arrivals.mean_interarrival = cfg_.workload.mean_interarrival;
  arrivals.burstiness = cfg_.workload.burstiness;
  arrivals.burst_dwell = cfg_.workload.burst_dwell;
  const workload::Workload wl = workload::generate(
      *dist, cfg_.workload.count, workload_rng, arrivals);
  total_tasks_ = wl.tasks.size();
  transfers_.reserve(64);
  for (const workload::Task& task : wl.tasks) {
    const std::size_t k = route(task);
    nodes_[k]->engine().inject_task(task, task.arrival_time);
    ++nodes_[k]->routed;
  }
}

std::size_t Federation::route(const workload::Task& task) const {
  const std::size_t n = nodes_.size();
  switch (cfg_.router) {
    case RouterKind::kRoundRobin:
      return static_cast<std::size_t>(task.id) % n;
    case RouterKind::kHash: {
      std::uint64_t state = static_cast<std::uint64_t>(task.id);
      return static_cast<std::size_t>(util::splitmix64_next(state) % n);
    }
    case RouterKind::kWeighted: {
      std::uint64_t state = static_cast<std::uint64_t>(task.id) ^
                            0x5851F42D4C957F2DULL;
      const double u =
          static_cast<double>(util::splitmix64_next(state) >> 11) *
          0x1.0p-53;
      const auto it =
          std::lower_bound(weight_cdf_.begin(), weight_cdf_.end(), u);
      return static_cast<std::size_t>(it - weight_cdf_.begin());
    }
  }
  return 0;
}

void Federation::send(std::size_t from, std::size_t to, workload::Task task) {
  const double wire = topology_.transfer_time(from, to, task.size_mflops);
  link_busy_seconds_ += wire;
  migrated_mflops_ += task.size_mflops;
  ++migrations_;
  ++nodes_[from]->migrated_out;
  transfers_.push(now_ + wire, Transfer{to, std::move(task)});
}

void Federation::maybe_migrate(std::size_t from) {
  sim::Engine& src = nodes_[from]->engine();
  switch (cfg_.migration) {
    case MigrationKind::kNone:
      return;
    case MigrationKind::kThreshold: {
      // Push backlog above the high-water mark to the least-loaded
      // out-neighbour, provided the move actually flattens the gradient.
      if (src.unscheduled_count() <= cfg_.migration_threshold) return;
      std::size_t best = kNone;
      std::size_t best_backlog = 0;
      for (const std::size_t k : topology_.neighbors(from)) {
        const std::size_t b = nodes_[k]->engine().backlog();
        if (best == kNone || b < best_backlog) {
          best = k;
          best_backlog = b;
        }
      }
      if (best == kNone) return;
      if (best_backlog + cfg_.migration_chunk >= src.backlog()) return;
      for (workload::Task& t : src.take_unscheduled(cfg_.migration_chunk)) {
        send(from, best, std::move(t));
      }
      return;
    }
    case MigrationKind::kSteal: {
      // The stepped cluster's queue just changed: any starved
      // out-neighbour pulls a chunk from it.
      for (const std::size_t k : topology_.neighbors(from)) {
        if (src.unscheduled_count() == 0) return;
        const sim::Engine& thief = nodes_[k]->engine();
        if (thief.backlog() == 0 && thief.finished()) {
          for (workload::Task& t :
               src.take_unscheduled(cfg_.migration_chunk)) {
            send(from, k, std::move(t));
          }
        }
      }
      return;
    }
    case MigrationKind::kBroadcast: {
      // Offer one task to each strictly less-loaded neighbour in turn
      // until the chunk is spent.
      if (src.unscheduled_count() <= cfg_.migration_threshold) return;
      std::vector<std::size_t> eligible;
      for (const std::size_t k : topology_.neighbors(from)) {
        if (nodes_[k]->engine().backlog() < src.backlog()) eligible.push_back(k);
      }
      if (eligible.empty()) return;
      for (std::size_t i = 0;
           i < cfg_.migration_chunk && src.unscheduled_count() > 0; ++i) {
        auto taken = src.take_unscheduled(1);
        if (taken.empty()) return;
        send(from, eligible[i % eligible.size()], std::move(taken.front()));
      }
      return;
    }
  }
}

FederationResult Federation::run() {
  const auto completed_total = [&] {
    std::size_t c = 0;
    for (const auto& n : nodes_) c += n->engine().tasks_completed();
    return c;
  };

  while (completed_total() < total_tasks_) {
    // Earliest cluster event (ties: lowest index)...
    std::size_t best = kNone;
    double best_time = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < nodes_.size(); ++k) {
      sim::Engine& e = nodes_[k]->engine();
      if (e.has_events() && e.next_event_time() < best_time) {
        best = k;
        best_time = e.next_event_time();
      }
    }
    // ...versus the earliest in-flight transfer. Transfers land first at
    // equal timestamps so a migrated task is visible to the scheduling
    // decision its arrival provokes.
    if (!transfers_.empty() && transfers_.top_time() <= best_time) {
      const Transfer tr = transfers_.top();
      now_ = transfers_.top_time();
      transfers_.pop();
      ++nodes_[tr.to]->migrated_in;
      nodes_[tr.to]->engine().inject_task(tr.task, now_);
      continue;
    }
    if (best != kNone) {
      sim::Engine& e = nodes_[best]->engine();
      now_ = e.next_event_time();
      e.step();
      if (cfg_.migration != MigrationKind::kNone) maybe_migrate(best);
      continue;
    }
    // No events, no transfers, tasks remain: give stalled policies one
    // more invocation (mirrors the single-engine deadlock grace step).
    bool woke = false;
    for (const auto& n : nodes_) {
      if (n->engine().unscheduled_count() > 0 && n->engine().kick()) {
        woke = true;
      }
    }
    if (!woke) {
      throw std::runtime_error(
          "Federation: deadlock — tasks remain but no cluster has events "
          "and no transfer is in flight");
    }
  }

  FederationResult r;
  r.migrations = migrations_;
  r.migrated_mflops = migrated_mflops_;
  r.link_busy_seconds = link_busy_seconds_;
  double response_weighted = 0.0;
  for (const auto& n : nodes_) {
    ClusterResult c;
    c.name = n->name();
    c.sim = n->engine().result();
    c.tasks_routed = n->routed;
    c.migrated_in = n->migrated_in;
    c.migrated_out = n->migrated_out;
    r.makespan = std::max(r.makespan, c.sim.makespan);
    r.tasks_completed += c.sim.tasks_completed;
    response_weighted += c.sim.mean_response_time *
                         static_cast<double>(c.sim.tasks_completed);
    r.clusters.push_back(std::move(c));
  }
  r.mean_response_time =
      r.tasks_completed > 0
          ? response_weighted / static_cast<double>(r.tasks_completed)
          : 0.0;
  return r;
}

FederationResult run_federation(const FederationConfig& cfg, std::size_t rep) {
  Federation fed(cfg, rep);
  return fed.run();
}

std::vector<FederationResult> run_federation_replications(
    const FederationConfig& cfg, bool parallel) {
  std::vector<FederationResult> results(cfg.replications);
  auto body = [&](std::size_t rep) { results[rep] = run_federation(cfg, rep); };
  if (parallel && cfg.replications > 1) {
    util::global_pool().parallel_for(0, cfg.replications, body);
  } else {
    for (std::size_t rep = 0; rep < cfg.replications; ++rep) body(rep);
  }
  return results;
}

FederationConfig federation_from_config(const util::Config& cfg) {
  FederationConfig f;
  f.name = cfg.get("federation.name", "federation");
  const auto names = split_list(cfg.get("federation.clusters", ""));
  if (names.empty()) {
    throw std::runtime_error(
        "federation config: [federation] clusters = a, b, ... is required");
  }
  f.seed = static_cast<std::uint64_t>(cfg.get_int("federation.seed", 42));
  f.replications =
      static_cast<std::size_t>(cfg.get_int("federation.replications", 3));
  f.comm_nu = cfg.get_double("federation.comm_nu", 0.5);
  f.rate_nu = cfg.get_double("federation.rate_nu", 0.5);
  f.max_event_factor = static_cast<std::size_t>(
      cfg.get_int("federation.max_event_factor", 64));
  f.migration_threshold = static_cast<std::size_t>(
      cfg.get_int("federation.migration_threshold", 32));
  f.migration_chunk = static_cast<std::size_t>(
      cfg.get_int("federation.migration_chunk", 8));

  const std::string router = cfg.get("federation.router", "round_robin");
  if (router == "round_robin") {
    f.router = RouterKind::kRoundRobin;
  } else if (router == "hash") {
    f.router = RouterKind::kHash;
  } else if (router == "weighted") {
    f.router = RouterKind::kWeighted;
  } else {
    throw std::runtime_error("federation config: unknown router '" + router +
                             "' (round_robin, hash, weighted)");
  }

  const std::string migration = cfg.get("federation.migration", "none");
  if (migration == "none") {
    f.migration = MigrationKind::kNone;
  } else if (migration == "threshold") {
    f.migration = MigrationKind::kThreshold;
  } else if (migration == "steal") {
    f.migration = MigrationKind::kSteal;
  } else if (migration == "broadcast") {
    f.migration = MigrationKind::kBroadcast;
  } else {
    throw std::runtime_error("federation config: unknown migration '" +
                             migration +
                             "' (none, threshold, steal, broadcast)");
  }

  for (const std::string& name : names) {
    const std::string p = "cluster." + name + ".";
    ClusterSpec spec;
    spec.name = name;
    spec.cluster.num_processors =
        static_cast<std::size_t>(cfg.get_int(p + "processors", 50));
    spec.cluster.rate_lo = cfg.get_double(p + "rate_lo", 10.0);
    spec.cluster.rate_hi = cfg.get_double(p + "rate_hi", 100.0);
    spec.cluster.comm.mean_cost = cfg.get_double(p + "mean_comm_cost", 20.0);
    spec.cluster.comm.spread_cv = cfg.get_double(p + "spread_cv", 0.5);
    spec.cluster.comm.jitter_cv = cfg.get_double(p + "jitter_cv", 0.2);
    spec.scheduler = exp::SchedulerRegistry::instance().canonical_name(
        cfg.get(p + "scheduler", "EF"));
    spec.weight = cfg.get_double(p + "weight", 1.0);
    if (cfg.get_bool(p + "failures", false)) {
      sim::FailureConfig fc;
      fc.mean_uptime = cfg.get_double(p + "mean_uptime", 5000.0);
      fc.mean_downtime = cfg.get_double(p + "mean_downtime", 200.0);
      fc.horizon = cfg.get_double(p + "failures_horizon", 100000.0);
      fc.failing_fraction = cfg.get_double(p + "failing_fraction", 1.0);
      spec.failures = fc;
    }
    f.clusters.push_back(std::move(spec));
  }

  const std::size_t n = f.clusters.size();
  LinkParams def;
  def.latency = cfg.get_double("federation.latency", 0.05);
  def.bandwidth = cfg.get_double("federation.bandwidth", 1e5);
  const std::string topology = cfg.get("federation.topology", "full_mesh");
  if (topology == "full_mesh") {
    f.topology = Topology::full_mesh(n, def);
  } else if (topology == "ring") {
    f.topology = Topology::ring(n, def);
  } else if (topology == "star") {
    const std::string hub = cfg.get("federation.hub", names.front());
    const auto it = std::find(names.begin(), names.end(), hub);
    if (it == names.end()) {
      throw std::runtime_error("federation config: hub '" + hub +
                               "' is not a configured cluster");
    }
    f.topology =
        Topology::star(n, static_cast<std::size_t>(it - names.begin()), def);
  } else if (topology == "custom") {
    f.topology = Topology(n);
  } else {
    throw std::runtime_error("federation config: unknown topology '" +
                             topology +
                             "' (full_mesh, star, ring, custom)");
  }
  // Per-link overrides (and, for `custom`, the links themselves):
  // [link.<from>.<to>] latency/bandwidth.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::string key = "link." + names[i] + "." + names[j] + ".";
      if (!cfg.has(key + "latency") && !cfg.has(key + "bandwidth")) continue;
      const LinkParams* existing = f.topology.link(i, j);
      const LinkParams base = existing != nullptr ? *existing : def;
      LinkParams link;
      link.latency = cfg.get_double(key + "latency", base.latency);
      link.bandwidth = cfg.get_double(key + "bandwidth", base.bandwidth);
      f.topology.add_link(i, j, link);
    }
  }

  f.workload.dist = exp::DistributionRegistry::instance().canonical_name(
      cfg.get("workload.dist", "normal"));
  f.workload.param_a = cfg.get_double("workload.param_a", 1000.0);
  f.workload.param_b = cfg.get_double("workload.param_b", 9e5);
  f.workload.params = exp::Params::from_config(cfg, "workload");
  f.workload.count =
      static_cast<std::size_t>(cfg.get_int("workload.count", 1000));
  f.workload.all_at_start = cfg.get_bool("workload.all_at_start", true);
  f.workload.mean_interarrival =
      cfg.get_double("workload.mean_interarrival", 1.0);
  f.workload.burstiness = cfg.get_double("workload.burstiness", 1.0);
  f.workload.burst_dwell = cfg.get_double("workload.burst_dwell", 50.0);

  f.scheduler_params = exp::Params::from_config(cfg, "scheduler");
  return f;
}

}  // namespace gasched::fed
