#pragma once
// Federated multi-cluster simulation: N independent §3 scheduler/cluster
// systems (fed::ClusterNode, each a stepwise sim::Engine with its own
// registry-resolved policy and failure trace) composed over a
// fed::Topology, exchanging spillover work at link cost.
//
// Model (the "millions of users" north-star scenario, shaped after the
// multi-cloud tick engines of gacspp-style grid simulators):
//
//  * One global task stream is split across clusters by a configurable
//    router (round-robin, id-hash, or capacity-weighted) — each cluster
//    schedules its share with its own policy, exactly the paper's
//    protocol, oblivious to the federation around it.
//  * A migration policy moves *unscheduled* tasks between clusters over
//    topology links: `threshold` pushes backlog above a high-water mark
//    to the least-loaded neighbour, `steal` lets a drained cluster pull
//    from its most-loaded neighbour, `broadcast` offers one task to every
//    less-loaded neighbour in turn. Transfers take
//    latency + size/bandwidth simulated seconds on the wire, tracked in
//    a federation-level sim::CalendarQueue.
//  * The federation advances the cluster with the earliest pending event
//    (ties: lowest cluster index); in-flight transfers land before
//    cluster events at the same timestamp. Everything is serial and
//    seeded from (seed, replication, cluster index) substreams, so a run
//    is byte-reproducible at any host thread count — replications, not
//    clusters, are the parallelism axis.
//
// Conservation invariant: every routed task is, at all times, in exactly
// one cluster or on exactly one wire; a finished run has
// Σ per-cluster completed == workload count, whatever migrated where.
// fed_federation_test locks this down.
//
// Configuration surface ([federation]/[cluster.*]/[link.*] INI sections)
// is documented in docs/federation.md and parsed by
// federation_from_config().

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exp/scenario.hpp"
#include "fed/topology.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/failure.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace gasched::fed {

/// How the global arrival stream is split across clusters.
enum class RouterKind {
  kRoundRobin,  ///< task i → cluster i mod N
  kHash,        ///< splitmix64(task id) mod N (decorrelated from id order)
  kWeighted,    ///< ClusterSpec::weight-proportional deterministic hash
};

/// Which spillover/migration policy moves unscheduled work between
/// clusters.
enum class MigrationKind {
  kNone,       ///< clusters are isolated (router only)
  kThreshold,  ///< queue-pressure push to the least-loaded neighbour
  kSteal,      ///< drained clusters pull from the most-loaded neighbour
  kBroadcast,  ///< offer one task to each less-loaded neighbour in turn
};

/// Declarative description of one member cluster.
struct ClusterSpec {
  std::string name = "cluster";
  sim::ClusterConfig cluster;     ///< processors, rates, comm model
  std::string scheduler = "EF";   ///< SchedulerRegistry name
  double weight = 1.0;            ///< share for RouterKind::kWeighted
  std::optional<sim::FailureConfig> failures;  ///< per-cluster outages
};

/// One member at run time: realised cluster, policy instance, failure
/// trace, and the stepwise engine. Owns everything the engine borrows.
class ClusterNode {
 public:
  /// Realises `spec` for replication substreams derived from the given
  /// RNGs (cluster structure, outage trace, simulation stream).
  ClusterNode(const ClusterSpec& spec, const exp::SchedulerParams& params,
              const sim::EngineConfig& engine_cfg, util::Rng cluster_rng,
              util::Rng failure_rng, util::Rng sim_rng);

  const std::string& name() const noexcept { return name_; }
  sim::Engine& engine() noexcept { return *engine_; }
  const sim::Engine& engine() const noexcept { return *engine_; }

  /// Migration counters (maintained by Federation).
  std::size_t routed = 0;        ///< tasks initially routed here
  std::size_t migrated_in = 0;   ///< tasks received over links
  std::size_t migrated_out = 0;  ///< tasks pushed/stolen away

 private:
  std::string name_;
  sim::Cluster cluster_;
  sim::FailureTrace trace_;
  std::unique_ptr<sim::SchedulingPolicy> policy_;
  sim::EngineConfig engine_cfg_;
  std::unique_ptr<sim::Engine> engine_;
};

/// Full federation description; `Federation` realises one replication.
struct FederationConfig {
  std::string name = "federation";
  std::vector<ClusterSpec> clusters;
  Topology topology{1};
  RouterKind router = RouterKind::kRoundRobin;
  MigrationKind migration = MigrationKind::kNone;
  /// Backlog high-water mark for kThreshold/kBroadcast (tasks).
  std::size_t migration_threshold = 32;
  /// Tasks moved per migration decision.
  std::size_t migration_chunk = 8;
  /// Global arrival stream (split across clusters by the router).
  exp::WorkloadSpec workload;
  /// Per-cluster scheduler options (the [scheduler] section).
  exp::SchedulerParams scheduler_params;
  std::uint64_t seed = 42;
  std::size_t replications = 3;
  /// Engine knobs shared by every cluster.
  double comm_nu = 0.5;
  double rate_nu = 0.5;
  std::size_t max_event_factor = 64;
};

/// Per-cluster slice of a finished federation run.
struct ClusterResult {
  std::string name;
  sim::SimulationResult sim;     ///< the cluster's own §3 accounting
  std::size_t tasks_routed = 0;  ///< initial router share
  std::size_t migrated_in = 0;
  std::size_t migrated_out = 0;
};

/// Everything one federation replication produced.
struct FederationResult {
  double makespan = 0.0;             ///< last completion, any cluster
  std::size_t tasks_completed = 0;   ///< Σ per-cluster (== workload count)
  std::size_t migrations = 0;        ///< tasks that crossed a link
  double migrated_mflops = 0.0;      ///< work that crossed a link
  double link_busy_seconds = 0.0;    ///< Σ per-transfer wire time
  double mean_response_time = 0.0;   ///< completion − arrival, all tasks
  std::vector<ClusterResult> clusters;

  /// Flattens the federation into one SimulationResult (processors
  /// concatenated in cluster order) so the metrics:: aggregation and
  /// sink stack apply unchanged to federation sweeps.
  sim::SimulationResult as_simulation_result() const;
};

/// One federation replication: builds every ClusterNode, routes the
/// global workload, and advances clusters + transfers in timestamp order
/// until every task completed.
class Federation {
 public:
  /// Realises replication `rep` of `cfg` (validates the topology size
  /// matches the cluster list).
  Federation(const FederationConfig& cfg, std::size_t rep);

  /// Runs to completion. Throws std::runtime_error when the federation
  /// wedges (no events, no transfers, and no migration can move work).
  FederationResult run();

  /// Members (valid after construction; exposed for tests).
  std::size_t size() const noexcept { return nodes_.size(); }
  const ClusterNode& node(std::size_t i) const { return *nodes_[i]; }

 private:
  struct Transfer {
    std::size_t to = 0;
    workload::Task task;
  };

  std::size_t route(const workload::Task& task) const;
  void maybe_migrate(std::size_t from);
  void send(std::size_t from, std::size_t to, workload::Task task);

  const FederationConfig cfg_;
  Topology topology_;
  std::vector<std::unique_ptr<ClusterNode>> nodes_;
  sim::CalendarQueue<Transfer> transfers_;
  std::size_t total_tasks_ = 0;
  std::size_t migrations_ = 0;
  double migrated_mflops_ = 0.0;
  double link_busy_seconds_ = 0.0;
  double now_ = 0.0;
  std::vector<double> weight_cdf_;  // for RouterKind::kWeighted
};

/// Runs one replication (convenience wrapper).
FederationResult run_federation(const FederationConfig& cfg, std::size_t rep);

/// Runs every replication, optionally in parallel on util::global_pool().
/// Results are indexed by replication and independent of thread count.
std::vector<FederationResult> run_federation_replications(
    const FederationConfig& cfg, bool parallel = true);

/// Parses the [federation]/[cluster.<name>]/[link.<a>.<b>] sections of an
/// INI config (key reference in docs/federation.md). Throws
/// std::runtime_error on unknown topology/router/migration names, unknown
/// cluster references, or a missing cluster list.
FederationConfig federation_from_config(const util::Config& cfg);

}  // namespace gasched::fed
