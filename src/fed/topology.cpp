#include "fed/topology.hpp"

#include <stdexcept>
#include <string>

namespace gasched::fed {

Topology::Topology(std::size_t n) : n_(n), links_(n * n) {
  if (n == 0) {
    throw std::invalid_argument("Topology: need at least one cluster");
  }
}

Topology Topology::full_mesh(std::size_t n, LinkParams link) {
  Topology t(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) t.add_link(i, j, link);
    }
  }
  return t;
}

Topology Topology::star(std::size_t n, std::size_t hub, LinkParams link) {
  Topology t(n);
  if (hub >= n) throw std::invalid_argument("Topology::star: hub out of range");
  for (std::size_t i = 0; i < n; ++i) {
    if (i == hub) continue;
    t.add_link(hub, i, link);
    t.add_link(i, hub, link);
  }
  return t;
}

Topology Topology::ring(std::size_t n, LinkParams link) {
  Topology t(n);
  if (n < 2) return t;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t next = (i + 1) % n;
    t.add_link(i, next, link);
    t.add_link(next, i, link);
  }
  return t;
}

void Topology::add_link(std::size_t from, std::size_t to, LinkParams link) {
  if (from >= n_ || to >= n_) {
    throw std::invalid_argument("Topology::add_link: cluster out of range");
  }
  if (from == to) {
    throw std::invalid_argument("Topology::add_link: self-link");
  }
  if (!(link.latency > 0.0) || !(link.bandwidth > 0.0)) {
    throw std::invalid_argument(
        "Topology::add_link: latency and bandwidth must be positive");
  }
  links_[at(from, to)] = link;
}

bool Topology::connected(std::size_t from, std::size_t to) const {
  return from < n_ && to < n_ && from != to && links_[at(from, to)].has_value();
}

const LinkParams* Topology::link(std::size_t from, std::size_t to) const {
  if (!connected(from, to)) return nullptr;
  return &*links_[at(from, to)];
}

sim::SimTime Topology::transfer_time(std::size_t from, std::size_t to,
                                     double mflops) const {
  const LinkParams* l = link(from, to);
  if (l == nullptr) {
    throw std::invalid_argument("Topology: clusters " + std::to_string(from) +
                                " and " + std::to_string(to) +
                                " are not linked");
  }
  return l->latency + mflops / l->bandwidth;
}

std::vector<std::size_t> Topology::neighbors(std::size_t from) const {
  std::vector<std::size_t> out;
  if (from >= n_) return out;
  for (std::size_t to = 0; to < n_; ++to) {
    if (to != from && links_[at(from, to)].has_value()) out.push_back(to);
  }
  return out;
}

std::size_t Topology::link_count() const {
  std::size_t c = 0;
  for (const auto& l : links_) {
    if (l.has_value()) ++c;
  }
  return c;
}

}  // namespace gasched::fed
