#include "meta/aco.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "meta/assignment.hpp"

namespace gasched::meta {

AntColonyScheduler::AntColonyScheduler(AcoConfig cfg)
    : LocalSearchBatchPolicy(cfg.batch), cfg_(cfg) {
  if (cfg_.ants == 0 || cfg_.iterations == 0) {
    throw std::invalid_argument("ACO: ants and iterations must be > 0");
  }
  if (cfg_.evaporation <= 0.0 || cfg_.evaporation > 1.0) {
    throw std::invalid_argument("ACO: evaporation must be in (0, 1]");
  }
  if (cfg_.tau_min <= 0.0 || cfg_.tau_min > cfg_.tau_max) {
    throw std::invalid_argument("ACO: need 0 < tau_min <= tau_max");
  }
}

namespace {

/// One ant's walk: assigns every slot (in the given order) to a processor
/// sampled from the pheromone/visibility product over the construction's
/// running completion times. Writes the slot → processor map into
/// `assignment`; `completion` and `weight` are reused scratch (the walk
/// is allocation-free). `tau_pow[s*M+j]` is pow(τ_{s,j}, α), precomputed
/// once per iteration: τ is fixed while an iteration's ants walk, so
/// hoisting the pheromone pow out of the per-ant loop saves (ants−1)·N·M
/// pow calls per iteration without changing a single weight bit. The
/// visibility pow stays inline — η depends on the walk's running
/// completion times.
void construct(const core::ScheduleEvaluator& eval,
               const std::vector<double>& tau_pow,
               const std::vector<std::size_t>& order, double beta,
               util::Rng& rng, std::vector<double>& completion,
               std::vector<double>& weight,
               std::vector<std::size_t>& assignment) {
  const std::size_t M = eval.num_procs();
  completion.resize(M);
  for (std::size_t j = 0; j < M; ++j) completion[j] = eval.delta(j);

  assignment.resize(eval.num_tasks());
  weight.resize(M);
  for (const std::size_t slot : order) {
    double total = 0.0;
    for (std::size_t j = 0; j < M; ++j) {
      const double finish = completion[j] + eval.task_cost_on(slot, j);
      const double eta = 1.0 / (finish + 1e-12);
      weight[j] = tau_pow[slot * M + j] * std::pow(eta, beta);
      total += weight[j];
    }
    std::size_t pick = M - 1;
    if (total > 0.0 && std::isfinite(total)) {
      const double r = rng.uniform01() * total;
      double acc = 0.0;
      for (std::size_t j = 0; j < M; ++j) {
        acc += weight[j];
        if (r < acc) {
          pick = j;
          break;
        }
      }
    } else {
      pick = rng.index(M);  // degenerate weights: fall back to uniform
    }
    assignment[slot] = pick;
    completion[pick] += eval.task_cost_on(slot, pick);
  }
}

/// Makespan of a slot → processor map (`completion` is reused scratch).
///
/// Deliberately NOT served from construct()'s running completion times:
/// the walk accumulates each queue in shuffled visit order while this
/// recompute sums in ascending slot order — mathematically equal but
/// bit-distinct FP sums, and the golden determinism tests pin the
/// ascending-order values. Re-pricing here keeps the reported makespans
/// independent of the ants' visit order.
double assignment_makespan(const core::ScheduleEvaluator& eval,
                           const std::vector<std::size_t>& assignment,
                           std::vector<double>& completion) {
  const std::size_t M = eval.num_procs();
  completion.resize(M);
  for (std::size_t j = 0; j < M; ++j) completion[j] = eval.delta(j);
  for (std::size_t s = 0; s < assignment.size(); ++s) {
    completion[assignment[s]] += eval.task_cost_on(s, assignment[s]);
  }
  return *std::max_element(completion.begin(), completion.end());
}

}  // namespace

void AntColonyScheduler::search(const core::ScheduleEvaluator& eval,
                                core::FlatSchedule& schedule,
                                util::Rng& rng) const {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (M < 2 || N == 0) return;

  // Seed best-so-far with the greedy start solution so ACO never returns
  // something worse than the list schedule.
  const LoadTracker seed(eval, schedule);
  std::vector<std::size_t> best(seed.assignment().begin(),
                                seed.assignment().end());
  double best_makespan = seed.makespan();

  std::vector<double> tau(N * M, cfg_.tau0);
  std::vector<std::size_t> order(N);
  std::iota(order.begin(), order.end(), std::size_t{0});

  // Per-search scratch, reused across every ant walk.
  std::vector<double> completion;
  std::vector<double> weight;
  std::vector<std::size_t> assignment;
  std::vector<std::size_t> iter_best;
  std::vector<double> tau_pow(N * M);  // pow(τ, α), refreshed per iteration

  std::size_t stall = 0;
  for (std::size_t iter = 0;
       iter < cfg_.iterations && stall < cfg_.stall_iterations; ++iter) {
    double iter_best_makespan = std::numeric_limits<double>::infinity();

    // τ only changes at the end of an iteration, so its α-power is shared
    // by every ant of this iteration.
    for (std::size_t i = 0; i < tau_pow.size(); ++i) {
      tau_pow[i] = std::pow(tau[i], cfg_.alpha);
    }

    for (std::size_t a = 0; a < cfg_.ants; ++a) {
      rng.shuffle(order);
      construct(eval, tau_pow, order, cfg_.beta, rng, completion,
                weight, assignment);
      const double ms = assignment_makespan(eval, assignment, completion);
      if (ms < iter_best_makespan) {
        iter_best_makespan = ms;
        iter_best.assign(assignment.begin(), assignment.end());
      }
    }

    // Evaporate, then let the iteration-best ant deposit ψ/makespan —
    // dimensionless and larger for better schedules.
    for (double& t : tau) t *= 1.0 - cfg_.evaporation;
    const double deposit =
        eval.psi() > 0.0 ? eval.psi() / iter_best_makespan : 1.0;
    for (std::size_t s = 0; s < N; ++s) {
      tau[s * M + iter_best[s]] += deposit;
    }
    for (double& t : tau) t = std::clamp(t, cfg_.tau_min, cfg_.tau_max);

    if (iter_best_makespan < best_makespan - 1e-12) {
      best_makespan = iter_best_makespan;
      best.assign(iter_best.begin(), iter_best.end());
      stall = 0;
    } else {
      ++stall;
    }
  }

  schedule.assign_grouped(best, M);
}

std::unique_ptr<AntColonyScheduler> make_aco_scheduler(AcoConfig cfg) {
  return std::make_unique<AntColonyScheduler>(cfg);
}

}  // namespace gasched::meta
