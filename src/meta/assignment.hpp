#pragma once
// Incremental assignment state shared by the local-search schedulers
// (simulated annealing, tabu search, hill climbing).
//
// The paper's §2 singles out meta-heuristic search — GAs, tabu search
// (Glover, ref [6]) and ant colony optimisation (Colorni et al., ref [3])
// — as the techniques applicable to batch task scheduling. src/meta
// implements those alternatives over the same information model as the
// PN scheduler (core/fitness.hpp) so search strategies can be compared
// with everything else held fixed.
//
// A LoadTracker maintains per-processor completion times
//   C_j = δ_j + Σ_{slot→j} (t_slot / P_j + Γc_j)
// under O(1) move and swap operations. Queue order within a processor
// does not affect C_j (the evaluator sums queue costs), so local-search
// neighbourhoods operate purely on the slot → processor assignment.

#include <cstddef>
#include <span>
#include <vector>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "util/rng.hpp"

namespace gasched::meta {

/// A single local-search move: reassign batch slot `slot` from processor
/// `from` to processor `to`.
struct Move {
  std::size_t slot = 0;
  std::size_t from = 0;
  std::size_t to = 0;
};

/// Mutable assignment of batch slots to processors with incrementally
/// maintained completion times.
class LoadTracker {
 public:
  /// Builds the tracker from an initial assignment. `queues` must cover
  /// every batch slot of `eval` exactly once; the evaluator must outlive
  /// the tracker.
  LoadTracker(const core::ScheduleEvaluator& eval, core::ProcQueues queues);

  /// Flat-schedule constructor: same validation, no per-queue containers.
  LoadTracker(const core::ScheduleEvaluator& eval,
              const core::FlatSchedule& schedule);

  /// Re-initialises from another schedule, reusing this tracker's buffers
  /// (restart loops rebuild state without allocating).
  void reset(const core::ScheduleEvaluator& eval,
             const core::FlatSchedule& schedule);

  /// Number of processors M.
  std::size_t num_procs() const noexcept { return completion_.size(); }
  /// Number of batch slots N.
  std::size_t num_tasks() const noexcept { return slot_proc_.size(); }

  /// Processor currently hosting `slot`.
  std::size_t proc_of(std::size_t slot) const { return slot_proc_.at(slot); }
  /// Completion time C_j of processor j.
  double completion(std::size_t j) const { return completion_.at(j); }
  /// Current makespan max_j C_j. O(1): served from the maintained top-2
  /// completion-time state.
  double makespan() const noexcept { return top1_value_; }
  /// Index of the processor with the largest completion time (smallest
  /// index on ties — the fresh-scan first-argmax). O(1).
  std::size_t heaviest_proc() const noexcept { return top1_; }

  /// Change in makespan if `m` were applied, without applying it. O(1)
  /// unless both tracked maxima are the move's endpoints (then one O(M)
  /// scan over the untouched processors).
  double makespan_delta(const Move& m) const;

  /// Applies `m`. `m.from` must be the slot's current processor.
  void apply(const Move& m);
  /// Exchanges the processors of two slots hosted on different processors.
  void swap_slots(std::size_t slot_a, std::size_t slot_b);

  /// Draws a uniformly random reassignment move (slot, its processor, a
  /// different target processor). Requires M >= 2 and N >= 1.
  Move random_move(util::Rng& rng) const;

  /// Materialises the current assignment as per-processor queues (slot
  /// order within a queue is ascending; order is irrelevant to C_j).
  core::ProcQueues to_queues() const;

  /// Current slot → processor map (the flat snapshot form: copy this span
  /// into a reused vector to remember a best-so-far assignment without
  /// materialising queues).
  std::span<const std::size_t> assignment() const noexcept {
    return slot_proc_;
  }

  /// Writes the current assignment into `out`, slots ascending per queue
  /// (identical content and order to to_queues()).
  void export_schedule(core::FlatSchedule& out) const {
    out.assign_grouped(slot_proc_, num_procs());
  }

  /// The evaluator this tracker prices moves with.
  const core::ScheduleEvaluator& evaluator() const noexcept { return *eval_; }

 private:
  /// True when (av, ai) outranks (bv, bi) in the scan order a fresh
  /// first-argmax scan would produce: larger value wins, smaller index
  /// breaks ties.
  static bool outranks(double av, std::size_t ai, double bv,
                       std::size_t bi) noexcept {
    return av > bv || (av == bv && ai < bi);
  }

  /// Rebuilds the top-2 state with a full scan. O(M).
  void rescan_top2() noexcept;
  /// Re-establishes the top-2 invariant after completion_[j] changed
  /// (every other entry unchanged). O(1) except when a tracked processor
  /// moved down, which falls back to a rescan.
  void fix_top2(std::size_t j) noexcept;

  const core::ScheduleEvaluator* eval_;
  std::vector<std::size_t> slot_proc_;  // slot → processor
  std::vector<double> completion_;      // C_j

  // Maintained top-2 invariant: top1_ is the first argmax of completion_
  // (ties to the smallest index, matching a fresh scan); top2_ is the
  // first argmax excluding top1_. Values mirror completion_. M == 1
  // leaves top2_ == top1_ with value -inf, which no real entry outranks.
  std::size_t top1_ = 0;
  std::size_t top2_ = 0;
  double top1_value_ = 0.0;
  double top2_value_ = 0.0;
};

}  // namespace gasched::meta
