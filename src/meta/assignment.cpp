#include "meta/assignment.hpp"

#include <algorithm>
#include <stdexcept>

namespace gasched::meta {

LoadTracker::LoadTracker(const core::ScheduleEvaluator& eval,
                         core::ProcQueues queues)
    : eval_(&eval) {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (queues.size() != M) {
    throw std::invalid_argument("LoadTracker: queue count != processor count");
  }
  slot_proc_.assign(N, M);  // M = unassigned sentinel
  completion_.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    completion_[j] = eval.delta(j);
    for (const std::size_t slot : queues[j]) {
      if (slot >= N || slot_proc_[slot] != M) {
        throw std::invalid_argument(
            "LoadTracker: queues must cover each slot exactly once");
      }
      slot_proc_[slot] = j;
      completion_[j] += eval.task_cost_on(slot, j);
    }
  }
  for (std::size_t s = 0; s < N; ++s) {
    if (slot_proc_[s] == M) {
      throw std::invalid_argument("LoadTracker: slot missing from queues");
    }
  }
}

LoadTracker::LoadTracker(const core::ScheduleEvaluator& eval,
                         const core::FlatSchedule& schedule)
    : eval_(&eval) {
  reset(eval, schedule);
}

void LoadTracker::reset(const core::ScheduleEvaluator& eval,
                        const core::FlatSchedule& schedule) {
  eval_ = &eval;
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (schedule.num_procs() != M) {
    throw std::invalid_argument("LoadTracker: queue count != processor count");
  }
  slot_proc_.assign(N, M);  // M = unassigned sentinel
  completion_.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    completion_[j] = eval.delta(j);
    for (const std::size_t slot : schedule.queue(j)) {
      if (slot >= N || slot_proc_[slot] != M) {
        throw std::invalid_argument(
            "LoadTracker: queues must cover each slot exactly once");
      }
      slot_proc_[slot] = j;
      completion_[j] += eval.task_cost_on(slot, j);
    }
  }
  for (std::size_t s = 0; s < N; ++s) {
    if (slot_proc_[s] == M) {
      throw std::invalid_argument("LoadTracker: slot missing from queues");
    }
  }
}

double LoadTracker::makespan() const {
  double m = 0.0;
  for (const double c : completion_) m = std::max(m, c);
  return m;
}

std::size_t LoadTracker::heaviest_proc() const {
  std::size_t arg = 0;
  for (std::size_t j = 1; j < completion_.size(); ++j) {
    if (completion_[j] > completion_[arg]) arg = j;
  }
  return arg;
}

double LoadTracker::makespan_delta(const Move& m) const {
  const double before = makespan();
  const double from_after = completion_[m.from] - eval_->task_cost_on(m.slot, m.from);
  const double to_after = completion_[m.to] + eval_->task_cost_on(m.slot, m.to);
  double after = std::max(from_after, to_after);
  for (std::size_t j = 0; j < completion_.size(); ++j) {
    if (j == m.from || j == m.to) continue;
    after = std::max(after, completion_[j]);
  }
  return after - before;
}

void LoadTracker::apply(const Move& m) {
  if (slot_proc_.at(m.slot) != m.from) {
    throw std::invalid_argument("LoadTracker::apply: stale move origin");
  }
  completion_[m.from] -= eval_->task_cost_on(m.slot, m.from);
  completion_[m.to] += eval_->task_cost_on(m.slot, m.to);
  slot_proc_[m.slot] = m.to;
}

void LoadTracker::swap_slots(std::size_t slot_a, std::size_t slot_b) {
  const std::size_t pa = slot_proc_.at(slot_a);
  const std::size_t pb = slot_proc_.at(slot_b);
  if (pa == pb) return;
  apply({slot_a, pa, pb});
  apply({slot_b, pb, pa});
}

Move LoadTracker::random_move(util::Rng& rng) const {
  const std::size_t M = num_procs();
  if (M < 2 || num_tasks() == 0) {
    throw std::logic_error("LoadTracker::random_move: need M >= 2, N >= 1");
  }
  Move m;
  m.slot = rng.index(num_tasks());
  m.from = slot_proc_[m.slot];
  m.to = rng.index(M - 1);
  if (m.to >= m.from) ++m.to;  // uniform over the other M-1 processors
  return m;
}

core::ProcQueues LoadTracker::to_queues() const {
  core::ProcQueues q(num_procs());
  for (std::size_t s = 0; s < slot_proc_.size(); ++s) {
    q[slot_proc_[s]].push_back(s);
  }
  return q;
}

}  // namespace gasched::meta
