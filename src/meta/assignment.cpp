#include "meta/assignment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gasched::meta {

LoadTracker::LoadTracker(const core::ScheduleEvaluator& eval,
                         core::ProcQueues queues)
    : eval_(&eval) {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (queues.size() != M) {
    throw std::invalid_argument("LoadTracker: queue count != processor count");
  }
  slot_proc_.assign(N, M);  // M = unassigned sentinel
  completion_.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    completion_[j] = eval.delta(j);
    for (const std::size_t slot : queues[j]) {
      if (slot >= N || slot_proc_[slot] != M) {
        throw std::invalid_argument(
            "LoadTracker: queues must cover each slot exactly once");
      }
      slot_proc_[slot] = j;
      completion_[j] += eval.task_cost_on(slot, j);
    }
  }
  for (std::size_t s = 0; s < N; ++s) {
    if (slot_proc_[s] == M) {
      throw std::invalid_argument("LoadTracker: slot missing from queues");
    }
  }
  rescan_top2();
}

LoadTracker::LoadTracker(const core::ScheduleEvaluator& eval,
                         const core::FlatSchedule& schedule)
    : eval_(&eval) {
  reset(eval, schedule);
}

void LoadTracker::reset(const core::ScheduleEvaluator& eval,
                        const core::FlatSchedule& schedule) {
  eval_ = &eval;
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (schedule.num_procs() != M) {
    throw std::invalid_argument("LoadTracker: queue count != processor count");
  }
  slot_proc_.assign(N, M);  // M = unassigned sentinel
  completion_.resize(M);
  for (std::size_t j = 0; j < M; ++j) {
    completion_[j] = eval.delta(j);
    for (const std::size_t slot : schedule.queue(j)) {
      if (slot >= N || slot_proc_[slot] != M) {
        throw std::invalid_argument(
            "LoadTracker: queues must cover each slot exactly once");
      }
      slot_proc_[slot] = j;
      completion_[j] += eval.task_cost_on(slot, j);
    }
  }
  for (std::size_t s = 0; s < N; ++s) {
    if (slot_proc_[s] == M) {
      throw std::invalid_argument("LoadTracker: slot missing from queues");
    }
  }
  rescan_top2();
}

void LoadTracker::rescan_top2() noexcept {
  const std::size_t M = completion_.size();
  top1_ = 0;
  top1_value_ = M > 0 ? completion_[0] : 0.0;
  for (std::size_t j = 1; j < M; ++j) {
    if (completion_[j] > top1_value_) {
      top1_ = j;
      top1_value_ = completion_[j];
    }
  }
  top2_ = top1_;
  top2_value_ = -std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < M; ++j) {
    if (j == top1_) continue;
    if (completion_[j] > top2_value_) {
      top2_ = j;
      top2_value_ = completion_[j];
    }
  }
}

void LoadTracker::fix_top2(std::size_t j) noexcept {
  const double v = completion_[j];
  if (j == top1_) {
    if (v >= top1_value_) {
      // Moved up: no other processor can have reached this value (it
      // would have outranked the old maximum), so j stays first argmax.
      top1_value_ = v;
    } else {
      rescan_top2();  // the maximum moved down: anything may lead now
    }
  } else if (j == top2_) {
    if (outranks(v, j, top1_value_, top1_)) {
      // Second place overtakes: the old leader becomes the runner-up (it
      // still outranks every other processor).
      top2_ = top1_;
      top2_value_ = top1_value_;
      top1_ = j;
      top1_value_ = v;
    } else if (v >= top2_value_) {
      top2_value_ = v;  // moved up within second place
    } else {
      rescan_top2();  // runner-up moved down: a third may overtake
    }
  } else {
    if (outranks(v, j, top1_value_, top1_)) {
      top2_ = top1_;
      top2_value_ = top1_value_;
      top1_ = j;
      top1_value_ = v;
    } else if (outranks(v, j, top2_value_, top2_)) {
      top2_ = j;
      top2_value_ = v;
    }
    // Otherwise j still trails both tracked maxima: nothing to do.
  }
}

double LoadTracker::makespan_delta(const Move& m) const {
  const double before = top1_value_;
  const double from_after = completion_[m.from] - eval_->task_cost_on(m.slot, m.from);
  const double to_after = completion_[m.to] + eval_->task_cost_on(m.slot, m.to);
  double after = std::max(from_after, to_after);
  // Maximum over the untouched processors: the tracked top-2 answer it
  // unless both maxima are the move's endpoints (then scan — max over a
  // set is scan-order independent, so the value matches a full recompute
  // bit for bit).
  if (top1_ != m.from && top1_ != m.to) {
    after = std::max(after, top1_value_);
  } else if (top2_ != m.from && top2_ != m.to) {
    after = std::max(after, top2_value_);
  } else {
    for (std::size_t j = 0; j < completion_.size(); ++j) {
      if (j == m.from || j == m.to) continue;
      after = std::max(after, completion_[j]);
    }
  }
  return after - before;
}

void LoadTracker::apply(const Move& m) {
  if (slot_proc_.at(m.slot) != m.from) {
    throw std::invalid_argument("LoadTracker::apply: stale move origin");
  }
  // Point updates re-establish the top-2 invariant one change at a time
  // (costs are strictly positive: the origin strictly drops, the target
  // strictly rises).
  completion_[m.from] -= eval_->task_cost_on(m.slot, m.from);
  fix_top2(m.from);
  completion_[m.to] += eval_->task_cost_on(m.slot, m.to);
  fix_top2(m.to);
  slot_proc_[m.slot] = m.to;
}

void LoadTracker::swap_slots(std::size_t slot_a, std::size_t slot_b) {
  const std::size_t pa = slot_proc_.at(slot_a);
  const std::size_t pb = slot_proc_.at(slot_b);
  if (pa == pb) return;
  apply({slot_a, pa, pb});
  apply({slot_b, pb, pa});
}

Move LoadTracker::random_move(util::Rng& rng) const {
  const std::size_t M = num_procs();
  if (M < 2 || num_tasks() == 0) {
    throw std::logic_error("LoadTracker::random_move: need M >= 2, N >= 1");
  }
  Move m;
  m.slot = rng.index(num_tasks());
  m.from = slot_proc_[m.slot];
  m.to = rng.index(M - 1);
  if (m.to >= m.from) ++m.to;  // uniform over the other M-1 processors
  return m;
}

core::ProcQueues LoadTracker::to_queues() const {
  core::ProcQueues q(num_procs());
  for (std::size_t s = 0; s < slot_proc_.size(); ++s) {
    q[slot_proc_[s]].push_back(s);
  }
  return q;
}

}  // namespace gasched::meta
