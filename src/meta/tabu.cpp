#include "meta/tabu.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "meta/assignment.hpp"

namespace gasched::meta {

TabuSearchScheduler::TabuSearchScheduler(TabuConfig cfg)
    : LocalSearchBatchPolicy(cfg.batch), cfg_(cfg) {}

void TabuSearchScheduler::search(const core::ScheduleEvaluator& eval,
                                 core::FlatSchedule& schedule,
                                 util::Rng& rng) const {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (M < 2 || N < 2) return;

  LoadTracker state(eval, schedule);

  const std::size_t max_iters =
      cfg_.max_iterations > 0 ? cfg_.max_iterations
                              : std::max<std::size_t>(200, 8 * N);
  const std::size_t candidates =
      cfg_.candidates > 0 ? cfg_.candidates : std::max<std::size_t>(32, 2 * M);
  const std::size_t tenure =
      cfg_.tenure > 0 ? cfg_.tenure : std::max<std::size_t>(5, N / 8);

  // tabu_until[slot * M + proc]: first iteration at which moving `slot`
  // back onto `proc` is admissible again.
  std::vector<std::size_t> tabu_until(N * M, 0);

  // Flat best-so-far snapshot (see sa.cpp): copy the assignment, not the
  // queues.
  std::vector<std::size_t> best(state.assignment().begin(),
                                state.assignment().end());
  double best_makespan = state.makespan();

  std::size_t stall = 0;
  for (std::size_t iter = 1; iter <= max_iters && stall < cfg_.stall_iterations;
       ++iter) {
    // Steepest admissible move among a random candidate sample. Biasing
    // half the sample to the heaviest processor focuses the search where
    // the makespan is decided.
    const std::size_t heavy = state.heaviest_proc();
    Move chosen{};
    double chosen_delta = std::numeric_limits<double>::infinity();
    bool have_move = false;

    for (std::size_t c = 0; c < candidates; ++c) {
      Move m = state.random_move(rng);
      if (c % 2 == 0 && state.completion(heavy) > 0.0) {
        // Redirect the candidate to pull work off the heaviest processor.
        for (std::size_t tries = 0; tries < 4 && m.from != heavy; ++tries) {
          m = state.random_move(rng);
        }
      }
      const double delta = state.makespan_delta(m);
      const bool is_tabu = tabu_until[m.slot * M + m.to] > iter;
      // makespan() is an O(1) read of the tracker's top-2 state, so the
      // per-candidate aspiration test costs nothing extra.
      const bool aspires = state.makespan() + delta < best_makespan;
      if (is_tabu && !aspires) continue;
      if (delta < chosen_delta) {
        chosen = m;
        chosen_delta = delta;
        have_move = true;
      }
    }
    if (!have_move) {
      ++stall;
      continue;
    }

    state.apply(chosen);
    tabu_until[chosen.slot * M + chosen.from] = iter + tenure;

    const double ms = state.makespan();
    if (ms < best_makespan - 1e-12) {
      best_makespan = ms;
      best.assign(state.assignment().begin(), state.assignment().end());
      stall = 0;
    } else {
      ++stall;
    }
  }
  schedule.assign_grouped(best, M);
}

std::unique_ptr<TabuSearchScheduler> make_tabu_scheduler(TabuConfig cfg) {
  return std::make_unique<TabuSearchScheduler>(cfg);
}

}  // namespace gasched::meta
