#pragma once
// Random-restart hill climbing — the degenerate member of the local-search
// family (simulated annealing at T = 0 with restarts). It provides the
// floor any meta-heuristic must beat: if SA / tabu / ACO / the GA cannot
// outperform first-improvement descent from a randomised list schedule,
// their extra machinery is not paying for itself.

#include <cstddef>
#include <memory>
#include <string>

#include "meta/batch_policy.hpp"

namespace gasched::meta {

/// Hill-climbing parameters.
struct HillClimbConfig {
  BatchSearchConfig batch;
  /// Independent restarts (the first starts from the greedy list schedule,
  /// the rest from randomised ones).
  std::size_t restarts = 4;
  /// Neighbour samples per climb. 0 = auto (16·N, at least 256).
  std::size_t max_samples = 0;
  /// Abandon a climb after this many consecutive non-improving samples.
  std::size_t stall_samples = 96;
};

/// Random-restart first-improvement hill climber ("HC").
class HillClimbScheduler final : public LocalSearchBatchPolicy {
 public:
  explicit HillClimbScheduler(HillClimbConfig cfg = {});

  std::string name() const override { return "HC"; }

  /// Configuration in use.
  const HillClimbConfig& config() const noexcept { return cfg_; }

 protected:
  void search(const core::ScheduleEvaluator& eval,
              core::FlatSchedule& schedule, util::Rng& rng) const override;

 private:
  HillClimbConfig cfg_;
};

/// Factory with default parameters.
std::unique_ptr<HillClimbScheduler> make_hill_climb_scheduler(
    HillClimbConfig cfg = {});

}  // namespace gasched::meta
