#pragma once
// Registry hookup for the local-search batch metaheuristics (SA, TS, ACO,
// HC). Called once by exp::SchedulerRegistry when the registry is first
// touched.

namespace gasched::exp {
class SchedulerRegistry;
}

namespace gasched::meta {

/// Registers SA, TS, ACO, HC.
void register_builtin_schedulers(exp::SchedulerRegistry& registry);

}  // namespace gasched::meta
