#pragma once
// Ant-colony-optimisation batch scheduler (Colorni, Dorigo & Maniezzo —
// the paper's reference [3]).
//
// A MAX-MIN-style ant system over the slot → processor assignment: each
// ant builds a complete schedule by placing batch slots (in random order)
// on processors drawn with probability ∝ τ(s,j)^α · η(s,j)^β, where the
// pheromone τ records historically good placements and the visibility
// η = 1 / (C_j + cost(s,j)) is the earliest-finish greedy signal under
// the construction's current partial loads. After each iteration the
// pheromone evaporates and the iteration-best ant deposits ψ/makespan
// (scale-free, ≤ ~1) on its placements; τ is clamped to [τ_min, τ_max]
// to keep exploration alive (Stützle & Hoos' MAX-MIN rule).

#include <cstddef>
#include <memory>
#include <string>

#include "meta/batch_policy.hpp"

namespace gasched::meta {

/// Ant-system parameters.
struct AcoConfig {
  BatchSearchConfig batch;
  /// Ants per iteration.
  std::size_t ants = 10;
  /// Construction iterations.
  std::size_t iterations = 40;
  /// Pheromone exponent α.
  double alpha = 1.0;
  /// Visibility exponent β.
  double beta = 2.0;
  /// Evaporation rate ρ in (0, 1]: τ ← (1−ρ)τ.
  double evaporation = 0.15;
  /// Pheromone clamp bounds (MAX-MIN ant system).
  double tau_min = 0.01;
  double tau_max = 10.0;
  /// Initial pheromone level.
  double tau0 = 1.0;
  /// Stop after this many iterations without improving the best schedule.
  std::size_t stall_iterations = 12;
};

/// Ant-colony scheduler ("ACO").
class AntColonyScheduler final : public LocalSearchBatchPolicy {
 public:
  explicit AntColonyScheduler(AcoConfig cfg = {});

  std::string name() const override { return "ACO"; }

  /// Configuration in use.
  const AcoConfig& config() const noexcept { return cfg_; }

 protected:
  void search(const core::ScheduleEvaluator& eval,
              core::FlatSchedule& schedule, util::Rng& rng) const override;

 private:
  AcoConfig cfg_;
};

/// Factory with default parameters.
std::unique_ptr<AntColonyScheduler> make_aco_scheduler(AcoConfig cfg = {});

}  // namespace gasched::meta
