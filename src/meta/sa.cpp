#include "meta/sa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "meta/assignment.hpp"

namespace gasched::meta {

SimulatedAnnealingScheduler::SimulatedAnnealingScheduler(SaConfig cfg)
    : LocalSearchBatchPolicy(cfg.batch), cfg_(cfg) {
  if (cfg_.cooling <= 0.0 || cfg_.cooling >= 1.0) {
    throw std::invalid_argument("SA: cooling must be in (0, 1)");
  }
  if (cfg_.initial_acceptance <= 0.0 || cfg_.initial_acceptance >= 1.0) {
    throw std::invalid_argument("SA: initial_acceptance must be in (0, 1)");
  }
}

void SimulatedAnnealingScheduler::search(const core::ScheduleEvaluator& eval,
                                         core::FlatSchedule& schedule,
                                         util::Rng& rng) const {
  if (eval.num_procs() < 2 || eval.num_tasks() < 2) return;

  LoadTracker state(eval, schedule);

  // Calibrate T₀ from the mean uphill delta of a random-move sample, so
  // the schedule adapts to the batch's cost scale instead of using a
  // fixed magic constant.
  const std::size_t samples = std::min<std::size_t>(64, 8 * state.num_tasks());
  double uphill_sum = 0.0;
  std::size_t uphill_n = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const double d = state.makespan_delta(state.random_move(rng));
    if (d > 0.0) {
      uphill_sum += d;
      ++uphill_n;
    }
  }
  const double mean_uphill = uphill_n > 0 ? uphill_sum / uphill_n : 0.0;
  // A start solution with no uphill neighbours still gets a pure-descent
  // walk (tiny positive temperature, bounded by frozen_levels).
  double temperature =
      mean_uphill > 0.0 ? -mean_uphill / std::log(cfg_.initial_acceptance)
                        : 1e-12;
  const double t_min =
      mean_uphill > 0.0 ? temperature * cfg_.min_temperature_fraction : 0.0;

  const std::size_t sweep =
      cfg_.moves_per_temperature > 0
          ? cfg_.moves_per_temperature
          : std::max<std::size_t>(64, 4 * state.num_tasks());

  // Best-so-far as a flat slot → processor snapshot: an O(N) copy into a
  // reused buffer instead of materialising per-processor queues on every
  // improvement (the old to_queues() hot-loop allocation).
  std::vector<std::size_t> best(state.assignment().begin(),
                                state.assignment().end());
  double best_makespan = state.makespan();

  std::size_t frozen = 0;
  while (temperature > t_min && frozen < cfg_.frozen_levels) {
    std::size_t accepted = 0;
    for (std::size_t i = 0; i < sweep; ++i) {
      const Move m = state.random_move(rng);
      const double delta = state.makespan_delta(m);
      const bool accept =
          delta <= 0.0 ||
          (temperature > 0.0 && rng.uniform01() < std::exp(-delta / temperature));
      if (!accept) continue;
      state.apply(m);
      ++accepted;
      const double ms = state.makespan();
      if (ms < best_makespan) {
        best_makespan = ms;
        best.assign(state.assignment().begin(), state.assignment().end());
      }
    }
    frozen = accepted == 0 ? frozen + 1 : 0;
    temperature *= cfg_.cooling;
  }
  schedule.assign_grouped(best, eval.num_procs());
}

std::unique_ptr<SimulatedAnnealingScheduler> make_sa_scheduler(SaConfig cfg) {
  return std::make_unique<SimulatedAnnealingScheduler>(cfg);
}

}  // namespace gasched::meta
