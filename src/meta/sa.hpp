#pragma once
// Simulated-annealing batch scheduler.
//
// A classic alternative meta-heuristic to the paper's GA (§2 frames GAs,
// tabu and ant-colony search as the family of applicable techniques).
// The annealer walks the reassignment neighbourhood of meta::LoadTracker:
// a candidate move is always accepted when it does not worsen the
// estimated makespan, and accepted with probability exp(−Δ/T) otherwise.
// Temperature follows a geometric schedule T ← αT calibrated from the
// start solution, the standard Kirkpatrick-style configuration.

#include <cstddef>
#include <memory>
#include <string>

#include "meta/batch_policy.hpp"

namespace gasched::meta {

/// Annealer parameters.
struct SaConfig {
  BatchSearchConfig batch;
  /// Moves attempted at each temperature level. 0 = auto (4·N, at least
  /// 64), scaling the sweep with the batch size.
  std::size_t moves_per_temperature = 0;
  /// Geometric cooling factor α in (0, 1).
  double cooling = 0.92;
  /// Initial acceptance probability for a mean-magnitude uphill move;
  /// the initial temperature is calibrated as T₀ = −mean(Δ⁺)/ln(p₀).
  double initial_acceptance = 0.5;
  /// Stop when T falls below this fraction of T₀.
  double min_temperature_fraction = 1e-4;
  /// Stop after this many consecutive temperature levels without any
  /// accepted move.
  std::size_t frozen_levels = 3;
};

/// Simulated-annealing scheduler ("SA").
class SimulatedAnnealingScheduler final : public LocalSearchBatchPolicy {
 public:
  explicit SimulatedAnnealingScheduler(SaConfig cfg = {});

  std::string name() const override { return "SA"; }

  /// Configuration in use.
  const SaConfig& config() const noexcept { return cfg_; }

 protected:
  void search(const core::ScheduleEvaluator& eval,
              core::FlatSchedule& schedule, util::Rng& rng) const override;

 private:
  SaConfig cfg_;
};

/// Factory with default parameters.
std::unique_ptr<SimulatedAnnealingScheduler> make_sa_scheduler(
    SaConfig cfg = {});

}  // namespace gasched::meta
