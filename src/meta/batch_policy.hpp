#pragma once
// Template-method base for the batch-mode local-search schedulers.
//
// Shares the batch protocol of the GA schedulers (FCFS batches consumed
// from the unscheduled queue, one ordered future queue per processor) so
// SA / tabu / ACO / hill-climbing differ from PN and ZO only in *how* the
// batch schedule is searched, never in what they are allowed to observe.
// All of them see the PN information model: smoothed execution rates,
// pending load, and smoothed per-link communication estimates.

#include <cstddef>
#include <string>

#include "core/encoding.hpp"
#include "core/fitness.hpp"
#include "core/numeric.hpp"
#include "sim/policy.hpp"

namespace gasched::meta {

/// Parameters shared by every local-search batch scheduler.
struct BatchSearchConfig {
  /// FCFS batch size (paper's fixed-batch experiments use 200).
  std::size_t batch_size = 200;
  /// Fraction of batch slots placed randomly (vs earliest finish) in the
  /// list-scheduling start solution — 0 starts from the pure greedy
  /// schedule, 1 from a uniformly random one.
  double init_random_fraction = 0.0;
  /// Predict per-link communication costs in the objective (the PN
  /// information model). Disable to get a comm-oblivious searcher for
  /// ablations.
  bool use_comm_estimates = true;
  /// Numeric mode of the per-invocation evaluator (core/numeric.hpp).
  /// The searchers track candidate loads with their own scalar sums
  /// (meta::LoadTracker), so only evaluator-priced paths change under
  /// kFast — but the mode rides here so one knob covers every batch
  /// scheduler. Defaults to the process-wide default.
  core::NumericMode numeric_mode = core::default_numeric_mode();
};

/// Batch scheduler skeleton: extracts the batch, builds the evaluator and
/// greedy start solution (decoded straight into a reused flat schedule),
/// delegates to `search`, and converts the result into per-processor
/// dispatch queues.
class LocalSearchBatchPolicy : public sim::SchedulingPolicy {
 public:
  explicit LocalSearchBatchPolicy(BatchSearchConfig cfg);

  sim::BatchAssignment invoke(const sim::SystemView& view,
                              std::deque<workload::Task>& queue,
                              util::Rng& rng) final;

  /// Shared configuration.
  const BatchSearchConfig& batch_config() const noexcept { return cfg_; }

 protected:
  /// Improves `schedule` in place: it arrives as a valid slot assignment
  /// for `eval` (the list-schedule start solution) and must leave covering
  /// exactly the same slots. Implementations track candidate assignments
  /// with meta::LoadTracker and write their best one back at the end.
  virtual void search(const core::ScheduleEvaluator& eval,
                      core::FlatSchedule& schedule, util::Rng& rng) const = 0;

 private:
  BatchSearchConfig cfg_;
  core::FlatSchedule scratch_;  // reused flat schedule across invocations
};

}  // namespace gasched::meta
