#include "meta/hill_climb.hpp"

#include <algorithm>

#include "core/init.hpp"
#include "meta/assignment.hpp"

namespace gasched::meta {

HillClimbScheduler::HillClimbScheduler(HillClimbConfig cfg)
    : LocalSearchBatchPolicy(cfg.batch), cfg_(cfg) {}

void HillClimbScheduler::search(const core::ScheduleEvaluator& eval,
                                core::FlatSchedule& schedule,
                                util::Rng& rng) const {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (M < 2 || N < 2) return;

  const std::size_t max_samples =
      cfg_.max_samples > 0 ? cfg_.max_samples
                           : std::max<std::size_t>(256, 16 * N);

  // If no climb beats the start solution, `schedule` is left untouched
  // (preserving its original queue order); otherwise it is rebuilt from
  // the best flat assignment snapshot.
  std::vector<std::size_t> best;
  bool improved = false;
  LoadTracker state(eval, schedule);
  double best_makespan = state.makespan();
  core::FlatSchedule restart;  // reused restart start solution

  const std::size_t restarts = std::max<std::size_t>(cfg_.restarts, 1);
  for (std::size_t r = 0; r < restarts; ++r) {
    // Restart 0 climbs from the provided start solution; later restarts
    // climb from fresh half-randomised list schedules.
    if (r > 0) {
      core::list_schedule_flat(eval, 0.5, rng, restart);
      state.reset(eval, restart);
    }

    std::size_t stall = 0;
    for (std::size_t i = 0; i < max_samples && stall < cfg_.stall_samples;
         ++i) {
      const Move m = state.random_move(rng);
      if (state.makespan_delta(m) < 0.0) {
        state.apply(m);
        stall = 0;
      } else {
        ++stall;
      }
    }

    const double ms = state.makespan();
    if (ms < best_makespan) {
      best_makespan = ms;
      best.assign(state.assignment().begin(), state.assignment().end());
      improved = true;
    }
  }
  if (improved) schedule.assign_grouped(best, M);
}

std::unique_ptr<HillClimbScheduler> make_hill_climb_scheduler(
    HillClimbConfig cfg) {
  return std::make_unique<HillClimbScheduler>(cfg);
}

}  // namespace gasched::meta
