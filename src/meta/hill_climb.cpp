#include "meta/hill_climb.hpp"

#include <algorithm>

#include "core/init.hpp"
#include "meta/assignment.hpp"

namespace gasched::meta {

HillClimbScheduler::HillClimbScheduler(HillClimbConfig cfg)
    : LocalSearchBatchPolicy(cfg.batch), cfg_(cfg) {}

core::ProcQueues HillClimbScheduler::search(
    const core::ScheduleEvaluator& eval, core::ProcQueues initial,
    util::Rng& rng) const {
  const std::size_t M = eval.num_procs();
  const std::size_t N = eval.num_tasks();
  if (M < 2 || N < 2) return initial;

  const std::size_t max_samples =
      cfg_.max_samples > 0 ? cfg_.max_samples
                           : std::max<std::size_t>(256, 16 * N);

  core::ProcQueues best = initial;
  double best_makespan = LoadTracker(eval, initial).makespan();

  const std::size_t restarts = std::max<std::size_t>(cfg_.restarts, 1);
  for (std::size_t r = 0; r < restarts; ++r) {
    // Restart 0 climbs from the provided start solution; later restarts
    // climb from fresh half-randomised list schedules.
    LoadTracker state(eval, r == 0 ? std::move(initial)
                                   : core::list_schedule(eval, 0.5, rng));

    std::size_t stall = 0;
    for (std::size_t i = 0; i < max_samples && stall < cfg_.stall_samples;
         ++i) {
      const Move m = state.random_move(rng);
      if (state.makespan_delta(m) < 0.0) {
        state.apply(m);
        stall = 0;
      } else {
        ++stall;
      }
    }

    const double ms = state.makespan();
    if (ms < best_makespan) {
      best_makespan = ms;
      best = state.to_queues();
    }
  }
  return best;
}

std::unique_ptr<HillClimbScheduler> make_hill_climb_scheduler(
    HillClimbConfig cfg) {
  return std::make_unique<HillClimbScheduler>(cfg);
}

}  // namespace gasched::meta
