#include "meta/batch_policy.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/init.hpp"

namespace gasched::meta {

LocalSearchBatchPolicy::LocalSearchBatchPolicy(BatchSearchConfig cfg)
    : cfg_(cfg) {
  if (cfg_.batch_size == 0) {
    throw std::invalid_argument("LocalSearchBatchPolicy: batch_size == 0");
  }
}

sim::BatchAssignment LocalSearchBatchPolicy::invoke(
    const sim::SystemView& view, std::deque<workload::Task>& queue,
    util::Rng& rng) {
  const std::size_t M = view.size();
  sim::BatchAssignment assignment = sim::BatchAssignment::empty(M);
  if (queue.empty() || M == 0) return assignment;

  const std::size_t batch = std::min<std::size_t>(cfg_.batch_size, queue.size());
  std::vector<workload::Task> tasks;
  tasks.reserve(batch);
  std::vector<double> sizes;
  sizes.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    tasks.push_back(queue.front());
    sizes.push_back(queue.front().size_mflops);
    queue.pop_front();
  }

  const core::ScheduleEvaluator eval(std::move(sizes), view,
                                     cfg_.use_comm_estimates,
                                     cfg_.numeric_mode);
  core::list_schedule_flat(eval, cfg_.init_random_fraction, rng, scratch_);
  search(eval, scratch_, rng);

  for (std::size_t j = 0; j < M; ++j) {
    for (const std::size_t slot : scratch_.queue(j)) {
      assignment.per_proc[j].push_back(tasks.at(slot).id);
    }
  }
  return assignment;
}

}  // namespace gasched::meta
