#pragma once
// Tabu-search batch scheduler (Glover 1986 — the paper's reference [6]).
//
// Steepest-descent over a sampled reassignment neighbourhood with a
// recency-based tabu memory: after slot s moves off processor j, the
// reverse attribute (s → j) is tabu for `tenure` iterations, preventing
// the search from cycling through the plateau moves that dominate
// makespan landscapes. The standard aspiration criterion overrides the
// tabu status of any move that improves on the best schedule found.

#include <cstddef>
#include <memory>
#include <string>

#include "meta/batch_policy.hpp"

namespace gasched::meta {

/// Tabu-search parameters.
struct TabuConfig {
  BatchSearchConfig batch;
  /// Total move iterations. 0 = auto (8·N, at least 200).
  std::size_t max_iterations = 0;
  /// Candidate moves sampled per iteration (the best admissible one is
  /// taken). 0 = auto (max(2·M, 32)).
  std::size_t candidates = 0;
  /// Iterations a reversed move stays tabu. 0 = auto (max(N/8, 5)).
  std::size_t tenure = 0;
  /// Stop after this many iterations without improving the best schedule.
  std::size_t stall_iterations = 64;
};

/// Tabu-search scheduler ("TS").
class TabuSearchScheduler final : public LocalSearchBatchPolicy {
 public:
  explicit TabuSearchScheduler(TabuConfig cfg = {});

  std::string name() const override { return "TS"; }

  /// Configuration in use.
  const TabuConfig& config() const noexcept { return cfg_; }

 protected:
  void search(const core::ScheduleEvaluator& eval,
              core::FlatSchedule& schedule, util::Rng& rng) const override;

 private:
  TabuConfig cfg_;
};

/// Factory with default parameters.
std::unique_ptr<TabuSearchScheduler> make_tabu_scheduler(TabuConfig cfg = {});

}  // namespace gasched::meta
