#include "meta/register.hpp"

#include "exp/registry.hpp"
#include "meta/aco.hpp"
#include "meta/hill_climb.hpp"
#include "meta/sa.hpp"
#include "meta/tabu.hpp"

namespace gasched::meta {

void register_builtin_schedulers(exp::SchedulerRegistry& registry) {
  using exp::SchedulerParams;
  const unsigned meta = exp::kSchedulerTagMetaheuristic;

  registry.add(
      {.name = "SA",
       .summary = "simulated annealing over the reassignment "
                  "neighbourhood, geometric cooling",
       .tags = meta,
       .rank = 12,
       .factory =
           [](const SchedulerParams& p) {
             SaConfig cfg;
             cfg.batch.batch_size =
                 p.get_size("batch_size", exp::kDefaultBatchSize);
             cfg.cooling = p.get_double("sa_cooling", cfg.cooling);
             cfg.initial_acceptance =
                 p.get_double("sa_initial_acceptance", cfg.initial_acceptance);
             cfg.moves_per_temperature = p.get_size(
                 "sa_moves_per_temperature", cfg.moves_per_temperature);
             return make_sa_scheduler(cfg);
           }});
  registry.add(
      {.name = "TS",
       .summary = "tabu search with sampled candidate moves and "
                  "reversal tenure",
       .tags = meta,
       .rank = 13,
       .factory =
           [](const SchedulerParams& p) {
             TabuConfig cfg;
             cfg.batch.batch_size =
                 p.get_size("batch_size", exp::kDefaultBatchSize);
             cfg.tenure = p.get_size("tabu_tenure", cfg.tenure);
             cfg.stall_iterations =
                 p.get_size("tabu_stall", cfg.stall_iterations);
             return make_tabu_scheduler(cfg);
           }});
  registry.add(
      {.name = "ACO",
       .summary = "MAX-MIN ant system: pheromone-guided construction "
                  "with evaporation and clamping",
       .tags = meta,
       .rank = 14,
       .factory =
           [](const SchedulerParams& p) {
             AcoConfig cfg;
             cfg.batch.batch_size =
                 p.get_size("batch_size", exp::kDefaultBatchSize);
             cfg.ants = p.get_size("aco_ants", cfg.ants);
             cfg.iterations = p.get_size("aco_iterations", cfg.iterations);
             cfg.evaporation =
                 p.get_double("aco_evaporation", cfg.evaporation);
             return make_aco_scheduler(cfg);
           }});
  registry.add(
      {.name = "HC",
       .summary = "random-restart first-improvement hill climbing — "
                  "the floor of the metaheuristic family",
       .tags = meta,
       .rank = 15,
       .factory =
           [](const SchedulerParams& p) {
             HillClimbConfig cfg;
             cfg.batch.batch_size =
                 p.get_size("batch_size", exp::kDefaultBatchSize);
             cfg.restarts = p.get_size("hc_restarts", cfg.restarts);
             cfg.stall_samples = p.get_size("hc_stall", cfg.stall_samples);
             return make_hill_climb_scheduler(cfg);
           }});
}

}  // namespace gasched::meta
